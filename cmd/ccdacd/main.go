// Command ccdacd is the long-running ccdac generation daemon: it
// serves the constructive flow over HTTP with process-level metrics
// aggregation, health/readiness probes, and pprof endpoints.
//
//	ccdacd -addr :8080 -max-inflight 16 -timeout 60s -cache-bytes 67108864 -store-dir /var/lib/ccdac
//
//	curl -s localhost:8080/v1/generate -d '{"bits":8,"max_parallel":2}'
//	curl -s localhost:8080/v1/generate -d '{"bits":8,"cache":"bypass"}'
//	curl -s localhost:8080/v1/batch -d '{"requests":[{"bits":6},{"bits":8}]}'
//	curl -s localhost:8080/v1/jobs -d '{"kind":"yield","bits":10,"samples":1000000,"spec_inl":0.5}'
//	curl -s localhost:8080/v1/jobs/<id>            # poll; DELETE cancels
//	curl -N  localhost:8080/v1/jobs/<id>/events    # live SSE job progress
//	curl -s localhost:8080/v1/artifacts/<sha256>
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/debug/traces
//	curl -s localhost:8080/debug/traces/<id>?format=otlp
//	curl -N  localhost:8080/v1/events?request_id=<id>   # live SSE span stream
//	curl -sX POST 'localhost:8080/debug/profile?seconds=2'  # on-demand capture
//	go tool pprof localhost:8080/debug/pprof/profile?seconds=10
//
// Every request runs under its own observability trace; its metrics
// fold into one global registry, so /metrics reports fleet totals
// (request rates and latency histograms per route, pipeline runs,
// degradation and CG-fallback counters). SIGTERM/SIGINT starts a
// graceful drain: /readyz flips to 503 and in-flight requests get
// -drain to finish. See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccdac"
	"ccdac/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent generate requests before 429 shedding (0 = 2x GOMAXPROCS)")
	workers := flag.Int("workers", 0, "per-request analysis worker cap (0 = GOMAXPROCS/max-inflight, negative = serial)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline for /v1/generate")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	cacheBytes := flag.Int64("cache-bytes", 0, "result-cache byte bound (0 = 64MiB default, negative = disable caching and singleflight)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result-cache entry TTL (0 = no expiry, LRU eviction only)")
	maxBatch := flag.Int("max-batch", 0, "max sub-requests per /v1/batch call (0 = 64)")
	storeDir := flag.String("store-dir", "", "durable artifact store directory: persists the result cache across restarts and serves /v1/artifacts/{hash} (empty = memory only)")
	storeQueue := flag.Int("store-queue", 0, "write-behind queue depth for store persists (0 = 256)")
	traceCap := flag.Int("trace-capacity", 0, "flight-recorder traces kept per retention class (0 = 32, negative = disable /debug/traces)")
	traceSlowQ := flag.Float64("trace-slow-quantile", 0, "latency quantile above which healthy traces are tail-sampled as slow (0 = 0.99)")
	slowRequest := flag.Duration("slow-request", 0, "log WARN with trace correlation for requests slower than this (0 = disabled)")
	eventBuffer := flag.Int("event-buffer", 0, "per-subscriber buffer for /v1/events SSE streams (0 = 256)")
	profileWindow := flag.Duration("profile-window", 0, "CPU-profile window for triggered/manual captures (0 = 2s, negative = disable profile capture)")
	profileCooldown := flag.Duration("profile-cooldown", 0, "minimum gap between triggered profile captures (0 = 60s)")
	numericInterval := flag.Duration("numeric-interval", 0, "minimum gap between numeric-health golden-check sweeps (0 = 1m, negative = disable)")
	accessLogSample := flag.Int("access-log-sample", 1, "log 1-in-N healthy (2xx, INFO) access lines; WARN+ always logs (1 = log all)")
	jobWorkers := flag.Int("job-workers", 0, "async job tier worker pool size for /v1/jobs (0 = 2)")
	jobQueue := flag.Int("job-queue", 0, "async job queue depth before 429 overflow (0 = 64)")
	jobMaxBatch := flag.Int("job-max-batch", 0, "max yield jobs coalesced into one compatibility micro-batch (0 = 16, 1 = disable)")
	jobMaxWait := flag.Duration("job-max-wait", 0, "max time the first job of a micro-batch waits for company (0 = 25ms, negative = disable)")
	jobCheckpoint := flag.Int("job-checkpoint", 0, "Monte-Carlo samples between durable yield-job checkpoints (0 = 50000)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("ccdacd", ccdac.Version)
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ccdacd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv := serve.New(serve.Options{
		Addr:               *addr,
		MaxInFlight:        *maxInflight,
		Workers:            *workers,
		RequestTimeout:     *timeout,
		DrainTimeout:       *drain,
		CacheMaxBytes:      *cacheBytes,
		CacheTTL:           *cacheTTL,
		MaxBatch:           *maxBatch,
		StoreDir:           *storeDir,
		StoreQueue:         *storeQueue,
		TraceCapacity:      *traceCap,
		TraceSlowQuantile:  *traceSlowQ,
		SlowRequest:        *slowRequest,
		EventBuffer:        *eventBuffer,
		ProfileWindow:      *profileWindow,
		ProfileCooldown:    *profileCooldown,
		NumericInterval:    *numericInterval,
		AccessLogSample:    *accessLogSample,
		JobWorkers:         *jobWorkers,
		JobQueueDepth:      *jobQueue,
		JobMaxBatch:        *jobMaxBatch,
		JobMaxWait:         *jobMaxWait,
		JobCheckpointEvery: *jobCheckpoint,
		Logger:             logger,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServe(ctx); err != nil {
		logger.Error("ccdacd exited", "err", err)
		os.Exit(1)
	}
}
