// Command sweep runs the sensitivity and ablation studies behind the
// paper's design choices: technology-knob sweeps (via/wire resistance,
// correlation length, gradient, switch resistance, coupling), the
// via-resistance study motivating parallel routing, and the
// block-chessboard structure ablation.
//
// Usage:
//
//	sweep -study knob -knob via-r -bits 8 -style spiral -factors 0.5,1,2,4
//	sweep -study viar -bits 8
//	sweep -study bc   -bits 8
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccdac/internal/core"
	"ccdac/internal/obs"
	"ccdac/internal/place"
	"ccdac/internal/store"
	"ccdac/internal/sweep"
)

func main() {
	study := flag.String("study", "knob", "study to run: knob, viar, bc")
	knob := flag.String("knob", "via-r", "technology knob for -study knob")
	bits := flag.Int("bits", 8, "DAC resolution")
	style := flag.String("style", "spiral", "placement style for -study knob")
	factorsFlag := flag.String("factors", "0.25,0.5,1,2,4,8", "scale factors")
	parallel := flag.Int("parallel", 2, "parallel wires")
	withNL := flag.Bool("nl", false, "include INL/DNL in knob sweeps (slower)")
	memoize := flag.Bool("memo", false, "memoize pipeline stages across sweep points (see docs/PERFORMANCE.md)")
	spillDir := flag.String("memo-spill-dir", "", "with -memo, spill evicted stage-cache entries to a durable store at this directory (restored on later misses)")
	traceOut := flag.String("trace", "", "record an observability trace and write its spans as JSONL to this file")
	otlpOut := flag.String("trace-otlp", "", "record an observability trace and write it as OTLP/JSON to this file (importable into Jaeger/Tempo)")
	metricsOut := flag.String("metrics", "", "record study metrics and write them in Prometheus text format to this file")
	flag.Parse()

	factors, err := parseFactors(*factorsFlag)
	if err != nil {
		fatal(err)
	}
	if *spillDir != "" {
		if st, err := store.Open(*spillDir, store.Options{}); err != nil {
			// Degrade, don't fail: the sweep is still correct without the
			// spill tier, just slower on re-misses.
			fmt.Fprintln(os.Stderr, "sweep: warning: memo spill disabled:", err)
		} else {
			core.EnableMemoSpill(store.Spiller{S: st})
		}
	}
	ctx := context.Background()
	var tr *obs.Trace
	if *traceOut != "" || *otlpOut != "" || *metricsOut != "" {
		tr = obs.New(obs.Options{PprofLabels: true})
		ctx = obs.WithTrace(ctx, tr)
		var root *obs.Span
		ctx, root = obs.StartSpan(ctx, "sweep."+*study)
		defer func() {
			root.End()
			tr.Finish()
			dumpTrace(tr, *traceOut, *otlpOut, *metricsOut)
		}()
	}
	switch *study {
	case "knob":
		st, ok := map[string]place.Style{
			"spiral":           place.Spiral,
			"chessboard":       place.Chessboard,
			"block-chessboard": place.BlockChessboard,
			"annealed":         place.Annealed,
		}[*style]
		if !ok {
			fatal(fmt.Errorf("unknown style %q", *style))
		}
		pts, err := sweep.SensitivityContext(ctx, core.Config{
			Bits: *bits, Style: st, MaxParallel: *parallel, ThetaSteps: 4, Memo: *memoize,
		}, sweep.Knob(*knob), factors, *withNL)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sensitivity of %d-bit %s to %s\n\n", *bits, *style, *knob)
		fmt.Printf("%8s %12s %10s", "factor", "f3dB MHz", "via cuts")
		if *withNL {
			fmt.Printf(" %10s %10s", "|DNL| LSB", "|INL| LSB")
		}
		fmt.Println()
		for _, p := range pts {
			fmt.Printf("%8.2f %12.1f %10d", p.Factor, p.F3dBHz/1e6, p.ViaCuts)
			if *withNL {
				fmt.Printf(" %10.4f %10.4f", p.DNL, p.INL)
			}
			fmt.Println()
		}
	case "viar":
		s, err := sweep.StudyViaRContext(ctx, *bits, factors)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("via-resistance study, %d-bit (S vs [7])\n\n", *bits)
		fmt.Printf("%8s %14s %14s %14s\n", "factor", "gap S(p2)/[7]", "gap S(p1)/[7]", "S(p2)/S(p1)")
		for i, f := range s.Factors {
			fmt.Printf("%8.2f %14.2f %14.2f %14.2f\n",
				f, s.GapParallel[i], s.GapSingle[i], s.ParallelGain[i])
		}
	case "bc":
		pts, err := sweep.BCAblationContext(ctx, *bits, *parallel)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("block-chessboard structure ablation, %d-bit\n\n", *bits)
		fmt.Printf("%6s %6s %12s %10s %10s %10s %10s\n",
			"core", "block", "f3dB MHz", "|DNL| LSB", "|INL| LSB", "area um2", "via cuts")
		for _, p := range pts {
			fmt.Printf("%6d %6d %12.1f %10.4f %10.4f %10.0f %10d\n",
				p.CoreBits, p.BlockCells, p.F3dBHz/1e6, p.DNL, p.INL, p.AreaUm2, p.ViaCuts)
		}
	default:
		fatal(fmt.Errorf("unknown study %q", *study))
	}
}

func parseFactors(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad factor %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no factors given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

// dumpTrace writes the study's spans (JSONL and/or OTLP/JSON) and
// metrics (Prometheus text format) to the requested files and prints
// the stage-time tree to stderr, keeping stdout reserved for the study
// tables. Files are rendered in memory and written atomically, so a
// full disk or a crash mid-write surfaces as an error, never a
// truncated file that parses as a complete (wrong) study.
func dumpTrace(tr *obs.Trace, traceOut, otlpOut, metricsOut string) {
	spans := tr.Spans()
	if traceOut != "" {
		var buf bytes.Buffer
		err := obs.WriteJSONL(&buf, spans)
		if err == nil {
			err = store.AtomicWriteFile(traceOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			fatal(err)
		}
	}
	if otlpOut != "" {
		var buf bytes.Buffer
		err := obs.WriteOTLP(&buf, "sweep", tr.ID(), spans)
		if err == nil {
			err = store.AtomicWriteFile(otlpOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			fatal(err)
		}
	}
	if metricsOut != "" {
		// Fold the study trace into a process-level registry via the
		// same Merge path the serve daemon uses, so every exposition in
		// the repo is an aggregated registry view.
		proc := obs.NewRegistry()
		proc.Merge(tr.Registry().Snapshot())
		var buf bytes.Buffer
		err := obs.WritePrometheus(&buf, proc.Snapshot())
		if err == nil {
			err = store.AtomicWriteFile(metricsOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			fatal(err)
		}
	}
	_ = obs.WriteTree(os.Stderr, spans)
}
