// Command calibrate fits the synthetic technology's knobs to maximize
// shape agreement (mean Spearman rank correlation) with the paper's
// published tables, and prints the fitted factors and score.
//
// Usage:
//
//	calibrate [-bits 6,8] [-rounds 2] [-knobs via-r,wire-r,switch-r]
//
// Each objective evaluation runs the full harness at the given bit
// counts; keep the bit list small for interactive use.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccdac/internal/calib"
	"ccdac/internal/sweep"
	"ccdac/internal/tech"
)

func main() {
	bitsFlag := flag.String("bits", "6,8", "bit counts per objective evaluation")
	rounds := flag.Int("rounds", 2, "coordinate-descent rounds")
	knobsFlag := flag.String("knobs", "via-r,wire-r,switch-r,coupling", "knobs to fit")
	parallel := flag.Int("parallel", 2, "parallel wires for S/BC")
	flag.Parse()

	bits, err := parseInts(*bitsFlag)
	if err != nil {
		fatal(err)
	}
	var knobs []sweep.Knob
	for _, k := range strings.Split(*knobsFlag, ",") {
		k = strings.TrimSpace(k)
		if k != "" {
			knobs = append(knobs, sweep.Knob(k))
		}
	}
	fmt.Printf("calibrating %v over bits %v (%d rounds)\n", knobs, bits, *rounds)
	res, err := calib.Fit(tech.FinFET12(), knobs, calib.MeanSpearman(bits, *parallel), *rounds)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nmean Spearman: %.4f -> %.4f (%d evaluations)\n",
		res.BaseScore, res.Score, res.Evals)
	fmt.Println("fitted factors:")
	for _, k := range knobs {
		fmt.Printf("  %-10s %.3gx\n", k, res.Factors[k])
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad bit count %q: %w", f, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no bit counts")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
