// Command figures regenerates the paper's figures: SVG layout views
// for Figs. 2-5 and the data series behind Figs. 6(a) and 6(b).
//
// Usage:
//
//	figures [-fig 2|3|4|5|6a|6b|all] [-out figures/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ccdac/internal/exp"
	"ccdac/internal/place"
	"ccdac/internal/render"
	"ccdac/internal/route"
	"ccdac/internal/store"
	"ccdac/internal/tech"
)

func main() {
	fig := flag.String("fig", "all", "figure to generate: 2, 3, 4, 5, 6a, 6b or all")
	out := flag.String("out", "figures", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	want := func(f string) bool { return *fig == "all" || *fig == f }
	any := false
	if want("2") {
		any = true
		fig2(*out)
	}
	if want("3") {
		any = true
		fig3(*out)
	}
	if want("4") {
		any = true
		fig4(*out)
	}
	if want("5") {
		any = true
		fig5(*out)
	}
	if want("6a") {
		any = true
		fig6a(*out)
	}
	if want("6b") {
		any = true
		fig6b(*out)
	}
	if !any {
		fatal(fmt.Errorf("unknown -fig %q", *fig))
	}
}

// fig2 renders the 6-bit placement styles of Fig. 2: spiral,
// chessboard, and two block-chessboard granularities.
func fig2(dir string) {
	spiral, err := place.NewSpiral(6)
	check(err)
	write(dir, "fig2a_spiral_6bit.svg", render.SVGPlacement(spiral, "Fig 2(a): spiral, 6-bit"))

	cb, err := place.NewChessboard(6)
	check(err)
	write(dir, "fig2b_chessboard_6bit.svg", render.SVGPlacement(cb, "Fig 2(b): chessboard [7], 6-bit"))

	coarse, err := place.NewBlockChessboard(6, place.BCParams{CoreBits: 4, BlockCells: 4})
	check(err)
	write(dir, "fig2c_bc_coarse_6bit.svg", render.SVGPlacement(coarse, "Fig 2(c): block chessboard (coarser), 6-bit"))

	fine, err := place.NewBlockChessboard(6, place.BCParams{CoreBits: 4, BlockCells: 1})
	check(err)
	write(dir, "fig2d_bc_fine_6bit.svg", render.SVGPlacement(fine, "Fig 2(d): block chessboard (finer), 6-bit"))
}

// fig3 renders the routed 6-bit spiral with parallel wires on the MSB
// plus the connected-group summary (Fig. 3).
func fig3(dir string) {
	m, err := place.NewSpiral(6)
	check(err)
	par := []int{1, 1, 1, 1, 1, 1, 2}
	l, err := route.Route(m, tech.FinFET12(), par)
	check(err)
	write(dir, "fig3_routing_spiral_6bit.svg",
		render.SVGLayout(l, "Fig 3: routed 6-bit spiral, 2 parallel wires on C_6"))
	write(dir, "fig3_groups_6bit.txt", render.GroupsSummary(l))
}

// fig4 renders 8-bit block-chessboard layouts at several granularities.
func fig4(dir string) {
	for _, p := range place.DefaultBCParams(8) {
		m, err := place.NewBlockChessboard(8, p)
		check(err)
		name := fmt.Sprintf("fig4_bc_8bit_core%d_block%d.svg", p.CoreBits, p.BlockCells)
		title := fmt.Sprintf("Fig 4: 8-bit BC, core C_0..C_%d, blocks of %d", p.CoreBits, p.BlockCells)
		write(dir, name, render.SVGPlacement(m, title))
	}
}

// fig5 renders the routed 8-bit chessboard vs spiral comparison.
func fig5(dir string) {
	t := tech.FinFET12()
	cb, err := place.NewChessboard(8)
	check(err)
	lcb, err := route.Route(cb, t, nil)
	check(err)
	write(dir, "fig5a_chessboard_8bit_routed.svg",
		render.SVGLayout(lcb, "Fig 5(a): routed 8-bit chessboard [7]"))

	sp, err := place.NewSpiral(8)
	check(err)
	par := make([]int, 9)
	for i := range par {
		par[i] = 1
	}
	par[8] = 2
	lsp, err := route.Route(sp, t, par)
	check(err)
	write(dir, "fig5b_spiral_8bit_routed.svg",
		render.SVGLayout(lsp, "Fig 5(b): routed 8-bit spiral (parallel MSB)"))
}

// fig6a emits the parallel-wire improvement factors (Fig. 6(a)) as
// text data and an SVG chart.
func fig6a(dir string) {
	h := exp.NewHarness()
	series, err := h.Fig6a(exp.DefaultBits, []int{1, 2, 3, 4, 5, 6})
	check(err)
	txt := exp.FormatFig6a(series)
	write(dir, "fig6a_parallel_factors.txt", txt)
	var chart []render.Series
	for _, s := range series {
		cs := render.Series{Name: fmt.Sprintf("%d-bit", s.Bits)}
		for i, k := range s.Ks {
			cs.X = append(cs.X, float64(k))
			cs.Y = append(cs.Y, s.Factors[i])
		}
		chart = append(chart, cs)
	}
	write(dir, "fig6a_parallel_factors.svg", render.LineChart(chart, render.ChartOptions{
		Title:  "Fig 6(a): f3dB improvement factor vs parallel wires (spiral)",
		XLabel: "parallel wires k", YLabel: "f3dB(k) / f3dB(1)",
	}))
	fmt.Print(txt)
}

// fig6b emits the per-method normalized f3dB series (Fig. 6(b)) as
// text data and a log-scale SVG chart.
func fig6b(dir string) {
	h := exp.NewHarness()
	series, err := h.Fig6b(8, []int{1, 2, 3, 4, 5, 6})
	check(err)
	txt := exp.FormatFig6b(8, series)
	write(dir, "fig6b_methods_normalized.txt", txt)
	var chart []render.Series
	for _, s := range series {
		cs := render.Series{Name: string(s.Method)}
		for i, k := range s.Ks {
			cs.X = append(cs.X, float64(k))
			cs.Y = append(cs.Y, s.Normalized[i])
		}
		chart = append(chart, cs)
	}
	write(dir, "fig6b_methods_normalized.svg", render.LineChart(chart, render.ChartOptions{
		Title:  "Fig 6(b): f3dB vs parallel wires at 8 bits, normalized to S(k=1)",
		XLabel: "parallel wires k", YLabel: "normalized f3dB (log)", LogY: true,
	}))
	fmt.Print(txt)
}

func write(dir, name, content string) {
	path := filepath.Join(dir, name)
	if err := store.AtomicWriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
