// Command compare runs the full experiment harness and scores the
// reproduction against the numbers published in the paper's Tables I
// and II: a side-by-side dump of every shared cell and a per-metric
// Spearman rank correlation (shape agreement; absolute values are not
// expected to match across technologies — see DESIGN.md).
//
// Usage:
//
//	compare [-bits 6,7,8,9,10] [-parallel 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccdac/internal/exp"
	"ccdac/internal/paperdata"
)

func main() {
	bitsFlag := flag.String("bits", "6,7,8,9,10", "bit counts to compare")
	parallel := flag.Int("parallel", exp.DefaultParallel, "parallel wires for S/BC")
	flag.Parse()

	bits, err := parseBits(*bitsFlag)
	if err != nil {
		fatal(err)
	}
	h := exp.NewHarness()
	h.Parallel = *parallel
	if err := h.Prefetch(bits); err != nil {
		fatal(err)
	}

	measured := map[string]paperdata.Cell{}
	for _, n := range bits {
		for _, m := range exp.Methods {
			if !exp.Available(m, n) {
				continue
			}
			r, err := h.Run(m, n)
			if err != nil {
				fatal(err)
			}
			crit := r.Electrical.Bits[r.CriticalBit]
			cell := paperdata.Cell{
				Bits: n, Method: string(m),
				CTSfF: r.Electrical.CTSfF, CWirefF: r.Electrical.CWirefF, CBBfF: r.Electrical.CBBfF,
				NV: float64(r.Electrical.ViaCuts), LUm: r.Electrical.WirelengthUm,
				RVkOhm: crit.RViaOhm / 1000, RTotalkOhm: (crit.RViaOhm + crit.RWireOhm) / 1000,
				AreaUm2: r.Electrical.AreaUm2, F3dBMHz: r.F3dBHz / 1e6,
			}
			if r.NL != nil {
				cell.DNL, cell.INL = r.NL.MaxAbsDNL, r.NL.MaxAbsINL
			}
			measured[paperdata.Key(n, string(m))] = cell
		}
	}

	fmt.Println("paper vs measured, cell by cell (paper | measured)")
	fmt.Printf("%-9s %22s %22s %16s %22s\n", "cell", "Cwire fF", "NV", "INL LSB", "f3dB MHz")
	for _, pc := range paperdata.Cells() {
		mc, ok := measured[paperdata.Key(pc.Bits, pc.Method)]
		if !ok {
			continue
		}
		fmt.Printf("%d-bit %-4s %10.1f | %8.1f %10.0f | %8.0f %7.2f | %6.3f %10.1f | %9.1f\n",
			pc.Bits, pc.Method,
			pc.CWirefF, mc.CWirefF, pc.NV, mc.NV, pc.INL, mc.INL, pc.F3dBMHz, mc.F3dBMHz)
	}

	fmt.Println("\nshape agreement (Spearman rank correlation over shared cells):")
	fmt.Printf("%-8s %6s %4s\n", "metric", "rho", "n")
	for _, c := range paperdata.Compare(measured) {
		fmt.Printf("%-8s %6.2f %4d\n", c.Metric, c.Rho, c.N)
	}
	fmt.Println("\nrho = 1 is perfect rank agreement; the orderings the paper argues from")
	fmt.Println("(who wins each metric, how gaps grow with N) are preserved at high rho.")
}

func parseBits(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad bit count %q: %w", f, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no bit counts")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compare:", err)
	os.Exit(1)
}
