// Command ccdac runs the full constructive common-centroid flow for
// one capacitor array and reports its metrics, optionally writing SVG
// views of the placement and the routed layout.
//
// Usage:
//
//	ccdac -bits 8 -style spiral -parallel 2 -svg layout.svg [-json]
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"ccdac"
	"ccdac/internal/obs"
	"ccdac/internal/store"
)

func main() {
	bits := flag.Int("bits", 8, "DAC resolution N (2..12)")
	style := flag.String("style", "spiral", "placement style: spiral, chessboard, block-chessboard, annealed, best-bc")
	parallel := flag.Int("parallel", 2, "parallel wires applied iteratively to critical bits (<=1 disables)")
	coreBits := flag.Int("core", 0, "block-chessboard core bits (0 = default)")
	blockCells := flag.Int("block", 0, "block-chessboard block granularity (0 = default)")
	theta := flag.Int("theta", 8, "gradient angles for worst-case INL/DNL")
	skipNL := flag.Bool("fast", false, "skip the INL/DNL analysis")
	workers := flag.Int("workers", 0, "analysis worker budget (0 = GOMAXPROCS, negative = serial)")
	memoize := flag.Bool("memo", false, "memoize pipeline stages in the process-wide cache (see docs/PERFORMANCE.md)")
	fftMode := flag.String("fft", "auto", "covariance engine: auto (FFT when the grid allows) or off (always dense)")
	spillDir := flag.String("memo-spill-dir", "", "with -memo, spill evicted stage-cache entries to a durable store at this directory (restored on later misses)")
	svgOut := flag.String("svg", "", "write the routed layout SVG to this file")
	placeOut := flag.String("placement-svg", "", "write the placement SVG to this file")
	gdsOut := flag.String("gds", "", "write the layout as a GDSII stream to this file")
	spiceOut := flag.String("spice", "", "write the critical bit's RC netlist (SPICE) to this file")
	runDRC := flag.Bool("drc", false, "run the design-rule checker and report violations")
	reportOut := flag.String("report", "", "write a self-contained HTML design report to this file")
	traceOut := flag.String("trace", "", "record an observability trace and write its spans as JSONL to this file")
	otlpOut := flag.String("trace-otlp", "", "record an observability trace and write it as OTLP/JSON to this file (importable into Jaeger/Tempo)")
	metricsOut := flag.String("metrics", "", "record run metrics and write them in Prometheus text format to this file")
	traceMem := flag.Bool("trace-mem", false, "with -trace/-metrics, also record per-span heap-allocation deltas (slower)")
	asJSON := flag.Bool("json", false, "emit metrics as JSON")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("ccdac", ccdac.Version)
		return
	}

	if *spillDir != "" {
		if err := ccdac.EnableMemoSpill(*spillDir); err != nil {
			// Degrade, don't fail: the run is still correct without the
			// spill tier, just slower on re-misses.
			fmt.Fprintln(os.Stderr, "ccdac: warning: memo spill disabled:", err)
		}
	}
	cfg := ccdac.Config{
		Bits:             *bits,
		Style:            ccdac.Style(*style),
		CoreBits:         *coreBits,
		BlockCells:       *blockCells,
		MaxParallel:      *parallel,
		ThetaSteps:       *theta,
		SkipNonlinearity: *skipNL,
		Workers:          *workers,
		Memo:             *memoize,
		FFT:              *fftMode,
		Trace:            *traceOut != "" || *otlpOut != "" || *metricsOut != "",
		TraceMemStats:    *traceMem,
	}
	var res *ccdac.Result
	var err error
	if *style == "best-bc" {
		cfg.Style = ccdac.BlockChessboard
		res, _, err = ccdac.GenerateBestBC(cfg)
	} else {
		res, err = ccdac.Generate(cfg)
	}
	if err != nil {
		// Warnings accumulated before the failure still matter for
		// diagnosing it (a CG fallback before a routing abort, say).
		var pe *ccdac.PipelineError
		if errors.As(err, &pe) {
			for _, w := range pe.Warnings {
				fmt.Fprintln(os.Stderr, "ccdac: warning:", w)
			}
		}
		// PipelineError values already carry the "ccdac:" prefix.
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, ccdac.ErrConfig) {
			fmt.Fprintln(os.Stderr, "ccdac: run with -h for flag documentation")
			os.Exit(2)
		}
		os.Exit(1)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "ccdac: warning:", w)
	}
	if res.Trace != nil {
		writeTraceFiles(res.Trace, *traceOut, *otlpOut, *metricsOut)
		// Keep stdout parseable under -json: the stage tree goes to
		// stderr there, stdout otherwise.
		if *asJSON {
			fmt.Fprint(os.Stderr, res.Trace.StageTree())
		} else {
			fmt.Print(res.Trace.StageTree())
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, "ccdac:", err)
			os.Exit(1)
		}
	} else {
		m := res.Metrics
		fmt.Printf("%d-bit %s array\n", *bits, res.Config.Style)
		fmt.Printf("  area          %.0f um^2\n", m.AreaUm2)
		fmt.Printf("  f3dB          %.1f MHz (critical bit C_%d, tau %.3g s)\n",
			m.F3dBHz/1e6, m.CriticalBit, m.TauSec)
		if !*skipNL {
			fmt.Printf("  |DNL|, |INL|  %.3f, %.3f LSB\n", m.MaxAbsDNL, m.MaxAbsINL)
		}
		fmt.Printf("  sum C_TS      %.3f fF\n", m.CTSfF)
		fmt.Printf("  sum C_wire    %.1f fF\n", m.CWirefF)
		fmt.Printf("  sum C_BB      %.1f fF\n", m.CBBfF)
		fmt.Printf("  vias, length  %d cuts, %.0f um\n", m.ViaCuts, m.WirelengthUm)
		fmt.Printf("  R_V, R_total  %.3f, %.3f kOhm (critical bit)\n", m.RVkOhm, m.RTotalkOhm)
		fmt.Printf("  parallel      %v\n", m.ParallelWires)
		fmt.Printf("  place+route   %.4fs + %.4fs\n", m.PlaceSeconds, m.RouteSeconds)
	}

	if *placeOut != "" {
		title := fmt.Sprintf("%d-bit %s placement", *bits, res.Config.Style)
		if err := store.AtomicWriteFile(*placeOut, []byte(res.SVGPlacement(title)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ccdac:", err)
			os.Exit(1)
		}
	}
	if *svgOut != "" {
		title := fmt.Sprintf("%d-bit %s routed layout", *bits, res.Config.Style)
		if err := store.AtomicWriteFile(*svgOut, []byte(res.SVGLayout(title)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ccdac:", err)
			os.Exit(1)
		}
	}
	if *gdsOut != "" {
		data, err := res.GDS(fmt.Sprintf("ccdac_%dbit_%s", *bits, *style))
		if err == nil {
			err = store.AtomicWriteFile(*gdsOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdac:", err)
			os.Exit(1)
		}
	}
	if *spiceOut != "" {
		nl, err := res.SpiceNetlist(-1)
		if err == nil {
			err = store.AtomicWriteFile(*spiceOut, []byte(nl), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdac:", err)
			os.Exit(1)
		}
	}
	if *reportOut != "" {
		html, err := res.HTMLReport()
		if err == nil {
			err = store.AtomicWriteFile(*reportOut, []byte(html), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdac:", err)
			os.Exit(1)
		}
	}
	if *runDRC {
		violations := res.DRC()
		if len(violations) == 0 {
			fmt.Println("DRC: clean")
		} else {
			fmt.Printf("DRC: %d violations\n", len(violations))
			for _, v := range violations {
				fmt.Println(" ", v)
			}
			os.Exit(2)
		}
	}
}

// writeTraceFiles dumps the run's trace spans (JSONL and/or OTLP/JSON)
// and metrics (Prometheus text format) to the requested files. Output
// is rendered in memory and written atomically (temp + fsync + rename
// with Close checked), so a full disk or a crash mid-write surfaces as
// an error instead of a silently truncated file.
func writeTraceFiles(tr *ccdac.Trace, traceOut, otlpOut, metricsOut string) {
	if traceOut != "" {
		var buf bytes.Buffer
		err := tr.WriteJSONL(&buf)
		if err == nil {
			err = store.AtomicWriteFile(traceOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdac:", err)
			os.Exit(1)
		}
	}
	if otlpOut != "" {
		var buf bytes.Buffer
		err := tr.WriteOTLP(&buf, "ccdac")
		if err == nil {
			err = store.AtomicWriteFile(otlpOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdac:", err)
			os.Exit(1)
		}
	}
	if metricsOut != "" {
		// Fold the run's snapshot into a process-level registry — the
		// same Merge path the serve daemon uses — so the exposition is
		// the aggregated process view, not a bare per-trace dump.
		proc := obs.NewRegistry()
		proc.Merge(tr.MetricsSnapshot())
		var buf bytes.Buffer
		err := obs.WritePrometheus(&buf, proc.Snapshot())
		if err == nil {
			err = store.AtomicWriteFile(metricsOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdac:", err)
			os.Exit(1)
		}
	}
}
