// Command yield runs a correlated Monte-Carlo parametric-yield
// analysis of a generated capacitor array against INL/DNL specs,
// printing a yield curve per placement style.
//
// Usage:
//
//	yield -bits 8 -samples 200 -specs 0.005,0.01,0.05,0.1
//	yield -bits 10 -samples 100000 -jobs http://localhost:8080
//
// With -jobs, the sweep is submitted to a running ccdacd's async job
// tier (one yield job per style × spec point) instead of computing
// locally. The daemon's compatibility micro-batching coalesces the
// jobs sharing each style's layout, running the expensive placement,
// routing, extraction and covariance work once per style; results are
// byte-identical to local runs at the same seed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"ccdac/internal/core"
	"ccdac/internal/dacmodel"
	"ccdac/internal/jobs"
	"ccdac/internal/place"
	"ccdac/internal/tech"
	"ccdac/internal/yield"
)

func main() {
	bits := flag.Int("bits", 8, "DAC resolution (the spectral sampler keeps 12 bits interactive; see docs/PERFORMANCE.md)")
	samples := flag.Int("samples", 200, "Monte-Carlo samples per spec point")
	specsFlag := flag.String("specs", "0.001,0.002,0.004,0.01", "INL/DNL spec points in LSB")
	seed := flag.Int64("seed", 1, "random seed")
	memoize := flag.Bool("memo", false, "memoize pipeline stages across the per-style runs (see docs/PERFORMANCE.md)")
	jobsURL := flag.String("jobs", "", "submit the sweep to a running ccdacd's async job tier at this base URL (e.g. http://localhost:8080) instead of computing locally")
	flag.Parse()

	specs, err := parseSpecs(*specsFlag)
	if err != nil {
		fatal(err)
	}
	styles := []struct {
		name  string
		style place.Style
	}{
		{"spiral", place.Spiral},
		{"block-chessboard", place.BlockChessboard},
		{"chessboard", place.Chessboard},
	}
	fmt.Printf("%d-bit DAC parametric yield (%d samples/point, spec on both |INL| and |DNL|)\n\n", *bits, *samples)
	fmt.Printf("%-18s", "spec (LSB):")
	for _, s := range specs {
		fmt.Printf(" %12.3f", s)
	}
	fmt.Println()
	if *jobsURL != "" {
		if err := runViaJobs(strings.TrimRight(*jobsURL, "/"), *bits, *samples, *seed, specs, styles); err != nil {
			fatal(err)
		}
	} else {
		t := tech.FinFET12()
		for _, s := range styles {
			res, err := core.Run(core.Config{Bits: *bits, Style: s.style, SkipNL: true, Memo: *memoize})
			if err != nil {
				fatal(err)
			}
			par := dacmodel.Parasitics{CTSfF: res.Electrical.CTSfF}
			curve, err := yield.SpecSweep(res.Placement, res.Layout.CellCenter, t,
				math.Pi/4, specs, par, *samples, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-18s", s.name)
			for _, r := range curve {
				fmt.Printf("  %5.1f%% ±%3.0f", 100*r.Yield, 100*(r.CIHigh-r.CILow)/2)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nHigher dispersion (chessboard) passes tighter specs — the yield argument")
	fmt.Println("of Luo et al. [5] that motivates common-centroid dispersion.")
}

// runViaJobs submits one yield job per style × spec point, lets the
// daemon's micro-batching coalesce the per-style groups, then polls
// the jobs to completion and prints the same table the local path
// would.
func runViaJobs(base string, bits, samples int, seed int64, specs []float64,
	styles []struct {
		name  string
		style place.Style
	}) error {
	client := &http.Client{Timeout: 30 * time.Second}
	ids := make([][]string, len(styles))
	for si, st := range styles {
		ids[si] = make([]string, len(specs))
		for pi, sp := range specs {
			spec := jobs.Spec{
				Kind:    jobs.KindYield,
				Bits:    bits,
				Style:   st.name,
				Samples: samples,
				Seed:    seed,
				SpecINL: sp,
			}
			id, err := submitJob(client, base, spec)
			if err != nil {
				return fmt.Errorf("submitting %s spec %g: %w", st.name, sp, err)
			}
			ids[si][pi] = id
		}
	}
	for si, st := range styles {
		fmt.Printf("%-18s", st.name)
		for pi := range specs {
			res, err := awaitJob(client, base, ids[si][pi])
			if err != nil {
				return fmt.Errorf("job %s (%s): %w", ids[si][pi], st.name, err)
			}
			fmt.Printf("  %5.1f%% ±%3.0f", 100*res.Yield, 100*(res.CIHigh-res.CILow)/2)
		}
		fmt.Println()
	}
	return nil
}

// submitJob POSTs one job spec, honoring Retry-After backoff when the
// daemon's bounded queue overflows.
func submitJob(client *http.Client, base string, spec jobs.Spec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	for {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			fmt.Fprintf(os.Stderr, "yield: job queue full, retrying in %s\n", wait)
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return "", fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		var job jobs.Job
		if err := json.Unmarshal(data, &job); err != nil {
			return "", err
		}
		return job.ID, nil
	}
}

// awaitJob polls one job until it is terminal and returns its yield
// result.
func awaitJob(client *http.Client, base, id string) (*jobs.YieldResult, error) {
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET /v1/jobs/%s: %s", id, resp.Status)
		}
		var job jobs.Job
		if err := json.Unmarshal(data, &job); err != nil {
			return nil, err
		}
		switch job.State {
		case jobs.StateDone:
			var res jobs.YieldResult
			if err := json.Unmarshal(job.Result, &res); err != nil {
				return nil, err
			}
			return &res, nil
		case jobs.StateFailed, jobs.StateCanceled:
			return nil, fmt.Errorf("job %s: %s", job.State, job.Error)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func parseSpecs(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad spec %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no specs given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yield:", err)
	os.Exit(1)
}
