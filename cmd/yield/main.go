// Command yield runs a correlated Monte-Carlo parametric-yield
// analysis of a generated capacitor array against INL/DNL specs,
// printing a yield curve per placement style.
//
// Usage:
//
//	yield -bits 8 -samples 200 -specs 0.005,0.01,0.05,0.1
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"ccdac/internal/core"
	"ccdac/internal/dacmodel"
	"ccdac/internal/place"
	"ccdac/internal/tech"
	"ccdac/internal/yield"
)

func main() {
	bits := flag.Int("bits", 8, "DAC resolution (the spectral sampler keeps 12 bits interactive; see docs/PERFORMANCE.md)")
	samples := flag.Int("samples", 200, "Monte-Carlo samples per spec point")
	specsFlag := flag.String("specs", "0.001,0.002,0.004,0.01", "INL/DNL spec points in LSB")
	seed := flag.Int64("seed", 1, "random seed")
	memoize := flag.Bool("memo", false, "memoize pipeline stages across the per-style runs (see docs/PERFORMANCE.md)")
	flag.Parse()

	specs, err := parseSpecs(*specsFlag)
	if err != nil {
		fatal(err)
	}
	t := tech.FinFET12()
	styles := []struct {
		name  string
		style place.Style
	}{
		{"spiral", place.Spiral},
		{"block-chessboard", place.BlockChessboard},
		{"chessboard", place.Chessboard},
	}
	fmt.Printf("%d-bit DAC parametric yield (%d samples/point, spec on both |INL| and |DNL|)\n\n", *bits, *samples)
	fmt.Printf("%-18s", "spec (LSB):")
	for _, s := range specs {
		fmt.Printf(" %12.3f", s)
	}
	fmt.Println()
	for _, s := range styles {
		res, err := core.Run(core.Config{Bits: *bits, Style: s.style, SkipNL: true, Memo: *memoize})
		if err != nil {
			fatal(err)
		}
		par := dacmodel.Parasitics{CTSfF: res.Electrical.CTSfF}
		curve, err := yield.SpecSweep(res.Placement, res.Layout.CellCenter, t,
			math.Pi/4, specs, par, *samples, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-18s", s.name)
		for _, r := range curve {
			fmt.Printf("  %5.1f%% ±%3.0f", 100*r.Yield, 100*(r.CIHigh-r.CILow)/2)
		}
		fmt.Println()
	}
	fmt.Println("\nHigher dispersion (chessboard) passes tighter specs — the yield argument")
	fmt.Println("of Luo et al. [5] that motivates common-centroid dispersion.")
}

func parseSpecs(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad spec %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no specs given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yield:", err)
	os.Exit(1)
}
