package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a bench file and returns its path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBootstrapThenCleanThenRegression(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "BENCH_HISTORY.jsonl")
	bench := write(t, dir, "BENCH_x.json", `{"run_seconds": 1.0, "ops_per_second": 100, "bits": 8}`)

	// First run: no history — record the baseline, exit clean.
	var out, errb bytes.Buffer
	if code := run([]string{"-history", hist, "-update", bench}, &out, &errb); code != 0 {
		t.Fatalf("bootstrap run exit %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "baseline") {
		t.Fatalf("bootstrap output missing baseline note: %s", out.String())
	}

	// Identical data against its own baseline: clean.
	out.Reset()
	if code := run([]string{"-history", hist, bench}, &out, &errb); code != 0 {
		t.Fatalf("identical comparison exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("clean comparison output: %s", out.String())
	}

	// A 12% slowdown at the default 5% tolerance: exit 1, named metric.
	slow := write(t, dir, "BENCH_x.json", `{"run_seconds": 1.12, "ops_per_second": 100, "bits": 8}`)
	out.Reset()
	if code := run([]string{"-history", hist, slow}, &out, &errb); code != 1 {
		t.Fatalf("regression run exit %d, want 1: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "regressed") || !strings.Contains(out.String(), "run_seconds") {
		t.Fatalf("regression output does not name the metric: %s", out.String())
	}
}

func TestImprovementStaysClean(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "h.jsonl")
	bench := write(t, dir, "BENCH_y.json", `{"run_seconds": 1.0}`)
	run([]string{"-history", hist, "-update", bench}, &bytes.Buffer{}, &bytes.Buffer{})

	fast := write(t, dir, "BENCH_y.json", `{"run_seconds": 0.5}`)
	var out bytes.Buffer
	if code := run([]string{"-history", hist, fast}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("improvement run exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "improved") {
		t.Fatalf("improvement not reported: %s", out.String())
	}
}

func TestMissingMetricFails(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "h.jsonl")
	bench := write(t, dir, "BENCH_z.json", `{"run_seconds": 1.0, "ops_per_second": 50}`)
	run([]string{"-history", hist, "-update", bench}, &bytes.Buffer{}, &bytes.Buffer{})

	dropped := write(t, dir, "BENCH_z.json", `{"run_seconds": 1.0}`)
	var out bytes.Buffer
	if code := run([]string{"-history", hist, dropped}, &out, &bytes.Buffer{}); code != 1 {
		t.Fatalf("missing-metric run exit %d, want 1: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "missing") {
		t.Fatalf("missing metric not reported: %s", out.String())
	}
}

func TestUpdateAcknowledgesRegression(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "h.jsonl")
	bench := write(t, dir, "BENCH_u.json", `{"run_seconds": 1.0}`)
	run([]string{"-history", hist, "-update", bench}, &bytes.Buffer{}, &bytes.Buffer{})

	// Re-baselining over a regression still prints the move but exits 0:
	// -update is the explicit acknowledgment, not a gate.
	slow := write(t, dir, "BENCH_u.json", `{"run_seconds": 2.0}`)
	var out bytes.Buffer
	if code := run([]string{"-history", hist, "-update", slow}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("update-over-regression exit %d, want 0: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "regressed") {
		t.Fatalf("acknowledged move not reported: %s", out.String())
	}

	// The append took: the regressed value is now the baseline.
	out.Reset()
	if code := run([]string{"-history", hist, slow}, &out, &bytes.Buffer{}); code != 0 {
		t.Fatalf("post-update comparison exit %d: %s", code, out.String())
	}
}

func TestSchemaVersionMismatchExits2(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "h.jsonl")
	if err := os.WriteFile(hist,
		[]byte(`{"schema_version":99,"suite":"w","metrics":{"run_seconds":1}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bench := write(t, dir, "BENCH_w.json", `{"run_seconds": 1.0}`)
	var errb bytes.Buffer
	if code := run([]string{"-history", hist, bench}, &bytes.Buffer{}, &errb); code != 2 {
		t.Fatalf("schema mismatch exit %d, want 2: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "schema version") {
		t.Fatalf("schema error not explained: %s", errb.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var errb bytes.Buffer
	if code := run(nil, &bytes.Buffer{}, &errb); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"-history", "h", "does-not-exist.json"}, &bytes.Buffer{}, &errb); code != 2 {
		t.Fatalf("unreadable-file exit %d, want 2", code)
	}
}

func TestTolerancePermitsTrackedDelta(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "h.jsonl")
	bench := write(t, dir, "BENCH_t.json", `{"run_seconds": 1.0}`)
	run([]string{"-history", hist, "-update", bench}, &bytes.Buffer{}, &bytes.Buffer{})
	slow := write(t, dir, "BENCH_t.json", `{"run_seconds": 1.12}`)
	if code := run([]string{"-history", hist, "-tolerance", "0.2", slow}, &bytes.Buffer{}, &bytes.Buffer{}); code != 0 {
		t.Fatalf("12%% delta at 20%% tolerance exit %d, want 0", code)
	}
}

func TestSuiteOf(t *testing.T) {
	for file, want := range map[string]string{
		"BENCH_obs.json":        "obs",
		"/x/y/BENCH_serve.json": "serve",
		"custom.json":           "custom",
	} {
		if got := suiteOf(file); got != want {
			t.Errorf("suiteOf(%q) = %q, want %q", file, got, want)
		}
	}
}
