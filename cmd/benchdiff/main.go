// Command benchdiff gates benchmark regressions: it wraps the repo's
// BENCH_*.json files into the canonical benchfmt schema, compares each
// against the latest entry for its suite in the append-only
// BENCH_HISTORY.jsonl trajectory, and fails when a gating metric moved
// the wrong way beyond tolerance or vanished from the harness.
//
// Usage:
//
//	benchdiff -history BENCH_HISTORY.jsonl [-tolerance 0.05] [-update] [-v] BENCH_*.json
//
// The suite name is derived from each file name (BENCH_obs.json →
// obs). A suite with no history yet records a baseline verdict instead
// of failing, so the gate bootstraps itself. With -update, each report
// is appended to the history after comparison — run it after an
// intentional performance change to move the baseline; the diff is
// still printed, but an acknowledged move never exits 1.
//
// Exit codes: 0 clean (always with -update, barring I/O errors), 1
// regression or missing gating metric, 2 usage or schema error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ccdac/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges injected, so the golden tests drive the
// real argument parsing and exit-code mapping.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	history := fs.String("history", "BENCH_HISTORY.jsonl", "append-only JSONL benchmark trajectory")
	tolerance := fs.Float64("tolerance", 0.05, "relative change beyond which a gating metric regresses")
	update := fs.Bool("update", false, "append each report to the history after comparing")
	verbose := fs.Bool("v", false, "print every metric, not just the ones that moved")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark files given")
		fs.Usage()
		return 2
	}

	exit := 0
	for _, file := range files {
		suite := suiteOf(file)
		raw, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		cur, err := benchfmt.Wrap(suite, raw)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		base, err := benchfmt.LatestInHistory(*history, suite)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		if base == nil {
			fmt.Fprintf(stdout, "%-10s baseline (no history; %d metrics)\n", suite, len(cur.Metrics))
		} else {
			res, err := benchfmt.Diff(base, cur, benchfmt.DiffOptions{Tolerance: *tolerance})
			if err != nil {
				fmt.Fprintf(stderr, "benchdiff: %v\n", err)
				return 2
			}
			printResult(stdout, res, *verbose)
			// -update is the explicit act of moving the baseline: the
			// diff is still printed so the operator sees what moved, but
			// an acknowledged move is not a gate failure.
			if !res.OK() && !*update {
				exit = 1
			}
		}
		if *update {
			cur.UnixTime = time.Now().Unix()
			cur.GoVersion = runtime.Version()
			if err := benchfmt.AppendHistory(*history, cur); err != nil {
				fmt.Fprintf(stderr, "benchdiff: %v\n", err)
				return 2
			}
		}
	}
	return exit
}

// suiteOf maps BENCH_obs.json to "obs"; any other name is used whole
// (minus extension).
func suiteOf(file string) string {
	base := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
	return strings.TrimPrefix(base, "BENCH_")
}

func printResult(w io.Writer, res *benchfmt.DiffResult, verbose bool) {
	status := "ok"
	if !res.OK() {
		status = "FAIL"
	}
	fmt.Fprintf(w, "%-10s %s  (%d regressed, %d improved, %d missing; tolerance %.0f%%)\n",
		res.Suite, status, res.Regressions, res.Improvements, res.Missing, res.Tolerance*100)
	for _, m := range res.Metrics {
		show := verbose
		switch m.Verdict {
		case benchfmt.VerdictRegressed, benchfmt.VerdictMissing:
			show = true
		case benchfmt.VerdictImproved:
			show = true
		}
		if !show {
			continue
		}
		switch m.Verdict {
		case benchfmt.VerdictMissing:
			fmt.Fprintf(w, "  %-9s %s (was %g)\n", m.Verdict, m.Name, m.Old)
		case benchfmt.VerdictNew:
			fmt.Fprintf(w, "  %-9s %s = %g\n", m.Verdict, m.Name, m.New)
		default:
			unit := "%"
			chg := m.Change * 100
			if m.Absolute {
				unit = " abs"
				chg = m.Change
			}
			fmt.Fprintf(w, "  %-9s %s: %g -> %g (%+.2f%s, %s-better)\n",
				m.Verdict, m.Name, m.Old, m.New, chg, unit, m.Direction)
		}
	}
}
