// Command tables regenerates the paper's Tables I, II and III for the
// four methods ([1] annealed baseline, [7] chessboard, S spiral, BC
// best block chessboard) over a bit range.
//
// Usage:
//
//	tables [-table 1|2|3|all] [-bits 6,7,8,9,10] [-parallel 2] [-theta 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ccdac/internal/exp"
)

func main() {
	table := flag.String("table", "all", "which table to print: 1, 2, 3 or all")
	bitsFlag := flag.String("bits", "6,7,8,9,10", "comma-separated DAC resolutions")
	parallel := flag.Int("parallel", exp.DefaultParallel, "parallel wires for the S and BC flows")
	theta := flag.Int("theta", 8, "gradient angles swept for worst-case INL/DNL")
	annealMoves := flag.Int("anneal-moves", 0, "anneal baseline move budget (0 = size-scaled)")
	flag.Parse()

	bits, err := parseBits(*bitsFlag)
	if err != nil {
		fatal(err)
	}
	h := exp.NewHarness()
	h.Parallel = *parallel
	h.ThetaSteps = *theta
	h.AnnealMoves = *annealMoves

	if err := h.Prefetch(bits); err != nil {
		fatal(err)
	}
	want := func(t string) bool { return *table == "all" || *table == t }
	if want("1") {
		rows, err := h.TableI(bits)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatTableI(rows))
	}
	if want("2") {
		rows, err := h.TableII(bits)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatTableII(rows))
	}
	if want("3") {
		rows, err := h.TableIII(bits)
		if err != nil {
			fatal(err)
		}
		fmt.Println(exp.FormatTableIII(rows))
	}
	if !want("1") && !want("2") && !want("3") {
		fatal(fmt.Errorf("unknown -table %q (want 1, 2, 3 or all)", *table))
	}
}

func parseBits(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad bit count %q: %w", f, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no bit counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
