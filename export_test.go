package ccdac

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func generated(t *testing.T) *Result {
	t.Helper()
	r, err := Generate(Config{Bits: 6, Style: Spiral, MaxParallel: 2, SkipNonlinearity: true})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGDSExport(t *testing.T) {
	r := generated(t)
	data, err := r.GDS("spiral6")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 100 {
		t.Fatalf("GDS stream suspiciously small: %d bytes", len(data))
	}
	// HEADER record: length 6, type 0x00, datatype 0x02, version 600.
	want := []byte{0x00, 0x06, 0x00, 0x02, 0x02, 0x58}
	if !bytes.Equal(data[:6], want) {
		t.Errorf("GDS header = % x, want % x", data[:6], want)
	}
	// Stream ends with ENDLIB (0x04).
	if data[len(data)-2] != 0x04 {
		t.Error("GDS stream does not end with ENDLIB")
	}
}

func TestSpiceNetlistExport(t *testing.T) {
	r := generated(t)
	nl, err := r.SpiceNetlist(-1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nl, ".SUBCKT") || !strings.Contains(nl, ".ENDS") {
		t.Error("netlist missing subcircuit wrapper")
	}
	// Critical bit carries many unit caps -> many C elements.
	if strings.Count(nl, "\nC") < 16 {
		t.Errorf("critical-bit netlist has too few capacitors:\n%s", nl)
	}
	if _, err := r.SpiceNetlist(99); err == nil {
		t.Error("out-of-range bit must be rejected")
	}
	// Explicit bit works too.
	if _, err := r.SpiceNetlist(3); err != nil {
		t.Error(err)
	}
}

func TestFacadeDRCClean(t *testing.T) {
	r := generated(t)
	if v := r.DRC(); len(v) != 0 {
		t.Fatalf("generated layout has %d DRC violations: %s", len(v), v[0])
	}
}

func TestSimulatedSettleMatchesModel(t *testing.T) {
	r := generated(t)
	sim, err := r.SimulatedSettleSeconds()
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 15 model: (N+2) ln2 tau.
	model := float64(6+2) * math.Ln2 * r.Metrics.TauSec
	ratio := sim / model
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("simulated settle %g vs model %g (ratio %g)", sim, model, ratio)
	}
}

func TestHTMLReportFromFacade(t *testing.T) {
	r := generated(t)
	html, err := r.HTMLReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "<!DOCTYPE html>") || !strings.Contains(html, "DRC clean") {
		t.Error("report incomplete")
	}
}
