#!/bin/sh
# Store smoke: kill ccdacd with SIGKILL mid-load against a durable
# store directory, then assert a clean recovery — the restarted daemon
# serves the persisted results as cache hits, quarantines nothing, and
# the store directory holds no partial state. This is the end-to-end
# version of internal/store's TestCrashRecovery, run against the real
# binary (see docs/ROBUSTNESS.md, "Durable artifact store").
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
STORE="$WORK/store"
ADDR=127.0.0.1:18080
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

$GO build -o "$WORK/ccdacd" ./cmd/ccdacd

start_daemon() {
    "$WORK/ccdacd" -addr $ADDR -store-dir "$STORE" -log-level warn &
    PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "store-smoke: daemon never became ready" >&2
    exit 1
}

post() {
    curl -fsS "http://$ADDR/v1/generate" -d "$1"
}

echo "store-smoke: starting daemon with -store-dir $STORE"
start_daemon

# Drive load: a spread of fast requests, persisted write-behind, while
# more requests are still arriving — then kill -9 mid-flight.
for bits in 4 5 6 7; do
    post "{\"bits\":$bits,\"skip_nonlinearity\":true}" >/dev/null
done
( for i in $(seq 1 50); do
      post "{\"bits\":$((4 + i % 4)),\"skip_nonlinearity\":true,\"cache\":\"bypass\"}" >/dev/null 2>&1 || true
  done ) &
LOAD=$!
sleep 0.5
echo "store-smoke: SIGKILL mid-load"
kill -9 $PID
wait $LOAD 2>/dev/null || true

# Recovery audit: no quarantined blobs, no visible partial artifacts.
if [ -d "$STORE/quarantine" ] && [ -n "$(ls -A "$STORE/quarantine" 2>/dev/null)" ]; then
    echo "store-smoke: FAIL: quarantine is not empty after crash:" >&2
    ls "$STORE/quarantine" >&2
    exit 1
fi

echo "store-smoke: restarting over the crashed store"
start_daemon

# Results persisted before the crash must come back as warm hits.
HITS=0
for bits in 4 5 6 7; do
    STATUS=$(post "{\"bits\":$bits,\"skip_nonlinearity\":true}" | sed -n 's/.*"cache_status": *"\([a-z]*\)".*/\1/p')
    [ "$STATUS" = "hit" ] && HITS=$((HITS + 1))
done
if [ "$HITS" -lt 1 ]; then
    echo "store-smoke: FAIL: no persisted result survived the crash as a warm hit" >&2
    exit 1
fi

# The crashed-and-recovered store must still verify end to end.
if ! curl -fsS "http://$ADDR/metrics" | grep -q '^ccdac_store_degraded 0'; then
    echo "store-smoke: FAIL: restarted store reports degraded" >&2
    exit 1
fi
if curl -fsS "http://$ADDR/metrics" | grep '^ccdac_store_corruptions_quarantined_total' | grep -qv ' 0$'; then
    echo "store-smoke: FAIL: restarted daemon quarantined corrupt blobs" >&2
    exit 1
fi

kill -9 $PID 2>/dev/null || true
echo "store-smoke: PASS ($HITS/4 warm hits after SIGKILL recovery)"
