#!/bin/sh
# Jobs smoke: submit a long checkpointed Monte-Carlo yield job, kill
# ccdacd with SIGKILL mid-run, restart over the same -store-dir, and
# assert the job resumes from its last durable checkpoint and runs to
# completion. This is the end-to-end version of internal/serve's
# TestJobCrashResume, run against the real binary (see
# docs/OBSERVABILITY.md, "Async jobs").
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
STORE="$WORK/store"
ADDR=127.0.0.1:18081
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

$GO build -o "$WORK/ccdacd" ./cmd/ccdacd

start_daemon() {
    "$WORK/ccdacd" -addr $ADDR -store-dir "$STORE" -job-checkpoint 1000 -log-level warn &
    PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "jobs-smoke: daemon never became ready" >&2
    exit 1
}

field() { # field <name> — extract a scalar field from indented JSON on stdin
    sed -n "s/.*\"$1\": *\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p" | head -1
}

echo "jobs-smoke: starting daemon with -store-dir $STORE"
start_daemon

# A long job: ~100k samples at 8 bits with a checkpoint every 1000
# samples gives a wide window of durable progress to crash into.
JOB=$(curl -fsS "http://$ADDR/v1/jobs" \
    -d '{"kind":"yield","bits":8,"samples":100000,"seed":11,"spec_inl":0.05}')
ID=$(printf '%s' "$JOB" | field id)
if [ -z "$ID" ]; then
    echo "jobs-smoke: FAIL: no job id in response: $JOB" >&2
    exit 1
fi
echo "jobs-smoke: submitted job $ID"

# Wait for durable progress: at least 3 checkpoints on disk.
CKS=0
for _ in $(seq 1 200); do
    REC=$(curl -fsS "http://$ADDR/v1/jobs/$ID")
    STATE=$(printf '%s' "$REC" | field state)
    CKS=$(printf '%s' "$REC" | field checkpoints)
    CKS=${CKS:-0}
    if [ "$CKS" -ge 3 ]; then break; fi
    case "$STATE" in
        done|failed|canceled)
            echo "jobs-smoke: FAIL: job went $STATE before the crash window" >&2
            exit 1;;
    esac
    sleep 0.05
done
if [ "$CKS" -lt 3 ]; then
    echo "jobs-smoke: FAIL: never saw 3 checkpoints (got $CKS)" >&2
    exit 1
fi

echo "jobs-smoke: SIGKILL after $CKS checkpoints"
kill -9 $PID

echo "jobs-smoke: restarting over the crashed store"
start_daemon

# The restarted daemon must resume the interrupted job from its last
# checkpoint and finish it.
for _ in $(seq 1 600); do
    REC=$(curl -fsS "http://$ADDR/v1/jobs/$ID")
    STATE=$(printf '%s' "$REC" | field state)
    case "$STATE" in
        done) break;;
        failed|canceled)
            echo "jobs-smoke: FAIL: resumed job went $STATE: $REC" >&2
            exit 1;;
    esac
    sleep 0.1
done
if [ "$STATE" != "done" ]; then
    echo "jobs-smoke: FAIL: resumed job never finished (state=$STATE)" >&2
    exit 1
fi
if [ "$(printf '%s' "$REC" | field resumed)" != "true" ]; then
    echo "jobs-smoke: FAIL: finished job does not report resumed: $REC" >&2
    exit 1
fi
if [ "$(printf '%s' "$REC" | field done_samples)" != "100000" ]; then
    echo "jobs-smoke: FAIL: resumed job did not complete all samples: $REC" >&2
    exit 1
fi
HASH=$(printf '%s' "$REC" | field sample_hash)
if [ -z "$HASH" ]; then
    echo "jobs-smoke: FAIL: no sample_hash in resumed result: $REC" >&2
    exit 1
fi
METRICS=$(curl -fsS "http://$ADDR/metrics")
if ! printf '%s\n' "$METRICS" | grep -q '^ccdac_jobs_resumed_total 1'; then
    echo "jobs-smoke: FAIL: metrics do not report one resumed job" >&2
    exit 1
fi

kill -9 $PID 2>/dev/null || true
echo "jobs-smoke: PASS (resumed after $CKS checkpoints, sample_hash $HASH)"
