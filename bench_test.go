// Benchmarks regenerating each of the paper's tables and figures (one
// benchmark per artifact), plus micro-benchmarks of the flow stages.
// The printed rows of the actual tables come from cmd/tables and
// cmd/figures; these benchmarks measure the cost of regenerating them.
package ccdac_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"ccdac"
	"ccdac/internal/ccmatrix"
	"ccdac/internal/core"
	"ccdac/internal/dacmodel"
	"ccdac/internal/dacsim"
	"ccdac/internal/drc"
	"ccdac/internal/exp"
	"ccdac/internal/extract"
	"ccdac/internal/gds"
	"ccdac/internal/obs"
	"ccdac/internal/obs/profcap"
	"ccdac/internal/paperdata"
	"ccdac/internal/place"
	"ccdac/internal/render"
	"ccdac/internal/report"
	"ccdac/internal/route"
	"ccdac/internal/sar"
	"ccdac/internal/spice"
	"ccdac/internal/sweep"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
	"ccdac/internal/yield"
)

// BenchmarkTableI regenerates Table I (electrical metrics, all four
// methods) at 6 bits per iteration.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := exp.NewHarness()
		h.AnnealMoves = 2000
		if _, err := h.TableI([]int{6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates Table II (area, INL/DNL, f3dB).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := exp.NewHarness()
		h.AnnealMoves = 2000
		if _, err := h.TableII([]int{6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII measures the constructive place+route runtimes the
// paper's Table III reports, per bit count and style.
func BenchmarkTableIII(b *testing.B) {
	t := tech.FinFET12()
	for _, bits := range []int{6, 7, 8, 9, 10} {
		b.Run(fmt.Sprintf("spiral/N%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := place.NewSpiral(bits)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := route.Route(m, t, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("bc/N%d", bits), func(b *testing.B) {
			params := place.DefaultBCParams(bits)[0]
			for i := 0; i < b.N; i++ {
				m, err := place.NewBlockChessboard(bits, params)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := route.Route(m, t, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2 regenerates the four 6-bit placement views of Fig. 2.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m1, err := place.NewSpiral(6)
		if err != nil {
			b.Fatal(err)
		}
		m2, err := place.NewChessboard(6)
		if err != nil {
			b.Fatal(err)
		}
		m3, err := place.NewBlockChessboard(6, place.BCParams{CoreBits: 4, BlockCells: 4})
		if err != nil {
			b.Fatal(err)
		}
		m4, err := place.NewBlockChessboard(6, place.BCParams{CoreBits: 4, BlockCells: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = render.SVGPlacement(m1, "a")
		_ = render.SVGPlacement(m2, "b")
		_ = render.SVGPlacement(m3, "c")
		_ = render.SVGPlacement(m4, "d")
	}
}

// BenchmarkFig3 regenerates the routed 6-bit spiral of Fig. 3 with
// parallel wires on the MSB.
func BenchmarkFig3(b *testing.B) {
	t := tech.FinFET12()
	par := []int{1, 1, 1, 1, 1, 1, 2}
	for i := 0; i < b.N; i++ {
		m, err := place.NewSpiral(6)
		if err != nil {
			b.Fatal(err)
		}
		l, err := route.Route(m, t, par)
		if err != nil {
			b.Fatal(err)
		}
		_ = render.SVGLayout(l, "fig3")
		_ = render.GroupsSummary(l)
	}
}

// BenchmarkFig4 regenerates the 8-bit block-chessboard granularity
// strip of Fig. 4.
func BenchmarkFig4(b *testing.B) {
	params := place.DefaultBCParams(8)
	for i := 0; i < b.N; i++ {
		for _, p := range params {
			m, err := place.NewBlockChessboard(8, p)
			if err != nil {
				b.Fatal(err)
			}
			_ = render.SVGPlacement(m, "fig4")
		}
	}
}

// BenchmarkFig5 regenerates the routed 8-bit chessboard-vs-spiral
// comparison of Fig. 5.
func BenchmarkFig5(b *testing.B) {
	t := tech.FinFET12()
	for i := 0; i < b.N; i++ {
		cb, err := place.NewChessboard(8)
		if err != nil {
			b.Fatal(err)
		}
		lcb, err := route.Route(cb, t, nil)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := place.NewSpiral(8)
		if err != nil {
			b.Fatal(err)
		}
		lsp, err := route.Route(sp, t, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = render.SVGLayout(lcb, "5a")
		_ = render.SVGLayout(lsp, "5b")
	}
}

// BenchmarkFig6a regenerates the spiral parallel-wire improvement
// factors of Fig. 6(a) at 6 bits.
func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := exp.NewHarness()
		if _, err := h.Fig6a([]int{6}, []int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6b regenerates the per-method normalized f3dB series of
// Fig. 6(b) at 6 bits.
func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := exp.NewHarness()
		if _, err := h.Fig6b(6, []int{1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Flow-stage micro-benchmarks ---

func BenchmarkPlaceSpiral(b *testing.B) {
	for _, bits := range []int{6, 8, 10} {
		b.Run(fmt.Sprintf("N%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := place.NewSpiral(bits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPlaceChessboard(b *testing.B) {
	for _, bits := range []int{6, 8, 10} {
		b.Run(fmt.Sprintf("N%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := place.NewChessboard(bits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPlaceAnnealed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := place.NewAnnealed(6, place.AnnealConfig{Seed: 1, Moves: 5000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteByStyle(b *testing.B) {
	t := tech.FinFET12()
	for _, bits := range []int{6, 8, 10} {
		sp, err := place.NewSpiral(bits)
		if err != nil {
			b.Fatal(err)
		}
		cb, err := place.NewChessboard(bits)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("spiral/N%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := route.Route(sp, t, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("chessboard/N%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := route.Route(cb, t, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExtract(b *testing.B) {
	t := tech.FinFET12()
	for _, bits := range []int{6, 8, 10} {
		m, err := place.NewSpiral(bits)
		if err != nil {
			b.Fatal(err)
		}
		l, err := route.Route(m, t, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := extract.Extract(l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCovariance(b *testing.B) {
	t := tech.FinFET12()
	for _, bits := range []int{6, 8} {
		m, err := place.NewSpiral(bits)
		if err != nil {
			b.Fatal(err)
		}
		pos := variation.GridPositioner(t)
		b.Run(fmt.Sprintf("N%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := variation.Analyze(m, pos, t, math.Pi/4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNonlinearity(b *testing.B) {
	t := tech.FinFET12()
	for _, bits := range []int{6, 8, 10} {
		m, err := place.NewSpiral(bits)
		if err != nil {
			b.Fatal(err)
		}
		a, err := variation.Analyze(m, variation.GridPositioner(t), t, math.Pi/4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dacmodel.Nonlinearity(a, dacmodel.Parasitics{}, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFullFlowFacade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ccdac.Generate(ccdac.Config{Bits: 6, MaxParallel: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestBC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := core.RunBestBC(core.Config{Bits: 6, MaxParallel: 2, SkipNL: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarlo(b *testing.B) {
	t := tech.FinFET12()
	m, err := place.NewSpiral(6)
	if err != nil {
		b.Fatal(err)
	}
	pos := variation.GridPositioner(t)
	a, err := variation.Analyze(m, pos, t, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := variation.MonteCarlo(m, pos, t, a, 10, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension-system benchmarks ---

func BenchmarkDRC(b *testing.B) {
	m, err := place.NewSpiral(8)
	if err != nil {
		b.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := drc.Check(l); !res.Clean() {
			b.Fatal("unexpected violations")
		}
	}
}

func BenchmarkGDSEncode(b *testing.B) {
	m, err := place.NewSpiral(8)
	if err != nil {
		b.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := gds.FromLayout(l, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := lib.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpiceTransient(b *testing.B) {
	m, err := place.NewSpiral(6)
	if err != nil {
		b.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		b.Fatal(err)
	}
	sum, err := extract.Extract(l)
	if err != nil {
		b.Fatal(err)
	}
	crit := sum.Bits[sum.CriticalBit()]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spice.Transient(crit.Net, crit.Root, crit.TauSec/20, 200, crit.CellNodes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSARConversion(b *testing.B) {
	adc, err := sar.NewIdeal(10, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = adc.Convert(float64(i%1000) / 1000)
	}
}

func BenchmarkSARSNDR(b *testing.B) {
	adc, err := sar.NewIdeal(8, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = adc.SNDR(1024)
	}
}

func BenchmarkYieldEstimate(b *testing.B) {
	t := tech.FinFET12()
	m, err := place.NewSpiral(6)
	if err != nil {
		b.Fatal(err)
	}
	pos := variation.GridPositioner(t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := yield.Estimate(m, pos, t, math.Pi/4,
			yield.Spec{MaxAbsDNL: 0.01, MaxAbsINL: 0.01}, dacmodel.Parasitics{}, 20, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sweep.BCAblation(6, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceRandomSymmetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := place.NewRandomSymmetric(8, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDACGlitchScan(b *testing.B) {
	m, err := place.NewSpiral(6)
	if err != nil {
		b.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		b.Fatal(err)
	}
	sum, err := extract.Extract(l)
	if err != nil {
		b.Fatal(err)
	}
	model, err := dacsim.FromExtract(sum, ccmatrix.UnitCounts(6), 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.WorstGlitch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHTMLReport(b *testing.B) {
	r, err := core.Run(core.Config{Bits: 6, Style: place.Spiral, SkipNL: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := report.Write(&buf, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaperComparison(b *testing.B) {
	// Spearman scoring itself (measured cells reuse the paper data).
	measured := map[string]paperdata.Cell{}
	for _, c := range paperdata.Cells() {
		measured[paperdata.Key(c.Bits, c.Method)] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = paperdata.Compare(measured)
	}
}

func BenchmarkLineChart(b *testing.B) {
	series := []render.Series{
		{Name: "a", X: []float64{1, 2, 3, 4, 5, 6}, Y: []float64{1, 2, 3, 3.5, 4, 4.5}},
		{Name: "b", X: []float64{1, 2, 3, 4, 5, 6}, Y: []float64{1, 1.5, 1.7, 1.8, 1.9, 2}},
	}
	for i := 0; i < b.N; i++ {
		_ = render.LineChart(series, render.ChartOptions{Title: "bench"})
	}
}

// runRecorded executes one generation with the full live-telemetry
// pipeline armed the way the serve daemon arms it: a context-attached
// trace publishing span events to a bus with one draining subscriber,
// and the finished trace offered to a flight recorder.
func runRecorded(tb testing.TB, cfg ccdac.Config, bus *obs.Bus, rec *obs.Recorder) time.Duration {
	tb.Helper()
	tr := obs.New(obs.Options{PprofLabels: true})
	tr.AttachBus(bus)
	ctx := obs.WithTrace(context.Background(), tr)
	start := time.Now()
	ctx, root := obs.StartSpan(ctx, "bench.generate")
	_, err := ccdac.GenerateContext(ctx, cfg)
	root.End()
	d := time.Since(start)
	tr.Finish()
	if err != nil {
		tb.Fatal(err)
	}
	rec.Offer(obs.RecordedTrace{
		ID: tr.ID(), Name: "bench.generate",
		Start: start, Duration: d, Spans: tr.Spans(),
	})
	return d
}

// drainingBus returns a bus with one subscriber that consumes every
// event, plus a stop func that closes the subscriber and waits for the
// drain goroutine.
func drainingBus() (*obs.Bus, *obs.Recorder, func()) {
	bus := obs.NewBus()
	rec := obs.NewRecorder(obs.RecorderOptions{})
	sub := bus.Subscribe("", 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.Events() {
		}
	}()
	return bus, rec, func() {
		sub.Close()
		<-done
	}
}

// BenchmarkTraceOverhead compares the full flow with tracing disabled,
// enabled, and with the whole live-telemetry pipeline on (span event
// bus with an active subscriber + flight recorder); the disabled case
// is the cost every untraced run pays for the instrumentation sites
// (one atomic load each).
func BenchmarkTraceOverhead(b *testing.B) {
	for _, mode := range []struct {
		name  string
		trace bool
	}{{"disabled", false}, {"traced", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := ccdac.Config{Bits: 8, MaxParallel: 2, SkipNonlinearity: true, Trace: mode.trace}
			for i := 0; i < b.N; i++ {
				if _, err := ccdac.Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("recorder", func(b *testing.B) {
		cfg := ccdac.Config{Bits: 8, MaxParallel: 2, SkipNonlinearity: true}
		bus, rec, stop := drainingBus()
		defer stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runRecorded(b, cfg, bus, rec)
		}
	})
}

// TestBenchObs is the harness behind `make bench`: gated on
// BENCH_OBS_OUT, it times the full flow with tracing off and on (best
// of twenty), aggregates per-stage wall time from the trace, and writes
// the report as JSON to the named file.
func TestBenchObs(t *testing.T) {
	out := os.Getenv("BENCH_OBS_OUT")
	if out == "" {
		t.Skip("set BENCH_OBS_OUT=<file> to write the observability benchmark report")
	}
	cfg := ccdac.Config{Bits: 8, MaxParallel: 2}
	// Best-of-N per mode: N high enough that the best run reflects the
	// mode's floor, not scheduler luck, on shared CI machines.
	const benchReps = 20
	run := func(trace bool) (time.Duration, *ccdac.Trace) {
		c := cfg
		c.Trace = trace
		best := time.Duration(math.MaxInt64)
		var tr *ccdac.Trace
		for i := 0; i < benchReps; i++ {
			start := time.Now()
			res, err := ccdac.Generate(c)
			d := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			if d < best {
				best = d
			}
			if res.Trace != nil {
				tr = res.Trace
			}
		}
		return best, tr
	}
	plain, _ := run(false)
	traced, tr := run(true)

	// Recorder-on vs profcap-armed, interleaved rep for rep so both
	// modes face the same machine conditions. Recorder-on is the serve
	// daemon's steady state — armed trace, span event bus with a live
	// subscriber, flight recorder offer per run. The armed mode adds a
	// trigger consult per run against a capturer sitting in its
	// cooldown — the daemon's steady state between captures; the
	// trigger must cost two atomic loads, not a profile window.
	capt := profcap.New(profcap.Options{Window: time.Millisecond, Cooldown: time.Hour})
	warmed := make(chan profcap.Capture, 1)
	capt.Trigger("warm", "bench", func(c profcap.Capture) { warmed <- c })
	<-warmed // burn the one affordable capture; the cooldown now holds
	bus, rec, stop := drainingBus()
	recorded := time.Duration(math.MaxInt64)
	armed := time.Duration(math.MaxInt64)
	for i := 0; i < benchReps; i++ {
		if d := runRecorded(t, cfg, bus, rec); d < recorded {
			recorded = d
		}
		d := runRecorded(t, cfg, bus, rec)
		capt.Trigger("slow", "bench", nil)
		if d < armed {
			armed = d
		}
	}
	stop()
	if st := capt.Stats(); st.Captured != 1 || st.SuppressedCooldown != benchReps {
		t.Fatalf("profcap not idle during armed run: %+v", st)
	}

	stages := map[string]float64{}
	for _, s := range tr.Spans() {
		stages[s.Name] += s.Duration.Seconds()
	}
	report := struct {
		Bits                    int                `json:"bits"`
		PlainSeconds            float64            `json:"plain_seconds"`
		TracedSeconds           float64            `json:"traced_seconds"`
		OverheadPercent         float64            `json:"overhead_percent"`
		RecorderSeconds         float64            `json:"recorder_seconds"`
		RecorderOverheadPercent float64            `json:"recorder_overhead_percent"`
		ProfcapArmedSeconds     float64            `json:"profcap_armed_seconds"`
		ProfcapOverheadPercent  float64            `json:"profcap_overhead_percent"`
		StageSeconds            map[string]float64 `json:"stage_seconds"`
	}{
		Bits:                    cfg.Bits,
		PlainSeconds:            plain.Seconds(),
		TracedSeconds:           traced.Seconds(),
		OverheadPercent:         100 * (traced.Seconds() - plain.Seconds()) / plain.Seconds(),
		RecorderSeconds:         recorded.Seconds(),
		RecorderOverheadPercent: 100 * (recorded.Seconds() - plain.Seconds()) / plain.Seconds(),
		ProfcapArmedSeconds:     armed.Seconds(),
		// Profcap's marginal cost over the recorder steady state it
		// rides on (the trigger consult is the only addition).
		ProfcapOverheadPercent: 100 * (armed.Seconds() - recorded.Seconds()) / recorded.Seconds(),
		StageSeconds:           stages,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("plain %v, traced %v (%.2f%% overhead), recorder-on %v (%.2f%%), profcap-armed %v (%.2f%%) -> %s",
		plain, traced, report.OverheadPercent, recorded, report.RecorderOverheadPercent,
		armed, report.ProfcapOverheadPercent, out)
}
