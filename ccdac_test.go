package ccdac

import (
	"strings"
	"testing"
)

func TestGenerateDefaults(t *testing.T) {
	// Empty style defaults to spiral.
	r, err := Generate(Config{Bits: 6, MaxParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics
	if m.F3dBHz <= 0 || m.AreaUm2 <= 0 || m.ViaCuts <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if m.MaxAbsINL <= 0 || m.MaxAbsINL > 0.5 {
		t.Errorf("INL = %g out of expected band", m.MaxAbsINL)
	}
	if len(m.ParallelWires) != 7 {
		t.Errorf("parallel assignment length %d, want 7", len(m.ParallelWires))
	}
	if m.RTotalkOhm < m.RVkOhm {
		t.Error("total resistance below via resistance")
	}
}

func TestGenerateAllStyles(t *testing.T) {
	for _, s := range Styles() {
		cfg := Config{Bits: 6, Style: s, SkipNonlinearity: true, AnnealMoves: 2000}
		r, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.Metrics.F3dBHz <= 0 {
			t.Errorf("%s: degenerate f3dB", s)
		}
	}
}

func TestGenerateRejectsBadStyle(t *testing.T) {
	if _, err := Generate(Config{Bits: 6, Style: "bogus"}); err == nil {
		t.Fatal("unknown style must be rejected")
	}
}

func TestGenerateRejectsBadBits(t *testing.T) {
	if _, err := Generate(Config{Bits: 1}); err == nil {
		t.Fatal("bits below range must be rejected")
	}
	if _, err := Generate(Config{Bits: 42}); err == nil {
		t.Fatal("bits above range must be rejected")
	}
}

func TestGenerateBestBC(t *testing.T) {
	best, all, err := GenerateBestBC(Config{Bits: 6, MaxParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatalf("only %d BC candidates swept", len(all))
	}
	if best.Config.BlockCells == 0 {
		t.Error("best result does not report its block granularity")
	}
	for _, c := range all {
		ok := c.Metrics.MaxAbsDNL <= 0.5 && c.Metrics.MaxAbsINL <= 0.5
		if ok && c.Metrics.F3dBHz > best.Metrics.F3dBHz {
			t.Errorf("candidate %+v beats reported best", c.Config)
		}
	}
}

func TestRendersFromFacade(t *testing.T) {
	r, err := Generate(Config{Bits: 6, SkipNonlinearity: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(r.SVGPlacement("p"), "<svg") {
		t.Error("SVGPlacement not an SVG")
	}
	if !strings.HasPrefix(r.SVGLayout("l"), "<svg") {
		t.Error("SVGLayout not an SVG")
	}
	ascii := r.PlacementASCII()
	if len(strings.Split(strings.TrimSpace(ascii), "\n")) != 8 {
		t.Error("ASCII placement wrong shape")
	}
	if !strings.Contains(r.GroupsSummary(), "C_6") {
		t.Error("groups summary incomplete")
	}
}

func TestPaperHeadlineTradeoff(t *testing.T) {
	// The paper's headline: spiral trades INL/DNL for much higher f3dB
	// versus chessboard.
	sp, err := Generate(Config{Bits: 8, Style: Spiral, MaxParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Generate(Config{Bits: 8, Style: Chessboard})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Metrics.F3dBHz < 2*cb.Metrics.F3dBHz {
		t.Errorf("spiral f3dB %g not well above chessboard %g",
			sp.Metrics.F3dBHz, cb.Metrics.F3dBHz)
	}
	if sp.Metrics.MaxAbsINL <= cb.Metrics.MaxAbsINL {
		t.Errorf("spiral INL %g not above chessboard %g (tradeoff missing)",
			sp.Metrics.MaxAbsINL, cb.Metrics.MaxAbsINL)
	}
	if sp.Metrics.ViaCuts >= cb.Metrics.ViaCuts {
		t.Errorf("spiral vias %d not below chessboard %d",
			sp.Metrics.ViaCuts, cb.Metrics.ViaCuts)
	}
}

func TestTechNodeSelection(t *testing.T) {
	fin, err := Generate(Config{Bits: 6, SkipNonlinearity: true, TechNode: "finfet12"})
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := Generate(Config{Bits: 6, SkipNonlinearity: true, TechNode: "bulk65"})
	if err != nil {
		t.Fatal(err)
	}
	// Bulk unit cells are larger: bigger array.
	if bulk.Metrics.AreaUm2 <= fin.Metrics.AreaUm2 {
		t.Errorf("bulk area %g not above finfet %g", bulk.Metrics.AreaUm2, fin.Metrics.AreaUm2)
	}
	if _, err := Generate(Config{Bits: 6, TechNode: "tube"}); err == nil {
		t.Error("unknown tech node must be rejected")
	}
}
