package ccdac

import (
	"bytes"
	"fmt"

	"ccdac/internal/drc"
	"ccdac/internal/gds"
	"ccdac/internal/report"
	"ccdac/internal/spice"
)

// GDS exports the routed layout as a GDSII stream: unit-capacitor
// outlines on the device layer (datatype = capacitor index + 1), wires
// as paths on their metal layers, via cuts on the via layers.
func (r *Result) GDS(name string) ([]byte, error) {
	lib, err := gds.FromLayout(r.res.Layout, name)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := lib.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SpiceNetlist exports the extracted RC charging network of one
// capacitor as a SPICE subcircuit. Pass bit = -1 for the critical
// (frequency-limiting) bit.
func (r *Result) SpiceNetlist(bit int) (string, error) {
	if bit == -1 {
		bit = r.Metrics.CriticalBit
	}
	if bit < 0 || bit >= len(r.res.Electrical.Bits) {
		return "", fmt.Errorf("ccdac: bit %d out of range 0..%d", bit, len(r.res.Electrical.Bits)-1)
	}
	bn := r.res.Electrical.Bits[bit]
	name := fmt.Sprintf("%s_%dbit_c%d", r.Config.Style, r.Config.Bits, bit)
	return spice.Netlist(bn.Net, bn.Root, name), nil
}

// DRC runs the design-rule checker on the routed layout and returns
// one line per violation (empty slice = clean).
func (r *Result) DRC() []string {
	res := drc.Check(r.res.Layout)
	out := make([]string, len(res.Violations))
	for i, v := range res.Violations {
		out[i] = v.String()
	}
	return out
}

// HTMLReport renders a self-contained HTML design report: layout and
// placement views, Table I/II metrics, per-bit extraction detail, the
// group inventory, and the DRC verdict.
func (r *Result) HTMLReport() (string, error) {
	var buf bytes.Buffer
	if err := report.Write(&buf, r.res); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// SimulatedSettleSeconds runs a Backward-Euler transient simulation of
// the critical bit's charging network and returns the time for every
// unit capacitor to settle within 1/4 LSB of the final value — the
// circuit-level validation of the Elmore-based f3dB model (Eq. 15).
func (r *Result) SimulatedSettleSeconds() (float64, error) {
	crit := r.res.Electrical.Bits[r.Metrics.CriticalBit]
	tol := 1.0 / float64(int(4)<<r.Config.Bits) // 2^-N / 4
	return spice.SettleWithin(crit.Net, crit.Root, crit.CellNodes, tol, crit.TauSec)
}
