// Benchmarks and the acceptance report for the analysis hot paths:
// the memoized parallel covariance build, the binned coupling sweep,
// and the parallel per-bit extraction. TestBenchAnalyze (gated on
// BENCH_ANALYZE_OUT) regenerates BENCH_analyze.json, comparing each
// optimized path against a seed-style serial reference in-process.
package ccdac_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/extract"
	"ccdac/internal/geom"
	"ccdac/internal/par"
	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

// BenchmarkAnalyzeCov measures the covariance-dominated variation
// analysis, serial (workers = -1) and at the default worker budget.
func BenchmarkAnalyzeCov(b *testing.B) {
	t := tech.FinFET12()
	for _, bits := range []int{6, 8, 10} {
		m, err := place.NewSpiral(bits)
		if err != nil {
			b.Fatal(err)
		}
		pos := variation.GridPositioner(t)
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", -1}, {"parallel", 0}} {
			ctx := par.WithWorkers(context.Background(), mode.workers)
			b.Run(fmt.Sprintf("N%d/%s", bits, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := variation.AnalyzeContext(ctx, m, pos, t, math.Pi/4); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCoupleSweep measures just the inter-bit coupling sweep of a
// routed layout (the binned interval-index pass).
func BenchmarkCoupleSweep(b *testing.B) {
	t := tech.FinFET12()
	for _, bits := range []int{6, 8, 10} {
		m, err := place.NewSpiral(bits)
		if err != nil {
			b.Fatal(err)
		}
		l, err := route.Route(m, t, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				extract.Coupling(l)
			}
		})
	}
}

// BenchmarkExtractBits measures the full extraction with the per-bit
// network build serial vs at the default worker budget.
func BenchmarkExtractBits(b *testing.B) {
	t := tech.FinFET12()
	for _, bits := range []int{6, 8, 10} {
		m, err := place.NewSpiral(bits)
		if err != nil {
			b.Fatal(err)
		}
		l, err := route.Route(m, t, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", -1}, {"parallel", 0}} {
			ctx := par.WithWorkers(context.Background(), mode.workers)
			b.Run(fmt.Sprintf("N%d/%s", bits, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := extract.ExtractContext(ctx, l); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// naiveCovarianceBuild is the seed's covariance formulation: a full
// double loop over every unit-cell pair with per-pair Euclidean
// distance and math.Pow — no memo, no exp form, no symmetry halving.
func naiveCovarianceBuild(m *ccmatrix.Matrix, pos variation.Positioner, t *tech.Technology) [][]float64 {
	n := m.Bits + 1
	cells := make([][]geom.Pt, n)
	for bit := 0; bit < n; bit++ {
		for _, c := range m.CellsOf(bit) {
			cells[bit] = append(cells[bit], pos(c))
		}
	}
	sigmaU := t.SigmaU()
	cov := make([][]float64, n)
	for j := 0; j < n; j++ {
		cov[j] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		for k := j; k < n; k++ {
			var sum float64
			for _, pj := range cells[j] {
				for _, pk := range cells[k] {
					sum += math.Pow(t.Mis.RhoU, pj.Dist(pk)/t.Mis.LcUm)
				}
			}
			c := sigmaU * sigmaU * sum
			cov[j][k] = c
			cov[k][j] = c
		}
	}
	return cov
}

// quadraticCoupleSweep is the seed's O(W²) all-pairs coupling scan,
// the reference the binned sweep's scaling is measured against.
func quadraticCoupleSweep(l *route.Layout) (cbb float64, pairs int) {
	const couplingReach = 6.0
	for i := 0; i < len(l.Wires); i++ {
		wi := l.Wires[i]
		if wi.Bit == route.TopPlateBit {
			continue
		}
		for j := i + 1; j < len(l.Wires); j++ {
			wj := l.Wires[j]
			if wj.Bit == route.TopPlateBit || wj.Bit == wi.Bit || wi.Layer != wj.Layer {
				continue
			}
			sep := wi.Seg.Separation(wj.Seg)
			if sep == 0 || sep > couplingReach*l.Tech.SMinUm {
				continue
			}
			ov := wi.Seg.OverlapLen(wj.Seg)
			if ov <= 0 {
				continue
			}
			cbb += l.Tech.CouplingfFPerUm(sep) * ov
			pairs++
		}
	}
	return cbb, pairs
}

// rowMajorMatrix builds a valid binary-weighted placement above the
// public bits cap by assigning capacitors to row-major runs of the
// grid. Covariance cost does not depend on the assignment pattern, so
// this is a fair timing stand-in for a 14-bit layout.
func rowMajorMatrix(bits int) *ccmatrix.Matrix {
	side := 1 << (uint(bits) / 2)
	rows, cols := side, side
	if bits%2 == 1 {
		cols *= 2
	}
	m := ccmatrix.New(rows, cols, bits, 1)
	i := 0
	for k, n := range ccmatrix.UnitCounts(bits) {
		for u := 0; u < n; u++ {
			m.Set(geom.Cell{Row: i / cols, Col: i % cols}, k)
			i++
		}
	}
	return m
}

// bestOf runs f reps times and returns the fastest wall time.
func bestOf(reps int, f func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestBenchAnalyze writes the hot-path acceptance report: the 10-bit
// covariance build against the seed-style serial reference (the ≥3×
// acceptance criterion) and the coupling sweep's scaling against the
// quadratic reference. Gated so routine test runs stay fast:
//
//	BENCH_ANALYZE_OUT=BENCH_analyze.json go test -run TestBenchAnalyze .
func TestBenchAnalyze(t *testing.T) {
	out := os.Getenv("BENCH_ANALYZE_OUT")
	if out == "" {
		t.Skip("set BENCH_ANALYZE_OUT=<file> to write the analysis hot-path benchmark report")
	}
	tch := tech.FinFET12()
	pos := variation.GridPositioner(tch)

	const covBits = 10
	m, err := place.NewSpiral(covBits)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the shared rho memo first so the comparison measures the
	// steady state a pipeline run sees, then time both formulations.
	if _, err := variation.Analyze(m, pos, tch, 0); err != nil {
		t.Fatal(err)
	}
	naive := bestOf(3, func() { naiveCovarianceBuild(m, pos, tch) })
	optimized := bestOf(3, func() {
		if _, err := variation.Analyze(m, pos, tch, 0); err != nil {
			t.Fatal(err)
		}
	})
	covSpeedup := naive.Seconds() / optimized.Seconds()
	if covSpeedup < 3 {
		t.Errorf("10-bit covariance speedup = %.2fx, acceptance requires >= 3x", covSpeedup)
	}

	type couplingPoint struct {
		Bits             int     `json:"bits"`
		Wires            int     `json:"wires"`
		Pairs            int     `json:"pairs"`
		BinnedSeconds    float64 `json:"binned_seconds"`
		QuadraticSeconds float64 `json:"quadratic_seconds"`
		Speedup          float64 `json:"speedup"`
	}
	var coupling []couplingPoint
	for _, bits := range []int{6, 8, 10} {
		pm, err := place.NewSpiral(bits)
		if err != nil {
			t.Fatal(err)
		}
		l, err := route.Route(pm, tch, nil)
		if err != nil {
			t.Fatal(err)
		}
		var cbb float64
		var pairs int
		binned := bestOf(5, func() { cbb, pairs = extract.Coupling(l) })
		var refCBB float64
		var refPairs int
		quadratic := bestOf(5, func() { refCBB, refPairs = quadraticCoupleSweep(l) })
		if pairs != refPairs || math.Abs(cbb-refCBB) > 1e-9*math.Max(1, refCBB) {
			t.Fatalf("N%d: binned sweep (%g fF, %d pairs) disagrees with quadratic reference (%g fF, %d pairs)",
				bits, cbb, pairs, refCBB, refPairs)
		}
		coupling = append(coupling, couplingPoint{
			Bits:             bits,
			Wires:            len(l.Wires),
			Pairs:            pairs,
			BinnedSeconds:    binned.Seconds(),
			QuadraticSeconds: quadratic.Seconds(),
			Speedup:          quadratic.Seconds() / binned.Seconds(),
		})
	}
	first, last := coupling[0], coupling[len(coupling)-1]
	// Empirical scaling exponent of the binned sweep in wire count; the
	// quadratic reference sits at ~2 by construction.
	binnedExp := math.Log(last.BinnedSeconds/first.BinnedSeconds) /
		math.Log(float64(last.Wires)/float64(first.Wires))
	quadExp := math.Log(last.QuadraticSeconds/first.QuadraticSeconds) /
		math.Log(float64(last.Wires)/float64(first.Wires))
	if last.BinnedSeconds >= last.QuadraticSeconds {
		t.Errorf("10-bit binned sweep (%v) not faster than quadratic reference (%v)",
			time.Duration(last.BinnedSeconds*float64(time.Second)),
			time.Duration(last.QuadraticSeconds*float64(time.Second)))
	}
	if binnedExp >= quadExp {
		t.Errorf("binned scaling exponent %.2f not below quadratic reference's %.2f", binnedExp, quadExp)
	}

	// FFT-vs-dense covariance engines, serial so the comparison is
	// algorithmic rather than scheduling. 12 bits is the public cap and
	// carries the >=5x acceptance assert; 14 bits (internal-only grid)
	// shows the gap keeps widening with the O(n²)-vs-O(M log M) split.
	type fftPoint struct {
		Bits         int     `json:"bits"`
		Cells        int     `json:"cells"`
		DenseSeconds float64 `json:"dense_seconds"`
		FFTSeconds   float64 `json:"fft_seconds"`
		Speedup      float64 `json:"speedup"`
		MaxRelDiff   float64 `json:"max_rel_diff"`
	}
	serialFFT := par.WithWorkers(context.Background(), -1)
	serialDense := variation.WithFFTMode(serialFFT, variation.FFTOff)
	var fftCases []fftPoint
	for _, bits := range []int{12, 14} {
		var fm *ccmatrix.Matrix
		if bits <= 12 {
			fm, err = place.NewSpiral(bits)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			fm = rowMajorMatrix(bits)
		}
		reps := 3
		if bits >= 14 {
			reps = 2
		}
		var structured, dense *variation.Analysis
		fftTime := bestOf(reps, func() {
			if structured, err = variation.AnalyzeContext(serialFFT, fm, pos, tch, 0); err != nil {
				t.Fatal(err)
			}
		})
		denseTime := bestOf(reps, func() {
			if dense, err = variation.AnalyzeContext(serialDense, fm, pos, tch, 0); err != nil {
				t.Fatal(err)
			}
		})
		maxRel := 0.0
		for j := 0; j <= bits; j++ {
			for k := 0; k <= bits; k++ {
				s, d := structured.Cov.At(j, k), dense.Cov.At(j, k)
				if e := math.Abs(s-d) / math.Abs(d); e > maxRel {
					maxRel = e
				}
			}
		}
		if maxRel > 1e-10 {
			t.Errorf("N%d: FFT vs dense covariance rel diff %g exceeds 1e-10", bits, maxRel)
		}
		speedup := denseTime.Seconds() / fftTime.Seconds()
		if bits == 12 && speedup < 5 {
			t.Errorf("12-bit FFT covariance speedup = %.2fx, acceptance requires >= 5x", speedup)
		}
		fftCases = append(fftCases, fftPoint{
			Bits:         bits,
			Cells:        fm.Rows * fm.Cols,
			DenseSeconds: denseTime.Seconds(),
			FFTSeconds:   fftTime.Seconds(),
			Speedup:      speedup,
			MaxRelDiff:   maxRel,
		})
	}

	// The separable (routed-layout) tier: the same 12-bit array through
	// its routed CellCenter positions, where the non-uniform channel
	// widths break the regular lattice and the row-spectral embedding
	// carries the structured path — analysis and Monte-Carlo.
	routedM, err := place.NewSpiral(12)
	if err != nil {
		t.Fatal(err)
	}
	routedL, err := route.Route(routedM, tch, nil)
	if err != nil {
		t.Fatal(err)
	}
	routedPos := variation.Positioner(routedL.CellCenter)
	var rStruct, rDense *variation.Analysis
	routedFFT := bestOf(3, func() {
		if rStruct, err = variation.AnalyzeContext(serialFFT, routedM, routedPos, tch, 0); err != nil {
			t.Fatal(err)
		}
	})
	routedDense := bestOf(3, func() {
		if rDense, err = variation.AnalyzeContext(serialDense, routedM, routedPos, tch, 0); err != nil {
			t.Fatal(err)
		}
	})
	routedRel := 0.0
	for j := 0; j <= 12; j++ {
		for k := 0; k <= 12; k++ {
			s, d := rStruct.Cov.At(j, k), rDense.Cov.At(j, k)
			if e := math.Abs(s-d) / math.Abs(d); e > routedRel {
				routedRel = e
			}
		}
	}
	if routedRel > 1e-10 {
		t.Errorf("routed N12: FFT vs dense covariance rel diff %g exceeds 1e-10", routedRel)
	}
	routedSpeedup := routedDense.Seconds() / routedFFT.Seconds()
	if routedSpeedup < 3 {
		t.Errorf("routed 12-bit FFT covariance speedup = %.2fx, want >= 3x", routedSpeedup)
	}
	routedPoint := fftPoint{
		Bits:         12,
		Cells:        routedM.Rows * routedM.Cols,
		DenseSeconds: routedDense.Seconds(),
		FFTSeconds:   routedFFT.Seconds(),
		Speedup:      routedSpeedup,
		MaxRelDiff:   routedRel,
	}
	const mcRoutedSamples = 100
	mcRoutedFFT := bestOf(2, func() {
		if _, err := variation.MonteCarloContext(serialFFT, routedM, routedPos, tch, rStruct, mcRoutedSamples, 1); err != nil {
			t.Fatal(err)
		}
	})
	mcRoutedDense := bestOf(2, func() {
		if _, err := variation.MonteCarloContext(serialDense, routedM, routedPos, tch, rStruct, mcRoutedSamples, 1); err != nil {
			t.Fatal(err)
		}
	})
	if s := mcRoutedDense.Seconds() / mcRoutedFFT.Seconds(); s < 3 {
		t.Errorf("routed 12-bit spectral MC speedup = %.2fx, want >= 3x", s)
	}

	// Monte-Carlo engines at 10 bits: the spectral sampler against the
	// dense build-covariance-and-Cholesky path, then a million-sample
	// spectral run (6 bits) proving sampling throughput needs no n×n
	// matrix at any sample count.
	mcM, err := place.NewSpiral(10)
	if err != nil {
		t.Fatal(err)
	}
	aMC, err := variation.AnalyzeContext(serialFFT, mcM, pos, tch, 0)
	if err != nil {
		t.Fatal(err)
	}
	const mcSamples = 2000
	mcFFT := bestOf(2, func() {
		if _, err := variation.MonteCarloContext(serialFFT, mcM, pos, tch, aMC, mcSamples, 1); err != nil {
			t.Fatal(err)
		}
	})
	mcDense := bestOf(2, func() {
		if _, err := variation.MonteCarloContext(serialDense, mcM, pos, tch, aMC, mcSamples, 1); err != nil {
			t.Fatal(err)
		}
	})
	mcSmall, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	aSmall, err := variation.AnalyzeContext(serialFFT, mcSmall, pos, tch, 0)
	if err != nil {
		t.Fatal(err)
	}
	const millionSamples = 1_000_000
	millionStart := time.Now()
	if _, err := variation.MonteCarloContext(serialFFT, mcSmall, pos, tch, aSmall, millionSamples, 1); err != nil {
		t.Fatal(err)
	}
	million := time.Since(millionStart)

	report := struct {
		GOMAXPROCS        int             `json:"gomaxprocs"`
		CovarianceBits    int             `json:"covariance_bits"`
		SeedSerialSeconds float64         `json:"covariance_seed_serial_seconds"`
		OptimizedSeconds  float64         `json:"covariance_optimized_seconds"`
		CovSpeedup        float64         `json:"covariance_speedup"`
		Coupling          []couplingPoint `json:"coupling"`
		BinnedScalingExp  float64         `json:"coupling_binned_scaling_exponent"`
		QuadScalingExp    float64         `json:"coupling_quadratic_scaling_exponent"`
		FFT               []fftPoint      `json:"fft"`
		FFTRouted         fftPoint        `json:"fft_routed"`
		MCRoutedSamples   int             `json:"mc_routed_samples"`
		MCRoutedDenseSecs float64         `json:"mc_routed_dense_seconds"`
		MCRoutedFFTSecs   float64         `json:"mc_routed_fft_seconds"`
		MCRoutedSpeedup   float64         `json:"mc_routed_speedup"`
		MCBits            int             `json:"mc_bits"`
		MCSamples         int             `json:"mc_samples"`
		MCDenseSeconds    float64         `json:"mc_dense_seconds"`
		MCFFTSeconds      float64         `json:"mc_fft_seconds"`
		MCSpeedup         float64         `json:"mc_speedup"`
		MCMillionBits     int             `json:"mc_million_bits"`
		MCMillionSamples  int             `json:"mc_million_samples"`
		MCMillionSeconds  float64         `json:"mc_million_seconds"`
		MCSamplesPerSec   float64         `json:"mc_fft_samples_per_second"`
	}{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		CovarianceBits:    covBits,
		SeedSerialSeconds: naive.Seconds(),
		OptimizedSeconds:  optimized.Seconds(),
		CovSpeedup:        covSpeedup,
		Coupling:          coupling,
		BinnedScalingExp:  binnedExp,
		QuadScalingExp:    quadExp,
		FFT:               fftCases,
		FFTRouted:         routedPoint,
		MCRoutedSamples:   mcRoutedSamples,
		MCRoutedDenseSecs: mcRoutedDense.Seconds(),
		MCRoutedFFTSecs:   mcRoutedFFT.Seconds(),
		MCRoutedSpeedup:   mcRoutedDense.Seconds() / mcRoutedFFT.Seconds(),
		MCBits:            10,
		MCSamples:         mcSamples,
		MCDenseSeconds:    mcDense.Seconds(),
		MCFFTSeconds:      mcFFT.Seconds(),
		MCSpeedup:         mcDense.Seconds() / mcFFT.Seconds(),
		MCMillionBits:     6,
		MCMillionSamples:  millionSamples,
		MCMillionSeconds:  million.Seconds(),
		MCSamplesPerSec:   float64(millionSamples) / million.Seconds(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("covariance: seed %v -> optimized %v (%.1fx); coupling exponent %.2f vs %.2f -> %s",
		naive, optimized, covSpeedup, binnedExp, quadExp, out)
	for _, p := range fftCases {
		t.Logf("fft covariance N%d (%d cells): dense %v -> fft %v (%.1fx, rel diff %.2g)",
			p.Bits, p.Cells, time.Duration(p.DenseSeconds*float64(time.Second)),
			time.Duration(p.FFTSeconds*float64(time.Second)), p.Speedup, p.MaxRelDiff)
	}
	t.Logf("routed N12: analyze dense %v -> fft %v (%.1fx, rel diff %.2g); mc x%d dense %v -> fft %v (%.1fx)",
		routedDense, routedFFT, routedSpeedup, routedRel,
		mcRoutedSamples, mcRoutedDense, mcRoutedFFT, report.MCRoutedSpeedup)
	t.Logf("mc N10 x%d: dense %v -> fft %v (%.1fx); 1e6-sample spectral run: %v (%.0f samples/s)",
		mcSamples, mcDense, mcFFT, report.MCSpeedup, million, report.MCSamplesPerSec)
}
