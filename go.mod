module ccdac

go 1.22
