// Package ccdac generates common-centroid placements and constructive
// routing for binary-weighted capacitor arrays in charge-scaling DACs,
// reproducing Karmokar et al., "Constructive Common-Centroid Placement
// and Routing for Binary-Weighted Capacitor Arrays" (DATE 2022).
//
// The package offers the paper's placement styles — the low-via spiral,
// the maximum-dispersion chessboard of Burcea et al. [7], the
// block-chessboard tradeoff family, and an annealed baseline standing
// in for Lin et al. [1] — routes them with the paper's Algorithm 1
// (channel selection, track assignment, branch/trunk/bridge wires,
// optional parallel wires on critical bits), extracts parasitics, and
// evaluates the circuit metrics: Elmore-delay-based 3dB switching
// frequency and 3σ worst-case INL/DNL under a linear oxide gradient
// plus spatially-correlated random mismatch.
//
// Quick start:
//
//	res, err := ccdac.Generate(ccdac.Config{Bits: 8, Style: ccdac.Spiral, MaxParallel: 2})
//	if err != nil { ... }
//	fmt.Printf("f3dB = %.0f MHz, |INL| = %.3f LSB\n",
//	        res.Metrics.F3dBHz/1e6, res.Metrics.MaxAbsINL)
//	os.WriteFile("layout.svg", []byte(res.SVGLayout("8-bit spiral")), 0o644)
package ccdac

import (
	"context"

	"ccdac/internal/core"
	"ccdac/internal/obs"
	"ccdac/internal/place"
	"ccdac/internal/render"
	"ccdac/internal/store"
	"ccdac/internal/tech"
)

// Style selects a placement algorithm.
type Style string

const (
	// Spiral is the paper's routing-friendly placement: C_2..C_N wind
	// outward from the center in mirrored pairs, minimizing bends and
	// vias (best 3dB frequency, worst INL/DNL).
	Spiral Style = "spiral"
	// Chessboard is the maximum-dispersion placement of Burcea et
	// al. [7] (best INL/DNL, worst 3dB frequency). Odd bit counts
	// double every capacitor's unit cells, as in the paper.
	Chessboard Style = "chessboard"
	// BlockChessboard is the paper's tradeoff family: a full-chessboard
	// core for the LSB capacitors inside a blocked outer corridor for
	// the MSBs.
	BlockChessboard Style = "block-chessboard"
	// Annealed is a simulated-annealing baseline standing in for the
	// stochastic generator of Lin et al. [1] (even bit counts only).
	Annealed Style = "annealed"
)

// Styles lists every supported placement style.
func Styles() []Style {
	return []Style{Spiral, Chessboard, BlockChessboard, Annealed}
}

// Config selects and parameterizes one generation run.
type Config struct {
	// Bits is the DAC resolution N: the array holds capacitors C_0..C_N
	// with ratios 1:1:2:...:2^(N-1) on 2^N unit cells. Supported range
	// is 2..12; the paper evaluates 6..10.
	Bits int
	// Style selects the placement algorithm (default Spiral).
	Style Style
	// CoreBits and BlockCells parameterize BlockChessboard placements:
	// capacitors C_0..C_CoreBits form the chessboard core (CoreBits
	// even), and corridor capacitors are laid out in BlockCells-cell
	// blocks. Zero values select a sensible default; use GenerateBestBC
	// to sweep the grid as the paper does.
	CoreBits, BlockCells int
	// MaxParallel enables parallel-wire routing: the critical (slowest)
	// bit is promoted to MaxParallel parallel wires and re-routed,
	// iterating until the critical bit is already parallel. Values <= 1
	// disable it.
	MaxParallel int
	// AnnealSeed and AnnealMoves tune the Annealed baseline (0 =
	// defaults; deterministic for any fixed seed).
	AnnealSeed int64
	// AnnealMoves caps the annealing move count.
	AnnealMoves int
	// ThetaSteps is the number of oxide-gradient angles swept for the
	// worst-case INL/DNL (0 selects 8).
	ThetaSteps int
	// SkipNonlinearity skips the INL/DNL analysis, leaving only the
	// electrical and frequency metrics (faster).
	SkipNonlinearity bool
	// Workers bounds the goroutines used by the analysis hot loops
	// (covariance rows, theta steps, per-bit extraction, Monte-Carlo
	// samples). 0 uses GOMAXPROCS; negative values force serial
	// execution. Results are identical at any worker count — the knob
	// trades wall time only. Servers hosting several concurrent runs
	// should set this so MaxInFlight × Workers ≈ GOMAXPROCS.
	Workers int
	// TechNode selects the process technology: "finfet12" (default,
	// the paper's target class) or "bulk65" (an older-node contrast
	// where vias are cheap and via-heavy layouts are not penalized).
	TechNode string
	// Trace enables observability for this run: every pipeline stage is
	// recorded as a timed span and solver/router effort as metrics,
	// surfaced on Result.Trace. Runs without Trace pay one atomic load
	// per instrumentation site. See docs/OBSERVABILITY.md.
	Trace bool
	// TraceMemStats additionally snapshots heap-allocation deltas at
	// every span boundary. It forces a runtime.ReadMemStats per span and
	// is meant for offline memory attribution, not routine runs. Ignored
	// unless Trace is set.
	TraceMemStats bool
	// Memo arms the process-wide stage caches: placements, routed
	// layouts, extracted RC summaries, covariance matrices and Cholesky
	// factors are memoized by content-addressed keys over exactly the
	// inputs each stage consumes. Repeated or overlapping runs (sweeps,
	// calibration, servers) reuse intermediates; results are bitwise
	// identical to Memo-off runs. See docs/PERFORMANCE.md.
	Memo bool
	// FFT selects the covariance engine behind the variation analysis:
	// "" or "auto" (the default) uses the FFT-accelerated structured
	// path whenever the layout sits on a regular grid, falling back to
	// the dense path otherwise; "off" forces dense everywhere. The two
	// engines agree to the tolerance documented in docs/PERFORMANCE.md,
	// not bitwise, so "off" is the A/B escape hatch when auditing a
	// result. Fallbacks are surfaced on Result.Warnings and the
	// ccdac_numeric_fft_* metrics.
	FFT string
}

// Metrics summarizes a generated layout, mirroring the paper's
// Tables I and II.
type Metrics struct {
	// AreaUm2 is the routed array area in square microns.
	AreaUm2 float64
	// F3dBHz is the 3dB switching frequency (Eq. 16) at the critical
	// bit's Elmore time constant.
	F3dBHz float64
	// TauSec is that limiting time constant in seconds.
	TauSec float64
	// CriticalBit is the capacitor index limiting the frequency.
	CriticalBit int
	// MaxAbsDNL and MaxAbsINL are the worst-case 3σ nonlinearities in
	// LSB (zero when SkipNonlinearity).
	MaxAbsDNL, MaxAbsINL float64
	// CTSfF, CWirefF and CBBfF are the routing parasitics of Table I:
	// top-plate-to-substrate, bottom-plate wiring, and bottom-to-bottom
	// coupling capacitance, in fF.
	CTSfF, CWirefF, CBBfF float64
	// ViaCuts is the total via count ΣN_V (parallel wires use p² cuts).
	ViaCuts int
	// WirelengthUm is the total routed wirelength ΣL in microns.
	WirelengthUm float64
	// RVkOhm and RTotalkOhm are the critical bit's summed via and
	// wire+via resistance in kΩ.
	RVkOhm, RTotalkOhm float64
	// PlaceSeconds and RouteSeconds are the constructive runtimes
	// (Table III).
	PlaceSeconds, RouteSeconds float64
	// ParallelWires is the final per-capacitor parallel-wire count.
	ParallelWires []int
}

// Result is a generated, routed and analyzed capacitor array.
type Result struct {
	Config  Config
	Metrics Metrics
	// Warnings records graceful degradations taken during generation
	// (solver fallbacks, abandoned parallel-wire promotions, skipped
	// best-BC candidates). Empty means the flow ran exactly as
	// configured; see docs/ROBUSTNESS.md for the degradation ladder.
	Warnings []string
	// Trace holds the run's observability record (span tree + metrics)
	// when Config.Trace is set, nil otherwise.
	Trace *Trace

	res *core.Result
}

// EnableMemoSpill backs the process-wide stage caches (Config.Memo)
// with a durable spill tier rooted at dir: entries evicted under
// memory pressure — annealed placements, covariance matrices, Cholesky
// factors — are persisted content-addressed and restored on a later
// miss instead of being recomputed, so long sweeps survive cache
// eviction across both memory pressure and process restarts. Call once
// at startup; spilled entries are verified by content hash on the way
// back in (a corrupt spill is a miss, never a wrong result).
func EnableMemoSpill(dir string) error {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	core.EnableMemoSpill(store.Spiller{S: st})
	return nil
}

// Generate runs the full constructive flow for one configuration.
//
// Errors are always *PipelineError values matching one of the stage
// sentinels (ErrConfig, ErrPlacement, ErrRouting, ErrExtraction,
// ErrAnalysis) under errors.Is; internal invariant panics are
// contained and reported the same way, never propagated.
func Generate(cfg Config) (*Result, error) {
	return GenerateContext(context.Background(), cfg)
}

// GenerateContext is Generate under a context: cancellation and
// deadlines are honored at every stage boundary and between
// parallel-wire promotion iterations. A canceled run returns a
// *PipelineError whose cause matches ctx.Err() under errors.Is.
func GenerateContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ccfg, err := toCoreConfig(cfg)
	if err != nil {
		return nil, err
	}
	ctx, done := startTrace(ctx, cfg)
	r, err := core.RunContext(ctx, ccfg)
	tr := done(err)
	if err != nil {
		return nil, wrapRunError(cfg, err)
	}
	res := wrap(cfg, r)
	res.Trace = tr
	return res, nil
}

// startTrace arms observability for one generation run when cfg.Trace
// is set. The returned done func must be called exactly once with the
// run's error: it closes the root "generate" span (marking it failed on
// error), disarms the trace, and returns the public record (nil when
// tracing is off).
func startTrace(ctx context.Context, cfg Config) (context.Context, func(error) *Trace) {
	if !cfg.Trace {
		return ctx, func(error) *Trace { return nil }
	}
	tr := obs.New(obs.Options{PprofLabels: true, MemStats: cfg.TraceMemStats})
	ctx = obs.WithTrace(ctx, tr)
	ctx, root := obs.StartSpan(ctx, "generate")
	return ctx, func(err error) *Trace {
		root.Fail(err)
		root.End()
		tr.Finish()
		return newTrace(tr)
	}
}

// GenerateBestBC sweeps the block-chessboard parameter grid (core size
// × block granularity) and returns the best structure by 3dB frequency
// subject to the paper's 0.5 LSB INL/DNL bound — the "best BC result"
// of Tables I and II — together with all swept candidates.
//
// A candidate that fails is skipped and recorded in the best result's
// Warnings; the sweep itself fails only when every candidate does (or
// the configuration is invalid).
func GenerateBestBC(cfg Config) (*Result, []*Result, error) {
	return GenerateBestBCContext(context.Background(), cfg)
}

// GenerateBestBCContext is GenerateBestBC under a context.
func GenerateBestBCContext(ctx context.Context, cfg Config) (*Result, []*Result, error) {
	cfg.Style = BlockChessboard
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	ccfg, err := toCoreConfig(cfg)
	if err != nil {
		return nil, nil, err
	}
	ctx, done := startTrace(ctx, cfg)
	best, all, err := core.RunBestBCContext(ctx, ccfg)
	tr := done(err)
	if err != nil {
		return nil, nil, wrapRunError(cfg, err)
	}
	out := make([]*Result, len(all))
	for i, r := range all {
		c := cfg
		c.CoreBits = r.Config.BC.CoreBits
		c.BlockCells = r.Config.BC.BlockCells
		out[i] = wrap(c, r)
	}
	bcfg := cfg
	bcfg.CoreBits = best.Config.BC.CoreBits
	bcfg.BlockCells = best.Config.BC.BlockCells
	bres := wrap(bcfg, best)
	bres.Trace = tr
	return bres, out, nil
}

// PlacementASCII renders the placement as text, top row first: hex
// capacitor indices, 'd' for dummy cells.
func (r *Result) PlacementASCII() string {
	return render.ASCIIPlacement(r.res.Placement)
}

// SVGPlacement renders a placement-only SVG (the view of Fig. 2).
func (r *Result) SVGPlacement(title string) string {
	return render.SVGPlacement(r.res.Placement, title)
}

// SVGLayout renders the routed layout as SVG: cells, bottom-plate
// wires, top-plate wires and vias (the view of Figs. 3 and 5).
func (r *Result) SVGLayout(title string) string {
	return render.SVGLayout(r.res.Layout, title)
}

// GroupsSummary lists each capacitor's connected unit-cell groups.
func (r *Result) GroupsSummary() string {
	return render.GroupsSummary(r.res.Layout)
}

func toCoreConfig(cfg Config) (core.Config, error) {
	out := core.Config{
		Bits:        cfg.Bits,
		MaxParallel: cfg.MaxParallel,
		ThetaSteps:  cfg.ThetaSteps,
		SkipNL:      cfg.SkipNonlinearity,
		Workers:     cfg.Workers,
		Memo:        cfg.Memo,
		FFT:         cfg.FFT,
	}
	switch cfg.TechNode {
	case "", "finfet12":
		// core defaults to tech.FinFET12
	case "bulk65":
		out.Tech = tech.Bulk65()
	default:
		return core.Config{}, configErr(cfg, "TechNode", "unknown technology node %q", cfg.TechNode)
	}
	switch cfg.Style {
	case Spiral, "":
		out.Style = place.Spiral
	case Chessboard:
		out.Style = place.Chessboard
	case BlockChessboard:
		out.Style = place.BlockChessboard
		out.BC = place.BCParams{CoreBits: cfg.CoreBits, BlockCells: cfg.BlockCells}
		if out.BC.CoreBits == 0 && out.BC.BlockCells == 0 {
			out.BC = place.BCParams{}
		}
	case Annealed:
		out.Style = place.Annealed
		out.Anneal = place.DefaultAnnealConfig()
		if cfg.AnnealSeed != 0 {
			out.Anneal.Seed = cfg.AnnealSeed
		}
		if cfg.AnnealMoves != 0 {
			out.Anneal.Moves = cfg.AnnealMoves
		}
	default:
		return core.Config{}, configErr(cfg, "Style", "unknown placement style %q", cfg.Style)
	}
	return out, nil
}

func wrap(cfg Config, r *core.Result) *Result {
	crit := r.Electrical.Bits[r.CriticalBit]
	m := Metrics{
		AreaUm2:       r.Electrical.AreaUm2,
		F3dBHz:        r.F3dBHz,
		TauSec:        r.Electrical.Tau(),
		CriticalBit:   r.CriticalBit,
		CTSfF:         r.Electrical.CTSfF,
		CWirefF:       r.Electrical.CWirefF,
		CBBfF:         r.Electrical.CBBfF,
		ViaCuts:       r.Electrical.ViaCuts,
		WirelengthUm:  r.Electrical.WirelengthUm,
		RVkOhm:        crit.RViaOhm / 1000,
		RTotalkOhm:    (crit.RViaOhm + crit.RWireOhm) / 1000,
		PlaceSeconds:  r.PlaceTime.Seconds(),
		RouteSeconds:  r.RouteTime.Seconds(),
		ParallelWires: append([]int(nil), r.Par...),
	}
	if r.NL != nil {
		m.MaxAbsDNL = r.NL.MaxAbsDNL
		m.MaxAbsINL = r.NL.MaxAbsINL
	}
	return &Result{
		Config:   cfg,
		Metrics:  m,
		Warnings: append([]string(nil), r.Warnings...),
		res:      r,
	}
}
