package ccdac

import (
	"io"
	"strings"
	"time"

	"ccdac/internal/obs"
)

// SpanRecord is one finished span of a generation trace: a named,
// timed region of the pipeline (a stage like "routing", or a nested
// sub-stage like "route.wires"), parented into a tree.
type SpanRecord struct {
	// ID and ParentID place the span in its trace's tree; ParentID is
	// zero for root spans.
	ID, ParentID uint64
	// Name identifies the traced region; the top-level stages are named
	// after the pipeline phases ("placement", "routing", "extraction",
	// "analysis") under a "generate" root.
	Name  string
	Start time.Time
	// Duration is the span's wall time.
	Duration time.Duration
	// Err is non-empty when the region failed; the span of the stage
	// named by a *PipelineError is always marked.
	Err string
	// Attrs carries region-specific annotations (e.g. the routing
	// iteration index, a best-BC candidate's structure parameters).
	Attrs map[string]string
	// AllocBytes and AllocObjects are heap-allocation deltas over the
	// span (zero unless Config.TraceMemStats).
	AllocBytes, AllocObjects uint64
}

// Trace is the observability record of one generation run, populated
// on Result.Trace when Config.Trace is set: the span tree of every
// pipeline stage plus the run's metrics (counters, gauges, duration
// histograms). See docs/OBSERVABILITY.md for the span model and the
// metric naming convention.
type Trace struct {
	id      string
	spans   []obs.SpanRecord
	metrics obs.MetricsSnapshot
}

func newTrace(t *obs.Trace) *Trace {
	return &Trace{id: t.ID(), spans: t.Spans(), metrics: t.Registry().Snapshot()}
}

// ID returns the run's 32-hex trace identifier (the OTLP trace ID used
// by WriteOTLP).
func (t *Trace) ID() string { return t.id }

// Spans returns the finished spans in completion order.
func (t *Trace) Spans() []SpanRecord {
	out := make([]SpanRecord, len(t.spans))
	for i, s := range t.spans {
		out[i] = SpanRecord{
			ID: s.ID, ParentID: s.ParentID, Name: s.Name,
			Start: s.Start, Duration: s.Duration, Err: s.Err,
			Attrs:      s.Attrs,
			AllocBytes: s.AllocBytes, AllocObjects: s.AllocObjects,
		}
	}
	return out
}

// Counter returns the value of an unlabeled counter metric (zero if
// the run never touched it), e.g.
// t.Counter("ccdac_rcnet_cg_fallback_total").
func (t *Trace) Counter(name string) int64 { return t.metrics.Counters[name] }

// Counters returns every counter series (key: metric name plus
// rendered labels) and its value.
func (t *Trace) Counters() map[string]int64 {
	out := make(map[string]int64, len(t.metrics.Counters))
	for k, v := range t.metrics.Counters {
		out[k] = v
	}
	return out
}

// Gauge returns the value of an unlabeled gauge metric (zero if unset).
func (t *Trace) Gauge(name string) float64 { return t.metrics.Gauges[name] }

// MetricsSnapshot returns the run's frozen metrics registry for
// process-level aggregation: in-module callers (the CLIs, the serve
// daemon) fold it into a global obs.Registry via Merge so multi-run
// invocations emit one aggregated exposition.
func (t *Trace) MetricsSnapshot() obs.MetricsSnapshot { return t.metrics }

// WriteJSONL emits the spans as JSON Lines, one span event per line.
func (t *Trace) WriteJSONL(w io.Writer) error { return obs.WriteJSONL(w, t.spans) }

// WriteOTLP emits the span tree as one OTLP/JSON export request under
// the given service name, ready to POST to any OTLP collector
// (Jaeger, Tempo, otel-collector) at /v1/traces.
func (t *Trace) WriteOTLP(w io.Writer, service string) error {
	return obs.WriteOTLP(w, service, t.id, t.spans)
}

// WritePrometheus emits the run's metrics in the Prometheus text
// exposition format.
func (t *Trace) WritePrometheus(w io.Writer) error {
	return obs.WritePrometheus(w, t.metrics)
}

// StageTree renders the human-readable stage-time tree: each span's
// wall time and share of its root span, indented by nesting depth.
func (t *Trace) StageTree() string {
	var b strings.Builder
	// strings.Builder never errors.
	_ = obs.WriteTree(&b, t.spans)
	return b.String()
}
