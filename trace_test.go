package ccdac

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"ccdac/internal/fault"
)

func TestGenerateWithTrace(t *testing.T) {
	res, err := Generate(Config{Bits: 6, MaxParallel: 2, ThetaSteps: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Config.Trace set but Result.Trace is nil")
	}
	spans := res.Trace.Spans()
	seen := map[string]bool{}
	var root *SpanRecord
	for i := range spans {
		seen[spans[i].Name] = true
		if spans[i].ParentID == 0 {
			root = &spans[i]
		}
	}
	for _, name := range []string{
		"generate", StagePlacement, StageRouting, StageExtraction, StageAnalysis,
	} {
		if !seen[name] {
			t.Errorf("no span named %q in the trace", name)
		}
	}
	if root == nil || root.Name != "generate" {
		t.Fatalf("root span = %+v, want the generate root", root)
	}

	// The stage spans must account for (nearly) all of the root's wall
	// time: untraced gaps larger than 10% mean a stage lost its span.
	var staged int64
	for _, s := range spans {
		if s.ParentID == root.ID {
			staged += s.Duration.Nanoseconds()
		}
	}
	if total := root.Duration.Nanoseconds(); total > 0 && float64(staged) < 0.9*float64(total) {
		t.Errorf("stage spans cover %d of %d ns (<90%%) of the run", staged, total)
	}

	// JSONL output: one valid JSON object per line, covering the stages.
	var buf bytes.Buffer
	if err := res.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		if ev["name"] == "" || ev["start"] == "" {
			t.Fatalf("line %d missing required fields: %s", lines, sc.Text())
		}
	}
	if lines != len(spans) {
		t.Errorf("JSONL has %d lines for %d spans", lines, len(spans))
	}

	// Prometheus output carries the run counter.
	buf.Reset()
	if err := res.Trace.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ccdac_core_runs_total 1") {
		t.Errorf("Prometheus dump missing the run counter:\n%s", buf.String())
	}
	if got := res.Trace.Counter("ccdac_core_runs_total"); got != 1 {
		t.Errorf("Counter(ccdac_core_runs_total) = %d, want 1", got)
	}

	// The stage tree names the root and every top-level stage.
	tree := res.Trace.StageTree()
	for _, name := range []string{"generate", StageRouting, StageAnalysis} {
		if !strings.Contains(tree, name) {
			t.Errorf("stage tree missing %q:\n%s", name, tree)
		}
	}
}

func TestGenerateWithoutTraceHasNoTrace(t *testing.T) {
	res, err := Generate(Config{Bits: 4, SkipNonlinearity: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("Result.Trace set without Config.Trace")
	}
}

func TestGenerateBestBCWithTrace(t *testing.T) {
	best, _, err := GenerateBestBC(Config{Bits: 6, ThetaSteps: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if best.Trace == nil {
		t.Fatal("best result missing the sweep trace")
	}
	candidates := 0
	for _, s := range best.Trace.Spans() {
		if s.Name == "bestbc.candidate" {
			candidates++
		}
	}
	if candidates == 0 {
		t.Error("no bestbc.candidate spans recorded in the sweep trace")
	}
}

func TestPipelineErrorCarriesWarnings(t *testing.T) {
	defer fault.Reset()
	// A promotion abandoned before an injected analysis failure: the
	// public error must still surface the accumulated degradations.
	fault.Enable(fault.StageRoute, 1, errors.New("injected routing failure"))
	analyzeFail := errors.New("injected analysis failure")
	fault.Enable(fault.StageAnalyze, 0, analyzeFail)
	_, err := Generate(Config{Bits: 6, MaxParallel: 2, ThetaSteps: 2})
	if !errors.Is(err, ErrAnalysis) {
		t.Fatalf("want ErrAnalysis, got %v", err)
	}
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *PipelineError: %v", err)
	}
	if len(pe.Warnings) == 0 {
		t.Fatal("PipelineError.Warnings empty; degradations were lost on failure")
	}
	found := false
	for _, w := range pe.Warnings {
		if strings.Contains(w, "keeping last-good layout") {
			found = true
		}
	}
	if !found {
		t.Errorf("Warnings = %q, want the promotion degradation", pe.Warnings)
	}
}

func TestTraceRecordsErroredStage(t *testing.T) {
	defer fault.Reset()
	sentinel := errors.New("injected extraction failure")
	fault.Enable(fault.StageExtract, 0, sentinel)
	_, err := Generate(Config{Bits: 4, SkipNonlinearity: true, Trace: true})
	if !errors.Is(err, ErrExtraction) {
		t.Fatalf("want ErrExtraction, got %v", err)
	}
	// The public Result is discarded on failure, so the assertion that
	// the failing span was marked errored lives in internal/core; here
	// the contract is that a failed traced run still returns the typed
	// error (the trace must not mask it).
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("traced failure lost the typed error: %v", err)
	}
}
