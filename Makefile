# Tier-1 verification for the ccdac repo. `make check` is the gate a
# change must pass; the individual targets exist for quick iteration.

GO ?= go

.PHONY: check fmt vet build test race fuzz

check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz the public API's never-panic contract (30s).
fuzz:
	$(GO) test -fuzz=FuzzGenerate -fuzztime=30s -run '^$$' .
