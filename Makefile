# Tier-1 verification for the ccdac repo. `make check` is the gate a
# change must pass; the individual targets exist for quick iteration.

GO ?= go
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS = -ldflags "-X ccdac.Version=$(VERSION)"

.PHONY: check fmt vet build test race fuzz bench bench-obs bench-analyze bench-smoke serve-bench bench-cache bench-store store-smoke bench-jobs jobs-smoke bench-diff bench-update install

check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz the public API's never-panic contract (30s).
fuzz:
	$(GO) test -fuzz=FuzzGenerate -fuzztime=30s -run '^$$' .

# Observability benchmark: tracing overhead (disabled vs traced vs the
# full telemetry pipeline — span bus with a live subscriber plus flight
# recorder) and a per-stage wall-time report written to BENCH_obs.json.
bench-obs:
	BENCH_OBS_OUT=BENCH_obs.json $(GO) test -run '^TestBenchObs$$' \
		-bench '^BenchmarkTraceOverhead$$' -benchtime 5x .

# Back-compat alias for bench-obs.
bench: bench-obs

# Version-stamped binaries (ccdac_build_info / healthz version field).
install:
	$(GO) install $(LDFLAGS) ./cmd/...

# Analysis hot-path benchmark: times the memoized parallel covariance
# build against a seed-style serial reference and the binned coupling
# sweep against the quadratic one, writing the speedups and scaling
# exponents to BENCH_analyze.json (see docs/PERFORMANCE.md).
bench-analyze:
	BENCH_ANALYZE_OUT=BENCH_analyze.json $(GO) test \
		-run '^TestBenchAnalyze$$' -count=1 -v .

# One-iteration pass over the hot-path micro-benchmarks: proves they
# still compile and run without paying full benchtime (used by CI).
bench-smoke:
	$(GO) test -run '^$$' -count=1 -benchtime 1x \
		-bench '^(BenchmarkAnalyzeCov|BenchmarkCoupleSweep|BenchmarkExtractBits)$$' .

# Serve-mode load benchmark: boots the daemon on a loopback listener,
# drives it with concurrent clients and writes throughput plus latency
# percentiles (and the server's counter deltas) to BENCH_serve.json.
# Knobs: BENCH_SERVE_CLIENTS, BENCH_SERVE_REQUESTS, BENCH_SERVE_BITS.
serve-bench:
	BENCH_SERVE_OUT=$(CURDIR)/BENCH_serve.json $(GO) test \
		-run '^TestBenchServe$$' -count=1 -v ./internal/serve

# Caching benchmark: serve cold-vs-warm, memoized sensitivity sweep,
# singleflight dedup factor, and CG solver allocations, written to
# BENCH_cache.json. Asserts warm-hit speedup > 1, one generation for 8
# concurrent identical requests, and pooled-scratch solver allocs;
# doubles as CI's cache-correctness smoke (see docs/PERFORMANCE.md).
bench-cache:
	BENCH_CACHE_OUT=$(CURDIR)/BENCH_cache.json $(GO) test \
		-run '^TestBenchCache$$' -count=1 -v ./internal/serve

# Durable-store benchmark: fsync-backed write throughput, verified-read
# throughput, and the warm-restart hit rate, written to BENCH_store.json.
# Asserts a perfect warm-restart hit rate; doubles as CI's store smoke
# alongside scripts/store_smoke.sh (see docs/ROBUSTNESS.md).
bench-store:
	BENCH_STORE_OUT=$(CURDIR)/BENCH_store.json $(GO) test \
		-run '^TestBenchStore$$' -count=1 -v ./internal/store

# End-to-end crash drill: SIGKILL ccdacd mid-load against -store-dir,
# then assert quarantine-free recovery with warm cache hits.
store-smoke:
	sh scripts/store_smoke.sh

# Job-tier micro-batching benchmark: 32 compatible yield jobs over one
# shared 10-bit layout, run per-request vs coalesced, written to
# BENCH_jobs.json. Asserts the coalesced pass is >= 3x faster with
# byte-identical per-seed results (see docs/PERFORMANCE.md).
bench-jobs:
	BENCH_JOBS_OUT=$(CURDIR)/BENCH_jobs.json $(GO) test \
		-run '^TestBenchJobs$$' -count=1 -v ./internal/serve

# End-to-end job crash drill: submit a long checkpointed yield job,
# SIGKILL ccdacd mid-run, restart over the same -store-dir, and assert
# the job resumes from its last checkpoint and completes.
jobs-smoke:
	sh scripts/jobs_smoke.sh

# Benchmark regression gate: wrap every BENCH_*.json into the canonical
# benchfmt schema and compare against the latest same-suite entry in
# the append-only BENCH_HISTORY.jsonl trajectory. Fails (exit 1) when a
# gating metric moved the wrong way beyond BENCH_TOLERANCE (default 5%)
# or vanished from a harness (see docs/PERFORMANCE.md).
BENCH_TOLERANCE ?= 0.05
bench-diff:
	$(GO) run ./cmd/benchdiff -history BENCH_HISTORY.jsonl \
		-tolerance $(BENCH_TOLERANCE) BENCH_*.json

# Move the regression baseline: compare, then append the current
# reports to the trajectory. Run after an intentional perf change.
bench-update:
	$(GO) run ./cmd/benchdiff -history BENCH_HISTORY.jsonl \
		-tolerance $(BENCH_TOLERANCE) -update BENCH_*.json
