package ccdac

import (
	"errors"
	"testing"
)

// FuzzGenerate asserts the robustness contract of the public API: for
// ANY configuration, Generate returns either a typed *PipelineError
// matching one of the stage sentinels or a valid result — and never
// panics. Run longer with: go test -fuzz=FuzzGenerate -fuzztime=30s .
func FuzzGenerate(f *testing.F) {
	f.Add(8, 0, 0, 0, 2, 0, 4, "")
	f.Add(6, 1, 0, 0, 0, 0, 8, "finfet12")
	f.Add(6, 2, 4, 2, 2, 0, 2, "bulk65")
	f.Add(6, 3, 0, 0, 0, 1000, 2, "")
	f.Add(1, 0, 0, 0, 0, 0, 0, "")
	f.Add(12, 2, 3, 65, -1, -1, -1, "gaas")
	f.Add(7, 4, 0, 0, 9, 0, 361, "bogus")

	styles := []Style{"", Spiral, Chessboard, BlockChessboard, Annealed, Style("hexagonal")}
	sentinels := []error{ErrConfig, ErrPlacement, ErrRouting, ErrExtraction, ErrAnalysis}

	f.Fuzz(func(t *testing.T, bits, styleIdx, coreBits, blockCells, maxPar, annealMoves, thetaSteps int, techNode string) {
		if styleIdx < 0 {
			styleIdx = -styleIdx
		}
		cfg := Config{
			Bits:        bits,
			Style:       styles[styleIdx%len(styles)],
			CoreBits:    coreBits,
			BlockCells:  blockCells,
			MaxParallel: maxPar,
			AnnealMoves: annealMoves,
			ThetaSteps:  thetaSteps,
			TechNode:    techNode,
		}
		// Keep each exec fast without hiding the validation paths: only
		// clamp values that validation would accept anyway.
		if cfg.AnnealMoves > 2000 && cfg.AnnealMoves <= MaxAnnealMoves {
			cfg.AnnealMoves = 2000
		}
		if cfg.ThetaSteps > 4 && cfg.ThetaSteps <= MaxThetaSteps {
			cfg.ThetaSteps = 4
		}
		if cfg.Bits > 7 {
			cfg.SkipNonlinearity = true
		}

		r, err := Generate(cfg) // must not panic, whatever the input
		if err != nil {
			var pe *PipelineError
			if !errors.As(err, &pe) {
				t.Fatalf("untyped error from Generate(%+v): %T: %v", cfg, err, err)
			}
			n := 0
			for _, s := range sentinels {
				if errors.Is(err, s) {
					n++
				}
			}
			if n != 1 && pe.Stage != "internal" {
				t.Fatalf("error matches %d sentinels, want exactly 1: %v", n, err)
			}
			return
		}
		if r == nil {
			t.Fatalf("nil result and nil error for %+v", cfg)
		}
		if r.Metrics.F3dBHz <= 0 || r.Metrics.AreaUm2 <= 0 {
			t.Fatalf("invalid metrics for %+v: %+v", cfg, r.Metrics)
		}
		if len(r.Metrics.ParallelWires) != cfg.Bits+1 {
			t.Fatalf("ParallelWires length %d, want %d", len(r.Metrics.ParallelWires), cfg.Bits+1)
		}
	})
}
