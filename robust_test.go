package ccdac

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ccdac/internal/fault"
)

// TestValidateRejectsEveryBadField covers each Config field's
// validation: every case must fail with ErrConfig and name the field.
func TestValidateRejectsEveryBadField(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"BitsTooSmall", Config{Bits: 1}, "Bits"},
		{"BitsTooLarge", Config{Bits: 13}, "Bits"},
		{"BitsZero", Config{}, "Bits"},
		{"BitsNegative", Config{Bits: -4}, "Bits"},
		{"UnknownStyle", Config{Bits: 6, Style: "hexagonal"}, "Style"},
		{"NegativeMaxParallel", Config{Bits: 6, MaxParallel: -1}, "MaxParallel"},
		{"HugeMaxParallel", Config{Bits: 6, MaxParallel: MaxParallelWires + 1}, "MaxParallel"},
		{"CoreBitsWithoutBlockCells", Config{Bits: 6, Style: BlockChessboard, CoreBits: 4}, "BlockCells"},
		{"BlockCellsWithoutCoreBits", Config{Bits: 6, Style: BlockChessboard, BlockCells: 2}, "CoreBits"},
		{"OddCoreBits", Config{Bits: 6, Style: BlockChessboard, CoreBits: 3, BlockCells: 2}, "CoreBits"},
		{"CoreBitsTooLarge", Config{Bits: 6, Style: BlockChessboard, CoreBits: 6, BlockCells: 2}, "CoreBits"},
		{"BlockCellsTooLarge", Config{Bits: 6, Style: BlockChessboard, CoreBits: 4, BlockCells: 65}, "BlockCells"},
		{"NegativeAnnealMoves", Config{Bits: 6, Style: Annealed, AnnealMoves: -1}, "AnnealMoves"},
		{"HugeAnnealMoves", Config{Bits: 6, Style: Annealed, AnnealMoves: MaxAnnealMoves + 1}, "AnnealMoves"},
		{"NegativeThetaSteps", Config{Bits: 6, ThetaSteps: -1}, "ThetaSteps"},
		{"HugeThetaSteps", Config{Bits: 6, ThetaSteps: MaxThetaSteps + 1}, "ThetaSteps"},
		{"UnknownTechNode", Config{Bits: 6, TechNode: "gaas"}, "TechNode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Generate(tc.cfg)
			if err == nil {
				t.Fatalf("config %+v must be rejected", tc.cfg)
			}
			if !errors.Is(err, ErrConfig) {
				t.Errorf("error must match ErrConfig, got %v", err)
			}
			var pe *PipelineError
			if !errors.As(err, &pe) {
				t.Fatalf("error must be a *PipelineError, got %T", err)
			}
			if pe.Stage != StageConfig {
				t.Errorf("Stage = %q, want %q", pe.Stage, StageConfig)
			}
			if !strings.Contains(err.Error(), "field "+tc.field) {
				t.Errorf("error must name field %s: %v", tc.field, err)
			}
		})
	}
}

// TestPipelineErrorTaxonomy injects a failure into every pipeline stage
// and asserts the public error matches exactly the right sentinel.
func TestPipelineErrorTaxonomy(t *testing.T) {
	sentinels := map[string]error{
		fault.StagePlace:   ErrPlacement,
		fault.StageRoute:   ErrRouting,
		fault.StageExtract: ErrExtraction,
		fault.StageAnalyze: ErrAnalysis,
	}
	all := []error{ErrConfig, ErrPlacement, ErrRouting, ErrExtraction, ErrAnalysis}
	cause := errors.New("injected stage failure")
	for stage, want := range sentinels {
		t.Run(stage, func(t *testing.T) {
			defer fault.Reset()
			fault.Enable(stage, 0, cause)
			_, err := Generate(Config{Bits: 4, ThetaSteps: 2})
			if err == nil {
				t.Fatal("expected the injected failure to surface")
			}
			for _, s := range all {
				if (s == want) != errors.Is(err, s) {
					t.Errorf("errors.Is(err, %v) = %v, want %v", s, errors.Is(err, s), s == want)
				}
			}
			var pe *PipelineError
			if !errors.As(err, &pe) {
				t.Fatalf("error must be a *PipelineError, got %T: %v", err, err)
			}
			if pe.Stage != stage || pe.Bits != 4 || pe.Style != Spiral {
				t.Errorf("PipelineError{Stage: %q, Bits: %d, Style: %q}, want {%q, 4, spiral}",
					pe.Stage, pe.Bits, pe.Style, stage)
			}
			if !errors.Is(err, cause) {
				t.Errorf("underlying cause lost through wrapping: %v", err)
			}
		})
	}
}

// TestPanicBecomesTypedError asserts that an internal panic surfaces as
// the failing stage's PipelineError, never as a panic.
func TestPanicBecomesTypedError(t *testing.T) {
	defer fault.Reset()
	fault.EnablePanic(fault.StageRoute, 0, "synthetic router bug")
	_, err := Generate(Config{Bits: 4, SkipNonlinearity: true})
	if err == nil {
		t.Fatal("expected the contained panic to surface as an error")
	}
	if !errors.Is(err, ErrRouting) {
		t.Errorf("panic in routing must match ErrRouting: %v", err)
	}
	if !strings.Contains(err.Error(), "recovered panic") {
		t.Errorf("error must mention the recovered panic: %v", err)
	}
}

// TestGenerateContextCanceled asserts cancellation surfaces as a typed
// error whose cause matches context.Canceled.
func TestGenerateContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GenerateContext(ctx, Config{Bits: 4, SkipNonlinearity: true})
	if err == nil {
		t.Fatal("canceled context must fail the run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause must match context.Canceled: %v", err)
	}
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Errorf("canceled run must still return a *PipelineError, got %T", err)
	}
}

// TestBestBCSkipsFailingCandidatePublic mirrors the core-level skip
// test through the public facade: the sweep's best result records the
// skipped candidate in Warnings.
func TestBestBCSkipsFailingCandidatePublic(t *testing.T) {
	defer fault.Reset()
	fault.Enable(fault.StageRoute, 0, errors.New("injected routing failure"))
	best, _, err := GenerateBestBC(Config{Bits: 6, ThetaSteps: 2})
	if err != nil {
		t.Fatalf("one failing candidate must not fail the sweep: %v", err)
	}
	found := false
	for _, w := range best.Warnings {
		if strings.Contains(w, "skipped") {
			found = true
		}
	}
	if !found {
		t.Errorf("skip not visible in public Warnings: %q", best.Warnings)
	}
}
