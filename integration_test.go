// Cross-system integration tests: flows that span the facade and
// several internal systems (layout -> GDS -> decode, layout -> SPICE,
// layout -> report -> DRC), plus end-to-end shape assertions at the
// odd bit counts the unit tests do not cover.
package ccdac_test

import (
	"bytes"
	"strings"
	"testing"

	"ccdac"
	"ccdac/internal/gds"
)

func gen(t *testing.T, cfg ccdac.Config) *ccdac.Result {
	t.Helper()
	r, err := ccdac.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGDSRoundTripThroughFacade(t *testing.T) {
	r := gen(t, ccdac.Config{Bits: 7, Style: ccdac.Spiral, SkipNonlinearity: true})
	data, err := r.GDS("spiral7")
	if err != nil {
		t.Fatal(err)
	}
	lib, err := gds.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if lib.Name != "spiral7" || len(lib.Structures) != 1 {
		t.Fatalf("decoded library %q with %d structures", lib.Name, len(lib.Structures))
	}
	// 12x11 grid: 132 device boundaries (units + dummies).
	devices := 0
	viaCuts := 0
	for _, e := range lib.Structures[0].Elements {
		if b, ok := e.(gds.Boundary); ok {
			if b.Layer == gds.LayerDevice {
				devices++
			}
			if b.Layer >= gds.LayerViaBase {
				viaCuts++
			}
		}
	}
	if devices != 132 {
		t.Errorf("device outlines = %d, want 132", devices)
	}
	if viaCuts == 0 {
		t.Error("no via cuts exported")
	}
}

func TestSpiceNetlistsForEveryBit(t *testing.T) {
	r := gen(t, ccdac.Config{Bits: 6, Style: ccdac.BlockChessboard, SkipNonlinearity: true})
	for bit := 0; bit <= 6; bit++ {
		nl, err := r.SpiceNetlist(bit)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		if !strings.Contains(nl, ".SUBCKT") {
			t.Fatalf("bit %d: malformed netlist", bit)
		}
		// One C element per unit cell at minimum.
		want := 1
		if bit >= 1 {
			want = 1 << (bit - 1)
		}
		if got := strings.Count(nl, "\nC"); got < want {
			t.Fatalf("bit %d: %d capacitors, want >= %d", bit, got, want)
		}
	}
}

func TestOddBitEndToEndShape(t *testing.T) {
	// 7 and 9 bits exercise dummy cells, rectangular grids and the
	// odd-odd center special case through the whole pipeline.
	for _, bits := range []int{7, 9} {
		sp := gen(t, ccdac.Config{Bits: bits, Style: ccdac.Spiral, MaxParallel: 2, SkipNonlinearity: true})
		cb := gen(t, ccdac.Config{Bits: bits, Style: ccdac.Chessboard, SkipNonlinearity: true})
		if sp.Metrics.F3dBHz <= cb.Metrics.F3dBHz {
			t.Errorf("bits %d: spiral f3dB %g not above chessboard %g",
				bits, sp.Metrics.F3dBHz, cb.Metrics.F3dBHz)
		}
		// [7] doubles units at odd N: about twice the spiral's area.
		if ratio := cb.Metrics.AreaUm2 / sp.Metrics.AreaUm2; ratio < 1.5 {
			t.Errorf("bits %d: chessboard/spiral area ratio %g, want ~2 (unit doubling)", bits, ratio)
		}
		if v := sp.DRC(); len(v) != 0 {
			t.Errorf("bits %d spiral: DRC violations: %s", bits, v[0])
		}
		if v := cb.DRC(); len(v) != 0 {
			t.Errorf("bits %d chessboard: DRC violations: %s", bits, v[0])
		}
	}
}

func TestFacadeDeterminismAcrossStyles(t *testing.T) {
	for _, style := range ccdac.Styles() {
		cfg := ccdac.Config{Bits: 6, Style: style, MaxParallel: 2, SkipNonlinearity: true, AnnealMoves: 2000}
		a, err := ccdac.Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", style, err)
		}
		b, err := ccdac.Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", style, err)
		}
		if a.Metrics.F3dBHz != b.Metrics.F3dBHz ||
			a.Metrics.ViaCuts != b.Metrics.ViaCuts ||
			a.PlacementASCII() != b.PlacementASCII() {
			t.Errorf("%s: flow not deterministic", style)
		}
	}
}

func TestParallelWiresKeepLayoutLegal(t *testing.T) {
	// Aggressive parallel routing must stay DRC-clean and keep the GDS
	// and SPICE exports consistent.
	r := gen(t, ccdac.Config{Bits: 8, Style: ccdac.Spiral, MaxParallel: 4, SkipNonlinearity: true})
	if v := r.DRC(); len(v) != 0 {
		t.Fatalf("p=4 layout dirty: %s", v[0])
	}
	if _, err := r.GDS("p4"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SpiceNetlist(-1); err != nil {
		t.Fatal(err)
	}
	// The promoted bits actually carry 4 wires.
	found := false
	for _, p := range r.Metrics.ParallelWires {
		if p == 4 {
			found = true
		}
	}
	if !found {
		t.Error("no bit promoted to 4 wires")
	}
}

func TestBulkNodeEndToEnd(t *testing.T) {
	r := gen(t, ccdac.Config{Bits: 6, Style: ccdac.Spiral, TechNode: "bulk65", SkipNonlinearity: true})
	if v := r.DRC(); len(v) != 0 {
		t.Fatalf("bulk layout dirty: %s", v[0])
	}
	if r.Metrics.F3dBHz <= 0 {
		t.Fatal("degenerate bulk f3dB")
	}
	if _, err := r.GDS("bulk"); err != nil {
		t.Fatal(err)
	}
}
