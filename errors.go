package ccdac

import (
	"errors"
	"fmt"

	"ccdac/internal/core"
	"ccdac/internal/fault"
)

// Stage names carried by PipelineError.Stage, one per pipeline phase.
const (
	StageConfig     = fault.StageConfig
	StagePlacement  = fault.StagePlace
	StageRouting    = fault.StageRoute
	StageExtraction = fault.StageExtract
	StageAnalysis   = fault.StageAnalyze
)

// Sentinel stage errors. Every error returned by Generate,
// GenerateContext and GenerateBestBC is a *PipelineError matching
// exactly one of these under errors.Is, so callers can branch on the
// failing stage without string matching:
//
//	if errors.Is(err, ccdac.ErrConfig) { ... reject the request ... }
//	if errors.Is(err, ccdac.ErrRouting) { ... retry another style ... }
var (
	// ErrConfig marks an invalid Config rejected before the flow runs.
	ErrConfig = errors.New("ccdac: invalid configuration")
	// ErrPlacement marks a failure while constructing the placement.
	ErrPlacement = errors.New("ccdac: placement failed")
	// ErrRouting marks a failure in the constructive router.
	ErrRouting = errors.New("ccdac: routing failed")
	// ErrExtraction marks a failure in parasitic extraction or the
	// Elmore/moment solves.
	ErrExtraction = errors.New("ccdac: extraction failed")
	// ErrAnalysis marks a failure in the variation / INL/DNL analysis.
	ErrAnalysis = errors.New("ccdac: analysis failed")
)

// sentinelOf maps a pipeline stage name to its sentinel (nil for
// stages without one, e.g. the "internal" orchestration backstop).
func sentinelOf(stage string) error {
	switch stage {
	case StageConfig:
		return ErrConfig
	case StagePlacement:
		return ErrPlacement
	case StageRouting:
		return ErrRouting
	case StageExtraction:
		return ErrExtraction
	case StageAnalysis:
		return ErrAnalysis
	}
	return nil
}

// PipelineError is the typed error returned by the generation entry
// points: it names the failing Stage, echoes the requested Bits and
// Style, and wraps the underlying cause (including recovered panics,
// which carry the panic value and stack). It matches the stage's
// sentinel under errors.Is and unwraps to the cause for errors.As.
type PipelineError struct {
	// Stage is the pipeline phase that failed: StageConfig,
	// StagePlacement, StageRouting, StageExtraction, StageAnalysis, or
	// "internal" for a contained orchestration panic.
	Stage string
	// Bits and Style echo the configuration that failed.
	Bits  int
	Style Style
	// Warnings preserves the graceful degradations the run had already
	// accumulated before failing (solver fallbacks, abandoned
	// promotions). On success these ride on Result.Warnings; on failure
	// the Result is discarded, so they surface here instead.
	Warnings []string
	// Err is the underlying cause.
	Err error
}

func (e *PipelineError) Error() string {
	return fmt.Sprintf("ccdac: %s failed (bits=%d, style=%s): %v", e.Stage, e.Bits, e.Style, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As (so e.g.
// context.Canceled remains matchable through the wrapper).
func (e *PipelineError) Unwrap() error { return e.Err }

// Is matches the sentinel of the failing stage.
func (e *PipelineError) Is(target error) bool {
	s := sentinelOf(e.Stage)
	return s != nil && target == s
}

// Limits on Config knobs enforced by validation.
const (
	// MinBits and MaxBits bound the supported DAC resolution.
	MinBits = 2
	MaxBits = 12
	// MaxParallelWires bounds Config.MaxParallel: beyond 8 parallel
	// wires the p² via arrays outgrow any realistic driver pitch.
	MaxParallelWires = 8
	// MaxThetaSteps bounds the gradient-angle sweep resolution.
	MaxThetaSteps = 360
	// MaxAnnealMoves bounds the annealed baseline's move budget.
	MaxAnnealMoves = 10_000_000
	// MaxWorkers bounds Config.Workers: a fan-out wider than this only
	// adds scheduling overhead for the array sizes MaxBits allows.
	MaxWorkers = 256
)

// configErr builds the *PipelineError for one invalid Config field.
func configErr(cfg Config, field, format string, args ...any) error {
	return &PipelineError{
		Stage: StageConfig,
		Bits:  cfg.Bits,
		Style: cfg.Style,
		Err:   fmt.Errorf("field %s: %s", field, fmt.Sprintf(format, args...)),
	}
}

// validate rejects malformed configurations before any flow stage
// runs, naming the offending field. Every error matches ErrConfig.
func (cfg Config) validate() error {
	if cfg.Bits < MinBits || cfg.Bits > MaxBits {
		return configErr(cfg, "Bits", "%d outside supported range %d..%d", cfg.Bits, MinBits, MaxBits)
	}
	switch cfg.Style {
	case "", Spiral, Chessboard, BlockChessboard, Annealed:
	default:
		return configErr(cfg, "Style", "unknown placement style %q", cfg.Style)
	}
	if cfg.MaxParallel < 0 || cfg.MaxParallel > MaxParallelWires {
		return configErr(cfg, "MaxParallel", "%d outside 0..%d", cfg.MaxParallel, MaxParallelWires)
	}
	if cfg.CoreBits != 0 || cfg.BlockCells != 0 {
		if cfg.CoreBits == 0 {
			return configErr(cfg, "CoreBits", "must be set when BlockCells is (got BlockCells=%d)", cfg.BlockCells)
		}
		if cfg.BlockCells == 0 {
			return configErr(cfg, "BlockCells", "must be set when CoreBits is (got CoreBits=%d)", cfg.CoreBits)
		}
		if cfg.CoreBits < 2 || cfg.CoreBits > cfg.Bits-1 || cfg.CoreBits%2 != 0 {
			return configErr(cfg, "CoreBits", "%d must be even and in 2..%d", cfg.CoreBits, cfg.Bits-1)
		}
		if cfg.BlockCells < 1 || cfg.BlockCells > 64 {
			return configErr(cfg, "BlockCells", "%d outside 1..64", cfg.BlockCells)
		}
	}
	if cfg.AnnealMoves < 0 || cfg.AnnealMoves > MaxAnnealMoves {
		return configErr(cfg, "AnnealMoves", "%d outside 0..%d", cfg.AnnealMoves, MaxAnnealMoves)
	}
	if cfg.ThetaSteps < 0 || cfg.ThetaSteps > MaxThetaSteps {
		return configErr(cfg, "ThetaSteps", "%d outside 0..%d", cfg.ThetaSteps, MaxThetaSteps)
	}
	// Negative Workers (serial) is a supported debugging knob; only an
	// absurd positive fan-out is rejected.
	if cfg.Workers > MaxWorkers {
		return configErr(cfg, "Workers", "%d exceeds %d", cfg.Workers, MaxWorkers)
	}
	switch cfg.TechNode {
	case "", "finfet12", "bulk65":
	default:
		return configErr(cfg, "TechNode", "unknown technology node %q", cfg.TechNode)
	}
	switch cfg.FFT {
	case "", "auto", "off":
	default:
		return configErr(cfg, "FFT", "unknown covariance engine %q (want \"auto\" or \"off\")", cfg.FFT)
	}
	return nil
}

// wrapRunError converts an internal flow error into the public
// *PipelineError, preserving the stage attribution recorded by core.
func wrapRunError(cfg Config, err error) error {
	if err == nil {
		return nil
	}
	var pe *PipelineError
	if errors.As(err, &pe) {
		return err
	}
	stage := "internal"
	var warnings []string
	var se *core.StageError
	if errors.As(err, &se) {
		stage = se.Stage
		warnings = append([]string(nil), se.Warnings...)
	}
	style := cfg.Style
	if style == "" {
		style = Spiral
	}
	return &PipelineError{Stage: stage, Bits: cfg.Bits, Style: style, Warnings: warnings, Err: err}
}
