package sar

import (
	"math"
	"testing"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/place"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

func idealADC(t *testing.T, bits int) *ADC {
	t.Helper()
	a, err := NewIdeal(bits, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func analysisFor(t *testing.T, bits int, style place.Style) *variation.Analysis {
	t.Helper()
	var m *ccmatrix.Matrix
	var err error
	switch style {
	case place.Chessboard:
		m, err = place.NewChessboard(bits)
	default:
		m, err = place.NewSpiral(bits)
	}
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	a, err := variation.Analyze(m, variation.GridPositioner(tch), tch, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestIdealDACLevels(t *testing.T) {
	a := idealADC(t, 6)
	if got := a.DACOut(0); got != 0 {
		t.Errorf("DACOut(0) = %g", got)
	}
	if got := a.DACOut(32); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("DACOut(32) = %g, want 0.5", got)
	}
	if got := a.DACOut(63); math.Abs(got-63.0/64) > 1e-12 {
		t.Errorf("DACOut(63) = %g", got)
	}
}

func TestIdealConversionExact(t *testing.T) {
	a := idealADC(t, 8)
	lsb := 1.0 / 256
	for _, code := range []int{0, 1, 127, 128, 200, 255} {
		vin := (float64(code) + 0.5) * lsb
		if got := a.Convert(vin); got != code {
			t.Errorf("Convert(mid of %d) = %d", code, got)
		}
	}
	// Below the first transition: code 0; at full scale: max code.
	if got := a.Convert(0); got != 0 {
		t.Errorf("Convert(0) = %d", got)
	}
	if got := a.Convert(1.0); got != 255 {
		t.Errorf("Convert(VREF) = %d", got)
	}
}

func TestConversionMonotoneIdeal(t *testing.T) {
	a := idealADC(t, 6)
	prev := -1
	for i := 0; i <= 1000; i++ {
		code := a.Convert(float64(i) / 1000)
		if code < prev {
			t.Fatalf("non-monotone conversion at vin=%g: %d < %d", float64(i)/1000, code, prev)
		}
		prev = code
	}
}

func TestTransitionLevelsCount(t *testing.T) {
	a := idealADC(t, 6)
	levels := a.TransitionLevels()
	if len(levels) != 63 {
		t.Fatalf("levels = %d, want 63", len(levels))
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Fatalf("transition levels not increasing at %d", i)
		}
	}
}

func TestStaticNLIdealZero(t *testing.T) {
	a := idealADC(t, 8)
	dnl, inl := a.StaticNL()
	if dnl > 1e-9 || inl > 1e-9 {
		t.Errorf("ideal ADC has DNL %g INL %g", dnl, inl)
	}
}

func TestStaticNLWithMismatch(t *testing.T) {
	an := analysisFor(t, 8, place.Spiral)
	a, err := New(an, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dnl, inl := a.StaticNL()
	// Systematic-only mismatch: tiny but nonzero.
	if dnl <= 0 || inl <= 0 {
		t.Error("mismatched ADC reports zero nonlinearity")
	}
	if dnl > 0.5 || inl > 0.5 {
		t.Errorf("systematic-only NL implausibly large: %g/%g", dnl, inl)
	}
}

func TestIdealENOBNearResolution(t *testing.T) {
	for _, bits := range []int{6, 8} {
		a := idealADC(t, bits)
		enob := ENOB(a.SNDR(8192))
		if math.Abs(enob-float64(bits)) > 0.2 {
			t.Errorf("%d-bit ideal ENOB = %.2f", bits, enob)
		}
	}
}

func TestMismatchDegradesENOB(t *testing.T) {
	an := analysisFor(t, 8, place.Spiral)
	ideal := idealADC(t, 8)
	// Spiral systematic shifts cancel to ~ppm; inject a synthetic 1%
	// alternating-sign mismatch to make the effect visible above the
	// quantization floor.
	shifts := make([]float64, 9)
	for k := range shifts {
		sign := 1.0
		if k%2 == 0 {
			sign = -1
		}
		shifts[k] = sign * 0.01 * float64(an.Counts[k]) * an.CuFF
	}
	bad, err := NewFromShifts(an, shifts, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e1, e2 := ENOB(ideal.SNDR(4096)), ENOB(bad.SNDR(4096)); e2 >= e1 {
		t.Errorf("mismatch did not degrade ENOB: %g vs %g", e1, e2)
	}
}

func TestCTSGainErrorShiftsLevels(t *testing.T) {
	an := analysisFor(t, 6, place.Spiral)
	clean, err := New(an, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := New(an, 30, 1) // 30 fF on a 320 fF array
	if err != nil {
		t.Fatal(err)
	}
	// The gain error compresses all DAC levels.
	if dirty.DACOut(32) >= clean.DACOut(32) {
		t.Error("C_TS did not reduce DAC levels")
	}
}

func TestBuildRejectsBadInputs(t *testing.T) {
	if _, err := NewIdeal(1, 5, 1); err == nil {
		t.Error("1-bit ADC must be rejected")
	}
	if _, err := NewIdeal(6, 5, 0); err == nil {
		t.Error("zero vref must be rejected")
	}
	an := analysisFor(t, 6, place.Spiral)
	if _, err := NewFromShifts(an, []float64{1}, 0, 1); err == nil {
		t.Error("wrong shift count must be rejected")
	}
	// Negative capacitor after shift.
	shifts := make([]float64, 7)
	shifts[0] = -1000
	if _, err := NewFromShifts(an, shifts, 0, 1); err == nil {
		t.Error("negative capacitor must be rejected")
	}
}

func TestMaxSampleRate(t *testing.T) {
	// tau = 10 ps, 8 bits: one conversion = 8 * 10ln2 * 10ps.
	got := MaxSampleRateHz(8, 1e-11)
	want := 1 / (8 * 10 * math.Ln2 * 1e-11)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("rate = %g, want %g", got, want)
	}
	if !math.IsInf(MaxSampleRateHz(8, 0), 1) {
		t.Error("zero tau must give infinite rate")
	}
	// Rate falls with resolution at fixed tau.
	if MaxSampleRateHz(10, 1e-11) >= MaxSampleRateHz(6, 1e-11) {
		t.Error("rate must fall with resolution")
	}
}

func TestENOBFormula(t *testing.T) {
	// 6.02*N + 1.76 dB -> N bits.
	if got := ENOB(6.02*8 + 1.76); math.Abs(got-8) > 1e-12 {
		t.Errorf("ENOB = %g, want 8", got)
	}
}

func TestConversionConsistentWithTransitionLevels(t *testing.T) {
	// Property: Convert(v) returns the number of transition levels at
	// or below v, for any mismatch realization.
	an := analysisFor(t, 6, place.Spiral)
	rng := func(k int) float64 { return float64((k*2654435761)%1000)/1000*0.04 - 0.02 }
	shifts := make([]float64, 7)
	for k := range shifts {
		shifts[k] = rng(k) * float64(an.Counts[k]) * an.CuFF
	}
	a, err := NewFromShifts(an, shifts, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	levels := a.TransitionLevels()
	for i := 0; i <= 200; i++ {
		vin := float64(i) / 200
		want := 0
		for _, l := range levels {
			if l <= vin {
				want++
			}
		}
		if got := a.Convert(vin); got != want {
			t.Fatalf("Convert(%g) = %d, want %d (levels)", vin, got, want)
		}
	}
}

func TestConversionMonotoneUnderMismatch(t *testing.T) {
	// Binary-weighted SAR with positive capacitors: the DAC levels are
	// increasing in code only if mismatch is small; with our ppm-level
	// systematic shifts the transfer must remain monotone.
	an := analysisFor(t, 8, place.Chessboard)
	a, err := New(an, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for i := 0; i <= 2000; i++ {
		code := a.Convert(float64(i) / 2000)
		if code < prev {
			t.Fatalf("non-monotone at %d/2000: %d < %d", i, code, prev)
		}
		prev = code
	}
}
