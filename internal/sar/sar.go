// Package sar builds the paper's motivating application on top of the
// capacitor-array flow: a behavioral charge-redistribution SAR ADC
// whose binary-weighted DAC uses the (mismatched, parasitic-laden)
// capacitor values of a generated layout. It converts analog inputs by
// successive approximation, measures static transfer metrics, and
// estimates dynamic performance (SNDR/ENOB from full-scale sine
// quantization) and the maximum sample rate permitted by the array's
// settling time — connecting the paper's f3dB and INL/DNL metrics to
// the system-level numbers an ADC designer quotes.
package sar

import (
	"fmt"
	"math"

	"ccdac/internal/extract"
	"ccdac/internal/variation"
)

// ADC is a behavioral N-bit charge-redistribution SAR ADC.
type ADC struct {
	// Bits is the resolution N.
	Bits int
	// CapsFF holds the actual capacitor values C_0..C_N in fF
	// (including mismatch); C_0 is the always-grounded terminator.
	CapsFF []float64
	// CTSfF is the top-plate parasitic to ground (gain error).
	CTSfF float64
	// VRef is the reference voltage.
	VRef float64
}

// New builds an ADC from a variation analysis: capacitor values are
// the gradient-shifted C_k* (systematic mismatch). Use NewFromShifts
// for Monte-Carlo samples.
func New(a *variation.Analysis, ctsFF, vref float64) (*ADC, error) {
	caps := make([]float64, a.Bits+1)
	for k := 0; k <= a.Bits; k++ {
		caps[k] = a.CStar[k]
	}
	return build(a.Bits, caps, ctsFF, vref)
}

// NewFromShifts builds an ADC whose capacitors are the nominal values
// plus the per-capacitor shifts (fF), e.g. one variation.MonteCarlo
// sample.
func NewFromShifts(a *variation.Analysis, shifts []float64, ctsFF, vref float64) (*ADC, error) {
	if len(shifts) != a.Bits+1 {
		return nil, fmt.Errorf("sar: %d shifts for %d capacitors", len(shifts), a.Bits+1)
	}
	caps := make([]float64, a.Bits+1)
	for k := 0; k <= a.Bits; k++ {
		caps[k] = float64(a.Counts[k])*a.CuFF + shifts[k]
	}
	return build(a.Bits, caps, ctsFF, vref)
}

// NewIdeal builds a mismatch-free ADC for reference measurements.
func NewIdeal(bits int, cuFF, vref float64) (*ADC, error) {
	caps := make([]float64, bits+1)
	caps[0], caps[1] = cuFF, cuFF
	for k := 2; k <= bits; k++ {
		caps[k] = float64(int(1)<<(k-1)) * cuFF
	}
	return build(bits, caps, 0, vref)
}

func build(bits int, caps []float64, ctsFF, vref float64) (*ADC, error) {
	if bits < 2 {
		return nil, fmt.Errorf("sar: need at least 2 bits, got %d", bits)
	}
	if vref <= 0 {
		return nil, fmt.Errorf("sar: vref must be positive")
	}
	for k, c := range caps {
		if c <= 0 {
			return nil, fmt.Errorf("sar: capacitor %d non-positive (%g fF)", k, c)
		}
	}
	return &ADC{Bits: bits, CapsFF: caps, CTSfF: ctsFF, VRef: vref}, nil
}

// DACOut returns the DAC output voltage for a digital code, including
// mismatch and the C^TS gain error.
func (a *ADC) DACOut(code int) float64 {
	cT := a.CTSfF
	for _, c := range a.CapsFF {
		cT += c
	}
	on := 0.0
	for k := 1; k <= a.Bits; k++ {
		if code&(1<<(k-1)) != 0 {
			on += a.CapsFF[k]
		}
	}
	return a.VRef * on / cT
}

// Convert runs the successive-approximation loop on an input voltage
// and returns the output code. The comparator is ideal; the DAC is the
// mismatched array.
func (a *ADC) Convert(vin float64) int {
	code := 0
	for k := a.Bits; k >= 1; k-- {
		trial := code | 1<<(k-1)
		if a.DACOut(trial) <= vin {
			code = trial
		}
	}
	return code
}

// TransitionLevels returns the 2^N - 1 input voltages at which the
// output code increments, computed from the DAC levels (an ideal
// comparator switches exactly at the DAC output of the next code).
func (a *ADC) TransitionLevels() []float64 {
	n := 1 << a.Bits
	out := make([]float64, n-1)
	for i := 1; i < n; i++ {
		out[i-1] = a.DACOut(i)
	}
	return out
}

// StaticNL computes the ADC's static INL and DNL (in LSB) from its
// transition levels, the ADC-side counterpart of the paper's DAC
// metrics.
func (a *ADC) StaticNL() (maxAbsDNL, maxAbsINL float64) {
	levels := a.TransitionLevels()
	lsb := a.VRef / float64(int(1)<<a.Bits)
	for i, v := range levels {
		ideal := float64(i+1) * lsb
		inl := (v - ideal) / lsb
		if m := math.Abs(inl); m > maxAbsINL {
			maxAbsINL = m
		}
		if i > 0 {
			dnl := (v-levels[i-1])/lsb - 1
			if m := math.Abs(dnl); m > maxAbsDNL {
				maxAbsDNL = m
			}
		}
	}
	return maxAbsDNL, maxAbsINL
}

// SNDR quantizes a full-scale sine through the converter and returns
// the signal-to-noise-and-distortion ratio in dB. samples should be a
// few thousand for a stable estimate.
func (a *ADC) SNDR(samples int) float64 {
	if samples < 16 {
		samples = 16
	}
	lsb := a.VRef / float64(int(1)<<a.Bits)
	amp := (a.VRef - lsb) / 2
	mid := a.VRef / 2
	sigPow, errPow := 0.0, 0.0
	// Incommensurate frequency avoids sampling the same phases.
	const cycles = 37.0
	for i := 0; i < samples; i++ {
		phase := 2 * math.Pi * cycles * float64(i) / float64(samples)
		vin := mid + amp*math.Sin(phase)
		code := a.Convert(vin)
		vout := (float64(code) + 0.5) * lsb
		sig := vin - mid
		sigPow += sig * sig
		e := vout - vin
		errPow += e * e
	}
	if errPow == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sigPow/errPow)
}

// ENOB converts an SNDR in dB to effective bits.
func ENOB(sndrDB float64) float64 { return (sndrDB - 1.76) / 6.02 }

// MaxSampleRateHz estimates the SAR conversion rate the array allows:
// each of the N bit trials must settle to 1/4 LSB (Eq. 15), so one
// conversion takes N·t_settle.
func MaxSampleRateHz(bits int, tauSec float64) float64 {
	if tauSec <= 0 {
		return math.Inf(1)
	}
	return 1 / (float64(bits) * extract.SettlingTime(bits, tauSec))
}
