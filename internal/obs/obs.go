// Package obs is the pipeline's observability layer: span-based stage
// tracing, a metrics registry (counters, gauges, histograms), and
// profiling hooks (runtime/pprof goroutine labels, optional heap
// snapshots at span close). It has no dependencies outside the
// standard library and is safe for concurrent use.
//
// Cost model: every instrumentation site fast-paths out on a single
// atomic load while no Trace is live (the same disarmed-cost pattern as
// internal/fault), so instrumented code pays ~nothing when nobody is
// observing. A site only does real work when a caller created a Trace
// with New and attached it to the context flowing through the pipeline:
//
//	tr := obs.New(obs.Options{})
//	defer tr.Finish()
//	ctx = obs.WithTrace(ctx, tr)
//	ctx, span := obs.StartSpan(ctx, "route.trunk")
//	...
//	span.End()
//
// Spans nest through the context: StartSpan parents the new span under
// the span already in ctx, so a stage that forwards its span context to
// a sub-stage gets a tree for free. Metrics recorded through the
// context helpers (Count, SetGauge, Observe) land in the registry of
// the context's trace, keeping concurrent runs isolated. See
// docs/OBSERVABILITY.md for the span model and naming convention.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// active counts live (un-Finished) traces. Instrumentation sites load
// it once and return immediately when it is zero; this is the only cost
// tracing imposes on an unobserved run.
var active atomic.Int64

// Enabled reports whether any trace is currently collecting.
func Enabled() bool { return active.Load() > 0 }

// Options tunes what a Trace collects beyond wall time.
type Options struct {
	// PprofLabels tags the running goroutine with a "ccdac_span" label
	// while each span is open, so CPU profiles attribute samples to
	// pipeline stages (go tool pprof -tagfocus).
	PprofLabels bool
	// MemStats snapshots runtime.MemStats at span start and close and
	// records the per-span allocation delta (bytes and object count).
	// ReadMemStats is expensive; enable only for allocation hunts.
	MemStats bool
}

// Trace collects the spans and metrics of one observed run.
type Trace struct {
	opts Options

	// id is the 16-byte (32 hex character) trace identifier, unique
	// within the process and OTLP-shaped for export.
	id string
	// tag is an optional caller-assigned correlation label (the serve
	// daemon tags traces with the request ID); bus subscribers can
	// filter on it. Set before the trace is shared across goroutines.
	tag string
	// bus, when attached, receives live span start/end and counter
	// events as the trace runs. Attach before the trace is shared.
	bus *Bus

	mu       sync.Mutex
	spans    []*Span
	finished bool

	nextID atomic.Uint64
	reg    *Registry

	// now is the clock, swappable by tests for deterministic output.
	now func() time.Time
}

// traceIDSeed is a per-process random prefix; combined with a counter
// it yields unique 16-byte trace IDs without per-trace entropy reads.
var (
	traceIDSeed [8]byte
	traceIDSeq  atomic.Uint64
)

func init() {
	// A failed read leaves the zero seed: IDs stay unique within the
	// process, only cross-process collision resistance degrades.
	_, _ = rand.Read(traceIDSeed[:])
}

func newTraceID() string {
	var b [16]byte
	copy(b[:8], traceIDSeed[:])
	binary.BigEndian.PutUint64(b[8:], traceIDSeq.Add(1))
	return hex.EncodeToString(b[:])
}

// New returns a live trace. Every New must be paired with Finish:
// the count of live traces is what arms the package-wide fast path.
func New(opts Options) *Trace {
	t := &Trace{opts: opts, id: newTraceID(), reg: NewRegistry(), now: time.Now}
	active.Add(1)
	return t
}

// ID returns the trace's 32-hex-character identifier.
func (t *Trace) ID() string { return t.id }

// SetTag labels the trace with a caller correlation key (e.g. an HTTP
// request ID); bus events carry it and subscribers can filter on it.
// Call before the trace is shared across goroutines.
func (t *Trace) SetTag(tag string) { t.tag = tag }

// Tag returns the trace's correlation label ("" if unset).
func (t *Trace) Tag() string { return t.tag }

// AttachBus streams this trace's span start/end and counter events to
// b as they happen. Call before the trace is shared across goroutines.
// The trace publishes nothing while b has no subscribers.
func (t *Trace) AttachBus(b *Bus) { t.bus = b }

// emitting reports whether event construction is worth the work: a bus
// is attached and someone is listening.
func (t *Trace) emitting() bool {
	return t.bus != nil && t.bus.HasSubscribers()
}

// emit stamps the trace identity onto ev and publishes it.
func (t *Trace) emit(ev Event) {
	ev.TraceID = t.id
	ev.Tag = t.tag
	t.bus.publish(ev)
}

// Finish marks the trace complete and disarms it. Idempotent. Spans
// still open at Finish are dropped from the record when they End.
func (t *Trace) Finish() {
	t.mu.Lock()
	done := t.finished
	t.finished = true
	t.mu.Unlock()
	if !done {
		active.Add(-1)
		if t.emitting() {
			t.emit(Event{Type: EventTraceFinish, Time: t.now()})
		}
	}
}

// Registry returns the trace's metrics registry.
func (t *Trace) Registry() *Registry { return t.reg }

// SpanRecord is the immutable snapshot of one finished span.
type SpanRecord struct {
	// ID and ParentID identify the span within its trace; ParentID is 0
	// for root spans.
	ID, ParentID uint64
	// Name identifies the stage, e.g. "routing" or "route.wires".
	Name  string
	Start time.Time
	// Duration is the span's wall time.
	Duration time.Duration
	// Err is the failure that marked this span errored ("" if none).
	Err string
	// Attrs carries stage-specific key/value annotations.
	Attrs map[string]string
	// AllocBytes and AllocObjects are the heap-allocation deltas over
	// the span's lifetime (zero unless Options.MemStats).
	AllocBytes, AllocObjects uint64
}

// Spans returns the finished spans in completion order.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	for i, s := range t.spans {
		out[i] = s.record()
	}
	return out
}

// Span is one open (or finished) traced region. The zero of *Span is
// nil, and every method is nil-safe, so instrumentation sites never
// need to branch on whether tracing is live.
type Span struct {
	tr       *Trace
	id       uint64
	parent   uint64
	name     string
	start    time.Time
	end      time.Time
	err      string
	attrs    map[string]string
	prevCtx  context.Context // pprof label restore target
	memStart runtime.MemStats
	alloc    uint64
	objects  uint64
	ended    atomic.Bool
}

type spanKey struct{}
type traceKey struct{}

// WithTrace attaches a trace to the context; StartSpan under this
// context records into it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan opens a span named name under the span already in ctx (or
// as a root span) and returns the context carrying it. When no live
// trace is reachable it returns (ctx, nil) after one atomic load; the
// nil span's methods are no-ops.
//
// End must be called on the same goroutine that called StartSpan when
// Options.PprofLabels is set (goroutine labels are restored at End).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if active.Load() == 0 {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var tr *Trace
	if parent != nil {
		tr = parent.tr
	} else {
		tr = FromContext(ctx)
	}
	if tr == nil {
		return ctx, nil
	}
	s := &Span{tr: tr, id: tr.nextID.Add(1), name: name, start: tr.now(), prevCtx: ctx}
	if parent != nil {
		s.parent = parent.id
	}
	ctx = context.WithValue(ctx, spanKey{}, s)
	if tr.opts.PprofLabels {
		ctx = pprof.WithLabels(ctx, pprof.Labels("ccdac_span", name))
		pprof.SetGoroutineLabels(ctx)
	}
	if tr.opts.MemStats {
		runtime.ReadMemStats(&s.memStart)
	}
	if tr.emitting() {
		tr.emit(Event{
			Type: EventSpanStart, Time: s.start,
			SpanID: s.id, ParentID: s.parent, Name: name,
		})
	}
	return ctx, s
}

// CurrentSpan returns the span carried by ctx, or nil.
func CurrentSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ID returns the span's trace-local ID (0 for the nil span), the same
// value SpanRecord.ID reports after End — callers use it to correlate
// external records (e.g. structured request logs) with the span tree.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Fail marks the span errored. The span stays open until End; calling
// Fail(nil) is a no-op, so `defer span.Fail(err)`-style uses are safe.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
}

// SetAttr annotates the span. Must be called before End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// End closes the span, snapshots its allocation delta (if enabled),
// restores the goroutine's pprof labels, and appends the record to the
// trace. Idempotent: only the first End records.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.end = s.tr.now()
	if s.tr.opts.MemStats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.alloc = ms.TotalAlloc - s.memStart.TotalAlloc
		s.objects = ms.Mallocs - s.memStart.Mallocs
	}
	if s.tr.opts.PprofLabels {
		pprof.SetGoroutineLabels(s.prevCtx)
	}
	s.tr.mu.Lock()
	if !s.tr.finished {
		s.tr.spans = append(s.tr.spans, s)
	}
	s.tr.mu.Unlock()
	if s.tr.emitting() {
		// attrs are immutable once End has run (SetAttr contract), so
		// sharing the map with subscribers is safe.
		s.tr.emit(Event{
			Type: EventSpanEnd, Time: s.end,
			SpanID: s.id, ParentID: s.parent, Name: s.name,
			DurNS: s.end.Sub(s.start).Nanoseconds(), Err: s.err, Attrs: s.attrs,
		})
	}
}

func (s *Span) record() SpanRecord {
	r := SpanRecord{
		ID: s.id, ParentID: s.parent, Name: s.name,
		Start: s.start, Duration: s.end.Sub(s.start), Err: s.err,
		AllocBytes: s.alloc, AllocObjects: s.objects,
	}
	if len(s.attrs) > 0 {
		r.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			r.Attrs[k] = v
		}
	}
	return r
}

// Count adds delta to the named counter in the context trace's
// registry. One atomic load and out when no trace is live.
func Count(ctx context.Context, name string, delta int64) {
	CountL(ctx, name, nil, delta)
}

// CountL is Count with metric labels.
func CountL(ctx context.Context, name string, labels Labels, delta int64) {
	if active.Load() == 0 {
		return
	}
	if tr := traceOf(ctx); tr != nil {
		tr.reg.Counter(name, labels).Add(delta)
		if tr.emitting() {
			tr.emit(Event{
				Type: EventCounter, Time: tr.now(),
				SpanID: CurrentSpan(ctx).ID(),
				Name:   seriesKey(name, labels), Delta: delta,
			})
		}
	}
}

// SetGauge sets the named gauge in the context trace's registry.
func SetGauge(ctx context.Context, name string, v float64) {
	if active.Load() == 0 {
		return
	}
	if tr := traceOf(ctx); tr != nil {
		tr.reg.Gauge(name, nil).Set(v)
	}
}

// Observe records v into the named histogram of the context trace's
// registry, with default buckets chosen by the name's unit suffix.
func Observe(ctx context.Context, name string, v float64) {
	ObserveL(ctx, name, nil, v)
}

// ObserveL is Observe with metric labels.
func ObserveL(ctx context.Context, name string, labels Labels, v float64) {
	if active.Load() == 0 {
		return
	}
	if tr := traceOf(ctx); tr != nil {
		tr.reg.Histogram(name, labels, defaultBuckets(name)).Observe(v)
	}
}

// ObserveDuration records d in seconds into the named histogram.
func ObserveDuration(ctx context.Context, name string, d time.Duration) {
	ObserveL(ctx, name, nil, d.Seconds())
}

// ObserveDurationL is ObserveDuration with metric labels.
func ObserveDurationL(ctx context.Context, name string, labels Labels, d time.Duration) {
	ObserveL(ctx, name, labels, d.Seconds())
}

// traceOf resolves the trace reachable from ctx: the current span's
// trace first (cheap, most sites run under a span), then the context
// trace itself.
func traceOf(ctx context.Context) *Trace {
	if s := CurrentSpan(ctx); s != nil {
		return s.tr
	}
	return FromContext(ctx)
}
