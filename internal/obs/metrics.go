package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimensions to a metric (e.g. stage="routing"). Nil
// means no labels. Label sets are rendered in sorted-key order, so two
// maps with equal contents name the same series.
type Labels map[string]string

// Metric names follow the convention ccdac_<pkg>_<name>_<unit>
// (docs/OBSERVABILITY.md): _total for counters, _seconds/_um/_bytes
// etc. for the measured unit. The registry does not enforce it, but
// default histogram buckets key off the unit suffix.

// DefaultDurationBuckets are the upper bounds (seconds) used for
// *_seconds histograms: 1µs to ~100s, decade-and-a-half spaced, wide
// enough to cover one routing iteration and a full best-BC sweep.
var DefaultDurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 2.5, 10, 100,
}

// DefaultSizeBuckets are the upper bounds used for count/size
// histograms (nodes, iterations, bytes): powers of four up to ~1M.
var DefaultSizeBuckets = []float64{
	1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
}

// DefaultRatioBuckets are the upper bounds used for *_residual and
// *_ratio histograms: log-spaced from 1e-16 (below float64 machine
// epsilon — a fully converged solve) up to 1 (no convergence at all).
var DefaultRatioBuckets = []float64{
	1e-16, 1e-14, 1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1,
}

// defaultBuckets picks histogram bounds from the metric's unit suffix.
func defaultBuckets(name string) []float64 {
	if strings.HasSuffix(name, "_seconds") {
		return DefaultDurationBuckets
	}
	if strings.HasSuffix(name, "_residual") || strings.HasSuffix(name, "_ratio") {
		return DefaultRatioBuckets
	}
	return DefaultSizeBuckets
}

// Registry holds one run's (or one process's) metric instruments.
// Series are created on first use and live for the registry's lifetime.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*GaugeValue
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*GaugeValue{},
		hists:    map[string]*Histogram{},
	}
}

// labelEscaper rewrites the three characters the Prometheus text
// exposition format requires escaped inside label values — backslash,
// double quote, and newline. Everything else (tabs, UTF-8) passes
// through raw, which the format allows; Go-style %q escaping would
// emit sequences like \t and é that Prometheus parsers reject.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// seriesKey renders name plus the sorted label set, which is also the
// Prometheus exposition form of the series name (label values escaped
// per the exposition spec).
func seriesKey(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		labelEscaper.WriteString(&b, labels[k])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SeriesKey renders a metric name plus label set exactly as snapshot
// maps and the Prometheus exposition key it — for callers that inject
// externally-maintained series into a MetricsSnapshot before writing.
func SeriesKey(name string, labels Labels) string { return seriesKey(name, labels) }

// baseName strips the label set off a series key.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// GaugeValue is a last-write-wins float metric.
type GaugeValue struct{ bits atomic.Uint64 }

// Set stores v.
func (g *GaugeValue) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *GaugeValue) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Exemplar links one histogram bucket to the trace that produced a
// recent sample in it — the OpenMetrics mechanism that lets a latency
// dashboard jump from a bucket straight to a retained trace.
type Exemplar struct {
	// Value is the observed sample; TraceID identifies the trace that
	// produced it; Time is when it was observed.
	Value   float64
	TraceID string
	Time    time.Time
}

// Histogram is a fixed-bucket distribution: Observe files v under the
// first bucket whose upper bound is >= v (an implicit +Inf bucket
// catches the rest), and tracks the sum and count for mean queries.
type Histogram struct {
	bounds []float64

	mu        sync.Mutex
	counts    []uint64 // len(bounds)+1; last is the +Inf overflow
	sum       float64
	n         uint64
	exemplars []*Exemplar // lazily allocated, len(bounds)+1; last-write-wins per bucket
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// ObserveExemplar records one sample and attaches an exemplar linking
// the sample's bucket to traceID (last write per bucket wins).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	ex := &Exemplar{Value: v, TraceID: traceID, Time: time.Now()}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	if h.exemplars == nil {
		h.exemplars = make([]*Exemplar, len(h.counts))
	}
	h.exemplars[i] = ex
	h.mu.Unlock()
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Snapshot returns the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
	if h.exemplars != nil {
		// Exemplar values are immutable once stored (ObserveExemplar
		// replaces the pointer), so sharing them is safe.
		s.Exemplars = append([]*Exemplar(nil), h.exemplars...)
	}
	return s
}

// Counter returns (creating on first use) the named counter series.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge series.
func (r *Registry) Gauge(name string, labels Labels) *GaugeValue {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &GaugeValue{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram series
// with the given bucket upper bounds; bounds are fixed at creation and
// ignored on later lookups.
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
		r.hists[key] = h
	}
	return h
}

// HistogramSnapshot is the frozen state of one histogram series.
type HistogramSnapshot struct {
	Bounds []float64 // bucket upper bounds, ascending
	Counts []uint64  // per-bucket counts; last entry is the +Inf bucket
	Sum    float64
	Count  uint64
	// Exemplars is index-aligned with Counts when any bucket carries
	// one (nil entries mean no exemplar for that bucket), nil when the
	// series never recorded exemplars.
	Exemplars []*Exemplar
}

// MetricsSnapshot is a frozen, map-backed view of a registry, keyed by
// series key (name plus rendered labels).
type MetricsSnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot freezes the registry's current values.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := MetricsSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// Counter returns the value of the series identified by name and
// labels (zero if the series was never written).
func (s MetricsSnapshot) Counter(name string, labels Labels) int64 {
	return s.Counters[seriesKey(name, labels)]
}

// Gauge returns the value of the named gauge series (zero if unset).
func (s MetricsSnapshot) Gauge(name string, labels Labels) float64 {
	return s.Gauges[seriesKey(name, labels)]
}

// merge folds a frozen histogram into h. Matching bucket bounds add
// count-for-count; mismatched bounds re-bucket each source bucket at
// its upper bound (the +Inf overflow stays overflow), which preserves
// totals at the cost of bound-resolution.
func (h *Histogram) merge(s HistogramSnapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	same := len(s.Bounds) == len(h.bounds)
	for i := 0; same && i < len(h.bounds); i++ {
		same = h.bounds[i] == s.Bounds[i]
	}
	if same {
		for i, n := range s.Counts {
			h.counts[i] += n
		}
		// Exemplars merge newest-wins per bucket; they are dropped on a
		// re-bucketing merge (the bucket association is gone).
		for i, ex := range s.Exemplars {
			if ex == nil {
				continue
			}
			if h.exemplars == nil {
				h.exemplars = make([]*Exemplar, len(h.counts))
			}
			if cur := h.exemplars[i]; cur == nil || ex.Time.After(cur.Time) {
				h.exemplars[i] = ex
			}
		}
	} else {
		for i, n := range s.Counts {
			if n == 0 {
				continue
			}
			v := math.Inf(1)
			if i < len(s.Bounds) {
				v = s.Bounds[i]
			}
			h.counts[sort.SearchFloat64s(h.bounds, v)] += n
		}
	}
	h.sum += s.Sum
	h.n += s.Count
}

// Merge folds a frozen snapshot into the registry, series by series
// and label-set by label-set: counters add, gauges take the snapshot's
// value (last write wins), histograms add bucket counts (see
// Histogram merge semantics for mismatched bounds). Series absent
// from the registry are created with the snapshot's values. Merge is
// safe to call concurrently with itself and with every other registry
// method; this is how per-request registries fold into a process-level
// one (internal/serve) and per-run CLI snapshots into one exposition.
func (r *Registry) Merge(s MetricsSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range s.Counters {
		c, ok := r.counters[k]
		if !ok {
			c = &Counter{}
			r.counters[k] = c
		}
		c.Add(v)
	}
	for k, v := range s.Gauges {
		g, ok := r.gauges[k]
		if !ok {
			g = &GaugeValue{}
			r.gauges[k] = g
		}
		g.Set(v)
	}
	for k, hs := range s.Histograms {
		h, ok := r.hists[k]
		if !ok {
			b := append([]float64(nil), hs.Bounds...)
			h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
			r.hists[k] = h
		}
		h.merge(hs)
	}
}

// Delta returns the change from prev to s: counter and histogram
// series subtract (series absent from prev pass through whole), gauges
// keep s's current value. Feeding periodic snapshots of a long-lived
// registry through Delta before Merge avoids double-counting the
// prefix already merged.
func (s MetricsSnapshot) Delta(prev MetricsSnapshot) MetricsSnapshot {
	d := MetricsSnapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		if dv := v - prev.Counters[k]; dv != 0 {
			d.Counters[k] = dv
		}
	}
	for k, v := range s.Gauges {
		d.Gauges[k] = v
	}
	for k, h := range s.Histograms {
		p, ok := prev.Histograms[k]
		if !ok || len(p.Counts) != len(h.Counts) {
			d.Histograms[k] = h
			continue
		}
		dh := HistogramSnapshot{
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: make([]uint64, len(h.Counts)),
			Sum:    h.Sum - p.Sum,
			Count:  h.Count - p.Count,
			// Exemplars are point-in-time links, not cumulative state:
			// the current snapshot's carry through unchanged.
			Exemplars: h.Exemplars,
		}
		for i := range h.Counts {
			dh.Counts[i] = h.Counts[i] - p.Counts[i]
		}
		if dh.Count != 0 {
			d.Histograms[k] = dh
		}
	}
	return d
}
