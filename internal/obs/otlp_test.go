package obs

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestWriteOTLPStructure(t *testing.T) {
	base := time.Unix(1700000000, 0)
	spans := []SpanRecord{
		{
			ID: 2, ParentID: 1, Name: "child",
			Start: base.Add(time.Millisecond), Duration: 2 * time.Millisecond,
			Err:   "stage failed",
			Attrs: map[string]string{"zeta": "z", "alpha": "a"},
		},
		{
			ID: 1, Name: "root",
			Start: base, Duration: 10 * time.Millisecond,
			AllocBytes: 4096, AllocObjects: 7,
		},
	}
	traceID := strings.Repeat("ab", 16)
	var buf bytes.Buffer
	if err := WriteOTLP(&buf, "ccdacd", traceID, spans); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Scope struct {
					Name string `json:"name"`
				} `json:"scope"`
				Spans []map[string]any `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("unexpected shape: %s", buf.String())
	}
	res := doc.ResourceSpans[0]
	if res.Resource.Attributes[0].Key != "service.name" || res.Resource.Attributes[0].Value.StringValue != "ccdacd" {
		t.Errorf("service.name attribute wrong: %+v", res.Resource.Attributes)
	}
	out := res.ScopeSpans[0].Spans
	if len(out) != 2 {
		t.Fatalf("got %d spans, want 2", len(out))
	}

	hex32 := regexp.MustCompile(`^[0-9a-f]{32}$`)
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	child, root := out[0], out[1]

	for i, s := range out {
		if id, _ := s["traceId"].(string); !hex32.MatchString(id) {
			t.Errorf("span %d traceId %q not 32-hex", i, id)
		}
		if id, _ := s["spanId"].(string); !hex16.MatchString(id) {
			t.Errorf("span %d spanId %q not 16-hex", i, id)
		}
		if k, _ := s["kind"].(float64); k != 1 {
			t.Errorf("span %d kind = %v, want 1 (INTERNAL)", i, s["kind"])
		}
		// Nanosecond timestamps must be JSON strings per proto3 mapping.
		if _, ok := s["startTimeUnixNano"].(string); !ok {
			t.Errorf("span %d startTimeUnixNano not a string", i)
		}
	}
	if child["parentSpanId"] != spanIDHex(1) {
		t.Errorf("child parentSpanId = %v, want %s", child["parentSpanId"], spanIDHex(1))
	}
	if _, ok := root["parentSpanId"]; ok {
		t.Error("root span must omit parentSpanId")
	}
	// Errored span carries status code 2 (STATUS_CODE_ERROR).
	status, _ := child["status"].(map[string]any)
	if code, _ := status["code"].(float64); code != 2 {
		t.Errorf("child status = %v, want code 2", child["status"])
	}
	if status["message"] != "stage failed" {
		t.Errorf("child status message = %v", status["message"])
	}
	if rootStatus, _ := root["status"].(map[string]any); len(rootStatus) != 0 {
		t.Errorf("healthy root status = %v, want unset", root["status"])
	}
	// Attributes sorted by key; alloc counters rendered as intValue.
	attrs, _ := child["attributes"].([]any)
	if len(attrs) != 2 {
		t.Fatalf("child attrs = %v", attrs)
	}
	first, _ := attrs[0].(map[string]any)
	if first["key"] != "alpha" {
		t.Errorf("attributes not sorted: first key %v", first["key"])
	}
	rootAttrs, _ := root["attributes"].([]any)
	foundAlloc := false
	for _, a := range rootAttrs {
		kv, _ := a.(map[string]any)
		if kv["key"] == "alloc.bytes" {
			foundAlloc = true
			val, _ := kv["value"].(map[string]any)
			if val["intValue"] != "4096" {
				t.Errorf("alloc.bytes = %v, want string \"4096\"", val)
			}
		}
	}
	if !foundAlloc {
		t.Error("alloc.bytes attribute missing from root span")
	}
}

// TestWriteOTLPFromLiveTrace round-trips an actual traced run through
// the exporter: every recorded span must appear, parented consistently.
func TestWriteOTLPFromLiveTrace(t *testing.T) {
	tr := New(Options{})
	ctx := WithTrace(t.Context(), tr)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	child.SetAttr("k", "v")
	child.End()
	root.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteOTLP(&buf, "test", tr.ID(), tr.Spans()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"name": "root"`) || !strings.Contains(s, `"name": "child"`) {
		t.Errorf("span names missing:\n%s", s)
	}
	if !strings.Contains(s, tr.ID()) {
		t.Errorf("trace ID %s missing from export", tr.ID())
	}
}
