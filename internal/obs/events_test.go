package obs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ccdac/internal/leakcheck"
)

// collect drains a subscription until trace_finish (or the channel
// closes), returning the events received.
func collect(sub *Subscription) []Event {
	var out []Event
	for ev := range sub.Events() {
		out = append(out, ev)
		if ev.Type == EventTraceFinish {
			break
		}
	}
	return out
}

func TestBusDeliversOrderedSpanEvents(t *testing.T) {
	bus := NewBus()
	sub := bus.Subscribe("", 64)
	defer sub.Close()

	tr := New(Options{})
	tr.SetTag("req-1")
	tr.AttachBus(bus)
	ctx := WithTrace(t.Context(), tr)

	ctx, root := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx, "inner")
	Count(ctx, "ccdac_test_total", 3)
	inner.End()
	root.Fail(errors.New("boom"))
	root.End()
	tr.Finish()

	evs := collect(sub)
	want := []struct {
		typ  EventType
		name string
	}{
		{EventSpanStart, "outer"},
		{EventSpanStart, "inner"},
		{EventCounter, "ccdac_test_total"},
		{EventSpanEnd, "inner"},
		{EventSpanEnd, "outer"},
		{EventTraceFinish, ""},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(want), evs)
	}
	var lastSeq uint64
	for i, ev := range evs {
		if ev.Type != want[i].typ || ev.Name != want[i].name {
			t.Errorf("event %d: got (%s, %q), want (%s, %q)", i, ev.Type, ev.Name, want[i].typ, want[i].name)
		}
		if ev.TraceID != tr.ID() {
			t.Errorf("event %d: trace ID %q, want %q", i, ev.TraceID, tr.ID())
		}
		if ev.Tag != "req-1" {
			t.Errorf("event %d: tag %q, want req-1", i, ev.Tag)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("event %d: seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	if evs[2].Delta != 3 {
		t.Errorf("counter delta = %d, want 3", evs[2].Delta)
	}
	if evs[4].Err != "boom" {
		t.Errorf("outer span_end err = %q, want boom", evs[4].Err)
	}
	if evs[3].DurNS < 0 {
		t.Errorf("negative span duration %d", evs[3].DurNS)
	}
}

func TestBusFilterByTagAndTraceID(t *testing.T) {
	bus := NewBus()
	byTag := bus.Subscribe("req-A", 64)
	defer byTag.Close()

	trA := New(Options{})
	trA.SetTag("req-A")
	trA.AttachBus(bus)
	trB := New(Options{})
	trB.SetTag("req-B")
	trB.AttachBus(bus)

	byID := bus.Subscribe(trB.ID(), 64)
	defer byID.Close()

	ctxA := WithTrace(t.Context(), trA)
	_, sA := StartSpan(ctxA, "a")
	sA.End()
	ctxB := WithTrace(t.Context(), trB)
	_, sB := StartSpan(ctxB, "b")
	sB.End()
	trA.Finish()
	trB.Finish()

	for _, ev := range collect(byTag) {
		if ev.Tag != "req-A" {
			t.Errorf("tag-filtered subscriber saw %+v", ev)
		}
	}
	for _, ev := range collect(byID) {
		if ev.TraceID != trB.ID() {
			t.Errorf("ID-filtered subscriber saw %+v", ev)
		}
	}
}

// TestBusBackpressureDropsNeverBlocks is the backpressure contract: a
// subscriber that never drains loses events but the publishing
// pipeline finishes promptly.
func TestBusBackpressureDropsNeverBlocks(t *testing.T) {
	bus := NewBus()
	stalled := bus.Subscribe("", 2) // tiny buffer, never read
	defer stalled.Close()

	tr := New(Options{})
	tr.AttachBus(bus)
	ctx := WithTrace(t.Context(), tr)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_, s := StartSpan(ctx, "spin")
			s.End()
		}
		tr.Finish()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on a stalled subscriber")
	}
	if stalled.Dropped() == 0 {
		t.Error("expected dropped events on a stalled subscriber")
	}
	st := bus.Stats()
	if st.Dropped == 0 || st.Published == 0 {
		t.Errorf("bus stats = %+v, want published and dropped > 0", st)
	}
}

func TestBusNoSubscribersIsCheapAndSilent(t *testing.T) {
	bus := NewBus()
	tr := New(Options{})
	tr.AttachBus(bus)
	ctx := WithTrace(t.Context(), tr)
	_, s := StartSpan(ctx, "quiet")
	s.End()
	tr.Finish()
	if st := bus.Stats(); st.Published != 0 {
		t.Errorf("published %d events with no subscribers", st.Published)
	}
}

// TestBusSubscribeChurnUnderLoad exercises concurrent subscribe /
// consume / disconnect against live publishers — the SSE churn shape —
// under the race detector.
func TestBusSubscribeChurnUnderLoad(t *testing.T) {
	defer leakcheck.Check(t)()
	bus := NewBus()
	stop := make(chan struct{})
	var pubs sync.WaitGroup
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr := New(Options{})
				tr.SetTag(fmt.Sprintf("pub-%d", p))
				tr.AttachBus(bus)
				ctx := WithTrace(t.Context(), tr)
				_, s := StartSpan(ctx, "work")
				Count(ctx, "ccdac_churn_total", 1)
				s.End()
				tr.Finish()
			}
		}(p)
	}
	var subs sync.WaitGroup
	for c := 0; c < 8; c++ {
		subs.Add(1)
		go func(c int) {
			defer subs.Done()
			for i := 0; i < 50; i++ {
				sub := bus.Subscribe(fmt.Sprintf("pub-%d", c%4), 8)
				// Drain a handful, then disconnect mid-stream.
				for j := 0; j < 4; j++ {
					select {
					case <-sub.Events():
					case <-time.After(time.Millisecond):
					}
				}
				sub.Close()
			}
		}(c)
	}
	subs.Wait()
	close(stop)
	pubs.Wait()
	if st := bus.Stats(); st.Subscribers != 0 {
		t.Errorf("%d subscribers leaked", st.Subscribers)
	}
}
