// Span event bus: a low-overhead publish/subscribe hook that streams
// span start/end and counter-delta events out of in-flight traces, so
// a caller (the serve daemon's SSE endpoint, a progress bar) can watch
// a run while it is still going instead of reading Result.Trace after
// the fact.
//
// Cost model: a trace with no bus attached pays one nil check per
// instrumentation site on top of the armed-trace work; a bus with no
// subscribers pays one atomic load. Publishing never blocks — a
// subscriber whose buffer is full loses events (counted per subscriber
// and bus-wide), so a stalled SSE client can never stall the pipeline.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventType discriminates bus events.
type EventType string

const (
	// EventSpanStart is published when a span opens.
	EventSpanStart EventType = "span_start"
	// EventSpanEnd is published when a span closes; it carries the
	// span's duration, error, and attributes.
	EventSpanEnd EventType = "span_end"
	// EventCounter is published for each counter increment recorded
	// through the context helpers, carrying the delta.
	EventCounter EventType = "counter"
	// EventTraceFinish is published when the trace's Finish runs: no
	// further events for that trace ID will follow.
	EventTraceFinish EventType = "trace_finish"
)

// Event is one live-telemetry record. Seq is bus-global and strictly
// increasing in publish order, so any subscriber can re-order or detect
// gaps (dropped events) by sequence number.
type Event struct {
	Seq     uint64    `json:"seq"`
	TraceID string    `json:"trace_id"`
	Tag     string    `json:"tag,omitempty"`
	Type    EventType `json:"type"`
	Time    time.Time `json:"time"`

	SpanID   uint64            `json:"span_id,omitempty"`
	ParentID uint64            `json:"parent_id,omitempty"`
	Name     string            `json:"name,omitempty"`
	DurNS    int64             `json:"dur_ns,omitempty"`
	Err      string            `json:"err,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Delta    int64             `json:"delta,omitempty"`
}

// Bus fans trace events out to its subscribers. The zero value is not
// usable; construct with NewBus. All methods are safe for concurrent
// use.
type Bus struct {
	nsubs     atomic.Int64 // fast-path guard: publishers bail when zero
	published atomic.Int64
	dropped   atomic.Int64

	mu   sync.Mutex
	seq  uint64
	subs map[*Subscription]struct{}
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: map[*Subscription]struct{}{}}
}

// Subscription is one subscriber's bounded event feed.
type Subscription struct {
	bus     *Bus
	filter  string
	ch      chan Event
	dropped atomic.Int64
	closed  bool // guarded by bus.mu
}

// Subscribe registers a subscriber. filter narrows delivery to events
// whose TraceID or Tag equals filter ("" receives everything). buffer
// bounds the undelivered-event queue; events published while the queue
// is full are dropped for this subscriber, never retried, never
// blocking the publisher.
func (b *Bus) Subscribe(filter string, buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 256
	}
	s := &Subscription{bus: b, filter: filter, ch: make(chan Event, buffer)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	b.nsubs.Add(1)
	return s
}

// Events returns the subscriber's feed. The channel is closed by
// Close, never by the bus.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events this subscriber lost to a full
// buffer.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close unsubscribes and closes the feed channel. Idempotent.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	if !s.closed {
		s.closed = true
		delete(s.bus.subs, s)
		s.bus.nsubs.Add(-1)
		// Publishing holds the same lock, so nothing can be sending on
		// the channel when it closes.
		close(s.ch)
	}
	s.bus.mu.Unlock()
}

// HasSubscribers reports whether any subscriber is registered — the
// one-atomic-load fast path publishers consult before building events.
func (b *Bus) HasSubscribers() bool { return b.nsubs.Load() > 0 }

// publish assigns the event's sequence number and fans it out. Sends
// are non-blocking: a full subscriber buffer drops the event for that
// subscriber only.
func (b *Bus) publish(ev Event) {
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	for s := range b.subs {
		if s.filter != "" && s.filter != ev.TraceID && s.filter != ev.Tag {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
	b.published.Add(1)
}

// BusStats is the bus's lifetime accounting.
type BusStats struct {
	// Published counts events accepted by the bus (before fan-out).
	Published int64
	// Dropped counts per-subscriber deliveries lost to full buffers.
	Dropped int64
	// Subscribers is the current subscriber count.
	Subscribers int64
}

// Stats returns the bus's counters.
func (b *Bus) Stats() BusStats {
	return BusStats{
		Published:   b.published.Load(),
		Dropped:     b.dropped.Load(),
		Subscribers: b.nsubs.Load(),
	}
}
