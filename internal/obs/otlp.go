// Dependency-free OTLP/JSON trace export: renders a span tree in the
// OpenTelemetry protocol's JSON encoding (the proto3 JSON mapping of
// ExportTraceServiceRequest), so ccdac traces load straight into any
// OTLP-speaking backend — Jaeger, Tempo, an OpenTelemetry collector —
// without this module importing any of them:
//
//	curl -X POST http://localhost:4318/v1/traces \
//	     -H 'Content-Type: application/json' --data-binary @trace.json
//
// Per the OTLP spec, trace IDs are 32 lowercase hex characters, span
// IDs 16 (hex is the JSON special case; proto bytes fields elsewhere
// use base64), and uint64 nanosecond timestamps are JSON strings.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string     `json:"traceId"`
	SpanID       string     `json:"spanId"`
	ParentSpanID string     `json:"parentSpanId,omitempty"`
	Name         string     `json:"name"`
	Kind         int        `json:"kind"`
	StartNano    string     `json:"startTimeUnixNano"`
	EndNano      string     `json:"endTimeUnixNano"`
	Attributes   []otlpKV   `json:"attributes,omitempty"`
	Status       otlpStatus `json:"status"`
}

type otlpKV struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue *string `json:"stringValue,omitempty"`
	// IntValue is a string per the proto3 JSON mapping of int64.
	IntValue *string `json:"intValue,omitempty"`
}

func otlpStr(s string) otlpValue { return otlpValue{StringValue: &s} }
func otlpInt(v uint64) otlpValue { i := strconv.FormatUint(v, 10); return otlpValue{IntValue: &i} }

type otlpStatus struct {
	// Code 2 is STATUS_CODE_ERROR; the zero value (UNSET) marshals to
	// an empty object, which OTLP reads as "no status set".
	Code    int    `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

// otlpSpanKindInternal is SPAN_KIND_INTERNAL: every pipeline span is
// an in-process operation.
const otlpSpanKindInternal = 1

// spanIDHex renders a trace-local span ID in OTLP's 8-byte hex form.
func spanIDHex(id uint64) string { return fmt.Sprintf("%016x", id) }

// WriteOTLP renders spans as one OTLP/JSON export request under the
// given service name and 32-hex trace ID. Span attributes are sorted
// by key and spans keep their input (completion) order, so output is
// deterministic given deterministic spans.
func WriteOTLP(w io.Writer, service, traceID string, spans []SpanRecord) error {
	out := make([]otlpSpan, len(spans))
	for i, s := range spans {
		os := otlpSpan{
			TraceID:   traceID,
			SpanID:    spanIDHex(s.ID),
			Name:      s.Name,
			Kind:      otlpSpanKindInternal,
			StartNano: strconv.FormatInt(s.Start.UnixNano(), 10),
			EndNano:   strconv.FormatInt(s.Start.Add(s.Duration).UnixNano(), 10),
		}
		if s.ParentID != 0 {
			os.ParentSpanID = spanIDHex(s.ParentID)
		}
		if s.Err != "" {
			os.Status = otlpStatus{Code: 2, Message: s.Err}
		}
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			os.Attributes = append(os.Attributes, otlpKV{Key: k, Value: otlpStr(s.Attrs[k])})
		}
		if s.AllocBytes != 0 || s.AllocObjects != 0 {
			os.Attributes = append(os.Attributes,
				otlpKV{Key: "alloc.bytes", Value: otlpInt(s.AllocBytes)},
				otlpKV{Key: "alloc.objects", Value: otlpInt(s.AllocObjects)})
		}
		out[i] = os
	}
	req := otlpExport{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKV{
			{Key: "service.name", Value: otlpStr(service)},
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "ccdac/internal/obs"},
			Spans: out,
		}},
	}}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(req)
}
