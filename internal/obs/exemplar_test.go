package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObserveExemplarAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", nil, []float64{0.1, 1})
	h.Observe(0.05)
	h.ObserveExemplar(0.5, "trace-a")
	h.ObserveExemplar(0.7, "trace-b") // same bucket: last write wins

	s := h.Snapshot()
	if len(s.Exemplars) != 3 {
		t.Fatalf("exemplars len = %d, want len(counts)=3", len(s.Exemplars))
	}
	if s.Exemplars[0] != nil {
		t.Errorf("bucket 0 has unexpected exemplar %+v", s.Exemplars[0])
	}
	ex := s.Exemplars[1]
	if ex == nil || ex.TraceID != "trace-b" || ex.Value != 0.7 {
		t.Errorf("bucket 1 exemplar = %+v, want trace-b/0.7", ex)
	}
	if s.Count != 3 {
		t.Errorf("count = %d, want 3 (exemplar observes also count)", s.Count)
	}
}

func TestMergeExemplarsNewestWins(t *testing.T) {
	src := NewRegistry()
	sh := src.Histogram("req_seconds", nil, []float64{0.1, 1})
	sh.ObserveExemplar(0.5, "newer")

	dst := NewRegistry()
	dh := dst.Histogram("req_seconds", nil, []float64{0.1, 1})
	dh.ObserveExemplar(0.6, "older")
	// Backdate the destination's exemplar so the merged one is newer.
	dh.mu.Lock()
	dh.exemplars[1].Time = time.Now().Add(-time.Hour)
	dh.mu.Unlock()

	dst.Merge(src.Snapshot())
	got := dh.Snapshot()
	if ex := got.Exemplars[1]; ex == nil || ex.TraceID != "newer" {
		t.Errorf("merged exemplar = %+v, want newest (trace newer)", got.Exemplars[1])
	}
	if got.Count != 2 {
		t.Errorf("merged count = %d, want 2", got.Count)
	}
}

func TestWriteOpenMetricsExemplarsAndEOF(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", Labels{"kind": "x"}).Add(4)
	r.Gauge("depth", nil).Set(2.5)
	h := r.Histogram("req_seconds", nil, []float64{0.1, 1})
	h.ObserveExemplar(0.5, "abc123")

	var om bytes.Buffer
	if err := WriteOpenMetrics(&om, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics output missing # EOF trailer:\n%s", out)
	}
	// Counter TYPE line drops the _total sample suffix.
	if !strings.Contains(out, "# TYPE ops counter\n") {
		t.Errorf("counter family not stripped of _total:\n%s", out)
	}
	if !strings.Contains(out, `ops_total{kind="x"} 4`) {
		t.Errorf("counter sample missing:\n%s", out)
	}
	// The 0.5 sample lands in the le="1" bucket and carries its exemplar.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `req_seconds_bucket{le="1"}`) {
			found = true
			if !strings.Contains(line, `# {trace_id="abc123"} 0.5 `) {
				t.Errorf("bucket line missing exemplar: %s", line)
			}
		}
	}
	if !found {
		t.Fatalf("le=1 bucket line missing:\n%s", out)
	}

	// The plain Prometheus rendering of the same snapshot must stay
	// exemplar-free and EOF-free: exemplar syntax is OpenMetrics-only.
	var prom bytes.Buffer
	if err := WritePrometheus(&prom, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if s := prom.String(); strings.Contains(s, "trace_id") || strings.Contains(s, "# EOF") {
		t.Errorf("Prometheus output leaked OpenMetrics syntax:\n%s", s)
	}
	if !strings.Contains(prom.String(), "# TYPE ops_total counter\n") {
		t.Errorf("Prometheus counter TYPE must keep _total:\n%s", prom.String())
	}
}

// TestMergeDeltaUnderChurn is the satellite concurrency contract:
// per-request registries merging into a process registry while
// scrape-style Snapshot/Delta readers and exposition writers run —
// totals must reconcile exactly once the writers stop.
func TestMergeDeltaUnderChurn(t *testing.T) {
	global := NewRegistry()
	const writers, rounds, perRound = 8, 50, 3

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrape loop: snapshot, delta against the previous scrape, render.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := MetricsSnapshot{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := global.Snapshot()
			d := cur.Delta(prev)
			for k, v := range d.Counters {
				if v < 0 {
					t.Errorf("negative counter delta %s=%d", k, v)
				}
			}
			var buf bytes.Buffer
			if err := WriteOpenMetrics(&buf, cur); err != nil {
				t.Errorf("exposition during churn: %v", err)
			}
			prev = cur
		}
	}()

	var writerWG sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		writerWG.Add(1)
		go func(wtr int) {
			defer writerWG.Done()
			for i := 0; i < rounds; i++ {
				// One per-request registry per round, like serve's run().
				req := NewRegistry()
				req.Counter("churn_ops_total", nil).Add(perRound)
				req.Gauge("churn_last", nil).Set(float64(i))
				h := req.Histogram("churn_seconds", nil, []float64{0.001, 0.1})
				h.ObserveExemplar(0.01, fmt.Sprintf("w%d-%d", wtr, i))
				global.Merge(req.Snapshot())
			}
		}(wtr)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	final := global.Snapshot()
	if got := final.Counter("churn_ops_total", nil); got != writers*rounds*perRound {
		t.Errorf("counter = %d, want %d", got, writers*rounds*perRound)
	}
	hs := final.Histograms[SeriesKey("churn_seconds", nil)]
	if hs.Count != writers*rounds {
		t.Errorf("histogram count = %d, want %d", hs.Count, writers*rounds)
	}
	if len(hs.Exemplars) == 0 || hs.Exemplars[1] == nil {
		t.Error("merged histogram lost its exemplars")
	}
}
