package obs

import (
	"fmt"
	"testing"
	"time"
)

func rec(id string, dur time.Duration, err string, warnings int) RecordedTrace {
	return RecordedTrace{
		ID: id, Name: "test", Start: time.Unix(0, 0),
		Duration: dur, Err: err, Warnings: warnings,
	}
}

func TestRecorderClassification(t *testing.T) {
	r := NewRecorder(RecorderOptions{})
	if got := r.Offer(rec("e1", time.Millisecond, "boom", 0)); got != ReasonError {
		t.Errorf("errored trace retained as %q, want error", got)
	}
	if got := r.Offer(rec("d1", time.Millisecond, "", 2)); got != ReasonDegraded {
		t.Errorf("degraded trace retained as %q, want degraded", got)
	}
	// Errors outrank degradations.
	if got := r.Offer(rec("ed", time.Millisecond, "boom", 2)); got != ReasonError {
		t.Errorf("errored+degraded trace retained as %q, want error", got)
	}
	if got := r.Offer(rec("r1", time.Millisecond, "", 0)); got != ReasonRecent {
		t.Errorf("healthy trace retained as %q, want recent (window not armed)", got)
	}
	for _, id := range []string{"e1", "d1", "ed", "r1"} {
		if _, ok := r.Get(id); !ok {
			t.Errorf("trace %s not retrievable", id)
		}
	}
}

// TestRecorderTailSamplingKeepsSlowest feeds a uniform load with one
// outlier: the outlier must land in the slow ring once the duration
// window is armed.
func TestRecorderTailSamplingKeepsSlowest(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 8, SlowQuantile: 0.9})
	for i := 0; i < 100; i++ {
		r.Offer(rec(fmt.Sprintf("n%d", i), 10*time.Millisecond, "", 0))
	}
	if got := r.Offer(rec("slow", time.Second, "", 0)); got != ReasonSlow {
		t.Fatalf("outlier retained as %q, want slow", got)
	}
	// A flood of routine traffic must not evict it.
	for i := 0; i < 100; i++ {
		r.Offer(rec(fmt.Sprintf("m%d", i), 10*time.Millisecond, "", 0))
	}
	got, ok := r.Get("slow")
	if !ok {
		t.Fatal("slow outlier evicted by routine churn")
	}
	if got.Reason != ReasonSlow {
		t.Errorf("reason = %q, want slow", got.Reason)
	}
	if st := r.Stats(); st.SlowThresholdSeconds <= 0 {
		t.Errorf("slow threshold not armed: %+v", st)
	}
}

func TestRecorderRingBounded(t *testing.T) {
	const cap = 4
	r := NewRecorder(RecorderOptions{Capacity: cap})
	for i := 0; i < 20; i++ {
		r.Offer(rec(fmt.Sprintf("e%d", i), time.Millisecond, "boom", 0))
	}
	st := r.Stats()
	if st.Live != cap {
		t.Errorf("live = %d, want %d", st.Live, cap)
	}
	if st.Evicted != 20-cap {
		t.Errorf("evicted = %d, want %d", st.Evicted, 20-cap)
	}
	// Oldest gone, newest retrievable.
	if _, ok := r.Get("e0"); ok {
		t.Error("oldest entry survived past capacity")
	}
	if _, ok := r.Get("e19"); !ok {
		t.Error("newest entry missing")
	}
}

func TestRecorderListNewestFirst(t *testing.T) {
	r := NewRecorder(RecorderOptions{})
	base := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		tr := rec(fmt.Sprintf("t%d", i), time.Millisecond, "", 0)
		tr.Start = base.Add(time.Duration(i) * time.Second)
		r.Offer(tr)
	}
	list := r.List()
	if len(list) != 5 {
		t.Fatalf("list has %d entries, want 5", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].Start.After(list[i-1].Start) {
			t.Errorf("list not newest-first at %d: %v after %v", i, list[i].Start, list[i-1].Start)
		}
	}
	if list[0].ID != "t4" {
		t.Errorf("newest = %s, want t4", list[0].ID)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 16})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				err := ""
				if i%7 == 0 {
					err = "boom"
				}
				r.Offer(rec(fmt.Sprintf("g%d-%d", g, i), time.Duration(i)*time.Microsecond, err, i%5))
				r.List()
				r.Stats()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if st := r.Stats(); st.Offered != 800 {
		t.Errorf("offered = %d, want 800", st.Offered)
	}
}
