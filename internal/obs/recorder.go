// Flight recorder: a bounded in-memory buffer of recently completed
// traces with a tail-sampling policy. Head sampling (decide at start)
// cannot know which runs will turn out interesting; the recorder
// decides at completion, when the error, the degradation warnings, and
// the latency are known — so the errored run, the degraded run, and
// the slowest-percentile run survive even when thousands of healthy
// requests churn through, while the steady state costs one ring slot
// per trace.
//
// Each retention class (error, degraded, slow, recent) has its own
// FIFO ring, so a burst of routine traffic can only ever evict other
// routine traces — the interesting 1% is never displaced by load.
package obs

import (
	"sort"
	"sync"
	"time"
)

// RetainReason classifies why the recorder kept a trace.
type RetainReason string

const (
	// ReasonError marks traces whose run failed.
	ReasonError RetainReason = "error"
	// ReasonDegraded marks traces whose run succeeded with degradation
	// warnings (solver fallbacks, abandoned promotions).
	ReasonDegraded RetainReason = "degraded"
	// ReasonSlow marks traces in the slowest percentile of the
	// recorder's recent-duration window.
	ReasonSlow RetainReason = "slow"
	// ReasonRecent marks ordinary traces, kept only until the recent
	// ring cycles past them.
	ReasonRecent RetainReason = "recent"
)

// retainReasons orders the classes for stable stats and listings.
var retainReasons = []RetainReason{ReasonError, ReasonDegraded, ReasonSlow, ReasonRecent}

// RecordedTrace is one completed trace as the recorder stores it.
type RecordedTrace struct {
	// ID is the trace's 32-hex identifier; Tag is its correlation
	// label (the serve daemon's request ID).
	ID, Tag string
	// Name labels the root operation (e.g. "serve.generate").
	Name     string
	Start    time.Time
	Duration time.Duration
	// Err is the run's failure ("" on success); Warnings counts its
	// graceful degradations.
	Err      string
	Warnings int
	// Reason is filled by Offer.
	Reason RetainReason
	// Spans is the full span tree, completion order.
	Spans []SpanRecord
}

// RecorderOptions tunes a Recorder; the zero value selects defaults.
type RecorderOptions struct {
	// Capacity bounds each retention class's ring (default 32): the
	// recorder holds at most 4×Capacity traces.
	Capacity int
	// SlowQuantile is the duration quantile above which a healthy
	// trace is retained as slow (default 0.99).
	SlowQuantile float64
	// Window is how many recent durations feed the slow threshold
	// (default 512).
	Window int
}

func (o RecorderOptions) withDefaults() RecorderOptions {
	if o.Capacity <= 0 {
		o.Capacity = 32
	}
	if o.SlowQuantile <= 0 || o.SlowQuantile >= 1 {
		o.SlowQuantile = 0.99
	}
	if o.Window <= 0 {
		o.Window = 512
	}
	return o
}

// minSlowSamples is how many durations the window needs before the
// slow classifier arms; below it every healthy trace is just recent.
const minSlowSamples = 16

// slowRecomputeEvery caps how often the threshold is re-sorted: once
// per this many offers, amortizing the O(W log W) sort.
const slowRecomputeEvery = 16

// Recorder is the flight recorder. All methods are safe for
// concurrent use.
type Recorder struct {
	opts RecorderOptions

	mu       sync.Mutex
	rings    map[RetainReason][]*RecordedTrace // FIFO per class
	index    map[string]*RecordedTrace         // id → entry
	window   []float64                         // circular duration window, seconds
	winPos   int
	winLen   int
	offered  int64
	retained map[RetainReason]int64
	evicted  int64
	slowSec  float64 // cached slow threshold, seconds
}

// NewRecorder returns an empty flight recorder.
func NewRecorder(opts RecorderOptions) *Recorder {
	opts = opts.withDefaults()
	return &Recorder{
		opts:     opts,
		rings:    map[RetainReason][]*RecordedTrace{},
		index:    map[string]*RecordedTrace{},
		window:   make([]float64, opts.Window),
		retained: map[RetainReason]int64{},
	}
}

// Offer classifies and retains one completed trace, returning the
// retention reason. Every offered trace is kept at least in the recent
// ring; errored, degraded, and slowest-percentile traces go to their
// own rings where routine churn cannot evict them.
func (r *Recorder) Offer(t RecordedTrace) RetainReason {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.offered++

	sec := t.Duration.Seconds()
	switch {
	case t.Err != "":
		t.Reason = ReasonError
	case t.Warnings > 0:
		t.Reason = ReasonDegraded
	// Strictly above the bar: with a uniform window the quantile
	// equals the common duration, and >= would tag every routine
	// trace as slow.
	case r.winLen >= minSlowSamples && sec > r.slowThresholdLocked():
		t.Reason = ReasonSlow
	default:
		t.Reason = ReasonRecent
	}

	// The window tracks every offer (including errored runs: a failure
	// storm should raise the bar, not freeze it).
	r.window[r.winPos] = sec
	r.winPos = (r.winPos + 1) % len(r.window)
	if r.winLen < len(r.window) {
		r.winLen++
	}
	if r.offered%slowRecomputeEvery == 0 || r.winLen <= minSlowSamples {
		r.slowSec = r.computeThresholdLocked()
	}

	ring := r.rings[t.Reason]
	if len(ring) >= r.opts.Capacity {
		old := ring[0]
		ring = ring[1:]
		delete(r.index, old.ID)
		r.evicted++
	}
	entry := &t
	r.rings[t.Reason] = append(ring, entry)
	r.index[t.ID] = entry
	r.retained[t.Reason]++
	return t.Reason
}

// slowThresholdLocked returns the cached threshold, computing it on
// first use.
func (r *Recorder) slowThresholdLocked() float64 {
	if r.slowSec == 0 {
		r.slowSec = r.computeThresholdLocked()
	}
	return r.slowSec
}

// computeThresholdLocked sorts the live window and takes the
// configured quantile.
func (r *Recorder) computeThresholdLocked() float64 {
	if r.winLen == 0 {
		return 0
	}
	tmp := make([]float64, r.winLen)
	copy(tmp, r.window[:r.winLen])
	sort.Float64s(tmp)
	i := int(float64(r.winLen) * r.opts.SlowQuantile)
	if i >= r.winLen {
		i = r.winLen - 1
	}
	return tmp[i]
}

// TraceSummary is one index row of the recorder's contents.
type TraceSummary struct {
	ID       string        `json:"trace_id"`
	Tag      string        `json:"tag,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"-"`
	// DurationSeconds duplicates Duration for JSON consumers.
	DurationSeconds float64      `json:"duration_seconds"`
	Err             string       `json:"error,omitempty"`
	Warnings        int          `json:"warnings,omitempty"`
	Reason          RetainReason `json:"reason"`
	Spans           int          `json:"spans"`
}

// List returns summaries of every retained trace, newest start first.
func (r *Recorder) List() []TraceSummary {
	r.mu.Lock()
	out := make([]TraceSummary, 0, len(r.index))
	for _, reason := range retainReasons {
		for _, t := range r.rings[reason] {
			out = append(out, TraceSummary{
				ID: t.ID, Tag: t.Tag, Name: t.Name,
				Start: t.Start, Duration: t.Duration,
				DurationSeconds: t.Duration.Seconds(),
				Err:             t.Err, Warnings: t.Warnings,
				Reason: t.Reason, Spans: len(t.Spans),
			})
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Get returns the full retained trace by ID.
func (r *Recorder) Get(id string) (RecordedTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.index[id]
	if !ok {
		return RecordedTrace{}, false
	}
	return *t, true
}

// RecorderStats is the recorder's lifetime accounting.
type RecorderStats struct {
	// Offered counts traces seen; Evicted counts traces cycled out of
	// their rings; Retained counts per-class admissions.
	Offered, Evicted int64
	Retained         map[RetainReason]int64
	// Live is the number of traces currently held.
	Live int
	// SlowThresholdSeconds is the current slowest-percentile bar.
	SlowThresholdSeconds float64
}

// Stats returns the recorder's counters.
func (r *Recorder) Stats() RecorderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	ret := make(map[RetainReason]int64, len(r.retained))
	for k, v := range r.retained {
		ret[k] = v
	}
	return RecorderStats{
		Offered: r.offered, Evicted: r.evicted, Retained: ret,
		Live: len(r.index), SlowThresholdSeconds: r.slowSec,
	}
}
