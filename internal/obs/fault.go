package obs

import (
	"sync"
	"time"
)

// FaultEvent records one armed internal/fault injection firing. Fault
// injection is test-only, so events go to a process-global bounded
// buffer (no context flows into fault.Check) that tests read back to
// assert the fault both fired and was attributed to the right stage.
type FaultEvent struct {
	Stage string
	Time  time.Time
}

// maxFaultEvents bounds the global event buffer; older events are
// dropped first. Any single test arms at most a handful of faults.
const maxFaultEvents = 256

var (
	faultMu     sync.Mutex
	faultEvents []FaultEvent
)

// RecordFault logs a fired fault-injection point. Called by
// internal/fault when an armed fault triggers.
func RecordFault(stage string) {
	faultMu.Lock()
	defer faultMu.Unlock()
	if len(faultEvents) >= maxFaultEvents {
		faultEvents = faultEvents[1:]
	}
	faultEvents = append(faultEvents, FaultEvent{Stage: stage, Time: time.Now()})
}

// FaultEvents returns the recorded fault firings, oldest first.
func FaultEvents() []FaultEvent {
	faultMu.Lock()
	defer faultMu.Unlock()
	return append([]FaultEvent(nil), faultEvents...)
}

// ResetFaultEvents clears the buffer; tests pair it with fault.Reset.
func ResetFaultEvents() {
	faultMu.Lock()
	defer faultMu.Unlock()
	faultEvents = nil
}
