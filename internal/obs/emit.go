package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// spanEvent is the JSONL wire form of one span. Field order is fixed by
// the struct, so output is deterministic given deterministic spans.
type spanEvent struct {
	ID           uint64            `json:"id"`
	Parent       uint64            `json:"parent,omitempty"`
	Name         string            `json:"name"`
	Start        string            `json:"start"`
	DurNS        int64             `json:"dur_ns"`
	Err          string            `json:"err,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	AllocBytes   uint64            `json:"alloc_bytes,omitempty"`
	AllocObjects uint64            `json:"alloc_objects,omitempty"`
}

// WriteJSONL emits one JSON object per span, one per line, in the
// given order (Trace.Spans yields completion order).
func WriteJSONL(w io.Writer, spans []SpanRecord) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		ev := spanEvent{
			ID: s.ID, Parent: s.ParentID, Name: s.Name,
			Start: s.Start.UTC().Format(time.RFC3339Nano),
			DurNS: s.Duration.Nanoseconds(),
			Err:   s.Err, Attrs: s.Attrs,
			AllocBytes: s.AllocBytes, AllocObjects: s.AllocObjects,
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format, series sorted by name for stable output.
func WritePrometheus(w io.Writer, m MetricsSnapshot) error {
	return writeExposition(w, m, false)
}

// WriteOpenMetrics renders a metrics snapshot in the OpenMetrics text
// format: the same series as WritePrometheus plus bucket exemplars
// (`# {trace_id="..."} value timestamp` suffixes linking latency
// buckets to retained traces), counter TYPE metadata with the _total
// suffix stripped per the spec, and the mandatory `# EOF` trailer.
// Serve it under Content-Type application/openmetrics-text; Prometheus
// requests it via Accept when exemplar ingestion is on.
func WriteOpenMetrics(w io.Writer, m MetricsSnapshot) error {
	if err := writeExposition(w, m, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func writeExposition(w io.Writer, m MetricsSnapshot, openMetrics bool) error {
	typed := map[string]string{}
	keys := make([]string, 0, len(m.Counters)+len(m.Gauges)+len(m.Histograms))
	for k := range m.Counters {
		typed[baseName(k)] = "counter"
		keys = append(keys, k)
	}
	for k := range m.Gauges {
		typed[baseName(k)] = "gauge"
		keys = append(keys, k)
	}
	for k := range m.Histograms {
		typed[baseName(k)] = "histogram"
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seenType := map[string]bool{}
	for _, k := range keys {
		base := baseName(k)
		if !seenType[base] {
			seenType[base] = true
			meta := base
			if openMetrics && typed[base] == "counter" {
				// OpenMetrics names the metric family without the
				// _total sample suffix.
				meta = strings.TrimSuffix(base, "_total")
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", meta, typed[base]); err != nil {
				return err
			}
		}
		var err error
		switch {
		case typed[base] == "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", k, m.Counters[k])
		case typed[base] == "gauge":
			_, err = fmt.Fprintf(w, "%s %s\n", k, formatFloat(m.Gauges[k]))
		default:
			err = writePromHistogram(w, k, m.Histograms[k], openMetrics)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits the cumulative _bucket/_sum/_count series of
// one histogram, splicing the le label into any existing label set. In
// OpenMetrics mode, buckets holding an exemplar get it appended.
func writePromHistogram(w io.Writer, key string, h HistogramSnapshot, openMetrics bool) error {
	base, labels := baseName(key), ""
	if i := strings.IndexByte(key, '{'); i >= 0 {
		labels = key[i+1 : len(key)-1]
	}
	bucket := func(i int, le string, n uint64) error {
		ls := `le="` + le + `"`
		if labels != "" {
			ls = labels + "," + ls
		}
		ex := ""
		if openMetrics && i < len(h.Exemplars) && h.Exemplars[i] != nil {
			e := h.Exemplars[i]
			ex = fmt.Sprintf(" # {trace_id=\"%s\"} %s %s",
				labelEscaper.Replace(e.TraceID), formatFloat(e.Value),
				formatFloat(float64(e.Time.UnixNano())/1e9))
		}
		_, err := fmt.Fprintf(w, "%s_bucket{%s} %d%s\n", base, ls, n, ex)
		return err
	}
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if err := bucket(i, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	if err := bucket(len(h.Bounds), "+Inf", cum); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count)
	return err
}

// formatFloat renders v the way Prometheus clients do: shortest exact
// decimal form.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTree renders the spans as an indented stage-time tree: each
// span's wall time and its share of the root span it belongs to.
// Errored spans are marked. Sibling order is span-start order.
func WriteTree(w io.Writer, spans []SpanRecord) error {
	children := map[uint64][]SpanRecord{}
	var roots []SpanRecord
	for _, s := range spans {
		if s.ParentID == 0 {
			roots = append(roots, s)
		} else {
			children[s.ParentID] = append(children[s.ParentID], s)
		}
	}
	byStart := func(list []SpanRecord) {
		sort.Slice(list, func(i, j int) bool {
			if !list[i].Start.Equal(list[j].Start) {
				return list[i].Start.Before(list[j].Start)
			}
			return list[i].ID < list[j].ID
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}
	var emit func(s SpanRecord, depth int, total time.Duration) error
	emit = func(s SpanRecord, depth int, total time.Duration) error {
		pct := 100.0
		if total > 0 {
			pct = 100 * float64(s.Duration) / float64(total)
		}
		mark := ""
		if s.Err != "" {
			mark = "  ERROR: " + firstLine(s.Err, 80)
		}
		label := strings.Repeat("  ", depth) + s.Name
		if _, err := fmt.Fprintf(w, "%-42s %12s %6.1f%%%s\n", label, s.Duration.Round(time.Microsecond), pct, mark); err != nil {
			return err
		}
		for _, c := range children[s.ID] {
			if err := emit(c, depth+1, total); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := emit(r, 0, r.Duration); err != nil {
			return err
		}
	}
	return nil
}

// firstLine truncates s to its first line and at most max bytes.
func firstLine(s string, max int) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > max {
		s = s[:max] + "..."
	}
	return s
}
