package obs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a now func that starts at a fixed instant and
// advances 1ms per call, making span timings deterministic.
func fakeClock() func() time.Time {
	base := time.Date(2025, 1, 2, 3, 4, 5, 0, time.UTC)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

func TestDisabledSpanIsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("no trace is live, Enabled() = true")
	}
	ctx, span := StartSpan(context.Background(), "x")
	if span != nil {
		t.Fatalf("StartSpan without a live trace returned %v, want nil", span)
	}
	if CurrentSpan(ctx) != nil {
		t.Fatal("nil span leaked into the context")
	}
	// All methods must be no-ops on the nil span.
	span.SetAttr("k", "v")
	span.Fail(errors.New("boom"))
	span.End()
	// Metric helpers must be no-ops without a live trace.
	Count(ctx, "ccdac_test_total", 1)
	SetGauge(ctx, "ccdac_test_um", 1)
	Observe(ctx, "ccdac_test_seconds", 1)
}

func TestNestedSpanParenting(t *testing.T) {
	tr := New(Options{})
	defer tr.Finish()
	ctx := WithTrace(context.Background(), tr)

	octx, outer := StartSpan(ctx, "outer")
	if outer == nil {
		t.Fatal("StartSpan under a live trace returned nil")
	}
	if CurrentSpan(octx) != outer {
		t.Fatal("outer span not carried by its context")
	}
	ictx, inner := StartSpan(octx, "inner")
	_, leaf := StartSpan(ictx, "leaf")
	leaf.End()
	inner.Fail(errors.New("inner broke"))
	inner.End()
	outer.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if got := byName["outer"].ParentID; got != 0 {
		t.Errorf("outer.ParentID = %d, want 0 (root)", got)
	}
	if got, want := byName["inner"].ParentID, byName["outer"].ID; got != want {
		t.Errorf("inner.ParentID = %d, want %d", got, want)
	}
	if got, want := byName["leaf"].ParentID, byName["inner"].ID; got != want {
		t.Errorf("leaf.ParentID = %d, want %d", got, want)
	}
	if byName["inner"].Err != "inner broke" {
		t.Errorf("inner.Err = %q, want %q", byName["inner"].Err, "inner broke")
	}
	if byName["outer"].Err != "" || byName["leaf"].Err != "" {
		t.Error("error leaked onto spans that did not Fail")
	}
	// Completion order: leaf, inner, outer.
	if spans[0].Name != "leaf" || spans[2].Name != "outer" {
		t.Errorf("completion order = %s,%s,%s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
}

func TestSpanEndAfterFinishDropped(t *testing.T) {
	tr := New(Options{})
	ctx := WithTrace(context.Background(), tr)
	_, a := StartSpan(ctx, "a")
	_, b := StartSpan(ctx, "b")
	a.End()
	tr.Finish()
	b.End() // too late: must not be recorded
	b.End() // and End must stay idempotent
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("got %d spans after Finish, want 1", got)
	}
	if Enabled() {
		t.Fatal("trace finished but Enabled() = true")
	}
	tr.Finish() // idempotent: must not drive the live count negative
	if Enabled() {
		t.Fatal("double Finish corrupted the live-trace count")
	}
}

func TestConcurrentSpansAndMetrics(t *testing.T) {
	const goroutines, perG = 8, 100
	tr := New(Options{})
	defer tr.Finish()
	ctx := WithTrace(context.Background(), tr)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sctx, span := StartSpan(ctx, "worker")
				span.SetAttr("g", fmt.Sprint(g))
				_, child := StartSpan(sctx, "worker.step")
				CountL(sctx, "ccdac_test_steps_total", Labels{"g": fmt.Sprint(g % 2)}, 1)
				Observe(sctx, "ccdac_test_size", float64(i))
				child.End()
				span.End()
			}
		}(g)
	}
	wg.Wait()

	if got := len(tr.Spans()); got != 2*goroutines*perG {
		t.Fatalf("got %d spans, want %d", got, 2*goroutines*perG)
	}
	snap := tr.Registry().Snapshot()
	total := snap.Counter("ccdac_test_steps_total", Labels{"g": "0"}) +
		snap.Counter("ccdac_test_steps_total", Labels{"g": "1"})
	if total != goroutines*perG {
		t.Fatalf("counter total = %d, want %d", total, goroutines*perG)
	}
	h := snap.Histograms["ccdac_test_size"]
	if h.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
}

func TestTraceIsolation(t *testing.T) {
	// Two live traces: metrics recorded under one context must not
	// bleed into the other trace's registry.
	t1, t2 := New(Options{}), New(Options{})
	defer t1.Finish()
	defer t2.Finish()
	ctx1 := WithTrace(context.Background(), t1)
	ctx2 := WithTrace(context.Background(), t2)
	Count(ctx1, "ccdac_test_total", 3)
	Count(ctx2, "ccdac_test_total", 5)
	if got := t1.Registry().Snapshot().Counter("ccdac_test_total", nil); got != 3 {
		t.Errorf("trace 1 counter = %d, want 3", got)
	}
	if got := t2.Registry().Snapshot().Counter("ccdac_test_total", nil); got != 5 {
		t.Errorf("trace 2 counter = %d, want 5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ccdac_test_size", nil, []float64{1, 4})
	// A sample exactly on a bound belongs to that bound's bucket
	// (le semantics); above the last bound goes to +Inf.
	for _, v := range []float64{0.5, 1, 4, 4.0001} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1} // le=1: {0.5, 1}; le=4: {4}; +Inf: {4.0001}
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(want))
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, s.Counts[i], want[i])
		}
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if s.Sum != 0.5+1+4+4.0001 {
		t.Errorf("sum = %g", s.Sum)
	}
}

func TestDefaultBucketSelection(t *testing.T) {
	if got := defaultBuckets("ccdac_core_stage_seconds"); &got[0] != &DefaultDurationBuckets[0] {
		t.Error("_seconds metric did not select the duration buckets")
	}
	if got := defaultBuckets("ccdac_extract_nodes_total"); &got[0] != &DefaultSizeBuckets[0] {
		t.Error("non-_seconds metric did not select the size buckets")
	}
}

func TestGoldenJSONL(t *testing.T) {
	tr := New(Options{})
	tr.now = fakeClock()
	ctx := WithTrace(context.Background(), tr)

	octx, outer := StartSpan(ctx, "generate") // start +0ms
	_, inner := StartSpan(octx, "routing")    // start +1ms
	inner.SetAttr("iter", "1")
	inner.Fail(errors.New("boom"))
	inner.End() // +2ms -> dur 1ms
	outer.End() // +3ms -> dur 3ms
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	want := `{"id":2,"parent":1,"name":"routing","start":"2025-01-02T03:04:05.001Z","dur_ns":1000000,"err":"boom","attrs":{"iter":"1"}}
{"id":1,"name":"generate","start":"2025-01-02T03:04:05Z","dur_ns":3000000}
`
	if got := buf.String(); got != want {
		t.Errorf("JSONL mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestGoldenPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ccdac_test_total", nil).Add(3)
	r.Counter("ccdac_test_labeled_total", Labels{"stage": "routing"}).Add(2)
	r.Gauge("ccdac_test_um", nil).Set(1.5)
	h := r.Histogram("ccdac_test_seconds", Labels{"stage": "routing"}, []float64{0.5, 1})
	for _, v := range []float64{0.25, 1, 5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE ccdac_test_labeled_total counter
ccdac_test_labeled_total{stage="routing"} 2
# TYPE ccdac_test_seconds histogram
ccdac_test_seconds_bucket{stage="routing",le="0.5"} 1
ccdac_test_seconds_bucket{stage="routing",le="1"} 2
ccdac_test_seconds_bucket{stage="routing",le="+Inf"} 3
ccdac_test_seconds_sum{stage="routing"} 6.25
ccdac_test_seconds_count{stage="routing"} 3
# TYPE ccdac_test_total counter
ccdac_test_total 3
# TYPE ccdac_test_um gauge
ccdac_test_um 1.5
`
	if got := buf.String(); got != want {
		t.Errorf("Prometheus text mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestGoldenPrometheusLabelEscaping(t *testing.T) {
	// Backslash, double quote, and newline are the three characters the
	// exposition format escapes in label values; tabs and UTF-8 pass
	// through raw. Go %q-style escaping (\t, é) is unparsable.
	r := NewRegistry()
	r.Counter("ccdac_test_total", Labels{"path": `a\b"c` + "\nd"}).Add(1)
	r.Gauge("ccdac_test_um", Labels{"note": "tab\tand é stay raw"}).Set(2)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE ccdac_test_total counter
ccdac_test_total{path="a\\b\"c\nd"} 1
# TYPE ccdac_test_um gauge
ccdac_test_um{note="tab	and é stay raw"} 2
`
	if got := buf.String(); got != want {
		t.Errorf("Prometheus text mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The escaped form is also the snapshot key, so lookups through the
	// same Labels map still resolve the series.
	if got := r.Snapshot().Counter("ccdac_test_total", Labels{"path": `a\b"c` + "\nd"}); got != 1 {
		t.Errorf("escaped-label counter lookup = %d, want 1", got)
	}
}

func TestRegistryMerge(t *testing.T) {
	src := NewRegistry()
	src.Counter("ccdac_test_total", nil).Add(3)
	src.Counter("ccdac_test_labeled_total", Labels{"stage": "routing"}).Add(2)
	src.Gauge("ccdac_test_um", nil).Set(1.5)
	h := src.Histogram("ccdac_test_seconds", nil, []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(5)
	snap := src.Snapshot()

	dst := NewRegistry()
	dst.Counter("ccdac_test_total", nil).Add(10)
	dst.Merge(snap)
	dst.Merge(snap)

	got := dst.Snapshot()
	if v := got.Counter("ccdac_test_total", nil); v != 16 {
		t.Errorf("merged counter = %d, want 16", v)
	}
	if v := got.Counter("ccdac_test_labeled_total", Labels{"stage": "routing"}); v != 4 {
		t.Errorf("merged labeled counter = %d, want 4", v)
	}
	if v := got.Gauge("ccdac_test_um", nil); v != 1.5 {
		t.Errorf("merged gauge = %g, want 1.5", v)
	}
	hs := got.Histograms["ccdac_test_seconds"]
	if hs.Count != 4 || hs.Sum != 2*(0.25+5) {
		t.Errorf("merged histogram count/sum = %d/%g, want 4/%g", hs.Count, hs.Sum, 2*(0.25+5))
	}
	wantCounts := []uint64{2, 0, 2} // le=0.5: both 0.25s; +Inf: both 5s
	for i, w := range wantCounts {
		if hs.Counts[i] != w {
			t.Errorf("merged bucket %d = %d, want %d", i, hs.Counts[i], w)
		}
	}
}

func TestRegistryMergeRebuckets(t *testing.T) {
	// Mismatched bounds: each source bucket lands at its upper bound in
	// the destination's bucketing, totals preserved.
	src := NewRegistry()
	h := src.Histogram("ccdac_test_size", nil, []float64{2, 8})
	for _, v := range []float64{1, 5, 100} { // buckets: le=2:1, le=8:1, +Inf:1
		h.Observe(v)
	}
	dst := NewRegistry()
	dst.Histogram("ccdac_test_size", nil, []float64{4}) // le=4, +Inf
	dst.Merge(src.Snapshot())

	hs := dst.Snapshot().Histograms["ccdac_test_size"]
	// le=2 bucket re-files at 2 (<=4), le=8 bucket at 8 (+Inf), overflow at +Inf.
	if hs.Counts[0] != 1 || hs.Counts[1] != 2 {
		t.Errorf("re-bucketed counts = %v, want [1 2]", hs.Counts)
	}
	if hs.Count != 3 || hs.Sum != 106 {
		t.Errorf("re-bucketed count/sum = %d/%g, want 3/106", hs.Count, hs.Sum)
	}
}

func TestRegistryMergeConcurrent(t *testing.T) {
	// Concurrent merges of per-"request" snapshots must not drop
	// counts — the invariant the serve daemon's global registry relies
	// on (and the race detector checks the locking).
	const goroutines, perG = 8, 50
	global := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r := NewRegistry()
				r.Counter("ccdac_test_runs_total", nil).Inc()
				r.Histogram("ccdac_test_seconds", nil, DefaultDurationBuckets).Observe(0.01)
				global.Merge(r.Snapshot())
			}
		}()
	}
	wg.Wait()
	snap := global.Snapshot()
	if got := snap.Counter("ccdac_test_runs_total", nil); got != goroutines*perG {
		t.Errorf("merged counter = %d, want %d (dropped merges)", got, goroutines*perG)
	}
	if got := snap.Histograms["ccdac_test_seconds"].Count; got != goroutines*perG {
		t.Errorf("merged histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("ccdac_test_total", nil).Add(3)
	r.Gauge("ccdac_test_um", nil).Set(1)
	h := r.Histogram("ccdac_test_size", nil, []float64{10})
	h.Observe(5)
	prev := r.Snapshot()

	r.Counter("ccdac_test_total", nil).Add(2)
	r.Counter("ccdac_test_new_total", nil).Add(7)
	r.Gauge("ccdac_test_um", nil).Set(9)
	h.Observe(50)
	d := r.Snapshot().Delta(prev)

	if d.Counters["ccdac_test_total"] != 2 {
		t.Errorf("counter delta = %d, want 2", d.Counters["ccdac_test_total"])
	}
	if d.Counters["ccdac_test_new_total"] != 7 {
		t.Errorf("new-series delta = %d, want 7", d.Counters["ccdac_test_new_total"])
	}
	if d.Gauges["ccdac_test_um"] != 9 {
		t.Errorf("gauge delta keeps current value, got %g", d.Gauges["ccdac_test_um"])
	}
	hd := d.Histograms["ccdac_test_size"]
	if hd.Count != 1 || hd.Sum != 50 || hd.Counts[0] != 0 || hd.Counts[1] != 1 {
		t.Errorf("histogram delta = %+v, want one +Inf sample of 50", hd)
	}
	// Merging the delta on top of prev reproduces the current totals.
	agg := NewRegistry()
	agg.Merge(prev)
	agg.Merge(d)
	if got := agg.Snapshot().Counter("ccdac_test_total", nil); got != 5 {
		t.Errorf("prev+delta counter = %d, want 5", got)
	}
}

func TestWriteTree(t *testing.T) {
	tr := New(Options{})
	tr.now = fakeClock()
	ctx := WithTrace(context.Background(), tr)

	gctx, root := StartSpan(ctx, "generate") // +0
	_, p := StartSpan(gctx, "placement")     // +1
	p.End()                                  // +2 -> 1ms
	rctx, rt := StartSpan(gctx, "routing")   // +3
	_, w := StartSpan(rctx, "route.wires")   // +4
	w.Fail(errors.New("blocked track\nsecond line ignored"))
	w.End()    // +5 -> 1ms
	rt.End()   // +6 -> 3ms
	root.End() // +7 -> 7ms
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteTree(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	fmt.Fprintf(&want, "%-42s %12s %6.1f%%\n", "generate", "7ms", 100.0)
	fmt.Fprintf(&want, "%-42s %12s %6.1f%%\n", "  placement", "1ms", 100.0/7)
	fmt.Fprintf(&want, "%-42s %12s %6.1f%%\n", "  routing", "3ms", 300.0/7)
	fmt.Fprintf(&want, "%-42s %12s %6.1f%%%s\n", "    route.wires", "1ms", 100.0/7,
		"  ERROR: blocked track")
	if got := buf.String(); got != want.String() {
		t.Errorf("tree mismatch:\ngot:\n%s\nwant:\n%s", got, want.String())
	}
}

func TestMemStatsDeltas(t *testing.T) {
	tr := New(Options{MemStats: true})
	defer tr.Finish()
	ctx := WithTrace(context.Background(), tr)
	_, span := StartSpan(ctx, "alloc")
	sink = make([]byte, 1<<20)
	span.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].AllocBytes < 1<<20 {
		t.Errorf("AllocBytes = %d, want >= %d", spans[0].AllocBytes, 1<<20)
	}
	if spans[0].AllocObjects == 0 {
		t.Error("AllocObjects = 0, want > 0")
	}
}

// sink defeats allocation elision in TestMemStatsDeltas.
var sink []byte

func TestFaultEventBuffer(t *testing.T) {
	ResetFaultEvents()
	defer ResetFaultEvents()
	RecordFault("extraction")
	RecordFault("linalg.cg")
	evs := FaultEvents()
	if len(evs) != 2 || evs[0].Stage != "extraction" || evs[1].Stage != "linalg.cg" {
		t.Fatalf("events = %+v", evs)
	}
	// The buffer is bounded: flooding keeps the newest events.
	for i := 0; i < maxFaultEvents+10; i++ {
		RecordFault("flood")
	}
	evs = FaultEvents()
	if len(evs) != maxFaultEvents {
		t.Fatalf("buffer grew to %d, cap is %d", len(evs), maxFaultEvents)
	}
}

// BenchmarkDisabledStartSpan measures the disarmed fast path: one
// atomic load and out. This is the cost every instrumentation site
// pays on an unobserved run.
func BenchmarkDisabledStartSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, span := StartSpan(ctx, "bench")
		span.End()
	}
}

// BenchmarkDisabledCount measures the disarmed metric helper path.
func BenchmarkDisabledCount(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(ctx, "ccdac_bench_total", 1)
	}
}

// BenchmarkEnabledSpan measures the armed span cost for overhead
// budgeting against full stage durations.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New(Options{})
	defer tr.Finish()
	ctx := WithTrace(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, span := StartSpan(ctx, "bench")
		span.End()
	}
}
