package obs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a now func that starts at a fixed instant and
// advances 1ms per call, making span timings deterministic.
func fakeClock() func() time.Time {
	base := time.Date(2025, 1, 2, 3, 4, 5, 0, time.UTC)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

func TestDisabledSpanIsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("no trace is live, Enabled() = true")
	}
	ctx, span := StartSpan(context.Background(), "x")
	if span != nil {
		t.Fatalf("StartSpan without a live trace returned %v, want nil", span)
	}
	if CurrentSpan(ctx) != nil {
		t.Fatal("nil span leaked into the context")
	}
	// All methods must be no-ops on the nil span.
	span.SetAttr("k", "v")
	span.Fail(errors.New("boom"))
	span.End()
	// Metric helpers must be no-ops without a live trace.
	Count(ctx, "ccdac_test_total", 1)
	SetGauge(ctx, "ccdac_test_um", 1)
	Observe(ctx, "ccdac_test_seconds", 1)
}

func TestNestedSpanParenting(t *testing.T) {
	tr := New(Options{})
	defer tr.Finish()
	ctx := WithTrace(context.Background(), tr)

	octx, outer := StartSpan(ctx, "outer")
	if outer == nil {
		t.Fatal("StartSpan under a live trace returned nil")
	}
	if CurrentSpan(octx) != outer {
		t.Fatal("outer span not carried by its context")
	}
	ictx, inner := StartSpan(octx, "inner")
	_, leaf := StartSpan(ictx, "leaf")
	leaf.End()
	inner.Fail(errors.New("inner broke"))
	inner.End()
	outer.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if got := byName["outer"].ParentID; got != 0 {
		t.Errorf("outer.ParentID = %d, want 0 (root)", got)
	}
	if got, want := byName["inner"].ParentID, byName["outer"].ID; got != want {
		t.Errorf("inner.ParentID = %d, want %d", got, want)
	}
	if got, want := byName["leaf"].ParentID, byName["inner"].ID; got != want {
		t.Errorf("leaf.ParentID = %d, want %d", got, want)
	}
	if byName["inner"].Err != "inner broke" {
		t.Errorf("inner.Err = %q, want %q", byName["inner"].Err, "inner broke")
	}
	if byName["outer"].Err != "" || byName["leaf"].Err != "" {
		t.Error("error leaked onto spans that did not Fail")
	}
	// Completion order: leaf, inner, outer.
	if spans[0].Name != "leaf" || spans[2].Name != "outer" {
		t.Errorf("completion order = %s,%s,%s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
}

func TestSpanEndAfterFinishDropped(t *testing.T) {
	tr := New(Options{})
	ctx := WithTrace(context.Background(), tr)
	_, a := StartSpan(ctx, "a")
	_, b := StartSpan(ctx, "b")
	a.End()
	tr.Finish()
	b.End() // too late: must not be recorded
	b.End() // and End must stay idempotent
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("got %d spans after Finish, want 1", got)
	}
	if Enabled() {
		t.Fatal("trace finished but Enabled() = true")
	}
	tr.Finish() // idempotent: must not drive the live count negative
	if Enabled() {
		t.Fatal("double Finish corrupted the live-trace count")
	}
}

func TestConcurrentSpansAndMetrics(t *testing.T) {
	const goroutines, perG = 8, 100
	tr := New(Options{})
	defer tr.Finish()
	ctx := WithTrace(context.Background(), tr)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sctx, span := StartSpan(ctx, "worker")
				span.SetAttr("g", fmt.Sprint(g))
				_, child := StartSpan(sctx, "worker.step")
				CountL(sctx, "ccdac_test_steps_total", Labels{"g": fmt.Sprint(g % 2)}, 1)
				Observe(sctx, "ccdac_test_size", float64(i))
				child.End()
				span.End()
			}
		}(g)
	}
	wg.Wait()

	if got := len(tr.Spans()); got != 2*goroutines*perG {
		t.Fatalf("got %d spans, want %d", got, 2*goroutines*perG)
	}
	snap := tr.Registry().Snapshot()
	total := snap.Counter("ccdac_test_steps_total", Labels{"g": "0"}) +
		snap.Counter("ccdac_test_steps_total", Labels{"g": "1"})
	if total != goroutines*perG {
		t.Fatalf("counter total = %d, want %d", total, goroutines*perG)
	}
	h := snap.Histograms["ccdac_test_size"]
	if h.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
}

func TestTraceIsolation(t *testing.T) {
	// Two live traces: metrics recorded under one context must not
	// bleed into the other trace's registry.
	t1, t2 := New(Options{}), New(Options{})
	defer t1.Finish()
	defer t2.Finish()
	ctx1 := WithTrace(context.Background(), t1)
	ctx2 := WithTrace(context.Background(), t2)
	Count(ctx1, "ccdac_test_total", 3)
	Count(ctx2, "ccdac_test_total", 5)
	if got := t1.Registry().Snapshot().Counter("ccdac_test_total", nil); got != 3 {
		t.Errorf("trace 1 counter = %d, want 3", got)
	}
	if got := t2.Registry().Snapshot().Counter("ccdac_test_total", nil); got != 5 {
		t.Errorf("trace 2 counter = %d, want 5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ccdac_test_size", nil, []float64{1, 4})
	// A sample exactly on a bound belongs to that bound's bucket
	// (le semantics); above the last bound goes to +Inf.
	for _, v := range []float64{0.5, 1, 4, 4.0001} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1} // le=1: {0.5, 1}; le=4: {4}; +Inf: {4.0001}
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(want))
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, s.Counts[i], want[i])
		}
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if s.Sum != 0.5+1+4+4.0001 {
		t.Errorf("sum = %g", s.Sum)
	}
}

func TestDefaultBucketSelection(t *testing.T) {
	if got := defaultBuckets("ccdac_core_stage_seconds"); &got[0] != &DefaultDurationBuckets[0] {
		t.Error("_seconds metric did not select the duration buckets")
	}
	if got := defaultBuckets("ccdac_extract_nodes_total"); &got[0] != &DefaultSizeBuckets[0] {
		t.Error("non-_seconds metric did not select the size buckets")
	}
}

func TestGoldenJSONL(t *testing.T) {
	tr := New(Options{})
	tr.now = fakeClock()
	ctx := WithTrace(context.Background(), tr)

	octx, outer := StartSpan(ctx, "generate") // start +0ms
	_, inner := StartSpan(octx, "routing")    // start +1ms
	inner.SetAttr("iter", "1")
	inner.Fail(errors.New("boom"))
	inner.End() // +2ms -> dur 1ms
	outer.End() // +3ms -> dur 3ms
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	want := `{"id":2,"parent":1,"name":"routing","start":"2025-01-02T03:04:05.001Z","dur_ns":1000000,"err":"boom","attrs":{"iter":"1"}}
{"id":1,"name":"generate","start":"2025-01-02T03:04:05Z","dur_ns":3000000}
`
	if got := buf.String(); got != want {
		t.Errorf("JSONL mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestGoldenPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ccdac_test_total", nil).Add(3)
	r.Counter("ccdac_test_labeled_total", Labels{"stage": "routing"}).Add(2)
	r.Gauge("ccdac_test_um", nil).Set(1.5)
	h := r.Histogram("ccdac_test_seconds", Labels{"stage": "routing"}, []float64{0.5, 1})
	for _, v := range []float64{0.25, 1, 5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE ccdac_test_labeled_total counter
ccdac_test_labeled_total{stage="routing"} 2
# TYPE ccdac_test_seconds histogram
ccdac_test_seconds_bucket{stage="routing",le="0.5"} 1
ccdac_test_seconds_bucket{stage="routing",le="1"} 2
ccdac_test_seconds_bucket{stage="routing",le="+Inf"} 3
ccdac_test_seconds_sum{stage="routing"} 6.25
ccdac_test_seconds_count{stage="routing"} 3
# TYPE ccdac_test_total counter
ccdac_test_total 3
# TYPE ccdac_test_um gauge
ccdac_test_um 1.5
`
	if got := buf.String(); got != want {
		t.Errorf("Prometheus text mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteTree(t *testing.T) {
	tr := New(Options{})
	tr.now = fakeClock()
	ctx := WithTrace(context.Background(), tr)

	gctx, root := StartSpan(ctx, "generate") // +0
	_, p := StartSpan(gctx, "placement")     // +1
	p.End()                                  // +2 -> 1ms
	rctx, rt := StartSpan(gctx, "routing")   // +3
	_, w := StartSpan(rctx, "route.wires")   // +4
	w.Fail(errors.New("blocked track\nsecond line ignored"))
	w.End()    // +5 -> 1ms
	rt.End()   // +6 -> 3ms
	root.End() // +7 -> 7ms
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteTree(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	fmt.Fprintf(&want, "%-42s %12s %6.1f%%\n", "generate", "7ms", 100.0)
	fmt.Fprintf(&want, "%-42s %12s %6.1f%%\n", "  placement", "1ms", 100.0/7)
	fmt.Fprintf(&want, "%-42s %12s %6.1f%%\n", "  routing", "3ms", 300.0/7)
	fmt.Fprintf(&want, "%-42s %12s %6.1f%%%s\n", "    route.wires", "1ms", 100.0/7,
		"  ERROR: blocked track")
	if got := buf.String(); got != want.String() {
		t.Errorf("tree mismatch:\ngot:\n%s\nwant:\n%s", got, want.String())
	}
}

func TestMemStatsDeltas(t *testing.T) {
	tr := New(Options{MemStats: true})
	defer tr.Finish()
	ctx := WithTrace(context.Background(), tr)
	_, span := StartSpan(ctx, "alloc")
	sink = make([]byte, 1<<20)
	span.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].AllocBytes < 1<<20 {
		t.Errorf("AllocBytes = %d, want >= %d", spans[0].AllocBytes, 1<<20)
	}
	if spans[0].AllocObjects == 0 {
		t.Error("AllocObjects = 0, want > 0")
	}
}

// sink defeats allocation elision in TestMemStatsDeltas.
var sink []byte

func TestFaultEventBuffer(t *testing.T) {
	ResetFaultEvents()
	defer ResetFaultEvents()
	RecordFault("extraction")
	RecordFault("linalg.cg")
	evs := FaultEvents()
	if len(evs) != 2 || evs[0].Stage != "extraction" || evs[1].Stage != "linalg.cg" {
		t.Fatalf("events = %+v", evs)
	}
	// The buffer is bounded: flooding keeps the newest events.
	for i := 0; i < maxFaultEvents+10; i++ {
		RecordFault("flood")
	}
	evs = FaultEvents()
	if len(evs) != maxFaultEvents {
		t.Fatalf("buffer grew to %d, cap is %d", len(evs), maxFaultEvents)
	}
}

// BenchmarkDisabledStartSpan measures the disarmed fast path: one
// atomic load and out. This is the cost every instrumentation site
// pays on an unobserved run.
func BenchmarkDisabledStartSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, span := StartSpan(ctx, "bench")
		span.End()
	}
}

// BenchmarkDisabledCount measures the disarmed metric helper path.
func BenchmarkDisabledCount(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Count(ctx, "ccdac_bench_total", 1)
	}
}

// BenchmarkEnabledSpan measures the armed span cost for overhead
// budgeting against full stage durations.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New(Options{})
	defer tr.Finish()
	ctx := WithTrace(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, span := StartSpan(ctx, "bench")
		span.End()
	}
}
