package profcap

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stub replaces the process CPU profiler with an instant fake so tests
// never hold the global profiler or pay a real window.
func stub(c *Capturer, blob []byte, startErr error) *atomic.Int32 {
	var starts atomic.Int32
	c.startCPU = func(w *bytes.Buffer) error {
		if startErr != nil {
			return startErr
		}
		starts.Add(1)
		w.Write(blob)
		return nil
	}
	c.stopCPU = func() {}
	return &starts
}

func TestCaptureSyncCollectsArtifacts(t *testing.T) {
	c := New(Options{Window: time.Millisecond, Cooldown: time.Hour})
	stub(c, []byte("cpu-profile"), nil)
	res, err := c.CaptureSync(context.Background(), "manual", "trace-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.CPU) != "cpu-profile" {
		t.Fatalf("CPU blob = %q, want stubbed profile", res.CPU)
	}
	if len(res.Goroutine) == 0 || len(res.Heap) == 0 {
		t.Fatalf("goroutine/heap snapshots missing: %d/%d bytes",
			len(res.Goroutine), len(res.Heap))
	}
	if res.Reason != "manual" || res.TraceID != "trace-1" {
		t.Fatalf("capture identity = %q/%q", res.Reason, res.TraceID)
	}
	if st := c.Stats(); st.Captured != 1 {
		t.Fatalf("Captured = %d, want 1", st.Captured)
	}
}

// TestTriggerStorm fires many concurrent triggers at an idle capturer:
// exactly one may win the window; the rest must be suppressed as busy
// (or as cooldown once the first window completes), and nothing blocks.
func TestTriggerStorm(t *testing.T) {
	c := New(Options{Window: 50 * time.Millisecond, Cooldown: time.Hour})
	stub(c, []byte("x"), nil)
	done := make(chan Capture, 1)

	const storm = 64
	var started atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c.Trigger("slow", "t", func(res Capture) { done <- res }) {
				started.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := started.Load(); n != 1 {
		t.Fatalf("%d captures started under storm, want exactly 1", n)
	}
	select {
	case res := <-done:
		if res.Err != nil {
			t.Fatalf("capture failed: %v", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("capture never completed")
	}
	st := c.Stats()
	if st.Triggered != storm {
		t.Fatalf("Triggered = %d, want %d", st.Triggered, storm)
	}
	if st.Captured != 1 || st.SuppressedBusy != storm-1 {
		t.Fatalf("Captured/SuppressedBusy = %d/%d, want 1/%d",
			st.Captured, st.SuppressedBusy, storm-1)
	}
}

// TestTriggerCooldown: after a completed capture, further triggers are
// suppressed until the cooldown elapses, then capture again.
func TestTriggerCooldown(t *testing.T) {
	c := New(Options{Window: time.Millisecond, Cooldown: 100 * time.Millisecond})
	stub(c, []byte("x"), nil)

	first := make(chan Capture, 1)
	if !c.Trigger("slow", "a", func(res Capture) { first <- res }) {
		t.Fatal("first trigger suppressed on an idle capturer")
	}
	<-first

	if c.Trigger("slow", "b", nil) {
		t.Fatal("trigger inside cooldown started a capture")
	}
	if st := c.Stats(); st.SuppressedCooldown != 1 {
		t.Fatalf("SuppressedCooldown = %d, want 1", st.SuppressedCooldown)
	}

	time.Sleep(120 * time.Millisecond)
	second := make(chan Capture, 1)
	if !c.Trigger("error", "c", func(res Capture) { second <- res }) {
		t.Fatal("trigger after cooldown suppressed")
	}
	res := <-second
	if res.Reason != "error" || res.TraceID != "c" {
		t.Fatalf("second capture identity = %q/%q", res.Reason, res.TraceID)
	}
	if st := c.Stats(); st.Captured != 2 {
		t.Fatalf("Captured = %d, want 2", st.Captured)
	}
}

// TestCaptureSyncBusy: a manual capture during an open window is
// refused rather than queued.
func TestCaptureSyncBusy(t *testing.T) {
	c := New(Options{Window: 200 * time.Millisecond, Cooldown: time.Hour})
	stub(c, []byte("x"), nil)
	release := make(chan Capture, 1)
	if !c.Trigger("slow", "a", func(res Capture) { release <- res }) {
		t.Fatal("trigger suppressed on idle capturer")
	}
	// The window is open for 200ms; a sync capture inside it must fail
	// fast.
	if _, err := c.CaptureSync(context.Background(), "manual", "", 0); err == nil {
		t.Fatal("CaptureSync succeeded during an open window")
	}
	<-release
	if st := c.Stats(); st.SuppressedBusy != 1 {
		t.Fatalf("SuppressedBusy = %d, want 1", st.SuppressedBusy)
	}
}

// TestCaptureSyncIgnoresCooldown: an operator capture right after a
// triggered one must run.
func TestCaptureSyncIgnoresCooldown(t *testing.T) {
	c := New(Options{Window: time.Millisecond, Cooldown: time.Hour})
	stub(c, []byte("x"), nil)
	ch := make(chan Capture, 1)
	c.Trigger("slow", "a", func(res Capture) { ch <- res })
	<-ch
	if _, err := c.CaptureSync(context.Background(), "manual", "", 0); err != nil {
		t.Fatalf("manual capture inside cooldown failed: %v", err)
	}
}

// TestByteCapDropsOversizedArtifacts: a blob over MaxBytes is dropped
// whole and recorded, not truncated.
func TestByteCapDropsOversizedArtifacts(t *testing.T) {
	c := New(Options{Window: time.Millisecond, Cooldown: time.Hour, MaxBytes: 4})
	stub(c, []byte("way-over-four-bytes"), nil)
	res, err := c.CaptureSync(context.Background(), "manual", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU != nil {
		t.Fatalf("oversized CPU blob kept: %d bytes", len(res.CPU))
	}
	found := false
	for _, d := range res.Dropped {
		if d == "cpu" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Dropped = %v, want to include cpu", res.Dropped)
	}
	if st := c.Stats(); st.OverCap == 0 {
		t.Fatal("OverCap not counted")
	}
}

// TestStartError: a CPU profiler conflict (e.g. an operator pprof
// session) fails the capture without crashing or leaking the busy bit.
func TestStartError(t *testing.T) {
	c := New(Options{Window: time.Millisecond, Cooldown: time.Hour})
	stub(c, nil, errors.New("profiler busy"))
	if _, err := c.CaptureSync(context.Background(), "manual", "", 0); err == nil {
		t.Fatal("capture succeeded despite profiler conflict")
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
	// The busy gate must have been released.
	stub(c, []byte("x"), nil)
	if _, err := c.CaptureSync(context.Background(), "manual", "", 0); err != nil {
		t.Fatalf("capturer stuck busy after a failed start: %v", err)
	}
}

// TestRealCPUProfileWindow exercises the unstubbed profiler once with a
// tiny window, proving the pprof plumbing produces a non-empty proto.
func TestRealCPUProfileWindow(t *testing.T) {
	c := New(Options{Window: 30 * time.Millisecond, Cooldown: time.Hour})
	res, err := c.CaptureSync(context.Background(), "manual", "", 0)
	if err != nil {
		t.Skipf("CPU profiler unavailable (another profile running?): %v", err)
	}
	if len(res.CPU) == 0 {
		t.Fatal("real CPU profile window produced no bytes")
	}
	if res.Duration < 30*time.Millisecond {
		t.Fatalf("window closed early: %v", res.Duration)
	}
}

// TestCloseInterruptsAndRefuses closes a capturer mid-window: Close
// must cut the open window short, wait for its done callback, and
// refuse every later capture — a closed owner may not keep the
// process-global CPU profiler.
func TestCloseInterruptsAndRefuses(t *testing.T) {
	c := New(Options{Window: time.Hour, Cooldown: time.Hour})
	stub(c, []byte("cpu"), nil)

	finished := make(chan Capture, 1)
	if !c.Trigger("slow", "trace-1", func(res Capture) { finished <- res }) {
		t.Fatal("trigger refused by an idle capturer")
	}
	for i := 0; i < 100 && !c.Busy(); i++ {
		time.Sleep(time.Millisecond)
	}
	if !c.Busy() {
		t.Fatal("capture never opened its window")
	}

	start := time.Now()
	c.Close()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Close took %v against an hour-long window", d)
	}
	select {
	case res := <-finished:
		if res.Duration >= time.Hour {
			t.Fatalf("window ran full length: %v", res.Duration)
		}
	default:
		t.Fatal("Close returned before the done callback ran")
	}

	if c.Trigger("slow", "trace-2", nil) {
		t.Fatal("closed capturer accepted a trigger")
	}
	if _, err := c.CaptureSync(context.Background(), "manual", "", time.Millisecond); err == nil {
		t.Fatal("closed capturer accepted CaptureSync")
	}
	c.Close() // idempotent
}
