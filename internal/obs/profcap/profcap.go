// Package profcap captures bounded profiling windows when something
// interesting happens. The flight recorder (internal/obs.Recorder)
// tells you *that* a request was slow or failed and *where* its wall
// time went; a CPU profile plus goroutine/heap snapshots captured
// while the condition is hot tell you *why*. Head-on profiling of
// every request would be absurdly expensive, so the capturer is
// triggered: the serve layer fires it when tail sampling retains a
// trace for cause, and the capturer decides whether a capture is
// affordable right now.
//
// The affordability rules exist so a capture storm can never degrade
// serving:
//
//   - one capture at a time — a trigger that arrives while a window is
//     open is suppressed, not queued (the process-global CPU profiler
//     cannot nest anyway);
//   - a cooldown between captures — one slow burst yields one profile,
//     not thirty identical ones;
//   - byte caps per artifact — a pathological profile is dropped, not
//     persisted.
//
// Captures run on their own goroutine; Trigger returns immediately.
// The CPU profile window uses runtime/pprof's process-wide profiler,
// so an operator-driven /debug/pprof/profile session and a triggered
// capture exclude each other — whoever starts second loses and is
// counted, never blocked.
package profcap

import (
	"bytes"
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes a Capturer; the zero value selects defaults.
type Options struct {
	// Window is the CPU-profile duration of one capture (default 2s).
	// Goroutine and heap snapshots are taken at the end of the window.
	Window time.Duration
	// Cooldown is the minimum gap between the end of one triggered
	// capture and the start of the next (default 60s). Manual captures
	// (CaptureSync) ignore the cooldown but still respect the
	// one-at-a-time rule.
	Cooldown time.Duration
	// MaxBytes caps each artifact (CPU, goroutine, heap); a blob that
	// exceeds it is discarded and counted rather than truncated, since
	// a truncated pprof proto is unreadable (default 8 MiB).
	MaxBytes int64
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 2 * time.Second
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 60 * time.Second
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 8 << 20
	}
	return o
}

// Capture is the result of one profiling window.
type Capture struct {
	// Reason is why the capture fired ("slow", "error", "manual");
	// TraceID is the retained trace that triggered it ("" for manual
	// captures with no trace context).
	Reason, TraceID string
	// Start and Duration bound the CPU-profile window.
	Start    time.Time
	Duration time.Duration
	// CPU is the pprof CPU profile proto; Goroutine and Heap are the
	// pprof snapshots taken at window close. Any of them is nil when
	// that artifact exceeded Options.MaxBytes or failed to collect.
	CPU, Goroutine, Heap []byte
	// Dropped lists artifacts discarded over the byte cap.
	Dropped []string
	// Err is the capture-level failure, non-nil when the CPU profiler
	// could not start (e.g. an operator pprof session is running).
	Err error
}

// Artifact returns one blob by kind ("cpu", "goroutine", "heap"); nil
// for unknown kinds or artifacts that were dropped or failed.
func (c Capture) Artifact(kind string) []byte {
	switch kind {
	case "cpu":
		return c.CPU
	case "goroutine":
		return c.Goroutine
	case "heap":
		return c.Heap
	}
	return nil
}

// Stats is a Capturer's lifetime accounting.
type Stats struct {
	// Triggered counts Trigger calls; Captured counts windows that ran
	// to completion (including manual ones).
	Triggered, Captured int64
	// SuppressedBusy counts triggers refused because a capture was in
	// flight; SuppressedCooldown counts triggers inside the cooldown.
	SuppressedBusy, SuppressedCooldown int64
	// OverCap counts artifacts discarded over the byte cap; Errors
	// counts windows that failed to start the CPU profiler.
	OverCap, Errors int64
}

// Capturer arms triggered profile capture. All methods are safe for
// concurrent use.
type Capturer struct {
	opts Options

	// busy is the one-concurrent-capture gate; lastDone is the unix
	// nanosecond the previous capture finished, read for the cooldown.
	busy     atomic.Bool
	lastDone atomic.Int64

	triggered, captured    atomic.Int64
	supBusy, supCooldown   atomic.Int64
	overCap, captureErrors atomic.Int64

	// closed refuses new captures; root is canceled by Close to cut an
	// open window short, and wg tracks the capture in flight so Close
	// can wait for the process-global CPU profiler to be released.
	closed atomic.Bool
	root   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// profile hooks, swappable by tests to avoid real 2s CPU windows.
	startCPU func(w *bytes.Buffer) error
	stopCPU  func()
}

// New returns an armed Capturer.
func New(opts Options) *Capturer {
	c := &Capturer{opts: opts.withDefaults()}
	c.root, c.cancel = context.WithCancel(context.Background())
	c.startCPU = func(w *bytes.Buffer) error { return pprof.StartCPUProfile(w) }
	c.stopCPU = pprof.StopCPUProfile
	return c
}

// Close refuses further captures, cuts any open window short (the
// partial CPU profile is discarded with its capture's done callback
// still invoked), and blocks until the process-global CPU profiler is
// released. The capturer owns that profiler while a window is open, so
// leaving a window running past the owner's shutdown would poison the
// next pprof session in the process. Idempotent.
func (c *Capturer) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.cancel()
	c.wg.Wait()
}

// Options returns the capturer's effective (defaulted) options.
func (c *Capturer) Options() Options { return c.opts }

// Trigger requests an asynchronous capture for a retained trace. When
// the capturer is idle and outside its cooldown it starts the window
// on a new goroutine and calls done (if non-nil) with the finished
// Capture; otherwise the trigger is suppressed and counted. The bool
// reports whether a capture started.
func (c *Capturer) Trigger(reason, traceID string, done func(Capture)) bool {
	c.triggered.Add(1)
	if last := c.lastDone.Load(); last != 0 &&
		time.Since(time.Unix(0, last)) < c.opts.Cooldown {
		c.supCooldown.Add(1)
		return false
	}
	if !c.busy.CompareAndSwap(false, true) {
		c.supBusy.Add(1)
		return false
	}
	// Re-check closed after winning the gate: a Load that observes false
	// here happens before Close's Swap, so Close's Wait sees this Add.
	c.wg.Add(1)
	if c.closed.Load() {
		c.wg.Done()
		c.busy.Store(false)
		c.supBusy.Add(1)
		return false
	}
	go func() {
		defer c.wg.Done()
		res := c.capture(c.root, reason, traceID, c.opts.Window)
		// Cooldown runs from completion: back-to-back windows can never
		// overlap even with a cooldown shorter than the window.
		c.lastDone.Store(time.Now().UnixNano())
		c.busy.Store(false)
		if done != nil {
			done(res)
		}
	}()
	return true
}

// CaptureSync runs one capture on the caller's goroutine — the
// operator path behind POST /debug/profile. It respects the
// one-at-a-time rule (returning an error when a capture is already in
// flight) but not the cooldown: an explicit request wins over the
// storm damper. window <= 0 selects the configured default; ctx
// cancellation cuts the window short (the partial profile is still
// valid — pprof windows are cumulative).
func (c *Capturer) CaptureSync(ctx context.Context, reason, traceID string, window time.Duration) (Capture, error) {
	if window <= 0 {
		window = c.opts.Window
	}
	if !c.busy.CompareAndSwap(false, true) {
		c.supBusy.Add(1)
		return Capture{}, fmt.Errorf("profcap: capture already in flight")
	}
	c.wg.Add(1)
	if c.closed.Load() {
		c.wg.Done()
		c.busy.Store(false)
		return Capture{}, fmt.Errorf("profcap: capturer closed")
	}
	defer func() {
		c.lastDone.Store(time.Now().UnixNano())
		c.busy.Store(false)
		c.wg.Done()
	}()
	res := c.capture(ctx, reason, traceID, window)
	return res, res.Err
}

// capture runs one profiling window: CPU profile for window, then
// goroutine and heap snapshots.
func (c *Capturer) capture(ctx context.Context, reason, traceID string, window time.Duration) Capture {
	out := Capture{Reason: reason, TraceID: traceID, Start: time.Now()}
	var cpu bytes.Buffer
	if err := c.startCPU(&cpu); err != nil {
		// Most likely a concurrent /debug/pprof/profile session owns the
		// process profiler; yield rather than fight it.
		c.captureErrors.Add(1)
		out.Err = fmt.Errorf("profcap: starting CPU profile: %w", err)
		return out
	}
	select {
	case <-time.After(window):
	case <-ctx.Done():
	case <-c.root.Done():
	}
	c.stopCPU()
	out.Duration = time.Since(out.Start)
	out.CPU = c.capped(&out, "cpu", cpu.Bytes())

	var g bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		if p.WriteTo(&g, 0) == nil {
			out.Goroutine = c.capped(&out, "goroutine", g.Bytes())
		}
	}
	var h bytes.Buffer
	if p := pprof.Lookup("heap"); p != nil {
		if p.WriteTo(&h, 0) == nil {
			out.Heap = c.capped(&out, "heap", h.Bytes())
		}
	}
	c.captured.Add(1)
	return out
}

// capped enforces the per-artifact byte cap: an oversized blob is
// dropped whole and recorded on the capture.
func (c *Capturer) capped(out *Capture, name string, blob []byte) []byte {
	if int64(len(blob)) > c.opts.MaxBytes {
		c.overCap.Add(1)
		out.Dropped = append(out.Dropped, name)
		return nil
	}
	return blob
}

// Busy reports whether a capture window is currently open.
func (c *Capturer) Busy() bool { return c.busy.Load() }

// Stats returns the capturer's counters.
func (c *Capturer) Stats() Stats {
	return Stats{
		Triggered:          c.triggered.Load(),
		Captured:           c.captured.Load(),
		SuppressedBusy:     c.supBusy.Load(),
		SuppressedCooldown: c.supCooldown.Load(),
		OverCap:            c.overCap.Load(),
		Errors:             c.captureErrors.Load(),
	}
}
