// Package benchfmt is the canonical benchmark-report schema and the
// regression comparator behind `make bench-diff`.
//
// The repo accumulated five BENCH_*.json files with five ad-hoc shapes
// (nested objects, arrays of sweep points, counter maps keyed by
// Prometheus series). Rather than rewrite every harness, benchfmt
// adopts them: Wrap flattens any of those JSON documents into a flat
// metric map under dot-paths (`coupling.1.speedup`,
// `load.p99_seconds`), stamps it with a schema version and suite name,
// and the result round-trips through the append-only
// BENCH_HISTORY.jsonl trajectory. Diff then compares two reports
// metric by metric, classifying each metric's improvement direction
// from its name — the same suffix conventions the metric names already
// follow (docs/OBSERVABILITY.md) — so `_seconds` regressing up and
// `per_second` regressing down both fail, while `bits` or `gomaxprocs`
// merely changing does not.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion is the current report schema. Diff refuses to compare
// across versions: a silent cross-version comparison is exactly the
// kind of apples-to-oranges result a regression gate must not produce.
const SchemaVersion = 1

// Report is one benchmark run in canonical form.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Suite         string `json:"suite"`
	// UnixTime is when the run was recorded (set by the recorder, not
	// by Wrap, so wrapping stays deterministic for tests).
	UnixTime int64 `json:"unix_time,omitempty"`
	// GoVersion and Host describe the environment for trajectory
	// forensics; they do not participate in comparison.
	GoVersion string `json:"go_version,omitempty"`
	Host      string `json:"host,omitempty"`
	// Metrics is the flat dot-path → value map.
	Metrics map[string]float64 `json:"metrics"`
}

// Wrap flattens a raw benchmark JSON document into a canonical Report
// for the given suite. Every numeric leaf becomes a metric under its
// dot-joined path (array elements by index); booleans count as 0/1;
// strings are dropped. A document that already carries schema_version
// and metrics is loaded as-is (its embedded suite must match).
func Wrap(suite string, raw []byte) (*Report, error) {
	var probe struct {
		SchemaVersion *int               `json:"schema_version"`
		Suite         string             `json:"suite"`
		Metrics       map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &probe); err == nil &&
		probe.SchemaVersion != nil && probe.Metrics != nil {
		var r Report
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("benchfmt: canonical report: %w", err)
		}
		if r.Suite != suite {
			return nil, fmt.Errorf("benchfmt: report suite %q, want %q", r.Suite, suite)
		}
		return &r, nil
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("benchfmt: suite %s: %w", suite, err)
	}
	r := &Report{SchemaVersion: SchemaVersion, Suite: suite, Metrics: map[string]float64{}}
	flatten("", doc, r.Metrics)
	if len(r.Metrics) == 0 {
		return nil, fmt.Errorf("benchfmt: suite %s: no numeric metrics found", suite)
	}
	return r, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flatten(join(prefix, k), t[k], out)
		}
	case []any:
		for i, e := range t {
			flatten(join(prefix, strconv.Itoa(i)), e, out)
		}
	case float64:
		out[prefix] = t
	case bool:
		if t {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

func join(prefix, k string) string {
	if prefix == "" {
		return k
	}
	return prefix + "." + k
}

// Direction is a metric's improvement direction.
type Direction string

const (
	// HigherBetter metrics regress when they fall (throughput,
	// speedups, hit rates).
	HigherBetter Direction = "higher"
	// LowerBetter metrics regress when they rise (durations,
	// overheads, allocation counts, drops).
	LowerBetter Direction = "lower"
	// Info metrics describe the run (bits, worker counts, request
	// totals) and never gate.
	Info Direction = "info"
)

// higherMarks and lowerMarks classify metrics from the naming
// conventions the harnesses already follow. Higher-better marks are
// checked first: "writes_per_second" must classify as throughput even
// though "writes" alone would be informational.
var higherMarks = []string{
	"per_second", "speedup", "hit_rate", "dedup", "mb_per_second",
}

var lowerMarks = []string{
	"_seconds", "overhead", "ns_per_op", "allocs_per_op", "bytes_per_op",
	"dropped", "errors", "shed", "scaling_exponent", "fallback",
}

// Classify derives a metric's improvement direction from its dot-path
// name. Only the final path segment's conventions matter, but marks
// are matched against the whole path so `load.p99_seconds` and
// `stage_seconds.analysis` both classify as durations.
func Classify(name string) Direction {
	n := strings.ToLower(name)
	for _, m := range higherMarks {
		if strings.Contains(n, m) {
			return HigherBetter
		}
	}
	for _, m := range lowerMarks {
		if strings.Contains(n, m) {
			return LowerBetter
		}
	}
	return Info
}

// Verdict is the outcome of one metric's comparison.
type Verdict string

const (
	VerdictOK        Verdict = "ok"        // within tolerance
	VerdictImproved  Verdict = "improved"  // beyond tolerance, right way
	VerdictRegressed Verdict = "regressed" // beyond tolerance, wrong way
	VerdictInfo      Verdict = "info"      // non-gating metric changed
	VerdictMissing   Verdict = "missing"   // gating metric vanished
	VerdictNew       Verdict = "new"       // metric absent from baseline
)

// MetricDiff is one metric's comparison.
type MetricDiff struct {
	Name      string    `json:"name"`
	Direction Direction `json:"direction"`
	Old       float64   `json:"old,omitempty"`
	New       float64   `json:"new,omitempty"`
	// Change is the signed relative change (new−old)/|old|, or the
	// absolute delta when the baseline is ~0 (Absolute true).
	Change   float64 `json:"change"`
	Absolute bool    `json:"absolute,omitempty"`
	Verdict  Verdict `json:"verdict"`
}

// DiffOptions tunes the comparator.
type DiffOptions struct {
	// Tolerance is the relative change beyond which a gating metric
	// counts as regressed/improved (default 0.05 = 5%).
	Tolerance float64
}

// DiffResult is the full comparison of one suite.
type DiffResult struct {
	Suite     string       `json:"suite"`
	Tolerance float64      `json:"tolerance"`
	Metrics   []MetricDiff `json:"metrics"`

	Regressions, Improvements, Missing int
}

// OK reports whether the comparison gates clean: no regressions and no
// vanished gating metrics.
func (d *DiffResult) OK() bool { return d.Regressions == 0 && d.Missing == 0 }

// Diff compares a current report against its baseline. It errors on
// schema-version or suite mismatch rather than producing a verdict —
// those are comparator misuse, not benchmark regressions.
func Diff(baseline, current *Report, opts DiffOptions) (*DiffResult, error) {
	if baseline.SchemaVersion != current.SchemaVersion {
		return nil, fmt.Errorf("benchfmt: schema version mismatch: baseline v%d, current v%d",
			baseline.SchemaVersion, current.SchemaVersion)
	}
	if baseline.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchfmt: unsupported schema version %d (comparator speaks v%d)",
			baseline.SchemaVersion, SchemaVersion)
	}
	if baseline.Suite != current.Suite {
		return nil, fmt.Errorf("benchfmt: suite mismatch: baseline %q, current %q",
			baseline.Suite, current.Suite)
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 0.05
	}
	res := &DiffResult{Suite: current.Suite, Tolerance: tol}
	names := make([]string, 0, len(baseline.Metrics)+len(current.Metrics))
	for n := range baseline.Metrics {
		names = append(names, n)
	}
	for n := range current.Metrics {
		if _, ok := baseline.Metrics[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		md := MetricDiff{Name: name, Direction: Classify(name)}
		oldV, hasOld := baseline.Metrics[name]
		newV, hasNew := current.Metrics[name]
		md.Old, md.New = oldV, newV
		switch {
		case !hasNew:
			if md.Direction == Info {
				md.Verdict = VerdictInfo
			} else {
				// A gating metric that vanished is a broken harness or a
				// silently dropped measurement — fail loudly either way.
				md.Verdict = VerdictMissing
				res.Missing++
			}
		case !hasOld:
			md.Verdict = VerdictNew
		default:
			md.Change, md.Absolute = change(oldV, newV)
			md.Verdict = verdict(md.Direction, md.Change, tol)
			switch md.Verdict {
			case VerdictRegressed:
				res.Regressions++
			case VerdictImproved:
				res.Improvements++
			}
		}
		res.Metrics = append(res.Metrics, md)
	}
	return res, nil
}

// change computes the signed change from old to new: relative when the
// baseline is nonzero, absolute otherwise (a counter ticking from 0 to
// 1 is a one-unit move, not an infinite regression).
func change(oldV, newV float64) (c float64, absolute bool) {
	if math.Abs(oldV) > 1e-9 {
		return (newV - oldV) / math.Abs(oldV), false
	}
	return newV - oldV, true
}

func verdict(dir Direction, chg, tol float64) Verdict {
	if dir == Info {
		if chg != 0 {
			return VerdictInfo
		}
		return VerdictOK
	}
	if math.Abs(chg) <= tol {
		return VerdictOK
	}
	worse := chg > 0
	if dir == HigherBetter {
		worse = chg < 0
	}
	if worse {
		return VerdictRegressed
	}
	return VerdictImproved
}

// AppendHistory appends the report as one line to the JSONL trajectory
// at path, creating the file if needed.
func AppendHistory(path string, r *Report) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("benchfmt: encoding history entry: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("benchfmt: opening history: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("benchfmt: appending history: %w", err)
	}
	return f.Close()
}

// LatestInHistory scans the JSONL trajectory and returns the last
// parseable entry for the suite, or (nil, nil) when the suite has no
// history. A torn or corrupt line (e.g. a crash mid-append) is skipped
// rather than poisoning every later comparison, mirroring the store
// index's torn-entry policy.
func LatestInHistory(path, suite string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("benchfmt: opening history: %w", err)
	}
	defer f.Close()
	var latest *Report
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Report
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			continue
		}
		if r.Suite == suite {
			cp := r
			latest = &cp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: scanning history: %w", err)
	}
	return latest, nil
}
