package benchfmt

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWrapFlattensAdHocShapes(t *testing.T) {
	// A miniature of BENCH_serve.json's shape: nested object, array,
	// counter map with brace-bearing keys, and a string to drop.
	raw := []byte(`{
		"bits": 6,
		"style": "spiral",
		"load": {"p99_seconds": 0.034, "requests_per_second": 768.3},
		"coupling": [{"bits": 6, "speedup": 2.03}, {"bits": 8, "speedup": 4.48}],
		"server_counters": {"ccdac_http_requests_total{route=/v1/generate}": 160},
		"ok": true
	}`)
	r, err := Wrap("serve", raw)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"bits":                     6,
		"load.p99_seconds":         0.034,
		"load.requests_per_second": 768.3,
		"coupling.0.bits":          6,
		"coupling.0.speedup":       2.03,
		"coupling.1.bits":          8,
		"coupling.1.speedup":       4.48,
		"server_counters.ccdac_http_requests_total{route=/v1/generate}": 160,
		"ok": 1,
	}
	if len(r.Metrics) != len(want) {
		t.Fatalf("got %d metrics %v, want %d", len(r.Metrics), r.Metrics, len(want))
	}
	for k, v := range want {
		if r.Metrics[k] != v {
			t.Errorf("metric %q = %g, want %g", k, r.Metrics[k], v)
		}
	}
	if _, ok := r.Metrics["style"]; ok {
		t.Error("string leaf became a metric")
	}
}

func TestWrapRealBenchFiles(t *testing.T) {
	// Every committed BENCH file must flatten cleanly — the comparator
	// adopts them as-is.
	matches, err := filepath.Glob("../../BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Skipf("no committed bench files visible: %v", err)
	}
	for _, f := range matches {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Wrap("x", raw)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if len(r.Metrics) == 0 {
			t.Errorf("%s: flattened to zero metrics", f)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]Direction{
		"load.p99_seconds":          LowerBetter,
		"stage_seconds.analysis":    LowerBetter,
		"recorder_overhead_percent": LowerBetter,
		"cg_allocs_per_op":          LowerBetter,
		"load.shed":                 LowerBetter,
		"writes_per_second":         HigherBetter,
		"write_mb_per_second":       HigherBetter,
		"serve_speedup":             HigherBetter,
		"warm_restart_hit_rate":     HigherBetter,
		"batch_dedup_factor":        HigherBetter,
		"bits":                      Info,
		"gomaxprocs":                Info,
		"warm_restart_entries":      Info,
	}
	for name, want := range cases {
		if got := Classify(name); got != want {
			t.Errorf("Classify(%q) = %s, want %s", name, got, want)
		}
	}
}

func rep(suite string, m map[string]float64) *Report {
	return &Report{SchemaVersion: SchemaVersion, Suite: suite, Metrics: m}
}

func TestDiffImprovement(t *testing.T) {
	base := rep("s", map[string]float64{"run_seconds": 1.0, "ops_per_second": 100})
	cur := rep("s", map[string]float64{"run_seconds": 0.5, "ops_per_second": 200})
	res, err := Diff(base, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Improvements != 2 || res.Regressions != 0 {
		t.Fatalf("improvement run: %+v", res)
	}
}

func TestDiffRegression(t *testing.T) {
	base := rep("s", map[string]float64{"run_seconds": 1.0, "ops_per_second": 100, "bits": 8})
	cur := rep("s", map[string]float64{"run_seconds": 1.12, "ops_per_second": 100, "bits": 10})
	res, err := Diff(base, cur, DiffOptions{Tolerance: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Regressions != 1 {
		t.Fatalf("12%% slowdown at 10%% tolerance did not regress: %+v", res)
	}
	// The info metric changed but must not gate.
	for _, m := range res.Metrics {
		if m.Name == "bits" && m.Verdict != VerdictInfo {
			t.Errorf("bits verdict = %s, want info", m.Verdict)
		}
	}
	// Within tolerance the same delta passes.
	res, err = Diff(base, cur, DiffOptions{Tolerance: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("12%% slowdown at 15%% tolerance gated: %+v", res)
	}
}

func TestDiffThroughputDropRegresses(t *testing.T) {
	base := rep("s", map[string]float64{"ops_per_second": 100})
	cur := rep("s", map[string]float64{"ops_per_second": 80})
	res, err := Diff(base, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 1 {
		t.Fatalf("20%% throughput drop did not regress: %+v", res)
	}
}

func TestDiffMissingMetric(t *testing.T) {
	base := rep("s", map[string]float64{"run_seconds": 1.0, "note_count": 3})
	cur := rep("s", map[string]float64{})
	res, err := Diff(base, cur, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Missing != 1 {
		t.Fatalf("vanished gating metric did not gate: %+v", res)
	}
}

func TestDiffSchemaVersionMismatch(t *testing.T) {
	base := rep("s", map[string]float64{"x_seconds": 1})
	cur := rep("s", map[string]float64{"x_seconds": 1})
	cur.SchemaVersion = SchemaVersion + 1
	if _, err := Diff(base, cur, DiffOptions{}); err == nil {
		t.Fatal("cross-version diff did not error")
	}
	base.SchemaVersion = SchemaVersion + 1
	if _, err := Diff(base, cur, DiffOptions{}); err == nil {
		t.Fatal("unsupported-version diff did not error")
	}
}

func TestDiffSuiteMismatch(t *testing.T) {
	if _, err := Diff(rep("a", map[string]float64{"x": 1}), rep("b", map[string]float64{"x": 1}), DiffOptions{}); err == nil {
		t.Fatal("cross-suite diff did not error")
	}
}

func TestDiffNearZeroBaselineUsesAbsoluteDelta(t *testing.T) {
	// overhead_percent swinging from ~0 would explode as a relative
	// change; it must compare absolutely.
	base := rep("s", map[string]float64{"overhead_percent": 0})
	cur := rep("s", map[string]float64{"overhead_percent": 0.02})
	res, err := Diff(base, cur, DiffOptions{Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("0.02-point overhead move over a zero baseline gated: %+v", res)
	}
	if !res.Metrics[0].Absolute {
		t.Fatal("zero-baseline change not flagged absolute")
	}
}

func TestHistoryRoundTripAndTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	if r, err := LatestInHistory(path, "obs"); err != nil || r != nil {
		t.Fatalf("missing history: r=%v err=%v, want nil/nil", r, err)
	}
	a := rep("obs", map[string]float64{"v": 1})
	b := rep("obs", map[string]float64{"v": 2})
	other := rep("store", map[string]float64{"v": 9})
	for _, r := range []*Report{a, other, b} {
		if err := AppendHistory(path, r); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-append: a torn trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"schema_version":1,"suite":"obs","metr`)
	f.Close()

	got, err := LatestInHistory(path, "obs")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Metrics["v"] != 2 {
		t.Fatalf("latest obs entry = %+v, want v=2", got)
	}
	gotStore, err := LatestInHistory(path, "store")
	if err != nil || gotStore == nil || gotStore.Metrics["v"] != 9 {
		t.Fatalf("latest store entry = %+v err=%v, want v=9", gotStore, err)
	}
}

func TestWrapCanonicalPassthrough(t *testing.T) {
	raw := []byte(`{"schema_version":1,"suite":"obs","metrics":{"x_seconds":1.5}}`)
	r, err := Wrap("obs", raw)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["x_seconds"] != 1.5 {
		t.Fatalf("passthrough metrics = %v", r.Metrics)
	}
	if _, err := Wrap("store", raw); err == nil {
		t.Fatal("embedded-suite mismatch not rejected")
	}
}
