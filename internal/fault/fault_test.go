package fault

import (
	"errors"
	"testing"
)

func TestDisarmedCheckIsNil(t *testing.T) {
	Reset()
	for _, s := range Stages() {
		if err := Check(s); err != nil {
			t.Fatalf("disarmed Check(%s) = %v", s, err)
		}
	}
}

func TestOrdinalSelectsPass(t *testing.T) {
	defer Reset()
	want := errors.New("boom")
	Enable(StageRoute, 2, want)
	for pass := 0; pass < 5; pass++ {
		err := Check(StageRoute)
		if pass == 2 && !errors.Is(err, want) {
			t.Fatalf("pass 2: got %v, want %v", pass, err)
		}
		if pass != 2 && err != nil {
			t.Fatalf("pass %d: got %v, want nil", pass, err)
		}
	}
	if !Fired(StageRoute) {
		t.Fatal("Fired not recorded")
	}
	// Other stages stay unarmed.
	if err := Check(StagePlace); err != nil {
		t.Fatalf("unrelated stage: %v", err)
	}
}

func TestEnablePanic(t *testing.T) {
	defer Reset()
	EnablePanic(StageExtract, 0, "invariant slip")
	defer func() {
		if recover() == nil {
			t.Fatal("armed panic did not fire")
		}
	}()
	Check(StageExtract)
}

func TestDisableAndRearm(t *testing.T) {
	defer Reset()
	Enable(StagePlace, 0, errors.New("x"))
	Disable(StagePlace)
	if err := Check(StagePlace); err != nil {
		t.Fatalf("disabled stage fired: %v", err)
	}
	// Re-arming resets the pass counter.
	want := errors.New("y")
	Enable(StagePlace, 0, want)
	if err := Check(StagePlace); !errors.Is(err, want) {
		t.Fatalf("re-armed stage: %v", err)
	}
}
