// Package fault provides deterministic, test-only fault-injection
// points for the constructive flow. Pipeline stages call Check (or
// CheckErr) at their entry; tests arm a stage's nth pass to return an
// error or panic, exercising failure paths that are otherwise
// unreachable from valid inputs: placement/routing/extraction errors,
// CG non-convergence, analysis failures, and worker panics.
//
// The registry is process-global and guarded by a single armed flag so
// the production fast path is one atomic load. Tests that arm faults
// must not run in parallel with each other and should defer Reset().
//
// Every firing is also reported to internal/obs (obs.RecordFault), so
// fault-injection tests can assert both that the fault triggered and —
// via the span records of a live trace — that the failing pipeline
// stage's span was marked errored.
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ccdac/internal/obs"
)

// Canonical stage names. Pipeline packages use these when calling
// Check; they also label core.StageError and the public error taxonomy.
const (
	// StageConfig is configuration validation (ccdac.Generate entry).
	StageConfig = "config"
	// StagePlace is placement construction (internal/place).
	StagePlace = "placement"
	// StageRoute is constructive routing (internal/route).
	StageRoute = "routing"
	// StageExtract is parasitic extraction (internal/extract).
	StageExtract = "extraction"
	// StageAnalyze is the variation/nonlinearity analysis (core).
	StageAnalyze = "analysis"
	// StageLinalgCG is the sparse CG solve (internal/linalg.SolveCG).
	StageLinalgCG = "linalg.cg"
	// StageFFT is the structured-covariance FFT path selection in
	// internal/variation: an armed fault forces the dense fallback,
	// exercising the degradation ladder without an irregular layout.
	StageFFT = "numeric.fft"
	// StageExpJob is one worker job of the experiment harness pool.
	StageExpJob = "exp.job"

	// Store checkpoints cover every IO edge of the durable artifact
	// store (internal/store): the data write into the temp file, the
	// fsync making it durable, the rename making it visible, the read
	// back, and the content-hash verification of what was read.
	StageStoreWrite  = "store.write"
	StageStoreFsync  = "store.fsync"
	StageStoreRename = "store.rename"
	StageStoreRead   = "store.read"
	StageStoreVerify = "store.verify"
)

// Stages lists every injection point threaded through the flow.
func Stages() []string {
	return []string{StageConfig, StagePlace, StageRoute, StageExtract,
		StageAnalyze, StageLinalgCG, StageFFT, StageExpJob,
		StageStoreWrite, StageStoreFsync, StageStoreRename,
		StageStoreRead, StageStoreVerify}
}

type point struct {
	ordinal  int // pass index (0-based) at which the fault fires
	count    int // passes seen so far
	err      error
	panicMsg string
	doPanic  bool
	fired    bool
}

var (
	armed  atomic.Bool
	mu     sync.Mutex
	points = map[string]*point{}
)

// Enable arms stage so that its ordinal-th pass (0-based) through
// Check returns err. Re-arming a stage replaces the previous fault and
// resets its pass counter.
func Enable(stage string, ordinal int, err error) {
	mu.Lock()
	defer mu.Unlock()
	points[stage] = &point{ordinal: ordinal, err: err}
	armed.Store(true)
}

// EnablePanic arms stage so that its ordinal-th pass through Check
// panics with msg — used to verify panic containment boundaries.
func EnablePanic(stage string, ordinal int, msg string) {
	mu.Lock()
	defer mu.Unlock()
	points[stage] = &point{ordinal: ordinal, panicMsg: msg, doPanic: true}
	armed.Store(true)
}

// Disable disarms one stage, leaving others armed.
func Disable(stage string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, stage)
	armed.Store(len(points) > 0)
}

// Reset disarms every stage. Tests should defer this after arming.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	armed.Store(false)
}

// Fired reports whether the armed fault at stage has triggered.
func Fired(stage string) bool {
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[stage]
	return ok && p.fired
}

// Check is the injection point: it returns nil (and is nearly free)
// unless a test armed this stage's current pass, in which case it
// returns the armed error or panics. Each call advances the stage's
// pass counter while the stage is armed.
func Check(stage string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	p, ok := points[stage]
	if !ok {
		mu.Unlock()
		return nil
	}
	hit := p.count == p.ordinal
	p.count++
	if hit {
		p.fired = true
	}
	doPanic, msg, err := p.doPanic, p.panicMsg, p.err
	mu.Unlock()
	if !hit {
		return nil
	}
	obs.RecordFault(stage)
	if doPanic {
		panic(fmt.Sprintf("fault: injected panic at %s: %s", stage, msg))
	}
	return err
}
