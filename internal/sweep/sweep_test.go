package sweep

import (
	"math"
	"testing"

	"ccdac/internal/core"
	"ccdac/internal/place"
	"ccdac/internal/tech"
)

func TestScaledTechKnobs(t *testing.T) {
	base := tech.FinFET12()
	for _, knob := range Knobs() {
		scaled, err := ScaledTech(base, knob, 2)
		if err != nil {
			t.Fatalf("%s: %v", knob, err)
		}
		if scaled == base {
			t.Fatalf("%s: no copy made", knob)
		}
	}
	via, _ := ScaledTech(base, KnobViaR, 3)
	if via.ViaROhm != 3*base.ViaROhm {
		t.Error("via knob did not scale")
	}
	if via.Layers[0].ROhmPerUm != base.Layers[0].ROhmPerUm {
		t.Error("via knob leaked into wire resistance")
	}
	wire, _ := ScaledTech(base, KnobWireR, 2)
	if wire.Layers[0].ROhmPerUm != 2*base.Layers[0].ROhmPerUm {
		t.Error("wire knob did not scale")
	}
	if base.Layers[0].ROhmPerUm == wire.Layers[0].ROhmPerUm {
		t.Error("scaling mutated the base technology")
	}
}

func TestScaledTechRejectsBadInputs(t *testing.T) {
	base := tech.FinFET12()
	if _, err := ScaledTech(base, KnobViaR, 0); err == nil {
		t.Error("zero factor must be rejected")
	}
	if _, err := ScaledTech(base, Knob("bogus"), 2); err == nil {
		t.Error("unknown knob must be rejected")
	}
}

func TestSensitivityViaRHurtsF3dB(t *testing.T) {
	pts, err := Sensitivity(core.Config{Bits: 6, Style: place.Chessboard},
		KnobViaR, []float64{0.5, 1, 2, 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].F3dBHz >= pts[i-1].F3dBHz {
			t.Errorf("f3dB not decreasing with via R: %+v", pts)
		}
	}
}

func TestSensitivityGradientScalesINL(t *testing.T) {
	pts, err := Sensitivity(core.Config{Bits: 6, Style: place.Chessboard, ThetaSteps: 4},
		KnobGradient, []float64{1, 10}, true)
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].INL <= pts[0].INL {
		t.Errorf("10x gradient did not raise INL: %+v", pts)
	}
}

func TestSensitivityCorrelationLengthImprovesMatching(t *testing.T) {
	// Longer L_c means unit caps track better: INL falls.
	pts, err := Sensitivity(core.Config{Bits: 6, Style: place.Spiral, ThetaSteps: 4},
		KnobCorrLen, []float64{0.1, 1, 10}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !(pts[0].INL > pts[1].INL && pts[1].INL > pts[2].INL) {
		t.Errorf("INL not falling with correlation length: %+v", pts)
	}
}

func TestSensitivitySwitchRBoundsF3dB(t *testing.T) {
	pts, err := Sensitivity(core.Config{Bits: 6, Style: place.Spiral, MaxParallel: 4},
		KnobSwitchR, []float64{1, 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].F3dBHz >= pts[0].F3dBHz {
		t.Errorf("switch resistance did not bound f3dB: %+v", pts)
	}
}

func TestViaRStudy(t *testing.T) {
	// The paper's FinFET motivation: parallel routing (p² via arrays)
	// grows more valuable as vias get more resistive, and keeps the
	// spiral's advantage where the single-wire flow loses it.
	s, err := StudyViaR(6, []float64{0.25, 1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.ParallelGain); i++ {
		if s.ParallelGain[i] <= s.ParallelGain[i-1] {
			t.Errorf("parallel gain not growing with via R: %v", s.ParallelGain)
		}
	}
	for i := range s.Factors {
		if s.GapParallel[i] <= s.GapSingle[i] {
			t.Errorf("factor %g: parallel gap %g not above single-wire gap %g",
				s.Factors[i], s.GapParallel[i], s.GapSingle[i])
		}
		if s.GapParallel[i] <= 1 {
			t.Errorf("factor %g: parallel-routed spiral must beat chessboard", s.Factors[i])
		}
	}
}

func TestBCAblationSpansTradeoff(t *testing.T) {
	pts, err := BCAblation(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("only %d BC structures", len(pts))
	}
	// The ablation must expose a real spread in both dimensions.
	minF, maxF := math.Inf(1), 0.0
	minV, maxV := math.MaxInt32, 0
	for _, p := range pts {
		minF = math.Min(minF, p.F3dBHz)
		maxF = math.Max(maxF, p.F3dBHz)
		if p.ViaCuts < minV {
			minV = p.ViaCuts
		}
		if p.ViaCuts > maxV {
			maxV = p.ViaCuts
		}
		if p.DNL <= 0 || p.INL <= 0 || p.AreaUm2 <= 0 {
			t.Errorf("degenerate ablation point %+v", p)
		}
	}
	if maxF < 1.2*minF {
		t.Errorf("f3dB spread too small: %g..%g", minF, maxF)
	}
	if maxV < minV+10 {
		t.Errorf("via spread too small: %d..%d", minV, maxV)
	}
}

func TestCoarserBlocksUseFewerVias(t *testing.T) {
	pts, err := BCAblation(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	byGran := map[int]int{} // block cells -> via cuts (core 4 only)
	for _, p := range pts {
		if p.CoreBits == 4 {
			byGran[p.BlockCells] = p.ViaCuts
		}
	}
	if !(byGran[8] < byGran[1]) {
		t.Errorf("8-cell blocks (%d vias) not below 1-cell blocks (%d vias)",
			byGran[8], byGran[1])
	}
}

func TestNodeContrastBulkVsFinFET(t *testing.T) {
	// The paper's premise: the techniques target FinFET nodes because
	// routing resistance dominates there. In the bulk node, wires and
	// vias are cheap, so (1) absolute switching speed is higher despite
	// the larger cells, and (2) parallel-wire routing — the paper's
	// FinFET-specific remedy — buys much less.
	gain := func(tt *tech.Technology) (p1Hz, ratio float64) {
		p2, err := core.Run(core.Config{Bits: 8, Style: place.Spiral, Tech: tt, SkipNL: true, MaxParallel: 2})
		if err != nil {
			t.Fatal(err)
		}
		p1, err := core.Run(core.Config{Bits: 8, Style: place.Spiral, Tech: tt, SkipNL: true})
		if err != nil {
			t.Fatal(err)
		}
		return p1.F3dBHz, p2.F3dBHz / p1.F3dBHz
	}
	finF, finGain := gain(tech.FinFET12())
	bulkF, bulkGain := gain(tech.Bulk65())
	if bulkGain >= finGain {
		t.Errorf("parallel routing gain in bulk (%.2fx) not below FinFET (%.2fx)", bulkGain, finGain)
	}
	if bulkF <= finF {
		t.Errorf("single-wire bulk f3dB %g not above FinFET %g (cheap wires)", bulkF, finF)
	}
}

func TestUnitCapKnobTradesINLForSpeed(t *testing.T) {
	// The paper's C_u tradeoff: a 4x unit capacitor improves matching
	// (sigma_u/C_u falls as 1/sqrt(C_u)) but slows switching (more load,
	// longer wires) and quadruples area.
	pts, err := Sensitivity(core.Config{Bits: 6, Style: place.Spiral, ThetaSteps: 4},
		KnobUnitCap, []float64{1, 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].INL >= pts[0].INL {
		t.Errorf("4x C_u did not improve INL: %+v", pts)
	}
	if pts[1].F3dBHz >= pts[0].F3dBHz {
		t.Errorf("4x C_u did not slow switching: %+v", pts)
	}
}

func TestSizeForSpec(t *testing.T) {
	cfg := core.Config{Bits: 8, Style: place.Spiral, ThetaSteps: 4}
	// Baseline INL at 8-bit spiral is ~0.02 LSB; a spec just below it
	// forces upsizing, a loose one returns the base size.
	loose, err := SizeForSpec(cfg, 0.5, 16)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Factor != 1 {
		t.Errorf("loose spec sized up to %gx unnecessarily", loose.Factor)
	}
	tight, err := SizeForSpec(cfg, 0.012, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Factor <= 1 {
		t.Errorf("tight spec did not upsize: %+v", tight)
	}
	if tight.INL > 0.012 || tight.DNL > 0.012 {
		t.Errorf("sized result misses spec: %+v", tight)
	}
	if tight.AreaUm2 <= loose.AreaUm2 {
		t.Error("upsizing must cost area")
	}
	// Impossible spec errors out.
	if _, err := SizeForSpec(cfg, 1e-7, 4); err == nil {
		t.Error("unreachable spec must be rejected")
	}
	if _, err := SizeForSpec(cfg, 0, 4); err == nil {
		t.Error("zero spec must be rejected")
	}
}
