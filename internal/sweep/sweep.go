// Package sweep provides the sensitivity and ablation studies behind
// the paper's design choices: how the placement-style conclusions
// respond to via resistance, wire resistance, correlation length,
// gradient magnitude and switch resistance; and how the block-
// chessboard structure parameters (core size, block granularity) trade
// 3dB frequency against INL/DNL (the space Fig. 4 samples and the
// "best BC" selection searches).
package sweep

import (
	"context"
	"fmt"
	"math"

	"ccdac/internal/core"
	"ccdac/internal/obs"
	"ccdac/internal/place"
	"ccdac/internal/tech"
)

// Knob identifies a technology parameter scaled in a sensitivity sweep.
type Knob string

const (
	// KnobViaR scales the per-cut via resistance — the FinFET effect
	// the paper's via-avoiding placements target.
	KnobViaR Knob = "via-r"
	// KnobWireR scales every layer's wire resistance.
	KnobWireR Knob = "wire-r"
	// KnobCorrLen scales the mismatch correlation length L_c.
	KnobCorrLen Knob = "corr-len"
	// KnobGradient scales the oxide-gradient magnitude gamma.
	KnobGradient Knob = "gradient"
	// KnobSwitchR scales the driver/switch on-resistance.
	KnobSwitchR Knob = "switch-r"
	// KnobCoupling scales the sidewall coupling capacitance.
	KnobCoupling Knob = "coupling"
	// KnobUnitCap scales the unit capacitance C_u, with the cell
	// outline scaling as sqrt(factor) (MOM density is fixed). The
	// paper: "Increasing C_u can reduce these effects, at the cost of
	// increased power. Moreover, as C_u increases, so does the array
	// area, with larger routing parasitics."
	KnobUnitCap Knob = "unit-cap"
)

// Knobs lists every supported sweep knob.
func Knobs() []Knob {
	return []Knob{KnobViaR, KnobWireR, KnobCorrLen, KnobGradient, KnobSwitchR, KnobCoupling, KnobUnitCap}
}

// ScaledTech returns a copy of base with one knob scaled by factor.
func ScaledTech(base *tech.Technology, knob Knob, factor float64) (*tech.Technology, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("sweep: factor must be positive, got %g", factor)
	}
	t := *base // shallow copy; Layers slice cloned below
	t.Layers = append([]tech.Layer(nil), base.Layers...)
	switch knob {
	case KnobViaR:
		t.ViaROhm *= factor
	case KnobWireR:
		for i := range t.Layers {
			t.Layers[i].ROhmPerUm *= factor
		}
	case KnobCorrLen:
		t.Mis.LcUm *= factor
	case KnobGradient:
		t.Mis.GradientPPMPerUm *= factor
	case KnobSwitchR:
		t.SwitchROhm *= factor
	case KnobCoupling:
		t.CouplingC0fFPerUm *= factor
	case KnobUnitCap:
		t.Unit.CfF *= factor
		side := math.Sqrt(factor)
		t.Unit.W *= side
		t.Unit.H *= side
	default:
		return nil, fmt.Errorf("sweep: unknown knob %q", knob)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("sweep: scaled technology invalid: %w", err)
	}
	return &t, nil
}

// Point is one sample of a sensitivity sweep.
type Point struct {
	Factor  float64
	F3dBHz  float64
	DNL     float64
	INL     float64
	ViaCuts int
}

// Sensitivity runs the flow at each scale factor of one knob and
// collects the resulting metrics. The INL/DNL analysis is skipped for
// purely electrical knobs unless withNL is set.
func Sensitivity(cfg core.Config, knob Knob, factors []float64, withNL bool) ([]Point, error) {
	return SensitivityContext(context.Background(), cfg, knob, factors, withNL)
}

// SensitivityContext is Sensitivity under a context carrying
// cancellation and, optionally, an observability trace: each factor's
// run is recorded as a "sweep.point" span annotated with the knob and
// scale factor.
func SensitivityContext(ctx context.Context, cfg core.Config, knob Knob, factors []float64, withNL bool) ([]Point, error) {
	base := cfg.Tech
	if base == nil {
		base = tech.FinFET12()
	}
	out := make([]Point, 0, len(factors))
	for _, f := range factors {
		// With warm stage caches a point costs microseconds, so the
		// per-stage checks inside RunContext may never observe a late
		// cancellation; check once per point explicitly.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, err := ScaledTech(base, knob, f)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Tech = t
		c.SkipNL = !withNL
		sctx, span := obs.StartSpan(ctx, "sweep.point")
		span.SetAttr("knob", string(knob))
		span.SetAttr("factor", fmt.Sprintf("%g", f))
		r, err := core.RunContext(sctx, c)
		if err != nil {
			err = fmt.Errorf("sweep: factor %g: %w", f, err)
			span.Fail(err)
			span.End()
			return nil, err
		}
		span.End()
		p := Point{Factor: f, F3dBHz: r.F3dBHz, ViaCuts: r.Electrical.ViaCuts}
		if r.NL != nil {
			p.DNL, p.INL = r.NL.MaxAbsDNL, r.NL.MaxAbsINL
		}
		out = append(out, p)
	}
	return out, nil
}

// BCPoint is one block-chessboard structure's full metric set.
type BCPoint struct {
	CoreBits   int
	BlockCells int
	F3dBHz     float64
	DNL, INL   float64
	AreaUm2    float64
	ViaCuts    int
}

// BCAblation evaluates every feasible block-chessboard structure at
// one bit count — the tradeoff space of Fig. 4 and the "best BC"
// search.
func BCAblation(bits, parallel int) ([]BCPoint, error) {
	return BCAblationContext(context.Background(), bits, parallel)
}

// BCAblationContext is BCAblation under a context; each candidate
// structure appears as a "bestbc.candidate" span in an attached trace.
func BCAblationContext(ctx context.Context, bits, parallel int) ([]BCPoint, error) {
	_, all, err := core.RunBestBCContext(ctx, core.Config{Bits: bits, MaxParallel: parallel})
	if err != nil {
		return nil, err
	}
	out := make([]BCPoint, len(all))
	for i, r := range all {
		out[i] = BCPoint{
			CoreBits:   r.Config.BC.CoreBits,
			BlockCells: r.Config.BC.BlockCells,
			F3dBHz:     r.F3dBHz,
			AreaUm2:    r.Electrical.AreaUm2,
			ViaCuts:    r.Electrical.ViaCuts,
		}
		if r.NL != nil {
			out[i].DNL, out[i].INL = r.NL.MaxAbsDNL, r.NL.MaxAbsINL
		}
	}
	return out, nil
}

// ViaRStudy quantifies the paper's FinFET motivation at one bit count
// and a set of via-resistance scale factors: the spiral-vs-chessboard
// f3dB gap with and without parallel routing, and the parallel-routing
// gain itself. As vias get more resistive, parallel routing (p² via
// arrays) becomes more valuable, and the parallel-routed spiral keeps
// its advantage where the single-wire flow loses it.
type ViaRStudy struct {
	Factors []float64
	// GapParallel is f3dB(S, p=2)/f3dB([7]) per factor.
	GapParallel []float64
	// GapSingle is f3dB(S, p=1)/f3dB([7]) per factor.
	GapSingle []float64
	// ParallelGain is f3dB(S, p=2)/f3dB(S, p=1) per factor.
	ParallelGain []float64
}

// SizeResult reports the outcome of unit-capacitor sizing.
type SizeResult struct {
	// Factor is the chosen C_u scale relative to the base technology.
	Factor float64
	// CuFF is the resulting unit capacitance.
	CuFF float64
	// INL and DNL are the worst-case nonlinearities at that size.
	INL, DNL float64
	// F3dBHz and AreaUm2 are the costs paid for the matching.
	F3dBHz  float64
	AreaUm2 float64
}

// SizeForSpec finds the smallest unit capacitor (by bisection over the
// C_u scale factor, relative sigma falling as 1/sqrt(C_u)) whose
// worst-case INL and DNL meet the spec — the unit-capacitor sizing
// loop that Lin et al. [8] integrate with placement and routing. It
// returns an error when even maxFactor cannot meet the spec.
func SizeForSpec(cfg core.Config, specLSB, maxFactor float64) (*SizeResult, error) {
	if specLSB <= 0 {
		return nil, fmt.Errorf("sweep: spec must be positive")
	}
	if maxFactor < 1 {
		maxFactor = 1
	}
	eval := func(f float64) (*SizeResult, error) {
		pts, err := Sensitivity(cfg, KnobUnitCap, []float64{f}, true)
		if err != nil {
			return nil, err
		}
		base := cfg.Tech
		if base == nil {
			base = tech.FinFET12()
		}
		t, err := ScaledTech(base, KnobUnitCap, f)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Tech = t
		c.SkipNL = true
		r, err := core.Run(c)
		if err != nil {
			return nil, err
		}
		return &SizeResult{
			Factor: f, CuFF: t.Unit.CfF,
			INL: pts[0].INL, DNL: pts[0].DNL,
			F3dBHz: pts[0].F3dBHz, AreaUm2: r.Electrical.AreaUm2,
		}, nil
	}
	meets := func(r *SizeResult) bool { return r.INL <= specLSB && r.DNL <= specLSB }

	hiRes, err := eval(maxFactor)
	if err != nil {
		return nil, err
	}
	if !meets(hiRes) {
		return nil, fmt.Errorf("sweep: spec %.4g LSB unreachable even at %gx C_u (INL %.4g, DNL %.4g)",
			specLSB, maxFactor, hiRes.INL, hiRes.DNL)
	}
	loRes, err := eval(1)
	if err != nil {
		return nil, err
	}
	if meets(loRes) {
		return loRes, nil
	}
	lo, hi := 1.0, maxFactor
	best := hiRes
	for i := 0; i < 12 && hi/lo > 1.05; i++ {
		mid := math.Sqrt(lo * hi)
		r, err := eval(mid)
		if err != nil {
			return nil, err
		}
		if meets(r) {
			best, hi = r, mid
		} else {
			lo = mid
		}
	}
	return best, nil
}

// StudyViaR runs the via-resistance study.
func StudyViaR(bits int, factors []float64) (*ViaRStudy, error) {
	return StudyViaRContext(context.Background(), bits, factors)
}

// StudyViaRContext is StudyViaR under a context; each factor's three
// runs share one "sweep.point" span in an attached trace.
func StudyViaRContext(ctx context.Context, bits int, factors []float64) (*ViaRStudy, error) {
	s := &ViaRStudy{Factors: append([]float64(nil), factors...)}
	for _, f := range factors {
		// Same rationale as SensitivityContext: memoized points are too
		// fast for in-run cancellation checks to be reliable.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, err := ScaledTech(tech.FinFET12(), KnobViaR, f)
		if err != nil {
			return nil, err
		}
		sctx, span := obs.StartSpan(ctx, "sweep.point")
		span.SetAttr("knob", string(KnobViaR))
		span.SetAttr("factor", fmt.Sprintf("%g", f))
		run := func(cfg core.Config) (*core.Result, error) {
			r, err := core.RunContext(sctx, cfg)
			if err != nil {
				span.Fail(err)
			}
			return r, err
		}
		sp2, err := run(core.Config{Bits: bits, Style: place.Spiral, Tech: t, SkipNL: true, MaxParallel: 2})
		if err != nil {
			span.End()
			return nil, err
		}
		sp1, err := run(core.Config{Bits: bits, Style: place.Spiral, Tech: t, SkipNL: true})
		if err != nil {
			span.End()
			return nil, err
		}
		cb, err := run(core.Config{Bits: bits, Style: place.Chessboard, Tech: t, SkipNL: true})
		if err != nil {
			span.End()
			return nil, err
		}
		span.End()
		s.GapParallel = append(s.GapParallel, sp2.F3dBHz/cb.F3dBHz)
		s.GapSingle = append(s.GapSingle, sp1.F3dBHz/cb.F3dBHz)
		s.ParallelGain = append(s.ParallelGain, sp2.F3dBHz/sp1.F3dBHz)
	}
	return s, nil
}
