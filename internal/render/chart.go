package render

import (
	"fmt"
	"math"
	"strings"
)

// Series is one polyline of a line chart.
type Series struct {
	Name string
	X, Y []float64
}

// ChartOptions configures LineChart.
type ChartOptions struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots the y axis in log10 (values must be positive).
	LogY bool
	// W, H are the SVG dimensions (0 selects 560x360).
	W, H int
}

// LineChart renders series as a simple self-contained SVG line chart
// with axes, ticks and a legend — used for the paper's Fig. 6 plots.
func LineChart(series []Series, opt ChartOptions) string {
	w, h := opt.W, opt.H
	if w == 0 {
		w = 560
	}
	if h == 0 {
		h = 360
	}
	const ml, mr, mt, mb = 64.0, 16.0, 36.0, 48.0
	pw, ph := float64(w)-ml-mr, float64(h)-mt-mb

	// Data ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	yv := func(v float64) float64 {
		if opt.LogY {
			return math.Log10(math.Max(v, 1e-300))
		}
		return v
	}
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, yv(s.Y[i]))
			maxY = math.Max(maxY, yv(s.Y[i]))
		}
	}
	if minX > maxX || minY > maxY {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	toX := func(x float64) float64 { return ml + (x-minX)/(maxX-minX)*pw }
	toY := func(y float64) float64 { return mt + ph - (yv(y)-minY)/(maxY-minY)*ph }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<text x="%g" y="20" font-size="13">%s</text>`+"\n", ml, escape(opt.Title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n", ml, mt+ph, ml+pw, mt+ph)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n", ml, mt, ml, mt+ph)
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="11" text-anchor="middle">%s</text>`+"\n",
		ml+pw/2, float64(h)-10, escape(opt.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" font-size="11" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
		mt+ph/2, mt+ph/2, escape(opt.YLabel))
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		px := toX(fx)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n", px, mt+ph, px, mt+ph+4)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px, mt+ph+16, fmtTick(fx))
		fyLog := minY + (maxY-minY)*float64(i)/4
		fy := fyLog
		if opt.LogY {
			fy = math.Pow(10, fyLog)
		}
		py := mt + ph - (fyLog-minY)/(maxY-minY)*ph
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n", ml-4, py, ml, py)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="10" text-anchor="end">%s</text>`+"\n",
			ml-7, py+3, fmtTick(fy))
	}
	// Series.
	for si, s := range series {
		color := CapColor(si)
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", toX(s.X[i]), toY(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="2.4" fill="%s"/>`+"\n", toX(s.X[i]), toY(s.Y[i]), color)
		}
		// Legend.
		lx, ly := ml+pw-110, mt+12+float64(si)*16
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+18, ly-4, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="11">%s</text>`+"\n", lx+24, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000 || (av < 0.01 && av > 0):
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
