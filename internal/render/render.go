// Package render draws placements and routed layouts as ASCII art and
// SVG, reproducing the visual artifacts of the paper's Figs. 2-5
// (placement styles, connected-group routing, block-chessboard
// granularities, and routed chessboard-vs-spiral comparisons).
package render

import (
	"fmt"
	"sort"
	"strings"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
	"ccdac/internal/route"
)

// palette assigns each capacitor a stable fill color (index modulo).
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
	"#86bcb6", "#d37295", "#fabfd2",
}

// CapColor returns the SVG fill color for capacitor bit (or dummies).
func CapColor(bit int) string {
	if bit < 0 {
		return "#dddddd"
	}
	return palette[bit%len(palette)]
}

// ASCIIPlacement renders a placement as fixed-width text with the top
// row first, hex capacitor indices, and 'd' for dummies — the textual
// analogue of the paper's Fig. 2.
func ASCIIPlacement(m *ccmatrix.Matrix) string {
	return m.String()
}

// SVGPlacement renders a placement-only view (no routing): one square
// per unit cell colored by capacitor, with index labels.
func SVGPlacement(m *ccmatrix.Matrix, title string) string {
	const cell = 28.0
	const pad = 10.0
	w := pad*2 + cell*float64(m.Cols)
	h := pad*2 + cell*float64(m.Rows) + 18
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<text x="%.0f" y="14" font-family="sans-serif" font-size="12">%s</text>`+"\n", pad, escape(title))
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			bit := m.At(geom.Cell{Row: r, Col: c})
			// Row 0 is the bottom row: flip y for screen coordinates.
			x := pad + cell*float64(c)
			y := 18 + pad + cell*float64(m.Rows-1-r)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333" stroke-width="0.5"/>`+"\n",
				x, y, cell, cell, CapColor(bit))
			label := "d"
			if bit >= 0 {
				label = fmt.Sprintf("%d", bit)
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
				x+cell/2, y+cell/2+3, label)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// SVGLayout renders a routed layout: unit cells colored by capacitor,
// bottom-plate wires in black (width scaled by parallel count),
// top-plate wires in red, and vias as dots — the analogue of the
// paper's Figs. 3 and 5.
func SVGLayout(l *route.Layout, title string) string {
	scale := 18.0 / l.Tech.Unit.W // pixels per micron
	pad := 12.0
	w := pad*2 + l.Width*scale
	h := pad*2 + l.Height*scale + 18
	toX := func(x float64) float64 { return pad + x*scale }
	toY := func(y float64) float64 { return 18 + pad + (l.Height-y)*scale }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<text x="%.0f" y="14" font-family="sans-serif" font-size="12">%s</text>`+"\n", pad, escape(title))

	// Unit cells.
	halfW := l.Tech.Unit.W / 2 * scale
	halfH := l.Tech.Unit.H / 2 * scale
	for r := 0; r < l.M.Rows; r++ {
		for c := 0; c < l.M.Cols; c++ {
			cell := geom.Cell{Row: r, Col: c}
			bit := l.M.At(cell)
			p := l.CellCenter(cell)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.75" stroke="#444" stroke-width="0.4"/>`+"\n",
				toX(p.X)-halfW, toY(p.Y)-halfH, 2*halfW, 2*halfH, CapColor(bit))
		}
	}
	// Bottom-plate wires (black) and top-plate wires (red).
	for _, wire := range l.Wires {
		color := "#111111"
		width := 0.8 + 0.6*float64(wire.Par-1)
		if wire.Bit == route.TopPlateBit {
			color = "#cc2222"
			width = 0.8
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
			toX(wire.Seg.A.X), toY(wire.Seg.A.Y), toX(wire.Seg.B.X), toY(wire.Seg.B.Y), color, width)
	}
	// Vias.
	for _, v := range l.Vias {
		fill := "#222222"
		if v.Input {
			fill = "#1166cc"
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n",
			toX(v.At.X), toY(v.At.Y), 1.2+0.6*float64(v.Par-1), fill)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// GroupsSummary describes the connected capacitor groups of a layout
// as text (the content of Fig. 3(a)'s shading).
func GroupsSummary(l *route.Layout) string {
	var b strings.Builder
	for bit, list := range l.Groups {
		sizes := make([]int, len(list))
		for i, g := range list {
			sizes[i] = g.Size()
		}
		sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
		fmt.Fprintf(&b, "C_%d: %d group(s), sizes %v\n", bit, len(list), sizes)
	}
	return b.String()
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
