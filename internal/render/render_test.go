package render

import (
	"strings"
	"testing"

	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
)

func TestCapColorStable(t *testing.T) {
	if CapColor(-1) != "#dddddd" {
		t.Error("dummy color wrong")
	}
	if CapColor(0) == CapColor(1) {
		t.Error("adjacent capacitors share a color")
	}
	if CapColor(3) != CapColor(3) {
		t.Error("color not stable")
	}
	// Modulo wrap must not panic for large indices.
	_ = CapColor(999)
}

func TestSVGPlacementWellFormed(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	svg := SVGPlacement(m, "spiral <6-bit> & test")
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	// One rect per cell.
	if got := strings.Count(svg, "<rect"); got != 64 {
		t.Errorf("rects = %d, want 64", got)
	}
	// Title is escaped.
	if strings.Contains(svg, "<6-bit>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;6-bit&gt; &amp; test") {
		t.Error("escaped title missing")
	}
}

func TestSVGLayoutWellFormed(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		t.Fatal(err)
	}
	svg := SVGLayout(l, "routed")
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<rect") != 64 {
		t.Errorf("cell rects = %d, want 64", strings.Count(svg, "<rect"))
	}
	if strings.Count(svg, "<line") != len(l.Wires) {
		t.Errorf("lines = %d, want %d wires", strings.Count(svg, "<line"), len(l.Wires))
	}
	if strings.Count(svg, "<circle") != len(l.Vias) {
		t.Errorf("circles = %d, want %d vias", strings.Count(svg, "<circle"), len(l.Vias))
	}
	// Top-plate wires drawn in red.
	if !strings.Contains(svg, "#cc2222") {
		t.Error("no top-plate (red) wires rendered")
	}
}

func TestASCIIPlacement(t *testing.T) {
	m, err := place.NewChessboard(6)
	if err != nil {
		t.Fatal(err)
	}
	txt := ASCIIPlacement(m)
	lines := strings.Split(strings.TrimRight(txt, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("rows = %d, want 8", len(lines))
	}
	// MSB on black squares: the 6 digit must appear 32 times.
	if got := strings.Count(txt, "6"); got != 32 {
		t.Errorf("MSB cells rendered %d times, want 32", got)
	}
}

func TestGroupsSummary(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := GroupsSummary(l)
	for bit := 0; bit <= 6; bit++ {
		if !strings.Contains(s, "C_"+string(rune('0'+bit))+":") {
			t.Errorf("summary missing C_%d", bit)
		}
	}
}

func TestLineChartBasics(t *testing.T) {
	series := []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{2, 2, 2}},
	}
	svg := LineChart(series, ChartOptions{Title: "t <1>", XLabel: "x", YLabel: "y"})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polylines = %d, want 2", strings.Count(svg, "<polyline"))
	}
	// 3 markers per series + legend swatches.
	if strings.Count(svg, "<circle") != 6 {
		t.Errorf("markers = %d, want 6", strings.Count(svg, "<circle"))
	}
	if strings.Contains(svg, "t <1>") {
		t.Error("title not escaped")
	}
}

func TestLineChartLogY(t *testing.T) {
	series := []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{1, 1000}}}
	svg := LineChart(series, ChartOptions{LogY: true})
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("log chart missing series")
	}
	// Degenerate/empty input must not panic and still emit a frame.
	empty := LineChart(nil, ChartOptions{})
	if !strings.HasPrefix(empty, "<svg") {
		t.Fatal("empty chart not an SVG")
	}
	flat := LineChart([]Series{{Name: "f", X: []float64{1}, Y: []float64{5}}}, ChartOptions{})
	if !strings.Contains(flat, "<circle") {
		t.Fatal("single-point series lost")
	}
}
