// Package geom provides the small geometric vocabulary shared by the
// common-centroid placement and routing engines: integer grid cells,
// micron-denominated points and rectangles, and Manhattan wire segments
// on reserved-direction metal layers.
//
// Two coordinate systems coexist:
//
//   - Grid coordinates (Cell): integer (Row, Col) indices into the
//     common-centroid matrix. Row 0 is the bottom row of the array,
//     adjacent to the switch/driver cluster.
//   - Physical coordinates (Pt): microns, x to the right, y upward,
//     with the origin at the lower-left corner of the placed array.
//
// The conversion between the two is owned by the router (it depends on
// channel widths), not by this package.
package geom

import (
	"fmt"
	"math"
)

// Cell is a position in the common-centroid matrix: integer row and
// column indices. Row 0 is the bottom row (closest to the drivers).
type Cell struct {
	Row, Col int
}

// Add returns the cell offset by (dr, dc).
func (c Cell) Add(dr, dc int) Cell { return Cell{c.Row + dr, c.Col + dc} }

// Reflect returns the point reflection of c through the center of an
// rows×cols array: (i, j) -> (rows-1-i, cols-1-j). This is the symmetry
// operation that preserves the common-centroid property.
func (c Cell) Reflect(rows, cols int) Cell {
	return Cell{rows - 1 - c.Row, cols - 1 - c.Col}
}

// In reports whether c lies inside an rows×cols array.
func (c Cell) In(rows, cols int) bool {
	return c.Row >= 0 && c.Row < rows && c.Col >= 0 && c.Col < cols
}

// Manhattan returns the L1 grid distance between two cells.
func (c Cell) Manhattan(o Cell) int {
	return absInt(c.Row-o.Row) + absInt(c.Col-o.Col)
}

// Euclid returns the Euclidean grid distance between two cells.
func (c Cell) Euclid(o Cell) float64 {
	dr := float64(c.Row - o.Row)
	dc := float64(c.Col - o.Col)
	return math.Hypot(dr, dc)
}

func (c Cell) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Neighbors4 returns the up/down/left/right neighbors of c that lie
// inside an rows×cols array, in deterministic order (N, S, W, E as
// row/col deltas (+1,0), (-1,0), (0,-1), (0,+1)).
func (c Cell) Neighbors4(rows, cols int) []Cell {
	deltas := [4][2]int{{1, 0}, {-1, 0}, {0, -1}, {0, 1}}
	out := make([]Cell, 0, 4)
	for _, d := range deltas {
		n := c.Add(d[0], d[1])
		if n.In(rows, cols) {
			out = append(out, n)
		}
	}
	return out
}

// Pt is a physical point in microns.
type Pt struct {
	X, Y float64
}

// Dist returns the Euclidean distance in microns.
func (p Pt) Dist(o Pt) float64 { return math.Hypot(p.X-o.X, p.Y-o.Y) }

// ManhattanDist returns the L1 distance in microns.
func (p Pt) ManhattanDist(o Pt) float64 {
	return math.Abs(p.X-o.X) + math.Abs(p.Y-o.Y)
}

func (p Pt) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle in microns. Lo is the lower-left
// corner, Hi the upper-right. A Rect with Hi < Lo in either axis is
// considered empty.
type Rect struct {
	Lo, Hi Pt
}

// RectOf returns the rectangle spanning the two corner points in any order.
func RectOf(a, b Pt) Rect {
	return Rect{
		Lo: Pt{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Hi: Pt{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// W returns the rectangle width in microns (0 if empty).
func (r Rect) W() float64 { return math.Max(0, r.Hi.X-r.Lo.X) }

// H returns the rectangle height in microns (0 if empty).
func (r Rect) H() float64 { return math.Max(0, r.Hi.Y-r.Lo.Y) }

// Area returns the rectangle area in square microns.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the rectangle center point.
func (r Rect) Center() Pt { return Pt{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2} }

// Union returns the bounding rectangle of r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Lo: Pt{math.Min(r.Lo.X, o.Lo.X), math.Min(r.Lo.Y, o.Lo.Y)},
		Hi: Pt{math.Max(r.Hi.X, o.Hi.X), math.Max(r.Hi.Y, o.Hi.Y)},
	}
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// Dir is a routing direction on a reserved-direction metal layer.
type Dir int

const (
	// Horizontal wires run along x (constant y).
	Horizontal Dir = iota
	// Vertical wires run along y (constant x).
	Vertical
)

func (d Dir) String() string {
	if d == Horizontal {
		return "horizontal"
	}
	return "vertical"
}

// Seg is a Manhattan wire segment in microns. A and B must share either
// X (vertical segment) or Y (horizontal segment); a zero-length segment
// is permitted (used for via landing pads).
type Seg struct {
	A, B Pt
}

// Len returns the segment length in microns.
func (s Seg) Len() float64 { return s.A.ManhattanDist(s.B) }

// Dir returns the direction of the segment. Zero-length segments report
// Horizontal.
func (s Seg) Dir() Dir {
	if s.A.X == s.B.X && s.A.Y != s.B.Y {
		return Vertical
	}
	return Horizontal
}

// IsManhattan reports whether the segment is axis-aligned.
func (s Seg) IsManhattan() bool { return s.A.X == s.B.X || s.A.Y == s.B.Y }

// OverlapLen returns the length over which two parallel segments run
// side by side (the projection overlap on their common axis). Segments
// with different directions, or non-Manhattan segments, overlap 0.
// This is the l_overlap of the coupling-capacitance model c_c(s)·l_overlap
// (paper Sec. II-B).
func (s Seg) OverlapLen(o Seg) float64 {
	if !s.IsManhattan() || !o.IsManhattan() || s.Dir() != o.Dir() {
		return 0
	}
	var aLo, aHi, bLo, bHi float64
	if s.Dir() == Vertical {
		aLo, aHi = math.Min(s.A.Y, s.B.Y), math.Max(s.A.Y, s.B.Y)
		bLo, bHi = math.Min(o.A.Y, o.B.Y), math.Max(o.A.Y, o.B.Y)
	} else {
		aLo, aHi = math.Min(s.A.X, s.B.X), math.Max(s.A.X, s.B.X)
		bLo, bHi = math.Min(o.A.X, o.B.X), math.Max(o.A.X, o.B.X)
	}
	return math.Max(0, math.Min(aHi, bHi)-math.Max(aLo, bLo))
}

// Separation returns the perpendicular distance between two parallel
// Manhattan segments (the coupling spacing s in c_c(s)). It returns
// +Inf for non-parallel segments.
func (s Seg) Separation(o Seg) float64 {
	if !s.IsManhattan() || !o.IsManhattan() || s.Dir() != o.Dir() {
		return math.Inf(1)
	}
	if s.Dir() == Vertical {
		return math.Abs(s.A.X - o.A.X)
	}
	return math.Abs(s.A.Y - o.A.Y)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
