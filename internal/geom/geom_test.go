package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCellReflect(t *testing.T) {
	tests := []struct {
		c          Cell
		rows, cols int
		want       Cell
	}{
		{Cell{0, 0}, 8, 8, Cell{7, 7}},
		{Cell{3, 4}, 8, 8, Cell{4, 3}},
		{Cell{7, 7}, 8, 8, Cell{0, 0}},
		{Cell{0, 0}, 23, 23, Cell{22, 22}},
		{Cell{11, 11}, 23, 23, Cell{11, 11}}, // exact center of odd array
	}
	for _, tt := range tests {
		if got := tt.c.Reflect(tt.rows, tt.cols); got != tt.want {
			t.Errorf("Reflect%v in %dx%d = %v, want %v", tt.c, tt.rows, tt.cols, got, tt.want)
		}
	}
}

func TestCellReflectInvolution(t *testing.T) {
	f := func(row, col uint8, rowsRaw, colsRaw uint8) bool {
		rows := int(rowsRaw%30) + 1
		cols := int(colsRaw%30) + 1
		c := Cell{int(row) % rows, int(col) % cols}
		return c.Reflect(rows, cols).Reflect(rows, cols) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellReflectStaysInside(t *testing.T) {
	f := func(row, col uint8, rowsRaw, colsRaw uint8) bool {
		rows := int(rowsRaw%30) + 1
		cols := int(colsRaw%30) + 1
		c := Cell{int(row) % rows, int(col) % cols}
		return c.Reflect(rows, cols).In(rows, cols)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellIn(t *testing.T) {
	if !(Cell{0, 0}).In(1, 1) {
		t.Error("origin should be inside 1x1")
	}
	if (Cell{1, 0}).In(1, 1) {
		t.Error("(1,0) should be outside 1x1")
	}
	if (Cell{-1, 0}).In(4, 4) {
		t.Error("negative row should be outside")
	}
	if (Cell{0, 4}).In(4, 4) {
		t.Error("col == cols should be outside")
	}
}

func TestCellManhattanAndEuclid(t *testing.T) {
	a, b := Cell{0, 0}, Cell{3, 4}
	if got := a.Manhattan(b); got != 7 {
		t.Errorf("Manhattan = %d, want 7", got)
	}
	if got := a.Euclid(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Euclid = %g, want 5", got)
	}
	if a.Manhattan(b) != b.Manhattan(a) {
		t.Error("Manhattan distance must be symmetric")
	}
}

func TestNeighbors4(t *testing.T) {
	// Corner cell has 2 neighbors.
	if got := (Cell{0, 0}).Neighbors4(4, 4); len(got) != 2 {
		t.Errorf("corner neighbors = %d, want 2", len(got))
	}
	// Edge cell has 3.
	if got := (Cell{0, 1}).Neighbors4(4, 4); len(got) != 3 {
		t.Errorf("edge neighbors = %d, want 3", len(got))
	}
	// Interior cell has 4.
	if got := (Cell{1, 1}).Neighbors4(4, 4); len(got) != 4 {
		t.Errorf("interior neighbors = %d, want 4", len(got))
	}
	// All neighbors are at Manhattan distance 1.
	for _, n := range (Cell{2, 2}).Neighbors4(5, 5) {
		if (Cell{2, 2}).Manhattan(n) != 1 {
			t.Errorf("neighbor %v not at distance 1", n)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := RectOf(Pt{3, 4}, Pt{1, 2})
	if r.Lo != (Pt{1, 2}) || r.Hi != (Pt{3, 4}) {
		t.Fatalf("RectOf did not normalize corners: %+v", r)
	}
	if got := r.W(); got != 2 {
		t.Errorf("W = %g, want 2", got)
	}
	if got := r.H(); got != 2 {
		t.Errorf("H = %g, want 2", got)
	}
	if got := r.Area(); got != 4 {
		t.Errorf("Area = %g, want 4", got)
	}
	if got := r.Center(); got != (Pt{2, 3}) {
		t.Errorf("Center = %v, want (2,3)", got)
	}
	if !r.Contains(Pt{2, 3}) || !r.Contains(Pt{1, 2}) {
		t.Error("Contains should include interior and boundary")
	}
	if r.Contains(Pt{0, 0}) {
		t.Error("Contains should exclude outside points")
	}
}

func TestRectUnion(t *testing.T) {
	a := RectOf(Pt{0, 0}, Pt{1, 1})
	b := RectOf(Pt{2, 2}, Pt{3, 3})
	u := a.Union(b)
	if u.Lo != (Pt{0, 0}) || u.Hi != (Pt{3, 3}) {
		t.Errorf("Union = %+v", u)
	}
}

func TestSegDirAndLen(t *testing.T) {
	h := Seg{Pt{0, 0}, Pt{5, 0}}
	v := Seg{Pt{1, 1}, Pt{1, 4}}
	z := Seg{Pt{2, 2}, Pt{2, 2}}
	if h.Dir() != Horizontal || v.Dir() != Vertical || z.Dir() != Horizontal {
		t.Error("segment direction misclassified")
	}
	if h.Len() != 5 || v.Len() != 3 || z.Len() != 0 {
		t.Error("segment length wrong")
	}
	if !h.IsManhattan() || !v.IsManhattan() {
		t.Error("axis-aligned segments must be Manhattan")
	}
	if (Seg{Pt{0, 0}, Pt{1, 1}}).IsManhattan() {
		t.Error("diagonal segment must not be Manhattan")
	}
}

func TestSegOverlapLen(t *testing.T) {
	a := Seg{Pt{0, 0}, Pt{0, 10}}
	b := Seg{Pt{1, 5}, Pt{1, 20}}
	if got := a.OverlapLen(b); got != 5 {
		t.Errorf("overlap = %g, want 5", got)
	}
	if got := b.OverlapLen(a); got != 5 {
		t.Errorf("overlap must be symmetric, got %g", got)
	}
	c := Seg{Pt{1, 11}, Pt{1, 20}}
	if got := a.OverlapLen(c); got != 0 {
		t.Errorf("disjoint spans overlap = %g, want 0", got)
	}
	// Perpendicular segments never couple.
	d := Seg{Pt{0, 0}, Pt{10, 0}}
	if got := a.OverlapLen(d); got != 0 {
		t.Errorf("perpendicular overlap = %g, want 0", got)
	}
}

func TestSegSeparation(t *testing.T) {
	a := Seg{Pt{0, 0}, Pt{0, 10}}
	b := Seg{Pt{0.064, 2}, Pt{0.064, 8}}
	if got := a.Separation(b); math.Abs(got-0.064) > 1e-12 {
		t.Errorf("separation = %g, want 0.064", got)
	}
	d := Seg{Pt{0, 0}, Pt{10, 0}}
	if got := a.Separation(d); !math.IsInf(got, 1) {
		t.Errorf("perpendicular separation = %g, want +Inf", got)
	}
}

func TestPtDistances(t *testing.T) {
	a, b := Pt{0, 0}, Pt{3, 4}
	if got := a.Dist(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := a.ManhattanDist(b); math.Abs(got-7) > 1e-12 {
		t.Errorf("ManhattanDist = %g, want 7", got)
	}
}

func TestOverlapLenProperty(t *testing.T) {
	// Overlap is symmetric and never exceeds either segment's length.
	f := func(y0, y1, y2, y3 int8) bool {
		a := Seg{Pt{0, float64(y0)}, Pt{0, float64(y1)}}
		b := Seg{Pt{1, float64(y2)}, Pt{1, float64(y3)}}
		ov := a.OverlapLen(b)
		return ov == b.OverlapLen(a) && ov <= a.Len()+1e-12 && ov <= b.Len()+1e-12 && ov >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
