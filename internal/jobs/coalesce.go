// Compatibility micro-batching: a time- and size-bounded coalescer.
// Submitted jobs sharing a prefix key wait up to maxWait for company;
// a group flushes early when it reaches maxBatch. This generalizes the
// serve cache's singleflight — which only merges a request with an
// already-running identical one — to merging *queued* work that is
// merely compatible: same expensive prefix, different cheap tails.
package jobs

import (
	"sync"
	"time"
)

type pendingGroup struct {
	g     *group
	timer *time.Timer
}

type coalescer struct {
	mu       sync.Mutex
	maxBatch int
	maxWait  time.Duration
	pending  map[string]*pendingGroup
	flush    func(*group)
	closed   bool
}

func newCoalescer(maxBatch int, maxWait time.Duration, flush func(*group)) *coalescer {
	return &coalescer{
		maxBatch: maxBatch,
		maxWait:  maxWait,
		pending:  make(map[string]*pendingGroup),
		flush:    flush,
	}
}

// submit routes one job toward the queue. Non-coalescable jobs
// (key == "") and degenerate configurations flush immediately as
// singleton groups; coalescable jobs join or open a pending group
// under key+class. Groups never mix priority classes: a background
// job must not ride an interactive group past the queue's ordering.
func (c *coalescer) submit(st *jobState, key string, class int) {
	if key == "" || c.maxBatch <= 1 || c.maxWait <= 0 {
		c.flush(&group{key: key, class: class, items: []*jobState{st}})
		return
	}
	id := key + "/" + string(rune('0'+class))
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.flush(&group{key: key, class: class, items: []*jobState{st}})
		return
	}
	pg, ok := c.pending[id]
	if !ok {
		pg = &pendingGroup{g: &group{key: key, class: class}}
		c.pending[id] = pg
		pg.timer = time.AfterFunc(c.maxWait, func() { c.fire(id, pg) })
	}
	pg.g.items = append(pg.g.items, st)
	if len(pg.g.items) >= c.maxBatch {
		delete(c.pending, id)
		pg.timer.Stop()
		g := pg.g
		c.mu.Unlock()
		c.flush(g)
		return
	}
	c.mu.Unlock()
}

// fire is the maxWait deadline: flush whatever the group gathered.
// The pg identity check defuses the race where the size bound already
// flushed this group and a new one reused the id.
func (c *coalescer) fire(id string, pg *pendingGroup) {
	c.mu.Lock()
	if c.pending[id] != pg {
		c.mu.Unlock()
		return
	}
	delete(c.pending, id)
	g := pg.g
	c.mu.Unlock()
	c.flush(g)
}

// drain flushes every pending group immediately (shutdown path).
func (c *coalescer) drain() {
	c.mu.Lock()
	c.closed = true
	pend := c.pending
	c.pending = make(map[string]*pendingGroup)
	c.mu.Unlock()
	for _, pg := range pend {
		pg.timer.Stop()
		c.flush(pg.g)
	}
}
