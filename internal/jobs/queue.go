// Bounded priority queue. Capacity is reserved per job at submission —
// before the coalescer holds it — so the overflow decision sees every
// job that has been accepted and not yet started, and a full queue is
// an immediate, honest 429 rather than unbounded buffering. Groups are
// dequeued highest priority class first, FIFO within a class.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by queue operations after Close.
var ErrClosed = errors.New("jobs: manager closed")

// OverflowError reports a submission rejected by the bounded queue.
// The serve layer maps it to 429 with a Retry-After header.
type OverflowError struct {
	// Depth is the number of jobs accepted and not yet started.
	Depth int
	// RetryAfter estimates when capacity frees: queue depth × rolling
	// mean per-job seconds / worker count.
	RetryAfter time.Duration
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("jobs: queue full (%d jobs pending); retry in %s", e.Depth, e.RetryAfter)
}

// group is one unit of dispatch: a coalesced set of compatible jobs
// (or a single job for anything non-coalescable).
type group struct {
	key   string // prefix key; "" for non-coalescable jobs
	class int
	items []*jobState
}

type queue struct {
	mu     sync.Mutex
	cap    int
	depth  int // reserved jobs: pending in the coalescer + queued here
	groups [numClasses][]*group
	wake   chan struct{}
	closed bool
}

func newQueue(capacity int) *queue {
	return &queue{cap: capacity, wake: make(chan struct{}, 1)}
}

// reserve claims capacity for one incoming job. retryAfter converts
// the current depth into the overflow hint (it runs under the queue
// lock; keep it cheap).
func (q *queue) reserve(retryAfter func(depth int) time.Duration) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.depth >= q.cap {
		return &OverflowError{Depth: q.depth, RetryAfter: retryAfter(q.depth)}
	}
	q.depth++
	return nil
}

// forceReserve claims capacity unconditionally — recovery re-enqueues
// persisted jobs and must never drop one to an overflow race.
func (q *queue) forceReserve() {
	q.mu.Lock()
	q.depth++
	q.mu.Unlock()
}

// push enqueues a flushed group and wakes the dispatcher. The group's
// jobs already hold reservations from reserve.
func (q *queue) push(g *group) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.groups[g.class] = append(q.groups[g.class], g)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// pop dequeues the next group — highest priority class first — and
// releases its jobs' reservations (they are now running, not queued).
// It blocks until a group is available, the context is canceled, or
// the queue closes.
func (q *queue) pop(ctx context.Context) (*group, error) {
	for {
		q.mu.Lock()
		for class := 0; class < numClasses; class++ {
			if len(q.groups[class]) > 0 {
				g := q.groups[class][0]
				q.groups[class] = q.groups[class][1:]
				q.depth -= len(g.items)
				q.mu.Unlock()
				return g, nil
			}
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-q.wake:
		}
	}
}

// len reports the reserved-job depth (the queue_depth gauge).
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// close stops the queue: pending groups are abandoned (a durable
// manager re-enqueues them from persisted records at next boot).
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}
