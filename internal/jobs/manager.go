package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"ccdac"
	"ccdac/internal/core"
	"ccdac/internal/dacmodel"
	"ccdac/internal/memo"
	"ccdac/internal/obs"
	"ccdac/internal/par"
	"ccdac/internal/variation"
	"ccdac/internal/yield"
)

// ErrNotFound is returned by Get/Cancel/Wait for unknown job IDs.
var ErrNotFound = errors.New("jobs: no such job")

// Options configures a Manager.
type Options struct {
	// Workers is the job worker pool size — concurrently running
	// groups, decoupled from the HTTP admission budget (default 2).
	Workers int
	// QueueDepth bounds accepted-but-not-started jobs (default 64);
	// submissions beyond it fail with *OverflowError.
	QueueDepth int
	// MaxBatch caps a compatibility group; MaxWait bounds how long the
	// first job of a group waits for company (defaults 16, 25ms).
	// MaxBatch <= 1 disables coalescing.
	MaxBatch int
	MaxWait  time.Duration
	// CheckpointEvery is the default sample-block size between durable
	// checkpoints of yield jobs (default 50000); Spec.CheckpointEvery
	// overrides per job.
	CheckpointEvery int
	// ComputeWorkers is the intra-job parallelism budget (0 =
	// GOMAXPROCS) — orthogonal to Workers, which counts jobs.
	ComputeWorkers int
	// Memo enables the process-global stage caches for job runs.
	Memo bool
	// Bus, when set, receives every job trace's span/counter events —
	// the feed behind GET /v1/jobs/{id}/events.
	Bus *obs.Bus
	// Registry, when set, accumulates job trace metrics at merge time
	// (the scrape-time /metrics source).
	Registry *obs.Registry
	// Persist, when set, receives job records and checkpoints.
	Persist Persist
	// Logger receives persistence and lifecycle diagnostics.
	Logger *log.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 16
	}
	if o.MaxWait == 0 {
		o.MaxWait = 25 * time.Millisecond
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 50000
	}
	return o
}

// jobState is the manager-internal mutable record behind one Job.
type jobState struct {
	mu       sync.Mutex
	job      Job
	canceled bool // user asked; distinguishes cancel from failure
	done     chan struct{}

	ctx      context.Context // canceled by Cancel and by Close
	cancel   context.CancelFunc
	enqueued time.Time
	resumeCk *Checkpoint // restart point installed by Restore
}

func (st *jobState) snapshot() Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.job
}

// Stats is a point-in-time snapshot of the tier's health — the source
// of the ccdac_jobs_* gauges.
type Stats struct {
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	Workers    int `json:"workers"`
	// MeanJobSeconds and MeanQueueWaitSeconds are EWMA estimates; the
	// first drives Retry-After on overflow.
	MeanJobSeconds       float64 `json:"mean_job_seconds"`
	MeanQueueWaitSeconds float64 `json:"mean_queue_wait_seconds"`

	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Overflow  int64 `json:"overflow"`
	// Groups counts dispatched units; Coalesced counts jobs that ran
	// in them, so Coalesced−Groups = PrefixRunsSaved is the number of
	// expensive place→route→extract→covariance runs micro-batching
	// avoided.
	Groups          int64 `json:"groups"`
	Coalesced       int64 `json:"coalesced"`
	PrefixRunsSaved int64 `json:"prefix_runs_saved"`
	Checkpoints     int64 `json:"checkpoints"`
	Resumed         int64 `json:"resumed"`
}

// Manager owns the queue, the coalescer and the worker pool.
type Manager struct {
	opts Options
	q    *queue
	co   *coalescer

	ctx       context.Context
	cancel    context.CancelFunc
	sem       chan struct{} // worker slots; shared with Do
	wg        sync.WaitGroup
	startOnce sync.Once // dispatcher starts on first submission

	mu    sync.Mutex
	jobs  map[string]*jobState
	stats Stats

	ewmaMu      sync.Mutex
	meanJobSec  float64
	meanWaitSec float64
}

// New builds a manager. The dispatcher goroutine starts lazily on the
// first submission and runs until Close, so an idle manager costs
// nothing and leaks nothing.
func New(opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		opts: opts,
		q:    newQueue(opts.QueueDepth),
		jobs: make(map[string]*jobState),
		sem:  make(chan struct{}, opts.Workers),
	}
	m.co = newCoalescer(opts.MaxBatch, opts.MaxWait, m.q.push)
	m.ctx, m.cancel = context.WithCancel(context.Background())
	return m
}

func (m *Manager) start() {
	m.startOnce.Do(func() {
		m.wg.Add(1)
		go m.dispatch()
	})
}

// Submit validates, reserves queue capacity, and routes the job
// through the coalescer. It returns the queued record, an
// *OverflowError when the queue is full, or a validation error.
func (m *Manager) Submit(spec Spec) (Job, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	class, err := spec.class()
	if err != nil {
		return Job{}, err
	}
	if err := m.q.reserve(m.retryAfter); err != nil {
		var oe *OverflowError
		if errors.As(err, &oe) {
			m.mu.Lock()
			m.stats.Overflow++
			m.mu.Unlock()
		}
		return Job{}, err
	}
	st := &jobState{
		job: Job{
			ID:        newJobID(),
			Spec:      spec,
			State:     StateQueued,
			CreatedMS: nowMS(),
		},
		done:     make(chan struct{}),
		enqueued: time.Now(),
	}
	st.ctx, st.cancel = context.WithCancel(m.ctx)
	m.start()
	m.mu.Lock()
	m.jobs[st.job.ID] = st
	m.stats.Submitted++
	m.mu.Unlock()
	j := st.snapshot()
	m.persistJob(j)
	m.co.submit(st, coalesceKey(spec), class)
	return j, nil
}

// coalesceKey: only yield jobs batch; generate jobs are always solo.
func coalesceKey(spec Spec) string {
	if spec.Kind == KindYield {
		return spec.prefixKey()
	}
	return ""
}

// Get returns the current record of a job.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	return st.snapshot(), true
}

// Cancel requests cancellation. A queued job becomes canceled
// immediately; a running one is interrupted via its context and
// reports canceled when it stops. Terminal jobs are unaffected.
func (m *Manager) Cancel(id string) (Job, bool) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	var j Job
	canceledNow := false
	st.mu.Lock()
	if !st.job.State.Terminal() {
		st.canceled = true
		if st.job.State == StateQueued {
			st.job.State = StateCanceled
			st.job.FinishedMS = nowMS()
			close(st.done)
			canceledNow = true
		}
	}
	j = st.job
	st.mu.Unlock()
	st.cancel()
	if canceledNow {
		m.mu.Lock()
		m.stats.Canceled++
		m.mu.Unlock()
		m.persistJob(j)
	}
	return j, true
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (Job, error) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, ErrNotFound
	}
	select {
	case <-st.done:
		return st.snapshot(), nil
	case <-ctx.Done():
		return st.snapshot(), ctx.Err()
	}
}

// Do runs f under the job tier's worker budget — the admission path
// for synchronous work (batch fan-out) that must share the pool
// instead of oversubscribing the host.
func (m *Manager) Do(ctx context.Context, f func() error) error {
	select {
	case m.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	case <-m.ctx.Done():
		return ErrClosed
	}
	defer func() { <-m.sem }()
	return f()
}

// Restore re-installs a persisted job record at boot. Terminal jobs
// become read-only history; non-terminal ones re-enqueue, resuming
// from ck when given (the crash-recovery path).
func (m *Manager) Restore(j Job, ck *Checkpoint) {
	j.Spec = j.Spec.withDefaults()
	if j.State.Terminal() {
		st := &jobState{job: j, done: make(chan struct{}), cancel: func() {}}
		st.ctx = m.ctx
		close(st.done)
		m.mu.Lock()
		m.jobs[j.ID] = st
		m.mu.Unlock()
		return
	}
	class, err := j.Spec.class()
	if err != nil {
		class = classBatch
	}
	j.State = StateQueued
	j.Resumed = true
	j.StartedMS, j.Error = 0, ""
	if ck != nil {
		j.DoneSamples = ck.Done
		j.Checkpoints = ck.Seq
	}
	st := &jobState{
		job:      j,
		done:     make(chan struct{}),
		enqueued: time.Now(),
		resumeCk: ck,
	}
	st.ctx, st.cancel = context.WithCancel(m.ctx)
	m.start()
	m.q.forceReserve()
	m.mu.Lock()
	m.jobs[j.ID] = st
	m.stats.Submitted++
	m.stats.Resumed++
	m.mu.Unlock()
	m.persistJob(st.snapshot())
	m.co.submit(st, coalesceKey(j.Spec), class)
}

// Stats snapshots the tier's health counters and gauges.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := m.stats
	m.mu.Unlock()
	s.QueueDepth = m.q.len()
	s.Running = len(m.sem)
	s.Workers = m.opts.Workers
	m.ewmaMu.Lock()
	s.MeanJobSeconds = m.meanJobSec
	s.MeanQueueWaitSeconds = m.meanWaitSec
	m.ewmaMu.Unlock()
	s.PrefixRunsSaved = s.Coalesced - s.Groups
	if s.PrefixRunsSaved < 0 {
		s.PrefixRunsSaved = 0
	}
	return s
}

// RetryAfter estimates when queue capacity frees at the given depth —
// also used by the serve layer for honest 429 shed responses.
func (m *Manager) RetryAfter(depth int) time.Duration { return m.retryAfter(depth) }

func (m *Manager) retryAfter(depth int) time.Duration {
	m.ewmaMu.Lock()
	mean := m.meanJobSec
	m.ewmaMu.Unlock()
	if mean <= 0 {
		mean = 1
	}
	d := time.Duration(float64(depth) * mean / float64(m.opts.Workers) * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return d.Round(time.Second)
}

// Close stops the tier: pending coalescer groups flush, the queue
// closes (undispatched jobs stay persisted as queued for the next
// boot), running jobs are interrupted — their records remain
// non-terminal so recovery resumes them from the last checkpoint.
func (m *Manager) Close() {
	m.co.drain()
	m.cancel()
	m.q.close()
	m.wg.Wait()
}

// dispatch pops groups and hands each to a worker slot.
func (m *Manager) dispatch() {
	defer m.wg.Done()
	for {
		g, err := m.q.pop(m.ctx)
		if err != nil {
			return
		}
		select {
		case m.sem <- struct{}{}:
		case <-m.ctx.Done():
			return
		}
		m.wg.Add(1)
		go func(g *group) {
			defer m.wg.Done()
			defer func() { <-m.sem }()
			m.runGroup(g)
		}(g)
	}
}

// runGroup executes one dispatched group on the current worker slot.
func (m *Manager) runGroup(g *group) {
	live := m.beginRun(g)
	if len(live) == 0 {
		return
	}
	start := time.Now()
	if live[0].snapshot().Spec.Kind == KindYield {
		m.runYieldGroup(live)
	} else {
		for _, st := range live {
			m.runGenerate(st)
		}
	}
	perJob := time.Since(start).Seconds() / float64(len(live))
	m.ewmaMu.Lock()
	m.meanJobSec = ewma(m.meanJobSec, perJob)
	m.ewmaMu.Unlock()
	m.mu.Lock()
	m.stats.Groups++
	m.stats.Coalesced += int64(len(live))
	m.mu.Unlock()
}

// beginRun filters out jobs canceled while queued and marks the rest
// running.
func (m *Manager) beginRun(g *group) []*jobState {
	now := time.Now()
	var live []*jobState
	for _, st := range g.items {
		st.mu.Lock()
		if st.job.State != StateQueued || st.canceled {
			st.mu.Unlock()
			continue
		}
		st.job.State = StateRunning
		st.job.StartedMS = nowMS()
		st.mu.Unlock()
		m.ewmaMu.Lock()
		m.meanWaitSec = ewma(m.meanWaitSec, now.Sub(st.enqueued).Seconds())
		m.ewmaMu.Unlock()
		live = append(live, st)
	}
	for _, st := range live {
		st.mu.Lock()
		st.job.Coalesced = len(live)
		j := st.job
		st.mu.Unlock()
		m.persistJob(j)
	}
	return live
}

// runYieldGroup is micro-batching's payoff: one expensive prefix —
// place, route, extract, covariance — shared by every job in the
// group, then per-job Monte-Carlo tails. The prefix runs detached
// from any single job's context (mirroring the serve cache's flight
// detachment): cancelling one rider must not kill the others' work.
func (m *Manager) runYieldGroup(live []*jobState) {
	leader := live[0]
	spec := leader.snapshot().Spec

	tr := m.newTrace(leader.job.ID)
	pctx := obs.WithTrace(m.ctx, tr)
	pctx, root := obs.StartSpan(pctx, "jobs.prefix")
	cfg, t, err := spec.coreConfig(m.opts.ComputeWorkers, m.opts.Memo)
	var res *core.Result
	var sh *variation.Shared
	if err == nil {
		res, err = core.RunContext(pctx, cfg)
	}
	if err == nil {
		sh, err = variation.NewSharedContext(m.computeCtx(pctx, spec), res.Placement, res.Layout.CellCenter, t)
	}
	root.Fail(err)
	root.End()
	tr.Finish()
	m.mergeTrace(tr)
	if err != nil {
		for _, st := range live {
			m.finishErr(st, err)
		}
		return
	}
	for _, st := range live {
		m.runYieldTail(st, sh, res)
	}
}

// runYieldTail runs one job's cheap tail over the shared prefix: the
// gradient analysis at its theta, then the checkpointed Monte-Carlo
// block loop. The tail honors the job's own context (DELETE cancels
// just this rider).
func (m *Manager) runYieldTail(st *jobState, sh *variation.Shared, res *core.Result) {
	spec := st.snapshot().Spec
	tr := m.newTrace(st.job.ID)
	ctx := obs.WithTrace(st.ctx, tr)
	ctx = m.computeCtx(ctx, spec)
	ctx, root := obs.StartSpan(ctx, "jobs.yield")
	err := m.yieldLoop(ctx, st, spec, sh, res)
	root.Fail(err)
	root.End()
	tr.Finish()
	m.mergeTrace(tr)
	if err != nil {
		m.finishErr(st, err)
	}
}

// yieldLoop folds sample blocks [from, to) into the tally, durably
// checkpointing between blocks. Sample s depends only on (seed, s),
// so the block partition — and a crash-restart mid-stream — cannot
// change the final tally or its hash.
func (m *Manager) yieldLoop(ctx context.Context, st *jobState, spec Spec,
	sh *variation.Shared, res *core.Result) error {
	a := sh.Analysis(spec.ThetaDeg * math.Pi / 180)
	parc := dacmodel.Parasitics{CTSfF: res.Electrical.CTSfF}
	ys := yield.Spec{MaxAbsDNL: spec.SpecDNL, MaxAbsINL: spec.SpecINL}
	every := spec.CheckpointEvery
	if every <= 0 {
		every = m.opts.CheckpointEvery
	}

	var tally yield.Tally
	from, seq := 0, 0
	if ck := st.resumeCk; ck != nil && ck.JobID == st.job.ID &&
		ck.Done > 0 && ck.Done <= spec.Samples {
		tally, from, seq = ck.Tally, ck.Done, ck.Seq
	}
	for from < spec.Samples {
		to := from + every
		if to > spec.Samples {
			to = spec.Samples
		}
		bctx, span := obs.StartSpan(ctx, "jobs.mc_block")
		err := yield.BlockSharedContext(bctx, sh, a, ys, parc, from, to, spec.Seed, &tally)
		span.Fail(err)
		span.End()
		if err != nil {
			return err
		}
		obs.Count(ctx, "ccdac_jobs_samples_done_total", int64(to-from))
		from = to
		checkpointed := from < spec.Samples // final block needs no checkpoint
		if checkpointed {
			seq++
		}
		st.mu.Lock()
		st.job.DoneSamples = from
		if checkpointed {
			st.job.Checkpoints = seq
		}
		j := st.job
		st.mu.Unlock()
		if checkpointed && m.opts.Persist != nil {
			ck := Checkpoint{JobID: j.ID, Done: from, Seq: seq, Tally: tally}
			if err := m.opts.Persist.SaveCheckpoint(j, ck); err != nil {
				return fmt.Errorf("jobs: checkpoint %d: %w", seq, err)
			}
			m.mu.Lock()
			m.stats.Checkpoints++
			m.mu.Unlock()
		}
		m.persistJob(j)
	}
	r := tally.Result()
	yr := YieldResult{
		Samples: r.Samples, Passed: r.Passed, Yield: r.Yield,
		CILow: r.CILow, CIHigh: r.CIHigh,
		WorstDNL: r.WorstDNL, WorstINL: r.WorstINL,
		SampleHash: fmt.Sprintf("%016x", tally.Hash),
	}
	yr.Warnings = append(yr.Warnings, res.Warnings...)
	yr.Warnings = append(yr.Warnings, sh.Warnings()...)
	raw, err := json.Marshal(yr)
	if err != nil {
		return err
	}
	m.finishOK(st, raw)
	return nil
}

// runGenerate runs one generate job end to end under its own trace.
func (m *Manager) runGenerate(st *jobState) {
	spec := st.snapshot().Spec
	tr := m.newTrace(st.job.ID)
	ctx := obs.WithTrace(st.ctx, tr)
	ctx, root := obs.StartSpan(ctx, "jobs.generate")
	cfg := spec.generateConfig(m.opts.ComputeWorkers, m.opts.Memo)
	var res *ccdac.Result
	var err error
	if spec.BestBC {
		res, _, err = ccdac.GenerateBestBCContext(ctx, cfg)
	} else {
		res, err = ccdac.GenerateContext(ctx, cfg)
	}
	root.Fail(err)
	root.End()
	tr.Finish()
	m.mergeTrace(tr)
	if err != nil {
		m.finishErr(st, err)
		return
	}
	raw, jerr := json.Marshal(GenerateResult{Metrics: res.Metrics, Warnings: res.Warnings})
	if jerr != nil {
		m.finishErr(st, jerr)
		return
	}
	m.finishOK(st, raw)
}

// computeCtx arms a tail context the way core.RunContext arms its own:
// worker budget, FFT directive, memo mark.
func (m *Manager) computeCtx(ctx context.Context, spec Spec) context.Context {
	ctx = par.WithWorkers(ctx, m.opts.ComputeWorkers)
	if spec.FFT == "off" {
		ctx = variation.WithFFTMode(ctx, variation.FFTOff)
	}
	if m.opts.Memo {
		ctx = memo.WithEnabled(ctx)
	}
	return ctx
}

// newTrace arms a job-tagged trace wired to the SSE bus.
func (m *Manager) newTrace(jobID string) *obs.Trace {
	tr := obs.New(obs.Options{PprofLabels: true})
	tr.SetTag(jobID)
	if m.opts.Bus != nil {
		tr.AttachBus(m.opts.Bus)
	}
	return tr
}

func (m *Manager) mergeTrace(tr *obs.Trace) {
	if m.opts.Registry != nil {
		m.opts.Registry.Merge(tr.Registry().Snapshot())
	}
}

func (m *Manager) finishOK(st *jobState, result json.RawMessage) {
	st.mu.Lock()
	if st.job.State.Terminal() {
		st.mu.Unlock()
		return
	}
	st.job.State = StateDone
	st.job.Result = result
	st.job.FinishedMS = nowMS()
	j := st.job
	close(st.done)
	st.mu.Unlock()
	m.mu.Lock()
	m.stats.Done++
	m.mu.Unlock()
	m.persistJob(j)
}

// finishErr resolves a failed run. User-canceled jobs report
// canceled; jobs interrupted by manager shutdown keep their
// non-terminal record (persisted with progress) so the next boot
// resumes them from the last checkpoint.
func (m *Manager) finishErr(st *jobState, err error) {
	if m.ctx.Err() != nil && errors.Is(err, context.Canceled) {
		st.mu.Lock()
		userCanceled := st.canceled
		j := st.job
		st.mu.Unlock()
		if !userCanceled {
			m.persistJob(j)
			return
		}
	}
	st.mu.Lock()
	if st.job.State.Terminal() {
		st.mu.Unlock()
		return
	}
	if st.canceled || errors.Is(err, context.Canceled) {
		st.job.State = StateCanceled
	} else {
		st.job.State = StateFailed
	}
	st.job.Error = err.Error()
	st.job.FinishedMS = nowMS()
	j := st.job
	close(st.done)
	st.mu.Unlock()
	m.mu.Lock()
	if j.State == StateCanceled {
		m.stats.Canceled++
	} else {
		m.stats.Failed++
	}
	m.mu.Unlock()
	m.persistJob(j)
}

func (m *Manager) persistJob(j Job) {
	if m.opts.Persist != nil {
		m.opts.Persist.SaveJob(j)
	}
}

// ewma folds one observation into a 0.2-alpha moving mean.
func ewma(mean, v float64) float64 {
	if mean == 0 {
		return v
	}
	return 0.8*mean + 0.2*v
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("j%016x", nowMS())
	}
	return "j" + hex.EncodeToString(b[:])
}
