package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"ccdac/internal/leakcheck"
)

// memPersist records every SaveJob/SaveCheckpoint call in order — the
// test double behind the checkpoint-equivalence and dispatch-order
// assertions. ckErr injects a durable-write failure.
type memPersist struct {
	mu      sync.Mutex
	records []Job
	cks     []Checkpoint
	ckErr   error
}

func (p *memPersist) SaveJob(j Job) {
	p.mu.Lock()
	p.records = append(p.records, j)
	p.mu.Unlock()
}

func (p *memPersist) SaveCheckpoint(j Job, ck Checkpoint) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ckErr != nil {
		return p.ckErr
	}
	p.cks = append(p.cks, ck)
	return nil
}

func (p *memPersist) checkpoints() []Checkpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Checkpoint(nil), p.cks...)
}

// runningOrder is the order jobs first transitioned to running.
func (p *memPersist) runningOrder() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[string]bool{}
	var order []string
	for _, j := range p.records {
		if j.State == StateRunning && !seen[j.ID] {
			seen[j.ID] = true
			order = append(order, j.ID)
		}
	}
	return order
}

func waitJob(t *testing.T, m *Manager, id string) Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	j, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for job %s: %v (state %s)", id, err, j.State)
	}
	return j
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newQueue(16)
	mk := func(class int, key string) *group {
		if err := q.reserve(func(int) time.Duration { return time.Second }); err != nil {
			t.Fatalf("reserve(%s): %v", key, err)
		}
		return &group{key: key, class: class, items: []*jobState{{}}}
	}
	q.push(mk(classBackground, "bg"))
	q.push(mk(classBatch, "b1"))
	q.push(mk(classInteractive, "i1"))
	q.push(mk(classBatch, "b2"))

	want := []string{"i1", "b1", "b2", "bg"} // class order, FIFO within
	for _, k := range want {
		g, err := q.pop(context.Background())
		if err != nil {
			t.Fatalf("pop: %v", err)
		}
		if g.key != k {
			t.Fatalf("pop order: got %q, want %q", g.key, k)
		}
	}
	if d := q.len(); d != 0 {
		t.Fatalf("depth after draining = %d, want 0", d)
	}
}

func TestQueueOverflowAndRelease(t *testing.T) {
	q := newQueue(2)
	ra := func(depth int) time.Duration { return time.Duration(depth) * 3 * time.Second }
	for i := 0; i < 2; i++ {
		if err := q.reserve(ra); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
	}
	err := q.reserve(ra)
	var oe *OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("third reserve = %v, want *OverflowError", err)
	}
	if oe.Depth != 2 || oe.RetryAfter != 6*time.Second {
		t.Fatalf("overflow = depth %d retry %s, want depth 2 retry 6s", oe.Depth, oe.RetryAfter)
	}

	// Popping a group releases its jobs' reservations.
	q.push(&group{class: classBatch, items: []*jobState{{}, {}}})
	if _, err := q.pop(context.Background()); err != nil {
		t.Fatalf("pop: %v", err)
	}
	if err := q.reserve(ra); err != nil {
		t.Fatalf("reserve after pop: %v", err)
	}

	q.close()
	if err := q.reserve(ra); !errors.Is(err, ErrClosed) {
		t.Fatalf("reserve after close = %v, want ErrClosed", err)
	}
	if _, err := q.pop(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("pop after close = %v, want ErrClosed", err)
	}
}

func TestCoalescerFlushPaths(t *testing.T) {
	var mu sync.Mutex
	var flushed []*group
	grab := func() []*group {
		mu.Lock()
		defer mu.Unlock()
		return append([]*group(nil), flushed...)
	}
	c := newCoalescer(3, 40*time.Millisecond, func(g *group) {
		mu.Lock()
		flushed = append(flushed, g)
		mu.Unlock()
	})

	// Size bound: the third compatible job flushes the group at once.
	for i := 0; i < 3; i++ {
		c.submit(&jobState{}, "prefix-a", classBatch)
	}
	got := grab()
	if len(got) != 1 || len(got[0].items) != 3 {
		t.Fatalf("size flush: %d groups, want 1 group of 3", len(got))
	}

	// Non-coalescable jobs (key "") flush immediately as singletons.
	c.submit(&jobState{}, "", classBatch)
	if got := grab(); len(got) != 2 || len(got[1].items) != 1 {
		t.Fatalf("keyless submit did not flush a singleton: %d groups", len(got))
	}

	// Key and class separation plus the time bound: three pending
	// groups (a/batch, b/batch, a/background) each fire on maxWait.
	c.submit(&jobState{}, "prefix-a", classBatch)
	c.submit(&jobState{}, "prefix-b", classBatch)
	c.submit(&jobState{}, "prefix-a", classBackground)
	deadline := time.Now().Add(5 * time.Second)
	for len(grab()) < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("time flush never fired: %d groups", len(grab()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, g := range grab()[2:] {
		if len(g.items) != 1 {
			t.Fatalf("separated groups must not merge: group %q/%d has %d items", g.key, g.class, len(g.items))
		}
	}

	// drain flushes everything pending and later submits bypass.
	c.submit(&jobState{}, "prefix-c", classBatch)
	c.drain()
	if got := grab(); len(got) != 6 {
		t.Fatalf("after drain: %d groups, want 6", len(got))
	}
	c.submit(&jobState{}, "prefix-d", classBatch)
	if got := grab(); len(got) != 7 {
		t.Fatalf("submit after drain must flush immediately: %d groups", len(got))
	}
}

func TestManagerGenerateJob(t *testing.T) {
	defer leakcheck.Check(t)()
	m := New(Options{Workers: 1, MaxBatch: 1})
	defer m.Close()

	j, err := m.Submit(Spec{Kind: KindGenerate, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" {
		t.Fatalf("submitted job = %+v, want queued with an ID", j)
	}
	done := waitJob(t, m, j.ID)
	if done.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}
	if done.Coalesced != 1 {
		t.Fatalf("solo generate job Coalesced = %d, want 1", done.Coalesced)
	}
	var res GenerateResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if res.Metrics.AreaUm2 <= 0 || res.Metrics.F3dBHz <= 0 {
		t.Fatalf("result metrics = %+v, want positive area and f3dB", res.Metrics)
	}

	if _, ok := m.Get("nope"); ok {
		t.Fatal("Get of unknown ID succeeded")
	}
	if _, ok := m.Cancel("nope"); ok {
		t.Fatal("Cancel of unknown ID succeeded")
	}
	if _, err := m.Wait(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Wait of unknown ID = %v, want ErrNotFound", err)
	}
}

// TestManagerPriorityDispatch: with the single worker slot held (via
// Do, the batch-fanout admission path), queued jobs dispatch in class
// order — interactive before background — regardless of submit order.
func TestManagerPriorityDispatch(t *testing.T) {
	defer leakcheck.Check(t)()
	mp := &memPersist{}
	m := New(Options{Workers: 1, MaxBatch: 1, Persist: mp})
	defer m.Close()

	held := make(chan struct{})
	release := make(chan struct{})
	var doWG sync.WaitGroup
	doWG.Add(1)
	go func() {
		defer doWG.Done()
		m.Do(context.Background(), func() error {
			close(held)
			<-release
			return nil
		})
	}()
	<-held

	blocker, err := m.Submit(Spec{Kind: KindGenerate, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Let the dispatcher pop the blocker group (it then parks waiting
	// for the held worker slot), so the next submissions queue behind it.
	deadline := time.Now().Add(5 * time.Second)
	for m.q.len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never popped the blocker group")
		}
		time.Sleep(2 * time.Millisecond)
	}
	bg, err := m.Submit(Spec{Kind: KindGenerate, Bits: 4, Priority: "background"})
	if err != nil {
		t.Fatal(err)
	}
	ia, err := m.Submit(Spec{Kind: KindGenerate, Bits: 4, Priority: "interactive"})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	doWG.Wait()
	for _, id := range []string{blocker.ID, bg.ID, ia.ID} {
		if j := waitJob(t, m, id); j.State != StateDone {
			t.Fatalf("job %s finished %s (%s), want done", id, j.State, j.Error)
		}
	}
	want := []string{blocker.ID, ia.ID, bg.ID}
	got := mp.runningOrder()
	if len(got) != len(want) {
		t.Fatalf("running order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("running order %v, want %v (interactive before background)", got, want)
		}
	}
}

// TestCoalescedMatchesSolo is the micro-batching equivalence contract:
// compatible yield jobs coalesced onto one shared prefix produce
// byte-identical results — same sample hash, same payload — as the
// same jobs run solo.
func TestCoalescedMatchesSolo(t *testing.T) {
	defer leakcheck.Check(t)()
	const n = 4
	specFor := func(seed int64) Spec {
		return Spec{Kind: KindYield, Bits: 6, Samples: 50, Seed: seed, SpecINL: 0.05}
	}
	run := func(maxBatch int) map[int64]Job {
		m := New(Options{Workers: 2, MaxBatch: maxBatch, MaxWait: 500 * time.Millisecond})
		defer m.Close()
		ids := make(map[int64]string, n)
		for seed := int64(1); seed <= n; seed++ {
			j, err := m.Submit(specFor(seed))
			if err != nil {
				t.Fatalf("submit seed %d: %v", seed, err)
			}
			ids[seed] = j.ID
		}
		out := make(map[int64]Job, n)
		for seed, id := range ids {
			j := waitJob(t, m, id)
			if j.State != StateDone {
				t.Fatalf("seed %d finished %s (%s), want done", seed, j.State, j.Error)
			}
			out[seed] = j
		}
		return out
	}

	solo := run(1)
	coal := run(n)
	for seed := int64(1); seed <= n; seed++ {
		s, c := solo[seed], coal[seed]
		if s.Coalesced != 1 {
			t.Errorf("solo seed %d Coalesced = %d, want 1", seed, s.Coalesced)
		}
		if c.Coalesced != n {
			t.Errorf("coalesced seed %d Coalesced = %d, want %d", seed, c.Coalesced, n)
		}
		if !bytes.Equal(s.Result, c.Result) {
			t.Errorf("seed %d: coalesced result differs from solo:\nsolo:      %s\ncoalesced: %s",
				seed, s.Result, c.Result)
		}
		var yr YieldResult
		if err := json.Unmarshal(c.Result, &yr); err != nil {
			t.Fatalf("seed %d result: %v", seed, err)
		}
		if yr.Samples != 50 || yr.SampleHash == "" {
			t.Errorf("seed %d: samples %d hash %q, want 50 samples and a hash", seed, yr.Samples, yr.SampleHash)
		}
	}
}

// TestCheckpointResumeEquivalence: a job resumed from a mid-stream
// checkpoint on a fresh manager finishes with a payload byte-identical
// to the uninterrupted run — the crash-recovery contract, minus the
// process kill (internal/serve's TestJobCrashResume adds that).
func TestCheckpointResumeEquivalence(t *testing.T) {
	defer leakcheck.Check(t)()
	spec := Spec{Kind: KindYield, Bits: 5, Samples: 120, Seed: 3, SpecINL: 0.05, CheckpointEvery: 25}
	mp := &memPersist{}
	m1 := New(Options{Workers: 1, MaxBatch: 1, Persist: mp})
	j1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref := waitJob(t, m1, j1.ID)
	m1.Close()
	if ref.State != StateDone {
		t.Fatalf("reference run finished %s (%s), want done", ref.State, ref.Error)
	}
	cks := mp.checkpoints()
	if len(cks) != 4 { // 25, 50, 75, 100; the final block needs none
		t.Fatalf("reference run saved %d checkpoints, want 4", len(cks))
	}
	if st := m1.Stats(); st.Checkpoints != 4 {
		t.Fatalf("stats.Checkpoints = %d, want 4", st.Checkpoints)
	}

	ck := cks[1] // resume from samples [0, 50) done
	if ck.Done != 50 || ck.JobID != ref.ID {
		t.Fatalf("checkpoint[1] = %+v, want done=50 for job %s", ck, ref.ID)
	}
	m2 := New(Options{Workers: 1, MaxBatch: 1, Persist: &memPersist{}})
	defer m2.Close()
	m2.Restore(Job{ID: ref.ID, Spec: ref.Spec, State: StateRunning, CreatedMS: ref.CreatedMS}, &ck)
	j2 := waitJob(t, m2, ref.ID)
	if j2.State != StateDone {
		t.Fatalf("resumed run finished %s (%s), want done", j2.State, j2.Error)
	}
	if !j2.Resumed || j2.DoneSamples != 120 {
		t.Fatalf("resumed job = resumed %v, done %d samples; want resumed with all 120", j2.Resumed, j2.DoneSamples)
	}
	if !bytes.Equal(j2.Result, ref.Result) {
		t.Fatalf("resumed result differs from uninterrupted run:\nref:     %s\nresumed: %s", ref.Result, j2.Result)
	}
	if st := m2.Stats(); st.Resumed != 1 {
		t.Fatalf("stats.Resumed = %d, want 1", st.Resumed)
	}
}

// TestRestoreTerminalJobIsHistory: restoring a done record makes it
// queryable without re-running it.
func TestRestoreTerminalJobIsHistory(t *testing.T) {
	defer leakcheck.Check(t)()
	m := New(Options{Workers: 1})
	defer m.Close()
	m.Restore(Job{ID: "jhist", Spec: Spec{Kind: KindGenerate, Bits: 4}, State: StateDone,
		Result: json.RawMessage(`{"ok":true}`)}, nil)
	j, ok := m.Get("jhist")
	if !ok || j.State != StateDone || string(j.Result) != `{"ok":true}` {
		t.Fatalf("restored terminal job = %+v, want intact done record", j)
	}
	if j, err := m.Wait(context.Background(), "jhist"); err != nil || j.State != StateDone {
		t.Fatalf("Wait on restored terminal job = %v, %v", j.State, err)
	}
	if st := m.Stats(); st.Submitted != 0 || st.Resumed != 0 {
		t.Fatalf("terminal restore counted as submission: %+v", st)
	}
}

// TestCheckpointFailureFailsJob: a checkpoint that cannot be made
// durable fails the job — a checkpoint that is not durable is not a
// checkpoint.
func TestCheckpointFailureFailsJob(t *testing.T) {
	defer leakcheck.Check(t)()
	mp := &memPersist{ckErr: errors.New("disk gone")}
	m := New(Options{Workers: 1, MaxBatch: 1, Persist: mp})
	defer m.Close()
	j, err := m.Submit(Spec{Kind: KindYield, Bits: 5, Samples: 30, Seed: 1, SpecINL: 0.05, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, m, j.ID)
	if done.State != StateFailed {
		t.Fatalf("job with failing checkpoints finished %s, want failed", done.State)
	}
	if want := "checkpoint"; !bytes.Contains([]byte(done.Error), []byte(want)) {
		t.Fatalf("error %q does not mention %q", done.Error, want)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	defer leakcheck.Check(t)()
	m := New(Options{Workers: 1, MaxBatch: 1})
	defer m.Close()

	// Queued cancel: hold the only worker slot so the job cannot start.
	held := make(chan struct{})
	release := make(chan struct{})
	var doWG sync.WaitGroup
	doWG.Add(1)
	go func() {
		defer doWG.Done()
		m.Do(context.Background(), func() error {
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	j, err := m.Submit(Spec{Kind: KindGenerate, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	cj, ok := m.Cancel(j.ID)
	if !ok || cj.State != StateCanceled {
		t.Fatalf("queued cancel = %v (%s), want immediate canceled", ok, cj.State)
	}
	close(release)
	doWG.Wait()
	if got := waitJob(t, m, j.ID); got.State != StateCanceled {
		t.Fatalf("canceled-queued job finished %s, want canceled", got.State)
	}

	// Running cancel: a long Monte-Carlo job interrupts via its context.
	long, err := m.Submit(Spec{Kind: KindYield, Bits: 6, Samples: 50_000_000, Seed: 1,
		SpecINL: 0.05, CheckpointEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		got, _ := m.Get(long.ID)
		if got.State == StateRunning {
			break
		}
		if got.State.Terminal() {
			t.Fatalf("long job reached %s before it could be canceled", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("long job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := m.Cancel(long.ID); !ok {
		t.Fatal("cancel of running job not found")
	}
	got := waitJob(t, m, long.ID)
	if got.State != StateCanceled {
		t.Fatalf("canceled-running job finished %s (%s), want canceled", got.State, got.Error)
	}
	if st := m.Stats(); st.Canceled != 2 {
		t.Fatalf("stats.Canceled = %d, want 2", st.Canceled)
	}
}

// TestSubmitOverflow: with the queue full of jobs parked in the
// coalescer (their reservations are held from submission, not flush),
// the next submission fails fast with depth and a Retry-After hint.
func TestSubmitOverflow(t *testing.T) {
	defer leakcheck.Check(t)()
	m := New(Options{Workers: 1, QueueDepth: 1, MaxBatch: 16, MaxWait: time.Hour})
	defer m.Close()
	if _, err := m.Submit(Spec{Kind: KindYield, Bits: 6, Samples: 10, Seed: 1, SpecINL: 0.05}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Submit(Spec{Kind: KindYield, Bits: 6, Samples: 10, Seed: 2, SpecINL: 0.05})
	var oe *OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("submit over capacity = %v, want *OverflowError", err)
	}
	if oe.Depth != 1 || oe.RetryAfter < time.Second {
		t.Fatalf("overflow = depth %d retry %s, want depth 1 and retry >= 1s", oe.Depth, oe.RetryAfter)
	}
	if st := m.Stats(); st.Overflow != 1 || st.QueueDepth != 1 {
		t.Fatalf("stats = overflow %d depth %d, want 1 and 1", st.Overflow, st.QueueDepth)
	}
}

func TestSpecValidation(t *testing.T) {
	m := New(Options{})
	defer m.Close()
	bad := []Spec{
		{Kind: "transmute", Bits: 6},
		{Kind: KindYield, Bits: 6, Samples: 10}, // no spec bound
		{Kind: KindYield, Bits: 6, Samples: 10, SpecINL: 0.05, CheckpointEvery: -1},
		{Kind: KindGenerate, Bits: 6, Priority: "urgent"},
		{Kind: KindGenerate, Bits: 6, FFT: "sideways"},
	}
	for _, spec := range bad {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec)
		}
	}
	if st := m.Stats(); st.Submitted != 0 {
		t.Fatalf("invalid specs consumed queue capacity: %+v", st)
	}
}

// TestPrefixKeyTailIndependence: tail fields must not split groups;
// prefix fields must.
func TestPrefixKeyTailIndependence(t *testing.T) {
	base := Spec{Kind: KindYield, Bits: 8, Samples: 100, Seed: 1, SpecINL: 0.01}.withDefaults()
	k := base.prefixKey()

	tailVariant := base
	tailVariant.Seed, tailVariant.Samples, tailVariant.SpecINL, tailVariant.ThetaDeg = 99, 7, 0.5, 30
	if tailVariant.prefixKey() != k {
		t.Fatal("tail fields (seed/samples/spec/theta) changed the prefix key")
	}

	prefixVariant := base
	prefixVariant.Bits = 9
	if prefixVariant.prefixKey() == k {
		t.Fatal("bits change did not change the prefix key")
	}
	styleVariant := base
	styleVariant.Style = "chessboard"
	if styleVariant.prefixKey() == k {
		t.Fatal("style change did not change the prefix key")
	}
}
