// Persistence seam. The manager does not know about the artifact
// store; the serve layer implements Persist over it. Job records ride
// the write-behind persister (losing the last few milliseconds of
// record churn on a crash is fine — recovery re-derives state from
// the last checkpoint), while checkpoints save synchronously: a
// checkpoint that is not durable before the runner advances past it
// is not a checkpoint.
package jobs

// Persist receives job records and checkpoints as they change. A nil
// Persist makes the manager purely in-memory.
type Persist interface {
	// SaveJob records the job snapshot. Implementations should be
	// asynchronous (write-behind); errors are logged, not returned —
	// the job itself proceeds regardless.
	SaveJob(j Job)
	// SaveCheckpoint durably records partial progress. It must not
	// return until the checkpoint would survive a crash; an error
	// fails the job (advancing past a lost checkpoint breaks the
	// resume contract).
	SaveCheckpoint(j Job, ck Checkpoint) error
}
