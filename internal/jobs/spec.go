// Package jobs is the asynchronous job tier behind POST /v1/jobs: a
// bounded priority queue feeding a worker pool decoupled from the HTTP
// admission budget, so workloads that do not fit a request/response
// timeout — million-sample yield Monte Carlo, 14-bit analyses, best-BC
// sweeps — run to completion instead of burning an inflight slot or
// being shed.
//
// The performance lever is compatibility micro-batching: queued yield
// jobs that share the expensive prefix (placement, routing, extraction
// and the covariance/FFT plan are determined by the same fields) while
// differing only in cheap tail fields (seed, sample count, spec
// bounds, gradient angle) are coalesced into one group. The group runs
// the prefix once and fans the per-job Monte-Carlo tails across the
// shared structure. Because sample s of a run depends only on
// (seed, s) — the splitmix64 per-sample streams of
// internal/variation — a coalesced job's output is byte-identical to
// the same job run solo, and a checkpointed job resumes mid-stream
// after a crash with identical final output. See docs/PERFORMANCE.md,
// "Micro-batching".
package jobs

import (
	"encoding/json"
	"fmt"
	"time"

	"ccdac"
	"ccdac/internal/core"
	"ccdac/internal/memo"
	"ccdac/internal/place"
	"ccdac/internal/tech"
	"ccdac/internal/yield"
)

// Job kinds.
const (
	// KindGenerate runs the full constructive flow (ccdac.Generate,
	// or the best-BC sweep when BestBC is set). Never coalesced.
	KindGenerate = "generate"
	// KindYield runs a checkpointed Monte-Carlo yield estimate.
	// Coalescable: jobs sharing a prefix key batch onto one layout.
	KindYield = "yield"
)

// Priority classes, highest first. The queue always dequeues the
// highest class with work; FIFO within a class.
const (
	classInteractive = iota
	classBatch
	classBackground
	numClasses
)

// Spec is the JSON body of POST /v1/jobs: what to run and at what
// priority. The first field block is the coalescing prefix — every
// field that determines the expensive place→route→extract→covariance
// work; yield jobs agreeing on all of them share one prefix run. The
// tail blocks are the cheap per-job fields the group runner fans out.
type Spec struct {
	Kind     string `json:"kind"`
	Priority string `json:"priority,omitempty"` // "interactive" | "batch" (default) | "background"

	// Prefix fields (mirror ccdac.Config / POST /v1/generate).
	Bits        int    `json:"bits"`
	Style       string `json:"style,omitempty"`
	CoreBits    int    `json:"core_bits,omitempty"`
	BlockCells  int    `json:"block_cells,omitempty"`
	MaxParallel int    `json:"max_parallel,omitempty"`
	AnnealSeed  int64  `json:"anneal_seed,omitempty"`
	AnnealMoves int    `json:"anneal_moves,omitempty"`
	TechNode    string `json:"tech_node,omitempty"`
	FFT         string `json:"fft,omitempty"`

	// Generate tail.
	ThetaSteps       int  `json:"theta_steps,omitempty"`
	SkipNonlinearity bool `json:"skip_nonlinearity,omitempty"`
	BestBC           bool `json:"best_bc,omitempty"`

	// Yield tail: the Monte-Carlo estimate's cheap per-job knobs.
	Samples int     `json:"samples,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	SpecINL float64 `json:"spec_inl,omitempty"`
	SpecDNL float64 `json:"spec_dnl,omitempty"` // 0 = same as spec_inl
	// ThetaDeg is the oxide-gradient angle in degrees (default 45).
	ThetaDeg float64 `json:"theta_deg,omitempty"`
	// CheckpointEvery bounds the samples evaluated between durable
	// checkpoints (0 = the manager default).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// withDefaults fills the documented defaults so records, prefix keys
// and equality checks all see one canonical form.
func (s Spec) withDefaults() Spec {
	if s.Priority == "" {
		s.Priority = "batch"
	}
	if s.Style == "" {
		s.Style = string(ccdac.Spiral)
	}
	if s.TechNode == "" {
		s.TechNode = "finfet12"
	}
	if s.FFT == "" {
		s.FFT = "auto"
	}
	if s.MaxParallel <= 1 {
		s.MaxParallel = 0
	}
	if s.Kind == KindYield {
		if s.Samples == 0 {
			s.Samples = 10000
		}
		if s.Seed == 0 {
			s.Seed = 1
		}
		if s.SpecDNL == 0 {
			s.SpecDNL = s.SpecINL
		}
		if s.ThetaDeg == 0 {
			s.ThetaDeg = 45
		}
		// Yield jobs ignore the generate tail.
		s.ThetaSteps, s.SkipNonlinearity, s.BestBC = 0, false, false
	} else {
		s.Samples, s.Seed, s.SpecINL, s.SpecDNL = 0, 0, 0, 0
		s.ThetaDeg, s.CheckpointEvery = 0, 0
	}
	if s.BestBC {
		s.Style = string(ccdac.BlockChessboard)
		s.CoreBits, s.BlockCells = 0, 0
	}
	if s.Style != string(ccdac.BlockChessboard) {
		s.CoreBits, s.BlockCells = 0, 0
	}
	if s.Style != string(ccdac.Annealed) {
		s.AnnealSeed, s.AnnealMoves = 0, 0
	}
	return s
}

// Validate rejects specs the runner could not execute. It assumes
// withDefaults already ran (Manager.Submit applies both).
func (s Spec) Validate() error {
	switch s.Kind {
	case KindGenerate:
	case KindYield:
		if s.SpecINL <= 0 || s.SpecDNL <= 0 {
			return fmt.Errorf("jobs: yield jobs need positive spec_inl (got inl=%g dnl=%g)", s.SpecINL, s.SpecDNL)
		}
		if s.Samples < 1 {
			return fmt.Errorf("jobs: yield jobs need at least 1 sample")
		}
		if s.CheckpointEvery < 0 {
			return fmt.Errorf("jobs: checkpoint_every must be >= 0")
		}
	default:
		return fmt.Errorf("jobs: unknown kind %q (want %q or %q)", s.Kind, KindGenerate, KindYield)
	}
	if _, err := s.class(); err != nil {
		return err
	}
	if s.FFT != "auto" && s.FFT != "off" {
		return fmt.Errorf("jobs: unknown fft directive %q (want \"auto\" or \"off\")", s.FFT)
	}
	return nil
}

// class resolves the priority class.
func (s Spec) class() (int, error) {
	switch s.Priority {
	case "interactive":
		return classInteractive, nil
	case "", "batch":
		return classBatch, nil
	case "background":
		return classBackground, nil
	}
	return 0, fmt.Errorf("jobs: unknown priority %q (want \"interactive\", \"batch\" or \"background\")", s.Priority)
}

// prefixKey identifies the expensive shared prefix of a yield job:
// two jobs with equal keys place, route, extract and build covariance
// identically, so the coalescer may run that work once for both. Tail
// fields (seed, samples, specs, theta) are deliberately absent.
func (s Spec) prefixKey() string {
	return memo.NewKey("jobs/prefix/v1").
		Int(s.Bits).Str(s.Style).Int(s.CoreBits).Int(s.BlockCells).
		Int(s.MaxParallel).I64(s.AnnealSeed).Int(s.AnnealMoves).
		Str(s.TechNode).Str(s.FFT).Sum()
}

// coreConfig maps the prefix fields onto the internal flow config (the
// same mapping ccdac.Config undergoes) plus the resolved technology.
// Yield jobs always skip the generate-side NL sweep: the Monte-Carlo
// tail is the nonlinearity analysis.
func (s Spec) coreConfig(workers int, useMemo bool) (core.Config, *tech.Technology, error) {
	out := core.Config{
		Bits:        s.Bits,
		MaxParallel: s.MaxParallel,
		Workers:     workers,
		Memo:        useMemo,
		FFT:         s.FFT,
	}
	t := tech.FinFET12()
	switch s.TechNode {
	case "finfet12":
	case "bulk65":
		t = tech.Bulk65()
		out.Tech = t
	default:
		return core.Config{}, nil, fmt.Errorf("jobs: %w: unknown technology node %q", ccdac.ErrConfig, s.TechNode)
	}
	switch ccdac.Style(s.Style) {
	case ccdac.Spiral:
		out.Style = place.Spiral
	case ccdac.Chessboard:
		out.Style = place.Chessboard
	case ccdac.BlockChessboard:
		out.Style = place.BlockChessboard
		out.BC = place.BCParams{CoreBits: s.CoreBits, BlockCells: s.BlockCells}
	case ccdac.Annealed:
		out.Style = place.Annealed
		out.Anneal = place.DefaultAnnealConfig()
		if s.AnnealSeed != 0 {
			out.Anneal.Seed = s.AnnealSeed
		}
		if s.AnnealMoves != 0 {
			out.Anneal.Moves = s.AnnealMoves
		}
	default:
		return core.Config{}, nil, fmt.Errorf("jobs: %w: unknown placement style %q", ccdac.ErrConfig, s.Style)
	}
	if s.Kind == KindYield {
		out.SkipNL = true
	} else {
		out.ThetaSteps = s.ThetaSteps
		out.SkipNL = s.SkipNonlinearity
	}
	return out, t, nil
}

// generateConfig maps a generate job onto the public API config.
func (s Spec) generateConfig(workers int, useMemo bool) ccdac.Config {
	return ccdac.Config{
		Bits:             s.Bits,
		Style:            ccdac.Style(s.Style),
		CoreBits:         s.CoreBits,
		BlockCells:       s.BlockCells,
		MaxParallel:      s.MaxParallel,
		AnnealSeed:       s.AnnealSeed,
		AnnealMoves:      s.AnnealMoves,
		ThetaSteps:       s.ThetaSteps,
		SkipNonlinearity: s.SkipNonlinearity,
		TechNode:         s.TechNode,
		FFT:              s.FFT,
		Workers:          workers,
		Memo:             useMemo,
	}
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is the externally visible job record: returned by Submit,
// GET /v1/jobs/{id}, and persisted across restarts.
type Job struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`

	CreatedMS  int64 `json:"created_unix_ms"`
	StartedMS  int64 `json:"started_unix_ms,omitempty"`
	FinishedMS int64 `json:"finished_unix_ms,omitempty"`

	// DoneSamples and Checkpoints report a yield job's progress; a
	// poller can derive percent-complete against Spec.Samples.
	DoneSamples int `json:"done_samples,omitempty"`
	Checkpoints int `json:"checkpoints,omitempty"`
	// Resumed marks a job that restarted from a durable checkpoint
	// after a crash or eviction.
	Resumed bool `json:"resumed,omitempty"`
	// Coalesced is the size of the compatibility group the job ran in
	// (1 = solo).
	Coalesced int `json:"coalesced,omitempty"`

	Result json.RawMessage `json:"result,omitempty"`
}

// YieldResult is the Result payload of a finished yield job.
type YieldResult struct {
	Samples  int     `json:"samples"`
	Passed   int     `json:"passed"`
	Yield    float64 `json:"yield"`
	CILow    float64 `json:"ci_low"`
	CIHigh   float64 `json:"ci_high"`
	WorstDNL float64 `json:"worst_dnl"`
	WorstINL float64 `json:"worst_inl"`
	// SampleHash is the rolling FNV-1a over every sample's
	// nonlinearity bits in stream order — the byte-identity witness:
	// solo, coalesced and crash-resumed runs of one spec agree on it
	// exactly or something is wrong.
	SampleHash string   `json:"sample_hash"`
	Warnings   []string `json:"warnings,omitempty"`
}

// GenerateResult is the Result payload of a finished generate job.
type GenerateResult struct {
	Metrics  ccdac.Metrics `json:"metrics"`
	Warnings []string      `json:"warnings,omitempty"`
}

// Checkpoint is one durable partial-progress record of a yield job:
// samples [0, Done) have been folded into Tally. The runner persists
// it synchronously before advancing (workers are off the request
// path, so blocking on fsync is the point — a checkpoint that is not
// durable is not a checkpoint).
type Checkpoint struct {
	JobID string      `json:"job_id"`
	Done  int         `json:"done"`
	Seq   int         `json:"seq"`
	Tally yield.Tally `json:"tally"`
}

// nowMS is the record timestamp base.
func nowMS() int64 { return time.Now().UnixMilli() }
