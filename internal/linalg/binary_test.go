package linalg

import (
	"math"
	"reflect"
	"testing"
)

// TestDenseBinaryRoundTrip: the spill encoding is exact — float bit
// patterns, including negative zero and subnormals, survive unchanged.
func TestDenseBinaryRoundTrip(t *testing.T) {
	m := NewDense(3)
	vals := []float64{1.5, -2.25, math.Copysign(0, -1), 1e-310, 3.14159, -7, 0.5, 42, 1e18}
	copy(m.Data, vals)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Dense
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N != 3 || len(got.Data) != 9 {
		t.Fatalf("decoded shape %dx%d with %d elements", got.N, got.N, len(got.Data))
	}
	for i := range vals {
		if math.Float64bits(got.Data[i]) != math.Float64bits(vals[i]) {
			t.Errorf("element %d: bit pattern changed (%v -> %v)", i, vals[i], got.Data[i])
		}
	}
	if !reflect.DeepEqual(m, &got) {
		t.Error("round trip changed the matrix")
	}
}

// TestDenseBinaryRejectsGarbage: truncated or inconsistent encodings
// are errors, never a silently-short matrix.
func TestDenseBinaryRejectsGarbage(t *testing.T) {
	good, _ := NewDense(2).MarshalBinary()
	cases := map[string][]byte{
		"empty":         nil,
		"ragged":        good[:len(good)-5],
		"short_payload": good[:len(good)-8],
		"header_only":   good[:8],
	}
	for name, data := range cases {
		var m Dense
		if err := m.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: UnmarshalBinary accepted garbage", name)
		}
	}
}
