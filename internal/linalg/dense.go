// Package linalg provides the small numerical kernels the flow needs:
// dense LU factorization with partial pivoting, dense Cholesky (for
// sampling correlated mismatch in the Monte-Carlo extension), and a
// sparse symmetric-positive-definite matrix with a Jacobi-preconditioned
// conjugate-gradient solver (for first-moment analysis of RC networks
// that are meshes rather than trees).
//
// The evaluation environment has no external numeric libraries, so
// these are implemented from scratch on float64 slices.
package linalg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Dense is a dense row-major n×n matrix.
type Dense struct {
	N    int
	Data []float64 // row-major, len N*N
}

// NewDense returns a zero n×n matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.N)
	copy(c.Data, m.Data)
	return c
}

// MarshalBinary encodes the matrix for the memo spill tier: N as a
// little-endian int64 followed by the row-major float64 bit patterns.
func (m *Dense) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 8+8*len(m.Data))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.N))
	for _, v := range m.Data {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out, nil
}

// UnmarshalBinary reverses MarshalBinary, validating the element count
// against N so a truncated blob cannot yield a silently-short matrix.
func (m *Dense) UnmarshalBinary(data []byte) error {
	if len(data) < 8 || len(data)%8 != 0 {
		return fmt.Errorf("linalg: truncated Dense encoding (%d bytes)", len(data))
	}
	n := int(int64(binary.LittleEndian.Uint64(data)))
	if n < 0 || n*n != (len(data)-8)/8 {
		return fmt.Errorf("linalg: inconsistent Dense encoding: n=%d, %d elements", n, (len(data)-8)/8)
	}
	d := make([]float64, n*n)
	for i := range d {
		d[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+i*8:]))
	}
	*m = Dense{N: n, Data: d}
	return nil
}

// MulVec computes y = M·x, allocating the result. Hot paths that
// solve repeatedly should reuse a destination via MulVecTo.
func (m *Dense) MulVec(x []float64) []float64 {
	y := make([]float64, m.N)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes dst = M·x in place; dst must have length N and may
// not alias x.
func (m *Dense) MulVecTo(dst, x []float64) {
	if len(dst) != m.N {
		panic(fmt.Sprintf("linalg: MulVecTo dst length %d, want %d", len(dst), m.N))
	}
	for i := 0; i < m.N; i++ {
		row := m.Data[i*m.N : (i+1)*m.N]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above)
	piv  []int
	sign int
}

// LUFactor factors a into an LU decomposition with partial pivoting.
// It returns an error if the matrix is singular to working precision.
func LUFactor(a *Dense) (*LU, error) {
	n := a.N
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest |entry| in column k at/below row k.
		p, maxAbs := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.lu[i*n+k]); v > maxAbs {
				p, maxAbs = i, v
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("linalg: singular matrix at pivot %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= l * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b for x using the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), f.n)
	}
	n := f.n
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// cholBlock is the panel width of the blocked Cholesky: wide enough
// to amortize the trailing-update loop overhead, narrow enough that a
// panel row (cholBlock·8 bytes) stays L1-resident during the
// rank-k update's dot products.
const cholBlock = 64

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix. Used to sample correlated
// Gaussian mismatch vectors in the Monte-Carlo extension, and as the
// CG solver's direct fallback.
// It returns an error if A is not (numerically) positive definite.
//
// The factorization is right-looking and blocked: factor a
// cholBlock-wide diagonal panel, solve the rows below it, then fold
// the panel into the trailing submatrix with fixed-width dot products.
// The left-looking column loop it replaces streamed two full-length
// rows per dot product — past ~2k that is two L1 evictions per entry;
// the blocked trailing update reads cholBlock-length row slices that
// stay cached, roughly halving large-n factor time.
func Cholesky(a *Dense) (*Dense, error) {
	n := a.N
	l := NewDense(n)
	// Seed the factor with A's lower triangle — the only part the
	// right-looking updates read or write; a is left untouched.
	for i := 0; i < n; i++ {
		copy(l.Data[i*n:i*n+i+1], a.Data[i*n:i*n+i+1])
	}
	for k := 0; k < n; k += cholBlock {
		kb := k + cholBlock
		if kb > n {
			kb = n
		}
		// Factor the diagonal block in place (unblocked; earlier
		// panels already folded their contributions in, so only
		// within-panel columns feed these sums).
		for j := k; j < kb; j++ {
			d := l.Data[j*n+j]
			for t := k; t < j; t++ {
				d -= l.Data[j*n+t] * l.Data[j*n+t]
			}
			if d <= 0 {
				return nil, fmt.Errorf("linalg: matrix not positive definite at column %d (pivot %g)", j, d)
			}
			ljj := math.Sqrt(d)
			l.Data[j*n+j] = ljj
			for i := j + 1; i < kb; i++ {
				s := l.Data[i*n+j]
				for t := k; t < j; t++ {
					s -= l.Data[i*n+t] * l.Data[j*n+t]
				}
				l.Data[i*n+j] = s / ljj
			}
		}
		// Panel solve: rows below the block against the factored
		// diagonal block's transpose.
		for i := kb; i < n; i++ {
			for j := k; j < kb; j++ {
				s := l.Data[i*n+j]
				for t := k; t < j; t++ {
					s -= l.Data[i*n+t] * l.Data[j*n+t]
				}
				l.Data[i*n+j] = s / l.Data[j*n+j]
			}
		}
		// Trailing rank-kb update: A22 -= L21·L21ᵀ, lower triangle
		// only. The update is memory-bound (each entry is one
		// fixed-width dot over two panel rows), so it runs 2×2
		// register-tiled: every loaded row feeds two dot products,
		// doubling the arithmetic intensity of the dominant stream.
		i := kb
		for ; i+1 < n; i += 2 {
			ri0 := l.Data[i*n+k : i*n+kb]
			ri1 := l.Data[(i+1)*n+k : (i+1)*n+kb]
			j := kb
			for ; j+1 <= i; j += 2 {
				rj0 := l.Data[j*n+k : j*n+kb]
				rj1 := l.Data[(j+1)*n+k : (j+1)*n+kb]
				var s00, s01, s10, s11 float64
				for t := range rj0 {
					a0, a1 := ri0[t], ri1[t]
					b0, b1 := rj0[t], rj1[t]
					s00 += a0 * b0
					s01 += a0 * b1
					s10 += a1 * b0
					s11 += a1 * b1
				}
				l.Data[i*n+j] -= s00
				l.Data[i*n+j+1] -= s01
				l.Data[(i+1)*n+j] -= s10
				l.Data[(i+1)*n+j+1] -= s11
			}
			for ; j <= i; j++ {
				rj := l.Data[j*n+k : j*n+kb]
				var s0, s1 float64
				for t := range rj {
					s0 += ri0[t] * rj[t]
					s1 += ri1[t] * rj[t]
				}
				l.Data[i*n+j] -= s0
				l.Data[(i+1)*n+j] -= s1
			}
			// Row i+1's diagonal-column entry (j = i+1) pairs with no
			// column of row i; it is the row's self dot.
			var s float64
			for _, v := range ri1 {
				s += v * v
			}
			l.Data[(i+1)*n+(i+1)] -= s
		}
		if i < n { // odd trailing row
			ri := l.Data[i*n+k : i*n+kb]
			for j := kb; j <= i; j++ {
				rj := l.Data[j*n+k : j*n+kb]
				s := 0.0
				for t, v := range ri {
					s += v * rj[t]
				}
				l.Data[i*n+j] -= s
			}
		}
	}
	return l, nil
}

// CondEstFromChol estimates the 2-norm condition number of the SPD
// matrix A from its Cholesky factor L (A = L·Lᵀ) as
// (max L[i][i] / min L[i][i])². The squared diagonal ratio of L is a
// classical cheap lower bound on κ₂(A) — exact for diagonal matrices,
// and within a small factor for the diagonally dominant covariance and
// conductance matrices this flow produces. It costs O(n) on a factor
// that was already computed, which is what lets the health endpoint
// report conditioning on every request without a second factorization.
// Returns +Inf for a non-positive diagonal and 1 for an empty factor.
func CondEstFromChol(l *Dense) float64 {
	if l.N == 0 {
		return 1
	}
	lo, hi := math.Inf(1), 0.0
	for i := 0; i < l.N; i++ {
		d := l.At(i, i)
		if d <= 0 {
			return math.Inf(1)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	r := hi / lo
	return r * r
}

// SolveSPD solves A·x = b for a symmetric positive-definite A by dense
// Cholesky factorization with forward/back substitution — the robust
// direct fallback when the iterative CG solve fails to converge.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	n := a.N
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	// One slice serves both substitutions: the back pass reads x[i]
	// (the forward result y_i) before overwriting it, and only indices
	// above i — already finalized — feed each step.
	x := make([]float64, n)
	// Forward substitution: L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// ErrNotConverged is returned by iterative solvers that exhaust their
// iteration budget before reaching the requested tolerance.
var ErrNotConverged = errors.New("linalg: iterative solver did not converge")
