package linalg

import (
	"fmt"
	"testing"
)

// benchLaplacian builds the n-node path-graph Laplacian plus a ground
// leak — the same SPD structure RC moment solves produce — so the
// benchmark measures the real solver hot path.
func benchLaplacian(n int) *Sparse {
	s := NewSparse(n)
	for i := 0; i < n; i++ {
		s.Add(i, i, 1e-3) // ground conductance keeps the system SPD
	}
	for i := 0; i+1 < n; i++ {
		s.AddSym(i, i+1, -1)
		s.Add(i, i, 1)
		s.Add(i+1, i+1, 1)
	}
	return s
}

// BenchmarkSolveCG exercises the pooled-scratch CG path; run with
// -benchmem to confirm allocations per solve (the result vector is the
// only remaining per-call allocation).
func BenchmarkSolveCG(b *testing.B) {
	const n = 256
	s := benchLaplacian(n)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%7) + 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SolveCGIter(rhs, 1e-12, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSPD exercises the dense Cholesky fallback with the
// fused forward/back substitution buffer. The larger sizes measure
// the blocked right-looking factorization where the cache behavior of
// the trailing update dominates.
func BenchmarkSolveSPD(b *testing.B) {
	for _, n := range []int{128, 512, 1024, 2048} {
		d := benchLaplacian(n).ToDense()
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = float64(i%5) + 1
		}
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SolveSPD(d, rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
