package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestDenseAccessors(t *testing.T) {
	m := NewDense(3)
	m.Set(0, 2, 5)
	m.Add(0, 2, 1)
	if m.At(0, 2) != 6 {
		t.Fatalf("At = %g, want 6", m.At(0, 2))
	}
	c := m.Clone()
	c.Set(0, 2, 0)
	if m.At(0, 2) != 6 {
		t.Fatal("Clone must not alias")
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{1, 1})
	if !vecAlmostEq(y, []float64{3, 7}, 1e-15) {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := NewDense(2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{1, 3}, 1e-12) {
		t.Fatalf("solve = %v, want [1 3]", x)
	}
}

func TestLURequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal: fails without partial pivoting.
	a := NewDense(2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{3, 2}, 1e-12) {
		t.Fatalf("solve = %v, want [3 2]", x)
	}
	if !almostEq(f.Det(), -1, 1e-12) {
		t.Errorf("det = %g, want -1", f.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := LUFactor(a); err == nil {
		t.Fatal("singular matrix must not factor")
	}
}

func TestLUSolveRejectsBadLength(t *testing.T) {
	a := NewDense(2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("short rhs must be rejected")
	}
}

func TestLURandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		a := NewDense(n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal boost keeps the random matrix comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		f, err := LUFactor(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := f.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !vecAlmostEq(got, want, 1e-8) {
			t.Fatalf("trial %d n=%d: round trip mismatch", trial, n)
		}
	}
}

func TestCholeskyKnownFactor(t *testing.T) {
	// A = [[4, 2], [2, 5]] = L·Lt with L = [[2, 0], [1, 2]].
	a := NewDense(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 5)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0}, {1, 2}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(l.At(i, j), want[i][j], 1e-12) {
				t.Errorf("L[%d][%d] = %g, want %g", i, j, l.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDense(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("indefinite matrix must not have a Cholesky factor")
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		// Build SPD as B·Bt + n·I.
		b := NewDense(n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := NewDense(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += b.At(i, k) * b.At(j, k)
				}
				a.Set(i, j, s)
			}
			a.Add(i, i, float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k <= min(i, j); k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEq(s, a.At(i, j), 1e-8*float64(n)) {
					t.Fatalf("trial %d: (L·Lt)[%d][%d] = %g, want %g", trial, i, j, s, a.At(i, j))
				}
			}
		}
	}
}

func TestSparseAccumulates(t *testing.T) {
	s := NewSparse(3)
	s.Add(0, 1, 2)
	s.Add(0, 1, 3)
	if got := s.At(0, 1); got != 5 {
		t.Fatalf("At = %g, want 5", got)
	}
	if got := s.At(1, 0); got != 0 {
		t.Fatalf("Add must not mirror, got %g", got)
	}
	s.AddSym(1, 2, 7)
	if s.At(1, 2) != 7 || s.At(2, 1) != 7 {
		t.Fatal("AddSym must mirror")
	}
	s.AddSym(2, 2, 1)
	if s.At(2, 2) != 1 {
		t.Fatal("AddSym on diagonal must stamp once")
	}
	if s.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", s.NNZ())
	}
}

func TestSparseAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add must panic")
		}
	}()
	NewSparse(2).Add(2, 0, 1)
}

func TestSparseMulVec(t *testing.T) {
	s := NewSparse(3)
	s.Add(0, 0, 2)
	s.Add(1, 1, 3)
	s.Add(2, 2, 4)
	s.AddSym(0, 2, -1)
	y := make([]float64, 3)
	s.MulVec([]float64{1, 2, 3}, y)
	if !vecAlmostEq(y, []float64{2 - 3, 6, 12 - 1}, 1e-15) {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestCGMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(40)
		// Random SPD: Laplacian-like with strong diagonal.
		sp := NewSparse(n)
		de := NewDense(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					g := rng.Float64() + 0.1
					sp.AddSym(i, j, -g)
					sp.Add(i, i, g)
					sp.Add(j, j, g)
					de.Add(i, j, -g)
					de.Add(j, i, -g)
					de.Add(i, i, g)
					de.Add(j, j, g)
				}
			}
			sp.Add(i, i, 1)
			de.Add(i, i, 1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xCG, err := sp.SolveCG(b, 1e-12, 0)
		if err != nil {
			t.Fatalf("trial %d: CG: %v", trial, err)
		}
		f, err := LUFactor(de)
		if err != nil {
			t.Fatalf("trial %d: LU: %v", trial, err)
		}
		xLU, err := f.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !vecAlmostEq(xCG, xLU, 1e-7) {
			t.Fatalf("trial %d: CG and LU disagree", trial)
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	s := NewSparse(4)
	for i := 0; i < 4; i++ {
		s.Add(i, i, 1)
	}
	x, err := s.SolveCG(make([]float64, 4), 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, make([]float64, 4), 0) {
		t.Fatal("zero rhs must give zero solution")
	}
}

func TestCGRejectsBadDiagonal(t *testing.T) {
	s := NewSparse(2)
	s.Add(0, 0, 1)
	// missing (1,1) diagonal
	if _, err := s.SolveCG([]float64{1, 1}, 1e-12, 0); err == nil {
		t.Fatal("zero diagonal must be rejected")
	}
}

func TestCGRejectsBadLength(t *testing.T) {
	s := NewSparse(2)
	s.Add(0, 0, 1)
	s.Add(1, 1, 1)
	if _, err := s.SolveCG([]float64{1}, 1e-12, 0); err == nil {
		t.Fatal("short rhs must be rejected")
	}
}

func TestDotAndNormProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// norm² == dot(a, a) and both are non-negative and finite inputs only.
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				raw[i] = 1
			}
		}
		n := norm2(raw)
		return almostEq(n*n, dot(raw, raw), 1e-6*(1+n*n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCholeskyBlockBoundaries reconstructs A = L·Lᵀ at sizes that
// straddle the blocked factorization's panel width (cholBlock = 64):
// exact multiples, one-off sizes, and multi-panel cases all exercise
// different diagonal-block/panel-solve/trailing-update splits.
func TestCholeskyBlockBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{cholBlock - 1, cholBlock, cholBlock + 1, 2*cholBlock + 5, 200} {
		b := NewDense(n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := NewDense(n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += b.At(i, k) * b.At(j, k)
				}
				a.Set(i, j, s)
				a.Set(j, i, s)
			}
			a.Add(i, i, float64(n))
		}
		orig := a.Clone()
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range a.Data {
			if a.Data[i] != orig.Data[i] {
				t.Fatalf("n=%d: Cholesky mutated its input at %d", n, i)
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j > i && l.At(i, j) != 0 {
					t.Fatalf("n=%d: upper triangle L[%d][%d] = %g, want 0", n, i, j, l.At(i, j))
				}
				s := 0.0
				for k := 0; k <= min(i, j); k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEq(s, orig.At(i, j), 1e-7*float64(n)) {
					t.Fatalf("n=%d: (L·Lt)[%d][%d] = %g, want %g", n, i, j, s, orig.At(i, j))
				}
			}
		}
	}
}

// TestCholeskyIndefiniteBeyondFirstPanel pins the pivot-failure error
// to the correct column when the breakdown happens in a later panel.
func TestCholeskyIndefiniteBeyondFirstPanel(t *testing.T) {
	n := cholBlock + 40
	a := NewDense(n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	bad := cholBlock + 7
	a.Set(bad, bad, -2)
	_, err := Cholesky(a)
	if err == nil {
		t.Fatal("indefinite matrix factored")
	}
	want := fmt.Sprintf("column %d", bad)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %s", err, want)
	}
}
