package linalg

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ccdac/internal/fault"
)

// Sparse is a symmetric sparse matrix assembled from coordinate
// triplets, intended for nodal conductance matrices of RC networks.
// Only one triangle needs to be stamped for off-diagonal entries if
// Symmetric stamping is used via AddSym.
type Sparse struct {
	N    int
	rows [][]sparseEntry // per-row adjacency, kept sorted by column
}

type sparseEntry struct {
	col int
	val float64
}

// NewSparse returns a zero n×n symmetric sparse matrix.
func NewSparse(n int) *Sparse {
	return &Sparse{N: n, rows: make([][]sparseEntry, n)}
}

// Add increments entry (i, j) by v. For symmetric stamping of an
// off-diagonal conductance use AddSym.
func (s *Sparse) Add(i, j int, v float64) {
	if i < 0 || i >= s.N || j < 0 || j >= s.N {
		panic(fmt.Sprintf("linalg: sparse index (%d,%d) out of range n=%d", i, j, s.N))
	}
	row := s.rows[i]
	k := sort.Search(len(row), func(k int) bool { return row[k].col >= j })
	if k < len(row) && row[k].col == j {
		row[k].val += v
		return
	}
	row = append(row, sparseEntry{})
	copy(row[k+1:], row[k:])
	row[k] = sparseEntry{col: j, val: v}
	s.rows[i] = row
}

// AddSym increments both (i, j) and (j, i) by v.
func (s *Sparse) AddSym(i, j int, v float64) {
	s.Add(i, j, v)
	if i != j {
		s.Add(j, i, v)
	}
}

// At returns entry (i, j).
func (s *Sparse) At(i, j int) float64 {
	row := s.rows[i]
	k := sort.Search(len(row), func(k int) bool { return row[k].col >= j })
	if k < len(row) && row[k].col == j {
		return row[k].val
	}
	return 0
}

// MulVec computes y = S·x.
func (s *Sparse) MulVec(x, y []float64) {
	for i := 0; i < s.N; i++ {
		acc := 0.0
		for _, e := range s.rows[i] {
			acc += e.val * x[e.col]
		}
		y[i] = acc
	}
}

// ToDense materializes the sparse matrix as a dense one — used by the
// direct-factorization fallback when the iterative solve stalls.
func (s *Sparse) ToDense() *Dense {
	d := NewDense(s.N)
	for i, row := range s.rows {
		for _, e := range row {
			d.Data[i*s.N+e.col] = e.val
		}
	}
	return d
}

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int {
	n := 0
	for _, r := range s.rows {
		n += len(r)
	}
	return n
}

// SolveCG solves S·x = b for a symmetric positive-definite S using
// Jacobi-preconditioned conjugate gradients. tol is the relative
// residual target (e.g. 1e-12); maxIter <= 0 selects 10·N iterations.
func (s *Sparse) SolveCG(b []float64, tol float64, maxIter int) ([]float64, error) {
	x, _, err := s.SolveCGIter(b, tol, maxIter)
	return x, err
}

// cgScratch holds the five working vectors of one CG solve. Extraction
// solves two moment systems per bit network, so steady-state serving
// churns through thousands of solves; pooling the scratch (everything
// but the returned solution) removes five of the six allocations per
// solve without changing a single arithmetic step.
type cgScratch struct {
	mInv, r, z, p, ap []float64
}

var cgScratchPool = sync.Pool{New: func() any { return &cgScratch{} }}

// grow resizes every vector to n, reallocating only on growth.
func (c *cgScratch) grow(n int) {
	if cap(c.mInv) < n {
		c.mInv = make([]float64, n)
		c.r = make([]float64, n)
		c.z = make([]float64, n)
		c.p = make([]float64, n)
		c.ap = make([]float64, n)
		return
	}
	c.mInv, c.r, c.z, c.p, c.ap = c.mInv[:n], c.r[:n], c.z[:n], c.p[:n], c.ap[:n]
}

// SolveCGIter is SolveCG, additionally reporting the number of CG
// iterations performed — the solver-effort metric surfaced by the
// observability layer (maxIter when the solve did not converge).
func (s *Sparse) SolveCGIter(b []float64, tol float64, maxIter int) ([]float64, int, error) {
	x, st, err := s.SolveCGStats(b, tol, maxIter)
	return x, st.Iterations, err
}

// CGStats reports the effort and terminal accuracy of one CG solve —
// the raw material for the numeric-health telemetry. Residual is the
// final relative residual ‖b − A·x‖₂/‖b‖₂ (0 for a zero rhs, which is
// solved exactly); on ErrNotConverged it is the residual at the
// iteration cap, quantifying how far the solve was from the target
// before the dense fallback took over.
type CGStats struct {
	Iterations int
	Residual   float64
}

// SolveCGStats is SolveCGIter, additionally reporting the final
// relative residual reached.
func (s *Sparse) SolveCGStats(b []float64, tol float64, maxIter int) ([]float64, CGStats, error) {
	if err := fault.Check(fault.StageLinalgCG); err != nil {
		return nil, CGStats{}, err
	}
	n := s.N
	if len(b) != n {
		return nil, CGStats{}, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	scratch := cgScratchPool.Get().(*cgScratch)
	defer cgScratchPool.Put(scratch)
	scratch.grow(n)
	// Jacobi preconditioner: inverse diagonal.
	mInv := scratch.mInv
	for i := 0; i < n; i++ {
		d := s.At(i, i)
		if d <= 0 {
			return nil, CGStats{}, fmt.Errorf("linalg: non-positive diagonal %g at %d (matrix not SPD)", d, i)
		}
		mInv[i] = 1 / d
	}
	x := make([]float64, n) // escapes as the result; never pooled
	r := scratch.r
	copy(r, b)
	normB := norm2(b)
	if normB == 0 {
		return x, CGStats{}, nil
	}
	z, p := scratch.z, scratch.p
	for i := range z {
		z[i] = mInv[i] * r[i]
	}
	copy(p, z)
	rz := dot(r, z)
	ap := scratch.ap
	for it := 0; it < maxIter; it++ {
		s.MulVec(p, ap)
		pap := dot(p, ap)
		if pap <= 0 {
			return nil, CGStats{Iterations: it, Residual: norm2(r) / normB},
				fmt.Errorf("linalg: breakdown pᵀAp = %g at iteration %d", pap, it)
		}
		alpha := rz / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		if res := norm2(r); res <= tol*normB {
			return x, CGStats{Iterations: it + 1, Residual: res / normB}, nil
		}
		for i := range z {
			z[i] = mInv[i] * r[i]
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, CGStats{Iterations: maxIter, Residual: norm2(r) / normB}, ErrNotConverged
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func norm2(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}
