// Package variation implements the paper's process-variation models
// (Sec. II-C): the deterministic linear oxide-gradient model (Eq. 3)
// and the spatially-correlated random mismatch model (Eqs. 4-6), whose
// per-capacitor covariance matrix drives the 3σ INL/DNL analysis, plus
// a Cholesky-based correlated Monte-Carlo sampler as a cross-check
// extension.
//
// Performance: the covariance builds (both the capacitor-level one of
// Analyze and the unit-level one of MonteCarlo) are the analysis hot
// loops — quadratic in unit cells. They run on a bounded worker pool
// (one covariance row per work item; see internal/par for the worker
// budget plumbing) over the memoized exp-form correlation table of
// tech.RhoTable, and every parallel result is written by index, so a
// run's output is bit-identical at any worker count. See
// docs/PERFORMANCE.md.
package variation

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
	"ccdac/internal/linalg"
	"ccdac/internal/memo"
	"ccdac/internal/obs"
	"ccdac/internal/par"
	"ccdac/internal/tech"
)

// Memoization (opt-in via memo.WithEnabled / core.Config.Memo): the
// covariance matrices depend only on unit-cell geometry and the
// (sigma_u, rho_u, L_c) mismatch parameters — not on resistances,
// gradients or angles — so theta sweeps, Monte-Carlo/yield runs and
// electrical-knob sweeps over one geometry share a single build. The
// capacitor-level matrix is tiny ((N+1)²) but costs ~n² pair
// evaluations to build; the unit-level Cholesky factor is O(n³) to
// compute and n² floats to keep, hence the larger bound.
var (
	covCache  = memo.Register(memo.New("variation_cov", 8<<20, 0))
	cholCache = memo.Register(memo.New("variation_chol", 256<<20, 0))
)

// denseCodec spills *linalg.Dense values (covariances and Cholesky
// factors — the entries whose recomputation is the O(n²)/O(n³) cost
// the caches exist to avoid).
var denseCodec = memo.Codec{
	Encode: func(v any) ([]byte, bool) {
		m, ok := v.(*linalg.Dense)
		if !ok {
			return nil, false
		}
		data, err := m.MarshalBinary()
		return data, err == nil
	},
	Decode: func(data []byte) (any, int64, bool) {
		m := new(linalg.Dense)
		if m.UnmarshalBinary(data) != nil {
			return nil, 0, false
		}
		return m, int64(len(m.Data))*8 + 64, true
	},
}

// EnableMemoSpill attaches a spill tier to the variation stage caches:
// Cholesky factors and covariances evicted under memory pressure are
// persisted through sp and restored on a later miss instead of being
// refactored at O(n³). Call once at startup, before traffic.
func EnableMemoSpill(sp memo.Spill) {
	covCache.SetSpill(sp, denseCodec)
	cholCache.SetSpill(sp, denseCodec)
}

// mismatchKey appends the mismatch parameters a covariance consumes.
func mismatchKey(k *memo.Key, t *tech.Technology) *memo.Key {
	return k.F64(t.SigmaU()).F64(t.Mis.RhoU).F64(t.Mis.LcUm)
}

// covKeyOf identifies a capacitor-level covariance: every unit-cell
// position grouped by capacitor, the mismatch parameters, and the
// kernel-family mode (the structured and dense builds agree only to
// tolerance, so a memo entry must never cross modes — that would make
// a memoized run byte-different from a cold one).
func covKeyOf(g *cellGeom, t *tech.Technology, mode FFTMode) string {
	k := memo.NewKey("variation/cov/v2").Int(int(mode)).Int(len(g.cells))
	for _, cells := range g.cells {
		k.Int(len(cells))
		for _, p := range cells {
			k.F64(p.X).F64(p.Y)
		}
	}
	return mismatchKey(k, t).Sum()
}

// covarianceMemo is the covariance build behind the memo cache: a hit
// returns the shared (immutable) matrix; a miss builds — structured or
// dense per covarianceAuto — and populates the cache when the context
// opts in. Degradation warnings accompany a fresh build only; they
// describe a run's own path, not a cache donor's.
func covarianceMemo(ctx context.Context, g *cellGeom, t *tech.Technology) (*linalg.Dense, []string, error) {
	mode := FFTModeOf(ctx)
	key := ""
	if memo.Enabled(ctx) {
		key = covKeyOf(g, t, mode)
		if v, ok := covCache.Get(key); ok {
			return v.(*linalg.Dense), nil, nil
		}
	}
	cov, warns, err := covarianceAuto(ctx, g, t, mode)
	if err != nil {
		return nil, nil, err
	}
	if key != "" {
		covCache.Put(key, cov, int64(len(cov.Data))*8+64)
	}
	return cov, warns, nil
}

// Positioner maps a placement cell to its physical center in microns;
// the routed layout provides this (channel widths shift columns).
type Positioner func(geom.Cell) geom.Pt

// GridPositioner returns a plain-grid positioner with no routing
// channels, useful for placement-only analyses and tests.
func GridPositioner(t *tech.Technology) Positioner {
	return func(c geom.Cell) geom.Pt {
		return geom.Pt{
			X: (float64(c.Col) + 0.5) * t.Unit.W,
			Y: (float64(c.Row) + 0.5) * t.Unit.H,
		}
	}
}

// Analysis carries the variation view of one placement at one gradient
// angle.
type Analysis struct {
	// Bits is the DAC resolution N; capacitors are C_0..C_N.
	Bits int
	// Counts[k] is the number of unit cells of C_k (including any
	// chessboard doubling).
	Counts []int
	// CuFF is the unit capacitance in fF.
	CuFF float64
	// ThetaRad is the oxide-gradient angle used for CStar.
	ThetaRad float64
	// CStar[k] is C_k* of Eq. 3: the gradient-shifted capacitance in fF.
	CStar []float64
	// Cov is the (N+1)x(N+1) capacitor covariance matrix in fF^2:
	// Cov[j][k] = sigma_u^2 * sum_{a in C_j, b in C_k} rho_ab, which
	// reduces to Eq. 6's sigma_p^2, sigma_q^2 and Cov(p,q) entries.
	Cov *linalg.Dense
	// Warnings records degradations the analysis survived — currently
	// the structured-covariance FFT path falling back to the dense
	// build. The pipeline surfaces them through Result.Warnings.
	Warnings []string
}

// DCSys returns the systematic shift Delta C_k^sys = C_k* - n_k C_u
// (Eq. 12) in fF.
func (a *Analysis) DCSys(k int) float64 {
	return a.CStar[k] - float64(a.Counts[k])*a.CuFF
}

// SigmaOn returns sigma of Delta C_ON(i) per Eq. 13 for the given
// switch states D_1..D_N (D[k] indexes capacitor k; D[0] is ignored —
// C_0 is always grounded).
func (a *Analysis) SigmaOn(d []bool) float64 {
	v := 0.0
	for j := 1; j <= a.Bits; j++ {
		if !d[j] {
			continue
		}
		for k := 1; k <= a.Bits; k++ {
			if d[k] {
				v += a.Cov.At(j, k)
			}
		}
	}
	return math.Sqrt(math.Max(0, v))
}

// SigmaT returns sigma of Delta C_T per Eq. 14 (all capacitors,
// including C_0).
func (a *Analysis) SigmaT() float64 {
	v := 0.0
	for j := 0; j <= a.Bits; j++ {
		for k := 0; k <= a.Bits; k++ {
			v += a.Cov.At(j, k)
		}
	}
	return math.Sqrt(math.Max(0, v))
}

// cellGeom is the gathered geometry of one placement: per-capacitor
// unit-cell centers, their placement-grid coordinates (the structured
// covariance indexes its lattice by them), and the occupied-array
// centroid the gradient is referenced to.
type cellGeom struct {
	cells      [][]geom.Pt
	rcs        [][]geom.Cell
	flat       []cellPt
	counts     []int
	rows, cols int
	cx, cy     float64
}

// gatherCells positions every unit cell and computes the centroid.
func gatherCells(m *ccmatrix.Matrix, pos Positioner) *cellGeom {
	g := &cellGeom{
		cells:  make([][]geom.Pt, m.Bits+1),
		rcs:    make([][]geom.Cell, m.Bits+1),
		counts: make([]int, m.Bits+1),
		rows:   m.Rows,
		cols:   m.Cols,
	}
	total := 0
	for k := 0; k <= m.Bits; k++ {
		for _, c := range m.CellsOf(k) {
			p := pos(c)
			g.cells[k] = append(g.cells[k], p)
			g.rcs[k] = append(g.rcs[k], c)
			g.flat = append(g.flat, cellPt{c: c, p: p})
			g.cx += p.X
			g.cy += p.Y
			total++
		}
		g.counts[k] = len(g.cells[k])
	}
	g.cx /= float64(total)
	g.cy /= float64(total)
	return g
}

// gradientCStar evaluates Eq. 3 at one angle:
// C_k* = sum_j C_u * t0/t_j with
// t_j = t0 (1 + gamma (x cos th + y sin th) + q r^2), gamma in 1/um
// and q in 1/um^2 (the quadratic term is an extension; the paper's
// model is linear, q = 0).
func gradientCStar(g *cellGeom, t *tech.Technology, thetaRad float64) []float64 {
	gamma := t.Mis.GradientPPMPerUm * 1e-6
	quad := t.Mis.QuadGradientPPMPerUm2 * 1e-6
	cosT, sinT := math.Cos(thetaRad), math.Sin(thetaRad)
	out := make([]float64, len(g.cells))
	for k, cells := range g.cells {
		sum := 0.0
		for _, p := range cells {
			dx, dy := p.X-g.cx, p.Y-g.cy
			tRatio := 1 + gamma*(dx*cosT+dy*sinT) + quad*(dx*dx+dy*dy)
			sum += t.Unit.CfF / tRatio
		}
		out[k] = sum
	}
	return out
}

// covariance builds the capacitor-level covariance matrix (Eqs. 4-6)
// on the context's worker budget: one covariance row per work item,
// entries written by index, cancellation checked once per row. Each
// row keeps a local memo over the shared tech.RhoTable, so the
// ~n²/2 correlation evaluations collapse onto the layout's distinct
// quantized distances; the caller receives the evaluation and memo-hit
// counts for the run's observability record.
func covariance(ctx context.Context, g *cellGeom, t *tech.Technology) (*linalg.Dense, int64, int64, error) {
	bits := len(g.cells) - 1
	sigmaU2 := t.SigmaU() * t.SigmaU()
	rt := t.RhoTable()
	cov := linalg.NewDense(bits + 1)
	var calls, fetches atomic.Int64
	err := par.ForN(par.Workers(ctx), bits+1, func(i int) error {
		// Claim heavy rows first: row j's work grows with C_j's cell
		// count (2^(j-1) cells), so handing out high bits early keeps
		// the pool balanced. Writes stay index-addressed regardless.
		j := bits - i
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("variation: covariance row %d: %w", j, err)
		}
		local := rt.Local()
		cj := g.cells[j]
		// Diagonal entry: rho(0) = 1 self terms plus twice the strict
		// upper pair sum (symmetry halves the work).
		s := float64(len(cj))
		for a := 0; a < len(cj); a++ {
			pa := cj[a]
			for b := a + 1; b < len(cj); b++ {
				dx, dy := pa.X-cj[b].X, pa.Y-cj[b].Y
				s += 2 * local.RhoSq(dx*dx+dy*dy)
			}
		}
		cov.Set(j, j, sigmaU2*s)
		for k := j + 1; k <= bits; k++ {
			ck := g.cells[k]
			s := 0.0
			for _, pa := range cj {
				for _, pb := range ck {
					dx, dy := pa.X-pb.X, pa.Y-pb.Y
					s += local.RhoSq(dx*dx + dy*dy)
				}
			}
			c := sigmaU2 * s
			cov.Set(j, k, c)
			cov.Set(k, j, c)
		}
		c, f := local.Stats()
		calls.Add(c)
		fetches.Add(f)
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	return cov, calls.Load(), fetches.Load(), nil
}

// Analyze computes the variation view of a placement: the gradient
// capacitor shifts at angle thetaRad, and the random-mismatch
// covariance matrix (angle-independent).
func Analyze(m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, thetaRad float64) (*Analysis, error) {
	return AnalyzeContext(context.Background(), m, pos, t, thetaRad)
}

// AnalyzeContext is Analyze under a context. The covariance build is
// the analysis hot loop (quadratic in unit cells — it dominates a
// large-array run); it runs on the context's worker budget (see
// par.WithWorkers; default GOMAXPROCS) with cancellation checked once
// per covariance row, bounding the post-cancel latency to one row's
// work per worker.
func AnalyzeContext(ctx context.Context, m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, thetaRad float64) (*Analysis, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("variation: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("variation: %w", err)
	}
	g := gatherCells(m, pos)
	a := &Analysis{
		Bits:     m.Bits,
		CuFF:     t.Unit.CfF,
		ThetaRad: thetaRad,
		CStar:    gradientCStar(g, t, thetaRad),
		Counts:   g.counts,
	}
	cov, warns, err := covarianceMemo(ctx, g, t)
	if err != nil {
		return nil, err
	}
	a.Cov = cov
	a.Warnings = warns
	return a, nil
}

// SweepTheta analyzes the placement over nSteps gradient angles in
// [0, pi) and returns one Analysis per angle. The covariance matrix is
// computed once and shared (it is angle-independent).
func SweepTheta(m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, nSteps int) ([]*Analysis, error) {
	return SweepThetaContext(context.Background(), m, pos, t, nSteps)
}

// SweepThetaContext is SweepTheta under a context: cancellation is
// checked within the covariance build and before every angle step, so
// a canceled sweep returns promptly.
//
// The geometry is gathered once and the angle-independent covariance
// is built exactly once (the seed recomputed — then discarded — a full
// covariance per angle); the remaining per-angle gradient evaluations
// are linear in cells and run on the context's worker budget.
func SweepThetaContext(ctx context.Context, m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, nSteps int) ([]*Analysis, error) {
	if nSteps < 1 {
		return nil, fmt.Errorf("variation: need at least 1 sweep step, got %d", nSteps)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("variation: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("variation: %w", err)
	}
	g := gatherCells(m, pos)
	cov, warns, err := covarianceMemo(ctx, g, t)
	if err != nil {
		return nil, err
	}
	// The flattened gradient geometry (centered offsets, radii) is
	// angle-independent: gather it once from the pool and evaluate
	// every angle against it, so the per-angle work allocates nothing
	// beyond its result (see gradGeom; asserted by
	// TestSweepAngleZeroAllocs).
	gg := gradPool.Get().(*gradGeom)
	defer gradPool.Put(gg)
	gg.load(g, t)
	out := make([]*Analysis, nSteps)
	err = par.ForN(par.Workers(ctx), nSteps, func(i int) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("variation: sweep step %d: %w", i, err)
		}
		theta := math.Pi * float64(i) / float64(nSteps)
		cstar := make([]float64, len(g.cells))
		gg.cstarInto(cstar, theta)
		out[i] = &Analysis{
			Bits:     m.Bits,
			CuFF:     t.Unit.CfF,
			ThetaRad: theta,
			CStar:    cstar,
			Counts:   g.counts,
			Cov:      cov, // shared: angle-independent
			Warnings: warns,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MonteCarlo draws correlated random-mismatch samples at the unit-cell
// level (covariance sigma_u^2 rho_u^(d/Lc), sampled via Cholesky) and
// returns per-sample capacitor shifts DeltaC[sample][k] in fF, with the
// systematic gradient shift of the supplied analysis added in. It
// cross-checks the closed-form 3σ model.
func MonteCarlo(m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, a *Analysis, samples int, seed int64) ([][]float64, error) {
	return MonteCarloContext(context.Background(), m, pos, t, a, samples, seed)
}

// mcUnit is one positioned unit cell of the Monte-Carlo sampler.
type mcUnit struct {
	bit int
	c   geom.Cell
	p   geom.Pt
}

// MonteCarloContext is MonteCarlo under a context: cancellation is
// checked once per unit-covariance row and once per sample, mirroring
// AnalyzeContext, so a canceled run stops within one row's (or one
// sample's) work per worker instead of finishing every sample.
//
// Sampling is deterministic for a fixed seed independent of the worker
// count: sample s draws from its own RNG stream derived from (seed, s)
// by a splitmix64 mix, and results are written by sample index.
//
// On a regular grid (unless the context selects FFTOff) samples come
// from the spectral circulant-embedding sampler — O(n log n) per
// sample, no n×n matrix and no Cholesky — which preserves the
// per-stream determinism but consumes its streams differently than
// the dense sampler, so the two paths draw different (equally
// distributed) samples for one seed.
func MonteCarloContext(ctx context.Context, m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, a *Analysis, samples int, seed int64) ([][]float64, error) {
	if samples < 1 {
		return nil, fmt.Errorf("variation: need at least 1 sample")
	}
	return MonteCarloRangeContext(ctx, m, pos, t, a, 0, samples, seed)
}

// MonteCarloRangeContext draws the contiguous sample block [from, to)
// of the stream MonteCarloContext consumes: sample s seeds its private
// RNG from (seed, s) regardless of the block bounds, so partitioning a
// run into blocks — checkpointed long jobs, coalesced batch tails —
// reproduces the full run's output byte for byte at any block size.
// out[i] is absolute sample from+i.
func MonteCarloRangeContext(ctx context.Context, m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, a *Analysis, from, to int, seed int64) ([][]float64, error) {
	if from < 0 || to <= from {
		return nil, fmt.Errorf("variation: bad sample range [%d,%d)", from, to)
	}
	units := gatherUnits(m, pos)
	if FFTModeOf(ctx) != FFTOff {
		if out, ok, err := monteCarloFFT(ctx, units, m.Rows, m.Cols, t, a, from, to, seed); ok || err != nil {
			return out, err
		}
	}
	return monteCarloDense(ctx, units, m.Bits, t, a, from, to, seed)
}

// gatherUnits flattens the placement into bit-tagged unit cells, in
// the canonical bit-major order every Monte-Carlo sampler folds in.
func gatherUnits(m *ccmatrix.Matrix, pos Positioner) []mcUnit {
	var units []mcUnit
	for k := 0; k <= m.Bits; k++ {
		for _, c := range m.CellsOf(k) {
			units = append(units, mcUnit{bit: k, c: c, p: pos(c)})
		}
	}
	return units
}

// monteCarloDense is the dense-Cholesky sampling path over flattened
// units: the fallback when the placement fits no spectral lattice (or
// the context forces FFTOff).
func monteCarloDense(ctx context.Context, units []mcUnit, bits int, t *tech.Technology, a *Analysis, from, to int, seed int64) ([][]float64, error) {
	n := len(units)
	sigmaU2 := t.SigmaU() * t.SigmaU()
	workers := par.Workers(ctx)
	// The unit-level Cholesky factor depends only on unit positions and
	// the mismatch parameters — not on samples, seed, angle or gradient
	// — so memo-enabled yield/spec sweeps over one geometry factor the
	// O(n³) decomposition exactly once.
	cholKey := ""
	var chol *linalg.Dense
	if memo.Enabled(ctx) {
		k := memo.NewKey("variation/chol/v1").Int(n)
		for _, u := range units {
			k.F64(u.p.X).F64(u.p.Y)
		}
		cholKey = mismatchKey(k, t).Sum()
		if v, ok := cholCache.Get(cholKey); ok {
			chol = v.(*linalg.Dense)
		}
	}
	if chol == nil {
		cov := linalg.NewDense(n)
		rt := t.RhoTable()
		if err := par.ForN(workers, n, func(i int) error {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("variation: unit covariance row %d: %w", i, err)
			}
			local := rt.Local()
			for j := i; j < n; j++ {
				dx, dy := units[i].p.X-units[j].p.X, units[i].p.Y-units[j].p.Y
				c := sigmaU2 * local.RhoSq(dx*dx+dy*dy)
				cov.Set(i, j, c)
				cov.Set(j, i, c)
			}
			// Tiny jitter keeps the near-singular high-correlation matrix
			// numerically positive definite.
			cov.Add(i, i, sigmaU2*1e-9)
			return nil
		}); err != nil {
			return nil, err
		}
		var err error
		chol, err = linalg.Cholesky(cov)
		if err != nil {
			return nil, fmt.Errorf("variation: unit covariance: %w", err)
		}
		if cholKey != "" {
			cholCache.Put(cholKey, chol, int64(len(chol.Data))*8+64)
		}
	}
	// Conditioning of the unit covariance, estimated from the factor
	// diagonal: the high-correlation regime that needs the 1e-9 jitter
	// above is exactly the regime this gauge exists to make visible.
	obs.SetGauge(ctx, "ccdac_numeric_cov_cond_estimate", linalg.CondEstFromChol(chol))
	out := make([][]float64, to-from)
	if err := par.ForN(workers, to-from, func(i int) error {
		s := from + i
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("variation: monte-carlo sample %d: %w", s, err)
		}
		rng := rand.New(rand.NewSource(mcStreamSeed(seed, s)))
		z := make([]float64, n)
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		// delta = L z.
		shifts := make([]float64, bits+1)
		for i := 0; i < n; i++ {
			d := 0.0
			for j := 0; j <= i; j++ {
				d += chol.At(i, j) * z[j]
			}
			shifts[units[i].bit] += d
		}
		for k := 0; k <= bits; k++ {
			shifts[k] += a.DCSys(k)
		}
		out[i] = shifts
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Shared captures the expensive, angle- and seed-independent prefix of
// a variation analysis — the gathered geometry and the covariance
// matrix — so compatible analyses (distinct theta, seed or sample
// counts over one layout) build it once and share it structurally.
// Unlike the memo caches (opt-in, byte-bounded, eviction-prone), the
// sharing here is explicit: the caller holds the value exactly as long
// as the batch needs it. The job tier's compatibility micro-batching
// (internal/jobs) is the primary consumer.
type Shared struct {
	bits  int
	g     *cellGeom
	t     *tech.Technology
	cov   *linalg.Dense
	warns []string

	// units is the flattened placement the Monte-Carlo samplers fold;
	// the spectral sampler's fixed setup (grid fit + embedding) is
	// geometry- and technology-only, so it is built at most once per
	// Shared and reused by every sample block.
	units  []mcUnit
	mcOnce sync.Once
	mcSmp  *mcSampler
	mcOK   bool
}

// NewShared is NewSharedContext under context.Background.
func NewShared(m *ccmatrix.Matrix, pos Positioner, t *tech.Technology) (*Shared, error) {
	return NewSharedContext(context.Background(), m, pos, t)
}

// NewSharedContext gathers the placement geometry and builds the
// covariance matrix once, on the context's worker budget (and through
// the memo cache when the context opts in — the two sharing layers
// compose).
func NewSharedContext(ctx context.Context, m *ccmatrix.Matrix, pos Positioner, t *tech.Technology) (*Shared, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("variation: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("variation: %w", err)
	}
	g := gatherCells(m, pos)
	cov, warns, err := covarianceMemo(ctx, g, t)
	if err != nil {
		return nil, err
	}
	return &Shared{bits: m.Bits, g: g, t: t, cov: cov, warns: warns,
		units: gatherUnits(m, pos)}, nil
}

// Warnings reports degradations the shared covariance build survived.
func (sh *Shared) Warnings() []string { return sh.warns }

// Tech returns the technology the shared prefix was built against.
func (sh *Shared) Tech() *tech.Technology { return sh.t }

// MonteCarloRangeContext draws the contiguous sample block [from, to)
// of the shared layout's per-sample streams — byte-identical to the
// package-level MonteCarloRangeContext over the same placement, seed
// and FFT mode — while paying the spectral sampler's fixed setup
// (grid fit, circulant embedding, spectrum factorization) at most
// once per Shared. Checkpointed block loops and coalesced batch tails
// reuse the sampler instead of rebuilding it per call, which is what
// keeps the per-request tail cheap relative to the shared prefix.
func (sh *Shared) MonteCarloRangeContext(ctx context.Context, a *Analysis, from, to int, seed int64) ([][]float64, error) {
	if from < 0 || to <= from {
		return nil, fmt.Errorf("variation: bad sample range [%d,%d)", from, to)
	}
	if FFTModeOf(ctx) != FFTOff {
		sh.mcOnce.Do(func() {
			sh.mcSmp, sh.mcOK = newMCSampler(ctx, sh.units, sh.g.rows, sh.g.cols, sh.t)
		})
		if sh.mcOK {
			return sh.mcSmp.run(ctx, sh.units, a, from, to, seed)
		}
	}
	return monteCarloDense(ctx, sh.units, sh.bits, sh.t, a, from, to, seed)
}

// Analysis evaluates the gradient at one angle against the shared
// geometry and covariance. The work is linear in unit cells — the
// quadratic covariance cost was paid in NewSharedContext — and the
// result is identical to AnalyzeContext over the same inputs.
func (sh *Shared) Analysis(thetaRad float64) *Analysis {
	return &Analysis{
		Bits:     sh.bits,
		CuFF:     sh.t.Unit.CfF,
		ThetaRad: thetaRad,
		CStar:    gradientCStar(sh.g, sh.t, thetaRad),
		Counts:   sh.g.counts,
		Cov:      sh.cov, // shared: angle-independent
		Warnings: sh.warns,
	}
}

// mcStreamSeed derives the RNG stream seed of sample s from the user
// seed via a splitmix64 mix: adjacent raw seeds of Go's LCG source are
// correlated, and per-sample streams are what make the sampler's
// output independent of the worker count.
func mcStreamSeed(seed int64, s int) int64 {
	z := uint64(seed) + (uint64(s)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
