// Package variation implements the paper's process-variation models
// (Sec. II-C): the deterministic linear oxide-gradient model (Eq. 3)
// and the spatially-correlated random mismatch model (Eqs. 4-6), whose
// per-capacitor covariance matrix drives the 3σ INL/DNL analysis, plus
// a Cholesky-based correlated Monte-Carlo sampler as a cross-check
// extension.
package variation

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
	"ccdac/internal/linalg"
	"ccdac/internal/tech"
)

// Positioner maps a placement cell to its physical center in microns;
// the routed layout provides this (channel widths shift columns).
type Positioner func(geom.Cell) geom.Pt

// GridPositioner returns a plain-grid positioner with no routing
// channels, useful for placement-only analyses and tests.
func GridPositioner(t *tech.Technology) Positioner {
	return func(c geom.Cell) geom.Pt {
		return geom.Pt{
			X: (float64(c.Col) + 0.5) * t.Unit.W,
			Y: (float64(c.Row) + 0.5) * t.Unit.H,
		}
	}
}

// Analysis carries the variation view of one placement at one gradient
// angle.
type Analysis struct {
	// Bits is the DAC resolution N; capacitors are C_0..C_N.
	Bits int
	// Counts[k] is the number of unit cells of C_k (including any
	// chessboard doubling).
	Counts []int
	// CuFF is the unit capacitance in fF.
	CuFF float64
	// ThetaRad is the oxide-gradient angle used for CStar.
	ThetaRad float64
	// CStar[k] is C_k* of Eq. 3: the gradient-shifted capacitance in fF.
	CStar []float64
	// Cov is the (N+1)x(N+1) capacitor covariance matrix in fF^2:
	// Cov[j][k] = sigma_u^2 * sum_{a in C_j, b in C_k} rho_ab, which
	// reduces to Eq. 6's sigma_p^2, sigma_q^2 and Cov(p,q) entries.
	Cov *linalg.Dense
}

// DCSys returns the systematic shift Delta C_k^sys = C_k* - n_k C_u
// (Eq. 12) in fF.
func (a *Analysis) DCSys(k int) float64 {
	return a.CStar[k] - float64(a.Counts[k])*a.CuFF
}

// SigmaOn returns sigma of Delta C_ON(i) per Eq. 13 for the given
// switch states D_1..D_N (D[k] indexes capacitor k; D[0] is ignored —
// C_0 is always grounded).
func (a *Analysis) SigmaOn(d []bool) float64 {
	v := 0.0
	for j := 1; j <= a.Bits; j++ {
		if !d[j] {
			continue
		}
		for k := 1; k <= a.Bits; k++ {
			if d[k] {
				v += a.Cov.At(j, k)
			}
		}
	}
	return math.Sqrt(math.Max(0, v))
}

// SigmaT returns sigma of Delta C_T per Eq. 14 (all capacitors,
// including C_0).
func (a *Analysis) SigmaT() float64 {
	v := 0.0
	for j := 0; j <= a.Bits; j++ {
		for k := 0; k <= a.Bits; k++ {
			v += a.Cov.At(j, k)
		}
	}
	return math.Sqrt(math.Max(0, v))
}

// Analyze computes the variation view of a placement: the gradient
// capacitor shifts at angle thetaRad, and the random-mismatch
// covariance matrix (angle-independent).
func Analyze(m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, thetaRad float64) (*Analysis, error) {
	return AnalyzeContext(context.Background(), m, pos, t, thetaRad)
}

// AnalyzeContext is Analyze under a context. The covariance build is
// the analysis hot loop (quadratic in unit cells — it dominates a
// large-array run), so cancellation is checked once per covariance
// row, bounding the post-cancel latency to one row's work.
func AnalyzeContext(ctx context.Context, m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, thetaRad float64) (*Analysis, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("variation: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("variation: %w", err)
	}
	a := &Analysis{
		Bits:     m.Bits,
		CuFF:     t.Unit.CfF,
		ThetaRad: thetaRad,
		CStar:    make([]float64, m.Bits+1),
		Counts:   make([]int, m.Bits+1),
	}

	cells := make([][]geom.Pt, m.Bits+1)
	// The gradient is referenced to the centroid of the occupied array.
	var cx, cy float64
	total := 0
	for k := 0; k <= m.Bits; k++ {
		for _, c := range m.CellsOf(k) {
			p := pos(c)
			cells[k] = append(cells[k], p)
			cx += p.X
			cy += p.Y
			total++
		}
		a.Counts[k] = len(cells[k])
	}
	cx /= float64(total)
	cy /= float64(total)

	// Eq. 3: C_k* = sum_j C_u * t0/t_j with
	// t_j = t0 (1 + gamma (x cos th + y sin th) + q r^2), gamma in
	// 1/um and q in 1/um^2 (the quadratic term is an extension; the
	// paper's model is linear, q = 0).
	gamma := t.Mis.GradientPPMPerUm * 1e-6
	quad := t.Mis.QuadGradientPPMPerUm2 * 1e-6
	cosT, sinT := math.Cos(thetaRad), math.Sin(thetaRad)
	for k := 0; k <= m.Bits; k++ {
		sum := 0.0
		for _, p := range cells[k] {
			dx, dy := p.X-cx, p.Y-cy
			tRatio := 1 + gamma*(dx*cosT+dy*sinT) + quad*(dx*dx+dy*dy)
			sum += t.Unit.CfF / tRatio
		}
		a.CStar[k] = sum
	}

	// Random mismatch: capacitor-level covariance from unit-cell
	// correlations rho_ab = rho_u^(d/Lc) (Eqs. 4-6).
	sigmaU2 := t.SigmaU() * t.SigmaU()
	a.Cov = linalg.NewDense(m.Bits + 1)
	for j := 0; j <= m.Bits; j++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("variation: covariance row %d: %w", j, err)
		}
		for k := j; k <= m.Bits; k++ {
			s := 0.0
			for _, pa := range cells[j] {
				for _, pb := range cells[k] {
					s += t.Rho(pa.Dist(pb))
				}
			}
			c := sigmaU2 * s
			a.Cov.Set(j, k, c)
			a.Cov.Set(k, j, c)
		}
	}
	return a, nil
}

// SweepTheta analyzes the placement over nSteps gradient angles in
// [0, pi) and returns one Analysis per angle. The covariance matrix is
// computed once and shared (it is angle-independent).
func SweepTheta(m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, nSteps int) ([]*Analysis, error) {
	return SweepThetaContext(context.Background(), m, pos, t, nSteps)
}

// SweepThetaContext is SweepTheta under a context: cancellation is
// checked before every angle step (and within the first step's
// covariance build), so a canceled sweep returns promptly instead of
// finishing all nSteps angles.
func SweepThetaContext(ctx context.Context, m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, nSteps int) ([]*Analysis, error) {
	if nSteps < 1 {
		return nil, fmt.Errorf("variation: need at least 1 sweep step, got %d", nSteps)
	}
	first, err := AnalyzeContext(ctx, m, pos, t, 0)
	if err != nil {
		return nil, err
	}
	out := make([]*Analysis, nSteps)
	out[0] = first
	for i := 1; i < nSteps; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("variation: sweep step %d: %w", i, err)
		}
		theta := math.Pi * float64(i) / float64(nSteps)
		a, err := AnalyzeContext(ctx, m, pos, t, theta)
		if err != nil {
			return nil, err
		}
		a.Cov = first.Cov // share the angle-independent covariance
		out[i] = a
	}
	return out, nil
}

// MonteCarlo draws correlated random-mismatch samples at the unit-cell
// level (covariance sigma_u^2 rho_u^(d/Lc), sampled via Cholesky) and
// returns per-sample capacitor shifts DeltaC[sample][k] in fF, with the
// systematic gradient shift of the supplied analysis added in. It
// cross-checks the closed-form 3σ model.
func MonteCarlo(m *ccmatrix.Matrix, pos Positioner, t *tech.Technology, a *Analysis, samples int, seed int64) ([][]float64, error) {
	if samples < 1 {
		return nil, fmt.Errorf("variation: need at least 1 sample")
	}
	type unit struct {
		bit int
		p   geom.Pt
	}
	var units []unit
	for k := 0; k <= m.Bits; k++ {
		for _, c := range m.CellsOf(k) {
			units = append(units, unit{bit: k, p: pos(c)})
		}
	}
	n := len(units)
	cov := linalg.NewDense(n)
	sigmaU2 := t.SigmaU() * t.SigmaU()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			c := sigmaU2 * t.Rho(units[i].p.Dist(units[j].p))
			cov.Set(i, j, c)
			cov.Set(j, i, c)
		}
		// Tiny jitter keeps the near-singular high-correlation matrix
		// numerically positive definite.
		cov.Add(i, i, sigmaU2*1e-9)
	}
	chol, err := linalg.Cholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("variation: unit covariance: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, samples)
	z := make([]float64, n)
	for s := 0; s < samples; s++ {
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		// delta = L z.
		shifts := make([]float64, m.Bits+1)
		for i := 0; i < n; i++ {
			d := 0.0
			for j := 0; j <= i; j++ {
				d += chol.At(i, j) * z[j]
			}
			shifts[units[i].bit] += d
		}
		for k := 0; k <= m.Bits; k++ {
			shifts[k] += a.DCSys(k)
		}
		out[s] = shifts
	}
	return out, nil
}
