package variation

import (
	"context"
	"errors"
	"math"
	"testing"

	"ccdac/internal/par"
	"ccdac/internal/place"
	"ccdac/internal/tech"
)

// withWorkers returns a context carrying an explicit worker budget.
func withWorkers(n int) context.Context {
	return par.WithWorkers(context.Background(), n)
}

// TestCovarianceSerialParallelBitwise: the parallel covariance build is
// bitwise identical to the serial one — each matrix entry is summed in
// the same order regardless of which worker computes its row, and memo
// values are key-derived. This is stronger than the 1e-12 bound the
// acceptance criterion asks for.
func TestCovarianceSerialParallelBitwise(t *testing.T) {
	m, err := place.NewSpiral(8)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	serial, err := AnalyzeContext(withWorkers(-1), m, GridPositioner(tch), tch, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		parallel, err := AnalyzeContext(withWorkers(workers), m, GridPositioner(tch), tch, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := m.Bits + 1
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if s, p := serial.Cov.At(j, k), parallel.Cov.At(j, k); s != p {
					t.Fatalf("workers=%d: Cov(%d,%d) = %.17g parallel vs %.17g serial", workers, j, k, p, s)
				}
			}
		}
	}
}

// TestCovarianceMatchesNaiveReference re-derives the covariance with
// the seed's formulation — math.Pow(rho_u, dist/Lc) over every cell
// pair, no memo, no symmetry halving — and checks the optimized build
// against it. The 1e-9 bound absorbs the d² quantization (sub-nm in
// distance) and exp-vs-pow rounding.
func TestCovarianceMatchesNaiveReference(t *testing.T) {
	m, err := place.NewChessboard(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	pos := GridPositioner(tch)
	a, err := Analyze(m, pos, tch, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := gatherCells(m, pos)
	sigmaU2 := tch.SigmaU() * tch.SigmaU()
	for j := 0; j <= m.Bits; j++ {
		for k := j; k <= m.Bits; k++ {
			var sum float64
			for _, pj := range g.cells[j] {
				for _, pk := range g.cells[k] {
					sum += math.Pow(tch.Mis.RhoU, pj.Dist(pk)/tch.Mis.LcUm)
				}
			}
			want := sigmaU2 * sum
			got := a.Cov.At(j, k)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("Cov(%d,%d) = %.15g, naive reference %.15g", j, k, got, want)
			}
		}
	}
}

// TestSweepThetaSerialParallelBitwise: every analysis of the sweep is
// identical at any worker count, and the covariance stays shared.
func TestSweepThetaSerialParallelBitwise(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	serial, err := SweepThetaContext(withWorkers(-1), m, GridPositioner(tch), tch, 12)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepThetaContext(withWorkers(8), m, GridPositioner(tch), tch, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].ThetaRad != parallel[i].ThetaRad {
			t.Fatalf("step %d: theta %g vs %g", i, parallel[i].ThetaRad, serial[i].ThetaRad)
		}
		for b := range serial[i].CStar {
			if serial[i].CStar[b] != parallel[i].CStar[b] {
				t.Fatalf("step %d bit %d: CStar %.17g vs %.17g", i, b, parallel[i].CStar[b], serial[i].CStar[b])
			}
		}
		if parallel[i].Cov != parallel[0].Cov {
			t.Fatal("parallel sweep no longer shares one covariance")
		}
	}
}

// TestMonteCarloIdenticalAcrossWorkerCounts: per-sample RNG streams
// make a fixed-seed run byte-identical at any worker count.
func TestMonteCarloIdenticalAcrossWorkerCounts(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	pos := GridPositioner(tch)
	a, err := Analyze(m, pos, tch, 0)
	if err != nil {
		t.Fatal(err)
	}
	const samples, seed = 40, 12345
	serial, err := MonteCarloContext(withWorkers(-1), m, pos, tch, a, samples, seed)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MonteCarloContext(withWorkers(8), m, pos, tch, a, samples, seed)
	if err != nil {
		t.Fatal(err)
	}
	for s := range serial {
		for k := range serial[s] {
			if serial[s][k] != parallel[s][k] {
				t.Fatalf("sample %d bit %d: %.17g parallel vs %.17g serial", s, k, parallel[s][k], serial[s][k])
			}
		}
	}
}

// TestMonteCarloCancellation: a canceled context aborts the sample
// loop with a wrapped context error instead of returning partial data.
func TestMonteCarloCancellation(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	pos := GridPositioner(tch)
	a, err := Analyze(m, pos, tch, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MonteCarloContext(ctx, m, pos, tch, a, 100, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("MonteCarloContext on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := AnalyzeContext(ctx, m, pos, tch, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeContext on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := SweepThetaContext(ctx, m, pos, tch, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepThetaContext on canceled ctx: err = %v, want context.Canceled", err)
	}
}
