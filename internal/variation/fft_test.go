package variation

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/fault"
	"ccdac/internal/geom"
	"ccdac/internal/obs"
	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
)

// tracedCtx returns a context carrying a fresh trace, plus the trace
// for counter assertions, so tests can verify which covariance engine
// actually ran rather than trusting the selection logic.
func tracedCtx(t *testing.T) (context.Context, *obs.Trace) {
	t.Helper()
	tr := obs.New(obs.Options{})
	t.Cleanup(tr.Finish)
	return obs.WithTrace(context.Background(), tr), tr
}

// TestStructuredCovarianceMatchesDense is the engine-equivalence
// property: over spiral, chessboard and randomized symmetric layouts
// on the regular grid, the FFT path must reproduce the dense pair-sum
// covariance to near round-off. Both paths read the same quantized rho
// memo, so the only daylight is transform arithmetic; the trace
// counter proves the structured engine actually ran.
func TestStructuredCovarianceMatchesDense(t *testing.T) {
	tch := tech.FinFET12()
	pos := GridPositioner(tch)
	for _, tc := range []struct {
		name string
		mk   func() (*ccmatrix.Matrix, error)
	}{
		{"spiral8", func() (*ccmatrix.Matrix, error) { return place.NewSpiral(8) }},
		{"chessboard6", func() (*ccmatrix.Matrix, error) { return place.NewChessboard(6) }},
		{"random7_seed1", func() (*ccmatrix.Matrix, error) { return place.NewRandomSymmetric(7, 1) }},
		{"random7_seed99", func() (*ccmatrix.Matrix, error) { return place.NewRandomSymmetric(7, 99) }},
		{"random9_seed7", func() (*ccmatrix.Matrix, error) { return place.NewRandomSymmetric(9, 7) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			ctx, tr := tracedCtx(t)
			structured, err := AnalyzeContext(ctx, m, pos, tch, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got := tr.Registry().Snapshot().Counter("ccdac_numeric_fft_structured_total", obs.Labels{"path": "analyze"}); got != 1 {
				t.Fatalf("structured_total{analyze} = %d, want 1 (FFT path did not engage)", got)
			}
			dense, err := AnalyzeContext(WithFFTMode(context.Background(), FFTOff), m, pos, tch, 0)
			if err != nil {
				t.Fatal(err)
			}
			worst := 0.0
			for j := 0; j <= m.Bits; j++ {
				for k := 0; k <= m.Bits; k++ {
					s, d := structured.Cov.At(j, k), dense.Cov.At(j, k)
					if e := math.Abs(s-d) / math.Abs(d); e > worst {
						worst = e
					}
				}
			}
			if worst > 1e-10 {
				t.Errorf("FFT vs dense covariance rel err = %g, want <= 1e-10", worst)
			}
			t.Logf("FFT vs dense covariance rel err = %.3g", worst)
		})
	}
}

// TestMonteCarloFFTSampleCovariance: the spectral sampler's empirical
// capacitor-shift covariance must converge to the analytic covariance
// the dense engine computes — the distributional equivalence the
// sampler swap rests on. Fixed seed makes the drift deterministic.
func TestMonteCarloFFTSampleCovariance(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	pos := GridPositioner(tch)
	a, err := Analyze(m, pos, tch, 0)
	if err != nil {
		t.Fatal(err)
	}
	const samples, seed = 4000, 7
	ctx, tr := tracedCtx(t)
	out, err := MonteCarloContext(ctx, m, pos, tch, a, samples, seed)
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Registry().Snapshot()
	if got := snap.Counter("ccdac_numeric_fft_structured_total", obs.Labels{"path": "mc"}); got != 1 {
		t.Fatalf("structured_total{mc} = %d, want 1 (spectral sampler did not engage)", got)
	}
	if got := snap.Counter("ccdac_numeric_fft_samples_total", nil); got != samples {
		t.Errorf("samples_total = %d, want %d", got, samples)
	}

	// Empirical covariance of the random part (systematic shift removed).
	n := m.Bits + 1
	acc := make([]float64, n*n)
	for _, shifts := range out {
		for j := 0; j < n; j++ {
			dj := shifts[j] - a.DCSys(j)
			for k := j; k < n; k++ {
				acc[j*n+k] += dj * (shifts[k] - a.DCSys(k))
			}
		}
	}
	worst := 0.0
	for j := 0; j < n; j++ {
		for k := j; k < n; k++ {
			got := acc[j*n+k] / samples
			want := a.Cov.At(j, k)
			scale := math.Sqrt(a.Cov.At(j, j) * a.Cov.At(k, k))
			if e := math.Abs(got-want) / scale; e > worst {
				worst = e
			}
		}
	}
	// Monte-Carlo noise at 4000 samples is ~1/sqrt(4000) ≈ 1.6% per
	// normalized entry; 0.1 leaves a wide deterministic margin.
	if worst > 0.1 {
		t.Errorf("spectral-sampler covariance drift = %g, want <= 0.1", worst)
	}
	t.Logf("spectral-sampler covariance drift = %.3g over %d samples", worst, samples)
}

// TestFFTFaultFallsBackDense: an injected numeric.fft fault degrades
// to the dense engine — bitwise-identical results to FFTOff, a
// warning on the analysis, and the fallback counter incremented. The
// CG→Cholesky ladder contract, applied to the covariance engine.
func TestFFTFaultFallsBackDense(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	pos := GridPositioner(tch)

	fault.Enable(fault.StageFFT, 0, errors.New("injected fft fault"))
	defer fault.Reset()
	ctx, tr := tracedCtx(t)
	got, err := AnalyzeContext(ctx, m, pos, tch, 0)
	if err != nil {
		t.Fatalf("faulted analyze must degrade, not fail: %v", err)
	}
	if !fault.Fired(fault.StageFFT) {
		t.Fatal("injected fault never fired")
	}
	if len(got.Warnings) == 0 || !strings.Contains(got.Warnings[0], "dense fallback") {
		t.Errorf("Warnings = %q, want a dense-fallback warning", got.Warnings)
	}
	if c := tr.Registry().Snapshot().Counter("ccdac_numeric_fft_fallback_total", obs.Labels{"path": "analyze"}); c != 1 {
		t.Errorf("fallback_total{analyze} = %d, want 1", c)
	}
	want, err := AnalyzeContext(WithFFTMode(context.Background(), FFTOff), m, pos, tch, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= m.Bits; j++ {
		for k := 0; k <= m.Bits; k++ {
			if g, w := got.Cov.At(j, k), want.Cov.At(j, k); g != w {
				t.Fatalf("Cov(%d,%d) = %.17g faulted vs %.17g dense — fallback is not the dense path", j, k, g, w)
			}
		}
	}

	// Same ladder for the sampler: the fault pushes Monte Carlo onto the
	// dense Cholesky path, whose fixed-seed output is byte-identical to
	// an explicit FFTOff run.
	fault.Reset()
	fault.Enable(fault.StageFFT, 0, errors.New("injected fft fault"))
	const samples, seed = 16, 99
	mctx, mtr := tracedCtx(t)
	faulted, err := MonteCarloContext(mctx, m, pos, tch, got, samples, seed)
	if err != nil {
		t.Fatal(err)
	}
	if c := mtr.Registry().Snapshot().Counter("ccdac_numeric_fft_fallback_total", obs.Labels{"path": "mc"}); c != 1 {
		t.Errorf("fallback_total{mc} = %d, want 1", c)
	}
	fault.Reset()
	dense, err := MonteCarloContext(WithFFTMode(context.Background(), FFTOff), m, pos, tch, got, samples, seed)
	if err != nil {
		t.Fatal(err)
	}
	for s := range dense {
		for k := range dense[s] {
			if faulted[s][k] != dense[s][k] {
				t.Fatalf("sample %d bit %d: %.17g faulted vs %.17g dense", s, k, faulted[s][k], dense[s][k])
			}
		}
	}
}

// TestIrregularLayoutKeepsDensePath: a positioner off both structured
// lattices must not engage the structured path — no structured
// counter, no fallback counter (an irregular layout is the dense path
// working as designed, not a degradation), no warnings.
func TestIrregularLayoutKeepsDensePath(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	grid := GridPositioner(tch)
	warped := func(c geom.Cell) geom.Pt {
		p := grid(c)
		// Row-dependent x warp: breaks the uniform lattice AND the
		// separable (shared column x) one, far beyond the fit tolerance,
		// while keeping positions sane.
		p.X += 0.01 * (p.Y + 1) * p.X * p.X / (tch.Unit.W * float64(m.Cols))
		return p
	}
	ctx, tr := tracedCtx(t)
	a, err := AnalyzeContext(ctx, m, warped, tch, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Registry().Snapshot()
	if c := snap.Counter("ccdac_numeric_fft_structured_total", obs.Labels{"path": "analyze"}); c != 0 {
		t.Errorf("structured_total{analyze} = %d on an irregular layout, want 0", c)
	}
	if c := snap.Counter("ccdac_numeric_fft_fallback_total", obs.Labels{"path": "analyze"}); c != 0 {
		t.Errorf("fallback_total{analyze} = %d on an irregular layout, want 0 (not a degradation)", c)
	}
	if len(a.Warnings) != 0 {
		t.Errorf("Warnings = %q on an irregular layout, want none", a.Warnings)
	}
}

// routedLayout routes a placement and returns it with the physical
// cell positioner — the product flow's geometry, whose variable
// channel widths put the columns off any uniform pitch.
func routedLayout(t *testing.T, m *ccmatrix.Matrix, tch *tech.Technology) Positioner {
	t.Helper()
	l, err := route.Route(m, tch, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l.CellCenter
}

// TestRoutedLayoutStructuredCovariance: the separable tier must engage
// on real routed layouts — the product flow serve and cmd/yield drive
// — and reproduce the dense covariance to near round-off. The test
// first proves the geometry does NOT fit the uniform lattice, so the
// equivalence exercises the row-spectral path, not the 2-D one.
func TestRoutedLayoutStructuredCovariance(t *testing.T) {
	tch := tech.FinFET12()
	for _, tc := range []struct {
		name string
		mk   func() (*ccmatrix.Matrix, error)
	}{
		{"spiral8", func() (*ccmatrix.Matrix, error) { return place.NewSpiral(8) }},
		{"chessboard6", func() (*ccmatrix.Matrix, error) { return place.NewChessboard(6) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			pos := routedLayout(t, m, tch)
			g := gatherCells(m, pos)
			if _, uniform := fitRegularGrid(g.flat, g.rows, g.cols); uniform {
				t.Fatal("routed layout fits the uniform lattice — test would not cover the separable tier")
			}
			if _, ok := fitSeparableGrid(g.flat, g.rows, g.cols); !ok {
				t.Fatal("routed layout does not fit the separable lattice")
			}
			ctx, tr := tracedCtx(t)
			structured, err := AnalyzeContext(ctx, m, pos, tch, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got := tr.Registry().Snapshot().Counter("ccdac_numeric_fft_structured_total", obs.Labels{"path": "analyze"}); got != 1 {
				t.Fatalf("structured_total{analyze} = %d, want 1 (separable path did not engage)", got)
			}
			dense, err := AnalyzeContext(WithFFTMode(context.Background(), FFTOff), m, pos, tch, 0)
			if err != nil {
				t.Fatal(err)
			}
			worst := 0.0
			for j := 0; j <= m.Bits; j++ {
				for k := 0; k <= m.Bits; k++ {
					s, d := structured.Cov.At(j, k), dense.Cov.At(j, k)
					if e := math.Abs(s-d) / math.Abs(d); e > worst {
						worst = e
					}
				}
			}
			if worst > 1e-10 {
				t.Errorf("separable vs dense covariance rel err = %g, want <= 1e-10", worst)
			}
			t.Logf("separable vs dense covariance rel err = %.3g", worst)
		})
	}
}

// TestRoutedMonteCarloFFTSampleCovariance: the separable spectral
// sampler's empirical covariance must converge to the analytic one on
// a routed layout — the correctness of the per-frequency factorized
// draw, on the geometry cmd/yield actually samples.
func TestRoutedMonteCarloFFTSampleCovariance(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	pos := routedLayout(t, m, tch)
	a, err := Analyze(m, pos, tch, 0)
	if err != nil {
		t.Fatal(err)
	}
	const samples, seed = 4000, 11
	ctx, tr := tracedCtx(t)
	out, err := MonteCarloContext(ctx, m, pos, tch, a, samples, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Registry().Snapshot().Counter("ccdac_numeric_fft_structured_total", obs.Labels{"path": "mc"}); got != 1 {
		t.Fatalf("structured_total{mc} = %d, want 1 (separable sampler did not engage)", got)
	}
	n := m.Bits + 1
	acc := make([]float64, n*n)
	for _, shifts := range out {
		for j := 0; j < n; j++ {
			dj := shifts[j] - a.DCSys(j)
			for k := j; k < n; k++ {
				acc[j*n+k] += dj * (shifts[k] - a.DCSys(k))
			}
		}
	}
	worst := 0.0
	for j := 0; j < n; j++ {
		for k := j; k < n; k++ {
			got := acc[j*n+k] / samples
			want := a.Cov.At(j, k)
			scale := math.Sqrt(a.Cov.At(j, j) * a.Cov.At(k, k))
			if e := math.Abs(got-want) / scale; e > worst {
				worst = e
			}
		}
	}
	if worst > 0.1 {
		t.Errorf("separable-sampler covariance drift = %g, want <= 0.1", worst)
	}
	t.Logf("separable-sampler covariance drift = %.3g over %d samples", worst, samples)
}

// TestSweepAngleZeroAllocs pins the satellite's steady-state claim:
// one angle evaluation against the pooled gradient scratch performs
// zero allocations.
func TestSweepAngleZeroAllocs(t *testing.T) {
	m, err := place.NewSpiral(8)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	g := gatherCells(m, GridPositioner(tch))
	gg := gradPool.Get().(*gradGeom)
	defer gradPool.Put(gg)
	gg.load(g, tch)
	dst := make([]float64, len(g.cells))
	if allocs := testing.AllocsPerRun(100, func() {
		gg.cstarInto(dst, 0.37)
	}); allocs != 0 {
		t.Errorf("cstarInto allocates %v per angle, want 0", allocs)
	}
}

// TestSharedMonteCarloMatchesPackage pins the Shared sampler-reuse
// contract behind the job tier's coalesced tails and checkpointed
// block loops: Shared.MonteCarloRangeContext must reproduce the
// package-level MonteCarloRangeContext byte for byte — on the
// spectral path, on the dense FFTOff path, and at any block partition
// — while paying the spectral setup exactly once across blocks.
func TestSharedMonteCarloMatchesPackage(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	pos := GridPositioner(tch)
	const samples, seed, block = 64, 9, 17
	for _, tc := range []struct {
		name string
		mode FFTMode
	}{
		{"spectral", FFTAuto},
		{"dense", FFTOff},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sh, err := NewShared(m, pos, tch)
			if err != nil {
				t.Fatal(err)
			}
			a := sh.Analysis(math.Pi / 4)
			ctx, tr := tracedCtx(t)
			ctx = WithFFTMode(ctx, tc.mode)
			want, err := MonteCarloRangeContext(ctx, m, pos, tch, a, 0, samples, seed)
			if err != nil {
				t.Fatal(err)
			}
			var got [][]float64
			blocks := 0
			for from := 0; from < samples; from += block {
				to := from + block
				if to > samples {
					to = samples
				}
				blk, err := sh.MonteCarloRangeContext(ctx, a, from, to, seed)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, blk...)
				blocks++
			}
			if len(got) != len(want) {
				t.Fatalf("got %d samples, want %d", len(got), len(want))
			}
			for s := range want {
				for k := range want[s] {
					if got[s][k] != want[s][k] {
						t.Fatalf("sample %d bit %d: shared %v != package %v", s, k, got[s][k], want[s][k])
					}
				}
			}
			snap := tr.Registry().Snapshot()
			structured := snap.Counter("ccdac_numeric_fft_structured_total", obs.Labels{"path": "mc"})
			switch tc.mode {
			case FFTOff:
				if structured != 0 {
					t.Errorf("structured_total{mc} = %d, want 0 on the dense path", structured)
				}
			default:
				// The package call pays the setup once; the Shared pays it
				// once more across all its blocks — not once per block.
				if structured != 2 {
					t.Errorf("structured_total{mc} = %d over 1 package call + %d shared blocks, want 2 (setup not shared)",
						structured, blocks)
				}
			}
		})
	}
}
