package variation

import (
	"math"
	"testing"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/linalg"
	"ccdac/internal/place"
	"ccdac/internal/tech"
)

func analyzeStyle(t *testing.T, bits int, style place.Style, theta float64) (*ccmatrix.Matrix, *Analysis) {
	t.Helper()
	var m *ccmatrix.Matrix
	var err error
	switch style {
	case place.Spiral:
		m, err = place.NewSpiral(bits)
	case place.Chessboard:
		m, err = place.NewChessboard(bits)
	default:
		m, err = place.NewBlockChessboard(bits, place.BCParams{CoreBits: 4, BlockCells: 2})
	}
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	a, err := Analyze(m, GridPositioner(tch), tch, theta)
	if err != nil {
		t.Fatal(err)
	}
	return m, a
}

func TestCStarNearNominal(t *testing.T) {
	// With a 10 ppm/um gradient over a ~14 um array, shifts are tiny.
	_, a := analyzeStyle(t, 6, place.Spiral, math.Pi/4)
	counts := ccmatrix.UnitCounts(6)
	for k := 0; k <= 6; k++ {
		nominal := float64(counts[k]) * a.CuFF
		if rel := math.Abs(a.CStar[k]-nominal) / nominal; rel > 1e-3 {
			t.Errorf("C_%d* off nominal by %g (too large)", k, rel)
		}
		if a.CStar[k] <= 0 {
			t.Errorf("C_%d* non-positive", k)
		}
	}
}

func TestSymmetricPlacementCancelsGradient(t *testing.T) {
	// Exact common-centroid pairs cancel the linear gradient to first
	// order: DCsys of paired capacitors must be second-order small.
	_, a := analyzeStyle(t, 6, place.Spiral, math.Pi/3)
	for k := 2; k <= 6; k++ {
		rel := math.Abs(a.DCSys(k)) / a.CStar[k]
		// First-order term would be ~gamma*span ~ 1e-4; the paired
		// cancellation must leave only ~(gamma*span)^2 ~ 1e-8.
		if rel > 1e-6 {
			t.Errorf("C_%d systematic shift %g not cancelled by symmetry", k, rel)
		}
	}
}

func TestGradientAngleDependence(t *testing.T) {
	// C_0 and C_1 sit diagonally opposite: their shifts move oppositely
	// and depend on the angle.
	_, a0 := analyzeStyle(t, 6, place.Spiral, 0)
	if math.Signbit(a0.DCSys(0)) == math.Signbit(a0.DCSys(1)) && a0.DCSys(0) != 0 {
		t.Errorf("C_0 and C_1 gradient shifts have the same sign: %g, %g",
			a0.DCSys(0), a0.DCSys(1))
	}
}

func TestCovarianceSymmetricPSDish(t *testing.T) {
	_, a := analyzeStyle(t, 6, place.Chessboard, 0)
	n := a.Bits + 1
	for j := 0; j < n; j++ {
		if a.Cov.At(j, j) <= 0 {
			t.Errorf("Var(C_%d) = %g not positive", j, a.Cov.At(j, j))
		}
		for k := 0; k < n; k++ {
			if a.Cov.At(j, k) != a.Cov.At(k, j) {
				t.Errorf("Cov not symmetric at (%d,%d)", j, k)
			}
			// Cauchy-Schwarz.
			if c := a.Cov.At(j, k); c*c > a.Cov.At(j, j)*a.Cov.At(k, k)*(1+1e-9) {
				t.Errorf("Cov(%d,%d) violates Cauchy-Schwarz", j, k)
			}
		}
	}
	// The full matrix should admit a Cholesky factorization (PSD) after
	// negligible regularization.
	reg := a.Cov.Clone()
	for i := 0; i < n; i++ {
		reg.Add(i, i, 1e-12)
	}
	if _, err := linalg.Cholesky(reg); err != nil {
		t.Errorf("capacitor covariance not PSD: %v", err)
	}
}

func TestVarianceMatchesEq6(t *testing.T) {
	// For C_k with n cells, Var = sigma_u^2 (n + 2 S_p); with rho ~ 1
	// (Lc = 1mm >> array), Var ~ sigma_u^2 n^2.
	_, a := analyzeStyle(t, 6, place.Spiral, 0)
	tch := tech.FinFET12()
	s2 := tch.SigmaU() * tch.SigmaU()
	for k := 2; k <= 6; k++ {
		n := float64(a.Counts[k])
		v := a.Cov.At(k, k)
		if v < s2*n || v > s2*n*n*1.0001 {
			t.Errorf("Var(C_%d) = %g outside [n, n^2] sigma_u^2 bounds", k, v)
		}
		// Near-full correlation at this scale.
		if v < 0.95*s2*n*n {
			t.Errorf("Var(C_%d) = %g; expected near n^2 sigma_u^2 = %g at Lc=1mm", k, v, s2*n*n)
		}
	}
}

func TestDispersionLowersRatioVariance(t *testing.T) {
	// The matching figure of merit: variance of the C_k/C_T ratio error
	// proxy sigma^2(C_j) n_k^2 + sigma^2(C_k) n_j^2 - 2 n_j n_k Cov —
	// chessboard (high dispersion) must beat spiral for the MSB pair.
	_, sp := analyzeStyle(t, 8, place.Spiral, 0)
	_, cb := analyzeStyle(t, 8, place.Chessboard, 0)
	mismatch := func(a *Analysis, j, k int) float64 {
		nj, nk := float64(a.Counts[j]), float64(a.Counts[k])
		return a.Cov.At(j, j)/(nj*nj) + a.Cov.At(k, k)/(nk*nk) - 2*a.Cov.At(j, k)/(nj*nk)
	}
	if mismatch(cb, 8, 7) >= mismatch(sp, 8, 7) {
		t.Errorf("chessboard MSB mismatch %g not below spiral %g",
			mismatch(cb, 8, 7), mismatch(sp, 8, 7))
	}
}

func TestSigmaOnSubsetOfSigmaT(t *testing.T) {
	_, a := analyzeStyle(t, 6, place.Spiral, 0)
	d := make([]bool, 7)
	for k := 1; k <= 6; k++ {
		d[k] = true
	}
	allOn := a.SigmaOn(d)
	if allOn <= 0 {
		t.Fatal("sigma_ON must be positive with bits on")
	}
	if a.SigmaT() < allOn {
		t.Errorf("sigma_T %g below sigma_ON(all) %g", a.SigmaT(), allOn)
	}
	// No bits on: zero.
	if got := a.SigmaOn(make([]bool, 7)); got != 0 {
		t.Errorf("sigma_ON with no bits = %g, want 0", got)
	}
	// Monotone: adding a bit cannot reduce sigma (all covariances > 0).
	d5 := make([]bool, 7)
	d5[5] = true
	d56 := make([]bool, 7)
	d56[5], d56[6] = true, true
	if a.SigmaOn(d56) <= a.SigmaOn(d5) {
		t.Error("sigma_ON must grow with more bits on")
	}
}

func TestSweepThetaSharesCovariance(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	as, err := SweepTheta(m, GridPositioner(tch), tch, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 6 {
		t.Fatalf("sweep returned %d analyses", len(as))
	}
	for i, a := range as {
		if a.Cov != as[0].Cov {
			t.Errorf("analysis %d does not share the covariance matrix", i)
		}
		want := math.Pi * float64(i) / 6
		if math.Abs(a.ThetaRad-want) > 1e-12 {
			t.Errorf("analysis %d theta = %g, want %g", i, a.ThetaRad, want)
		}
	}
	if _, err := SweepTheta(m, GridPositioner(tch), tch, 0); err == nil {
		t.Error("zero-step sweep must be rejected")
	}
}

func TestMonteCarloMatches3SigmaScale(t *testing.T) {
	m, a := analyzeStyle(t, 6, place.Spiral, 0)
	tch := tech.FinFET12()
	samples, err := MonteCarlo(m, GridPositioner(tch), tch, a, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical std of DeltaC_6 vs closed-form sqrt(Cov[6][6]).
	var sum, sum2 float64
	for _, s := range samples {
		sum += s[6]
		sum2 += s[6] * s[6]
	}
	n := float64(len(samples))
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	want := math.Sqrt(a.Cov.At(6, 6))
	if math.Abs(std-want)/want > 0.25 {
		t.Errorf("MC std %g vs analytic %g (off > 25%%)", std, want)
	}
	// Mean tracks the systematic shift (near zero for symmetric spiral).
	if math.Abs(mean-a.DCSys(6)) > 4*want/math.Sqrt(n) {
		t.Errorf("MC mean %g vs systematic %g", mean, a.DCSys(6))
	}
}

func TestMonteCarloDeterministicSeed(t *testing.T) {
	m, a := analyzeStyle(t, 6, place.Spiral, 0)
	tch := tech.FinFET12()
	s1, err := MonteCarlo(m, GridPositioner(tch), tch, a, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := MonteCarlo(m, GridPositioner(tch), tch, a, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		for k := range s1[i] {
			if s1[i][k] != s2[i][k] {
				t.Fatal("Monte Carlo must be reproducible per seed")
			}
		}
	}
}

func TestAnalyzeRejectsBadInputs(t *testing.T) {
	tch := tech.FinFET12()
	empty := ccmatrix.New(4, 4, 4, 1)
	if _, err := Analyze(empty, GridPositioner(tch), tch, 0); err == nil {
		t.Error("incomplete placement must be rejected")
	}
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	bad := tech.FinFET12()
	bad.Mis.RhoU = 2
	if _, err := Analyze(m, GridPositioner(tch), bad, 0); err == nil {
		t.Error("invalid technology must be rejected")
	}
}

func TestQuadraticGradientBreaksSpiralNotChessboard(t *testing.T) {
	// Point reflection cancels any linear gradient, but the spiral's
	// ring structure cannot cancel a radial r^2 (bowl) term: the MSB
	// ring sits at a systematically different radius than the LSBs.
	// The chessboard spreads every capacitor over all radii, so the
	// bowl cancels in the ratios.
	tt := tech.FinFET12()
	tt.Mis.GradientPPMPerUm = 0
	tt.Mis.QuadGradientPPMPerUm2 = 5
	pos := GridPositioner(tt)

	sp, err := place.NewSpiral(8)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := place.NewChessboard(8)
	if err != nil {
		t.Fatal(err)
	}
	aSp, err := Analyze(sp, pos, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	aCb, err := Analyze(cb, pos, tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Relative systematic ratio error of the MSB vs the total.
	ratioErr := func(a *Analysis) float64 {
		n := a.Bits
		cT, cTStar := 0.0, 0.0
		for k := 0; k <= n; k++ {
			cT += float64(a.Counts[k]) * a.CuFF
			cTStar += a.CStar[k]
		}
		nom := float64(a.Counts[n]) * a.CuFF / cT
		return math.Abs(a.CStar[n]/cTStar-nom) / nom
	}
	if ratioErr(aSp) < 5*ratioErr(aCb) {
		t.Errorf("spiral bowl-gradient ratio error %g not well above chessboard %g",
			ratioErr(aSp), ratioErr(aCb))
	}
}

func TestQuadraticGradientZeroByDefault(t *testing.T) {
	// The paper's model is linear: the default technology carries no
	// quadratic term, and the spiral's shifts stay ppm-level.
	tt := tech.FinFET12()
	if tt.Mis.QuadGradientPPMPerUm2 != 0 {
		t.Fatal("default technology must have no quadratic gradient")
	}
}
