// Pooled per-sweep gradient scratch. A theta sweep evaluates Eq. 3 at
// every angle over the same cells; the angle-independent parts — the
// centroid-referenced offsets and squared radii, flattened per
// capacitor — used to be re-derived (and the per-angle result
// allocated twice over) inside the angle loop. They are now gathered
// once per sweep into a gradGeom drawn from a sync.Pool (the same
// pattern as the CG solver scratch of PR 5), and each angle runs
// cstarInto, which allocates nothing.
package variation

import (
	"math"
	"sync"

	"ccdac/internal/tech"
)

// gradGeom is the flattened, angle-independent geometry a theta sweep
// evaluates the gradient model over: per-unit-cell centered offsets
// and squared radii, with capacitor k owning units [off[k], off[k+1]),
// plus the technology terms of Eq. 3.
type gradGeom struct {
	dx, dy, rr []float64
	off        []int
	gamma      float64 // linear gradient coefficient, 1/um
	quad       float64 // quadratic extension coefficient, 1/um²
	cuFF       float64
}

var gradPool = sync.Pool{New: func() any { return new(gradGeom) }}

// load fills the scratch from a gathered geometry, reusing the pooled
// slices when they are large enough.
func (gg *gradGeom) load(g *cellGeom, t *tech.Technology) {
	total := 0
	for _, cells := range g.cells {
		total += len(cells)
	}
	gg.dx = grow(gg.dx, total)
	gg.dy = grow(gg.dy, total)
	gg.rr = grow(gg.rr, total)
	if cap(gg.off) < len(g.cells)+1 {
		gg.off = make([]int, len(g.cells)+1)
	}
	gg.off = gg.off[:len(g.cells)+1]
	i := 0
	for k, cells := range g.cells {
		gg.off[k] = i
		for _, p := range cells {
			gg.dx[i] = p.X - g.cx
			gg.dy[i] = p.Y - g.cy
			gg.rr[i] = gg.dx[i]*gg.dx[i] + gg.dy[i]*gg.dy[i]
			i++
		}
	}
	gg.off[len(g.cells)] = i
	gg.gamma = t.Mis.GradientPPMPerUm * 1e-6
	gg.quad = t.Mis.QuadGradientPPMPerUm2 * 1e-6
	gg.cuFF = t.Unit.CfF
}

// cstarInto evaluates Eq. 3 at one angle into dst (len = capacitor
// count). It is read-only on the scratch, so concurrent angles of one
// sweep may share a gradGeom; it performs no allocation.
func (gg *gradGeom) cstarInto(dst []float64, thetaRad float64) {
	// Cos/Sin (not Sincos) to stay bit-identical with gradientCStar.
	cosT, sinT := math.Cos(thetaRad), math.Sin(thetaRad)
	for k := 0; k < len(gg.off)-1; k++ {
		sum := 0.0
		for i := gg.off[k]; i < gg.off[k+1]; i++ {
			tRatio := 1 + gg.gamma*(gg.dx[i]*cosT+gg.dy[i]*sinT) + gg.quad*gg.rr[i]
			sum += gg.cuFF / tRatio
		}
		dst[k] = sum
	}
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
