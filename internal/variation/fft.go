// FFT-accelerated structured covariance (docs/PERFORMANCE.md,
// "Structured covariance"). The mismatch kernel is stationary —
// rho depends only on the separation — so on a regular placement grid
// the unit-cell covariance is block-Toeplitz with Toeplitz blocks and
// embeds in a circulant (internal/fftk). That turns the two hot dense
// objects into spectral ones:
//
//   - the capacitor-level covariance of Analyze/SweepTheta becomes
//     (N+1) quadratic forms 1_jᵀ C 1_k, evaluated with one FFT matvec
//     per capacitor indicator (two per complex transform via the
//     two-for-one packing) instead of ~n²/2 pair sums;
//   - the Monte-Carlo draw becomes spectral sampling in O(n log n)
//     with no O(n³) Cholesky and no n×n matrix at all.
//
// Selection is automatic, in two structured tiers: the 2-D circulant
// when the positioner output fits a uniform lattice, and the
// row-spectral separable embedding (fftk.SemiEmbedding) when only the
// rows are uniform — the shape of routed layouts, whose
// variable-width channels shift the columns. For sampling the
// engaged embedding's clamped spectrum must additionally stay within
// tolerance. Anything else falls back to the dense path, counted by
// ccdac_numeric_fft_fallback_total and surfaced through
// Analysis.Warnings, mirroring the CG→Cholesky ladder.
package variation

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ccdac/internal/fault"
	"ccdac/internal/fftk"
	"ccdac/internal/geom"
	"ccdac/internal/linalg"
	"ccdac/internal/obs"
	"ccdac/internal/par"
	"ccdac/internal/tech"
)

// newMCRand returns sample s's private RNG stream (see mcStreamSeed).
func newMCRand(seed int64, s int) *rand.Rand {
	return rand.New(rand.NewSource(mcStreamSeed(seed, s)))
}

// fieldPool recycles the per-sample lattice fields of the spectral
// sampler so a million-sample run's steady state allocates only its
// results.
type fieldPool struct{ p sync.Pool }

func newFieldPool(n int) *fieldPool {
	fp := &fieldPool{}
	fp.p.New = func() any { return make([]float64, n) }
	return fp
}

func (fp *fieldPool) get() []float64  { return fp.p.Get().([]float64) }
func (fp *fieldPool) put(f []float64) { fp.p.Put(f) }

// FFTMode selects the covariance/sampling kernel family.
type FFTMode int

const (
	// FFTAuto (the default) takes the structured FFT path whenever the
	// geometry allows and falls back to dense otherwise.
	FFTAuto FFTMode = iota
	// FFTOff always uses the dense path — the pre-FFT behavior, kept
	// reachable for A/B verification and as an operational escape
	// hatch.
	FFTOff
)

type fftModeKey struct{}

// WithFFTMode returns a context selecting the covariance kernel
// family for variation analyses under it.
func WithFFTMode(ctx context.Context, m FFTMode) context.Context {
	return context.WithValue(ctx, fftModeKey{}, m)
}

// FFTModeOf reports the context's kernel-family selection, FFTAuto
// when unset.
func FFTModeOf(ctx context.Context) FFTMode {
	if v, ok := ctx.Value(fftModeKey{}).(FFTMode); ok {
		return v
	}
	return FFTAuto
}

// cellPt pairs a placement cell with its positioned center.
type cellPt struct {
	c geom.Cell
	p geom.Pt
}

// gridPitchTolUm is the absolute position tolerance (microns) for the
// uniform-lattice fit: far below any real pitch, far above the
// floating-point noise of positioner arithmetic.
const gridPitchTolUm = 1e-6

// fitRegularGrid fits positioned cells to a separable uniform lattice
// x = x0 + col·dx, y = y0 + row·dy over a rows×cols placement. It
// returns the lattice pitch when every cell fits within
// gridPitchTolUm; routed layouts with variable channel widths do not
// fit and keep the dense path.
func fitRegularGrid(pts []cellPt, rows, cols int) (fftk.Grid, bool) {
	if len(pts) == 0 || rows < 1 || cols < 1 {
		return fftk.Grid{}, false
	}
	base := pts[0]
	dx, dy := 0.0, 0.0
	haveDX, haveDY := false, false
	for _, cp := range pts[1:] {
		if !haveDX && cp.c.Col != base.c.Col {
			dx = (cp.p.X - base.p.X) / float64(cp.c.Col-base.c.Col)
			haveDX = true
		}
		if !haveDY && cp.c.Row != base.c.Row {
			dy = (cp.p.Y - base.p.Y) / float64(cp.c.Row-base.c.Row)
			haveDY = true
		}
		if haveDX && haveDY {
			break
		}
	}
	for _, cp := range pts {
		wantX := base.p.X + float64(cp.c.Col-base.c.Col)*dx
		wantY := base.p.Y + float64(cp.c.Row-base.c.Row)*dy
		if math.Abs(cp.p.X-wantX) > gridPitchTolUm || math.Abs(cp.p.Y-wantY) > gridPitchTolUm {
			return fftk.Grid{}, false
		}
	}
	return fftk.Grid{Rows: rows, Cols: cols, DX: math.Abs(dx), DY: math.Abs(dy)}, true
}

// fitSeparableGrid fits positioned cells to a separable lattice with
// a uniform row pitch but arbitrary column positions — the shape of
// routed layouts, whose variable-width channel insertions push the
// columns off any uniform pitch while the rows stay on the cell
// height. Requires a complete rows×cols assignment, every cell in a
// column sharing its x, every cell in a row sharing its y, and the
// row ys uniformly spaced, all within gridPitchTolUm. (The transposed
// shape — uniform columns, arbitrary rows — does not occur in this
// flow: channels are vertical.)
func fitSeparableGrid(pts []cellPt, rows, cols int) (fftk.SemiGrid, bool) {
	if rows < 1 || cols < 1 || len(pts) != rows*cols {
		return fftk.SemiGrid{}, false
	}
	colX := make([]float64, cols)
	rowY := make([]float64, rows)
	seenC := make([]bool, cols)
	seenR := make([]bool, rows)
	for _, cp := range pts {
		r, c := cp.c.Row, cp.c.Col
		if r < 0 || r >= rows || c < 0 || c >= cols {
			return fftk.SemiGrid{}, false
		}
		if !seenC[c] {
			colX[c], seenC[c] = cp.p.X, true
		} else if math.Abs(cp.p.X-colX[c]) > gridPitchTolUm {
			return fftk.SemiGrid{}, false
		}
		if !seenR[r] {
			rowY[r], seenR[r] = cp.p.Y, true
		} else if math.Abs(cp.p.Y-rowY[r]) > gridPitchTolUm {
			return fftk.SemiGrid{}, false
		}
	}
	for _, ok := range seenC {
		if !ok {
			return fftk.SemiGrid{}, false
		}
	}
	for _, ok := range seenR {
		if !ok {
			return fftk.SemiGrid{}, false
		}
	}
	dy := 0.0
	if rows > 1 {
		dy = (rowY[rows-1] - rowY[0]) / float64(rows-1)
		for r, y := range rowY {
			if math.Abs(y-(rowY[0]+float64(r)*dy)) > gridPitchTolUm {
				return fftk.SemiGrid{}, false
			}
		}
	}
	return fftk.SemiGrid{Rows: rows, DY: math.Abs(dy), ColX: colX}, true
}

// mismatchEmbedding builds the circulant embedding of the unit-cell
// mismatch covariance sigma_u²·rho(d) over grid, evaluating the kernel
// through the same quantized rho memo as the dense path — the two
// paths therefore agree on every kernel value, not just to kernel
// precision. Returns the embedding plus the rho call/fetch counts.
func mismatchEmbedding(t *tech.Technology, grid fftk.Grid) (*fftk.Embedding, int64, int64, error) {
	sigmaU2 := t.SigmaU() * t.SigmaU()
	local := t.RhoTable().Local()
	emb, err := fftk.NewEmbedding(grid, func(d2 float64) float64 {
		return sigmaU2 * local.RhoSq(d2)
	}, fftk.EmbedOptions{})
	calls, fetches := local.Stats()
	if err != nil {
		return nil, calls, fetches, err
	}
	return emb, calls, fetches, nil
}

// covarianceAuto builds the capacitor-level covariance by a
// structured path when the mode and geometry allow — the 2-D
// circulant on a fully uniform lattice, the row-spectral separable
// path on routed layouts (uniform rows, channel-shifted columns) —
// and the dense path otherwise. A degradation (not an irregular
// layout — that is the dense path working as designed) is counted and
// returned as a warning for Result.Warnings.
func covarianceAuto(ctx context.Context, g *cellGeom, t *tech.Technology, mode FFTMode) (*linalg.Dense, []string, error) {
	if mode != FFTOff {
		var structured func() (*linalg.Dense, error)
		if grid, ok := fitRegularGrid(g.flat, g.rows, g.cols); ok {
			structured = func() (*linalg.Dense, error) { return covarianceFFT(ctx, g, t, grid) }
		} else if sg, ok := fitSeparableGrid(g.flat, g.rows, g.cols); ok {
			structured = func() (*linalg.Dense, error) { return covarianceSemi(ctx, g, t, sg) }
		}
		if structured != nil {
			if ferr := fault.Check(fault.StageFFT); ferr != nil {
				obs.CountL(ctx, "ccdac_numeric_fft_fallback_total", obs.Labels{"path": "analyze"}, 1)
				warn := fmt.Sprintf("analysis: structured covariance unavailable (%v); dense fallback", ferr)
				cov, err := covarianceDense(ctx, g, t)
				return cov, []string{warn}, err
			}
			cov, err := structured()
			if err == nil {
				obs.CountL(ctx, "ccdac_numeric_fft_structured_total", obs.Labels{"path": "analyze"}, 1)
				return cov, nil, nil
			}
			if ctx.Err() != nil {
				return nil, nil, err
			}
			obs.CountL(ctx, "ccdac_numeric_fft_fallback_total", obs.Labels{"path": "analyze"}, 1)
			warn := fmt.Sprintf("analysis: structured covariance unavailable (%v); dense fallback", err)
			cov, derr := covarianceDense(ctx, g, t)
			return cov, []string{warn}, derr
		}
	}
	cov, err := covarianceDense(ctx, g, t)
	return cov, nil, err
}

// covarianceDense is the pair-sum path with its rho-memo counters
// folded into the trace.
func covarianceDense(ctx context.Context, g *cellGeom, t *tech.Technology) (*linalg.Dense, error) {
	cov, calls, fetches, err := covariance(ctx, g, t)
	if err != nil {
		return nil, err
	}
	obs.Count(ctx, "ccdac_variation_rho_calls_total", calls)
	obs.Count(ctx, "ccdac_variation_rho_memo_hits_total", calls-fetches)
	return cov, nil
}

// covarianceFFT evaluates Cov[j][k] = 1_jᵀ C 1_k through the
// embedding: one matvec per capacitor indicator (paired two per
// complex transform), then per-capacitor gathers of the result field.
// Work is O((N/2)·M log M + N·n) instead of O(n²) pair sums. Columns
// are written by index and symmetrized upper-triangle-wins after the
// barrier, so the output is bit-identical at any worker count.
func covarianceFFT(ctx context.Context, g *cellGeom, t *tech.Technology, grid fftk.Grid) (*linalg.Dense, error) {
	emb, calls, fetches, err := mismatchEmbedding(t, grid)
	if err != nil {
		return nil, err
	}
	obs.Count(ctx, "ccdac_variation_rho_calls_total", calls)
	obs.Count(ctx, "ccdac_variation_rho_memo_hits_total", calls-fetches)
	bits := len(g.cells) - 1
	n := g.rows * g.cols
	cov := linalg.NewDense(bits + 1)
	err = par.ForN(par.Workers(ctx), (bits+2)/2, func(ti int) error {
		k1 := 2 * ti
		k2 := k1 + 1
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("variation: covariance column %d: %w", k1, err)
		}
		x1 := make([]float64, n)
		for _, c := range g.rcs[k1] {
			x1[c.Row*g.cols+c.Col] = 1
		}
		y1 := make([]float64, n)
		var y2 []float64
		if k2 <= bits {
			x2 := make([]float64, n)
			for _, c := range g.rcs[k2] {
				x2[c.Row*g.cols+c.Col] = 1
			}
			y2 = make([]float64, n)
			emb.MulVec2(y1, y2, x1, x2)
		} else {
			emb.MulVec(y1, x1)
		}
		for j := 0; j <= bits; j++ {
			s1, s2 := 0.0, 0.0
			for _, c := range g.rcs[j] {
				idx := c.Row*g.cols + c.Col
				s1 += y1[idx]
				if y2 != nil {
					s2 += y2[idx]
				}
			}
			cov.Set(j, k1, s1)
			if y2 != nil {
				cov.Set(j, k2, s2)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Symmetrize, upper triangle winning: entries (j,k) and (k,j) come
	// from different indicator transforms and differ at roundoff.
	for j := 0; j <= bits; j++ {
		for k := j + 1; k <= bits; k++ {
			cov.Set(k, j, cov.At(j, k))
		}
	}
	return cov, nil
}

// mismatchSemiEmbedding is the separable-lattice analog of
// mismatchEmbedding, sharing the same quantized rho memo.
func mismatchSemiEmbedding(t *tech.Technology, sg fftk.SemiGrid) (*fftk.SemiEmbedding, int64, int64, error) {
	sigmaU2 := t.SigmaU() * t.SigmaU()
	local := t.RhoTable().Local()
	emb, err := fftk.NewSemiEmbedding(sg, func(d2 float64) float64 {
		return sigmaU2 * local.RhoSq(d2)
	}, fftk.EmbedOptions{})
	calls, fetches := local.Stats()
	if err != nil {
		return nil, calls, fetches, err
	}
	return emb, calls, fetches, nil
}

// covarianceSemi evaluates the capacitor quadratic forms through the
// row-spectral embedding: per row-frequency the operator is one
// cols×cols cross-spectral matrix, so the full (N+1)² block of forms
// contracts in O(M·(N·C² + N²·C)) — no n×n matrix and no O(n²) pair
// sum. The contraction is serial, hence deterministic at any worker
// count.
func covarianceSemi(ctx context.Context, g *cellGeom, t *tech.Technology, sg fftk.SemiGrid) (*linalg.Dense, error) {
	emb, calls, fetches, err := mismatchSemiEmbedding(t, sg)
	if err != nil {
		return nil, err
	}
	obs.Count(ctx, "ccdac_variation_rho_calls_total", calls)
	obs.Count(ctx, "ccdac_variation_rho_memo_hits_total", calls-fetches)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("variation: covariance: %w", err)
	}
	bits := len(g.cells) - 1
	classes := make([][]int, bits+1)
	for k, rcs := range g.rcs {
		classes[k] = make([]int, len(rcs))
		for i, c := range rcs {
			classes[k][i] = c.Row*g.cols + c.Col
		}
	}
	forms := emb.QuadForms(classes)
	cov := linalg.NewDense(bits + 1)
	for j := 0; j <= bits; j++ {
		for k := 0; k <= bits; k++ {
			cov.Set(j, k, forms[j][k])
		}
	}
	return cov, nil
}

// mcSampler is the spectral Monte-Carlo sampler with its fixed setup
// paid: the grid fit and the circulant embedding (including the
// spectrum factorization behind CanSample) depend only on the
// placement geometry and the technology — not on the gradient
// analysis, the sample range or the seed — so one mcSampler serves
// every block of every compatible run. variation.Shared caches one
// per prefix, which is what lets coalesced batch tails and
// checkpointed block loops skip the rebuild.
type mcSampler struct {
	sampler interface {
		Sample([]float64, *rand.Rand)
	}
	cols   int
	fields *fieldPool
}

// newMCSampler attempts the spectral setup: grid fit plus embedding
// construction. ok reports whether the placement supports the
// spectral path (false → caller takes the dense Cholesky path).
func newMCSampler(ctx context.Context, units []mcUnit, rows, cols int, t *tech.Technology) (*mcSampler, bool) {
	flat := make([]cellPt, len(units))
	for i, u := range units {
		flat[i] = cellPt{c: u.c, p: u.p}
	}
	grid, regular := fitRegularGrid(flat, rows, cols)
	var sg fftk.SemiGrid
	separable := false
	if !regular {
		if sg, separable = fitSeparableGrid(flat, rows, cols); !separable {
			return nil, false
		}
	}
	if ferr := fault.Check(fault.StageFFT); ferr != nil {
		obs.CountL(ctx, "ccdac_numeric_fft_fallback_total", obs.Labels{"path": "mc"}, 1)
		return nil, false
	}
	// Both embeddings expose the same per-sample draw; the separable
	// one additionally pays a one-time per-frequency factorization
	// inside CanSample.
	var sampler interface {
		Sample([]float64, *rand.Rand)
	}
	var calls, fetches int64
	if regular {
		emb, c, f, err := mismatchEmbedding(t, grid)
		calls, fetches = c, f
		if err != nil || !emb.CanSample() {
			obs.CountL(ctx, "ccdac_numeric_fft_fallback_total", obs.Labels{"path": "mc"}, 1)
			return nil, false
		}
		sampler = emb
	} else {
		emb, c, f, err := mismatchSemiEmbedding(t, sg)
		calls, fetches = c, f
		if err != nil || !emb.CanSample() {
			obs.CountL(ctx, "ccdac_numeric_fft_fallback_total", obs.Labels{"path": "mc"}, 1)
			return nil, false
		}
		sampler = emb
	}
	obs.Count(ctx, "ccdac_variation_rho_calls_total", calls)
	obs.Count(ctx, "ccdac_variation_rho_memo_hits_total", calls-fetches)
	obs.CountL(ctx, "ccdac_numeric_fft_structured_total", obs.Labels{"path": "mc"}, 1)
	return &mcSampler{sampler: sampler, cols: cols, fields: newFieldPool(rows * cols)}, true
}

// run draws the sample block [from, to). The per-sample splitmix64
// streams and index-addressed writes keep the output byte-stable at
// any worker count and any block partition, exactly like the dense
// sampler — though the two samplers consume their streams differently
// and so draw different (equally distributed) samples for one seed.
func (ms *mcSampler) run(ctx context.Context, units []mcUnit, a *Analysis, from, to int, seed int64) ([][]float64, error) {
	bits := a.Bits
	out := make([][]float64, to-from)
	err := par.ForN(par.Workers(ctx), to-from, func(i int) error {
		s := from + i
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("variation: monte-carlo sample %d: %w", s, err)
		}
		rng := newMCRand(seed, s)
		field := ms.fields.get()
		defer ms.fields.put(field)
		ms.sampler.Sample(field, rng)
		shifts := make([]float64, bits+1)
		for _, u := range units {
			shifts[u.bit] += field[u.c.Row*ms.cols+u.c.Col]
		}
		for k := 0; k <= bits; k++ {
			shifts[k] += a.DCSys(k)
		}
		out[i] = shifts
		return nil
	})
	if err != nil {
		return nil, err
	}
	obs.Count(ctx, "ccdac_numeric_fft_samples_total", int64(to-from))
	return out, nil
}

// monteCarloFFT attempts the spectral sampling path: ok reports
// whether it ran (false → caller takes the dense Cholesky path).
func monteCarloFFT(ctx context.Context, units []mcUnit, rows, cols int, t *tech.Technology, a *Analysis, from, to int, seed int64) (out [][]float64, ok bool, err error) {
	ms, ok := newMCSampler(ctx, units, rows, cols, t)
	if !ok {
		return nil, false, nil
	}
	out, err = ms.run(ctx, units, a, from, to, seed)
	return out, true, err
}
