package yield

import (
	"math"
	"testing"

	"ccdac/internal/dacmodel"
	"ccdac/internal/place"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

func TestYieldExtremes(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	pos := variation.GridPositioner(tch)

	// Generous spec: everything passes.
	loose, err := Estimate(m, pos, tch, math.Pi/4,
		Spec{MaxAbsDNL: 2, MaxAbsINL: 2}, dacmodel.Parasitics{}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Yield != 1 {
		t.Errorf("loose spec yield = %g, want 1", loose.Yield)
	}
	// Impossible spec: nothing passes.
	tight, err := Estimate(m, pos, tch, math.Pi/4,
		Spec{MaxAbsDNL: 1e-9, MaxAbsINL: 1e-9}, dacmodel.Parasitics{}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Yield != 0 {
		t.Errorf("impossible spec yield = %g, want 0", tight.Yield)
	}
	if tight.WorstINL <= 0 || tight.WorstDNL <= 0 {
		t.Error("worst-sample stats missing")
	}
}

func TestYieldConfidenceInterval(t *testing.T) {
	lo, hi := wilson(50, 100, 1.96)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("CI [%g, %g] does not contain the point estimate", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI [%g, %g] too wide for n=100", lo, hi)
	}
	// Degenerate cases stay in [0, 1].
	if lo, hi := wilson(0, 10, 1.96); lo < 0 || hi > 1 || hi < 0.05 {
		t.Errorf("zero-pass CI [%g, %g]", lo, hi)
	}
	if lo, hi := wilson(10, 10, 1.96); lo > 0.95 || hi != 1 {
		t.Errorf("all-pass CI [%g, %g]", lo, hi)
	}
	if lo, hi := wilson(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("empty CI [%g, %g]", lo, hi)
	}
}

func TestYieldMonotoneInSpec(t *testing.T) {
	m, err := place.NewSpiral(8)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	pos := variation.GridPositioner(tch)
	curve, err := SpecSweep(m, pos, tch, math.Pi/4,
		[]float64{0.002, 0.01, 0.05, 0.5}, dacmodel.Parasitics{}, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Yield < curve[i-1].Yield {
			t.Errorf("yield not monotone in spec: %g then %g",
				curve[i-1].Yield, curve[i].Yield)
		}
	}
	if curve[len(curve)-1].Yield != 1 {
		t.Errorf("0.5 LSB spec yield = %g, want 1 at 8 bits", curve[len(curve)-1].Yield)
	}
}

func TestDispersionImprovesYield(t *testing.T) {
	// The point of [5]: at a tight spec, the high-dispersion chessboard
	// yields at least as well as the spiral.
	tch := tech.FinFET12()
	pos := variation.GridPositioner(tch)
	sp, err := place.NewSpiral(8)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := place.NewChessboard(8)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a spec near the spiral's typical DNL so the two differ.
	spec := Spec{MaxAbsDNL: 0.004, MaxAbsINL: 0.02}
	const n = 120
	ySp, err := Estimate(sp, pos, tch, math.Pi/4, spec, dacmodel.Parasitics{}, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	yCb, err := Estimate(cb, pos, tch, math.Pi/4, spec, dacmodel.Parasitics{}, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if yCb.Yield < ySp.Yield {
		t.Errorf("chessboard yield %g below spiral %g at tight spec", yCb.Yield, ySp.Yield)
	}
}

func TestEstimateRejectsBadInputs(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	pos := variation.GridPositioner(tch)
	if _, err := Estimate(m, pos, tch, 0, Spec{}, dacmodel.Parasitics{}, 10, 1); err == nil {
		t.Error("zero spec must be rejected")
	}
	if _, err := Estimate(m, pos, tch, 0, Spec{MaxAbsDNL: 1, MaxAbsINL: 1}, dacmodel.Parasitics{}, 0, 1); err == nil {
		t.Error("zero samples must be rejected")
	}
}
