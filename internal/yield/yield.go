// Package yield estimates parametric yield of a capacitor-array layout
// against INL/DNL specifications by correlated Monte-Carlo simulation —
// the analysis of the paper's reference [5] (Luo et al., "Impact of
// Capacitance Correlation on Yield Enhancement"), which motivates
// dispersion-aware common-centroid placement: placements whose unit
// cells are well dispersed decorrelate less and pass tighter specs.
package yield

import (
	"context"
	"fmt"
	"math"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/dacmodel"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

// Spec is a pass/fail nonlinearity specification in LSB.
type Spec struct {
	MaxAbsDNL float64
	MaxAbsINL float64
}

// Result is a Monte-Carlo yield estimate.
type Result struct {
	Samples int
	Passed  int
	// Yield is Passed/Samples.
	Yield float64
	// CILow and CIHigh bound the 95% Wilson confidence interval.
	CILow, CIHigh float64
	// WorstDNL and WorstINL are the worst sample values observed.
	WorstDNL, WorstINL float64
}

// Estimate draws correlated mismatch samples (random variation per
// Eqs. 4-6 plus the deterministic gradient at thetaRad) and counts how
// many meet the spec over a full-code INL/DNL sweep.
func Estimate(m *ccmatrix.Matrix, pos variation.Positioner, t *tech.Technology,
	thetaRad float64, spec Spec, par dacmodel.Parasitics, samples int, seed int64) (*Result, error) {
	return EstimateContext(context.Background(), m, pos, t, thetaRad, spec, par, samples, seed)
}

// EstimateContext is Estimate under a context: the covariance build and
// the Monte-Carlo sample loop run on the context's worker budget and
// honor cancellation; the estimate for a fixed seed is identical at any
// worker count.
func EstimateContext(ctx context.Context, m *ccmatrix.Matrix, pos variation.Positioner, t *tech.Technology,
	thetaRad float64, spec Spec, par dacmodel.Parasitics, samples int, seed int64) (*Result, error) {
	if spec.MaxAbsDNL <= 0 || spec.MaxAbsINL <= 0 {
		return nil, fmt.Errorf("yield: spec bounds must be positive, got %+v", spec)
	}
	if samples < 1 {
		return nil, fmt.Errorf("yield: need at least 1 sample")
	}
	a, err := variation.AnalyzeContext(ctx, m, pos, t, thetaRad)
	if err != nil {
		return nil, err
	}
	shifts, err := variation.MonteCarloContext(ctx, m, pos, t, a, samples, seed)
	if err != nil {
		return nil, err
	}
	// Endpoint-corrected INL, as linearity is measured in production:
	// gain/offset errors (e.g. the shared C^TS) are removed, so the
	// spec tests the placement-dependent mismatch.
	nls, err := dacmodel.MonteCarloNLEndpoint(a, shifts, par, t.VRef)
	if err != nil {
		return nil, err
	}
	res := &Result{Samples: samples}
	for _, nl := range nls {
		if nl.MaxAbsDNL > res.WorstDNL {
			res.WorstDNL = nl.MaxAbsDNL
		}
		if nl.MaxAbsINL > res.WorstINL {
			res.WorstINL = nl.MaxAbsINL
		}
		if nl.MaxAbsDNL <= spec.MaxAbsDNL && nl.MaxAbsINL <= spec.MaxAbsINL {
			res.Passed++
		}
	}
	res.Yield = float64(res.Passed) / float64(res.Samples)
	res.CILow, res.CIHigh = wilson(res.Passed, res.Samples, 1.959964)
	return res, nil
}

// wilson returns the Wilson score interval for a binomial proportion.
func wilson(passed, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(passed) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	return lo, hi
}

// SpecSweep estimates yield at several INL specs (DNL spec tied to the
// same value), returning one Result per spec point — a yield curve.
func SpecSweep(m *ccmatrix.Matrix, pos variation.Positioner, t *tech.Technology,
	thetaRad float64, specs []float64, par dacmodel.Parasitics, samples int, seed int64) ([]*Result, error) {
	return SpecSweepContext(context.Background(), m, pos, t, thetaRad, specs, par, samples, seed)
}

// SpecSweepContext is SpecSweep under a context, checking cancellation
// between spec points and within each estimate.
func SpecSweepContext(ctx context.Context, m *ccmatrix.Matrix, pos variation.Positioner, t *tech.Technology,
	thetaRad float64, specs []float64, par dacmodel.Parasitics, samples int, seed int64) ([]*Result, error) {
	out := make([]*Result, 0, len(specs))
	for i, s := range specs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("yield: spec point %d: %w", i, err)
		}
		r, err := EstimateContext(ctx, m, pos, t, thetaRad, Spec{MaxAbsDNL: s, MaxAbsINL: s}, par, samples, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
