// Package yield estimates parametric yield of a capacitor-array layout
// against INL/DNL specifications by correlated Monte-Carlo simulation —
// the analysis of the paper's reference [5] (Luo et al., "Impact of
// Capacitance Correlation on Yield Enhancement"), which motivates
// dispersion-aware common-centroid placement: placements whose unit
// cells are well dispersed decorrelate less and pass tighter specs.
package yield

import (
	"context"
	"fmt"
	"math"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/dacmodel"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

// Spec is a pass/fail nonlinearity specification in LSB.
type Spec struct {
	MaxAbsDNL float64
	MaxAbsINL float64
}

// Result is a Monte-Carlo yield estimate.
type Result struct {
	Samples int
	Passed  int
	// Yield is Passed/Samples.
	Yield float64
	// CILow and CIHigh bound the 95% Wilson confidence interval.
	CILow, CIHigh float64
	// WorstDNL and WorstINL are the worst sample values observed.
	WorstDNL, WorstINL float64
}

// Estimate draws correlated mismatch samples (random variation per
// Eqs. 4-6 plus the deterministic gradient at thetaRad) and counts how
// many meet the spec over a full-code INL/DNL sweep.
func Estimate(m *ccmatrix.Matrix, pos variation.Positioner, t *tech.Technology,
	thetaRad float64, spec Spec, par dacmodel.Parasitics, samples int, seed int64) (*Result, error) {
	return EstimateContext(context.Background(), m, pos, t, thetaRad, spec, par, samples, seed)
}

// EstimateContext is Estimate under a context: the covariance build and
// the Monte-Carlo sample loop run on the context's worker budget and
// honor cancellation; the estimate for a fixed seed is identical at any
// worker count.
func EstimateContext(ctx context.Context, m *ccmatrix.Matrix, pos variation.Positioner, t *tech.Technology,
	thetaRad float64, spec Spec, par dacmodel.Parasitics, samples int, seed int64) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if samples < 1 {
		return nil, fmt.Errorf("yield: need at least 1 sample")
	}
	a, err := variation.AnalyzeContext(ctx, m, pos, t, thetaRad)
	if err != nil {
		return nil, err
	}
	var ty Tally
	if err := BlockContext(ctx, m, pos, t, a, spec, par, 0, samples, seed, &ty); err != nil {
		return nil, err
	}
	return ty.Result(), nil
}

func (s Spec) validate() error {
	if s.MaxAbsDNL <= 0 || s.MaxAbsINL <= 0 {
		return fmt.Errorf("yield: spec bounds must be positive, got %+v", s)
	}
	return nil
}

// Tally accumulates pass/fail evidence across Monte-Carlo sample
// blocks. Passed and the worst values are order-independent; Hash is a
// rolling FNV-1a over each sample's per-sample nonlinearity bits and
// therefore requires blocks to be folded in ascending sample order —
// which the checkpointed job runner does by construction. Two runs
// over the same placement and seed produce equal tallies regardless of
// block partition or worker count, making Hash the byte-identity
// witness for resumed and coalesced runs.
type Tally struct {
	Samples  int     `json:"samples"`
	Passed   int     `json:"passed"`
	WorstDNL float64 `json:"worst_dnl"`
	WorstINL float64 `json:"worst_inl"`
	Hash     uint64  `json:"hash"`
}

// add folds one sample's endpoint-corrected nonlinearity into the
// tally.
func (ty *Tally) add(nl dacmodel.Result, spec Spec) {
	ty.Samples++
	if nl.MaxAbsDNL > ty.WorstDNL {
		ty.WorstDNL = nl.MaxAbsDNL
	}
	if nl.MaxAbsINL > ty.WorstINL {
		ty.WorstINL = nl.MaxAbsINL
	}
	if nl.MaxAbsDNL <= spec.MaxAbsDNL && nl.MaxAbsINL <= spec.MaxAbsINL {
		ty.Passed++
	}
	if ty.Hash == 0 {
		ty.Hash = fnvOffset
	}
	ty.Hash = fnvF64(ty.Hash, nl.MaxAbsDNL)
	ty.Hash = fnvF64(ty.Hash, nl.MaxAbsINL)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvF64 folds one float64's bit pattern into a rolling FNV-1a hash.
func fnvF64(h uint64, v float64) uint64 {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		h ^= bits & 0xff
		h *= fnvPrime
		bits >>= 8
	}
	return h
}

// Result converts the accumulated tally into a yield estimate.
func (ty Tally) Result() *Result {
	res := &Result{
		Samples: ty.Samples, Passed: ty.Passed,
		WorstDNL: ty.WorstDNL, WorstINL: ty.WorstINL,
	}
	if ty.Samples > 0 {
		res.Yield = float64(ty.Passed) / float64(ty.Samples)
	}
	res.CILow, res.CIHigh = wilson(ty.Passed, ty.Samples, 1.959964)
	return res
}

// BlockContext evaluates the contiguous Monte-Carlo sample block
// [from, to) of the estimate's per-sample streams against spec and
// folds it into tally. Partitioning [0, samples) into blocks and
// calling this per block — in order, possibly across process restarts
// — yields a tally identical to one uninterrupted EstimateContext run:
// sample s depends only on (seed, s), and the endpoint-corrected
// nonlinearity is evaluated per sample.
func BlockContext(ctx context.Context, m *ccmatrix.Matrix, pos variation.Positioner, t *tech.Technology,
	a *variation.Analysis, spec Spec, par dacmodel.Parasitics, from, to int, seed int64, tally *Tally) error {
	if err := spec.validate(); err != nil {
		return err
	}
	shifts, err := variation.MonteCarloRangeContext(ctx, m, pos, t, a, from, to, seed)
	if err != nil {
		return err
	}
	// Endpoint-corrected INL, as linearity is measured in production:
	// gain/offset errors (e.g. the shared C^TS) are removed, so the
	// spec tests the placement-dependent mismatch.
	nls, err := dacmodel.MonteCarloNLEndpoint(a, shifts, par, t.VRef)
	if err != nil {
		return err
	}
	for _, nl := range nls {
		tally.add(nl, spec)
	}
	return nil
}

// BlockSharedContext is BlockContext over a prepared variation.Shared:
// identical per-sample streams, endpoint correction and tally folds,
// but the Monte-Carlo sampler's fixed setup is paid at most once by
// the Shared and reused across blocks — the path the job tier's
// coalesced tails and checkpointed long runs take.
func BlockSharedContext(ctx context.Context, sh *variation.Shared, a *variation.Analysis,
	spec Spec, par dacmodel.Parasitics, from, to int, seed int64, tally *Tally) error {
	if err := spec.validate(); err != nil {
		return err
	}
	shifts, err := sh.MonteCarloRangeContext(ctx, a, from, to, seed)
	if err != nil {
		return err
	}
	nls, err := dacmodel.MonteCarloNLEndpoint(a, shifts, par, sh.Tech().VRef)
	if err != nil {
		return err
	}
	for _, nl := range nls {
		tally.add(nl, spec)
	}
	return nil
}

// wilson returns the Wilson score interval for a binomial proportion.
func wilson(passed, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(passed) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	return lo, hi
}

// SpecSweep estimates yield at several INL specs (DNL spec tied to the
// same value), returning one Result per spec point — a yield curve.
func SpecSweep(m *ccmatrix.Matrix, pos variation.Positioner, t *tech.Technology,
	thetaRad float64, specs []float64, par dacmodel.Parasitics, samples int, seed int64) ([]*Result, error) {
	return SpecSweepContext(context.Background(), m, pos, t, thetaRad, specs, par, samples, seed)
}

// SpecSweepContext is SpecSweep under a context, checking cancellation
// between spec points and within each estimate.
func SpecSweepContext(ctx context.Context, m *ccmatrix.Matrix, pos variation.Positioner, t *tech.Technology,
	thetaRad float64, specs []float64, par dacmodel.Parasitics, samples int, seed int64) ([]*Result, error) {
	out := make([]*Result, 0, len(specs))
	for i, s := range specs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("yield: spec point %d: %w", i, err)
		}
		r, err := EstimateContext(ctx, m, pos, t, thetaRad, Spec{MaxAbsDNL: s, MaxAbsINL: s}, par, samples, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
