package calib

import (
	"math"
	"testing"

	"ccdac/internal/sweep"
	"ccdac/internal/tech"
)

func TestFitImprovesSyntheticObjective(t *testing.T) {
	// Synthetic objective: peak at via-R factor 4 and switch-R factor
	// 0.5; Fit must climb toward it from (1, 1).
	base := tech.FinFET12()
	obj := func(tt *tech.Technology) (float64, error) {
		dv := math.Log2(tt.ViaROhm / base.ViaROhm / 4)
		ds := math.Log2(tt.SwitchROhm / base.SwitchROhm / 0.5)
		return -(dv*dv + ds*ds), nil
	}
	res, err := Fit(base, []sweep.Knob{sweep.KnobViaR, sweep.KnobSwitchR}, obj, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= res.BaseScore {
		t.Fatalf("score %g did not improve on base %g", res.Score, res.BaseScore)
	}
	if res.Factors[sweep.KnobViaR] < 2 {
		t.Errorf("via factor %g did not move toward the optimum 4", res.Factors[sweep.KnobViaR])
	}
	if res.Factors[sweep.KnobSwitchR] > 1 {
		t.Errorf("switch factor %g did not move toward the optimum 0.5", res.Factors[sweep.KnobSwitchR])
	}
	if res.Tech == nil || res.Evals < 5 {
		t.Error("result incomplete")
	}
}

func TestFitRejectsNoKnobs(t *testing.T) {
	if _, err := Fit(tech.FinFET12(), nil, func(*tech.Technology) (float64, error) { return 0, nil }, 2); err == nil {
		t.Fatal("empty knob list must be rejected")
	}
}

func TestMeanSpearmanObjective(t *testing.T) {
	// One cheap evaluation at 6 bits: the default technology already
	// has strong shape agreement.
	obj := MeanSpearman([]int{6}, 2)
	score, err := obj(tech.FinFET12())
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.4 || score > 1 {
		t.Errorf("mean Spearman at 6 bits = %g, expected solid positive agreement", score)
	}
}

func TestFitMeanSpearmanTiny(t *testing.T) {
	// A 1-round fit over one knob at 6 bits: must run end to end and
	// never return something worse than the base.
	res, err := Fit(tech.FinFET12(), []sweep.Knob{sweep.KnobViaR}, MeanSpearman([]int{6}, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < res.BaseScore {
		t.Errorf("fit regressed: %g < %g", res.Score, res.BaseScore)
	}
}
