// Package calib auto-calibrates the synthetic technology against the
// paper's published tables: a derivative-free coordinate descent over
// technology knobs (via resistance, wire resistance, coupling, switch
// resistance, ...) maximizing the mean Spearman rank correlation
// between measured and published metric columns. This is the tool that
// turns "some 12nm-ish parameter set" into "the parameter set that
// best reproduces the paper's shape" — and demonstrates that the
// reproduced orderings are not an accident of one hand-picked corner.
package calib

import (
	"fmt"
	"math"
	"sort"

	"ccdac/internal/exp"
	"ccdac/internal/paperdata"
	"ccdac/internal/sweep"
	"ccdac/internal/tech"
)

// Objective scores a technology; higher is better.
type Objective func(t *tech.Technology) (float64, error)

// MeanSpearman builds an objective that runs the full harness at the
// given bit counts and returns the mean per-metric Spearman rank
// correlation against the paper's tables.
//
// The harness runs with stage memoization armed: calibration scales
// electrical knobs only, so every evaluation re-places identically and
// most re-route identically — across the coordinate-descent loop the
// stage caches turn the dominant cost (layout) into lookups without
// changing a single result bit.
func MeanSpearman(bits []int, parallel int) Objective {
	return func(t *tech.Technology) (float64, error) {
		h := exp.NewHarness()
		h.Parallel = parallel
		h.Tech = t
		h.Memo = true
		measured := map[string]paperdata.Cell{}
		for _, n := range bits {
			for _, m := range exp.Methods {
				if !exp.Available(m, n) {
					continue
				}
				r, err := h.Run(m, n)
				if err != nil {
					return 0, err
				}
				crit := r.Electrical.Bits[r.CriticalBit]
				cell := paperdata.Cell{
					Bits: n, Method: string(m),
					CTSfF: r.Electrical.CTSfF, CWirefF: r.Electrical.CWirefF,
					CBBfF: r.Electrical.CBBfF,
					NV:    float64(r.Electrical.ViaCuts), LUm: r.Electrical.WirelengthUm,
					RVkOhm: crit.RViaOhm / 1000, RTotalkOhm: (crit.RViaOhm + crit.RWireOhm) / 1000,
					AreaUm2: r.Electrical.AreaUm2, F3dBMHz: r.F3dBHz / 1e6,
				}
				if r.NL != nil {
					cell.DNL, cell.INL = r.NL.MaxAbsDNL, r.NL.MaxAbsINL
				}
				measured[paperdata.Key(n, string(m))] = cell
			}
		}
		sum, count := 0.0, 0
		for _, c := range paperdata.Compare(measured) {
			if !math.IsNaN(c.Rho) && c.N >= 3 {
				sum += c.Rho
				count++
			}
		}
		if count == 0 {
			return 0, fmt.Errorf("calib: no comparable metrics")
		}
		return sum / float64(count), nil
	}
}

// Result reports a calibration run.
type Result struct {
	// Factors holds the fitted per-knob scale factors relative to the
	// base technology.
	Factors map[sweep.Knob]float64
	// Score is the final objective value; BaseScore the starting one.
	Score, BaseScore float64
	// Evals counts objective evaluations.
	Evals int
	// Tech is the fitted technology.
	Tech *tech.Technology
}

// Fit runs coordinate descent: each round tries scaling every knob up
// and down by the current step (halving the step each round) and keeps
// improvements. Deterministic; rounds*len(knobs)*2 evaluations at most.
func Fit(base *tech.Technology, knobs []sweep.Knob, obj Objective, rounds int) (*Result, error) {
	if rounds < 1 {
		rounds = 1
	}
	if len(knobs) == 0 {
		return nil, fmt.Errorf("calib: no knobs to fit")
	}
	factors := map[sweep.Knob]float64{}
	for _, k := range knobs {
		factors[k] = 1
	}
	apply := func(f map[sweep.Knob]float64) (*tech.Technology, error) {
		t := base
		// Apply knobs in sorted order for determinism.
		keys := make([]string, 0, len(f))
		for k := range f {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		for _, k := range keys {
			var err error
			t, err = sweep.ScaledTech(t, sweep.Knob(k), f[sweep.Knob(k)])
			if err != nil {
				return nil, err
			}
		}
		return t, nil
	}

	res := &Result{Factors: factors, Evals: 0}
	t0, err := apply(factors)
	if err != nil {
		return nil, err
	}
	best, err := obj(t0)
	if err != nil {
		return nil, err
	}
	res.Evals++
	res.BaseScore = best

	step := 2.0
	for round := 0; round < rounds; round++ {
		for _, k := range knobs {
			for _, mult := range []float64{step, 1 / step} {
				trial := map[sweep.Knob]float64{}
				for kk, v := range factors {
					trial[kk] = v
				}
				trial[k] = factors[k] * mult
				t, err := apply(trial)
				if err != nil {
					continue // out-of-range factor; skip
				}
				score, err := obj(t)
				if err != nil {
					return nil, err
				}
				res.Evals++
				if score > best {
					best = score
					factors = trial
				}
			}
		}
		step = math.Sqrt(step)
	}
	res.Factors = factors
	res.Score = best
	fitted, err := apply(factors)
	if err != nil {
		return nil, err
	}
	res.Tech = fitted
	return res, nil
}
