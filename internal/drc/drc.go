// Package drc checks routed layouts against the abstraction-level
// design rules the router must uphold: reserved-direction layers,
// same-layer spacing between different nets, top/bottom-plate
// non-overlap (the paper's nonoverlapped routing, Sec. IV-B1), channel
// and row routing capacity under width quantization, layout bounds,
// and full electrical connectivity of every bit's net (an LVS-lite
// check via union-find over wires, vias and cells).
package drc

import (
	"fmt"
	"math"

	"ccdac/internal/geom"
	"ccdac/internal/route"
)

// Violation is one design-rule failure.
type Violation struct {
	// Rule names the violated check.
	Rule string
	// Detail is a human-readable description.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Result collects the violations of one layout check.
type Result struct {
	Violations []Violation
}

// Clean reports whether no rule fired.
func (r *Result) Clean() bool { return len(r.Violations) == 0 }

func (r *Result) add(rule, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// Check runs all design-rule checks on a routed layout.
func Check(l *route.Layout) *Result {
	res := &Result{}
	checkDirections(l, res)
	checkBounds(l, res)
	checkSpacing(l, res)
	checkPlateSeparation(l, res)
	checkRowCapacity(l, res)
	checkColumnCapacity(l, res)
	checkViaLanding(l, res)
	checkConnectivity(l, res)
	return res
}

// columnOf returns the cell column whose footprint contains x, or -1
// if x falls in a routing channel.
func columnOf(l *route.Layout, x float64) int {
	half := l.Tech.Unit.W / 2
	for c := 0; c < l.M.Cols; c++ {
		cx := l.CellCenter(geom.Cell{Row: 0, Col: c}).X
		if x >= cx-half-1e-9 && x <= cx+half+1e-9 {
			return c
		}
	}
	return -1
}

// insideColumn reports whether a vertical wire runs inside a cell
// column footprint (abutment jumpers, top-plate spines, direct stubs):
// the detailed router places these on distinct tracks within the
// ~27-track cell width, so abstraction-level coincidence is not a
// short; checkColumnCapacity bounds their number instead.
func insideColumn(l *route.Layout, w route.Wire) (int, bool) {
	if w.Seg.Dir() != geom.Vertical {
		return -1, false
	}
	col := columnOf(l, w.Seg.A.X)
	return col, col >= 0
}

// checkDirections verifies reserved-direction routing: a wire with
// extent must run in its layer's direction (FinFET lower metals,
// Sec. IV-A2).
func checkDirections(l *route.Layout, res *Result) {
	for i, w := range l.Wires {
		if w.Seg.Len() == 0 {
			continue
		}
		if !w.Seg.IsManhattan() {
			res.add("manhattan", "wire %d (%v) is not axis-aligned", i, w.Kind)
			continue
		}
		if l.Tech.Layers[w.Layer].Dir != w.Seg.Dir() {
			res.add("reserved-direction", "wire %d (%v) runs %v on layer %s",
				i, w.Kind, w.Seg.Dir(), l.Tech.Layers[w.Layer].Name)
		}
	}
}

// checkBounds verifies all geometry stays inside the layout extents.
func checkBounds(l *route.Layout, res *Result) {
	in := func(p geom.Pt) bool {
		return p.X >= -1e-9 && p.X <= l.Width+1e-9 && p.Y >= -1e-9 && p.Y <= l.Height+1e-9
	}
	for i, w := range l.Wires {
		if !in(w.Seg.A) || !in(w.Seg.B) {
			res.add("bounds", "wire %d (%v) leaves the %gx%g layout", i, w.Kind, l.Width, l.Height)
		}
	}
	for i, v := range l.Vias {
		if !in(v.At) {
			res.add("bounds", "via %d leaves the layout", i)
		}
	}
}

// sameRowBranches reports whether both wires are branch wires at the
// same row height: the detailed router offsets these within the
// 27-track cell row, so abstraction-level coincidence is not a short
// (their count is limited by checkRowCapacity instead).
func sameRowBranches(a, b route.Wire) bool {
	return a.Kind == route.KindBranch && b.Kind == route.KindBranch &&
		a.Seg.A.Y == b.Seg.A.Y
}

// checkSpacing flags same-layer different-net wires that run parallel
// closer than the minimum spacing with nonzero overlap — an
// abstraction-level short or spacing violation.
func checkSpacing(l *route.Layout, res *Result) {
	for i := 0; i < len(l.Wires); i++ {
		wi := l.Wires[i]
		for j := i + 1; j < len(l.Wires); j++ {
			wj := l.Wires[j]
			if wi.Bit == wj.Bit || wi.Layer != wj.Layer {
				continue
			}
			if sameRowBranches(wi, wj) {
				continue
			}
			if ci, ok := insideColumn(l, wi); ok {
				if cj, ok2 := insideColumn(l, wj); ok2 && ci == cj {
					continue // offset within the cell column; capacity-checked
				}
			}
			sep := wi.Seg.Separation(wj.Seg)
			if math.IsInf(sep, 1) {
				continue
			}
			// Adjacent tracks sit at exactly the minimum spacing;
			// tolerate accumulated coordinate rounding.
			if sep >= l.Tech.SMinUm-1e-9 {
				continue
			}
			if ov := wi.Seg.OverlapLen(wj.Seg); ov > 1e-9 {
				res.add("spacing", "wires %d (%v bit %d) and %d (%v bit %d) on %s: sep %.4f um, overlap %.3f um",
					i, wi.Kind, wi.Bit, j, wj.Kind, wj.Bit,
					l.Tech.Layers[wi.Layer].Name, sep, ov)
			}
		}
	}
}

// checkPlateSeparation enforces the paper's nonoverlapped routing: the
// top-plate net and any bottom-plate net must not share a layer with
// overlapping runs (this keeps C^TB negligible).
func checkPlateSeparation(l *route.Layout, res *Result) {
	for i, wi := range l.Wires {
		if wi.Bit != route.TopPlateBit {
			continue
		}
		for j, wj := range l.Wires {
			if wj.Bit == route.TopPlateBit || wi.Layer != wj.Layer {
				continue
			}
			if ci, ok := insideColumn(l, wi); ok {
				if cj, ok2 := insideColumn(l, wj); ok2 && ci == cj {
					continue // both on in-cell tracks; capacity-checked
				}
			}
			sep := wi.Seg.Separation(wj.Seg)
			if math.IsInf(sep, 1) || sep >= l.Tech.SMinUm-1e-9 {
				continue
			}
			if ov := wi.Seg.OverlapLen(wj.Seg); ov > 1e-9 {
				// Connections that meet only at a shared cell are the
				// plate terminals themselves; outside cells this is a
				// top/bottom overlap violation.
				res.add("plate-overlap", "top-plate wire %d overlaps bit-%d wire %d on %s by %.3f um",
					i, wj.Bit, j, l.Tech.Layers[wi.Layer].Name, ov)
			}
		}
	}
}

// checkRowCapacity bounds the number of branch wires sharing one cell
// row through one channel: the detailed router has cellH/pitch
// horizontal tracks available per row.
func checkRowCapacity(l *route.Layout, res *Result) {
	pitch := l.Tech.Layers[l.Tech.HorizontalLayer()].Pitch
	capacity := int(l.Tech.Unit.H / pitch)
	type key struct {
		y int64
		// coarse x bucket: channel region between two column centers
		bucket int64
	}
	counts := map[key]int{}
	for _, w := range l.Wires {
		if w.Kind != route.KindBranch {
			continue
		}
		mid := (w.Seg.A.X + w.Seg.B.X) / 2
		k := key{y: int64(math.Round(w.Seg.A.Y * 1000)), bucket: int64(mid / l.Tech.Unit.W)}
		counts[k] += w.Par
	}
	for k, n := range counts {
		if n > capacity {
			res.add("row-capacity", "row y=%.3f um, bucket %d: %d branch tracks exceed capacity %d",
				float64(k.y)/1000, k.bucket, n, capacity)
		}
	}
}

// checkColumnCapacity bounds the vertical wires riding inside one cell
// column's footprint (abutment jumpers, top-plate spine, direct stubs):
// at every row boundary their track demand must fit the cell width.
func checkColumnCapacity(l *route.Layout, res *Result) {
	pitch := l.Tech.Layers[l.Tech.VerticalLayer()].Pitch
	capacity := int(l.Tech.Unit.W / pitch)
	for col := 0; col < l.M.Cols; col++ {
		var colWires []route.Wire
		for _, w := range l.Wires {
			if c, ok := insideColumn(l, w); ok && c == col {
				colWires = append(colWires, w)
			}
		}
		for r := 0; r+1 < l.M.Rows; r++ {
			yb := (l.CellCenter(geom.Cell{Row: r, Col: col}).Y +
				l.CellCenter(geom.Cell{Row: r + 1, Col: col}).Y) / 2
			demand := 0
			for _, w := range colWires {
				lo := math.Min(w.Seg.A.Y, w.Seg.B.Y)
				hi := math.Max(w.Seg.A.Y, w.Seg.B.Y)
				if lo < yb && hi > yb {
					demand += w.Par
				}
			}
			if demand > capacity {
				res.add("column-capacity", "column %d row boundary %d: %d vertical tracks exceed capacity %d",
					col, r, demand, capacity)
			}
		}
	}
}

// checkViaLanding verifies that every via point touches wire geometry
// of its net on both layers it joins (input vias land on one layer and
// the driver below).
func checkViaLanding(l *route.Layout, res *Result) {
	touches := func(p geom.Pt, layer, bit int) bool {
		for _, w := range l.Wires {
			if w.Bit != bit || w.Layer != layer {
				continue
			}
			if onSegment(w.Seg, p) {
				return true
			}
		}
		return false
	}
	for i, v := range l.Vias {
		if !touches(v.At, v.LayerA, v.Bit) {
			res.add("via-landing", "via %d (bit %d) has no layer-%s wire at %v",
				i, v.Bit, l.Tech.Layers[v.LayerA].Name, v.At)
		}
		if v.Input {
			continue // the lower landing is the driver cluster outside the array
		}
		if !touches(v.At, v.LayerB, v.Bit) {
			res.add("via-landing", "via %d (bit %d) has no layer-%s wire at %v",
				i, v.Bit, l.Tech.Layers[v.LayerB].Name, v.At)
		}
	}
}

func onSegment(s geom.Seg, p geom.Pt) bool {
	const eps = 1e-6
	lo, hi := s.A, s.B
	if s.Dir() == geom.Vertical {
		if math.Abs(p.X-s.A.X) > eps {
			return false
		}
		y0, y1 := math.Min(lo.Y, hi.Y), math.Max(lo.Y, hi.Y)
		return p.Y >= y0-eps && p.Y <= y1+eps
	}
	if math.Abs(p.Y-s.A.Y) > eps {
		return false
	}
	x0, x1 := math.Min(lo.X, hi.X), math.Max(lo.X, hi.X)
	return p.X >= x0-eps && p.X <= x1+eps
}

// checkConnectivity is an LVS-lite pass: for every capacitor, all its
// unit cells and its terminal must form one electrical net through
// abutments, branches, trunks, bridges and vias.
func checkConnectivity(l *route.Layout, res *Result) {
	for bit := 0; bit <= l.M.Bits; bit++ {
		uf := newUnionFind()
		q := func(p geom.Pt, layer int) string {
			// Points on a cell of this bit merge across layers.
			for _, c := range l.M.CellsOf(bit) {
				cc := l.CellCenter(c)
				if math.Abs(cc.X-p.X) < 1e-6 && math.Abs(cc.Y-p.Y) < 1e-6 {
					return fmt.Sprintf("cell:%d,%d", c.Row, c.Col)
				}
			}
			return fmt.Sprintf("L%d:%.3f,%.3f", layer, p.X, p.Y)
		}
		for _, w := range l.Wires {
			if w.Bit != bit {
				continue
			}
			uf.union(q(w.Seg.A, w.Layer), q(w.Seg.B, w.Layer))
		}
		for _, v := range l.Vias {
			if v.Bit != bit || v.Input {
				continue
			}
			uf.union(q(v.At, v.LayerA), q(v.At, v.LayerB))
		}
		cells := l.M.CellsOf(bit)
		if len(cells) == 0 {
			res.add("connectivity", "bit %d has no unit cells", bit)
			continue
		}
		root := uf.find(fmt.Sprintf("cell:%d,%d", cells[0].Row, cells[0].Col))
		for _, c := range cells[1:] {
			if uf.find(fmt.Sprintf("cell:%d,%d", c.Row, c.Col)) != root {
				res.add("connectivity", "bit %d: cell %v disconnected from net", bit, c)
			}
		}
		// The terminal (input via location) must be on the net too.
		for _, v := range l.Vias {
			if v.Bit == bit && v.Input {
				if uf.find(q(v.At, v.LayerA)) != root {
					res.add("connectivity", "bit %d: input terminal disconnected", bit)
				}
			}
		}
	}
}

type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
