package drc

import (
	"strings"
	"testing"

	"ccdac/internal/geom"
	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
)

func layoutFor(t *testing.T, bits int, style place.Style, par []int) *route.Layout {
	t.Helper()
	var m, err = place.NewSpiral(bits)
	switch style {
	case place.Chessboard:
		m, err = place.NewChessboard(bits)
	case place.BlockChessboard:
		m, err = place.NewBlockChessboard(bits, place.BCParams{CoreBits: 4, BlockCells: 2})
	case place.Annealed:
		m, err = place.NewAnnealed(bits, place.AnnealConfig{Seed: 1, Moves: 3000})
	}
	if err != nil {
		t.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), par)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestRouterOutputIsClean is the central DRC regression: every style,
// with and without parallel wires, must produce a violation-free
// layout.
func TestRouterOutputIsClean(t *testing.T) {
	styles := []place.Style{place.Spiral, place.Chessboard, place.BlockChessboard, place.Annealed}
	for _, style := range styles {
		for _, bits := range []int{6, 8} {
			l := layoutFor(t, bits, style, nil)
			res := Check(l)
			if !res.Clean() {
				for _, v := range res.Violations[:min(5, len(res.Violations))] {
					t.Errorf("%v %d-bit: %v", style, bits, v)
				}
				t.Fatalf("%v %d-bit: %d violations", style, bits, len(res.Violations))
			}
		}
	}
}

func TestParallelRoutedLayoutClean(t *testing.T) {
	par := []int{1, 1, 1, 1, 1, 2, 2}
	l := layoutFor(t, 6, place.Spiral, par)
	if res := Check(l); !res.Clean() {
		t.Fatalf("parallel-routed layout dirty: %v", res.Violations[0])
	}
}

func TestOddBitLayoutsClean(t *testing.T) {
	for _, style := range []place.Style{place.Spiral, place.Chessboard, place.BlockChessboard} {
		l := layoutFor(t, 7, style, nil)
		if res := Check(l); !res.Clean() {
			t.Fatalf("%v 7-bit dirty: %v", style, res.Violations[0])
		}
	}
}

func TestDetectsReservedDirectionViolation(t *testing.T) {
	l := layoutFor(t, 6, place.Spiral, nil)
	// Inject a vertical wire on a horizontal layer.
	l.Wires = append(l.Wires, route.Wire{
		Seg:   geom.Seg{A: geom.Pt{X: 1, Y: 1}, B: geom.Pt{X: 1, Y: 3}},
		Layer: l.Tech.HorizontalLayer(), Par: 1, Bit: 0, Kind: route.KindBranch,
	})
	res := Check(l)
	if res.Clean() {
		t.Fatal("direction violation not detected")
	}
	found := false
	for _, v := range res.Violations {
		if v.Rule == "reserved-direction" {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong rule fired: %v", res.Violations)
	}
}

func TestDetectsSpacingViolation(t *testing.T) {
	l := layoutFor(t, 6, place.Spiral, nil)
	// Duplicate an existing channel trunk 10 nm away under another bit.
	var trunk route.Wire
	for _, w := range l.Wires {
		if w.Kind == route.KindTrunk && w.Seg.Len() > 0.5 {
			trunk = w
			break
		}
	}
	if trunk.Seg.Len() == 0 {
		t.Fatal("no trunk found to duplicate")
	}
	bad := trunk
	bad.Bit = (trunk.Bit + 1) % 7
	bad.Seg.A.X += 0.010
	bad.Seg.B.X += 0.010
	l.Wires = append(l.Wires, bad)
	res := Check(l)
	found := false
	for _, v := range res.Violations {
		if v.Rule == "spacing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("spacing violation not detected: %v", res.Violations)
	}
}

func TestDetectsPlateOverlap(t *testing.T) {
	l := layoutFor(t, 6, place.Spiral, nil)
	// Lay a bottom-plate wire directly on a horizontal top-plate link
	// (column-interior wires are exempt, cross-column links are not).
	var top route.Wire
	for _, w := range l.Wires {
		if w.Bit == route.TopPlateBit && w.Seg.Len() > 1 && w.Seg.Dir() == geom.Horizontal {
			top = w
			break
		}
	}
	bad := top
	bad.Bit = 4
	bad.Kind = route.KindTrunk
	l.Wires = append(l.Wires, bad)
	res := Check(l)
	found := false
	for _, v := range res.Violations {
		if v.Rule == "plate-overlap" {
			found = true
		}
	}
	if !found {
		t.Fatalf("plate overlap not detected: %v", res.Violations)
	}
}

func TestDetectsOutOfBounds(t *testing.T) {
	l := layoutFor(t, 6, place.Spiral, nil)
	l.Wires = append(l.Wires, route.Wire{
		Seg:   geom.Seg{A: geom.Pt{X: -5, Y: 1}, B: geom.Pt{X: -1, Y: 1}},
		Layer: 0, Par: 1, Bit: 0, Kind: route.KindBranch,
	})
	res := Check(l)
	found := false
	for _, v := range res.Violations {
		if v.Rule == "bounds" {
			found = true
		}
	}
	if !found {
		t.Fatal("bounds violation not detected")
	}
}

func TestDetectsDisconnectedNet(t *testing.T) {
	l := layoutFor(t, 6, place.Spiral, nil)
	// Remove every wire of bit 3: its cells lose the route to the terminal.
	kept := l.Wires[:0]
	for _, w := range l.Wires {
		if w.Bit != 3 {
			kept = append(kept, w)
		}
	}
	l.Wires = kept
	res := Check(l)
	found := false
	for _, v := range res.Violations {
		if v.Rule == "connectivity" && strings.Contains(v.Detail, "bit 3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("disconnection not detected: %v", res.Violations)
	}
}

func TestDetectsFloatingVia(t *testing.T) {
	l := layoutFor(t, 6, place.Spiral, nil)
	l.Vias = append(l.Vias, route.Via{
		At: geom.Pt{X: 3.33, Y: 3.33}, LayerA: 0, LayerB: 1, Par: 1, Bit: 5,
	})
	res := Check(l)
	found := false
	for _, v := range res.Violations {
		if v.Rule == "via-landing" {
			found = true
		}
	}
	if !found {
		t.Fatal("floating via not detected")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: "spacing", Detail: "too close"}
	if v.String() != "spacing: too close" {
		t.Errorf("String = %q", v.String())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
