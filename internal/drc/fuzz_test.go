package drc

import (
	"testing"

	"ccdac/internal/extract"
	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
)

// TestPipelineOnRandomPlacements fuzzes the router, extractor and DRC
// with random valid common-centroid placements: any valid placement
// must route completely, extract into connected per-bit RC networks
// with positive delays, and come out DRC-clean.
func TestPipelineOnRandomPlacements(t *testing.T) {
	tch := tech.FinFET12()
	for _, bits := range []int{5, 6, 7, 8} {
		for seed := int64(1); seed <= 4; seed++ {
			m, err := place.NewRandomSymmetric(bits, seed)
			if err != nil {
				t.Fatalf("bits=%d seed=%d: %v", bits, seed, err)
			}
			l, err := route.Route(m, tch, nil)
			if err != nil {
				t.Fatalf("bits=%d seed=%d: route: %v", bits, seed, err)
			}
			sum, err := extract.Extract(l)
			if err != nil {
				t.Fatalf("bits=%d seed=%d: extract: %v", bits, seed, err)
			}
			for bit, bn := range sum.Bits {
				if bn.TauSec <= 0 {
					t.Fatalf("bits=%d seed=%d: bit %d tau %g", bits, seed, bit, bn.TauSec)
				}
			}
			if res := Check(l); !res.Clean() {
				t.Fatalf("bits=%d seed=%d: %d DRC violations, first: %v",
					bits, seed, len(res.Violations), res.Violations[0])
			}
		}
	}
}

// TestPipelineOnRandomPlacementsParallel extends the random-placement
// fuzz to parallel-wire routing: promoting the MSB (and the bit above
// it) to multiple wires must still route, extract and pass DRC —
// parallel trunks are the geometrically tightest layouts the router
// emits.
func TestPipelineOnRandomPlacementsParallel(t *testing.T) {
	tch := tech.FinFET12()
	for _, bits := range []int{5, 6, 7} {
		for _, p := range []int{2, 3, 4} {
			for seed := int64(1); seed <= 2; seed++ {
				m, err := place.NewRandomSymmetric(bits, seed)
				if err != nil {
					t.Fatalf("bits=%d seed=%d: %v", bits, seed, err)
				}
				par := make([]int, bits+1)
				for i := range par {
					par[i] = 1
				}
				par[bits] = p
				if bits >= 2 {
					par[bits-1] = p
				}
				l, err := route.Route(m, tch, par)
				if err != nil {
					t.Fatalf("bits=%d p=%d seed=%d: route: %v", bits, p, seed, err)
				}
				sum, err := extract.Extract(l)
				if err != nil {
					t.Fatalf("bits=%d p=%d seed=%d: extract: %v", bits, p, seed, err)
				}
				for bit, bn := range sum.Bits {
					if bn.TauSec <= 0 {
						t.Fatalf("bits=%d p=%d seed=%d: bit %d tau %g", bits, p, seed, bit, bn.TauSec)
					}
				}
				if res := Check(l); !res.Clean() {
					t.Fatalf("bits=%d p=%d seed=%d: %d DRC violations, first: %v",
						bits, p, seed, len(res.Violations), res.Violations[0])
				}
			}
		}
	}
}

// TestRandomPlacementIsWorstRouting documents why constructive
// placement matters: a random CC placement routes with more vias than
// the spiral and in the vicinity of the chessboard.
func TestRandomPlacementIsWorstRouting(t *testing.T) {
	tch := tech.FinFET12()
	mR, err := place.NewRandomSymmetric(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	lR, err := route.Route(mR, tch, nil)
	if err != nil {
		t.Fatal(err)
	}
	mS, err := place.NewSpiral(8)
	if err != nil {
		t.Fatal(err)
	}
	lS, err := route.Route(mS, tch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lR.ViaCuts() < 3*lS.ViaCuts() {
		t.Errorf("random placement vias %d not well above spiral %d",
			lR.ViaCuts(), lS.ViaCuts())
	}
}
