// Hash-chained provenance: every persisted run appends a record
// binding its configuration, seed, toolchain, code version and
// artifact hash to the hash of the previous record. Verifying the
// chain recomputes every link, so editing any stored record — or
// deleting one from the middle — is detectable, the audit-log
// "tamper-evident" property applied to reproducibility: an artifact
// plus its verified record is a recipe to regenerate it bit for bit.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// ProvenanceRecord describes how one artifact was produced.
type ProvenanceRecord struct {
	// Seq is the record's position in the chain, assigned on append.
	Seq int64 `json:"seq"`
	// Prev is the hex hash of the previous record ("" for the first).
	Prev string `json:"prev"`
	// Key is the canonical request key the artifact is indexed under.
	Key string `json:"key"`
	// Artifact is the content hash of the produced artifact.
	Artifact string `json:"artifact"`
	// ConfigJSON is the run's configuration, serialized.
	ConfigJSON string `json:"config_json"`
	// Seed is the run's RNG seed (0 when the run is deterministic).
	Seed int64 `json:"seed"`
	// GoVersion is the toolchain that produced the artifact.
	GoVersion string `json:"go_version"`
	// CodeHash identifies the code revision (VCS hash or "unknown").
	CodeHash string `json:"code_hash"`
	// Hash is the record's own chain hash, computed over every field
	// above (including Prev, which links the chain).
	Hash string `json:"hash"`
}

// chainHash computes the record's tamper-evidence hash over a typed,
// length-prefixed encoding of every field except Hash itself.
func (r ProvenanceRecord) chainHash() string {
	h := sha256.New()
	writeField := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	var seq [16]byte
	binary.LittleEndian.PutUint64(seq[:8], uint64(r.Seq))
	binary.LittleEndian.PutUint64(seq[8:], uint64(r.Seed))
	h.Write(seq[:])
	writeField(r.Prev)
	writeField(r.Key)
	writeField(r.Artifact)
	writeField(r.ConfigJSON)
	writeField(r.GoVersion)
	writeField(r.CodeHash)
	return hex.EncodeToString(h.Sum(nil))
}

// provKey names record seq in the backend; fixed-width so List order
// is chain order.
func provKey(seq int64) string { return fmt.Sprintf("prov/%012d", seq) }

// provenance tracks the chain head. Appends serialize on its mutex so
// sequence numbers are dense and each record links its true
// predecessor.
type provenance struct {
	mu       sync.Mutex
	nextSeq  int64
	headHash string
}

// load finds the chain head by replaying the persisted records in
// order. It trusts nothing: the head is wherever the verifiable dense
// prefix ends.
func (p *provenance) load(b Backend) error {
	keys, err := b.List("prov/")
	if err != nil {
		return err
	}
	p.nextSeq, p.headHash = 0, ""
	for _, k := range keys {
		data, err := b.Get(k)
		if err != nil {
			break
		}
		var r ProvenanceRecord
		if json.Unmarshal(data, &r) != nil || r.Seq != p.nextSeq {
			break
		}
		p.nextSeq++
		p.headHash = r.Hash
	}
	return nil
}

func (p *provenance) len() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nextSeq
}

// AppendProvenance links rec onto the chain and persists it. Seq,
// Prev and Hash are assigned here; the caller fills the descriptive
// fields. Under a degraded backend the record is linked in memory
// only, preserving chain integrity for the process's lifetime.
func (s *Store) AppendProvenance(rec ProvenanceRecord) (ProvenanceRecord, error) {
	s.prov.mu.Lock()
	defer s.prov.mu.Unlock()
	rec.Seq = s.prov.nextSeq
	rec.Prev = s.prov.headHash
	rec.Hash = rec.chainHash()
	data, err := json.Marshal(rec)
	if err != nil {
		return rec, err
	}
	if s.b != nil && !s.degraded.Load() {
		if err := s.retry(func() error { return s.b.Put(provKey(rec.Seq), data) }); err != nil {
			s.enterDegraded(err)
			s.degradedOps.Add(1)
		}
	} else {
		s.degradedOps.Add(1)
	}
	s.prov.nextSeq++
	s.prov.headHash = rec.Hash
	return rec, nil
}

// VerifyProvenance re-walks the persisted chain, recomputing every
// link. It returns the number of verified records, or an error naming
// the first record whose hash, back-link or sequence is wrong — a
// tampered or truncated-in-the-middle chain never verifies.
func (s *Store) VerifyProvenance() (int64, error) {
	if s.b == nil {
		return 0, nil
	}
	keys, err := s.b.List("prov/")
	if err != nil {
		return 0, err
	}
	var n int64
	prev := ""
	for _, k := range keys {
		data, err := s.b.Get(k)
		if err != nil {
			return n, fmt.Errorf("store: provenance record %s unreadable: %w", k, err)
		}
		var r ProvenanceRecord
		if err := json.Unmarshal(data, &r); err != nil {
			return n, fmt.Errorf("store: provenance record %s corrupt: %w", k, err)
		}
		if r.Seq != n {
			return n, fmt.Errorf("store: provenance chain broken at %s: seq %d, want %d", k, r.Seq, n)
		}
		if r.Prev != prev {
			return n, fmt.Errorf("store: provenance chain broken at seq %d: prev link mismatch", r.Seq)
		}
		if got := r.chainHash(); got != r.Hash {
			return n, fmt.Errorf("store: provenance record %d tampered: hash %s, recomputed %s", r.Seq, r.Hash, got)
		}
		prev = r.Hash
		n++
	}
	return n, nil
}

// Provenance returns the persisted chain in order (for inspection and
// tests); records are returned as stored, unverified.
func (s *Store) Provenance() ([]ProvenanceRecord, error) {
	if s.b == nil {
		return nil, nil
	}
	keys, err := s.b.List("prov/")
	if err != nil {
		return nil, err
	}
	out := make([]ProvenanceRecord, 0, len(keys))
	for _, k := range keys {
		data, err := s.b.Get(k)
		if err != nil {
			return nil, err
		}
		var r ProvenanceRecord
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
