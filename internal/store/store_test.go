package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ccdac/internal/fault"
)

// fastOpts keeps the retry ladder out of test wall time.
func fastOpts() Options {
	return Options{Retries: 2, RetryBase: time.Microsecond}
}

func openTest(t *testing.T) (*Store, *FS) {
	t.Helper()
	b, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	return s, b
}

// noTempFiles fails the test if any in-progress temp file is visible
// under dir — the invariant every crash/fault scenario must preserve.
func noTempFiles(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.svg")
	if err := AtomicWriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("read back %q, want %q", got, "first")
	}
	// Overwrite is atomic too: the new content fully replaces the old.
	if err := AtomicWriteFile(path, []byte("second"), 0o600); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("read back %q, want %q", got, "second")
	}
	noTempFiles(t, dir)
}

// TestAtomicWriteFileFaults: a failure injected at any IO edge — the
// data write, the fsync, or the rename — must leave the destination
// untouched (old content intact) and no temp file behind.
func TestAtomicWriteFileFaults(t *testing.T) {
	for _, stage := range []string{fault.StageStoreWrite, fault.StageStoreFsync, fault.StageStoreRename} {
		t.Run(stage, func(t *testing.T) {
			defer fault.Reset()
			dir := t.TempDir()
			path := filepath.Join(dir, "artifact.gds")
			if err := AtomicWriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			fault.Enable(stage, 0, fmt.Errorf("injected %s failure", stage))
			err := AtomicWriteFile(path, []byte("new"), 0o644)
			if err == nil || !strings.Contains(err.Error(), "injected") {
				t.Fatalf("fault at %s: err = %v, want injected failure", stage, err)
			}
			if !fault.Fired(stage) {
				t.Errorf("fault at %s did not fire", stage)
			}
			if got, _ := os.ReadFile(path); string(got) != "old" {
				t.Errorf("after failed write, content = %q, want old content intact", got)
			}
			noTempFiles(t, dir)
		})
	}
}

func TestFSBackend(t *testing.T) {
	b, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("blobs/ab/abc", []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("blobs/ab/abc")
	if err != nil || string(got) != "data" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := b.Get("blobs/ab/missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing key: err = %v, want fs.ErrNotExist", err)
	}
	// Traversal and absolute keys are rejected outright.
	for _, bad := range []string{"", "../escape", "a/../../b", "/etc/passwd"} {
		if err := b.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a hostile key", bad)
		}
	}
	// Delete is idempotent.
	if err := b.Delete("blobs/ab/abc"); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("blobs/ab/abc"); err != nil {
		t.Errorf("second Delete: %v, want nil", err)
	}
	// List skips in-progress temp files and sorts.
	b.Put("index/2", []byte("x"))
	b.Put("index/1", []byte("x"))
	if err := os.WriteFile(filepath.Join(b.Root(), "index", ".3.tmp123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := b.List("index/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "index/1" || keys[1] != "index/2" {
		t.Errorf("List = %v, want [index/1 index/2] (sorted, temp invisible)", keys)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := openTest(t)
	data := []byte("routed layout artifact")
	hash, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if hash != Hash(data) {
		t.Fatalf("Put hash %s, want content hash %s", hash, Hash(data))
	}
	got, err := s.Get(hash)
	if err != nil || string(got) != string(data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := s.Get(Hash([]byte("never stored"))); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing artifact: err = %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Degraded {
		t.Errorf("stats = %+v, want 1 write, 1 hit, healthy", st)
	}
}

// TestCorruptBlobQuarantine is the integrity acceptance bar: a blob
// whose bytes no longer match its content address is quarantined and
// reported, never served — and stays unavailable afterward.
func TestCorruptBlobQuarantine(t *testing.T) {
	s, b := openTest(t)
	hash, err := s.Put([]byte("good artifact"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip the stored bytes behind the store's back.
	path := filepath.Join(b.Root(), filepath.FromSlash(blobKey(hash)))
	if err := os.WriteFile(path, []byte("tampered artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(hash); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt blob: err = %v, want ErrCorrupt", err)
	}
	q, err := s.Quarantined()
	if err != nil || len(q) != 1 || q[0] != hash {
		t.Fatalf("Quarantined = %v, %v, want [%s]", q, err, hash)
	}
	// The corrupt blob left the serving namespace entirely.
	if _, err := s.Get(hash); !errors.Is(err, ErrNotFound) {
		t.Errorf("after quarantine: err = %v, want ErrNotFound", err)
	}
	if got := s.Stats().CorruptionsQuarantined; got != 1 {
		t.Errorf("CorruptionsQuarantined = %d, want 1", got)
	}
}

// TestVerifyFaultInjection: a failure injected at the verification
// checkpoint surfaces as an error (the blob is not served unverified),
// and a transient read fault is absorbed by the retry ladder.
func TestVerifyFaultInjection(t *testing.T) {
	defer fault.Reset()
	s, _ := openTest(t)
	hash, err := s.Put([]byte("verified artifact"))
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(fault.StageStoreVerify, 0, errors.New("injected verify failure"))
	if _, err := s.Get(hash); err == nil || !strings.Contains(err.Error(), "injected verify") {
		t.Fatalf("verify fault: err = %v, want injected failure", err)
	}
	fault.Reset()

	// A single transient read fault: the first attempt fails, the retry
	// succeeds, and the caller never sees it.
	fault.Enable(fault.StageStoreRead, 0, errors.New("transient read failure"))
	got, err := s.Get(hash)
	if err != nil || string(got) != "verified artifact" {
		t.Fatalf("after transient read fault: Get = %q, %v, want success via retry", got, err)
	}
	if s.Stats().Retries == 0 {
		t.Error("retry ladder recorded no retries for the transient read fault")
	}
}

// flaky fails the first n calls of each operation, then delegates —
// the transient-backend model for the retry ladder.
type flaky struct {
	inner Backend
	mu    sync.Mutex
	fails int
}

func (f *flaky) step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fails > 0 {
		f.fails--
		return errors.New("flaky backend: transient failure")
	}
	return nil
}

func (f *flaky) Put(key string, data []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Put(key, data)
}

func (f *flaky) Get(key string) ([]byte, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	return f.inner.Get(key)
}
func (f *flaky) Delete(key string) error         { return f.inner.Delete(key) }
func (f *flaky) List(p string) ([]string, error) { return f.inner.List(p) }

func TestRetryLadder(t *testing.T) {
	inner, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fb := &flaky{inner: inner, fails: 2}
	s, err := New(fb, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s.Put([]byte("persisted on third attempt"))
	if err != nil {
		t.Fatal(err)
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("store degraded although retries should have absorbed the transient failures")
	}
	if got := s.Stats().Retries; got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
	// The blob really reached the backend, not just memory.
	if _, err := inner.Get(blobKey(hash)); err != nil {
		t.Errorf("blob missing from backend after retried Put: %v", err)
	}
}

// down is a backend whose writes fail until healed — the disk-full /
// directory-gone model for degraded-mode tests.
type down struct {
	inner Backend
	mu    sync.Mutex
	ok    bool
}

func (d *down) heal() { d.mu.Lock(); d.ok = true; d.mu.Unlock() }
func (d *down) up() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ok
}

func (d *down) Put(key string, data []byte) error {
	if !d.up() {
		return errors.New("backend down: no space left on device")
	}
	return d.inner.Put(key, data)
}

func (d *down) Get(key string) ([]byte, error) {
	if !d.up() {
		return nil, errors.New("backend down: no space left on device")
	}
	return d.inner.Get(key)
}
func (d *down) Delete(key string) error         { return d.inner.Delete(key) }
func (d *down) List(p string) ([]string, error) { return d.inner.List(p) }

// TestDegradedModeAndRecovery is the graceful-degradation acceptance
// bar: with the backend down, Put keeps returning hashes (served from
// the memory overlay) and Degraded reports the cause; when the backend
// heals, the overlay and dirty index flush back and the store recovers.
func TestDegradedModeAndRecovery(t *testing.T) {
	inner, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := &down{inner: inner}
	s, err := New(db, fastOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Writes while down: absorbed, not failed.
	hash, err := s.Put([]byte("computed while the disk was full"))
	if err != nil {
		t.Fatalf("Put with backend down: %v, want nil (degrade, don't fail)", err)
	}
	if err := s.SetIndex("req-key", hash); err != nil {
		t.Fatalf("SetIndex with backend down: %v", err)
	}
	deg, cause := s.Degraded()
	if !deg || cause == nil || !strings.Contains(cause.Error(), "no space") {
		t.Fatalf("Degraded = %v, %v, want true with the backend's error", deg, cause)
	}
	// The overlay still serves the blob and the index still resolves.
	if got, err := s.Get(hash); err != nil || !strings.Contains(string(got), "disk was full") {
		t.Fatalf("degraded Get = %q, %v", got, err)
	}
	if h, ok := s.LookupIndex("req-key"); !ok || h != hash {
		t.Fatalf("degraded LookupIndex = %q, %v", h, ok)
	}
	if s.Stats().DegradedOps == 0 {
		t.Error("DegradedOps = 0, want > 0 while the backend is down")
	}

	// Heal the backend: the next write probes, recovers, and flushes.
	db.heal()
	hash2, err := s.Put([]byte("written after recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("store still degraded after the backend healed")
	}
	// Both the overlay-held blob and the new one are durable now.
	for _, h := range []string{hash, hash2} {
		if _, err := inner.Get(blobKey(h)); err != nil {
			t.Errorf("blob %s missing from healed backend: %v", h, err)
		}
	}
	// The dirty index entry flushed too: a fresh store resolves it.
	s2, err := New(inner, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := s2.LookupIndex("req-key"); !ok || h != hash {
		t.Errorf("reopened LookupIndex = %q, %v, want flushed entry %s", h, ok, hash)
	}
}

func TestDegradeConstructor(t *testing.T) {
	cause := errors.New("store root unusable")
	s := Degrade(cause)
	if deg, err := s.Degraded(); !deg || err != cause {
		t.Fatalf("Degraded = %v, %v, want true with the constructor's cause", deg, err)
	}
	hash, err := s.Put([]byte("memory only"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(hash); err != nil || string(got) != "memory only" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := s.SetIndex("k", hash); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendProvenance(ProvenanceRecord{Key: "k", Artifact: hash}); err != nil {
		t.Fatal(err)
	}
	if n := s.Stats().ProvenanceRecords; n != 1 {
		t.Errorf("ProvenanceRecords = %d, want 1 (linked in memory)", n)
	}
}

// TestMemOverlayBound: the degraded overlay is bounded; oldest blobs
// are dropped beyond MemMaxBytes rather than growing without limit.
func TestMemOverlayBound(t *testing.T) {
	s := Degrade(errors.New("down"))
	s.opts.MemMaxBytes = 64
	var hashes []string
	for i := 0; i < 8; i++ {
		h, err := s.Put([]byte(strings.Repeat(fmt.Sprintf("%d", i), 16)))
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}
	st := s.Stats()
	if st.MemBytes > 64 {
		t.Errorf("MemBytes = %d, want <= 64 (bounded overlay)", st.MemBytes)
	}
	if st.MemEvictions == 0 {
		t.Error("MemEvictions = 0, want > 0 after overflowing the overlay")
	}
	// The newest blob survives; the oldest was dropped.
	if _, err := s.Get(hashes[len(hashes)-1]); err != nil {
		t.Errorf("newest overlay blob gone: %v", err)
	}
	if _, err := s.Get(hashes[0]); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest overlay blob: err = %v, want ErrNotFound (evicted)", err)
	}
}

// TestIndexDurability: index entries survive reopen; a torn entry is
// skipped and removed instead of trusted.
func TestIndexDurability(t *testing.T) {
	b, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	hash, _ := s.Put([]byte("indexed artifact"))
	if err := s.SetIndex("serve/generate/v1/abc", hash); err != nil {
		t.Fatal(err)
	}
	// A torn index entry, as a crash mid-write on a non-atomic backend
	// would leave.
	if err := b.Put("index/deadbeef", []byte(`{"key":"torn`)); err != nil {
		t.Fatal(err)
	}

	s2, err := New(b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := s2.LookupIndex("serve/generate/v1/abc"); !ok || h != hash {
		t.Fatalf("reopened LookupIndex = %q, %v, want %s", h, ok, hash)
	}
	if n := s2.IndexLen(); n != 1 {
		t.Errorf("IndexLen = %d, want 1 (torn entry dropped)", n)
	}
	if _, err := b.Get("index/deadbeef"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("torn index entry still present: err = %v, want removed", err)
	}
}

// TestStoreConcurrency hammers Put/Get/SetIndex/Append from many
// goroutines — the -race correctness bar for the locking scheme.
func TestStoreConcurrency(t *testing.T) {
	s, _ := openTest(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				data := []byte(fmt.Sprintf("worker %d artifact %d", w, i))
				hash, err := s.Put(data)
				if err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if err := s.SetIndex(fmt.Sprintf("key-%d-%d", w, i), hash); err != nil {
					t.Errorf("SetIndex: %v", err)
					return
				}
				got, err := s.Get(hash)
				if err != nil || string(got) != string(data) {
					t.Errorf("Get = %q, %v", got, err)
					return
				}
				if _, err := s.AppendProvenance(ProvenanceRecord{Key: "k", Artifact: hash}); err != nil {
					t.Errorf("AppendProvenance: %v", err)
					return
				}
				s.Stats()
			}
		}(w)
	}
	wg.Wait()
	if n, err := s.VerifyProvenance(); err != nil || n != workers*20 {
		t.Errorf("VerifyProvenance = %d, %v, want %d records clean", n, err, workers*20)
	}
}
