// Filesystem backend: blobs are files under a root directory, and
// every write is temp-file + fsync + atomic rename, so a crash at any
// instant leaves either the old blob, the new blob, or an invisible
// temp file — never a partially-visible artifact. The same discipline
// is exported as AtomicWriteFile for CLIs writing GDS/SPICE/SVG/JSON
// outputs directly.
package store

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ccdac/internal/fault"
)

// AtomicWriteFile writes data to path so that path is never observed
// partially written: the bytes go to a temp file in the same directory,
// are fsynced to media, and are renamed over path in one atomic step;
// the containing directory is then fsynced so the rename itself
// survives a crash. Close errors are checked (a full disk surfaces as
// an error, not a silent truncation), and the temp file is removed on
// every failure path.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: creating temp file in %s: %w", dir, err)
	}
	tmp := f.Name()
	fail := func(op string, err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %s %s: %w", op, path, err)
	}
	if err := fault.Check(fault.StageStoreWrite); err != nil {
		return fail("writing", err)
	}
	if _, err := f.Write(data); err != nil {
		return fail("writing", err)
	}
	if err := fault.Check(fault.StageStoreFsync); err != nil {
		return fail("syncing", err)
	}
	if err := f.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := f.Chmod(perm); err != nil {
		return fail("chmodding", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing %s: %w", path, err)
	}
	if err := fault.Check(fault.StageStoreRename); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: renaming %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: renaming %s: %w", path, err)
	}
	// Sync the directory so the rename is durable, not just ordered.
	// Failure here is reported but the visible file is already complete
	// and verifiable.
	if d, err := os.Open(dir); err == nil {
		serr := d.Sync()
		cerr := d.Close()
		if serr != nil {
			return fmt.Errorf("store: syncing directory %s: %w", dir, serr)
		}
		if cerr != nil {
			return fmt.Errorf("store: closing directory %s: %w", dir, cerr)
		}
	}
	return nil
}

// FS is the filesystem Backend: keys are slash-separated paths rooted
// at a directory. All writes are atomic (AtomicWriteFile), so readers
// — including a process that crashed and restarted — never observe a
// torn blob.
type FS struct {
	root string
}

// NewFS opens (creating if needed) a filesystem backend rooted at dir,
// sweeping any temp files a crashed writer left behind: they were
// never visible as blobs, and removing them makes recovery leave the
// directory exactly as a clean shutdown would have.
func NewFS(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating root %s: %w", dir, err)
	}
	b := &FS{root: dir}
	b.sweepTemps()
	return b, nil
}

// sweepTemps removes in-progress temp files abandoned by a crash.
// Best-effort: a sweep failure costs disk space, never correctness.
func (b *FS) sweepTemps() {
	_ = filepath.WalkDir(b.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if name := d.Name(); strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp") {
			_ = os.Remove(p)
		}
		return nil
	})
}

// Root returns the backend's root directory.
func (b *FS) Root() string { return b.root }

// path maps a key to its on-disk location, rejecting traversal.
func (b *FS) path(key string) (string, error) {
	if key == "" || strings.Contains(key, "..") || strings.HasPrefix(key, "/") {
		return "", fmt.Errorf("store: invalid key %q", key)
	}
	return filepath.Join(b.root, filepath.FromSlash(key)), nil
}

// Put atomically stores data under key, creating parent directories as
// needed.
func (b *FS) Put(key string, data []byte) error {
	p, err := b.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", filepath.Dir(p), err)
	}
	return AtomicWriteFile(p, data, 0o644)
}

// Get returns the blob stored under key; a missing key reports
// fs.ErrNotExist.
func (b *FS) Get(key string) ([]byte, error) {
	p, err := b.path(key)
	if err != nil {
		return nil, err
	}
	if err := fault.Check(fault.StageStoreRead); err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", key, err)
	}
	return os.ReadFile(p)
}

// Delete removes key; deleting a missing key is not an error.
func (b *FS) Delete(key string) error {
	p, err := b.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: deleting %s: %w", key, err)
	}
	return nil
}

// List returns every stored key with the given prefix, sorted. Temp
// files left by a crash mid-write are invisible (they never count as
// blobs) — List is how recovery enumerates only fully-written state.
func (b *FS) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(b.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp") {
			return nil // invisible in-progress write
		}
		rel, err := filepath.Rel(b.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			out = append(out, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", prefix, err)
	}
	sort.Strings(out)
	return out, nil
}
