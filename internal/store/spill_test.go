package store

import (
	"os"
	"path/filepath"
	"testing"

	"ccdac/internal/memo"
)

// passCodec spills string values verbatim — enough to exercise the
// memo ↔ store wiring without dragging pipeline types in.
var passCodec = memo.Codec{
	Encode: func(v any) ([]byte, bool) {
		s, ok := v.(string)
		return []byte(s), ok
	},
	Decode: func(data []byte) (any, int64, bool) {
		return string(data), int64(len(data)), true
	},
}

// TestSpillerRoundTrip: an entry evicted from a memo cache is restored
// from the store on a later miss — the durable second tier behind the
// in-memory LRU.
func TestSpillerRoundTrip(t *testing.T) {
	s, _ := openTest(t)
	c := memo.New("spill_test", 24, 0)
	c.SetSpill(Spiller{S: s}, passCodec)

	c.Put("alpha", "placement-artifact-a", 20)
	// A second large entry evicts the first into the store.
	c.Put("beta", "placement-artifact-b", 20)
	if _, ok := c.Get("beta"); !ok {
		t.Fatal("resident entry missing")
	}
	// alpha was evicted from memory but revives from the spill tier.
	v, ok := c.Get("alpha")
	if !ok || v.(string) != "placement-artifact-a" {
		t.Fatalf("spilled entry Get = %v, %v, want restored value", v, ok)
	}
	st := c.Stats()
	if st.SpillPuts == 0 || st.SpillHits == 0 {
		t.Errorf("spill accounting = %+v, want puts and hits > 0", st)
	}
}

// TestSpillerSurvivesRestart: spilled entries are ordinary store
// artifacts, so a fresh store over the same directory serves them to a
// fresh cache — stage memoization survives a process restart.
func TestSpillerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := memo.New("spill_restart", 24, 0)
	c.SetSpill(Spiller{S: s}, passCodec)
	c.Put("alpha", "survives-restart", 20)
	c.Put("beta", "evictor", 20) // spill alpha

	s2, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	c2 := memo.New("spill_restart", 24, 0)
	c2.SetSpill(Spiller{S: s2}, passCodec)
	v, ok := c2.Get("alpha")
	if !ok || v.(string) != "survives-restart" {
		t.Fatalf("restarted Get = %v, %v, want spilled value restored", v, ok)
	}
}

// TestSpillerCorruptIsMiss: a corrupt spilled blob must read as a miss
// (the stage recomputes), never as a wrong value.
func TestSpillerCorruptIsMiss(t *testing.T) {
	s, b := openTest(t)
	sp := Spiller{S: s}
	sp.SpillPut("cache", "key", []byte("good bytes"))
	hash, ok := s.LookupIndex("memo/cache/key")
	if !ok {
		t.Fatal("spill left no index entry")
	}
	path := filepath.Join(b.Root(), filepath.FromSlash(blobKey(hash)))
	if err := os.WriteFile(path, []byte("rotten bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if data, ok := sp.SpillGet("cache", "key"); ok {
		t.Fatalf("SpillGet returned corrupt data %q, want miss", data)
	}
	if got := s.Stats().CorruptionsQuarantined; got != 1 {
		t.Errorf("CorruptionsQuarantined = %d, want 1", got)
	}
}

// TestSpillerNil: a nil-store Spiller is inert, matching the
// degrade-don't-fail contract end to end.
func TestSpillerNil(t *testing.T) {
	var sp Spiller
	sp.SpillPut("c", "k", []byte("x"))
	if _, ok := sp.SpillGet("c", "k"); ok {
		t.Fatal("nil Spiller reported a hit")
	}
}
