package store

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCrashRecovery is the crash-safety acceptance bar: a child
// process writing artifacts at full speed is killed with SIGKILL
// mid-load, and the reopened store must contain only complete,
// verifiable state — every listed blob verifies, every index entry
// resolves to a verified blob, the provenance chain is a clean dense
// prefix, nothing is quarantined, and no temp file is visible.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv("STORE_CRASH_DIR") != "" {
		crashChild(os.Getenv("STORE_CRASH_DIR"))
		return // unreachable: the child runs until killed
	}
	base := t.TempDir()
	dir := filepath.Join(base, "store")
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashRecovery$", "-test.v")
	cmd.Env = append(os.Environ(), "STORE_CRASH_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until the child is demonstrably mid-load (it marks the first
	// completed write), then let it run a little longer and kill it hard.
	ready := filepath.Join(base, "ready")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ready); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("crash child never started writing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	// Recovery: reopen and audit everything the crashed process left.
	s, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatalf("reopening crashed store: %v", err)
	}
	b, _ := NewFS(dir)
	blobs, err := b.List("blobs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) == 0 {
		t.Fatal("crashed store holds no blobs; the child never wrote anything")
	}
	for _, k := range blobs {
		hash := k[strings.LastIndex(k, "/")+1:]
		if _, err := s.Get(hash); err != nil {
			t.Errorf("blob %s does not verify after crash: %v", hash, err)
		}
	}
	for key, hash := range indexSnapshot(s) {
		if _, err := s.Get(hash); err != nil {
			t.Errorf("index entry %q -> %s does not resolve after crash: %v", key, hash, err)
		}
	}
	if n, err := s.VerifyProvenance(); err != nil {
		t.Errorf("provenance chain broken after crash (%d clean): %v", n, err)
	}
	if q, _ := s.Quarantined(); len(q) != 0 {
		t.Errorf("quarantine holds %v after a pure crash, want empty", q)
	}
	noTempFiles(t, dir)
	t.Logf("recovered %d blobs, %d index entries, %d provenance records",
		len(blobs), s.IndexLen(), s.Stats().ProvenanceRecords)
}

// indexSnapshot copies the reopened store's index for auditing.
func indexSnapshot(s *Store) map[string]string {
	out := map[string]string{}
	s.mu.Lock()
	for k, v := range s.idx {
		out[k] = v
	}
	s.mu.Unlock()
	return out
}

// crashChild writes artifacts, index entries and provenance records as
// fast as it can until the parent kills the process.
func crashChild(dir string) {
	s, err := Open(dir, Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		data := []byte(strings.Repeat(fmt.Sprintf("artifact %d ", i), 50))
		hash, err := s.Put(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crash child put:", err)
			os.Exit(1)
		}
		if err := s.SetIndex(fmt.Sprintf("crash-key-%d", i), hash); err != nil {
			fmt.Fprintln(os.Stderr, "crash child index:", err)
			os.Exit(1)
		}
		if _, err := s.AppendProvenance(ProvenanceRecord{
			Key: fmt.Sprintf("crash-key-%d", i), Artifact: hash,
			ConfigJSON: `{"bits":8}`, GoVersion: "go-test", CodeHash: "crash",
		}); err != nil {
			fmt.Fprintln(os.Stderr, "crash child provenance:", err)
			os.Exit(1)
		}
		if i == 0 {
			// Signal the parent that writes are flowing.
			os.WriteFile(filepath.Join(dir, "..", "ready"), []byte("ok"), 0o644)
		}
	}
}

// TestOpenOnHostileRoot: Open refuses an unusable root with an error
// (callers then run Degrade), rather than limping along half-open.
func TestOpenOnHostileRoot(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file, Options{}); err == nil {
		t.Fatal("Open over a regular file succeeded, want error")
	}
	var pe *os.PathError
	if _, err := Open(filepath.Join(file, "sub"), Options{}); err == nil || !errors.As(err, &pe) {
		t.Fatalf("Open under a regular file: err = %v, want a path error", err)
	}
}
