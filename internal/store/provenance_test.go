package store

import (
	"encoding/json"
	"strings"
	"testing"
)

// appendRuns appends n provenance records describing distinct runs and
// returns them as appended.
func appendRuns(t *testing.T, s *Store, n int) []ProvenanceRecord {
	t.Helper()
	out := make([]ProvenanceRecord, 0, n)
	for i := 0; i < n; i++ {
		data := []byte(strings.Repeat("r", i+1))
		hash, err := s.Put(data)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s.AppendProvenance(ProvenanceRecord{
			Key:        "run-" + string(rune('a'+i)),
			Artifact:   hash,
			ConfigJSON: `{"bits":8}`,
			Seed:       int64(i),
			GoVersion:  "go1.24",
			CodeHash:   "deadbeef",
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
	return out
}

func TestProvenanceChain(t *testing.T) {
	b, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	recs := appendRuns(t, s, 3)
	if recs[0].Prev != "" || recs[1].Prev != recs[0].Hash || recs[2].Prev != recs[1].Hash {
		t.Fatalf("chain links wrong: %+v", recs)
	}
	n, err := s.VerifyProvenance()
	if err != nil || n != 3 {
		t.Fatalf("VerifyProvenance = %d, %v, want 3 clean records", n, err)
	}

	// A reopened store continues the chain from the persisted head
	// rather than restarting it.
	s2, err := New(b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.AppendProvenance(ProvenanceRecord{Key: "run-d", Artifact: Hash([]byte("d"))})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 3 || rec.Prev != recs[2].Hash {
		t.Fatalf("reopened append: seq %d prev %s, want 3 linking %s", rec.Seq, rec.Prev, recs[2].Hash)
	}
	if n, err := s2.VerifyProvenance(); err != nil || n != 4 {
		t.Fatalf("VerifyProvenance after reopen = %d, %v, want 4", n, err)
	}
}

// TestProvenanceTamper: editing a stored record, unlinking it, or
// deleting one from the middle must all fail verification — the
// tamper-evidence acceptance bar.
func TestProvenanceTamper(t *testing.T) {
	setup := func(t *testing.T) (*Store, *FS) {
		b, err := NewFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(b, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		appendRuns(t, s, 3)
		return s, b
	}

	t.Run("edited_field", func(t *testing.T) {
		s, b := setup(t)
		// Rewrite record 1 claiming a different seed, keeping its stored
		// hash: the recomputed chain hash exposes the edit.
		data, err := b.Get(provKey(1))
		if err != nil {
			t.Fatal(err)
		}
		var r ProvenanceRecord
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		r.Seed = 999
		edited, _ := json.Marshal(r)
		if err := b.Put(provKey(1), edited); err != nil {
			t.Fatal(err)
		}
		n, err := s.VerifyProvenance()
		if err == nil || !strings.Contains(err.Error(), "tampered") {
			t.Fatalf("VerifyProvenance = %d, %v, want tamper error", n, err)
		}
		if n != 1 {
			t.Errorf("verified prefix = %d, want 1 (records before the edit)", n)
		}
	})

	t.Run("rehashed_record", func(t *testing.T) {
		s, b := setup(t)
		// A smarter attacker recomputes the edited record's own hash —
		// but the next record's Prev no longer matches.
		data, err := b.Get(provKey(1))
		if err != nil {
			t.Fatal(err)
		}
		var r ProvenanceRecord
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		r.Seed = 999
		r.Hash = r.chainHash()
		edited, _ := json.Marshal(r)
		if err := b.Put(provKey(1), edited); err != nil {
			t.Fatal(err)
		}
		if _, err := s.VerifyProvenance(); err == nil || !strings.Contains(err.Error(), "prev link") {
			t.Fatalf("VerifyProvenance err = %v, want prev-link mismatch", err)
		}
	})

	t.Run("deleted_middle", func(t *testing.T) {
		s, b := setup(t)
		if err := b.Delete(provKey(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.VerifyProvenance(); err == nil || !strings.Contains(err.Error(), "seq") {
			t.Fatalf("VerifyProvenance err = %v, want sequence-gap error", err)
		}
	})

	t.Run("clean_chain_verifies", func(t *testing.T) {
		s, _ := setup(t)
		if n, err := s.VerifyProvenance(); err != nil || n != 3 {
			t.Fatalf("untampered chain: VerifyProvenance = %d, %v, want 3 clean", n, err)
		}
	})
}
