package store

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// benchStoreReport is the schema of BENCH_store.json (`make
// bench-store`): measured throughput of the durable tier plus the
// warm-restart hit rate — the numbers behind the docs/ROBUSTNESS.md
// claims about what crash-safety costs.
type benchStoreReport struct {
	// Atomic write discipline: fsync-backed Put throughput for
	// result-sized (~4 KiB) artifacts.
	ArtifactBytes    int     `json:"artifact_bytes"`
	Writes           int     `json:"writes"`
	WriteSeconds     float64 `json:"write_seconds"`
	WritesPerSecond  float64 `json:"writes_per_second"`
	WriteMBPerSecond float64 `json:"write_mb_per_second"`
	// Verified reads: every Get re-hashes the blob before serving it.
	Reads           int     `json:"reads"`
	ReadSeconds     float64 `json:"read_seconds"`
	ReadsPerSecond  float64 `json:"reads_per_second"`
	ReadMBPerSecond float64 `json:"read_mb_per_second"`
	// Warm restart: a fresh store over the same directory must resolve
	// and verify every previously indexed result.
	WarmRestartEntries int     `json:"warm_restart_entries"`
	WarmRestartHits    int     `json:"warm_restart_hits"`
	WarmRestartHitRate float64 `json:"warm_restart_hit_rate"`
	OpenSeconds        float64 `json:"open_seconds"`
}

// TestBenchStore is the harness behind `make bench-store`, gated on
// BENCH_STORE_OUT. CI runs it as a smoke asserting a perfect
// warm-restart hit rate; the committed BENCH_store.json comes from an
// uncontended local run.
func TestBenchStore(t *testing.T) {
	out := os.Getenv("BENCH_STORE_OUT")
	if out == "" {
		t.Skip("set BENCH_STORE_OUT=<file> to write the store benchmark report")
	}
	var rep benchStoreReport
	const n = 200
	rep.Writes, rep.Reads, rep.WarmRestartEntries = n, n, n
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// --- Write throughput (temp + fsync + rename per artifact). ---
	blobs := make([][]byte, n)
	for i := range blobs {
		blobs[i] = []byte(strings.Repeat(fmt.Sprintf("result %03d ", i), 372)) // ~4 KiB
	}
	rep.ArtifactBytes = len(blobs[0])
	hashes := make([]string, n)
	start := time.Now()
	for i, b := range blobs {
		h, err := s.Put(b)
		if err != nil {
			t.Fatal(err)
		}
		hashes[i] = h
		if err := s.SetIndex(fmt.Sprintf("bench-key-%d", i), h); err != nil {
			t.Fatal(err)
		}
	}
	rep.WriteSeconds = time.Since(start).Seconds()
	rep.WritesPerSecond = float64(n) / rep.WriteSeconds
	rep.WriteMBPerSecond = float64(n*rep.ArtifactBytes) / rep.WriteSeconds / (1 << 20)
	if deg, err := s.Degraded(); deg {
		t.Fatalf("store degraded during bench: %v", err)
	}

	// --- Verified read throughput. ---
	start = time.Now()
	for _, h := range hashes {
		if _, err := s.Get(h); err != nil {
			t.Fatal(err)
		}
	}
	rep.ReadSeconds = time.Since(start).Seconds()
	rep.ReadsPerSecond = float64(n) / rep.ReadSeconds
	rep.ReadMBPerSecond = float64(n*rep.ArtifactBytes) / rep.ReadSeconds / (1 << 20)

	// --- Warm restart: reopen and resolve every indexed result. ---
	start = time.Now()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep.OpenSeconds = time.Since(start).Seconds()
	for i := 0; i < n; i++ {
		h, ok := s2.LookupIndex(fmt.Sprintf("bench-key-%d", i))
		if !ok {
			continue
		}
		if _, err := s2.Get(h); err == nil {
			rep.WarmRestartHits++
		}
	}
	rep.WarmRestartHitRate = float64(rep.WarmRestartHits) / float64(n)
	if rep.WarmRestartHitRate != 1 {
		t.Errorf("warm-restart hit rate = %.3f, want 1.0 (%d/%d resolved)",
			rep.WarmRestartHitRate, rep.WarmRestartHits, n)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("writes %.0f/s (%.1f MB/s), verified reads %.0f/s (%.1f MB/s), warm restart %d/%d -> %s",
		rep.WritesPerSecond, rep.WriteMBPerSecond, rep.ReadsPerSecond, rep.ReadMBPerSecond,
		rep.WarmRestartHits, n, out)
}
