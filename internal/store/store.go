// Package store is the durable artifact layer of the ccdac flow: a
// content-addressed blob store engineered for crash-safety and hostile
// disks (docs/ROBUSTNESS.md, "Durable artifact store").
//
// Layering:
//
//   - Backend is the blob transport — a flat key→bytes namespace with
//     atomic Put, S3-shaped (Put/Get/Delete/List) so a remote object
//     store can slot in behind the same Store. The filesystem
//     implementation (FS) writes temp + fsync + rename.
//   - Store adds content addressing (blobs are named by their SHA-256,
//     so every read is verifiable), read-time integrity verification
//     with quarantine (a corrupt blob is moved aside and reported, never
//     served), a bounded retry ladder with exponential backoff and
//     jitter for transient backend errors, and graceful degradation: if
//     the backend stays down (disk full, directory gone), the store
//     flips to memory-only operation instead of failing its callers,
//     and heals back when the backend recovers.
//   - An index maps canonical request keys (internal/memo keying) to
//     artifact hashes, and a hash-chained provenance log makes runs
//     tamper-evident (provenance.go).
//
// Every IO edge carries an internal/fault checkpoint (store.write,
// store.fsync, store.rename, store.read, store.verify), and Stats
// exposes the ccdac_store_* metric set.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ccdac/internal/fault"
)

// ErrCorrupt reports that a blob failed content-hash verification and
// was quarantined instead of served.
var ErrCorrupt = errors.New("store: artifact failed integrity verification (quarantined)")

// ErrNotFound reports a hash or index key with no stored artifact.
var ErrNotFound = errors.New("store: artifact not found")

// Options tunes one Store. The zero value is usable.
type Options struct {
	// Retries is the number of backend attempts per operation beyond
	// the first (default 2, i.e. 3 attempts total). Each retry backs
	// off exponentially from RetryBase with ±50% jitter.
	Retries int
	// RetryBase is the first retry's backoff (default 10ms).
	RetryBase time.Duration
	// MemMaxBytes bounds the degraded-mode memory overlay (default
	// 64 MiB); beyond it, the oldest overlay blobs are dropped.
	MemMaxBytes int64
}

func (o Options) withDefaults() Options {
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * time.Millisecond
	}
	if o.MemMaxBytes <= 0 {
		o.MemMaxBytes = 64 << 20
	}
	return o
}

// Store is a content-addressed artifact store over a Backend. All
// methods are safe for concurrent use.
type Store struct {
	b    Backend // nil for a permanently-degraded (memory-only) store
	opts Options

	mu       sync.Mutex
	mem      map[string][]byte // hash → blob: degraded overlay + unflushed writes
	memOrder []string          // insertion order, for bounded eviction
	memBytes int64
	idx      map[string]string   // request key → artifact hash (authoritative)
	idxDirty map[string]struct{} // index keys not yet persisted

	degraded    atomic.Bool
	degradedErr error // guarded by mu; first error that forced degradation

	writes, reads, hits       atomic.Int64
	retries, corruptions      atomic.Int64
	degradedOps, memEvictions atomic.Int64

	prov provenance
}

// Backend is the pluggable blob layer: a flat namespace of keys to
// immutable byte blobs. Put must be atomic (a reader, or a process
// restarted after a crash, never observes a partial blob); Get reports
// fs.ErrNotExist for missing keys; Delete is idempotent; List
// enumerates fully-written keys under a prefix.
type Backend interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	List(prefix string) ([]string, error)
}

// Open opens (creating if needed) a filesystem-backed store at dir.
func Open(dir string, opts Options) (*Store, error) {
	b, err := NewFS(dir)
	if err != nil {
		return nil, err
	}
	return New(b, opts)
}

// New builds a store over b, replaying the persisted index and
// provenance head. Corrupt index entries (torn by a crash in a
// non-atomic backend, or tampered) are skipped and deleted rather than
// trusted.
func New(b Backend, opts Options) (*Store, error) {
	s := &Store{
		b:        b,
		opts:     opts.withDefaults(),
		mem:      map[string][]byte{},
		idx:      map[string]string{},
		idxDirty: map[string]struct{}{},
	}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	if err := s.prov.load(b); err != nil {
		return nil, err
	}
	return s, nil
}

// Degrade returns a permanently memory-only store recording why the
// real backend was unavailable — the "backend is down, keep serving"
// construction. Every operation works against process memory; Degraded
// reports true for the store's lifetime.
func Degrade(err error) *Store {
	s := &Store{
		opts:        Options{}.withDefaults(),
		mem:         map[string][]byte{},
		idx:         map[string]string{},
		idxDirty:    map[string]struct{}{},
		degradedErr: err,
	}
	s.degraded.Store(true)
	return s
}

// Hash returns the content address of data: its SHA-256, hex-encoded.
func Hash(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// blobKey maps a hash to its backend key, sharded by the first byte to
// keep directory fanout flat.
func blobKey(hash string) string {
	return "blobs/" + hash[:2] + "/" + hash
}

// quarantineKey is where a corrupt blob is moved on failed verification.
func quarantineKey(hash string) string { return "quarantine/" + hash }

const indexPrefix = "index/"

// indexKey maps a request key to its backend object. Request keys are
// memo.Key digests (hex) already, but hashing again keeps arbitrary
// caller keys filesystem-safe.
func indexKey(key string) string { return indexPrefix + Hash([]byte(key)) }

// indexEntry is the persisted form of one index mapping.
type indexEntry struct {
	Key      string `json:"key"`
	Artifact string `json:"artifact"`
}

// retry runs op up to 1+Retries times with exponential backoff and
// jitter. Not-found errors are never retried: absence is a result, not
// a transient fault.
func (s *Store) retry(op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || errors.Is(err, fs.ErrNotExist) {
			return err
		}
		if attempt >= s.opts.Retries {
			return err
		}
		s.retries.Add(1)
		d := s.opts.RetryBase << attempt
		// ±50% jitter decorrelates retry storms across goroutines.
		d = d/2 + time.Duration(rand.Int63n(int64(d)))
		time.Sleep(d)
	}
}

// Put stores data and returns its content hash. Backend failure is
// absorbed: after the retry ladder is exhausted the blob is kept in the
// bounded memory overlay, the store flips degraded, and the caller
// still gets the hash — requests keep working while the disk is down.
// The returned error is reserved for programmer errors (nil is the
// norm even when degraded; check Degraded or Stats for health).
func (s *Store) Put(data []byte) (string, error) {
	hash := Hash(data)
	s.writes.Add(1)
	if s.b == nil || s.degraded.Load() {
		if s.b != nil && s.tryRecover() {
			return s.putBackend(hash, data)
		}
		s.degradedOps.Add(1)
		s.memPut(hash, data)
		return hash, nil
	}
	return s.putBackend(hash, data)
}

// putBackend writes one blob through the retry ladder, degrading on
// persistent failure.
func (s *Store) putBackend(hash string, data []byte) (string, error) {
	err := s.retry(func() error { return s.b.Put(blobKey(hash), data) })
	if err != nil {
		s.enterDegraded(err)
		s.degradedOps.Add(1)
		s.memPut(hash, data)
		return hash, nil
	}
	return hash, nil
}

// Get returns the artifact stored under hash, verifying its content
// address before serving it. A blob that fails verification is moved
// to quarantine/ and reported as ErrCorrupt — a corrupt artifact is
// never returned to a caller.
func (s *Store) Get(hash string) ([]byte, error) {
	s.reads.Add(1)
	s.mu.Lock()
	data, ok := s.mem[hash]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return data, nil
	}
	if s.b == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, hash)
	}
	var blob []byte
	err := s.retry(func() error {
		var gerr error
		blob, gerr = s.b.Get(blobKey(hash))
		return gerr
	})
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, hash)
		}
		return nil, err
	}
	if err := fault.Check(fault.StageStoreVerify); err != nil {
		return nil, fmt.Errorf("store: verifying %s: %w", hash, err)
	}
	if got := Hash(blob); got != hash {
		s.quarantine(hash, blob)
		return nil, fmt.Errorf("%w: %s (content hashed to %s)", ErrCorrupt, hash, got)
	}
	s.hits.Add(1)
	return blob, nil
}

// quarantine moves a corrupt blob out of the serving namespace so it
// can be inspected but never returned, and counts the corruption.
// Best-effort: if the quarantine write itself fails the blob is still
// deleted from the serving path.
func (s *Store) quarantine(hash string, blob []byte) {
	s.corruptions.Add(1)
	_ = s.b.Put(quarantineKey(hash), blob)
	_ = s.b.Delete(blobKey(hash))
}

// Quarantined lists the hashes currently held in quarantine.
func (s *Store) Quarantined() ([]string, error) {
	if s.b == nil {
		return nil, nil
	}
	keys, err := s.b.List("quarantine/")
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k[len("quarantine/"):])
	}
	return out, nil
}

// SetIndex durably maps a canonical request key to an artifact hash.
// The in-memory index is always updated (lookups work even while the
// backend is down); persistence follows the same degrade-don't-fail
// contract as Put.
func (s *Store) SetIndex(key, hash string) error {
	s.mu.Lock()
	s.idx[key] = hash
	s.idxDirty[key] = struct{}{}
	s.mu.Unlock()
	if s.b == nil || s.degraded.Load() {
		if s.b == nil || !s.tryRecover() {
			s.degradedOps.Add(1)
			return nil
		}
	}
	data, err := json.Marshal(indexEntry{Key: key, Artifact: hash})
	if err != nil {
		return err
	}
	if err := s.retry(func() error { return s.b.Put(indexKey(key), data) }); err != nil {
		s.enterDegraded(err)
		s.degradedOps.Add(1)
		return nil
	}
	s.mu.Lock()
	delete(s.idxDirty, key)
	s.mu.Unlock()
	return nil
}

// LookupIndex resolves a canonical request key to its artifact hash.
func (s *Store) LookupIndex(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.idx[key]
	return h, ok
}

// IndexLen returns the number of indexed request keys.
func (s *Store) IndexLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// loadIndex replays the persisted index into memory, dropping entries
// that do not parse (torn or tampered) instead of trusting them.
func (s *Store) loadIndex() error {
	keys, err := s.b.List(indexPrefix)
	if err != nil {
		return err
	}
	for _, k := range keys {
		data, err := s.b.Get(k)
		if err != nil {
			continue
		}
		var e indexEntry
		if json.Unmarshal(data, &e) != nil || e.Key == "" || e.Artifact == "" {
			_ = s.b.Delete(k) // unreadable: quarantine-by-removal
			continue
		}
		s.idx[e.Key] = e.Artifact
	}
	return nil
}

// enterDegraded flips the store to memory-only mode, remembering the
// first cause.
func (s *Store) enterDegraded(err error) {
	s.mu.Lock()
	if s.degradedErr == nil {
		s.degradedErr = err
	}
	s.mu.Unlock()
	s.degraded.Store(true)
}

// tryRecover probes a degraded backend with one cheap write; on
// success it flushes the memory overlay and dirty index entries back
// to the backend and clears the degradation. Returns whether the store
// is healthy again.
func (s *Store) tryRecover() bool {
	if s.b == nil {
		return false
	}
	if err := s.b.Put("health/probe", []byte("ok")); err != nil {
		return false
	}
	s.mu.Lock()
	mem := make(map[string][]byte, len(s.mem))
	for h, b := range s.mem {
		mem[h] = b
	}
	dirty := make(map[string]string, len(s.idxDirty))
	for k := range s.idxDirty {
		dirty[k] = s.idx[k]
	}
	s.mu.Unlock()
	for h, b := range mem {
		if s.b.Put(blobKey(h), b) != nil {
			return false
		}
	}
	for k, h := range dirty {
		data, err := json.Marshal(indexEntry{Key: k, Artifact: h})
		if err != nil || s.b.Put(indexKey(k), data) != nil {
			return false
		}
	}
	s.mu.Lock()
	for h, b := range mem {
		if _, ok := s.mem[h]; ok {
			delete(s.mem, h)
			s.memBytes -= int64(len(b))
		}
	}
	s.memOrder = s.memOrder[:0]
	for h := range s.mem {
		s.memOrder = append(s.memOrder, h)
	}
	for k := range dirty {
		delete(s.idxDirty, k)
	}
	s.degradedErr = nil
	s.mu.Unlock()
	s.degraded.Store(false)
	return true
}

// memPut stores a blob in the bounded degraded-mode overlay, evicting
// oldest-first beyond the byte bound.
func (s *Store) memPut(hash string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mem[hash]; ok {
		return
	}
	s.mem[hash] = data
	s.memOrder = append(s.memOrder, hash)
	s.memBytes += int64(len(data))
	for s.memBytes > s.opts.MemMaxBytes && len(s.memOrder) > 0 {
		old := s.memOrder[0]
		s.memOrder = s.memOrder[1:]
		if b, ok := s.mem[old]; ok {
			s.memBytes -= int64(len(b))
			delete(s.mem, old)
			s.memEvictions.Add(1)
		}
	}
}

// Degraded reports whether the store is currently in memory-only mode,
// with the error that forced it there.
func (s *Store) Degraded() (bool, error) {
	if !s.degraded.Load() {
		return false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return true, s.degradedErr
}

// Stats is a point-in-time view of store health, the source of the
// ccdac_store_* metric set (docs/OBSERVABILITY.md).
type Stats struct {
	Writes                 int64 // artifacts stored (Put calls)
	Reads                  int64 // Get calls
	Hits                   int64 // Gets that returned a verified artifact
	Retries                int64 // backend retries taken by the backoff ladder
	CorruptionsQuarantined int64 // blobs that failed verification and were quarantined
	DegradedOps            int64 // operations absorbed by memory-only mode
	MemEvictions           int64 // overlay blobs dropped by the memory bound
	MemBytes               int64 // bytes currently held in the overlay
	IndexEntries           int64 // request keys resolvable via the index
	ProvenanceRecords      int64 // length of the provenance chain
	Degraded               bool  // memory-only right now
}

// Stats returns the store's current accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	memBytes, idxLen := s.memBytes, int64(len(s.idx))
	s.mu.Unlock()
	return Stats{
		Writes:                 s.writes.Load(),
		Reads:                  s.reads.Load(),
		Hits:                   s.hits.Load(),
		Retries:                s.retries.Load(),
		CorruptionsQuarantined: s.corruptions.Load(),
		DegradedOps:            s.degradedOps.Load(),
		MemEvictions:           s.memEvictions.Load(),
		MemBytes:               memBytes,
		IndexEntries:           idxLen,
		ProvenanceRecords:      s.prov.len(),
		Degraded:               s.degraded.Load(),
	}
}
