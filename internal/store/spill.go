// Spill adapter: lets internal/memo caches persist evicted entries as
// store artifacts and restore them on a later miss, so long sweeps
// survive memory pressure without recomputing placements or Cholesky
// factors. The adapter satisfies memo.Spill structurally — memo
// defines the interface, store stays import-free of it.
package store

// Spiller adapts a Store to the memo.Spill interface. Spilled entries
// are ordinary content-addressed blobs plus an index mapping
// "memo/<cache>/<key>" to the blob hash, so they ride the same
// crash-safety, verification and degradation machinery as every other
// artifact.
type Spiller struct {
	S *Store
}

// SpillPut persists one evicted entry. Failures degrade silently (the
// entry is simply recomputed on a future miss) — spilling is an
// optimization, never a correctness edge.
func (sp Spiller) SpillPut(cache, key string, data []byte) {
	if sp.S == nil {
		return
	}
	hash, err := sp.S.Put(data)
	if err != nil {
		return
	}
	_ = sp.S.SetIndex("memo/"+cache+"/"+key, hash)
}

// SpillGet restores a previously spilled entry, verifying its content
// hash on the way back in. Corrupt spills report absent: the caller
// recomputes.
func (sp Spiller) SpillGet(cache, key string) ([]byte, bool) {
	if sp.S == nil {
		return nil, false
	}
	hash, ok := sp.S.LookupIndex("memo/" + cache + "/" + key)
	if !ok {
		return nil, false
	}
	data, err := sp.S.Get(hash)
	if err != nil {
		return nil, false
	}
	return data, true
}
