// Package route implements the paper's constructive routing flow
// (Sec. IV-B): bottom-plate routing per Algorithm 1 (channel selection,
// track assignment, branch/trunk/bridge wire creation), the top-plate
// minimum-spanning-tree routing, and parallel-wire routing for critical
// bits (Sec. IV-B4).
//
// Electrical conventions (see DESIGN.md):
//
//   - MOM unit capacitors span M1-M3; both plates are accessible on
//     every layer at the cell, so a routing wire that *starts at a
//     cell* needs no via on its own layer. Vias occur only at
//     wire-to-wire junctions away from cells: branch->trunk,
//     trunk->bridge, and the per-bit input connection. This reproduces
//     the paper's "for any number of bits for S, the only vias are at
//     the input connection ... unit capacitors use nearest-neighbor
//     connections using the same metal layer with no vias".
//   - With p parallel wires, wire resistance divides by p, via arrays
//     have p^2 cuts (resistance /p^2), wire capacitance multiplies by p.
//   - The switch/driver cluster sits below the array; every bit's
//     bottom-plate net terminates on a rail below row 0.
package route

import (
	"context"
	"fmt"
	"math"
	"sort"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/fault"
	"ccdac/internal/geom"
	"ccdac/internal/groups"
	"ccdac/internal/obs"
	"ccdac/internal/tech"
)

// Kind classifies a routed wire.
type Kind int

const (
	// KindAbut is an intra-group nearest-neighbor bottom-plate
	// connection created during group formation (via-free).
	KindAbut Kind = iota
	// KindBranch connects a unit cell to a trunk track.
	KindBranch
	// KindTrunk is a vertical channel wire carrying a cluster to the
	// terminal rails.
	KindTrunk
	// KindBridge connects the trunks of one capacitor along its rail.
	KindBridge
	// KindTop is top-plate routing (column wires and column links).
	KindTop
)

func (k Kind) String() string {
	switch k {
	case KindAbut:
		return "abut"
	case KindBranch:
		return "branch"
	case KindTrunk:
		return "trunk"
	case KindBridge:
		return "bridge"
	case KindTop:
		return "top"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// TopPlateBit marks top-plate wires in Wire.Bit.
const TopPlateBit = -1

// Wire is one routed Manhattan segment.
type Wire struct {
	Seg   geom.Seg
	Layer int // index into Technology.Layers
	Par   int // parallel wire count p (>= 1)
	Bit   int // capacitor index, or TopPlateBit
	Kind  Kind
}

// Via is a junction between two layers. With Par parallel wires the
// physical via array has Par*Par cuts.
type Via struct {
	At     geom.Pt
	LayerA int
	LayerB int
	Par    int
	Bit    int
	// Input marks the per-bit driver (input) connection via.
	Input bool
}

// Cuts returns the number of physical via cuts.
func (v Via) Cuts() int { return v.Par * v.Par }

// partner is a capacitor group joined to a cluster's trunk, with the
// cell (u_q) it connects through.
type partner struct {
	G    *groups.Group
	Cell geom.Cell
}

// Cluster is the unit of Algorithm 1's channel selection: an anchor
// group plus the partner groups that share its trunk track.
type Cluster struct {
	Bit        int
	Anchor     *groups.Group
	AnchorCell geom.Cell // u_p
	Partners   []partner
	// Channel is the vertical channel index in 0..cols (channel c sits
	// left of column c); -1 for Direct clusters.
	Channel int
	// SlotStart is the first sub-track slot the cluster occupies in
	// its channel; it spans Par slots.
	SlotStart int
	// Direct marks a partnerless bottom-row group routed by a straight
	// stub under its bottom cell, using no channel resources.
	Direct bool
}

// Layout is a fully routed common-centroid array.
type Layout struct {
	M    *ccmatrix.Matrix
	Tech *tech.Technology
	// Groups indexes the connected capacitor groups by capacitor.
	Groups [][]*groups.Group
	// Clusters lists Algorithm 1's routing clusters in creation order.
	Clusters []*Cluster
	Wires    []Wire
	Vias     []Via
	// Par is the per-capacitor parallel wire count.
	Par []int
	// ChannelSlots counts the sub-track slots used per channel (len cols+1).
	ChannelSlots []int
	// Width and Height are the routed array extents in microns
	// (including channels and the rail margin below the array).
	Width, Height float64
	// Terminals holds the per-bit input connection point on its rail.
	Terminals []geom.Pt

	opts Options

	railY []float64 // per-bit rail y
	rowY  []float64 // cell-center y per row
	colX  []float64 // cell-center x per column
	chX   []float64 // channel left-edge x per channel index
	chW   []float64 // channel width per channel index
}

// railPitch is the vertical spacing between per-bit terminal rails in
// the margin below the array, in microns.
const railPitch = 0.20

// CellCenter returns the physical center of a cell in the routed layout.
func (l *Layout) CellCenter(c geom.Cell) geom.Pt {
	return geom.Pt{X: l.colX[c.Col], Y: l.rowY[c.Row]}
}

// RailY returns the terminal rail y coordinate of capacitor bit.
func (l *Layout) RailY(bit int) float64 { return l.railY[bit] }

// TrackX returns the x coordinate of the center of the slot range
// [slot, slot+par) in the given channel.
func (l *Layout) TrackX(channel, slot, par int) float64 {
	pitch := l.Tech.Layers[l.Tech.VerticalLayer()].Pitch
	return l.chX[channel] + (float64(slot)+float64(par)/2)*pitch
}

// Options selects router ablations. The zero value is the paper's
// full Algorithm 1.
type Options struct {
	// NoDirectStubs disables the bottom-row direct stubs: every group
	// routes through a channel trunk.
	NoDirectStubs bool
	// NoPartnering disables channel selection's group partnering and
	// track sharing: every connected group gets its own trunk track.
	NoPartnering bool
}

// Route runs the full constructive router on a validated placement.
// par gives the per-capacitor parallel wire counts (nil: all 1).
func Route(m *ccmatrix.Matrix, t *tech.Technology, par []int) (*Layout, error) {
	return RouteWithOptionsContext(context.Background(), m, t, par, Options{})
}

// RouteContext is Route under a context carrying the observability
// trace: Algorithm 1's steps are recorded as nested spans and the
// routed-resource totals as trace metrics.
func RouteContext(ctx context.Context, m *ccmatrix.Matrix, t *tech.Technology, par []int) (*Layout, error) {
	return RouteWithOptionsContext(ctx, m, t, par, Options{})
}

// RouteWithOptions runs the router with ablation options — used to
// quantify what Algorithm 1's channel selection and bottom-stub
// tie-breakers buy over a naive one-trunk-per-group router.
func RouteWithOptions(m *ccmatrix.Matrix, t *tech.Technology, par []int, opts Options) (*Layout, error) {
	return RouteWithOptionsContext(context.Background(), m, t, par, opts)
}

// RouteWithOptionsContext is RouteWithOptions under a context carrying
// the observability trace.
func RouteWithOptionsContext(ctx context.Context, m *ccmatrix.Matrix, t *tech.Technology, par []int, opts Options) (*Layout, error) {
	if err := fault.Check(fault.StageRoute); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	if par == nil {
		par = make([]int, m.Bits+1)
	}
	if len(par) != m.Bits+1 {
		return nil, fmt.Errorf("route: par has %d entries, want %d", len(par), m.Bits+1)
	}
	parOf := make([]int, len(par))
	for i, p := range par {
		if p < 1 {
			p = 1
		}
		parOf[i] = p
	}
	_, span := obs.StartSpan(ctx, "route.groups")
	gs, err := groups.Find(m)
	if err != nil {
		err = fmt.Errorf("route: %w", err)
		span.Fail(err)
		span.End()
		return nil, err
	}
	span.End()
	l := &Layout{M: m, Tech: t, Groups: gs, Par: parOf, opts: opts}
	l.step(ctx, "route.clusters", l.formClusters) // Algorithm 1, Step 1
	l.step(ctx, "route.tracks", l.assignTracks)   // Algorithm 1, Step 2
	l.step(ctx, "route.geometry", l.computeGeometry)
	l.step(ctx, "route.wires", l.realizeWires) // Algorithm 1, Step 3
	l.step(ctx, "route.top", l.routeTopPlate)
	obs.Count(ctx, "ccdac_route_wires_total", int64(len(l.Wires)))
	obs.Count(ctx, "ccdac_route_vias_total", int64(len(l.Vias)))
	obs.Count(ctx, "ccdac_route_via_cuts_total", int64(l.ViaCuts()))
	obs.Count(ctx, "ccdac_route_clusters_total", int64(len(l.Clusters)))
	obs.SetGauge(ctx, "ccdac_route_wirelength_um", l.TotalWirelength())
	return l, nil
}

// step runs one Algorithm-1 phase under an observability span.
func (l *Layout) step(ctx context.Context, name string, f func()) {
	_, span := obs.StartSpan(ctx, name)
	f()
	span.End()
}

// formClusters is Algorithm 1 Step 1 (channel selection): for each
// capacitor, anchor groups collect partner groups whose horizontal
// span intersects theirs and whose connection cell lands in the
// channel column window; the side with more candidates wins.
func (l *Layout) formClusters() {
	for bit := 0; bit <= l.M.Bits; bit++ {
		list := l.Groups[bit]
		visited := make([]bool, len(list))
		// Groups touching the bottom row drop a direct stub to their
		// rail first: the drivers sit right below, and the paper's
		// tie-breakers consistently prefer the shortest connection to
		// the bottom (Algorithm 1 line 16, Fig. 3's C_6).
		for j, p := range list {
			if p.TouchesBottom() && !l.opts.NoDirectStubs {
				visited[j] = true
				l.Clusters = append(l.Clusters, &Cluster{
					Bit: bit, Anchor: p, AnchorCell: p.BottomCell(),
					Channel: -1, Direct: true,
				})
			}
		}
		for j, p := range list {
			if visited[j] {
				continue
			}
			visited[j] = true

			// Partnerless bottom-row groups route a direct stub.
			var pl, pr []partner // candidate partners left/right
			anchorCol := -1
			var anchorCell geom.Cell
			for k, q := range list {
				if visited[k] || l.opts.NoPartnering {
					break
				}
				plo, phi := p.ColSpan()
				qlo, qhi := q.ColSpan()
				if phi < qlo || qhi < plo {
					continue // horizontal spans disjoint (line 14)
				}
				up, uq := p.ClosestCells(q)
				if anchorCol == -1 {
					anchorCol = up.Col // line 17-18: c[j] = column of u_p
					anchorCell = up
				}
				// Lines 20-25: q joins the left channel candidates if
				// u_q sits in column c-1 or c, the right candidates if
				// in column c or c+1.
				if uq.Col == anchorCol-1 || uq.Col == anchorCol {
					pl = append(pl, partner{G: q, Cell: uq})
				}
				if uq.Col == anchorCol || uq.Col == anchorCol+1 {
					pr = append(pr, partner{G: q, Cell: uq})
				}
			}
			cl := &Cluster{Bit: bit, Anchor: p, Channel: -1}
			switch {
			case len(pl) == 0 && len(pr) == 0:
				// Isolated non-bottom group: take a track in the
				// adjacent channel with the lighter load (deterministic
				// tie toward the left).
				cl.AnchorCell = p.BottomCell()
				left, right := cl.AnchorCell.Col, cl.AnchorCell.Col+1
				if l.channelLoad(left) <= l.channelLoad(right) {
					cl.Channel = left
				} else {
					cl.Channel = right
				}
			case len(pl) > len(pr): // lines 29-31
				cl.AnchorCell = anchorCell
				cl.Partners = pl
				cl.Channel = anchorCol
				for _, q := range pl {
					markVisited(list, visited, q.G)
				}
			default: // lines 31-33
				cl.AnchorCell = anchorCell
				cl.Partners = pr
				cl.Channel = anchorCol + 1
				for _, q := range pr {
					markVisited(list, visited, q.G)
				}
			}
			l.Clusters = append(l.Clusters, cl)
		}
	}
	l.shareTracks()
}

// shareTracks merges clusters of the same capacitor that chose the
// same channel: they are one electrical net and can share a single
// trunk track (Algorithm 1's channel selection "attempts to assign
// capacitor groups to channels so that they maximize track sharing").
func (l *Layout) shareTracks() {
	if l.opts.NoPartnering {
		return
	}
	type key struct{ bit, ch int }
	first := map[key]*Cluster{}
	merged := l.Clusters[:0]
	for _, c := range l.Clusters {
		if c.Direct {
			merged = append(merged, c)
			continue
		}
		k := key{c.Bit, c.Channel}
		if host, ok := first[k]; ok {
			host.Partners = append(host.Partners, partner{G: c.Anchor, Cell: c.AnchorCell})
			host.Partners = append(host.Partners, c.Partners...)
			continue
		}
		first[k] = c
		merged = append(merged, c)
	}
	l.Clusters = merged
}

func markVisited(list []*groups.Group, visited []bool, g *groups.Group) {
	for i, x := range list {
		if x == g {
			visited[i] = true
			return
		}
	}
}

// channelLoad counts slots already committed to a channel during
// cluster formation (used only for the isolated-group side heuristic).
func (l *Layout) channelLoad(ch int) int {
	n := 0
	for _, c := range l.Clusters {
		if !c.Direct && c.Channel == ch {
			n += l.Par[c.Bit]
		}
	}
	return n
}

// assignTracks is Algorithm 1 Step 2: per channel, clusters take the
// next free slot range (Par slots wide) in creation order. DAC
// performance is insensitive to ordering within a channel (Sec. IV-B3).
func (l *Layout) assignTracks() {
	l.ChannelSlots = make([]int, l.M.Cols+1)
	for _, c := range l.Clusters {
		if c.Direct {
			continue
		}
		c.SlotStart = l.ChannelSlots[c.Channel]
		l.ChannelSlots[c.Channel] += l.Par[c.Bit]
	}
}

// computeGeometry fixes the physical coordinate system: channel widths
// from slot counts, cell centers, per-bit rails, and array extents.
func (l *Layout) computeGeometry() {
	u := l.Tech.Unit
	pitch := l.Tech.Layers[l.Tech.VerticalLayer()].Pitch
	cols, rows := l.M.Cols, l.M.Rows

	l.chW = make([]float64, cols+1)
	for ch, slots := range l.ChannelSlots {
		if slots > 0 {
			// One guard pitch on each side of the track bundle.
			l.chW[ch] = float64(slots+1) * pitch
		}
	}
	l.chX = make([]float64, cols+1)
	l.colX = make([]float64, cols)
	x := 0.0
	for ch := 0; ch <= cols; ch++ {
		l.chX[ch] = x
		x += l.chW[ch]
		if ch < cols {
			l.colX[ch] = x + u.W/2
			x += u.W
		}
	}
	l.Width = x

	margin := float64(l.M.Bits+2) * railPitch
	l.rowY = make([]float64, rows)
	for r := 0; r < rows; r++ {
		l.rowY[r] = margin + (float64(r)+0.5)*u.H
	}
	l.railY = make([]float64, l.M.Bits+1)
	for bit := 0; bit <= l.M.Bits; bit++ {
		l.railY[bit] = margin - float64(bit+1)*railPitch
	}
	l.Height = margin + float64(rows)*u.H
}

// realizeWires is Algorithm 1 Step 3: emit abutment trees, branch
// wires, trunks, bridges, and the input connections, with vias at every
// inter-wire junction.
func (l *Layout) realizeWires() {
	hl := l.Tech.HorizontalLayer()
	vl := l.Tech.VerticalLayer()
	bl := l.bridgeLayer()
	l.Terminals = make([]geom.Pt, l.M.Bits+1)

	// Intra-group abutment wires (via-free, cell-to-cell).
	for bit, list := range l.Groups {
		p := l.Par[bit]
		for _, g := range list {
			for _, e := range g.Edges {
				a, b := l.CellCenter(e.A), l.CellCenter(e.B)
				layer := hl
				if a.X == b.X {
					layer = vl
				}
				l.Wires = append(l.Wires, Wire{
					Seg: geom.Seg{A: a, B: b}, Layer: layer, Par: p, Bit: bit, Kind: KindAbut,
				})
			}
		}
	}

	// Per-bit trunk bottoms for bridge construction.
	type trunkEnd struct{ x float64 }
	ends := make([][]trunkEnd, l.M.Bits+1)

	for _, c := range l.Clusters {
		p := l.Par[c.Bit]
		rail := l.railY[c.Bit]
		if c.Direct {
			// Straight stub under the bottom cell down to the rail.
			at := l.CellCenter(c.AnchorCell)
			l.Wires = append(l.Wires, Wire{
				Seg:   geom.Seg{A: at, B: geom.Pt{X: at.X, Y: rail}},
				Layer: vl, Par: p, Bit: c.Bit, Kind: KindTrunk,
			})
			ends[c.Bit] = append(ends[c.Bit], trunkEnd{x: at.X})
			continue
		}
		tx := l.TrackX(c.Channel, c.SlotStart, p)
		var taps []float64 // branch junction ys along the trunk
		connect := func(cell geom.Cell) {
			at := l.CellCenter(cell)
			l.Wires = append(l.Wires, Wire{
				Seg:   geom.Seg{A: at, B: geom.Pt{X: tx, Y: at.Y}},
				Layer: hl, Par: p, Bit: c.Bit, Kind: KindBranch,
			})
			l.Vias = append(l.Vias, Via{
				At: geom.Pt{X: tx, Y: at.Y}, LayerA: hl, LayerB: vl, Par: p, Bit: c.Bit,
			})
			taps = append(taps, at.Y)
		}
		connect(c.AnchorCell)
		for _, q := range c.Partners {
			connect(q.Cell)
		}
		// The trunk runs from the highest tap down to the rail, split
		// at every tap so each branch junction is an explicit node in
		// the extracted RC network.
		taps = append(taps, rail)
		ys := sortedUniqueDesc(taps)
		for i := 0; i+1 < len(ys); i++ {
			l.Wires = append(l.Wires, Wire{
				Seg:   geom.Seg{A: geom.Pt{X: tx, Y: ys[i]}, B: geom.Pt{X: tx, Y: ys[i+1]}},
				Layer: vl, Par: p, Bit: c.Bit, Kind: KindTrunk,
			})
		}
		ends[c.Bit] = append(ends[c.Bit], trunkEnd{x: tx})
	}

	// Bridges join multiple trunks of one capacitor along its rail;
	// the terminal (input connection) sits at the leftmost trunk.
	for bit := 0; bit <= l.M.Bits; bit++ {
		es := ends[bit]
		if len(es) == 0 {
			continue
		}
		p := l.Par[bit]
		rail := l.railY[bit]
		minX := es[0].x
		for _, e := range es[1:] {
			minX = math.Min(minX, e.x)
		}
		if len(es) > 1 {
			// The bridge is split at every trunk junction so each via
			// lands on an explicit RC node.
			xs := make([]float64, 0, len(es))
			for _, e := range es {
				xs = append(xs, e.x)
			}
			xs = sortedUniqueAsc(xs)
			for i := 0; i+1 < len(xs); i++ {
				l.Wires = append(l.Wires, Wire{
					Seg:   geom.Seg{A: geom.Pt{X: xs[i], Y: rail}, B: geom.Pt{X: xs[i+1], Y: rail}},
					Layer: bl, Par: p, Bit: bit, Kind: KindBridge,
				})
			}
			for _, x := range xs {
				l.Vias = append(l.Vias, Via{
					At: geom.Pt{X: x, Y: rail}, LayerA: vl, LayerB: bl, Par: p, Bit: bit,
				})
			}
		}
		l.Terminals[bit] = geom.Pt{X: minX, Y: rail}
		l.Vias = append(l.Vias, Via{
			At: l.Terminals[bit], LayerA: vlOrBridge(len(es) > 1, l), LayerB: -1, Par: p, Bit: bit, Input: true,
		})
	}
}

func vlOrBridge(bridged bool, l *Layout) int {
	if bridged {
		return l.bridgeLayer()
	}
	return l.Tech.VerticalLayer()
}

// bridgeLayer picks the highest horizontal layer for rails/bridges.
func (l *Layout) bridgeLayer() int {
	best := l.Tech.HorizontalLayer()
	for i, layer := range l.Tech.Layers {
		if layer.Dir == geom.Horizontal {
			best = i
		}
	}
	return best
}

// routeTopPlate builds the MST-style top-plate routing of Sec. IV-B5:
// one vertical wire per column tying all cells, and one cell-to-cell
// link between adjacent columns at the bottom row. Both plate terminals
// exist at the cells on every layer, so the top-plate net is via-free.
func (l *Layout) routeTopPlate() {
	vl := l.Tech.VerticalLayer()
	// Column-to-column links ride the highest horizontal layer so they
	// never share a layer with row-0 bottom-plate branch wires; the top
	// plate is accessible there at the cells, keeping the net via-free.
	hl := l.bridgeLayer()
	rows, cols := l.M.Rows, l.M.Cols
	for c := 0; c < cols; c++ {
		l.Wires = append(l.Wires, Wire{
			Seg: geom.Seg{
				A: geom.Pt{X: l.colX[c], Y: l.rowY[0]},
				B: geom.Pt{X: l.colX[c], Y: l.rowY[rows-1]},
			},
			Layer: vl, Par: 1, Bit: TopPlateBit, Kind: KindTop,
		})
	}
	for c := 0; c+1 < cols; c++ {
		l.Wires = append(l.Wires, Wire{
			Seg: geom.Seg{
				A: geom.Pt{X: l.colX[c], Y: l.rowY[0]},
				B: geom.Pt{X: l.colX[c+1], Y: l.rowY[0]},
			},
			Layer: hl, Par: 1, Bit: TopPlateBit, Kind: KindTop,
		})
	}
}

// sortedUniqueDesc returns the distinct values sorted descending.
func sortedUniqueDesc(vs []float64) []float64 {
	out := sortedUniqueAsc(vs)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// sortedUniqueAsc returns the distinct values sorted ascending.
func sortedUniqueAsc(vs []float64) []float64 {
	out := append([]float64(nil), vs...)
	sort.Float64s(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// Area returns the routed array area in square microns.
func (l *Layout) Area() float64 { return l.Width * l.Height }

// WirelengthByBit sums routed wirelength in microns per capacitor
// (abutment, branch, trunk, bridge), excluding top-plate wires.
func (l *Layout) WirelengthByBit() []float64 {
	out := make([]float64, l.M.Bits+1)
	for _, w := range l.Wires {
		if w.Bit >= 0 {
			out[w.Bit] += w.Seg.Len()
		}
	}
	return out
}

// ViaCuts returns the total number of physical via cuts (vias count
// p^2 under p-wire parallel routing), the Sigma N_V of Table I.
func (l *Layout) ViaCuts() int {
	n := 0
	for _, v := range l.Vias {
		n += v.Cuts()
	}
	return n
}

// TotalWirelength returns the total routed wirelength in microns
// including top-plate wires (the Sigma L of Table I).
func (l *Layout) TotalWirelength() float64 {
	s := 0.0
	for _, w := range l.Wires {
		s += w.Seg.Len()
	}
	return s
}
