package route

import (
	"math"
	"testing"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
	"ccdac/internal/place"
	"ccdac/internal/tech"
)

func routed(t *testing.T, bits int, style place.Style) *Layout {
	t.Helper()
	var m *ccmatrix.Matrix
	var err error
	switch style {
	case place.Spiral:
		m, err = place.NewSpiral(bits)
	case place.Chessboard:
		m, err = place.NewChessboard(bits)
	case place.BlockChessboard:
		m, err = place.NewBlockChessboard(bits, place.BCParams{CoreBits: 4, BlockCells: 2})
	default:
		m, err = place.NewAnnealed(bits, place.AnnealConfig{Seed: 1, Moves: 2000})
	}
	if err != nil {
		t.Fatal(err)
	}
	l, err := Route(m, tech.FinFET12(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRouteSpiralBasics(t *testing.T) {
	l := routed(t, 6, place.Spiral)
	if len(l.Wires) == 0 || len(l.Vias) == 0 {
		t.Fatal("routing produced no wires or vias")
	}
	if l.Width <= 0 || l.Height <= 0 {
		t.Fatal("degenerate layout extents")
	}
	// Every bit gets a terminal at its rail.
	for bit := 0; bit <= 6; bit++ {
		term := l.Terminals[bit]
		if term.Y != l.RailY(bit) {
			t.Errorf("bit %d terminal y=%g, want rail %g", bit, term.Y, l.RailY(bit))
		}
		if term.X < 0 || term.X > l.Width {
			t.Errorf("bit %d terminal x=%g outside layout", bit, term.X)
		}
	}
}

func TestEveryBitHasInputVia(t *testing.T) {
	for _, style := range []place.Style{place.Spiral, place.Chessboard, place.BlockChessboard} {
		l := routed(t, 6, style)
		inputs := map[int]int{}
		for _, v := range l.Vias {
			if v.Input {
				inputs[v.Bit]++
			}
		}
		for bit := 0; bit <= 6; bit++ {
			if inputs[bit] != 1 {
				t.Errorf("%v: bit %d has %d input vias, want 1", style, bit, inputs[bit])
			}
		}
	}
}

func TestSpiralUsesFewestVias(t *testing.T) {
	// The paper's central claim: S << BC << chessboard in via count.
	s := routed(t, 8, place.Spiral)
	bc := routed(t, 8, place.BlockChessboard)
	cb := routed(t, 8, place.Chessboard)
	if !(s.ViaCuts() < bc.ViaCuts() && bc.ViaCuts() < cb.ViaCuts()) {
		t.Errorf("via ordering violated: S=%d BC=%d CB=%d", s.ViaCuts(), bc.ViaCuts(), cb.ViaCuts())
	}
	if cb.ViaCuts() < 4*s.ViaCuts() {
		t.Errorf("chessboard vias %d not >> spiral %d", cb.ViaCuts(), s.ViaCuts())
	}
}

func TestSpiralShorterWirelength(t *testing.T) {
	s := routed(t, 8, place.Spiral)
	cb := routed(t, 8, place.Chessboard)
	if s.TotalWirelength() >= cb.TotalWirelength() {
		t.Errorf("spiral wirelength %g not below chessboard %g",
			s.TotalWirelength(), cb.TotalWirelength())
	}
}

func TestWiresAreManhattanAndOnReservedLayers(t *testing.T) {
	for _, style := range []place.Style{place.Spiral, place.Chessboard, place.BlockChessboard} {
		l := routed(t, 6, style)
		for _, w := range l.Wires {
			if !w.Seg.IsManhattan() {
				t.Fatalf("%v: wire %+v not Manhattan", style, w)
			}
			if w.Seg.Len() == 0 {
				continue
			}
			if got := l.Tech.Layers[w.Layer].Dir; got != w.Seg.Dir() {
				t.Fatalf("%v: %v wire on layer %s runs %v",
					style, w.Kind, l.Tech.Layers[w.Layer].Name, w.Seg.Dir())
			}
		}
	}
}

func TestChannelWidthsGrowWithTracks(t *testing.T) {
	cb := routed(t, 6, place.Chessboard)
	sp := routed(t, 6, place.Spiral)
	cbSlots, spSlots := 0, 0
	for _, s := range cb.ChannelSlots {
		cbSlots += s
	}
	for _, s := range sp.ChannelSlots {
		spSlots += s
	}
	if cbSlots <= spSlots {
		t.Errorf("chessboard slots %d not above spiral %d", cbSlots, spSlots)
	}
	if cb.Width <= sp.Width {
		t.Errorf("chessboard width %g not above spiral %g (channels must widen)", cb.Width, sp.Width)
	}
}

func TestParallelWiresScaleViasAndSlots(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	base, err := Route(m, tch, nil)
	if err != nil {
		t.Fatal(err)
	}
	par := make([]int, 7)
	par[6] = 2
	dbl, err := Route(m, tch, par)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-6 vias carry Par=2 -> 4 cuts each.
	for _, v := range dbl.Vias {
		if v.Bit == 6 && v.Cuts() != 4 {
			t.Errorf("bit-6 via has %d cuts, want 4", v.Cuts())
		}
		if v.Bit != 6 && v.Cuts() != 1 {
			t.Errorf("bit-%d via has %d cuts, want 1", v.Bit, v.Cuts())
		}
	}
	if dbl.ViaCuts() <= base.ViaCuts() {
		t.Error("parallel routing must increase via cut count")
	}
	// Bit-6 wires carry Par=2.
	for _, w := range dbl.Wires {
		if w.Bit == 6 && w.Par != 2 {
			t.Errorf("bit-6 wire Par=%d, want 2", w.Par)
		}
	}
}

func TestRouteRejectsBadInputs(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Route(m, tech.FinFET12(), []int{1, 1}); err == nil {
		t.Error("wrong par length must be rejected")
	}
	bad := tech.FinFET12()
	bad.ViaROhm = 0
	if _, err := Route(m, bad, nil); err == nil {
		t.Error("invalid technology must be rejected")
	}
	empty := ccmatrix.New(4, 4, 4, 1)
	if _, err := Route(empty, tech.FinFET12(), nil); err == nil {
		t.Error("incomplete placement must be rejected")
	}
}

func TestTrunksEndAtRails(t *testing.T) {
	l := routed(t, 6, place.BlockChessboard)
	// For every bit, some trunk wire must reach the bit's rail y.
	reached := map[int]bool{}
	for _, w := range l.Wires {
		if w.Kind != KindTrunk {
			continue
		}
		lo := math.Min(w.Seg.A.Y, w.Seg.B.Y)
		if lo == l.RailY(w.Bit) {
			reached[w.Bit] = true
		}
	}
	for bit := 0; bit <= 6; bit++ {
		if !reached[bit] {
			t.Errorf("no trunk of bit %d reaches its rail", bit)
		}
	}
}

func TestTrunkSplitAtTaps(t *testing.T) {
	// Branch junction points must coincide with trunk segment endpoints
	// so extraction sees connected networks.
	l := routed(t, 6, place.Chessboard)
	trunkEnd := map[[2]int64]bool{}
	q := func(v float64) int64 { return int64(math.Round(v * 1000)) }
	for _, w := range l.Wires {
		if w.Kind == KindTrunk {
			trunkEnd[[2]int64{q(w.Seg.A.X), q(w.Seg.A.Y)}] = true
			trunkEnd[[2]int64{q(w.Seg.B.X), q(w.Seg.B.Y)}] = true
		}
	}
	for _, v := range l.Vias {
		if v.Input {
			continue
		}
		if v.LayerA == l.Tech.HorizontalLayer() && !trunkEnd[[2]int64{q(v.At.X), q(v.At.Y)}] {
			t.Fatalf("branch via at %v does not land on a trunk endpoint", v.At)
		}
	}
}

func TestDirectStubsForBottomRings(t *testing.T) {
	// Spiral MSB forms a ring touching the bottom row: it must route as
	// a Direct cluster with no channel usage.
	l := routed(t, 6, place.Spiral)
	foundDirect := false
	for _, c := range l.Clusters {
		if c.Bit == 6 && c.Direct {
			foundDirect = true
			if c.Channel != -1 {
				t.Error("direct cluster must not claim a channel")
			}
		}
	}
	if !foundDirect {
		t.Error("spiral MSB did not route as a direct bottom stub")
	}
}

func TestTopPlateViaFree(t *testing.T) {
	l := routed(t, 6, place.Spiral)
	topWires := 0
	for _, w := range l.Wires {
		if w.Bit == TopPlateBit {
			topWires++
			if w.Kind != KindTop {
				t.Error("top-plate wire with wrong kind")
			}
		}
	}
	// cols column wires + cols-1 links.
	if topWires != 8+7 {
		t.Errorf("top-plate wires = %d, want 15", topWires)
	}
	for _, v := range l.Vias {
		if v.Bit == TopPlateBit {
			t.Error("top-plate routing must be via-free")
		}
	}
}

func TestAllCellsCoveredByClusters(t *testing.T) {
	// Every group of every capacitor belongs to exactly one cluster
	// (anchor or partner): routing completion guarantee of Algorithm 1.
	for _, style := range []place.Style{place.Spiral, place.Chessboard, place.BlockChessboard} {
		l := routed(t, 6, style)
		seen := map[interface{}]int{}
		for _, c := range l.Clusters {
			seen[c.Anchor]++
			for _, p := range c.Partners {
				seen[p.G]++
			}
		}
		for bit, list := range l.Groups {
			for _, g := range list {
				if seen[g] != 1 {
					t.Fatalf("%v: C_%d group covered %d times", style, bit, seen[g])
				}
			}
		}
	}
}

func TestWirelengthByBitSums(t *testing.T) {
	l := routed(t, 6, place.Spiral)
	per := l.WirelengthByBit()
	sum := 0.0
	for _, v := range per {
		sum += v
	}
	top := 0.0
	for _, w := range l.Wires {
		if w.Bit == TopPlateBit {
			top += w.Seg.Len()
		}
	}
	if math.Abs(sum+top-l.TotalWirelength()) > 1e-9 {
		t.Errorf("per-bit %g + top %g != total %g", sum, top, l.TotalWirelength())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindAbut: "abut", KindBranch: "branch", KindTrunk: "trunk",
		KindBridge: "bridge", KindTop: "top", Kind(42): "kind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestGeometryWithinBounds(t *testing.T) {
	for _, style := range []place.Style{place.Spiral, place.Chessboard} {
		l := routed(t, 8, style)
		for _, w := range l.Wires {
			for _, p := range []geom.Pt{w.Seg.A, w.Seg.B} {
				if p.X < -1e-9 || p.X > l.Width+1e-9 || p.Y < -1e-9 || p.Y > l.Height+1e-9 {
					t.Fatalf("%v: wire point %v outside %gx%g", style, p, l.Width, l.Height)
				}
			}
		}
	}
}

func TestTrackSharingMergesSameBitClusters(t *testing.T) {
	// No two non-direct clusters of the same capacitor may share a
	// channel after track sharing: they merge onto one trunk.
	for _, style := range []place.Style{place.Chessboard, place.BlockChessboard} {
		l := routed(t, 8, style)
		seen := map[[2]int]bool{}
		for _, c := range l.Clusters {
			if c.Direct {
				continue
			}
			k := [2]int{c.Bit, c.Channel}
			if seen[k] {
				t.Fatalf("%v: two clusters of bit %d in channel %d", style, c.Bit, c.Channel)
			}
			seen[k] = true
		}
	}
}

func TestAblationOptionsQuantifyAlgorithm1(t *testing.T) {
	// The naive router (no partnering, no bottom stubs) must cost more
	// channel tracks than Algorithm 1, and the full router must never
	// be worse. This is the ablation behind the paper's channel
	// selection and bottom tie-breakers.
	tch := tech.FinFET12()
	for _, mk := range []func() (*ccmatrix.Matrix, error){
		func() (*ccmatrix.Matrix, error) { return place.NewSpiral(8) },
		func() (*ccmatrix.Matrix, error) {
			return place.NewBlockChessboard(8, place.BCParams{CoreBits: 4, BlockCells: 2})
		},
	} {
		m, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		full, err := Route(m, tch, nil)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := RouteWithOptions(m, tch, nil, Options{NoDirectStubs: true, NoPartnering: true})
		if err != nil {
			t.Fatal(err)
		}
		slots := func(l *Layout) int {
			n := 0
			for _, s := range l.ChannelSlots {
				n += s
			}
			return n
		}
		if slots(naive) <= slots(full) {
			t.Errorf("naive router slots %d not above Algorithm 1's %d", slots(naive), slots(full))
		}
		if naive.Width <= full.Width {
			t.Errorf("naive router width %g not above Algorithm 1's %g", naive.Width, full.Width)
		}
	}
}

func TestAblationLayoutsStillComplete(t *testing.T) {
	// Even the naive configuration must produce complete, connected
	// routing for every bit (the completion guarantee is structural).
	m, err := place.NewChessboard(6)
	if err != nil {
		t.Fatal(err)
	}
	l, err := RouteWithOptions(m, tech.FinFET12(), nil, Options{NoDirectStubs: true, NoPartnering: true})
	if err != nil {
		t.Fatal(err)
	}
	inputs := 0
	for _, v := range l.Vias {
		if v.Input {
			inputs++
		}
	}
	if inputs != 7 {
		t.Errorf("input vias = %d, want 7", inputs)
	}
	for _, c := range l.Clusters {
		if c.Direct {
			t.Error("NoDirectStubs must not produce direct clusters")
		}
		if len(c.Partners) != 0 {
			t.Error("NoPartnering must not produce partnered clusters")
		}
	}
}
