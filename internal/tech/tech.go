// Package tech models the process technology that the common-centroid
// placement and routing flow targets: reserved-direction metal layers
// with per-unit-length resistance and capacitance, via resistance, the
// MOM unit-capacitor geometry, and the statistical mismatch parameters
// of the paper's Sec. II-B/II-C.
//
// The paper evaluates on a commercial 12nm FinFET process whose tables
// are proprietary. FinFET12 is a synthetic, internally-consistent
// 12nm-class parameter set with the properties that drive the paper's
// results: high wire resistance in low metals, high via resistance, a
// 64 nm routing pitch with width quantization, and a 5 fF square MOM
// unit capacitor built in M1-M3. All of the paper's comparisons are
// relative between placement styles on one fixed technology, so any
// such parameter set preserves the reported orderings and tradeoffs.
package tech

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ccdac/internal/geom"
)

// Layer describes one reserved-direction routing metal layer.
type Layer struct {
	// Name is the layer name, e.g. "M1".
	Name string
	// Dir is the reserved routing direction of the layer.
	Dir geom.Dir
	// ROhmPerUm is the sheet-derived wire resistance per micron of a
	// minimum-width (one-track) wire on this layer.
	ROhmPerUm float64
	// CfFPerUm is the wire capacitance to ground per micron.
	CfFPerUm float64
	// Pitch is the routing pitch (wire width + minimum spacing) in microns.
	// Wire widths are quantized to multiples of the track width, which is
	// why parallel same-net wires are used instead of wide wires.
	Pitch float64
}

// UnitCap describes the MOM unit capacitor cell.
type UnitCap struct {
	// W, H are the outline of one unit capacitor cell in microns.
	W, H float64
	// CfF is the nominal unit capacitance C_u in fF.
	CfF float64
	// AbutLen is the length in microns of the via-free bottom-plate
	// abutment connection between two adjacent same-bit unit cells.
	// MOM caps span M1-M3, so a connection in a layer's reserved
	// direction needs no via (paper Sec. IV-B1).
	AbutLen float64
	// BottomLayer and TopLayer index into Technology.Layers for the
	// bottom-plate and top-plate terminal layers.
	BottomLayer, TopLayer int
}

// Mismatch carries the statistical variation parameters of Sec. II-C.
type Mismatch struct {
	// Af2 is A_f^2 in (fraction^2 · fF · um^2 terms); the unit-cap
	// relative sigma is sigma_u/C_u = sqrt(Af2fFPct/100 / C_u[fF]):
	// the paper cites A_f^2 = 0.85% x 1 fF from Tripathi & Murmann,
	// i.e. the relative variance of a 1 fF capacitor is 0.85%^2... in
	// the paper's shorthand the variance scales as 1/C. We keep the
	// paper's form directly:
	//
	//   sigma_u^2 / C_u^2 = (Af2Pct/100)^2 * (AfRefFF / C_u)
	//
	// with Af2Pct = 0.85 and AfRefFF = 1.
	Af2Pct  float64
	AfRefFF float64
	// RhoU is the nearest-neighbor correlation base rho_u in (0,1).
	RhoU float64
	// LcUm is the correlation length L_c in microns.
	LcUm float64
	// GradientPPMPerUm is the linear oxide-gradient magnitude gamma in
	// parts-per-million of t_0 per micron of distance from the array center.
	GradientPPMPerUm float64
	// QuadGradientPPMPerUm2 is an optional rotationally-symmetric
	// second-order ("bowl") oxide-gradient term in ppm of t_0 per
	// square micron of radial distance. The paper's model (Eq. 3) is
	// linear only (the default 0); the quadratic extension exposes the
	// classic weakness of ring-like placements: point reflection
	// cancels any linear gradient but leaves r^2 terms, which differ
	// between inner (LSB) and outer (MSB) rings.
	QuadGradientPPMPerUm2 float64
}

// Technology aggregates every process parameter the flow consumes.
type Technology struct {
	// Name identifies the parameter set.
	Name string
	// Layers are the routing metal layers, ordered bottom-up (M1 first).
	Layers []Layer
	// ViaROhm is the resistance of a single via cut between adjacent layers.
	ViaROhm float64
	// CouplingC0fFPerUm is the sidewall coupling capacitance per micron
	// at minimum spacing; coupling at spacing s falls off as
	// CouplingC0 * (SMin / s) (a standard 1/s fringe model).
	CouplingC0fFPerUm float64
	// SMinUm is the minimum wire spacing in microns.
	SMinUm float64
	// Unit is the MOM unit capacitor cell.
	Unit UnitCap
	// Mis carries the statistical mismatch model parameters.
	Mis Mismatch
	// VRef is the DAC reference voltage in volts (only ratios matter
	// for INL/DNL; kept for the transfer-function model).
	VRef float64
	// SwitchROhm is the on-resistance of the bottom-plate switch/driver
	// in series with each bit's charging network. It does not scale
	// with parallel routing, which is what bounds the parallel-wire
	// gain of Fig. 6(a) at large wire counts.
	SwitchROhm float64
	// TopPlateCfFPerUm is the capacitance to substrate per micron of
	// top-plate routing (the C^TS contributor). Top-plate wires run
	// over the array, so this is smaller than the general wire C.
	TopPlateCfFPerUm float64
}

// FinFET12 returns the synthetic 12nm-class FinFET technology used for
// all experiments. See the package comment for the calibration rationale.
func FinFET12() *Technology {
	return &Technology{
		Name: "finfet12-synthetic",
		Layers: []Layer{
			{Name: "M1", Dir: geom.Horizontal, ROhmPerUm: 28.0, CfFPerUm: 0.20, Pitch: 0.064},
			{Name: "M2", Dir: geom.Vertical, ROhmPerUm: 22.0, CfFPerUm: 0.19, Pitch: 0.064},
			{Name: "M3", Dir: geom.Horizontal, ROhmPerUm: 16.0, CfFPerUm: 0.18, Pitch: 0.080},
		},
		ViaROhm:           40.0,
		CouplingC0fFPerUm: 0.055,
		SMinUm:            0.064,
		Unit: UnitCap{
			W:           1.76,
			H:           1.76,
			CfF:         5.0,
			AbutLen:     0.20,
			BottomLayer: 0, // M1
			TopLayer:    1, // M2
		},
		Mis: Mismatch{
			Af2Pct:           0.85,
			AfRefFF:          1.0,
			RhoU:             0.9,
			LcUm:             1000.0, // 1 mm
			GradientPPMPerUm: 10.0,
		},
		VRef:       1.0,
		SwitchROhm: 15.0,
		// Top-plate wires run over the capacitor array, shielded from
		// the substrate by the bottom plates; the per-unit C^TS is two
		// orders below the channel-wire capacitance. Calibrated so an
		// 8-bit array extracts ~0.1 fF total C^TS as in the paper's
		// Table I.
		TopPlateCfFPerUm: 0.0002,
	}
}

// Bulk65 returns a synthetic 65nm-class bulk technology for contrast
// experiments: the paper notes that prior common-centroid techniques
// target older bulk nodes where per-unit wire and via resistances are
// far lower, so via-heavy layouts (chessboard) are not strongly
// penalized there. Relative to FinFET12: ~6x lower wire resistance,
// ~13x lower via resistance, larger pitches, bigger unit cells (lower
// MOM capacitance density), and stronger random mismatch (larger A_f).
func Bulk65() *Technology {
	return &Technology{
		Name: "bulk65-synthetic",
		Layers: []Layer{
			{Name: "M1", Dir: geom.Horizontal, ROhmPerUm: 4.5, CfFPerUm: 0.16, Pitch: 0.18},
			{Name: "M2", Dir: geom.Vertical, ROhmPerUm: 3.5, CfFPerUm: 0.15, Pitch: 0.20},
			{Name: "M3", Dir: geom.Horizontal, ROhmPerUm: 2.5, CfFPerUm: 0.15, Pitch: 0.20},
		},
		ViaROhm:           3.0,
		CouplingC0fFPerUm: 0.045,
		SMinUm:            0.18,
		Unit: UnitCap{
			W:           3.6,
			H:           3.6,
			CfF:         5.0,
			AbutLen:     0.40,
			BottomLayer: 0,
			TopLayer:    1,
		},
		Mis: Mismatch{
			Af2Pct:           1.5,
			AfRefFF:          1.0,
			RhoU:             0.9,
			LcUm:             1000.0,
			GradientPPMPerUm: 10.0,
		},
		VRef:             1.0,
		SwitchROhm:       40.0,
		TopPlateCfFPerUm: 0.0004,
	}
}

// Validate checks the internal consistency of a technology description.
func (t *Technology) Validate() error {
	if t == nil {
		return errors.New("tech: nil technology")
	}
	if len(t.Layers) < 2 {
		return fmt.Errorf("tech %q: need at least 2 routing layers, have %d", t.Name, len(t.Layers))
	}
	for i, l := range t.Layers {
		if l.ROhmPerUm <= 0 || l.CfFPerUm <= 0 || l.Pitch <= 0 {
			return fmt.Errorf("tech %q: layer %s has non-positive parameters", t.Name, l.Name)
		}
		if i > 0 && t.Layers[i-1].Dir == l.Dir {
			return fmt.Errorf("tech %q: adjacent layers %s and %s share direction %v (reserved-direction violation)",
				t.Name, t.Layers[i-1].Name, l.Name, l.Dir)
		}
	}
	if t.ViaROhm <= 0 {
		return fmt.Errorf("tech %q: via resistance must be positive", t.Name)
	}
	if t.Unit.W <= 0 || t.Unit.H <= 0 || t.Unit.CfF <= 0 {
		return fmt.Errorf("tech %q: unit capacitor has non-positive geometry", t.Name)
	}
	if t.Unit.BottomLayer < 0 || t.Unit.BottomLayer >= len(t.Layers) ||
		t.Unit.TopLayer < 0 || t.Unit.TopLayer >= len(t.Layers) {
		return fmt.Errorf("tech %q: unit capacitor terminal layers out of range", t.Name)
	}
	if t.Unit.BottomLayer == t.Unit.TopLayer {
		return fmt.Errorf("tech %q: bottom and top plates must terminate on different layers", t.Name)
	}
	if t.Mis.RhoU <= 0 || t.Mis.RhoU >= 1 {
		return fmt.Errorf("tech %q: rho_u must lie in (0,1), got %g", t.Name, t.Mis.RhoU)
	}
	if t.Mis.LcUm <= 0 {
		return fmt.Errorf("tech %q: correlation length must be positive", t.Name)
	}
	if t.SMinUm <= 0 || t.CouplingC0fFPerUm < 0 {
		return fmt.Errorf("tech %q: bad spacing/coupling parameters", t.Name)
	}
	if t.SwitchROhm < 0 {
		return fmt.Errorf("tech %q: switch resistance must be non-negative", t.Name)
	}
	return nil
}

// CouplingfFPerUm returns the per-micron sidewall coupling capacitance
// c_c(s) between two parallel wires at spacing s microns.
func (t *Technology) CouplingfFPerUm(s float64) float64 {
	if s <= 0 {
		s = t.SMinUm
	}
	return t.CouplingC0fFPerUm * (t.SMinUm / s)
}

// SigmaU returns the absolute standard deviation sigma_u (in fF) of one
// unit capacitor under the paper's random-variation model:
// sigma_u^2 = A_f^2/(W·H), normalized so the relative sigma of a 1 fF
// reference capacitor is Af2Pct percent.
func (t *Technology) SigmaU() float64 {
	rel := t.Mis.Af2Pct / 100 * math.Sqrt(t.Mis.AfRefFF/t.Unit.CfF)
	return rel * t.Unit.CfF
}

// rhoQuantInv quantizes squared distances for the correlation memo:
// d² is keyed in units of 1e-6 um² (1e-3 um in d near d = 1 um). With
// Lc in the hundreds of microns, the rho error this introduces is
// below 1e-10 relative — far under the covariance equivalence budget.
const rhoQuantInv = 1e6

// rhoMemoMaxEntries bounds the memo table. Grid layouts repeat a tiny
// set of pairwise distances (hundreds to a few thousand per layout),
// so the cap exists only to keep adversarial inputs from growing the
// table without bound; past it, values are computed directly.
const rhoMemoMaxEntries = 1 << 20

// RhoTable is the memoized spatial-correlation evaluator of one
// (RhoU, LcUm) parameter pair: rho(d) = exp(d · ln(rho_u)/Lc). The
// exp form replaces the seed's per-pair math.Pow, and the quantized
// squared-distance memo collapses the ~n²/2 evaluations of a
// covariance build onto the few hundred distinct pairwise distances a
// grid layout actually has. Safe for concurrent use; analyses running
// on the same *Technology share one table.
type RhoTable struct {
	rhoU, lcUm float64
	// coef is ln(rho_u)/Lc: rho(d) = exp(coef·d).
	coef float64
	// table maps quantized d² to rho; entries counts them (approximately
	// under concurrent insertion, used only to honor the size cap).
	table   sync.Map
	entries atomic.Int64
	// hits and misses count memo lookups for observability
	// (ccdac_variation_rho_memo_hits_total is derived from these).
	hits, misses atomic.Int64
}

// Rho returns rho_u^(d/Lc) for a separation of d microns.
func (rt *RhoTable) Rho(dUm float64) float64 { return rt.RhoSq(dUm * dUm) }

// RhoSq returns rho_u^(d/Lc) given the squared separation d² in square
// microns. Hot loops call this form: it skips the per-pair hypot/sqrt
// (the memo is keyed on quantized d²) as well as the pow.
func (rt *RhoTable) RhoSq(d2Um float64) float64 {
	q := d2Um * rhoQuantInv
	if !(q >= 0 && q < 1<<62) {
		// Out of quantization range (huge, negative, or NaN): compute
		// directly, mirroring the un-memoized formula.
		rt.misses.Add(1)
		return math.Exp(math.Sqrt(d2Um) * rt.coef)
	}
	key := int64(q + 0.5)
	if v, ok := rt.table.Load(key); ok {
		rt.hits.Add(1)
		return v.(float64)
	}
	rt.misses.Add(1)
	// Evaluate at the quantization point, so whichever goroutine
	// computes a key first stores the same value any other would.
	v := math.Exp(math.Sqrt(float64(key)/rhoQuantInv) * rt.coef)
	if rt.entries.Load() < rhoMemoMaxEntries {
		if _, loaded := rt.table.LoadOrStore(key, v); !loaded {
			rt.entries.Add(1)
		}
	}
	return v
}

// Stats reports the table's cumulative memo hits and misses.
func (rt *RhoTable) Stats() (hits, misses int64) {
	return rt.hits.Load(), rt.misses.Load()
}

// RhoLocal is a goroutine-local view of a RhoTable: a plain-map cache
// over the shared table for hot loops where even sync.Map's read-path
// overhead counts. Values are key-derived, so a local cache serves
// exactly what the shared table would — results do not depend on which
// goroutine (or how many) evaluated them. Not safe for concurrent use;
// create one per worker with Local.
type RhoLocal struct {
	rt      *RhoTable
	m       map[int64]float64
	calls   int64
	fetches int64
}

// Local returns a fresh goroutine-local view of the table.
func (rt *RhoTable) Local() *RhoLocal {
	return &RhoLocal{rt: rt, m: make(map[int64]float64, 256)}
}

// RhoSq returns rho_u^(d/Lc) given the squared separation d², serving
// from the local cache and falling back to the shared table.
func (l *RhoLocal) RhoSq(d2Um float64) float64 {
	l.calls++
	q := d2Um * rhoQuantInv
	if !(q >= 0 && q < 1<<62) {
		l.fetches++
		return l.rt.RhoSq(d2Um)
	}
	key := int64(q + 0.5)
	if v, ok := l.m[key]; ok {
		return v
	}
	l.fetches++
	v := l.rt.RhoSq(d2Um)
	l.m[key] = v
	return v
}

// Stats reports the view's evaluation count and how many of those had
// to reach past the local cache (to the shared table or a direct
// computation); calls - fetches is the local memo hit count.
func (l *RhoLocal) Stats() (calls, fetches int64) {
	return l.calls, l.fetches
}

// RhoTable returns the shared correlation table for the technology's
// current mismatch parameters, building it on first use. Tables are
// keyed by (RhoU, LcUm) in a process-wide cache, so technologies with
// equal parameters — including by-value copies made by parameter
// sweeps — share one table, and a parameter change simply selects a
// different one. Concurrent callers may race to build; one table wins,
// so every caller observes values consistent with its parameters.
func (t *Technology) RhoTable() *RhoTable {
	k := rhoKey{rhoU: t.Mis.RhoU, lcUm: t.Mis.LcUm}
	if v, ok := rhoTables.Load(k); ok {
		return v.(*RhoTable)
	}
	rt := &RhoTable{
		rhoU: k.rhoU,
		lcUm: k.lcUm,
		coef: math.Log(k.rhoU) / k.lcUm,
	}
	if rhoTableCount.Load() < rhoTableCacheMax {
		if v, loaded := rhoTables.LoadOrStore(k, rt); loaded {
			return v.(*RhoTable)
		}
		rhoTableCount.Add(1)
	}
	return rt
}

// rhoKey identifies one correlation table by the only parameters the
// table depends on.
type rhoKey struct{ rhoU, lcUm float64 }

// rhoTables caches correlation tables across Technology values, so
// Technology stays a plain copyable struct (parameter sweeps clone it
// by value) while concurrent analyses on technologies with the same
// mismatch parameters still share one memo table. Bounded: past
// rhoTableCacheMax distinct parameter pairs, tables are built uncached
// — still memoized within a run, since callers hold the *RhoTable for
// the whole analysis.
var (
	rhoTables     sync.Map // rhoKey -> *RhoTable
	rhoTableCount atomic.Int64
)

const rhoTableCacheMax = 64

// Rho returns the spatial correlation coefficient rho_u^(d/Lc) between
// two unit capacitors separated by d microns (Eqs. 4-5), via the
// memoized exp-form table (see RhoTable).
func (t *Technology) Rho(dUm float64) float64 {
	return t.RhoTable().Rho(dUm)
}

// HorizontalLayer returns the index of the lowest layer whose reserved
// direction is horizontal.
func (t *Technology) HorizontalLayer() int { return t.layerWithDir(geom.Horizontal) }

// VerticalLayer returns the index of the lowest layer whose reserved
// direction is vertical.
func (t *Technology) VerticalLayer() int { return t.layerWithDir(geom.Vertical) }

func (t *Technology) layerWithDir(d geom.Dir) int {
	for i, l := range t.Layers {
		if l.Dir == d {
			return i
		}
	}
	return -1
}

// WireR returns the resistance in ohms of len microns of minimum-width
// wire on layer li, divided across p parallel tracks.
func (t *Technology) WireR(li int, lenUm float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	return t.Layers[li].ROhmPerUm * lenUm / float64(p)
}

// WireC returns the ground capacitance in fF of len microns of wire on
// layer li, multiplied across p parallel tracks.
func (t *Technology) WireC(li int, lenUm float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	return t.Layers[li].CfFPerUm * lenUm * float64(p)
}

// ViaR returns the effective resistance in ohms of a via array with
// p-by-p redundant cuts (p parallel wires on each side allow a p^2 via
// array; paper Sec. IV-B4).
func (t *Technology) ViaR(p int) float64 {
	if p < 1 {
		p = 1
	}
	return t.ViaROhm / float64(p*p)
}
