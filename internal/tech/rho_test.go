package tech

import (
	"math"
	"testing"
)

// TestRhoMatchesPowReference checks the memoized exp-form evaluator
// against the paper's literal rho_u^(d/Lc) at grid-scale separations.
// The d² quantization (1e-6 um²) perturbs d by well under a nanometer
// at these distances, so the agreement bound is tight.
func TestRhoMatchesPowReference(t *testing.T) {
	tch := FinFET12()
	for _, d := range []float64{0, 0.064, 0.5, 1, 3.7, 12.5, 100, 1500} {
		got := tch.Rho(d)
		want := math.Pow(tch.Mis.RhoU, d/tch.Mis.LcUm)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Rho(%g) = %.15g, pow reference %.15g (|Δ|=%g)", d, got, want, math.Abs(got-want))
		}
	}
	if got := tch.Rho(0); got != 1 {
		t.Errorf("Rho(0) = %g, want exactly 1", got)
	}
}

// TestRhoTableSharedByParams: technologies with equal mismatch
// parameters — including by-value copies, as parameter sweeps make —
// share one memo table; changing (RhoU, LcUm) selects another.
func TestRhoTableSharedByParams(t *testing.T) {
	a, b := FinFET12(), FinFET12()
	if a.RhoTable() != b.RhoTable() {
		t.Error("equal-parameter technologies got distinct rho tables")
	}
	c := *a // the copy a sweep's ScaledTech makes
	if c.RhoTable() != a.RhoTable() {
		t.Error("by-value copy with unchanged parameters got a distinct table")
	}
	c.Mis.LcUm *= 2
	if c.RhoTable() == a.RhoTable() {
		t.Error("changed LcUm still mapped to the old table")
	}
	if got, want := c.Rho(100), math.Pow(c.Mis.RhoU, 100/c.Mis.LcUm); math.Abs(got-want) > 1e-9 {
		t.Errorf("scaled-Lc Rho(100) = %g, want %g", got, want)
	}
}

// TestRhoTableStats: a repeated distance is served from the memo.
func TestRhoTableStats(t *testing.T) {
	tch := FinFET12()
	tch.Mis.LcUm = 977.125 // unique parameters -> fresh table
	rt := tch.RhoTable()
	h0, m0 := rt.Stats()
	rt.Rho(1.25)
	rt.Rho(1.25)
	rt.Rho(1.25)
	h1, m1 := rt.Stats()
	if m1-m0 != 1 {
		t.Errorf("misses grew by %d, want 1 (first evaluation only)", m1-m0)
	}
	if h1-h0 != 2 {
		t.Errorf("hits grew by %d, want 2 (repeat evaluations)", h1-h0)
	}
}

// TestRhoLocalServesSharedValues: the goroutine-local view returns
// bitwise the values of the shared table and accounts its traffic.
func TestRhoLocalServesSharedValues(t *testing.T) {
	rt := FinFET12().RhoTable()
	local := rt.Local()
	ds := []float64{0.5, 0.5, 2.25, 0.5, 2.25}
	for _, d := range ds {
		if got, want := local.RhoSq(d*d), rt.Rho(d); got != want {
			t.Errorf("local RhoSq(%g²) = %.17g, shared %.17g", d, got, want)
		}
	}
	calls, fetches := local.Stats()
	if calls != int64(len(ds)) {
		t.Errorf("calls = %d, want %d", calls, len(ds))
	}
	if fetches != 2 {
		t.Errorf("fetches = %d, want 2 (two distinct distances)", fetches)
	}
}

// TestRhoSqPathologicalInputs: values outside the quantization range
// fall back to direct evaluation without panicking or poisoning the
// memo.
func TestRhoSqPathologicalInputs(t *testing.T) {
	rt := FinFET12().RhoTable()
	if got := rt.RhoSq(math.Inf(1)); got != 0 {
		t.Errorf("RhoSq(+Inf) = %g, want 0", got)
	}
	if got := rt.RhoSq(math.NaN()); !math.IsNaN(got) {
		t.Errorf("RhoSq(NaN) = %g, want NaN", got)
	}
	if got := rt.RhoSq(1e70); got != 0 {
		t.Errorf("RhoSq(1e70) = %g, want underflow to 0", got)
	}
	// And a sane value still works afterwards.
	if got, want := rt.Rho(1), math.Pow(0.9, 1.0/1000.0); math.Abs(got-want) > 1e-9 {
		t.Errorf("Rho(1) after pathological inputs = %g, want %g", got, want)
	}
}
