package tech

import (
	"math"
	"testing"
	"testing/quick"

	"ccdac/internal/geom"
)

func TestFinFET12Validates(t *testing.T) {
	if err := FinFET12().Validate(); err != nil {
		t.Fatalf("default technology invalid: %v", err)
	}
}

func TestValidateRejectsNil(t *testing.T) {
	var tt *Technology
	if err := tt.Validate(); err == nil {
		t.Fatal("nil technology must not validate")
	}
}

func TestValidateRejectsBadLayerCount(t *testing.T) {
	tt := FinFET12()
	tt.Layers = tt.Layers[:1]
	if err := tt.Validate(); err == nil {
		t.Fatal("single-layer technology must not validate")
	}
}

func TestValidateRejectsSameDirectionAdjacentLayers(t *testing.T) {
	tt := FinFET12()
	tt.Layers[1].Dir = geom.Horizontal // same as M1
	if err := tt.Validate(); err == nil {
		t.Fatal("adjacent same-direction layers must not validate")
	}
}

func TestValidateRejectsSamePlateLayers(t *testing.T) {
	tt := FinFET12()
	tt.Unit.TopLayer = tt.Unit.BottomLayer
	if err := tt.Validate(); err == nil {
		t.Fatal("identical plate layers must not validate")
	}
}

func TestValidateRejectsBadRho(t *testing.T) {
	for _, rho := range []float64{0, 1, -0.5, 1.5} {
		tt := FinFET12()
		tt.Mis.RhoU = rho
		if err := tt.Validate(); err == nil {
			t.Errorf("rho_u = %g must not validate", rho)
		}
	}
}

func TestValidateRejectsNonPositiveVia(t *testing.T) {
	tt := FinFET12()
	tt.ViaROhm = 0
	if err := tt.Validate(); err == nil {
		t.Fatal("zero via resistance must not validate")
	}
}

func TestCouplingFalloff(t *testing.T) {
	tt := FinFET12()
	atMin := tt.CouplingfFPerUm(tt.SMinUm)
	if math.Abs(atMin-tt.CouplingC0fFPerUm) > 1e-15 {
		t.Errorf("coupling at s_min = %g, want %g", atMin, tt.CouplingC0fFPerUm)
	}
	at2x := tt.CouplingfFPerUm(2 * tt.SMinUm)
	if math.Abs(at2x-tt.CouplingC0fFPerUm/2) > 1e-15 {
		t.Errorf("coupling at 2*s_min = %g, want %g", at2x, tt.CouplingC0fFPerUm/2)
	}
	// Non-positive spacing clamps to minimum spacing.
	if got := tt.CouplingfFPerUm(0); got != atMin {
		t.Errorf("coupling at s=0 = %g, want clamp to %g", got, atMin)
	}
}

func TestSigmaUMatchesPaperModel(t *testing.T) {
	tt := FinFET12()
	// A_f^2 = 0.85% x 1 fF and C_u = 5 fF: relative sigma = 0.85%/sqrt(5).
	wantRel := 0.0085 / math.Sqrt(5)
	gotRel := tt.SigmaU() / tt.Unit.CfF
	if math.Abs(gotRel-wantRel) > 1e-12 {
		t.Errorf("relative sigma_u = %g, want %g", gotRel, wantRel)
	}
}

func TestRhoProperties(t *testing.T) {
	tt := FinFET12()
	if got := tt.Rho(0); got != 1 {
		t.Errorf("rho(0) = %g, want 1", got)
	}
	if got := tt.Rho(tt.Mis.LcUm); math.Abs(got-tt.Mis.RhoU) > 1e-12 {
		t.Errorf("rho(Lc) = %g, want rho_u = %g", got, tt.Mis.RhoU)
	}
	// Monotone decreasing in distance.
	f := func(a, b uint16) bool {
		d1, d2 := float64(a), float64(b)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return tt.Rho(d1) >= tt.Rho(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayerDirectionLookups(t *testing.T) {
	tt := FinFET12()
	h, v := tt.HorizontalLayer(), tt.VerticalLayer()
	if h != 0 {
		t.Errorf("horizontal layer = %d, want 0 (M1)", h)
	}
	if v != 1 {
		t.Errorf("vertical layer = %d, want 1 (M2)", v)
	}
	if tt.Layers[h].Dir != geom.Horizontal || tt.Layers[v].Dir != geom.Vertical {
		t.Error("direction lookup returned wrong layer")
	}
}

func TestParallelWireScaling(t *testing.T) {
	tt := FinFET12()
	const length = 10.0
	r1 := tt.WireR(0, length, 1)
	r4 := tt.WireR(0, length, 4)
	if math.Abs(r1/r4-4) > 1e-12 {
		t.Errorf("4 parallel wires must quarter resistance: r1/r4 = %g", r1/r4)
	}
	c1 := tt.WireC(0, length, 1)
	c4 := tt.WireC(0, length, 4)
	if math.Abs(c4/c1-4) > 1e-12 {
		t.Errorf("4 parallel wires must quadruple capacitance: c4/c1 = %g", c4/c1)
	}
	// Via arrays scale as p^2 (paper Sec. IV-B4).
	if math.Abs(tt.ViaR(1)/tt.ViaR(2)-4) > 1e-12 {
		t.Errorf("2 parallel wires must quarter via resistance")
	}
	// p < 1 clamps to 1.
	if tt.WireR(0, length, 0) != r1 || tt.ViaR(0) != tt.ViaR(1) {
		t.Error("non-positive p must clamp to 1")
	}
}

func TestWireRCPositive(t *testing.T) {
	tt := FinFET12()
	f := func(lenRaw uint8, pRaw uint8) bool {
		l := float64(lenRaw) * 0.1
		p := int(pRaw%8) + 1
		for li := range tt.Layers {
			if tt.WireR(li, l, p) < 0 || tt.WireC(li, l, p) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBulk65Validates(t *testing.T) {
	if err := Bulk65().Validate(); err != nil {
		t.Fatalf("bulk technology invalid: %v", err)
	}
}

func TestBulk65ContrastsWithFinFET(t *testing.T) {
	fin, bulk := FinFET12(), Bulk65()
	// The node contrast the paper builds on: FinFET wires and vias are
	// far more resistive.
	if fin.Layers[0].ROhmPerUm < 4*bulk.Layers[0].ROhmPerUm {
		t.Error("FinFET M1 not much more resistive than bulk")
	}
	if fin.ViaROhm < 10*bulk.ViaROhm {
		t.Error("FinFET vias not much more resistive than bulk")
	}
	// Bulk MOM caps are physically larger for the same capacitance.
	if bulk.Unit.W <= fin.Unit.W {
		t.Error("bulk unit cell not larger")
	}
}
