// Package groups implements connected-capacitor-group formation
// (paper Sec. IV-B2): for each capacitor C_i the unit cells form a
// graph with edges between 4-adjacent same-capacitor cells; a breadth-
// first search finds its connected components, and the BFS tree edges
// become the via-free branch wires that join bottom plates of
// neighboring unit capacitors.
package groups

import (
	"fmt"
	"sort"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
)

// Edge is a branch-wire connection between two 4-adjacent unit cells
// of the same capacitor.
type Edge struct {
	A, B geom.Cell
}

// Group is one connected component of a capacitor's unit cells.
type Group struct {
	// Bit is the capacitor index C_bit.
	Bit int
	// Cells lists the member cells in BFS discovery order; Cells[0] is
	// the bottom-left-most cell (the deterministic BFS root).
	Cells []geom.Cell
	// Edges are the BFS tree edges: the branch wires that connect the
	// group's bottom plates without vias.
	Edges []Edge
}

// Size returns the number of unit cells in the group.
func (g *Group) Size() int { return len(g.Cells) }

// ColSpan returns the inclusive column range [lo, hi] covered by the group.
func (g *Group) ColSpan() (lo, hi int) {
	lo, hi = g.Cells[0].Col, g.Cells[0].Col
	for _, c := range g.Cells[1:] {
		if c.Col < lo {
			lo = c.Col
		}
		if c.Col > hi {
			hi = c.Col
		}
	}
	return lo, hi
}

// RowSpan returns the inclusive row range [lo, hi] covered by the group.
func (g *Group) RowSpan() (lo, hi int) {
	lo, hi = g.Cells[0].Row, g.Cells[0].Row
	for _, c := range g.Cells[1:] {
		if c.Row < lo {
			lo = c.Row
		}
		if c.Row > hi {
			hi = c.Row
		}
	}
	return lo, hi
}

// TouchesBottom reports whether the group contains a cell in row 0,
// adjacent to the driver cluster below the array.
func (g *Group) TouchesBottom() bool {
	lo, _ := g.RowSpan()
	return lo == 0
}

// CellsInCol returns the group's cells in the given column, bottom-up.
func (g *Group) CellsInCol(col int) []geom.Cell {
	var out []geom.Cell
	for _, c := range g.Cells {
		if c.Col == col {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Row < out[j].Row })
	return out
}

// BottomCell returns the group's lowest cell (ties broken by lowest
// column), the natural tap point toward the drivers at the array bottom.
func (g *Group) BottomCell() geom.Cell {
	best := g.Cells[0]
	for _, c := range g.Cells[1:] {
		if c.Row < best.Row || (c.Row == best.Row && c.Col < best.Col) {
			best = c
		}
	}
	return best
}

// ClosestCells returns the pair (u in g, v in o) minimizing Manhattan
// distance; ties are broken toward the bottom of the array and then
// toward the left, matching the router's tie-breaking rule (Algorithm 1
// line 16: "if tied, choose a unit cell pair closest to bottom").
func (g *Group) ClosestCells(o *Group) (u, v geom.Cell) {
	bestDist := int(^uint(0) >> 1)
	bestSum := bestDist
	for _, a := range g.Cells {
		for _, b := range o.Cells {
			d := a.Manhattan(b)
			sum := a.Row + b.Row
			if d < bestDist || (d == bestDist && sum < bestSum) ||
				(d == bestDist && sum == bestSum && a.Col+b.Col < u.Col+v.Col) {
				bestDist, bestSum = d, sum
				u, v = a, b
			}
		}
	}
	return u, v
}

// Find computes the connected capacitor groups of every capacitor in
// the placement, indexed by capacitor: result[k] lists the groups of
// C_k ordered by their bottom-left-most cell. Dummy cells form no
// groups (they are tied to ground outside the signal routing).
func Find(m *ccmatrix.Matrix) ([][]*Group, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("groups: %w", err)
	}
	visited := make([]bool, m.Rows*m.Cols)
	out := make([][]*Group, m.Bits+1)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			start := geom.Cell{Row: r, Col: c}
			idx := r*m.Cols + c
			bit := m.At(start)
			if visited[idx] || bit < 0 {
				continue
			}
			g := &Group{Bit: bit}
			queue := []geom.Cell{start}
			visited[idx] = true
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				g.Cells = append(g.Cells, cur)
				for _, n := range cur.Neighbors4(m.Rows, m.Cols) {
					ni := n.Row*m.Cols + n.Col
					if visited[ni] || m.At(n) != bit {
						continue
					}
					visited[ni] = true
					g.Edges = append(g.Edges, Edge{A: cur, B: n})
					queue = append(queue, n)
				}
			}
			out[bit] = append(out[bit], g)
		}
	}
	return out, nil
}

// TotalGroups counts the groups across all capacitors.
func TotalGroups(gs [][]*Group) int {
	n := 0
	for _, list := range gs {
		n += len(list)
	}
	return n
}
