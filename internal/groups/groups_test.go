package groups

import (
	"testing"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
	"ccdac/internal/place"
)

func TestFindOnSpiral(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Find(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 7 {
		t.Fatalf("capacitor lists = %d, want 7", len(gs))
	}
	counts := ccmatrix.UnitCounts(6)
	for k, list := range gs {
		total := 0
		for _, g := range list {
			total += g.Size()
			if g.Bit != k {
				t.Errorf("C_%d group carries bit %d", k, g.Bit)
			}
			// Tree invariant: |edges| = |cells| - 1.
			if len(g.Edges) != g.Size()-1 {
				t.Errorf("C_%d group: %d edges for %d cells", k, len(g.Edges), g.Size())
			}
		}
		if total != counts[k] {
			t.Errorf("C_%d groups cover %d cells, want %d", k, total, counts[k])
		}
	}
	// Spiral builds few, large groups: far fewer groups than cells.
	if n := TotalGroups(gs); n > 20 {
		t.Errorf("spiral 6-bit produced %d groups, expected few", n)
	}
}

func TestFindOnChessboard(t *testing.T) {
	// Chessboard: (nearly) every cell is its own group (paper:
	// "Chessboard placements have no bottom-plate connected capacitor
	// groups").
	m, err := place.NewChessboard(6)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Find(m)
	if err != nil {
		t.Fatal(err)
	}
	singles := 0
	total := 0
	for _, list := range gs {
		for _, g := range list {
			total++
			if g.Size() == 1 {
				singles++
			}
		}
	}
	if total < 60 {
		t.Errorf("chessboard 6-bit: only %d groups; want close to 64", total)
	}
	if singles < total-4 {
		t.Errorf("chessboard groups: %d singles of %d", singles, total)
	}
}

func TestFindEdgesAreAdjacent(t *testing.T) {
	m, err := place.NewBlockChessboard(8, place.BCParams{CoreBits: 4, BlockCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Find(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, list := range gs {
		for _, g := range list {
			for _, e := range g.Edges {
				if e.A.Manhattan(e.B) != 1 {
					t.Fatalf("branch edge %v-%v not 4-adjacent", e.A, e.B)
				}
				if m.At(e.A) != g.Bit || m.At(e.B) != g.Bit {
					t.Fatalf("branch edge %v-%v leaves capacitor C_%d", e.A, e.B, g.Bit)
				}
			}
		}
	}
}

func TestFindRejectsIncompletePlacement(t *testing.T) {
	m := ccmatrix.New(4, 4, 4, 1)
	if _, err := Find(m); err == nil {
		t.Fatal("unvalidated placement must be rejected")
	}
}

func TestDummyCellsFormNoGroups(t *testing.T) {
	m, err := place.NewSpiral(7) // 12x11 with 4 dummies
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Find(m)
	if err != nil {
		t.Fatal(err)
	}
	cellsInGroups := 0
	for _, list := range gs {
		for _, g := range list {
			cellsInGroups += g.Size()
		}
	}
	if cellsInGroups != ccmatrix.TotalUnits(7) {
		t.Errorf("groups cover %d cells, want %d (dummies excluded)",
			cellsInGroups, ccmatrix.TotalUnits(7))
	}
}

func buildGroup(cells ...geom.Cell) *Group {
	return &Group{Bit: 2, Cells: cells}
}

func TestSpansAndBottom(t *testing.T) {
	g := buildGroup(geom.Cell{Row: 3, Col: 2}, geom.Cell{Row: 1, Col: 4}, geom.Cell{Row: 1, Col: 3})
	if lo, hi := g.ColSpan(); lo != 2 || hi != 4 {
		t.Errorf("ColSpan = [%d,%d], want [2,4]", lo, hi)
	}
	if lo, hi := g.RowSpan(); lo != 1 || hi != 3 {
		t.Errorf("RowSpan = [%d,%d], want [1,3]", lo, hi)
	}
	if g.TouchesBottom() {
		t.Error("group without row-0 cells reports TouchesBottom")
	}
	if got := g.BottomCell(); got != (geom.Cell{Row: 1, Col: 3}) {
		t.Errorf("BottomCell = %v, want (1,3)", got)
	}
	g2 := buildGroup(geom.Cell{Row: 0, Col: 7})
	if !g2.TouchesBottom() {
		t.Error("row-0 group must report TouchesBottom")
	}
}

func TestCellsInCol(t *testing.T) {
	g := buildGroup(
		geom.Cell{Row: 5, Col: 2},
		geom.Cell{Row: 1, Col: 2},
		geom.Cell{Row: 3, Col: 2},
		geom.Cell{Row: 2, Col: 9},
	)
	got := g.CellsInCol(2)
	if len(got) != 3 || got[0].Row != 1 || got[2].Row != 5 {
		t.Errorf("CellsInCol = %v", got)
	}
	if len(g.CellsInCol(5)) != 0 {
		t.Error("empty column must return no cells")
	}
}

func TestClosestCellsTieBreaksTowardBottom(t *testing.T) {
	// Two pairs at equal distance: (row 5) and (row 0); must pick row 0.
	a := buildGroup(geom.Cell{Row: 5, Col: 0}, geom.Cell{Row: 0, Col: 0})
	b := buildGroup(geom.Cell{Row: 5, Col: 2}, geom.Cell{Row: 0, Col: 2})
	u, v := a.ClosestCells(b)
	if u.Row != 0 || v.Row != 0 {
		t.Errorf("tie-break chose (%v,%v), want the bottom pair", u, v)
	}
}

func TestClosestCellsMinimizesDistance(t *testing.T) {
	a := buildGroup(geom.Cell{Row: 9, Col: 0}, geom.Cell{Row: 4, Col: 4})
	b := buildGroup(geom.Cell{Row: 4, Col: 5}, geom.Cell{Row: 0, Col: 9})
	u, v := a.ClosestCells(b)
	if u != (geom.Cell{Row: 4, Col: 4}) || v != (geom.Cell{Row: 4, Col: 5}) {
		t.Errorf("ClosestCells = (%v,%v)", u, v)
	}
}

func TestGroupsDeterministic(t *testing.T) {
	m, err := place.NewSpiral(8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Find(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Find(m)
	if err != nil {
		t.Fatal(err)
	}
	if TotalGroups(a) != TotalGroups(b) {
		t.Fatal("group formation not deterministic")
	}
	for k := range a {
		for i := range a[k] {
			if a[k][i].Cells[0] != b[k][i].Cells[0] || a[k][i].Size() != b[k][i].Size() {
				t.Fatalf("C_%d group %d differs between runs", k, i)
			}
		}
	}
}
