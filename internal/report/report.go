// Package report renders a self-contained HTML design report for a
// generated capacitor array: the routed layout and placement views
// (inline SVG), the electrical and performance metrics of the paper's
// Tables I/II, the per-bit extraction detail, the connected-group
// inventory, and the DRC verdict — the artifact a designer would
// attach to a review.
package report

import (
	"fmt"
	"html/template"
	"io"
	"time"

	"ccdac/internal/core"
	"ccdac/internal/drc"
	"ccdac/internal/extract"
	"ccdac/internal/render"
)

// BitRow is the per-capacitor detail table row.
type BitRow struct {
	Bit      int
	Cells    int
	Groups   int
	Parallel int
	TauPS    string
	RWireOhm string
	RViaOhm  string
	CWirefF  string
}

// Data is the template payload.
type Data struct {
	Title        string
	GeneratedAt  string
	Style        string
	Bits         int
	AreaUm2      string
	F3dBMHz      string
	CriticalBit  int
	DNL, INL     string
	CTSfF        string
	CWirefF      string
	CBBfF        string
	ViaCuts      int
	WirelengthUm string
	PlaceMs      string
	RouteMs      string
	BitRows      []BitRow
	DRCClean     bool
	DRCList      []string
	LayoutSVG    template.HTML
	PlacementSVG template.HTML
	GroupsText   string
}

const tmplText = `<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; max-width: 70em; }
h1, h2 { color: #1a3c6e; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #bbb; padding: 0.3em 0.8em; text-align: right; }
th { background: #eef2f8; }
.ok { color: #0a7a2f; font-weight: bold; }
.bad { color: #b01010; font-weight: bold; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto; }
.figs { display: flex; flex-wrap: wrap; gap: 2em; }
</style></head><body>
<h1>{{.Title}}</h1>
<p>{{.Bits}}-bit binary-weighted capacitor array, {{.Style}} placement.
Generated {{.GeneratedAt}}.</p>

<h2>Performance (Table II metrics)</h2>
<table>
<tr><th>Area (µm²)</th><th>f<sub>3dB</sub> (MHz)</th><th>critical bit</th>
<th>|DNL| (LSB)</th><th>|INL| (LSB)</th><th>place+route (ms)</th></tr>
<tr><td>{{.AreaUm2}}</td><td>{{.F3dBMHz}}</td><td>C<sub>{{.CriticalBit}}</sub></td>
<td>{{.DNL}}</td><td>{{.INL}}</td><td>{{.PlaceMs}} + {{.RouteMs}}</td></tr>
</table>

<h2>Electrical (Table I metrics)</h2>
<table>
<tr><th>ΣC<sup>TS</sup> (fF)</th><th>ΣC<sup>wire</sup> (fF)</th><th>ΣC<sup>BB</sup> (fF)</th>
<th>ΣN<sub>V</sub></th><th>ΣL (µm)</th></tr>
<tr><td>{{.CTSfF}}</td><td>{{.CWirefF}}</td><td>{{.CBBfF}}</td>
<td>{{.ViaCuts}}</td><td>{{.WirelengthUm}}</td></tr>
</table>

<h2>Design rules</h2>
{{if .DRCClean}}<p class="ok">DRC clean.</p>{{else}}
<p class="bad">{{len .DRCList}} DRC violations:</p>
<ul>{{range .DRCList}}<li>{{.}}</li>{{end}}</ul>{{end}}

<h2>Per-capacitor extraction</h2>
<table>
<tr><th>bit</th><th>cells</th><th>groups</th><th>parallel</th>
<th>τ (ps)</th><th>ΣR<sub>wire</sub> (Ω)</th><th>ΣR<sub>via</sub> (Ω)</th><th>C<sub>wire</sub> (fF)</th></tr>
{{range .BitRows}}<tr><td>C<sub>{{.Bit}}</sub></td><td>{{.Cells}}</td><td>{{.Groups}}</td>
<td>{{.Parallel}}</td><td>{{.TauPS}}</td><td>{{.RWireOhm}}</td><td>{{.RViaOhm}}</td><td>{{.CWirefF}}</td></tr>
{{end}}</table>

<h2>Connected capacitor groups</h2>
<pre>{{.GroupsText}}</pre>

<h2>Views</h2>
<div class="figs">
<div>{{.PlacementSVG}}</div>
<div>{{.LayoutSVG}}</div>
</div>
</body></html>
`

var tmpl = template.Must(template.New("report").Parse(tmplText))

// Write renders the HTML report of a flow result.
func Write(w io.Writer, r *core.Result) error {
	title := fmt.Sprintf("ccdac report: %d-bit %s array", r.Placement.Bits, r.Config.Style)
	d := Data{
		Title:        title,
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		Style:        r.Config.Style.String(),
		Bits:         r.Placement.Bits,
		AreaUm2:      fmt.Sprintf("%.0f", r.Electrical.AreaUm2),
		F3dBMHz:      fmt.Sprintf("%.1f", r.F3dBHz/1e6),
		CriticalBit:  r.CriticalBit,
		CTSfF:        fmt.Sprintf("%.3f", r.Electrical.CTSfF),
		CWirefF:      fmt.Sprintf("%.1f", r.Electrical.CWirefF),
		CBBfF:        fmt.Sprintf("%.1f", r.Electrical.CBBfF),
		ViaCuts:      r.Electrical.ViaCuts,
		WirelengthUm: fmt.Sprintf("%.0f", r.Electrical.WirelengthUm),
		PlaceMs:      fmt.Sprintf("%.2f", r.PlaceTime.Seconds()*1000),
		RouteMs:      fmt.Sprintf("%.2f", r.RouteTime.Seconds()*1000),
		DNL:          "—",
		INL:          "—",
		GroupsText:   render.GroupsSummary(r.Layout),
		PlacementSVG: template.HTML(render.SVGPlacement(r.Placement, "placement")),
		LayoutSVG:    template.HTML(render.SVGLayout(r.Layout, "routed layout")),
	}
	if r.NL != nil {
		d.DNL = fmt.Sprintf("%.4f", r.NL.MaxAbsDNL)
		d.INL = fmt.Sprintf("%.4f", r.NL.MaxAbsINL)
	}
	for bit, bn := range r.Electrical.Bits {
		d.BitRows = append(d.BitRows, bitRow(r, bit, bn))
	}
	chk := drc.Check(r.Layout)
	d.DRCClean = chk.Clean()
	for _, v := range chk.Violations {
		d.DRCList = append(d.DRCList, v.String())
	}
	return tmpl.Execute(w, d)
}

func bitRow(r *core.Result, bit int, bn extract.BitNet) BitRow {
	return BitRow{
		Bit:      bit,
		Cells:    len(bn.CellNodes),
		Groups:   len(r.Layout.Groups[bit]),
		Parallel: r.Par[bit],
		TauPS:    fmt.Sprintf("%.2f", bn.TauSec*1e12),
		RWireOhm: fmt.Sprintf("%.0f", bn.RWireOhm),
		RViaOhm:  fmt.Sprintf("%.0f", bn.RViaOhm),
		CWirefF:  fmt.Sprintf("%.2f", bn.CWirefF),
	}
}
