package report

import (
	"strings"
	"testing"

	"ccdac/internal/core"
	"ccdac/internal/place"
)

func TestWriteReport(t *testing.T) {
	r, err := core.Run(core.Config{Bits: 6, Style: place.Spiral, MaxParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, r); err != nil {
		t.Fatal(err)
	}
	html := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"6-bit spiral array",
		"DRC clean",
		"<svg",          // inline views
		"C<sub>6</sub>", // per-bit rows
		"Connected capacitor groups",
		"f<sub>3dB</sub>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Both views present.
	if strings.Count(html, "<svg") != 2 {
		t.Errorf("expected 2 inline SVGs, found %d", strings.Count(html, "<svg"))
	}
	// Metrics filled in (no placeholder dashes when NL ran).
	if strings.Contains(html, "<td>—</td>") {
		t.Error("NL metrics missing from report")
	}
}

func TestWriteReportSkipNL(t *testing.T) {
	r, err := core.Run(core.Config{Bits: 6, Style: place.Chessboard, SkipNL: true})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "—") {
		t.Error("skipped NL must render placeholders")
	}
}
