// Package dacmodel evaluates the circuit-level metrics of Sec. III:
// the charge-scaling DAC transfer function under capacitor
// nonidealities (Eq. 9), the 3σ mismatch-induced INL/DNL (Eqs. 7, 8,
// 10-14), and a Monte-Carlo variant used to cross-check the 3σ model.
package dacmodel

import (
	"context"
	"fmt"
	"math"

	"ccdac/internal/par"
	"ccdac/internal/variation"
)

// Parasitics carries the routing parasitics entering Eqs. 10-11.
// With the paper's nonoverlapped routing, the top-to-bottom-plate
// terms are negligible (Sec. IV-B1) and default to zero.
type Parasitics struct {
	// CTSfF is the total top-plate-to-substrate capacitance C^TS.
	CTSfF float64
	// CTBOnfF and CTBOfffF are the top-to-bottom-plate parasitics of
	// the switched-on and switched-off capacitor groups.
	CTBOnfF, CTBOfffF float64
}

// Result summarizes an INL/DNL sweep over all input codes.
type Result struct {
	// MaxAbsDNL and MaxAbsINL are the paper's |DNL| and |INL| in LSB.
	MaxAbsDNL, MaxAbsINL float64
	// WorstDNLCode and WorstINLCode are the codes attaining them.
	WorstDNLCode, WorstINLCode int
	// ThetaRad is the gradient angle of the underlying analysis.
	ThetaRad float64
}

// IdealOut returns the ideal ratiometric output V_OUT/V_REF of Eq. 2
// for the given input code.
func IdealOut(bits, code int) float64 {
	return float64(code) / float64(int(1)<<bits)
}

// bitsOf expands code i into the switch states D_1..D_N.
func bitsOf(bits, code int) []bool {
	d := make([]bool, bits+1)
	for k := 1; k <= bits; k++ {
		d[k] = code&(1<<(k-1)) != 0
	}
	return d
}

// Nonlinearity runs the paper's 3σ INL/DNL analysis over all 2^N codes
// for one variation analysis (one gradient angle).
//
// The systematic (gradient) part perturbs Eq. 9 deterministically:
// DeltaC_ON = sum D_k DC_k^sys + C^TB_ON (Eq. 10) and DeltaC_T =
// sum DC_k^sys + C^TB_ON + C^TB_OFF + C^TS (Eq. 11). For the random
// part, the statistical summations of Eqs. 13-14 enter the *ratio*
// R(i) = (C_ON+ΔC_ON)/(C_T+ΔC_T); because ΔC_ON and ΔC_T are strongly
// correlated (C_ON ⊂ C_T), the 3σ worst case must be taken on the
// first-order ratio error
//
//	L(i) = (ΔC_ON(i) − R0(i)·ΔC_T) / C_T = Σ_k w_k(i) ΔC_k,
//	w_k(i) = (D_k(i) − R0(i))/C_T (k ≥ 1), w_0(i) = −R0(i)/C_T,
//
// giving Var L(i) = wᵀ Cov w with Cov from Eq. 6 — the same worst-case
// treatment as the chessboard paper [7] this work compares against.
// DNL uses the 3σ of L(i) − L(i−1), which correctly cancels the shared
// variation of adjacent codes.
func Nonlinearity(a *variation.Analysis, par Parasitics, vref float64) (*Result, error) {
	if vref <= 0 {
		return nil, fmt.Errorf("dacmodel: vref must be positive, got %g", vref)
	}
	n := a.Bits
	codes := 1 << n

	// Nominal capacitances from unit counts (chessboard doubling is
	// already folded into Counts; ratios are unchanged).
	cNom := make([]float64, n+1)
	cT := 0.0
	for k := 0; k <= n; k++ {
		cNom[k] = float64(a.Counts[k]) * a.CuFF
		cT += cNom[k]
	}
	sysT := 0.0
	for k := 0; k <= n; k++ {
		sysT += a.DCSys(k)
	}
	parsT := par.CTBOnfF + par.CTBOfffF + par.CTSfF

	lsb := 1.0 / float64(codes) // LSB in V/V_REF ratio units
	quadForm := func(w []float64) float64 {
		v := 0.0
		for j := 0; j <= n; j++ {
			if w[j] == 0 {
				continue
			}
			for k := 0; k <= n; k++ {
				v += w[j] * w[k] * a.Cov.At(j, k)
			}
		}
		return math.Max(0, v)
	}

	res := &Result{ThetaRad: a.ThetaRad}
	prevSys := 0.0
	prevW := make([]float64, n+1)
	diff := make([]float64, n+1)
	for i := 0; i < codes; i++ {
		d := bitsOf(n, i)
		cOn, sysOn := 0.0, 0.0
		for k := 1; k <= n; k++ {
			if d[k] {
				cOn += cNom[k]
				sysOn += a.DCSys(k)
			}
		}
		r0 := cOn / cT
		rSys := (cOn + sysOn + par.CTBOnfF) / (cT + sysT + parsT)

		w := make([]float64, n+1)
		w[0] = -r0 / cT
		for k := 1; k <= n; k++ {
			dk := 0.0
			if d[k] {
				dk = 1
			}
			w[k] = (dk - r0) / cT
		}
		sigma := math.Sqrt(quadForm(w))

		if i > 0 {
			inl := (math.Abs(rSys-IdealOut(n, i)) + 3*sigma) / lsb
			if inl > res.MaxAbsINL {
				res.MaxAbsINL, res.WorstINLCode = inl, i
			}
			for k := 0; k <= n; k++ {
				diff[k] = w[k] - prevW[k]
			}
			sigmaD := math.Sqrt(quadForm(diff))
			dnl := (math.Abs(rSys-prevSys-lsb) + 3*sigmaD) / lsb
			if dnl > res.MaxAbsDNL {
				res.MaxAbsDNL, res.WorstDNLCode = dnl, i
			}
		}
		prevSys = rSys
		copy(prevW, w)
	}
	return res, nil
}

// WorstOverTheta runs Nonlinearity for every analysis in the sweep and
// returns the worst-case result (max |INL|, with its |DNL| companion
// taken from the same worst angle by |INL|+|DNL|).
func WorstOverTheta(as []*variation.Analysis, parasitics Parasitics, vref float64) (*Result, error) {
	return WorstOverThetaContext(context.Background(), as, parasitics, vref)
}

// WorstOverThetaContext is WorstOverTheta under a context: the
// per-angle code sweeps run on the context's worker budget and
// cancellation is checked before each angle. The worst-case reduction
// happens serially in angle order afterwards, so the selected angle —
// including the first-wins tie break — is identical at any worker
// count.
func WorstOverThetaContext(ctx context.Context, as []*variation.Analysis, parasitics Parasitics, vref float64) (*Result, error) {
	if len(as) == 0 {
		return nil, fmt.Errorf("dacmodel: empty theta sweep")
	}
	rs := make([]*Result, len(as))
	if err := par.ForN(par.Workers(ctx), len(as), func(i int) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("dacmodel: theta step %d: %w", i, cerr)
		}
		r, err := Nonlinearity(as[i], parasitics, vref)
		if err != nil {
			return err
		}
		rs[i] = r
		return nil
	}); err != nil {
		return nil, err
	}
	worst := rs[0]
	for _, r := range rs[1:] {
		if r.MaxAbsINL+r.MaxAbsDNL > worst.MaxAbsINL+worst.MaxAbsDNL {
			worst = r
		}
	}
	return worst, nil
}

// MonteCarloNL evaluates INL/DNL for sampled capacitor shifts (from
// variation.MonteCarlo) and returns the per-sample results. Unlike the
// 3σ model it perturbs each sample deterministically (no 3σ margin).
// INL is raw (referenced to the ideal transfer), as in the paper.
func MonteCarloNL(a *variation.Analysis, shifts [][]float64, par Parasitics, vref float64) ([]Result, error) {
	return monteCarloNL(a, shifts, par, vref, false)
}

// MonteCarloNLEndpoint is MonteCarloNL with endpoint-corrected INL:
// each sample's transfer is referenced to the straight line through
// its own first and last codes, removing gain and offset errors the
// way production ADC/DAC linearity is measured. This exposes the
// placement-dependent mismatch that a shared C^TS gain error would
// otherwise mask.
func MonteCarloNLEndpoint(a *variation.Analysis, shifts [][]float64, par Parasitics, vref float64) ([]Result, error) {
	return monteCarloNL(a, shifts, par, vref, true)
}

func monteCarloNL(a *variation.Analysis, shifts [][]float64, par Parasitics, vref float64, endpoint bool) ([]Result, error) {
	if vref <= 0 {
		return nil, fmt.Errorf("dacmodel: vref must be positive, got %g", vref)
	}
	n := a.Bits
	codes := 1 << n
	cNom := make([]float64, n+1)
	cT := 0.0
	for k := 0; k <= n; k++ {
		cNom[k] = float64(a.Counts[k]) * a.CuFF
		cT += cNom[k]
	}
	vLSB := vref / float64(codes)
	results := make([]Result, len(shifts))
	out := make([]float64, codes)
	for s, dc := range shifts {
		if len(dc) != n+1 {
			return nil, fmt.Errorf("dacmodel: sample %d has %d shifts, want %d", s, len(dc), n+1)
		}
		dCT := par.CTBOnfF + par.CTBOfffF + par.CTSfF
		for k := 0; k <= n; k++ {
			dCT += dc[k]
		}
		for i := 0; i < codes; i++ {
			d := bitsOf(n, i)
			cOn, dOn := 0.0, par.CTBOnfF
			for k := 1; k <= n; k++ {
				if d[k] {
					cOn += cNom[k]
					dOn += dc[k]
				}
			}
			out[i] = vref * (cOn + dOn) / (cT + dCT)
		}
		// Reference: the ideal transfer (raw), or the straight line
		// through this sample's own endpoints (endpoint-corrected).
		ref := func(i int) float64 { return IdealOut(n, i) * vref }
		lsb := vLSB
		if endpoint {
			v0, vMax := out[0], out[codes-1]
			lsb = (vMax - v0) / float64(codes-1)
			if lsb <= 0 {
				return nil, fmt.Errorf("dacmodel: sample %d transfer not increasing end to end", s)
			}
			ref = func(i int) float64 { return v0 + float64(i)*lsb }
		}
		res := Result{ThetaRad: a.ThetaRad}
		for i := 1; i < codes; i++ {
			inl := (out[i] - ref(i)) / lsb
			if abs := math.Abs(inl); abs > res.MaxAbsINL {
				res.MaxAbsINL, res.WorstINLCode = abs, i
			}
			dnl := (out[i] - out[i-1] - lsb) / lsb
			if abs := math.Abs(dnl); abs > res.MaxAbsDNL {
				res.MaxAbsDNL, res.WorstDNLCode = abs, i
			}
		}
		results[s] = res
	}
	return results, nil
}

// Quantile returns the q-quantile (0..1) of the max-|INL| values of
// Monte-Carlo results, a convenience for comparing with the 3σ model.
func Quantile(rs []Result, q float64, inl bool) float64 {
	if len(rs) == 0 {
		return math.NaN()
	}
	vals := make([]float64, len(rs))
	for i, r := range rs {
		if inl {
			vals[i] = r.MaxAbsINL
		} else {
			vals[i] = r.MaxAbsDNL
		}
	}
	// Insertion sort: result sets are small.
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	idx := int(q * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}
