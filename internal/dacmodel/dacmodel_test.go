package dacmodel

import (
	"math"
	"testing"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/place"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

func analysisFor(t *testing.T, bits int, style place.Style, theta float64) *variation.Analysis {
	t.Helper()
	var m *ccmatrix.Matrix
	var err error
	switch style {
	case place.Spiral:
		m, err = place.NewSpiral(bits)
	case place.Chessboard:
		m, err = place.NewChessboard(bits)
	default:
		m, err = place.NewBlockChessboard(bits, place.BCParams{CoreBits: 4, BlockCells: 2})
	}
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	a, err := variation.Analyze(m, variation.GridPositioner(tch), tch, theta)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestIdealOut(t *testing.T) {
	if got := IdealOut(6, 0); got != 0 {
		t.Errorf("IdealOut(6,0) = %g", got)
	}
	if got := IdealOut(6, 32); got != 0.5 {
		t.Errorf("IdealOut(6,32) = %g, want 0.5", got)
	}
	if got := IdealOut(6, 63); math.Abs(got-63.0/64) > 1e-15 {
		t.Errorf("IdealOut(6,63) = %g", got)
	}
}

func TestBitsOf(t *testing.T) {
	d := bitsOf(6, 0b101001)
	want := []bool{false, true, false, false, true, false, true}
	for k, w := range want {
		if d[k] != w {
			t.Errorf("bitsOf code 41 bit %d = %v, want %v", k, d[k], w)
		}
	}
}

func TestNonlinearitySmall(t *testing.T) {
	a := analysisFor(t, 6, place.Spiral, math.Pi/4)
	r, err := Nonlinearity(a, Parasitics{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxAbsDNL <= 0 || r.MaxAbsINL <= 0 {
		t.Errorf("degenerate result: %+v", r)
	}
	// The paper reports all methods below 0.5 LSB.
	if r.MaxAbsDNL > 0.5 || r.MaxAbsINL > 0.5 {
		t.Errorf("6-bit spiral INL/DNL too large: %+v", r)
	}
	if r.WorstINLCode <= 0 || r.WorstINLCode >= 64 {
		t.Errorf("worst INL code %d out of range", r.WorstINLCode)
	}
}

func TestNonlinearityRejectsBadVref(t *testing.T) {
	a := analysisFor(t, 6, place.Spiral, 0)
	if _, err := Nonlinearity(a, Parasitics{}, 0); err == nil {
		t.Error("zero vref must be rejected")
	}
}

func TestChessboardBeatsSpiralAtHighBits(t *testing.T) {
	// Table II shape (>= 8 bits): chessboard [7] has the best INL/DNL,
	// spiral the worst.
	sp := analysisFor(t, 8, place.Spiral, math.Pi/4)
	cb := analysisFor(t, 8, place.Chessboard, math.Pi/4)
	rs, err := Nonlinearity(sp, Parasitics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Nonlinearity(cb, Parasitics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc.MaxAbsINL >= rs.MaxAbsINL {
		t.Errorf("chessboard INL %g not below spiral %g", rc.MaxAbsINL, rs.MaxAbsINL)
	}
}

func TestINLGrowsWithResolution(t *testing.T) {
	// In LSB units, mismatch-induced INL grows with N (LSB shrinks).
	lo := analysisFor(t, 6, place.Spiral, math.Pi/4)
	hi := analysisFor(t, 10, place.Spiral, math.Pi/4)
	rl, err := Nonlinearity(lo, Parasitics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Nonlinearity(hi, Parasitics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rh.MaxAbsINL <= rl.MaxAbsINL {
		t.Errorf("INL did not grow with resolution: 6-bit %g, 10-bit %g",
			rl.MaxAbsINL, rh.MaxAbsINL)
	}
}

func TestParasiticsWorsenINL(t *testing.T) {
	a := analysisFor(t, 8, place.Spiral, math.Pi/4)
	clean, err := Nonlinearity(a, Parasitics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A large C^TS causes a visible gain error -> larger INL.
	dirty, err := Nonlinearity(a, Parasitics{CTSfF: 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.MaxAbsINL <= clean.MaxAbsINL {
		t.Errorf("C_TS did not increase INL: clean %g, dirty %g",
			clean.MaxAbsINL, dirty.MaxAbsINL)
	}
}

func TestWorstOverTheta(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	as, err := variation.SweepTheta(m, variation.GridPositioner(tch), tch, 8)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := WorstOverTheta(as, Parasitics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range as {
		r, err := Nonlinearity(a, Parasitics{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxAbsINL+r.MaxAbsDNL > worst.MaxAbsINL+worst.MaxAbsDNL+1e-12 {
			t.Errorf("sweep member exceeds reported worst")
		}
	}
	if _, err := WorstOverTheta(nil, Parasitics{}, 1); err == nil {
		t.Error("empty sweep must be rejected")
	}
}

func TestMonteCarloNLConsistentWith3Sigma(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	a, err := variation.Analyze(m, variation.GridPositioner(tch), tch, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	shifts, err := variation.MonteCarlo(m, variation.GridPositioner(tch), tch, a, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloNL(a, shifts, Parasitics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Nonlinearity(a, Parasitics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The 3σ model must upper-bound the MC median and be within reach
	// of the MC tail (same order of magnitude).
	med := Quantile(mc, 0.5, true)
	p99 := Quantile(mc, 0.99, true)
	if r3.MaxAbsINL < med {
		t.Errorf("3σ INL %g below MC median %g", r3.MaxAbsINL, med)
	}
	if r3.MaxAbsINL > 100*p99+1e-9 {
		t.Errorf("3σ INL %g wildly above MC p99 %g", r3.MaxAbsINL, p99)
	}
}

func TestMonteCarloNLRejectsBadShapes(t *testing.T) {
	a := analysisFor(t, 6, place.Spiral, 0)
	if _, err := MonteCarloNL(a, [][]float64{{1, 2}}, Parasitics{}, 1); err == nil {
		t.Error("wrong shift length must be rejected")
	}
	if _, err := MonteCarloNL(a, nil, Parasitics{}, 0); err == nil {
		t.Error("bad vref must be rejected")
	}
}

func TestQuantile(t *testing.T) {
	rs := []Result{{MaxAbsINL: 3}, {MaxAbsINL: 1}, {MaxAbsINL: 2}}
	if got := Quantile(rs, 0, true); got != 1 {
		t.Errorf("q0 = %g, want 1", got)
	}
	if got := Quantile(rs, 1, true); got != 3 {
		t.Errorf("q1 = %g, want 3", got)
	}
	if got := Quantile(rs, 0.5, true); got != 2 {
		t.Errorf("q0.5 = %g, want 2", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5, true)) {
		t.Error("empty quantile must be NaN")
	}
}

func TestMonotoneTransferNominal(t *testing.T) {
	// With tiny mismatch the perturbed transfer stays monotone
	// (DNL > -1): no missing codes for any placement style at 8 bits.
	for _, style := range []place.Style{place.Spiral, place.Chessboard, place.BlockChessboard} {
		a := analysisFor(t, 8, style, math.Pi/4)
		r, err := Nonlinearity(a, Parasitics{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxAbsDNL >= 1 {
			t.Errorf("%v: DNL %g implies a missing code", style, r.MaxAbsDNL)
		}
	}
}

func TestZeroMismatchZeroNL(t *testing.T) {
	// Property: with no mismatch samples (all-zero shifts) and no
	// parasitics, the Monte-Carlo evaluator reports zero INL/DNL for
	// any placement.
	for _, style := range []place.Style{place.Spiral, place.Chessboard} {
		a := analysisFor(t, 6, style, 0)
		shifts := [][]float64{make([]float64, 7)}
		rs, err := MonteCarloNL(a, shifts, Parasitics{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rs[0].MaxAbsINL > 1e-9 || rs[0].MaxAbsDNL > 1e-9 {
			t.Errorf("%v: zero mismatch gave INL %g DNL %g", style, rs[0].MaxAbsINL, rs[0].MaxAbsDNL)
		}
	}
}

func TestEndpointCorrectionRemovesGainError(t *testing.T) {
	// A pure C_TS gain error inflates raw INL but not endpoint INL.
	a := analysisFor(t, 8, place.Spiral, 0)
	shifts := [][]float64{make([]float64, 9)}
	par := Parasitics{CTSfF: 30}
	raw, err := MonteCarloNL(a, shifts, par, 1)
	if err != nil {
		t.Fatal(err)
	}
	corrected, err := MonteCarloNLEndpoint(a, shifts, par, 1)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0].MaxAbsINL < 1 {
		t.Errorf("raw INL %g: 30 fF gain error should exceed 1 LSB", raw[0].MaxAbsINL)
	}
	if corrected[0].MaxAbsINL > 0.01 {
		t.Errorf("endpoint INL %g: gain error not removed", corrected[0].MaxAbsINL)
	}
}
