// Circulant embedding of a stationary correlation kernel on a regular
// grid. The unit-cell covariance C[a][b] = k(d²(a,b)) of a rows×cols
// lattice with uniform pitch is block-Toeplitz with Toeplitz blocks;
// embedding it in the covariance of a P×Q torus (P ≥ 2·rows−1, Q ≥
// 2·cols−1, rounded to powers of two) makes the operator circulant, so
// its eigenvalues are one 2-D FFT of the first kernel row and every
// matvec or correlated Gaussian draw costs O(M log M), M = P·Q —
// never materializing the n×n matrix.
//
// Matvecs and sampling have different soundness conditions. The dense
// covariance is exactly the torus circulant restricted to the lattice,
// so MulVec with the raw (possibly negative) eigenvalues reproduces
// the dense product to FFT roundoff unconditionally. Sampling needs a
// nonnegative spectrum: negative eigenvalues are clamped to zero,
// which perturbs every covariance entry by at most Σ|λ_neg|/M — the
// construction measures that bound, retries on a padded torus when it
// exceeds SampleTol, and disables sampling (CanSample false, the
// caller's cue to fall back to dense Cholesky) when padding cannot fix
// it either.
package fftk

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"
)

// Grid describes the regular lattice being embedded: dimensions in
// cells and the uniform pitch (microns) along each axis.
type Grid struct {
	Rows, Cols int
	DX, DY     float64
}

// EmbedOptions tunes the embedding construction; the zero value gives
// the defaults the flow uses.
type EmbedOptions struct {
	// SampleTol is the largest tolerated entrywise covariance error of
	// the clamped sampling spectrum, relative to the kernel's variance
	// k(0) (default 1e-2). The flow's long-range exp kernel sits near
	// 3e-3 at 14-bit grids.
	SampleTol float64
	// MaxDoublings bounds how many times the torus may be doubled
	// chasing a sampleable spectrum (default 1 — each doubling
	// quadruples the spectral work, so the chase must stay bounded).
	MaxDoublings int
}

// Embedding is the spectral form of one grid kernel: the torus
// eigenvalues plus the 2-D plan that diagonalizes the circulant. It is
// immutable after construction and safe for concurrent use; per-call
// scratch comes from an internal pool.
type Embedding struct {
	grid Grid
	p, q int // torus dims (pow2), p rows × q cols

	lam     []float64 // raw circulant eigenvalues (matvec path)
	sqrtLam []float64 // sqrt(max(λ,0)/M), the sampling spectrum
	plan    *Plan2D
	pool    sync.Pool

	// KernelEvals counts kernel evaluations spent building the
	// embedding (one torus row, P·Q, per padding attempt).
	KernelEvals int64
	// Doublings is how many padding rounds the accepted torus needed.
	Doublings int
	// SampleRelErr is Σ|λ_neg|/M relative to k(0): the entrywise
	// covariance error bound of the clamped sampling spectrum.
	SampleRelErr float64
	// canSample records whether SampleRelErr passed SampleTol.
	canSample bool
}

type embedScratch struct {
	buf []complex128 // torus field, len p*q
	col []complex128 // column pass, len p
}

// NewEmbedding builds the circulant embedding of kernel(d²) — d² in
// µm² — over g. Construction only fails on degenerate arguments;
// whether the spectrum supports sampling is reported by CanSample.
func NewEmbedding(g Grid, kernel func(d2 float64) float64, opts EmbedOptions) (*Embedding, error) {
	if g.Rows < 1 || g.Cols < 1 {
		return nil, fmt.Errorf("fftk: embedding grid %dx%d, want >= 1", g.Rows, g.Cols)
	}
	if !(g.DX >= 0) || !(g.DY >= 0) {
		return nil, fmt.Errorf("fftk: embedding pitch (%g, %g), want >= 0", g.DX, g.DY)
	}
	tol := opts.SampleTol
	if tol <= 0 {
		tol = 1e-2
	}
	maxDbl := opts.MaxDoublings
	if maxDbl < 0 {
		maxDbl = 0
	} else if maxDbl == 0 {
		maxDbl = 1
	}
	k0 := kernel(0)
	if !(k0 > 0) || math.IsInf(k0, 0) || math.IsNaN(k0) {
		return nil, fmt.Errorf("fftk: kernel variance k(0) = %g, want finite > 0", k0)
	}

	e := &Embedding{grid: g}
	p0, q0 := torusDim(g.Rows), torusDim(g.Cols)
	for dbl := 0; ; dbl++ {
		p, q := p0<<uint(dbl), q0<<uint(dbl)
		plan, err := NewPlan2D(p, q)
		if err != nil {
			return nil, err
		}
		// First kernel row on the torus: entry (r, c) is the kernel at
		// the wrapped displacement (min(r, P−r)·DY, min(c, Q−c)·DX).
		spec := make([]complex128, p*q)
		for r := 0; r < p; r++ {
			wr := float64(min(r, p-r)) * g.DY
			for c := 0; c < q; c++ {
				wc := float64(min(c, q-c)) * g.DX
				spec[r*q+c] = complex(kernel(wr*wr+wc*wc), 0)
			}
		}
		e.KernelEvals += int64(p * q)
		plan.Forward(spec, make([]complex128, p))

		m := float64(p * q)
		lam := make([]float64, p*q)
		sumNeg := 0.0
		for i, v := range spec {
			lam[i] = real(v)
			if lam[i] < 0 {
				sumNeg -= lam[i]
			}
		}
		relErr := sumNeg / m / k0
		if relErr > tol && dbl < maxDbl {
			continue // pad: a bigger torus may relax the wrap-around kink
		}
		e.p, e.q = p, q
		e.plan = plan
		e.Doublings = dbl
		e.SampleRelErr = relErr
		e.canSample = relErr <= tol
		e.lam = lam
		e.sqrtLam = make([]float64, len(lam))
		for i, l := range lam {
			if l > 0 {
				e.sqrtLam[i] = math.Sqrt(l / m)
			}
		}
		e.pool.New = func() any {
			return &embedScratch{
				buf: make([]complex128, p*q),
				col: make([]complex128, p),
			}
		}
		return e, nil
	}
}

// torusDim returns the power-of-two torus length embedding a line of n
// cells: ≥ 2(n−1)+1 so every lattice displacement appears unwrapped.
func torusDim(n int) int {
	need := 2*(n-1) + 1
	if need <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(need-1)))
}

// Grid returns the embedded lattice description.
func (e *Embedding) Grid() Grid { return e.grid }

// Points returns the torus size M = P·Q — the length of the spectral
// work each matvec or sample performs.
func (e *Embedding) Points() int { return e.p * e.q }

// CanSample reports whether the clamped spectrum's covariance error
// stayed within SampleTol — the precondition for Sample. MulVec is
// sound either way.
func (e *Embedding) CanSample() bool { return e.canSample }

// MulVec computes dst = C·x for the grid covariance operator C, with x
// and dst row-major over the rows×cols lattice (len Rows*Cols). dst
// and x may alias. The raw spectrum makes this exact (to FFT
// roundoff) even when the embedding is indefinite.
func (e *Embedding) MulVec(dst, x []float64) {
	e.mulVec(dst, nil, x, nil)
}

// MulVec2 computes dst1 = C·x1 and dst2 = C·x2 with a single complex
// transform pair: the operator is real, so packing z = x1 + i·x2
// keeps the two products in the real and imaginary parts. This is the
// two-for-one real-to-complex trick; it halves the FFT count of the
// indicator-vector sweeps in variation.
func (e *Embedding) MulVec2(dst1, dst2, x1, x2 []float64) {
	e.mulVec(dst1, dst2, x1, x2)
}

func (e *Embedding) mulVec(dst1, dst2, x1, x2 []float64) {
	n := e.grid.Rows * e.grid.Cols
	if len(x1) != n || len(dst1) != n || (x2 != nil && (len(x2) != n || len(dst2) != n)) {
		panic(fmt.Sprintf("fftk: MulVec length, want %d", n))
	}
	s := e.pool.Get().(*embedScratch)
	defer e.pool.Put(s)
	for i := range s.buf {
		s.buf[i] = 0
	}
	for r := 0; r < e.grid.Rows; r++ {
		for c := 0; c < e.grid.Cols; c++ {
			im := 0.0
			if x2 != nil {
				im = x2[r*e.grid.Cols+c]
			}
			s.buf[r*e.q+c] = complex(x1[r*e.grid.Cols+c], im)
		}
	}
	e.plan.Forward(s.buf, s.col)
	for i, l := range e.lam {
		s.buf[i] *= complex(l, 0)
	}
	e.plan.Inverse(s.buf, s.col)
	for r := 0; r < e.grid.Rows; r++ {
		for c := 0; c < e.grid.Cols; c++ {
			v := s.buf[r*e.q+c]
			dst1[r*e.grid.Cols+c] = real(v)
			if x2 != nil {
				dst2[r*e.grid.Cols+c] = imag(v)
			}
		}
	}
}

// Sample draws one zero-mean Gaussian field with covariance C into dst
// (row-major over the lattice, len Rows*Cols): spectral noise ε_k =
// ξ+iη scaled by sqrt(λ_k/M), one forward transform, real part at the
// lattice cells. Both quadratures of the complex output carry the
// target covariance; the real one is used. Exactly 2M normal variates
// are consumed from rng in torus-index order, so a fixed per-sample
// stream yields a byte-stable sample at any worker count. Callers must
// check CanSample first; an indefinite spectrum's clamp error is
// unbounded here.
func (e *Embedding) Sample(dst []float64, rng *rand.Rand) {
	n := e.grid.Rows * e.grid.Cols
	if len(dst) != n {
		panic(fmt.Sprintf("fftk: Sample length %d, want %d", len(dst), n))
	}
	s := e.pool.Get().(*embedScratch)
	defer e.pool.Put(s)
	for i, sl := range e.sqrtLam {
		re := rng.NormFloat64()
		im := rng.NormFloat64()
		s.buf[i] = complex(sl*re, sl*im)
	}
	e.plan.Forward(s.buf, s.col)
	for r := 0; r < e.grid.Rows; r++ {
		for c := 0; c < e.grid.Cols; c++ {
			dst[r*e.grid.Cols+c] = real(s.buf[r*e.q+c])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
