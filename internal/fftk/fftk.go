// Package fftk provides the FFT kernels behind the flow's structured-
// covariance paths (docs/PERFORMANCE.md, "Structured covariance"): an
// iterative radix-2 complex FFT with a Bluestein fallback for general
// lengths, separable 2-D plans, and the circulant embedding of a
// stationary correlation kernel on a regular grid (embed.go). Together
// they turn the analysis covariance matvec and the Monte-Carlo
// correlated-sampling step from O(n²)/O(n³) dense operations into
// O(n log n) spectral ones.
//
// Plans are immutable after construction and safe for concurrent use;
// all mutable state lives in caller-supplied scratch (or, for
// Embedding, in its internal sync.Pool), so par.ForN fan-out composes
// without locks. Real-valued transforms are served by the classical
// two-for-one packing — two real vectors ride one complex transform —
// implemented where it is used, in Embedding.MulVec2 and
// Embedding.Sample.
//
// The evaluation environment has no external numeric libraries, so the
// transforms are implemented from scratch on complex128 slices.
package fftk

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan is a precomputed complex DFT of one fixed length. The forward
// transform uses the e^{-2πi jk/n} convention; Inverse applies the
// conjugate transform and the 1/n scale, so Inverse(Forward(x)) == x
// up to roundoff.
type Plan struct {
	n    int
	pow2 bool

	// Radix-2 machinery (pow2 lengths): bit-reversal permutation and
	// the first half of the forward twiddle circle.
	rev []int
	tw  []complex128

	// Bluestein machinery (general lengths): the chirp w_k =
	// e^{-iπk²/n}, the padded pow2 convolution sub-plan, and the
	// precomputed spectrum of the chirp filter.
	chirp []complex128
	conv  *Plan
	bspec []complex128
}

// NewPlan builds a plan for length n ≥ 1. Powers of two take the
// iterative radix-2 path; any other length is handled by Bluestein's
// chirp-z reduction to a padded power-of-two convolution, so arbitrary
// grid dimensions never silently fall back to an O(n²) DFT.
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fftk: plan length %d, want >= 1", n)
	}
	p := &Plan{n: n}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.rev = bitReversal(n)
		p.tw = forwardTwiddles(n)
		return p, nil
	}
	// Bluestein: X_k = w_k · Σ_j (x_j w_j) v_{k−j} with v = conj(w),
	// a linear convolution of length 2n−1 embedded in a pow2 circle.
	m := 1 << uint(bits.Len(uint(2*n-2)))
	conv, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	p.conv = conv
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n keeps the chirp phase exact for large k (the phase
		// of e^{-iπk²/n} has period 2n in k²).
		ph := -math.Pi * float64((k*k)%(2*n)) / float64(n)
		p.chirp[k] = cis(ph)
	}
	b := make([]complex128, m)
	b[0] = 1
	for k := 1; k < n; k++ {
		v := cmplxConj(p.chirp[k])
		b[k], b[m-k] = v, v
	}
	conv.Forward(b)
	p.bspec = b
	return p, nil
}

// N returns the plan's transform length.
func (p *Plan) N() int { return p.n }

// Forward transforms x in place; len(x) must equal N(). A Bluestein
// plan allocates its two convolution buffers per call — the flow's hot
// paths use pow2 torus dimensions where Forward is allocation-free.
func (p *Plan) Forward(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fftk: Forward length %d, want %d", len(x), p.n))
	}
	if p.n == 1 {
		return
	}
	if p.pow2 {
		p.radix2(x)
		return
	}
	p.bluestein(x)
}

// Inverse applies the inverse transform in place, including the 1/n
// normalization.
func (p *Plan) Inverse(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fftk: Inverse length %d, want %d", len(x), p.n))
	}
	for i, v := range x {
		x[i] = cmplxConj(v)
	}
	p.Forward(x)
	inv := complex(1/float64(p.n), 0)
	for i, v := range x {
		x[i] = cmplxConj(v) * inv
	}
}

// radix2 is the iterative decimation-in-time butterfly over a
// bit-reversed input ordering.
func (p *Plan) radix2(x []complex128) {
	n := p.n
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				a := x[k]
				b := x[k+half] * p.tw[ti]
				x[k] = a + b
				x[k+half] = a - b
				ti += step
			}
		}
	}
}

// bluestein evaluates the chirp-z transform via the precomputed padded
// convolution.
func (p *Plan) bluestein(x []complex128) {
	m := p.conv.n
	a := make([]complex128, m)
	for j := 0; j < p.n; j++ {
		a[j] = x[j] * p.chirp[j]
	}
	p.conv.Forward(a)
	for i := range a {
		a[i] *= p.bspec[i]
	}
	p.conv.Inverse(a)
	for k := 0; k < p.n; k++ {
		x[k] = p.chirp[k] * a[k]
	}
}

// Plan2D is a separable 2-D DFT over a rows×cols row-major grid:
// a length-cols transform of every row followed by a length-rows
// transform of every column. Like Plan, it is immutable and
// concurrency-safe; the column gather/scatter buffer is caller scratch.
type Plan2D struct {
	Rows, Cols int
	row, col   *Plan
}

// NewPlan2D builds a 2-D plan for a rows×cols grid.
func NewPlan2D(rows, cols int) (*Plan2D, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("fftk: plan dims %dx%d, want >= 1", rows, cols)
	}
	rp, err := NewPlan(cols)
	if err != nil {
		return nil, err
	}
	cp, err := NewPlan(rows)
	if err != nil {
		return nil, err
	}
	return &Plan2D{Rows: rows, Cols: cols, row: rp, col: cp}, nil
}

// Forward transforms x (row-major, len Rows*Cols) in place. colBuf is
// scratch of length Rows for the strided column passes.
func (p *Plan2D) Forward(x, colBuf []complex128) {
	p.transform(x, colBuf, false)
}

// Inverse applies the normalized inverse 2-D transform in place.
func (p *Plan2D) Inverse(x, colBuf []complex128) {
	p.transform(x, colBuf, true)
}

func (p *Plan2D) transform(x, colBuf []complex128, inverse bool) {
	if len(x) != p.Rows*p.Cols {
		panic(fmt.Sprintf("fftk: 2-D transform length %d, want %d", len(x), p.Rows*p.Cols))
	}
	if len(colBuf) < p.Rows {
		panic(fmt.Sprintf("fftk: 2-D column scratch length %d, want >= %d", len(colBuf), p.Rows))
	}
	for r := 0; r < p.Rows; r++ {
		row := x[r*p.Cols : (r+1)*p.Cols]
		if inverse {
			p.row.Inverse(row)
		} else {
			p.row.Forward(row)
		}
	}
	cb := colBuf[:p.Rows]
	for c := 0; c < p.Cols; c++ {
		for r := 0; r < p.Rows; r++ {
			cb[r] = x[r*p.Cols+c]
		}
		if inverse {
			p.col.Inverse(cb)
		} else {
			p.col.Forward(cb)
		}
		for r := 0; r < p.Rows; r++ {
			x[r*p.Cols+c] = cb[r]
		}
	}
}

// bitReversal returns the bit-reversal permutation for pow2 n.
func bitReversal(n int) []int {
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	rev := make([]int, n)
	for i := range rev {
		rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	return rev
}

// forwardTwiddles returns e^{-2πik/n} for k in [0, n/2).
func forwardTwiddles(n int) []complex128 {
	tw := make([]complex128, n/2)
	for k := range tw {
		tw[k] = cis(-2 * math.Pi * float64(k) / float64(n))
	}
	return tw
}

func cis(ph float64) complex128 {
	s, c := math.Sincos(ph)
	return complex(c, s)
}

func cmplxConj(v complex128) complex128 { return complex(real(v), -imag(v)) }
