// Semi-regular (separable) circulant embedding: uniform pitch along
// rows, arbitrary column positions. Routed layouts have exactly this
// shape — cell rows stay on the placement pitch while channel
// insertions of varying width push the columns off any uniform
// lattice — so the full 2-D embedding of embed.go never fits them.
// The covariance is still block-Toeplitz over rows (the kernel depends
// on the row separation only through Δr·DY) with full, non-Toeplitz
// cols×cols blocks. Embedding the row axis alone in a circulant of
// length M ≥ 2·Rows−1 block-diagonalizes the operator into M
// cross-spectral cols×cols matrices S[m] = {λ_cc'[m]}: quadratic
// forms contract per frequency in O(M·(K·C² + K²·C)) and correlated
// sampling factors each S[m] once and then costs O(M·C²) per draw —
// versus O(n²) per quadratic form and an impossible O(n³) Cholesky
// for the dense path.
//
// Soundness mirrors embed.go: quadratic forms use the raw spectra and
// are exact to FFT roundoff unconditionally. Sampling needs every
// S[m] PSD; the min-wrap kink of the long-range mismatch kernel makes
// a band of them mildly indefinite (a few percent of k(0) in clamped
// mass, and padding only worsens the kink — as it does for the 2-D
// embedding). The sampler clamps the negative eigenvalues and gates
// on the EXACT covariance perturbation the clamp induces: the clamped
// parts N[m] are inverse-transformed back to row lags, where their
// oscillating contributions largely cancel — measured ~7e-4 relative
// on routed 12-bit arrays whose nuclear-mass bound (the embed.go
// gate) says 4e-2. Factorization tries Cholesky per frequency first
// and falls back to a Jacobi eigen-clamp on the indefinite ones.
package fftk

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// SemiGrid describes a separable lattice: Rows cells per column at
// uniform pitch DY (microns), columns at the arbitrary x positions
// ColX (microns, one per column).
type SemiGrid struct {
	Rows int
	DY   float64
	ColX []float64
}

// SemiEmbedding is the row-spectral form of one separable-lattice
// kernel. Construction (and QuadForms) is cheap; the sampling
// factorization is lazy — first CanSample/Sample pays it once.
type SemiEmbedding struct {
	g    SemiGrid
	cols int
	m    int         // row-torus length, pow2 ≥ 2·Rows−1
	lamT [][]float64 // per frequency: packed symmetric S[m], len C(C+1)/2
	plan *Plan
	k0   float64
	tol  float64

	// KernelEvals counts kernel evaluations spent building the spectra.
	KernelEvals int64

	pool sync.Pool // *semiScratch for Sample

	sampleOnce sync.Once
	// fac holds one dense C×C factor per distinct frequency
	// d ∈ [0, m/2], scaled so F·Fᵀ = clamp(S[d])/m; frequency f uses
	// fac[min(f, m−f)].
	fac [][]float64
	// SampleRelErr is the exact entrywise covariance error of the draw
	// relative to k(0): the largest in-lattice lag response of the
	// clamped spectral parts. Zero until the factorization has run.
	SampleRelErr float64
	canSample    bool
}

type semiScratch struct {
	field []complex128 // C column time-series of length M, len C*M
	w     []complex128 // one frequency's column vector, len C
	xi    []float64    // normal draws, len 2C
}

// NewSemiEmbedding builds the row-spectral embedding of kernel(d²) —
// d² in µm² — over g. Construction only fails on degenerate
// arguments; whether the spectra support sampling is reported by
// CanSample.
func NewSemiEmbedding(g SemiGrid, kernel func(d2 float64) float64, opts EmbedOptions) (*SemiEmbedding, error) {
	cols := len(g.ColX)
	if g.Rows < 1 || cols < 1 {
		return nil, fmt.Errorf("fftk: semi embedding %dx%d, want >= 1", g.Rows, cols)
	}
	if !(g.DY >= 0) {
		return nil, fmt.Errorf("fftk: semi embedding row pitch %g, want >= 0", g.DY)
	}
	tol := opts.SampleTol
	if tol <= 0 {
		tol = 1e-2
	}
	k0 := kernel(0)
	if !(k0 > 0) || math.IsInf(k0, 0) || math.IsNaN(k0) {
		return nil, fmt.Errorf("fftk: kernel variance k(0) = %g, want finite > 0", k0)
	}

	m := torusDim(g.Rows)
	plan, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	e := &SemiEmbedding{
		g:    SemiGrid{Rows: g.Rows, DY: g.DY, ColX: append([]float64(nil), g.ColX...)},
		cols: cols,
		m:    m,
		plan: plan,
		k0:   k0,
		tol:  tol,
	}
	e.lamT = make([][]float64, m)
	for f := range e.lamT {
		e.lamT[f] = make([]float64, cols*(cols+1)/2)
	}
	// One length-M FFT per column pair: the row-direction kernel
	// k_cc'(Δr) = kernel(Δx² + (Δr·DY)²) wrapped onto the torus. The
	// wrap min(s, M−s) makes it even, so every spectrum is real.
	buf := make([]complex128, m)
	for cj := 0; cj < cols; cj++ {
		for ci := 0; ci <= cj; ci++ {
			dx := g.ColX[ci] - g.ColX[cj]
			for s := 0; s < m; s++ {
				wr := float64(min(s, m-s)) * g.DY
				buf[s] = complex(kernel(dx*dx+wr*wr), 0)
			}
			e.KernelEvals += int64(m)
			plan.Forward(buf)
			pij := cj*(cj+1)/2 + ci
			for f := 0; f < m; f++ {
				e.lamT[f][pij] = real(buf[f])
			}
		}
	}
	e.pool.New = func() any {
		return &semiScratch{
			field: make([]complex128, cols*m),
			w:     make([]complex128, cols),
			xi:    make([]float64, 2*cols),
		}
	}
	return e, nil
}

// Grid returns the embedded lattice description.
func (e *SemiEmbedding) Grid() SemiGrid { return e.g }

// Points returns the row-torus length M — together with the column
// count it bounds the spectral work per sample, O(M·C²).
func (e *SemiEmbedding) Points() int { return e.m }

// QuadForms evaluates the full matrix of quadratic forms G[j][k] =
// 1_jᵀ C 1_k for the indicator vectors of the given classes, each a
// list of flat row-major cell indices r·Cols+c. The raw spectra make
// this exact to FFT roundoff even when some S[m] is indefinite. The
// contraction is serial and therefore deterministic.
func (e *SemiEmbedding) QuadForms(classes [][]int) [][]float64 {
	R, C, M := e.g.Rows, e.cols, e.m
	nc := len(classes)
	// Spectral indicators: one FFT per (class, column) with cells.
	spec := make([][]complex128, nc*C)
	for j, cls := range classes {
		for _, idx := range cls {
			r, c := idx/C, idx%C
			if r < 0 || r >= R || c < 0 {
				panic(fmt.Sprintf("fftk: QuadForms cell index %d outside %dx%d", idx, R, C))
			}
			if spec[j*C+c] == nil {
				spec[j*C+c] = make([]complex128, M)
			}
			spec[j*C+c][r] += 1
		}
	}
	for _, v := range spec {
		if v != nil {
			e.plan.Forward(v)
		}
	}

	G := make([][]float64, nc)
	for j := range G {
		G[j] = make([]float64, nc)
	}
	a := make([]complex128, nc*C)
	y := make([]complex128, nc*C)
	for f := 0; f < M; f++ {
		for i, v := range spec {
			if v == nil {
				a[i] = 0
			} else {
				a[i] = v[f]
			}
		}
		lam := e.lamT[f]
		for j := 0; j < nc; j++ {
			aj := a[j*C : j*C+C]
			yj := y[j*C : j*C+C]
			for i := range yj {
				yj[i] = 0
			}
			for cj := 0; cj < C; cj++ {
				base := cj * (cj + 1) / 2
				for ci := 0; ci < cj; ci++ {
					v := complex(lam[base+ci], 0)
					yj[ci] += v * aj[cj]
					yj[cj] += v * aj[ci]
				}
				yj[cj] += complex(lam[base+cj], 0) * aj[cj]
			}
		}
		for j := 0; j < nc; j++ {
			for k := j; k < nc; k++ {
				dot := 0.0
				for c := 0; c < C; c++ {
					av, yv := a[j*C+c], y[k*C+c]
					dot += real(av)*real(yv) + imag(av)*imag(yv)
				}
				G[j][k] += dot
			}
		}
	}
	inv := 1 / float64(M)
	for j := 0; j < nc; j++ {
		for k := j; k < nc; k++ {
			G[j][k] *= inv
			G[k][j] = G[j][k]
		}
	}
	return G
}

// CanSample reports whether the clamped factorization's covariance
// error stayed within SampleTol, running the one-time factorization
// if needed. QuadForms is sound either way.
func (e *SemiEmbedding) CanSample() bool {
	e.sampleOnce.Do(e.factorize)
	return e.canSample
}

// factorize builds one scaled factor per distinct frequency —
// Cholesky when S[d] is positive definite (the common case), Jacobi
// eigen-clamp otherwise — then evaluates the gate: the clamped parts
// N[d], inverse-transformed over frequencies, give the EXACT
// entrywise covariance deviation of the clamped operator at every row
// lag; the largest one inside the lattice (|Δr| ≤ Rows−1, and the
// transform is even in the lag) is SampleRelErr. This is far tighter
// than the nuclear-mass bound: the indefinite band's contributions
// oscillate and mostly cancel at in-lattice lags.
func (e *SemiEmbedding) factorize() {
	C, M := e.cols, e.m
	e.fac = make([][]float64, M/2+1)
	s := make([]float64, C*C)
	var clamped [][]float64 // packed symmetric N[d], nil where PSD
	for d := 0; d <= M/2; d++ {
		lam := e.lamT[d]
		for cj := 0; cj < C; cj++ {
			base := cj * (cj + 1) / 2
			for ci := 0; ci <= cj; ci++ {
				v := lam[base+ci]
				s[ci*C+cj] = v
				s[cj*C+ci] = v
			}
		}
		f, nf := factorPSD(s, C, e.k0)
		inv := 1 / math.Sqrt(float64(M))
		for i := range f {
			f[i] *= inv
		}
		e.fac[d] = f
		if nf != nil {
			if clamped == nil {
				clamped = make([][]float64, M/2+1)
			}
			clamped[d] = nf
		}
	}
	if clamped == nil {
		e.canSample = true
		return
	}
	buf := make([]complex128, M)
	worst := 0.0
	for cj := 0; cj < C; cj++ {
		for ci := 0; ci <= cj; ci++ {
			pij := cj*(cj+1)/2 + ci
			any := false
			for f := 0; f < M; f++ {
				if nf := clamped[min(f, M-f)]; nf != nil {
					buf[f] = complex(nf[pij], 0)
					any = true
				} else {
					buf[f] = 0
				}
			}
			if !any {
				continue
			}
			e.plan.Inverse(buf)
			for lag := 0; lag < e.g.Rows; lag++ {
				if err := math.Abs(real(buf[lag])); err > worst {
					worst = err
				}
			}
		}
	}
	e.SampleRelErr = worst / e.k0
	e.canSample = e.SampleRelErr <= e.tol
}

// factorPSD returns F with F·Fᵀ = clamp(s) for the symmetric C×C
// matrix s (row-major, not modified logically — contents are
// consumed). Cholesky handles the definite case in O(C³/3);
// indefinite or near-singular matrices take the Jacobi eigen-clamp,
// which also returns the clamped part N = Σ_{λ<0} (−λ)·v·vᵀ (packed
// symmetric, nil when nothing was clamped) so the caller can evaluate
// the exact perturbation clamp(s) − s = N induces.
func factorPSD(s []float64, n int, scale float64) (f, clampedPart []float64) {
	f = make([]float64, n*n)
	copy(f, s)
	if cholInPlace(f, n, scale) {
		return f, nil
	}
	vals, vecs := jacobiEig(append([]float64(nil), s...), n)
	var nf []float64
	for j := 0; j < n; j++ {
		v := vals[j]
		if v < 0 {
			if nf == nil {
				nf = make([]float64, n*(n+1)/2)
			}
			for cj := 0; cj < n; cj++ {
				base := cj * (cj + 1) / 2
				for ci := 0; ci <= cj; ci++ {
					nf[base+ci] += (-v) * vecs[ci*n+j] * vecs[cj*n+j]
				}
			}
			v = 0
		}
		root := math.Sqrt(v)
		for i := 0; i < n; i++ {
			f[i*n+j] = vecs[i*n+j] * root
		}
	}
	return f, nf
}

// cholInPlace attempts an in-place lower Cholesky of the row-major
// symmetric a, zeroing the strict upper triangle on success. It fails
// (returns false) on any pivot at or below a tiny fraction of scale,
// leaving indefinite and semidefinite matrices to the eigen path.
func cholInPlace(a []float64, n int, scale float64) bool {
	const pivotTol = 1e-14
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= pivotTol*scale {
			return false
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			v := a[i*n+j]
			for k := 0; k < j; k++ {
				v -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = v * inv
		}
	}
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			a[j*n+k] = 0
		}
	}
	return true
}

// jacobiEig diagonalizes the symmetric row-major n×n matrix a by
// cyclic Jacobi rotations: vals[j] is the j-th eigenvalue and
// vecs[i*n+j] the i-th component of its eigenvector. a is destroyed.
func jacobiEig(a []float64, n int) (vals, vecs []float64) {
	vecs = make([]float64, n*n)
	for i := 0; i < n; i++ {
		vecs[i*n+i] = 1
	}
	for sweep := 0; sweep < 30; sweep++ {
		off := 0.0
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += a[p*n+q] * a[p*n+q]
			}
		}
		diag := 0.0
		for p := 0; p < n; p++ {
			diag += a[p*n+p] * a[p*n+p]
		}
		if off <= 1e-30*(diag+off) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p*n+q]
				if apq == 0 {
					continue
				}
				theta := (a[q*n+q] - a[p*n+p]) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < n; i++ {
					aip, aiq := a[i*n+p], a[i*n+q]
					a[i*n+p] = c*aip - s*aiq
					a[i*n+q] = s*aip + c*aiq
				}
				for i := 0; i < n; i++ {
					api, aqi := a[p*n+i], a[q*n+i]
					a[p*n+i] = c*api - s*aqi
					a[q*n+i] = s*api + c*aqi
				}
				for i := 0; i < n; i++ {
					vip, viq := vecs[i*n+p], vecs[i*n+q]
					vecs[i*n+p] = c*vip - s*viq
					vecs[i*n+q] = s*vip + c*viq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i*n+i]
	}
	return vals, vecs
}

// Sample draws one zero-mean Gaussian field with covariance C into
// dst (row-major over the Rows×Cols lattice): per frequency the
// factor maps a complex-normal column vector into spectral space, one
// inverse-ordered forward transform per column brings it back, and
// the real part at the lattice cells carries the target covariance —
// the vector form of the scalar spectral draw. Exactly 2·M·Cols
// normal variates are consumed from rng in (frequency, column) order,
// so a fixed per-sample stream yields a byte-stable sample at any
// worker count. Callers must check CanSample first.
func (e *SemiEmbedding) Sample(dst []float64, rng *rand.Rand) {
	R, C, M := e.g.Rows, e.cols, e.m
	if len(dst) != R*C {
		panic(fmt.Sprintf("fftk: Sample length %d, want %d", len(dst), R*C))
	}
	e.sampleOnce.Do(e.factorize)
	sc := e.pool.Get().(*semiScratch)
	defer e.pool.Put(sc)
	for f := 0; f < M; f++ {
		for c := 0; c < C; c++ {
			sc.xi[2*c] = rng.NormFloat64()
			sc.xi[2*c+1] = rng.NormFloat64()
		}
		fm := e.fac[min(f, M-f)]
		for i := 0; i < C; i++ {
			re, im := 0.0, 0.0
			row := fm[i*C : i*C+C]
			for j, fv := range row {
				re += fv * sc.xi[2*j]
				im += fv * sc.xi[2*j+1]
			}
			sc.w[i] = complex(re, im)
		}
		for c := 0; c < C; c++ {
			sc.field[c*M+f] = sc.w[c]
		}
	}
	for c := 0; c < C; c++ {
		col := sc.field[c*M : c*M+M]
		e.plan.Forward(col)
		for r := 0; r < R; r++ {
			dst[r*C+c] = real(col[r])
		}
	}
}
