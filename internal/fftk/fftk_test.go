package fftk

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		s := complex(0, 0)
		for j := 0; j < n; j++ {
			ph := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ph))
		}
		out[k] = s
	}
	return out
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		m = math.Max(m, cmplx.Abs(a[i]-b[i]))
	}
	return m
}

// TestForwardMatchesNaiveDFT exercises both the radix-2 and the
// Bluestein paths against the direct DFT.
func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 27, 32, 100, 128} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		x := randComplex(n, rng)
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: forward differs from naive DFT by %g", n, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 6, 8, 15, 64, 96, 256} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		x := randComplex(n, rng)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		p.Inverse(got)
		if d := maxAbsDiff(got, x); d > 1e-10*float64(n) {
			t.Errorf("n=%d: roundtrip error %g", n, d)
		}
	}
}

// TestPlan2DMatchesNaive checks the separable 2-D transform against
// row/column naive DFTs, including a non-pow2 dimension.
func TestPlan2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][2]int{{1, 1}, {2, 4}, {4, 4}, {3, 5}, {8, 6}} {
		rows, cols := dims[0], dims[1]
		p, err := NewPlan2D(rows, cols)
		if err != nil {
			t.Fatalf("NewPlan2D(%d, %d): %v", rows, cols, err)
		}
		x := randComplex(rows*cols, rng)
		want := append([]complex128(nil), x...)
		for r := 0; r < rows; r++ {
			copy(want[r*cols:(r+1)*cols], naiveDFT(want[r*cols:(r+1)*cols]))
		}
		col := make([]complex128, rows)
		for c := 0; c < cols; c++ {
			for r := 0; r < rows; r++ {
				col[r] = want[r*cols+c]
			}
			fc := naiveDFT(col)
			for r := 0; r < rows; r++ {
				want[r*cols+c] = fc[r]
			}
		}
		got := append([]complex128(nil), x...)
		buf := make([]complex128, rows)
		p.Forward(got, buf)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(rows*cols) {
			t.Errorf("%dx%d: 2-D forward differs by %g", rows, cols, d)
		}
		p.Inverse(got, buf)
		if d := maxAbsDiff(got, x); d > 1e-10*float64(rows*cols) {
			t.Errorf("%dx%d: 2-D roundtrip error %g", rows, cols, d)
		}
	}
}

func TestPlanRejectsBadLength(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Error("NewPlan(0) succeeded, want error")
	}
	if _, err := NewPlan2D(0, 4); err == nil {
		t.Error("NewPlan2D(0, 4) succeeded, want error")
	}
}
