package fftk

import (
	"math"
	"math/rand"
	"testing"
)

// expKernel is the flow's mismatch correlation shape: sigma² ρ^(d/Lc).
func expKernel(sigma2, rho, lc float64) func(float64) float64 {
	return func(d2 float64) float64 {
		return sigma2 * math.Pow(rho, math.Sqrt(d2)/lc)
	}
}

// denseCov materializes the grid covariance the embedding represents.
func denseCov(g Grid, kernel func(float64) float64) [][]float64 {
	n := g.Rows * g.Cols
	cov := make([][]float64, n)
	for a := 0; a < n; a++ {
		cov[a] = make([]float64, n)
		ra, ca := a/g.Cols, a%g.Cols
		for b := 0; b < n; b++ {
			rb, cb := b/g.Cols, b%g.Cols
			dx := float64(ca-cb) * g.DX
			dy := float64(ra-rb) * g.DY
			cov[a][b] = kernel(dx*dx + dy*dy)
		}
	}
	return cov
}

// TestEmbeddingMatvecMatchesDense: the raw-spectrum matvec must match
// the dense product to roundoff regardless of the embedding's
// definiteness (the long-range kernel here is mildly indefinite).
func TestEmbeddingMatvecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kernel := expKernel(1.3, 0.9, 1000)
	for _, dims := range [][2]int{{1, 4}, {3, 3}, {4, 8}, {7, 5}} {
		g := Grid{Rows: dims[0], Cols: dims[1], DX: 1.76, DY: 2.1}
		e, err := NewEmbedding(g, kernel, EmbedOptions{})
		if err != nil {
			t.Fatalf("%dx%d: NewEmbedding: %v", g.Rows, g.Cols, err)
		}
		cov := denseCov(g, kernel)
		n := g.Rows * g.Cols
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		e.MulVec(got, x)
		for i := 0; i < n; i++ {
			want := 0.0
			for j := 0; j < n; j++ {
				want += cov[i][j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-10*math.Abs(want)+1e-12 {
				t.Fatalf("%dx%d: MulVec[%d] = %g, want %g", g.Rows, g.Cols, i, got[i], want)
			}
		}
	}
}

func TestEmbeddingMulVec2MatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := Grid{Rows: 5, Cols: 6, DX: 1, DY: 1}
	e, err := NewEmbedding(g, expKernel(1, 0.8, 10), EmbedOptions{})
	if err != nil {
		t.Fatalf("NewEmbedding: %v", err)
	}
	n := g.Rows * g.Cols
	x1, x2 := make([]float64, n), make([]float64, n)
	for i := range x1 {
		x1[i], x2[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	w1, w2 := make([]float64, n), make([]float64, n)
	e.MulVec(w1, x1)
	e.MulVec(w2, x2)
	g1, g2 := make([]float64, n), make([]float64, n)
	e.MulVec2(g1, g2, x1, x2)
	for i := 0; i < n; i++ {
		if math.Abs(g1[i]-w1[i]) > 1e-10 || math.Abs(g2[i]-w2[i]) > 1e-10 {
			t.Fatalf("MulVec2[%d] = (%g, %g), want (%g, %g)", i, g1[i], g2[i], w1[i], w2[i])
		}
	}
}

// TestSampleCovarianceConverges draws many fields and checks the
// empirical covariance against the kernel (a statistical bound, hence
// the loose tolerance at this sample count).
func TestSampleCovarianceConverges(t *testing.T) {
	g := Grid{Rows: 4, Cols: 4, DX: 1.76, DY: 1.76}
	kernel := expKernel(1, 0.9, 1000)
	e, err := NewEmbedding(g, kernel, EmbedOptions{})
	if err != nil {
		t.Fatalf("NewEmbedding: %v", err)
	}
	if !e.CanSample() {
		t.Fatalf("flow kernel not sampleable: rel err %g", e.SampleRelErr)
	}
	cov := denseCov(g, kernel)
	n := g.Rows * g.Cols
	const samples = 4000
	acc := make([]float64, n*n)
	field := make([]float64, n)
	rng := rand.New(rand.NewSource(99))
	for s := 0; s < samples; s++ {
		e.Sample(field, rng)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc[i*n+j] += field[i] * field[j]
			}
		}
	}
	maxErr := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			maxErr = math.Max(maxErr, math.Abs(acc[i*n+j]/samples-cov[i][j]))
		}
	}
	// Var of a sample-covariance entry is O(1/samples); 4000 samples
	// put 3σ near 0.05 for unit-variance fields, plus the documented
	// clamp bias (SampleRelErr, ~1e-4 here).
	if maxErr > 0.1 {
		t.Errorf("sample covariance off by %g after %d samples", maxErr, samples)
	}
}

// TestSampleDeterministic: same rng seed, same field.
func TestSampleDeterministic(t *testing.T) {
	g := Grid{Rows: 3, Cols: 5, DX: 1, DY: 1}
	e, err := NewEmbedding(g, expKernel(1, 0.9, 100), EmbedOptions{})
	if err != nil {
		t.Fatalf("NewEmbedding: %v", err)
	}
	n := g.Rows * g.Cols
	a, b := make([]float64, n), make([]float64, n)
	e.Sample(a, rand.New(rand.NewSource(7)))
	e.Sample(b, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample not deterministic at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestEmbeddingNotSampleable: an oscillatory kernel keeps a strongly
// indefinite spectrum no padding fixes, so sampling must be refused —
// while the matvec stays exact.
func TestEmbeddingNotSampleable(t *testing.T) {
	osc := func(d2 float64) float64 { return math.Cos(3 * math.Sqrt(d2)) }
	g := Grid{Rows: 8, Cols: 8, DX: 1, DY: 1}
	e, err := NewEmbedding(g, osc, EmbedOptions{SampleTol: 1e-3, MaxDoublings: 1})
	if err != nil {
		t.Fatalf("NewEmbedding: %v", err)
	}
	if e.CanSample() {
		t.Fatalf("oscillatory kernel reported sampleable (rel err %g)", e.SampleRelErr)
	}
	cov := denseCov(g, osc)
	n := g.Rows * g.Cols
	x := make([]float64, n)
	rng := rand.New(rand.NewSource(13))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	e.MulVec(got, x)
	for i := 0; i < n; i++ {
		want := 0.0
		for j := 0; j < n; j++ {
			want += cov[i][j] * x[j]
		}
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("indefinite matvec[%d] = %g, want %g", i, got[i], want)
		}
	}
}

func TestEmbeddingRejectsBadArgs(t *testing.T) {
	k := expKernel(1, 0.9, 10)
	if _, err := NewEmbedding(Grid{Rows: 0, Cols: 4, DX: 1, DY: 1}, k, EmbedOptions{}); err == nil {
		t.Error("zero-row grid accepted")
	}
	if _, err := NewEmbedding(Grid{Rows: 2, Cols: 2, DX: math.NaN(), DY: 1}, k, EmbedOptions{}); err == nil {
		t.Error("NaN pitch accepted")
	}
	bad := func(d2 float64) float64 { return 0 }
	if _, err := NewEmbedding(Grid{Rows: 2, Cols: 2, DX: 1, DY: 1}, bad, EmbedOptions{}); err == nil {
		t.Error("zero-variance kernel accepted")
	}
}

func TestTorusDim(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 4}, {3, 8}, {4, 8}, {5, 16}, {8, 16}, {64, 128},
	} {
		if got := torusDim(tc.n); got != tc.want {
			t.Errorf("torusDim(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
