package fftk

import (
	"math"
	"math/rand"
	"testing"
)

// semiKernel is a smooth positive-definite-ish test kernel.
func semiKernel(d2 float64) float64 { return math.Exp(-d2 / 2.3) }

// semiDense materializes the n×n covariance the embedding represents.
func semiDense(g SemiGrid, k func(float64) float64) [][]float64 {
	C := len(g.ColX)
	n := g.Rows * C
	m := make([][]float64, n)
	for a := 0; a < n; a++ {
		m[a] = make([]float64, n)
		ra, ca := a/C, a%C
		for b := 0; b < n; b++ {
			rb, cb := b/C, b%C
			dx := g.ColX[ca] - g.ColX[cb]
			dy := float64(ra-rb) * g.DY
			m[a][b] = k(dx*dx + dy*dy)
		}
	}
	return m
}

func semiTestGrid() SemiGrid {
	// Irregular columns: the routed-layout shape the embedding exists
	// for.
	return SemiGrid{Rows: 7, DY: 1.1, ColX: []float64{0, 1.3, 2.4, 4.1, 5.0}}
}

func TestSemiQuadFormsMatchDense(t *testing.T) {
	g := semiTestGrid()
	e, err := NewSemiEmbedding(g, semiKernel, EmbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.Rows * len(g.ColX)
	rng := rand.New(rand.NewSource(11))
	const nc = 4
	classes := make([][]int, nc)
	for idx := 0; idx < n; idx++ {
		j := rng.Intn(nc)
		classes[j] = append(classes[j], idx)
	}
	got := e.QuadForms(classes)

	dense := semiDense(g, semiKernel)
	for j := 0; j < nc; j++ {
		for k := 0; k < nc; k++ {
			want := 0.0
			for _, a := range classes[j] {
				for _, b := range classes[k] {
					want += dense[a][b]
				}
			}
			if e := math.Abs(got[j][k] - want); e > 1e-10*math.Abs(want)+1e-12 {
				t.Errorf("G[%d][%d] = %.15g, dense %.15g (err %g)", j, k, got[j][k], want, e)
			}
		}
	}
}

// TestSemiQuadFormsSingleRow covers the degenerate R=1 torus (M=1):
// the quadratic forms collapse to plain column sums of the kernel.
func TestSemiQuadFormsSingleRow(t *testing.T) {
	g := SemiGrid{Rows: 1, DY: 0, ColX: []float64{0, 0.9, 2.1}}
	e, err := NewSemiEmbedding(g, semiKernel, EmbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := e.QuadForms([][]int{{0, 2}, {1}})
	dense := semiDense(g, semiKernel)
	want00 := dense[0][0] + dense[0][2] + dense[2][0] + dense[2][2]
	want01 := dense[0][1] + dense[2][1]
	if math.Abs(got[0][0]-want00) > 1e-12 || math.Abs(got[0][1]-want01) > 1e-12 {
		t.Errorf("G = %v, want [[%g %g] ...]", got, want00, want01)
	}
}

func TestSemiSampleCovariance(t *testing.T) {
	g := SemiGrid{Rows: 4, DY: 1.1, ColX: []float64{0, 1.3, 2.9}}
	e, err := NewSemiEmbedding(g, semiKernel, EmbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !e.CanSample() {
		t.Fatalf("CanSample = false (SampleRelErr %g) for a smooth kernel", e.SampleRelErr)
	}
	n := g.Rows * len(g.ColX)
	const samples = 60000
	rng := rand.New(rand.NewSource(5))
	acc := make([]float64, n*n)
	field := make([]float64, n)
	for s := 0; s < samples; s++ {
		e.Sample(field, rng)
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				acc[a*n+b] += field[a] * field[b]
			}
		}
	}
	dense := semiDense(g, semiKernel)
	worst := 0.0
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			got := acc[a*n+b] / samples
			if e := math.Abs(got - dense[a][b]); e > worst {
				worst = e
			}
		}
	}
	// MC noise at 60k samples is ~1/sqrt(60000) ≈ 0.4% of the unit
	// variance; 0.05 is a wide deterministic margin.
	if worst > 0.05 {
		t.Errorf("sample covariance drift = %g, want <= 0.05", worst)
	}
	t.Logf("sample covariance drift = %.3g over %d samples", worst, samples)
}

// TestSemiLongRangeKernelSamples pins the exact-error gate on the
// regime the mismatch kernel lives in: correlation length far beyond
// the array, where the min-wrap kink makes a band of cross-spectral
// matrices indefinite. The nuclear-mass bound (the 2-D embedding's
// gate) rejects such kernels by ~4e-2; the exact lag-domain error is
// orders of magnitude smaller because the clamped contributions
// cancel at in-lattice lags.
func TestSemiLongRangeKernelSamples(t *testing.T) {
	longKernel := func(d2 float64) float64 { return math.Exp(-math.Sqrt(d2) / 200) }
	g := SemiGrid{Rows: 32, DY: 1, ColX: []float64{0, 1.7, 3.1, 4.9, 7.2, 8.8}}
	e, err := NewSemiEmbedding(g, longKernel, EmbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !e.CanSample() {
		t.Fatalf("CanSample = false (SampleRelErr %g)", e.SampleRelErr)
	}
	if e.SampleRelErr == 0 {
		t.Fatal("SampleRelErr = 0: no spectrum was clamped, test exercises nothing")
	}
	t.Logf("SampleRelErr = %.3g", e.SampleRelErr)
	// The draws must still carry the target covariance: compare a few
	// entries against the dense kernel via sample moments.
	n := g.Rows * len(g.ColX)
	rng := rand.New(rand.NewSource(9))
	field := make([]float64, n)
	const samples = 20000
	pairs := [][2]int{{0, 0}, {0, 5}, {0, n - 1}, {17, 100}}
	acc := make([]float64, len(pairs))
	for s := 0; s < samples; s++ {
		e.Sample(field, rng)
		for i, p := range pairs {
			acc[i] += field[p[0]] * field[p[1]]
		}
	}
	dense := semiDense(g, longKernel)
	for i, p := range pairs {
		got := acc[i] / samples
		want := dense[p[0]][p[1]]
		if math.Abs(got-want) > 0.05 {
			t.Errorf("cov[%d][%d] = %g, want %g", p[0], p[1], got, want)
		}
	}
}

// TestSemiFactorPSD pins the two factorization routes: Cholesky on a
// definite matrix, eigen-clamp (with the clamped part reported) on an
// indefinite one.
func TestSemiFactorPSD(t *testing.T) {
	// Definite: diag(2, 3) plus small coupling.
	s := []float64{2, 0.5, 0.5, 3}
	f, nf := factorPSD(append([]float64(nil), s...), 2, 1)
	if nf != nil {
		t.Errorf("definite matrix clamped part %v, want nil", nf)
	}
	checkFactor(t, f, s, 2)

	// Indefinite: eigenvalues 3 and −1, eigenvector of −1 is
	// [1,−1]/√2, so the clamped part is [[0.5,−0.5],[−0.5,0.5]].
	s = []float64{1, 2, 2, 1}
	f, nf = factorPSD(append([]float64(nil), s...), 2, 1)
	wantN := []float64{0.5, -0.5, 0.5} // packed symmetric
	if nf == nil {
		t.Fatal("indefinite matrix clamped part nil")
	}
	for i, w := range wantN {
		if math.Abs(nf[i]-w) > 1e-12 {
			t.Errorf("clamped part[%d] = %g, want %g", i, nf[i], w)
		}
	}
	// F·Fᵀ must equal the clamped matrix: eigenvalue −1 → 0, so
	// clamp(s) = 1.5·[[1,1],[1,1]].
	want := []float64{1.5, 1.5, 1.5, 1.5}
	checkFactor(t, f, want, 2)
}

func checkFactor(t *testing.T, f, want []float64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := 0.0
			for k := 0; k < n; k++ {
				got += f[i*n+k] * f[j*n+k]
			}
			if math.Abs(got-want[i*n+j]) > 1e-10 {
				t.Errorf("F·Fᵀ[%d][%d] = %g, want %g", i, j, got, want[i*n+j])
			}
		}
	}
}

func TestJacobiEig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 8
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	vals, vecs := jacobiEig(append([]float64(nil), a...), n)
	// A·v_j = μ_j·v_j for every column.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			av := 0.0
			for k := 0; k < n; k++ {
				av += a[i*n+k] * vecs[k*n+j]
			}
			if math.Abs(av-vals[j]*vecs[i*n+j]) > 1e-9 {
				t.Fatalf("eigenpair %d: (A·v)[%d] = %g, μ·v = %g", j, i, av, vals[j]*vecs[i*n+j])
			}
		}
	}
}
