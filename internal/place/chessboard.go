package place

import (
	"fmt"
	"sort"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
)

// NewChessboard builds the maximum-dispersion chessboard placement of
// Burcea et al. [7]: the MSB capacitor occupies the "black squares"
// (i+j odd) of the array; the remaining cells form a rotated sublattice
// on which the next capacitor is again placed in chessboard fashion,
// and so on recursively down to C_1 and C_0.
//
// Following the paper's Table I note, [7] doubles the number of unit
// capacitors for odd N, so a 7-bit array reuses the 16x16 grid of the
// 8-bit array with every capacitor built from twice the unit cells
// (the returned matrix has Scale == 2).
func NewChessboard(bits int) (*ccmatrix.Matrix, error) {
	if err := checkBits(bits); err != nil {
		return nil, err
	}
	scale := 1
	if bits%2 == 1 {
		scale = 2
	}
	side := 1 << ((bits + bits%2) / 2) // 2^(N/2), or 2^((N+1)/2) when doubled
	m := ccmatrix.New(side, side, bits, scale)

	// Lattice points carry the original cell plus transformed (u, v)
	// coordinates used for the recursive parity split.
	type pt struct {
		cell geom.Cell
		u, v int
	}
	cur := make([]pt, 0, side*side)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			cur = append(cur, pt{cell: geom.Cell{Row: r, Col: c}, u: r, v: c})
		}
	}
	counts := ccmatrix.UnitCounts(bits)
	for k := bits; k >= 0; k-- {
		want := scale * counts[k]
		if k == 0 {
			// Everything that remains is C_0.
			if len(cur) != want {
				return nil, fmt.Errorf("place: chessboard %d-bit: %d cells left for C_0, want %d", bits, len(cur), want)
			}
			for _, p := range cur {
				m.Set(p.cell, 0)
			}
			break
		}
		var take, keep []pt
		for _, p := range cur {
			if ((p.u+p.v)%2+2)%2 == 1 { // odd sum; v may be negative after the rotation
				take = append(take, p)
			} else {
				keep = append(keep, p)
			}
		}
		if len(take) != want {
			// The parity split halves every lattice this recursion
			// produces for power-of-two squares; guard the invariant.
			return nil, fmt.Errorf("place: chessboard %d-bit: parity split for C_%d gave %d cells, want %d", bits, k, len(take), want)
		}
		for _, p := range take {
			m.Set(p.cell, k)
		}
		// Rotate-and-scale the even-sum sublattice: (u', v') =
		// ((u+v)/2, (u-v)/2) maps it back to a unit-spaced lattice.
		for i := range keep {
			u, v := keep[i].u, keep[i].v
			keep[i].u, keep[i].v = (u+v)/2, (u-v)/2
		}
		cur = keep
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("place: chessboard %d-bit: %w", bits, err)
	}
	return m, nil
}

// pairDemand describes how many unit cells a capacitor still needs
// during symmetric-pair assignment.
type pairDemand struct {
	bit   int // capacitor index, or ccmatrix.Dummy
	need  int // remaining unit cells
	total int // original demand, for largest-remaining-fraction scheduling
}

// assignSymmetricPairs deals the given cells to the demands in
// symmetric (cell, reflection) pairs, walking cells in the given order
// and choosing at each step the demand with the largest remaining
// fraction of its total (a smooth weighted round-robin, which
// interleaves capacitors chessboard-fashion). Self-reflective cells
// (the exact center of an odd-odd array) are given to the first demand
// with an odd remaining need.
//
// The cells slice must be closed under reflection within the matrix.
func assignSymmetricPairs(m *ccmatrix.Matrix, cells []geom.Cell, demands []pairDemand) error {
	need := 0
	for _, d := range demands {
		need += d.need
	}
	if need != len(cells) {
		return fmt.Errorf("place: pair assignment: %d cells for %d demanded units", len(cells), need)
	}
	// Self-reflective center first.
	for _, c := range cells {
		if c.Reflect(m.Rows, m.Cols) != c {
			continue
		}
		placed := false
		for i := range demands {
			if demands[i].need%2 == 1 {
				m.Set(c, demands[i].bit)
				demands[i].need--
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("place: pair assignment: self-reflective cell %v but all demands even", c)
		}
	}
	pick := func() int {
		best, bestFrac := -1, -1.0
		for i, d := range demands {
			if d.need < 2 {
				continue
			}
			frac := float64(d.need) / float64(d.total)
			if frac > bestFrac {
				best, bestFrac = i, frac
			}
		}
		return best
	}
	for _, c := range cells {
		if !m.IsEmpty(c) {
			continue
		}
		r := c.Reflect(m.Rows, m.Cols)
		if r == c || !m.IsEmpty(r) {
			continue
		}
		i := pick()
		if i >= 0 {
			m.Set(c, demands[i].bit)
			m.Set(r, demands[i].bit)
			demands[i].need -= 2
			continue
		}
		// Two single-unit demands left (C_1 and C_0): they share one
		// reflected pair, sitting diagonally opposite like the paper's
		// spiral center placement.
		first, second := -1, -1
		for j := range demands {
			if demands[j].need == 1 {
				if first < 0 {
					first = j
				} else if second < 0 {
					second = j
				}
			}
		}
		if first < 0 || second < 0 {
			return fmt.Errorf("place: pair assignment: spare cell %v with no remaining demand", c)
		}
		m.Set(c, demands[first].bit)
		m.Set(r, demands[second].bit)
		demands[first].need--
		demands[second].need--
	}
	for _, d := range demands {
		if d.need != 0 {
			return fmt.Errorf("place: pair assignment: C_%d left with %d unplaced units", d.bit, d.need)
		}
	}
	return nil
}

// interleavedOrder returns the cells sorted for dispersion-friendly
// dealing: alternating (row+col) parity classes, serpentine within a
// class, so consecutive deals land far apart.
func interleavedOrder(cells []geom.Cell) []geom.Cell {
	out := append([]geom.Cell(nil), cells...)
	sort.Slice(out, func(a, b int) bool {
		pa, pb := (out[a].Row+out[a].Col)%2, (out[b].Row+out[b].Col)%2
		if pa != pb {
			return pa > pb // odd-parity (black squares) first
		}
		if out[a].Row != out[b].Row {
			return out[a].Row < out[b].Row
		}
		if out[a].Row%2 == 0 {
			return out[a].Col < out[b].Col
		}
		return out[a].Col > out[b].Col
	})
	return out
}
