package place

import (
	"fmt"
	"math/rand"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
)

// NewRandomSymmetric builds a valid common-centroid placement with the
// unit cells of each capacitor scattered uniformly at random (in
// mirrored pairs). It is not a good layout — it serves as a naive
// baseline for comparisons and as a fuzzing source for property tests
// of the router, extractor and DRC, which must handle any valid
// placement.
func NewRandomSymmetric(bits int, seed int64) (*ccmatrix.Matrix, error) {
	if err := checkBits(bits); err != nil {
		return nil, err
	}
	rows, cols, dummies := ArraySize(bits)
	m := ccmatrix.New(rows, cols, bits, 1)
	rng := rand.New(rand.NewSource(seed))

	cells := make([]geom.Cell, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cells = append(cells, geom.Cell{Row: r, Col: c})
		}
	}
	rng.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })

	counts := ccmatrix.UnitCounts(bits)
	demands := make([]pairDemand, 0, bits+2)
	if dummies > 0 {
		demands = append(demands, pairDemand{bit: ccmatrix.Dummy, need: dummies, total: dummies})
	}
	for k := bits; k >= 0; k-- {
		demands = append(demands, pairDemand{bit: k, need: counts[k], total: counts[k]})
	}
	if err := assignSymmetricPairs(m, cells, demands); err != nil {
		return nil, fmt.Errorf("place: random symmetric: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("place: random symmetric: %w", err)
	}
	return m, nil
}
