package place

import (
	"fmt"
	"math"
	"sort"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
)

// BCParams parameterizes a block-chessboard layout (Sec. IV-A).
type BCParams struct {
	// CoreBits is k: capacitors C_0..C_k form the inner full-chessboard
	// core; C_(k+1)..C_N occupy the blocked outer corridor. Must be
	// even (the core is a square chessboard) and satisfy
	// 2 <= CoreBits <= bits-1.
	CoreBits int
	// BlockCells is the block granularity g: the number of consecutive
	// corridor cells assigned per block before alternating to another
	// capacitor. Larger blocks mean fewer, larger connected groups
	// (fewer vias, worse dispersion). Must be >= 1.
	BlockCells int
}

// DefaultBCParams returns the parameter grid the harness sweeps to
// report the paper's "best BC result" (several BC structures are
// considered, Fig. 4). Infeasible core sizes (whose symmetric padding
// would need more dummies than the array has) are filtered out.
func DefaultBCParams(bits int) []BCParams {
	rows, cols, dummies := ArraySize(bits)
	var out []BCParams
	for _, k := range []int{2, 4, 6} {
		if k > bits-1 {
			continue
		}
		if _, _, coreDummies, err := coreDims(rows, cols, 1<<k); err != nil || coreDummies > dummies {
			continue
		}
		for _, g := range []int{1, 2, 4, 8} {
			out = append(out, BCParams{CoreBits: k, BlockCells: g})
		}
	}
	return out
}

// coreDims picks the smallest centered, reflection-symmetric rectangle
// holding at least coreUnits cells inside a rows×cols grid. Side
// parities match the grid so the rectangle is exactly centered.
func coreDims(rows, cols, coreUnits int) (coreR, coreC, coreDummies int, err error) {
	coreR = parityMatchedSide(rows, int(math.Ceil(math.Sqrt(float64(coreUnits)))))
	coreC = parityMatchedSide(cols, (coreUnits+coreR-1)/coreR)
	for coreR*coreC < coreUnits {
		switch {
		case coreR <= coreC && coreR+2 <= rows:
			coreR += 2
		case coreC+2 <= cols:
			coreC += 2
		default:
			return 0, 0, 0, fmt.Errorf("place: block chessboard: core of %d units does not fit %dx%d", coreUnits, rows, cols)
		}
	}
	return coreR, coreC, coreR*coreC - coreUnits, nil
}

// NewBlockChessboard builds a block-chessboard placement: a centered
// full-chessboard core for C_0..C_k surrounded by an outer corridor in
// which C_(k+1)..C_N (and any dummies) are laid out in blocks of
// BlockCells cells, alternated in chessboard fashion along concentric
// rings, every assignment mirrored through the array center.
func NewBlockChessboard(bits int, p BCParams) (*ccmatrix.Matrix, error) {
	if err := checkBits(bits); err != nil {
		return nil, err
	}
	if p.CoreBits < 2 || p.CoreBits > bits-1 || p.CoreBits%2 != 0 {
		return nil, fmt.Errorf("place: block chessboard: core bits %d must be even and in 2..%d", p.CoreBits, bits-1)
	}
	if p.BlockCells < 1 {
		return nil, fmt.Errorf("place: block chessboard: block size %d must be >= 1", p.BlockCells)
	}
	rows, cols, dummies := ArraySize(bits)
	m := ccmatrix.New(rows, cols, bits, 1)
	counts := ccmatrix.UnitCounts(bits)

	// Core region: smallest centered rectangle with area >= 2^k whose
	// side parities match the grid (so it is reflection-symmetric).
	// On dummy-free even grids this is exactly the 2^(k/2) square.
	coreUnits := 1 << p.CoreBits
	coreR, coreC, coreDummies, err := coreDims(rows, cols, coreUnits)
	if err != nil {
		return nil, err
	}
	if coreDummies > dummies {
		return nil, fmt.Errorf("place: block chessboard: core padding needs %d dummies, array has %d", coreDummies, dummies)
	}
	r0, c0 := (rows-coreR)/2, (cols-coreC)/2

	inCore := func(c geom.Cell) bool {
		return c.Row >= r0 && c.Row < r0+coreR && c.Col >= c0 && c.Col < c0+coreC
	}

	// Fill the core: pure chessboard when it is an exact power-of-two
	// square; otherwise dispersed symmetric-pair dealing with the core
	// dummies folded in.
	if coreDummies == 0 && coreR == coreC && coreR&(coreR-1) == 0 {
		sub, err := NewChessboard(p.CoreBits)
		if err != nil {
			return nil, err
		}
		if sub.Rows != coreR || sub.Cols != coreC {
			return nil, fmt.Errorf("place: block chessboard: core chessboard is %dx%d, want %dx%d", sub.Rows, sub.Cols, coreR, coreC)
		}
		for r := 0; r < coreR; r++ {
			for c := 0; c < coreC; c++ {
				m.Set(geom.Cell{Row: r0 + r, Col: c0 + c}, sub.At(geom.Cell{Row: r, Col: c}))
			}
		}
	} else {
		var coreCells []geom.Cell
		for r := r0; r < r0+coreR; r++ {
			for c := c0; c < c0+coreC; c++ {
				coreCells = append(coreCells, geom.Cell{Row: r, Col: c})
			}
		}
		demands := make([]pairDemand, 0, p.CoreBits+2)
		if coreDummies > 0 {
			demands = append(demands, pairDemand{bit: ccmatrix.Dummy, need: coreDummies, total: coreDummies})
		}
		for k := p.CoreBits; k >= 0; k-- {
			demands = append(demands, pairDemand{bit: k, need: counts[k], total: counts[k]})
		}
		if err := assignSymmetricPairs(m, interleavedOrder(coreCells), demands); err != nil {
			return nil, fmt.Errorf("place: block chessboard core: %w", err)
		}
	}

	// Outer corridor: concentric rings around the core, walked by
	// angle, filled with g-cell blocks dealt largest-remaining-fraction
	// across C_(k+1)..C_N and the leftover dummies, each placement
	// mirrored through the center.
	var outer []geom.Cell
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cell := geom.Cell{Row: r, Col: c}
			if !inCore(cell) {
				outer = append(outer, cell)
			}
		}
	}
	cy, cx := float64(rows-1)/2, float64(cols-1)/2
	ring := func(c geom.Cell) int {
		dr := 0
		if c.Row < r0 {
			dr = r0 - c.Row
		} else if c.Row >= r0+coreR {
			dr = c.Row - (r0 + coreR - 1)
		}
		dc := 0
		if c.Col < c0 {
			dc = c0 - c.Col
		} else if c.Col >= c0+coreC {
			dc = c.Col - (c0 + coreC - 1)
		}
		if dr > dc {
			return dr
		}
		return dc
	}
	angle := func(c geom.Cell) float64 {
		a := math.Atan2(float64(c.Row)-cy, float64(c.Col)-cx)
		if a < 0 {
			a += 2 * math.Pi
		}
		return a
	}
	sort.Slice(outer, func(a, b int) bool {
		ra, rb := ring(outer[a]), ring(outer[b])
		if ra != rb {
			return ra < rb
		}
		aa, ab := angle(outer[a]), angle(outer[b])
		if aa != ab {
			return aa < ab
		}
		if outer[a].Row != outer[b].Row {
			return outer[a].Row < outer[b].Row
		}
		return outer[a].Col < outer[b].Col
	})

	outerDummies := dummies - coreDummies
	demands := make([]pairDemand, 0, bits-p.CoreBits+1)
	for k := bits; k > p.CoreBits; k-- {
		demands = append(demands, pairDemand{bit: k, need: counts[k], total: counts[k]})
	}
	if outerDummies > 0 {
		demands = append(demands, pairDemand{bit: ccmatrix.Dummy, need: outerDummies, total: outerDummies})
	}
	if err := assignBlocks(m, outer, demands, p.BlockCells); err != nil {
		return nil, fmt.Errorf("place: block chessboard corridor: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("place: block chessboard %d-bit %+v: %w", bits, p, err)
	}
	return m, nil
}

// parityMatchedSide returns the smallest side length s >= want with
// s ≡ dim (mod 2), clamped to dim. A parity-matched side keeps the
// centered rectangle reflection-symmetric within the dim-cell grid.
func parityMatchedSide(dim, want int) int {
	s := want
	if s < 1 {
		s = 1
	}
	if s%2 != dim%2 {
		s++
	}
	if s > dim {
		s = dim
	}
	return s
}

// assignBlocks deals cells to demands in blocks of g consecutive cells
// along the walk order, mirroring every cell through the array center.
// Each (cell, reflection) pair counts 2 units toward the active block.
func assignBlocks(m *ccmatrix.Matrix, walk []geom.Cell, demands []pairDemand, g int) error {
	need := 0
	for _, d := range demands {
		need += d.need
	}
	avail := 0
	for _, c := range walk {
		if m.IsEmpty(c) {
			avail++
		}
	}
	if need != avail {
		return fmt.Errorf("place: block assignment: %d empty cells for %d demanded units", avail, need)
	}
	cur := -1      // index into demands of the active block's capacitor
	remaining := 0 // cells left in the active block
	pick := func() int {
		best, bestFrac := -1, -1.0
		for i, d := range demands {
			if d.need < 2 {
				continue
			}
			frac := float64(d.need) / float64(d.total)
			if frac > bestFrac {
				best, bestFrac = i, frac
			}
		}
		return best
	}
	for _, c := range walk {
		if !m.IsEmpty(c) {
			continue
		}
		r := c.Reflect(m.Rows, m.Cols)
		if r == c {
			return fmt.Errorf("place: block assignment: unexpected self-reflective corridor cell %v", c)
		}
		if !m.IsEmpty(r) {
			return fmt.Errorf("place: block assignment: reflection %v of %v already filled", r, c)
		}
		if remaining <= 0 || cur < 0 || demands[cur].need < 2 {
			cur = pick()
			if cur < 0 {
				return fmt.Errorf("place: block assignment: spare cell %v with no remaining demand", c)
			}
			// A block is g contiguous corridor cells; its mirror image
			// contributes another g, so each block consumes 2g units.
			remaining = 2 * g
		}
		m.Set(c, demands[cur].bit)
		m.Set(r, demands[cur].bit)
		demands[cur].need -= 2
		remaining -= 2
	}
	for _, d := range demands {
		if d.need != 0 {
			return fmt.Errorf("place: block assignment: C_%d left with %d unplaced units", d.bit, d.need)
		}
	}
	return nil
}
