package place

import (
	"fmt"
	"math"
	"math/rand"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
)

// AnnealConfig parameterizes the simulated-annealing baseline that
// stands in for the stochastic common-centroid generator of Lin et
// al. [1] (see DESIGN.md, substitutions). The cost balances matching
// quality (dispersion) against estimated routing parasitics
// (per-capacitor bounding-box wirelength), the two objectives [1]
// optimizes.
type AnnealConfig struct {
	// Seed makes the run deterministic.
	Seed int64
	// Moves is the number of proposed symmetric-pair swaps; 0 selects
	// a size-scaled default.
	Moves int
	// WDispersion weighs (negative) mean dispersion in the cost.
	WDispersion float64
	// WWirelength weighs the routing-parasitic proxy: the (negative)
	// fraction of same-capacitor neighbor adjacencies, which tracks
	// connected-group fragmentation and hence trunk/via counts.
	WWirelength float64
	// TStart and TEnd bound the geometric cooling schedule.
	TStart, TEnd float64
}

// DefaultAnnealConfig returns the configuration used by the harness.
// The weights place the baseline where [1] sits in the paper's tables:
// better dispersion (INL/DNL) than the spiral, but less fragmentation
// — and therefore lower routing resistance — than the pure chessboard.
func DefaultAnnealConfig() AnnealConfig {
	return AnnealConfig{
		Seed:        1,
		WDispersion: 1.0,
		WWirelength: 2.0,
		TStart:      0.30,
		TEnd:        0.001,
	}
}

// annealState carries the incrementally-maintained cost terms: for
// each capacitor its dispersion contribution and bounding-box
// wirelength, so a swap only recomputes the (at most four) capacitors
// it touches.
type annealState struct {
	m      *ccmatrix.Matrix
	arrGyr float64   // radius of gyration^2 of the full array
	gyr    []float64 // per-cap mean squared distance from center
	adj    []float64 // per-cap same-bit 4-neighbor pair count
	counts []int
}

func newAnnealState(m *ccmatrix.Matrix) *annealState {
	s := &annealState{
		m:      m,
		gyr:    make([]float64, m.Bits+1),
		adj:    make([]float64, m.Bits+1),
		counts: make([]int, m.Bits+1),
	}
	cr, cc := m.Center()
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			dr, dc := float64(r)-cr, float64(c)-cc
			s.arrGyr += dr*dr + dc*dc
		}
	}
	s.arrGyr /= float64(m.Rows * m.Cols)
	for k := 0; k <= m.Bits; k++ {
		s.recompute(k)
	}
	return s
}

// recompute rescans capacitor k's cells and refreshes its cost terms.
func (s *annealState) recompute(k int) {
	cells := s.m.CellsOf(k)
	s.counts[k] = len(cells)
	if len(cells) == 0 {
		s.gyr[k], s.adj[k] = 0, 0
		return
	}
	cr, cc := s.m.Center()
	sum := 0.0
	adj := 0
	for _, c := range cells {
		dr, dc := float64(c.Row)-cr, float64(c.Col)-cc
		sum += dr*dr + dc*dc
		// Count east and north same-bit neighbors so each adjacent
		// pair counts once; both endpoints carry bit k, so the count
		// partitions cleanly per capacitor.
		if e := c.Add(0, 1); e.In(s.m.Rows, s.m.Cols) && s.m.At(e) == k {
			adj++
		}
		if nn := c.Add(1, 0); nn.In(s.m.Rows, s.m.Cols) && s.m.At(nn) == k {
			adj++
		}
	}
	s.gyr[k] = sum / float64(len(cells))
	s.adj[k] = float64(adj)
}

// cost evaluates the current placement from the cached per-cap terms.
func (s *annealState) cost(wD, wW float64) float64 {
	dispSum, dispW := 0.0, 0.0
	adjSum := 0.0
	for k := 0; k <= s.m.Bits; k++ {
		if s.counts[k] == 0 {
			continue
		}
		if k >= 2 {
			n := float64(s.counts[k])
			dispSum += n * math.Sqrt(s.gyr[k]/s.arrGyr)
			dispW += n
		}
		adjSum += s.adj[k]
	}
	disp := 0.0
	if dispW > 0 {
		disp = dispSum / dispW
	}
	// adjSum maxes out near 2*cells (a fully clustered placement).
	adjFrac := adjSum / (2 * float64(s.m.Rows*s.m.Cols))
	return -wD*disp - wW*adjFrac
}

// NewAnnealed builds the [1]-style baseline placement by annealing
// symmetric-pair swaps from a spiral seed. Like the paper (Table I
// note 2: "7-bit, 9-bit DACs not reported in [1]"), only even bit
// counts are supported — the method needs the dummy-free square array.
func NewAnnealed(bits int, cfg AnnealConfig) (*ccmatrix.Matrix, error) {
	if err := checkBits(bits); err != nil {
		return nil, err
	}
	if bits%2 != 0 {
		return nil, fmt.Errorf("place: annealed baseline supports even bit counts only (got %d); the paper's [1] reports none for odd N", bits)
	}
	m, err := NewSpiral(bits)
	if err != nil {
		return nil, err
	}
	if cfg.WDispersion == 0 && cfg.WWirelength == 0 {
		def := DefaultAnnealConfig()
		cfg.WDispersion, cfg.WWirelength = def.WDispersion, def.WWirelength
	}
	if cfg.TStart <= 0 {
		cfg.TStart = 0.30
	}
	if cfg.TEnd <= 0 || cfg.TEnd >= cfg.TStart {
		cfg.TEnd = cfg.TStart / 300
	}
	moves := cfg.Moves
	if moves <= 0 {
		moves = 150 * m.Rows * m.Cols
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	st := newAnnealState(m)
	cur := st.cost(cfg.WDispersion, cfg.WWirelength)
	alpha := math.Pow(cfg.TEnd/cfg.TStart, 1/float64(moves))
	temp := cfg.TStart
	pair := func(v int) int { // capacitor whose cells mirror v's under reflection
		switch v {
		case 0:
			return 1
		case 1:
			return 0
		default:
			return v
		}
	}
	for i := 0; i < moves; i++ {
		temp *= alpha
		a := geom.Cell{Row: rng.Intn(m.Rows), Col: rng.Intn(m.Cols)}
		b := geom.Cell{Row: rng.Intn(m.Rows), Col: rng.Intn(m.Cols)}
		if a == b || m.At(a) == m.At(b) {
			continue
		}
		ra, rb := a.Reflect(m.Rows, m.Cols), b.Reflect(m.Rows, m.Cols)
		// Swapping a cell with (the mirror image of) its own partner
		// cell would break the pairing bookkeeping; skip those moves.
		if a == rb || b == ra {
			continue
		}
		va, vb := m.At(a), m.At(b)
		affected := uniqueBits(va, vb, pair(va), pair(vb))
		saved := make(map[int][3]float64, len(affected))
		for _, k := range affected {
			saved[k] = [3]float64{st.gyr[k], st.adj[k], float64(st.counts[k])}
		}
		m.SwapCells(a, b)
		m.SwapCells(ra, rb)
		for _, k := range affected {
			st.recompute(k)
		}
		next := st.cost(cfg.WDispersion, cfg.WWirelength)
		if next <= cur || rng.Float64() < math.Exp(-(next-cur)/temp) {
			cur = next
			continue
		}
		m.SwapCells(a, b)
		m.SwapCells(ra, rb)
		for _, k := range affected {
			v := saved[k]
			st.gyr[k], st.adj[k], st.counts[k] = v[0], v[1], int(v[2])
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("place: annealed %d-bit: %w", bits, err)
	}
	if !m.IsSymmetric() {
		return nil, fmt.Errorf("place: annealed %d-bit: symmetry lost during annealing", bits)
	}
	return m, nil
}

// uniqueBits returns the distinct non-negative capacitor indices among
// the arguments (dummy cells are never swapped in even-N arrays, but
// negative markers are filtered defensively).
func uniqueBits(vals ...int) []int {
	out := vals[:0]
	for _, v := range vals {
		if v < 0 {
			continue
		}
		dup := false
		for _, u := range out {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}
