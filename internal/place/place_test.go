package place

import (
	"testing"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/geom"
)

func TestArraySize(t *testing.T) {
	tests := []struct {
		bits, rows, cols, dummies int
	}{
		{6, 8, 8, 0},
		{7, 12, 11, 4},
		{8, 16, 16, 0},
		{9, 23, 23, 17},
		{10, 32, 32, 0},
	}
	for _, tt := range tests {
		r, c, d := ArraySize(tt.bits)
		if r != tt.rows || c != tt.cols || d != tt.dummies {
			t.Errorf("ArraySize(%d) = (%d,%d,%d), want (%d,%d,%d)",
				tt.bits, r, c, d, tt.rows, tt.cols, tt.dummies)
		}
	}
}

func TestArraySizeInvariant(t *testing.T) {
	// r*s always covers 2^N, and dummies = r*s - 2^N (Eq. 17).
	for bits := MinBits; bits <= MaxBits; bits++ {
		r, c, d := ArraySize(bits)
		if r*c < ccmatrix.TotalUnits(bits) {
			t.Errorf("bits=%d: %dx%d cannot hold %d units", bits, r, c, ccmatrix.TotalUnits(bits))
		}
		if d != r*c-ccmatrix.TotalUnits(bits) {
			t.Errorf("bits=%d: dummy count inconsistent", bits)
		}
		if d >= r { // dummies must stay a small fraction
			t.Errorf("bits=%d: %d dummies for %d rows looks wrong", bits, d, r)
		}
	}
}

func TestSpiralOrderCoversGrid(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {12, 11}, {23, 23}, {1, 5}, {5, 1}, {2, 2}} {
		rows, cols := dims[0], dims[1]
		order := spiralOrder(rows, cols)
		if len(order) != rows*cols {
			t.Fatalf("%dx%d: spiral emitted %d cells", rows, cols, len(order))
		}
		seen := map[geom.Cell]bool{}
		for _, c := range order {
			if !c.In(rows, cols) {
				t.Fatalf("%dx%d: spiral emitted out-of-grid cell %v", rows, cols, c)
			}
			if seen[c] {
				t.Fatalf("%dx%d: spiral repeated cell %v", rows, cols, c)
			}
			seen[c] = true
		}
	}
}

func TestSpiralOrderStartsAtCenter(t *testing.T) {
	order := spiralOrder(8, 8)
	if order[0] != (geom.Cell{Row: 4, Col: 4}) {
		t.Errorf("spiral starts at %v", order[0])
	}
	// Later cells are on average farther from the center.
	early, late := 0.0, 0.0
	for i, c := range order {
		d := c.Euclid(geom.Cell{Row: 4, Col: 4})
		if i < 16 {
			early += d
		} else if i >= 48 {
			late += d
		}
	}
	if early/16 >= late/16 {
		t.Error("spiral order does not move outward")
	}
}

func checkPlacement(t *testing.T, m *ccmatrix.Matrix, bits int) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	if !m.IsSymmetric() {
		t.Fatal("placement not common-centroid symmetric")
	}
	// Every multi-unit capacitor's centroid is exactly at the array
	// center (half-cell slack for parity effects in dummy-padded arrays).
	if off := m.MaxCentroidOffset(2); off > 1e-9 {
		t.Errorf("max centroid offset = %g, want 0", off)
	}
}

func TestSpiralPlacementAllBits(t *testing.T) {
	for bits := MinBits; bits <= 10; bits++ {
		m, err := NewSpiral(bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		checkPlacement(t, m, bits)
		if m.Scale != 1 {
			t.Errorf("bits=%d: spiral must not scale units", bits)
		}
	}
}

func TestSpiralC0C1NearCenter(t *testing.T) {
	m, err := NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	c0 := m.CellsOf(0)
	c1 := m.CellsOf(1)
	if len(c0) != 1 || len(c1) != 1 {
		t.Fatal("C_0/C_1 must be single units")
	}
	// Diagonally opposite around the center of the 8x8 array.
	if c0[0].Reflect(8, 8) != c1[0] {
		t.Errorf("C_0 %v and C_1 %v are not reflections", c0[0], c1[0])
	}
	cr, cc := m.Center()
	if c0[0].Euclid(geom.Cell{Row: int(cr), Col: int(cc)}) > 2 {
		t.Errorf("C_0 at %v too far from center", c0[0])
	}
}

func TestSpiralHighAdjacency(t *testing.T) {
	// The point of the spiral: many same-bit neighbor pairs.
	s, _ := NewSpiral(6)
	cb, err := NewChessboard(6)
	if err != nil {
		t.Fatal(err)
	}
	if s.AdjacencySameBit() <= 3*cb.AdjacencySameBit() {
		t.Errorf("spiral adjacency %d not >> chessboard %d",
			s.AdjacencySameBit(), cb.AdjacencySameBit())
	}
}

func TestSpiralDummiesOnPeriphery(t *testing.T) {
	m, err := NewSpiral(7) // 12x11 with 4 dummies
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.CellsOf(ccmatrix.Dummy) {
		onEdge := c.Row == 0 || c.Row == m.Rows-1 || c.Col == 0 || c.Col == m.Cols-1
		if !onEdge {
			t.Errorf("dummy at %v is not on the array periphery", c)
		}
	}
}

func TestChessboardPlacementEvenBits(t *testing.T) {
	for _, bits := range []int{4, 6, 8, 10} {
		m, err := NewChessboard(bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if m.Scale != 1 {
			t.Errorf("bits=%d: even-N chessboard must not double units", bits)
		}
		_, dummies, _ := m.Counts()
		if dummies != 0 {
			t.Errorf("bits=%d: chessboard has %d dummies, want 0", bits, dummies)
		}
	}
}

func TestChessboardDoublesOddBits(t *testing.T) {
	// Paper Table I note 1: [7] doubles units for odd N, reusing the
	// next even array.
	for _, bits := range []int{7, 9} {
		m, err := NewChessboard(bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if m.Scale != 2 {
			t.Fatalf("bits=%d: Scale = %d, want 2", bits, m.Scale)
		}
		even, err := NewChessboard(bits + 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.Rows != even.Rows || m.Cols != even.Cols {
			t.Errorf("bits=%d grid %dx%d, want same as %d-bit (%dx%d)",
				bits, m.Rows, m.Cols, bits+1, even.Rows, even.Cols)
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChessboardMSBOnBlackSquares(t *testing.T) {
	m, err := NewChessboard(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.CellsOf(6) {
		if (c.Row+c.Col)%2 != 1 {
			t.Fatalf("C_6 cell %v not on a black square", c)
		}
	}
	if len(m.CellsOf(6)) != 32 {
		t.Fatalf("C_6 has %d cells, want 32", len(m.CellsOf(6)))
	}
}

func TestChessboardZeroAdjacency(t *testing.T) {
	// Chessboard placements have no bottom-plate connected groups
	// larger than one cell (paper Sec. IV-B2) for the big capacitors.
	m, err := NewChessboard(8)
	if err != nil {
		t.Fatal(err)
	}
	adj := m.AdjacencySameBit()
	// The recursion leaves only the final few cells possibly adjacent.
	if adj > 4 {
		t.Errorf("chessboard adjacency = %d, want near zero", adj)
	}
}

func TestChessboardHighDispersion(t *testing.T) {
	cb, _ := NewChessboard(8)
	sp, _ := NewSpiral(8)
	if cb.MeanDispersion() <= sp.MeanDispersion() {
		t.Errorf("chessboard dispersion %g not above spiral %g",
			cb.MeanDispersion(), sp.MeanDispersion())
	}
}

func TestBlockChessboardAllBits(t *testing.T) {
	for bits := 5; bits <= 10; bits++ {
		for _, p := range DefaultBCParams(bits) {
			m, err := NewBlockChessboard(bits, p)
			if err != nil {
				t.Fatalf("bits=%d %+v: %v", bits, p, err)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("bits=%d %+v: %v", bits, p, err)
			}
			// The blocked corridor capacitors are mirrored pair-by-pair:
			// their cell sets must be closed under point reflection and
			// exactly centered. The chessboard core trades exact
			// symmetry for dispersion (as in [7]); its centroids may be
			// off by up to one cell pitch.
			for k := p.CoreBits + 1; k <= bits; k++ {
				cells := map[geom.Cell]bool{}
				for _, c := range m.CellsOf(k) {
					cells[c] = true
				}
				for c := range cells {
					if !cells[c.Reflect(m.Rows, m.Cols)] {
						t.Fatalf("bits=%d %+v: corridor C_%d cell %v lacks its mirror", bits, p, k, c)
					}
				}
				if off := m.CentroidOffset(k); off > 1e-9 {
					t.Fatalf("bits=%d %+v: corridor C_%d centroid offset %g", bits, p, k, off)
				}
			}
			// Core capacitors: the chessboard recursion leaves its
			// smallest capacitors somewhat off-center (as in [7]); the
			// error must still be bounded by a few cell pitches.
			for k := 2; k <= p.CoreBits; k++ {
				if off := m.CentroidOffset(k); off > 3.0 {
					t.Fatalf("bits=%d %+v: core C_%d centroid offset %g > 3 pitches", bits, p, k, off)
				}
			}
		}
	}
}

func TestBlockChessboardCoreHoldsLSBs(t *testing.T) {
	m, err := NewBlockChessboard(6, BCParams{CoreBits: 4, BlockCells: 2})
	if err != nil {
		t.Fatal(err)
	}
	// C_0..C_4 confined to the centered 4x4 core of the 8x8 array.
	for k := 0; k <= 4; k++ {
		for _, c := range m.CellsOf(k) {
			if c.Row < 2 || c.Row > 5 || c.Col < 2 || c.Col > 5 {
				t.Errorf("C_%d cell %v outside the 4x4 core", k, c)
			}
		}
	}
	// C_5, C_6 confined to the corridor.
	for k := 5; k <= 6; k++ {
		for _, c := range m.CellsOf(k) {
			if c.Row >= 2 && c.Row <= 5 && c.Col >= 2 && c.Col <= 5 {
				t.Errorf("C_%d cell %v inside the core", k, c)
			}
		}
	}
}

func TestBlockChessboardGranularityTradesAdjacency(t *testing.T) {
	coarse, err := NewBlockChessboard(8, BCParams{CoreBits: 4, BlockCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := NewBlockChessboard(8, BCParams{CoreBits: 4, BlockCells: 1})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.AdjacencySameBit() <= fine.AdjacencySameBit() {
		t.Errorf("coarse blocks adjacency %d not above fine %d",
			coarse.AdjacencySameBit(), fine.AdjacencySameBit())
	}
	if coarse.MeanDispersion() > fine.MeanDispersion()+0.05 {
		t.Errorf("coarse dispersion %g unexpectedly above fine %g",
			coarse.MeanDispersion(), fine.MeanDispersion())
	}
}

func TestBlockChessboardRejectsBadParams(t *testing.T) {
	for _, p := range []BCParams{
		{CoreBits: 3, BlockCells: 2}, // odd core
		{CoreBits: 0, BlockCells: 2},
		{CoreBits: 6, BlockCells: 2}, // == bits for 6-bit? no: bits-1=5, 6 > 5
		{CoreBits: 4, BlockCells: 0},
	} {
		if _, err := NewBlockChessboard(6, p); err == nil {
			t.Errorf("params %+v must be rejected", p)
		}
	}
}

func TestBlockChessboardSitsBetween(t *testing.T) {
	// BC dispersion between spiral and chessboard; same for adjacency.
	sp, _ := NewSpiral(8)
	cb, _ := NewChessboard(8)
	bc, err := NewBlockChessboard(8, BCParams{CoreBits: 4, BlockCells: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !(bc.MeanDispersion() > sp.MeanDispersion() && bc.MeanDispersion() < cb.MeanDispersion()) {
		t.Errorf("dispersion ordering violated: sp=%g bc=%g cb=%g",
			sp.MeanDispersion(), bc.MeanDispersion(), cb.MeanDispersion())
	}
	if !(bc.AdjacencySameBit() < sp.AdjacencySameBit() && bc.AdjacencySameBit() > cb.AdjacencySameBit()) {
		t.Errorf("adjacency ordering violated: sp=%d bc=%d cb=%d",
			sp.AdjacencySameBit(), bc.AdjacencySameBit(), cb.AdjacencySameBit())
	}
}

func TestAnnealedEvenBits(t *testing.T) {
	for _, bits := range []int{4, 6, 8} {
		m, err := NewAnnealed(bits, AnnealConfig{Seed: 1, Moves: 4000})
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if !m.IsSymmetric() {
			t.Fatalf("bits=%d: symmetry lost", bits)
		}
	}
}

func TestAnnealedRejectsOddBits(t *testing.T) {
	if _, err := NewAnnealed(7, AnnealConfig{Seed: 1, Moves: 10}); err == nil {
		t.Fatal("odd bits must be rejected, as in the paper's [1] columns")
	}
}

func TestAnnealedImprovesDispersionOverSpiral(t *testing.T) {
	sp, _ := NewSpiral(6)
	an, err := NewAnnealed(6, AnnealConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if an.MeanDispersion() <= sp.MeanDispersion() {
		t.Errorf("annealed dispersion %g did not improve on spiral seed %g",
			an.MeanDispersion(), sp.MeanDispersion())
	}
}

func TestAnnealedDeterministic(t *testing.T) {
	a, err := NewAnnealed(6, AnnealConfig{Seed: 42, Moves: 3000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAnnealed(6, AnnealConfig{Seed: 42, Moves: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must reproduce the same placement")
	}
}

func TestBitsRangeChecks(t *testing.T) {
	if _, err := NewSpiral(1); err == nil {
		t.Error("bits below MinBits must be rejected")
	}
	if _, err := NewSpiral(13); err == nil {
		t.Error("bits above MaxBits must be rejected")
	}
	if _, err := NewChessboard(1); err == nil {
		t.Error("chessboard bits below MinBits must be rejected")
	}
}

func TestStyleString(t *testing.T) {
	for s, want := range map[Style]string{
		Spiral:          "spiral",
		Chessboard:      "chessboard",
		BlockChessboard: "block-chessboard",
		Annealed:        "annealed",
		Style(99):       "style(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Style(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
