// Package place implements the constructive common-centroid placement
// styles of the paper (Sec. IV-A): the new spiral placement, the
// chessboard placement of Burcea et al. [7], the new block-chessboard
// (BC) family, and a simplified simulated-annealing baseline standing
// in for the stochastic generator of Lin et al. [1].
package place

import (
	"fmt"
	"math"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/fault"
	"ccdac/internal/geom"
)

// Style selects a placement algorithm.
type Style int

const (
	// Spiral is the paper's new low-via placement (Sec. IV-A).
	Spiral Style = iota
	// Chessboard is the maximum-dispersion placement of [7].
	Chessboard
	// BlockChessboard is the paper's dispersion/via tradeoff family.
	BlockChessboard
	// Annealed is the simulated-annealing baseline standing in for [1].
	Annealed
)

func (s Style) String() string {
	switch s {
	case Spiral:
		return "spiral"
	case Chessboard:
		return "chessboard"
	case BlockChessboard:
		return "block-chessboard"
	case Annealed:
		return "annealed"
	}
	return fmt.Sprintf("style(%d)", int(s))
}

// MinBits and MaxBits bound the supported DAC resolutions. The lower
// bound keeps the capacitor list non-degenerate; the upper bound keeps
// the O(4^N) covariance evaluation tractable.
const (
	MinBits = 2
	MaxBits = 12
)

// ArraySize computes the common-centroid array dimensions per Eq. 17:
// r = ceil(sqrt(2^N)), s = ceil(2^N / r), with D_C = r*s - 2^N dummy
// cells. For even N this gives a dummy-free 2^(N/2) square.
func ArraySize(bits int) (rows, cols, dummies int) {
	total := ccmatrix.TotalUnits(bits)
	rows = int(math.Ceil(math.Sqrt(float64(total))))
	cols = (total + rows - 1) / rows // ceil(total/rows)
	dummies = rows*cols - total
	return rows, cols, dummies
}

func checkBits(bits int) error {
	if err := fault.Check(fault.StagePlace); err != nil {
		return fmt.Errorf("place: %w", err)
	}
	if bits < MinBits || bits > MaxBits {
		return fmt.Errorf("place: bits %d outside supported range %d..%d", bits, MinBits, MaxBits)
	}
	return nil
}

// centerPair returns the two mutually-reflected cells nearest the array
// center used for C_1 and C_0, or ok=false when the array has a single
// self-reflective center cell (odd rows and odd cols).
func centerPair(rows, cols int) (a, b geom.Cell, ok bool) {
	if rows%2 == 1 && cols%2 == 1 {
		return geom.Cell{}, geom.Cell{}, false
	}
	// With at least one even dimension, the cell at (rows/2, cols/2)
	// and its reflection are distinct cells hugging the center.
	a = geom.Cell{Row: rows / 2, Col: cols / 2}
	b = a.Reflect(rows, cols)
	return a, b, true
}

// spiralOrder enumerates every cell of a rows×cols grid in an outward
// square spiral from the center. Cells of the (possibly rectangular)
// grid are emitted exactly once; spiral arms that leave the grid are
// clipped.
func spiralOrder(rows, cols int) []geom.Cell {
	total := rows * cols
	out := make([]geom.Cell, 0, total)
	seen := make([]bool, total)
	emit := func(c geom.Cell) {
		if c.In(rows, cols) && !seen[c.Row*cols+c.Col] {
			seen[c.Row*cols+c.Col] = true
			out = append(out, c)
		}
	}
	// Start at the cell at/just above-right of the geometric center so
	// the first ring hugs the common-centroid point.
	cur := geom.Cell{Row: rows / 2, Col: cols / 2}
	emit(cur)
	// Directions W, S, E, N with the classic 1,1,2,2,3,3,... arm lengths.
	dirs := [4][2]int{{0, -1}, {-1, 0}, {0, 1}, {1, 0}}
	arm := 1
	for d := 0; len(out) < total; d = (d + 1) % 4 {
		for step := 0; step < arm; step++ {
			cur = cur.Add(dirs[d][0], dirs[d][1])
			emit(cur)
		}
		if d%2 == 1 {
			arm++
		}
		if arm > 4*(rows+cols) {
			// Defensive: cannot happen for positive dims, but guarantees
			// termination if the invariants are ever violated.
			panic("place: spiral failed to cover grid")
		}
	}
	return out
}

// NewSpiral builds the paper's spiral placement: C_0 and C_1 sit
// diagonally opposite at the center; C_2..C_N are placed outward along
// a spiral, each unit cell mirrored to its point reflection to keep the
// common-centroid property; dummies (odd N) end up on the outermost
// ring.
func NewSpiral(bits int) (*ccmatrix.Matrix, error) {
	if err := checkBits(bits); err != nil {
		return nil, err
	}
	rows, cols, _ := ArraySize(bits)
	m := ccmatrix.New(rows, cols, bits, 1)
	order := spiralOrder(rows, cols)

	if a, b, ok := centerPair(rows, cols); ok {
		m.Set(a, 1)
		m.Set(b, 0)
	} else {
		// Odd-odd grid (e.g. 23x23 for 9 bits): the self-reflective
		// center cell becomes a dummy so C_1/C_0 and every later
		// capacitor can stay in exact reflection pairs; C_1 and C_0
		// take the first spiral pair hugging the center.
		center := geom.Cell{Row: rows / 2, Col: cols / 2}
		m.Set(center, ccmatrix.Dummy)
		for _, c := range order {
			r := c.Reflect(rows, cols)
			if m.IsEmpty(c) && m.IsEmpty(r) && c != r {
				m.Set(c, 1)
				m.Set(r, 0)
				break
			}
		}
	}

	counts := ccmatrix.UnitCounts(bits)
	bit := 2
	need := counts[bit]
	for _, c := range order {
		if bit > bits {
			break
		}
		if !m.IsEmpty(c) {
			continue
		}
		r := c.Reflect(rows, cols)
		if r == c || !m.IsEmpty(r) {
			continue
		}
		m.Set(c, bit)
		m.Set(r, bit)
		need -= 2
		for bit <= bits && need <= 0 {
			bit++
			if bit <= bits {
				need = counts[bit]
			}
		}
	}
	// Remaining cells (odd N) are dummies on the periphery.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cell := geom.Cell{Row: r, Col: c}
			if m.IsEmpty(cell) {
				m.Set(cell, ccmatrix.Dummy)
			}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("place: spiral %d-bit: %w", bits, err)
	}
	return m, nil
}
