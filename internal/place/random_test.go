package place

import (
	"testing"
)

func TestRandomSymmetricValidAllBits(t *testing.T) {
	for bits := MinBits; bits <= 10; bits++ {
		for seed := int64(1); seed <= 3; seed++ {
			m, err := NewRandomSymmetric(bits, seed)
			if err != nil {
				t.Fatalf("bits=%d seed=%d: %v", bits, seed, err)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("bits=%d seed=%d: %v", bits, seed, err)
			}
			if !m.IsSymmetric() {
				t.Fatalf("bits=%d seed=%d: not symmetric", bits, seed)
			}
		}
	}
}

func TestRandomSymmetricDiffersAcrossSeeds(t *testing.T) {
	a, err := NewRandomSymmetric(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomSymmetric(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("different seeds produced identical placements")
	}
	c, err := NewRandomSymmetric(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != c.String() {
		t.Error("same seed must reproduce the placement")
	}
}

func TestRandomSymmetricDispersionBetweenExtremes(t *testing.T) {
	// A random scatter disperses more than the spiral's rings but has
	// no reason to beat the chessboard.
	rnd, err := NewRandomSymmetric(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := NewSpiral(8)
	cb, _ := NewChessboard(8)
	if rnd.MeanDispersion() <= sp.MeanDispersion() {
		t.Errorf("random dispersion %g not above spiral %g",
			rnd.MeanDispersion(), sp.MeanDispersion())
	}
	if rnd.MeanDispersion() > cb.MeanDispersion()*1.05 {
		t.Errorf("random dispersion %g implausibly above chessboard %g",
			rnd.MeanDispersion(), cb.MeanDispersion())
	}
}
