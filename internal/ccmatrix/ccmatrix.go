// Package ccmatrix represents the gridded common-centroid matrix of
// unit capacitors (paper Sec. II-C) and the geometric quality metrics
// defined over it: per-capacitor centroid error and dispersion.
//
// An N-bit binary-weighted DAC uses N+1 capacitors C_0..C_N with unit
// counts n_0 = n_1 = 1 and n_k = 2^(k-1) for k >= 2 (so C_1 also has
// one unit); the total is 2^N unit cells (Eq. 1). C_0 is the
// always-grounded terminating capacitor.
package ccmatrix

import (
	"encoding/binary"
	"fmt"
	"math"

	"ccdac/internal/geom"
)

// Dummy marks a cell occupied by a dummy capacitor (odd-N fill).
const Dummy = -1

// Empty marks an unassigned cell; a valid placement has none.
const Empty = -2

// UnitCounts returns the unit-cell counts [n_0, ..., n_N] for an N-bit
// binary-weighted DAC: [1, 1, 2, 4, ..., 2^(N-1)].
func UnitCounts(bits int) []int {
	n := make([]int, bits+1)
	n[0], n[1] = 1, 1
	for k := 2; k <= bits; k++ {
		n[k] = 1 << (k - 1)
	}
	return n
}

// TotalUnits returns sum of UnitCounts = 2^N.
func TotalUnits(bits int) int { return 1 << bits }

// Matrix is a rows×cols common-centroid placement. Each cell holds the
// capacitor index 0..Bits it belongs to, or Dummy, or Empty.
type Matrix struct {
	Rows, Cols int
	// Bits is the DAC resolution N; capacitors are C_0..C_N.
	Bits int
	// Scale multiplies every capacitor's unit count. The chessboard
	// method of [7] doubles all unit capacitors for odd N (paper
	// Table I, note 1); Scale is 2 there and 1 otherwise.
	Scale int
	cells []int
}

// New returns an all-Empty matrix for an N-bit DAC.
func New(rows, cols, bits, scale int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("ccmatrix: non-positive dimensions %dx%d", rows, cols))
	}
	if bits < 2 {
		panic(fmt.Sprintf("ccmatrix: need at least 2 bits, got %d", bits))
	}
	if scale < 1 {
		scale = 1
	}
	m := &Matrix{Rows: rows, Cols: cols, Bits: bits, Scale: scale, cells: make([]int, rows*cols)}
	for i := range m.cells {
		m.cells[i] = Empty
	}
	return m
}

// At returns the capacitor index at cell c.
func (m *Matrix) At(c geom.Cell) int { return m.cells[c.Row*m.Cols+c.Col] }

// Set assigns cell c to capacitor bit (or Dummy).
func (m *Matrix) Set(c geom.Cell, bit int) {
	if !c.In(m.Rows, m.Cols) {
		panic(fmt.Sprintf("ccmatrix: cell %v outside %dx%d", c, m.Rows, m.Cols))
	}
	if bit != Dummy && (bit < 0 || bit > m.Bits) {
		panic(fmt.Sprintf("ccmatrix: capacitor index %d out of range 0..%d", bit, m.Bits))
	}
	m.cells[c.Row*m.Cols+c.Col] = bit
}

// IsEmpty reports whether cell c is unassigned.
func (m *Matrix) IsEmpty(c geom.Cell) bool { return m.At(c) == Empty }

// CellsOf returns all cells assigned to capacitor bit (or Dummy), in
// row-major order (bottom row first).
func (m *Matrix) CellsOf(bit int) []geom.Cell {
	var out []geom.Cell
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			cell := geom.Cell{Row: r, Col: c}
			if m.At(cell) == bit {
				out = append(out, cell)
			}
		}
	}
	return out
}

// Counts returns the number of cells assigned to each capacitor
// (index 0..Bits), plus dummies and empties.
func (m *Matrix) Counts() (counts []int, dummies, empties int) {
	counts = make([]int, m.Bits+1)
	for _, v := range m.cells {
		switch {
		case v == Dummy:
			dummies++
		case v == Empty:
			empties++
		default:
			counts[v]++
		}
	}
	return counts, dummies, empties
}

// Validate checks that the placement is complete and correctly
// binary-weighted: every cell assigned, and each C_k holds exactly
// Scale*n_k unit cells.
func (m *Matrix) Validate() error {
	counts, _, empties := m.Counts()
	if empties > 0 {
		return fmt.Errorf("ccmatrix: %d unassigned cells", empties)
	}
	want := UnitCounts(m.Bits)
	for k, n := range want {
		if counts[k] != m.Scale*n {
			return fmt.Errorf("ccmatrix: C_%d has %d unit cells, want %d", k, counts[k], m.Scale*n)
		}
	}
	return nil
}

// Center returns the common-centroid point of the array in cell
// coordinates: ((Rows-1)/2, (Cols-1)/2) as floats.
func (m *Matrix) Center() (row, col float64) {
	return float64(m.Rows-1) / 2, float64(m.Cols-1) / 2
}

// CentroidOffset returns the distance (in cell pitches) between the
// centroid of capacitor bit's unit cells and the array center. Perfect
// common-centroid placement gives 0 for every capacitor with an even
// unit count; C_0 and C_1 (single units) cannot achieve 0 and are
// placed diagonally adjacent to the center instead.
func (m *Matrix) CentroidOffset(bit int) float64 {
	cells := m.CellsOf(bit)
	if len(cells) == 0 {
		return math.NaN()
	}
	var sr, sc float64
	for _, c := range cells {
		sr += float64(c.Row)
		sc += float64(c.Col)
	}
	cr, cc := m.Center()
	dr := sr/float64(len(cells)) - cr
	dc := sc/float64(len(cells)) - cc
	return math.Hypot(dr, dc)
}

// MaxCentroidOffset returns the worst centroid offset over capacitors
// C_lo..C_N. Pass lo=2 to exclude the single-unit C_0/C_1, which can
// never be centered exactly.
func (m *Matrix) MaxCentroidOffset(lo int) float64 {
	worst := 0.0
	for k := lo; k <= m.Bits; k++ {
		if off := m.CentroidOffset(k); off > worst {
			worst = off
		}
	}
	return worst
}

// Dispersion returns the dispersion of capacitor bit: the radius of
// gyration of its unit cells about the array center, normalized by the
// radius of gyration of the full array. Values near 1 mean the
// capacitor's units are spread like the array itself (good matching
// under spatially-correlated random variation); small values mean the
// units are clustered (bad matching, good routing).
func (m *Matrix) Dispersion(bit int) float64 {
	cells := m.CellsOf(bit)
	if len(cells) == 0 {
		return math.NaN()
	}
	cr, cc := m.Center()
	capGyr := 0.0
	for _, c := range cells {
		dr := float64(c.Row) - cr
		dc := float64(c.Col) - cc
		capGyr += dr*dr + dc*dc
	}
	capGyr /= float64(len(cells))

	arrGyr := 0.0
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			dr := float64(r) - cr
			dc := float64(c) - cc
			arrGyr += dr*dr + dc*dc
		}
	}
	arrGyr /= float64(m.Rows * m.Cols)
	if arrGyr == 0 {
		return 1
	}
	return math.Sqrt(capGyr / arrGyr)
}

// MeanDispersion averages Dispersion over C_2..C_N weighted by unit
// count; it summarizes how chessboard-like a placement is.
func (m *Matrix) MeanDispersion() float64 {
	total, weight := 0.0, 0.0
	for k := 2; k <= m.Bits; k++ {
		n := float64(len(m.CellsOf(k)))
		total += n * m.Dispersion(k)
		weight += n
	}
	if weight == 0 {
		return math.NaN()
	}
	return total / weight
}

// IsSymmetric reports whether the assignment is invariant under point
// reflection through the array center, i.e. every cell and its
// reflection hold the same capacitor. Single-unit capacitors C_0/C_1
// are exempted when they occupy mutually-reflected cells (the paper
// places them diagonally opposite near the center).
func (m *Matrix) IsSymmetric() bool {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			cell := geom.Cell{Row: r, Col: c}
			a := m.At(cell)
			b := m.At(cell.Reflect(m.Rows, m.Cols))
			if a == b {
				continue
			}
			// C_0 and C_1 may swap under reflection.
			if (a == 0 && b == 1) || (a == 1 && b == 0) {
				continue
			}
			return false
		}
	}
	return true
}

// AdjacencySameBit returns the number of 4-neighbor cell pairs sharing
// a capacitor index; high values mean large connected groups and cheap
// routing (spiral), zero means chessboard.
func (m *Matrix) AdjacencySameBit() int {
	n := 0
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			bit := m.At(geom.Cell{Row: r, Col: c})
			if bit < 0 {
				continue
			}
			// Count east and north neighbors only so each pair counts once.
			if c+1 < m.Cols && m.At(geom.Cell{Row: r, Col: c + 1}) == bit {
				n++
			}
			if r+1 < m.Rows && m.At(geom.Cell{Row: r + 1, Col: c}) == bit {
				n++
			}
		}
	}
	return n
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Rows: m.Rows, Cols: m.Cols, Bits: m.Bits, Scale: m.Scale, cells: make([]int, len(m.cells))}
	copy(c.cells, m.cells)
	return c
}

// MarshalBinary encodes the matrix for the memo spill tier: four
// little-endian int64 header fields followed by the cell assignments.
func (m *Matrix) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 32+8*len(m.cells))
	for _, v := range []int{m.Rows, m.Cols, m.Bits, m.Scale} {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	for _, v := range m.cells {
		out = binary.LittleEndian.AppendUint64(out, uint64(int64(v)))
	}
	return out, nil
}

// UnmarshalBinary reverses MarshalBinary, validating dimensions.
func (m *Matrix) UnmarshalBinary(data []byte) error {
	if len(data) < 32 || len(data)%8 != 0 {
		return fmt.Errorf("ccmatrix: truncated encoding (%d bytes)", len(data))
	}
	var hdr [4]int
	for i := range hdr {
		hdr[i] = int(int64(binary.LittleEndian.Uint64(data[i*8:])))
	}
	rows, cols, bits, scale := hdr[0], hdr[1], hdr[2], hdr[3]
	n := (len(data) - 32) / 8
	if rows <= 0 || cols <= 0 || bits < 2 || scale < 1 || rows*cols != n {
		return fmt.Errorf("ccmatrix: inconsistent encoding %dx%d (%d cells)", rows, cols, n)
	}
	cells := make([]int, n)
	for i := range cells {
		cells[i] = int(int64(binary.LittleEndian.Uint64(data[32+i*8:])))
	}
	*m = Matrix{Rows: rows, Cols: cols, Bits: bits, Scale: scale, cells: cells}
	return nil
}

// SwapCells exchanges the assignments of two cells.
func (m *Matrix) SwapCells(a, b geom.Cell) {
	ia, ib := a.Row*m.Cols+a.Col, b.Row*m.Cols+b.Col
	m.cells[ia], m.cells[ib] = m.cells[ib], m.cells[ia]
}

// String renders the matrix as ASCII rows (top row first), one
// character-pair per cell: capacitor index in hex, 'd' for dummies,
// '.' for empties. Useful in tests and debugging.
func (m *Matrix) String() string {
	out := make([]byte, 0, (m.Rows+1)*(m.Cols*2+1))
	for r := m.Rows - 1; r >= 0; r-- {
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				out = append(out, ' ')
			}
			switch v := m.At(geom.Cell{Row: r, Col: c}); {
			case v == Dummy:
				out = append(out, 'd')
			case v == Empty:
				out = append(out, '.')
			case v < 10:
				out = append(out, byte('0'+v))
			default:
				out = append(out, byte('a'+v-10))
			}
		}
		out = append(out, '\n')
	}
	return string(out)
}
