package ccmatrix

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ccdac/internal/geom"
)

func TestUnitCounts(t *testing.T) {
	got := UnitCounts(6)
	want := []int{1, 1, 2, 4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("n_%d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUnitCountsSumProperty(t *testing.T) {
	// Eq. 1: sum n_k = 2^N for any N >= 2.
	for bits := 2; bits <= 14; bits++ {
		sum := 0
		for _, n := range UnitCounts(bits) {
			sum += n
		}
		if sum != TotalUnits(bits) {
			t.Errorf("bits=%d: sum=%d, want %d", bits, sum, TotalUnits(bits))
		}
	}
}

func fill4x4(t *testing.T) *Matrix {
	t.Helper()
	// 4-bit DAC on 4x4 = 16 cells: counts 1,1,2,4,8.
	m := New(4, 4, 4, 1)
	assign := [][]int{
		{4, 4, 4, 4},
		{4, 0, 3, 3},
		{3, 3, 1, 4},
		{4, 4, 2, 2},
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			m.Set(geom.Cell{Row: r, Col: c}, assign[r][c])
		}
	}
	return m
}

func TestValidateComplete(t *testing.T) {
	m := fill4x4(t)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
}

func TestValidateCatchesEmpties(t *testing.T) {
	m := New(4, 4, 4, 1)
	if err := m.Validate(); err == nil {
		t.Fatal("empty matrix must not validate")
	}
}

func TestValidateCatchesWrongCounts(t *testing.T) {
	m := fill4x4(t)
	// Steal a C_4 cell for C_3.
	m.Set(geom.Cell{Row: 3, Col: 0}, 3)
	if err := m.Validate(); err == nil {
		t.Fatal("miscounted placement must not validate")
	}
}

func TestValidateScale(t *testing.T) {
	// Scale 2 doubles every count ([7] odd-N rule): 2-bit on 2x4 with
	// counts 2,2,4.
	m := New(2, 4, 2, 2)
	vals := []int{0, 0, 1, 1, 2, 2, 2, 2}
	i := 0
	for r := 0; r < 2; r++ {
		for c := 0; c < 4; c++ {
			m.Set(geom.Cell{Row: r, Col: c}, vals[i])
			i++
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("scaled placement rejected: %v", err)
	}
}

func TestSetPanics(t *testing.T) {
	m := New(2, 2, 2, 1)
	for name, fn := range map[string]func(){
		"outside cell": func() { m.Set(geom.Cell{Row: 2, Col: 0}, 0) },
		"bad bit":      func() { m.Set(geom.Cell{Row: 0, Col: 0}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive dims must panic")
		}
	}()
	New(0, 4, 4, 1)
}

func TestCellsOfAndCounts(t *testing.T) {
	m := fill4x4(t)
	if got := len(m.CellsOf(4)); got != 8 {
		t.Errorf("C_4 cells = %d, want 8", got)
	}
	counts, dummies, empties := m.Counts()
	if counts[3] != 4 || dummies != 0 || empties != 0 {
		t.Errorf("Counts = %v d=%d e=%d", counts, dummies, empties)
	}
	// CellsOf is row-major from the bottom.
	cells := m.CellsOf(2)
	if len(cells) != 2 || cells[0] != (geom.Cell{Row: 3, Col: 2}) {
		t.Errorf("CellsOf(2) = %v", cells)
	}
}

func TestCentroidOffsetPerfect(t *testing.T) {
	// C_2 placed at two reflected cells: centroid exactly at center.
	m := New(4, 4, 2, 1)
	m.Set(geom.Cell{Row: 0, Col: 0}, 2)
	m.Set(geom.Cell{Row: 3, Col: 3}, 2)
	if off := m.CentroidOffset(2); off > 1e-12 {
		t.Errorf("reflected pair centroid offset = %g, want 0", off)
	}
	// A single corner cell is offset by hypot(1.5, 1.5).
	m.Set(geom.Cell{Row: 0, Col: 3}, 1)
	want := math.Hypot(1.5, 1.5)
	if off := m.CentroidOffset(1); math.Abs(off-want) > 1e-12 {
		t.Errorf("corner centroid offset = %g, want %g", off, want)
	}
	if !math.IsNaN(m.CentroidOffset(0)) {
		t.Error("missing capacitor must report NaN offset")
	}
}

func TestDispersionExtremes(t *testing.T) {
	// Clustered at center vs spread at corners on an 8x8 grid.
	m := New(8, 8, 3, 1)
	m.Set(geom.Cell{Row: 3, Col: 3}, 3)
	m.Set(geom.Cell{Row: 3, Col: 4}, 3)
	m.Set(geom.Cell{Row: 4, Col: 3}, 3)
	m.Set(geom.Cell{Row: 4, Col: 4}, 3)
	clustered := m.Dispersion(3)

	m2 := New(8, 8, 3, 1)
	m2.Set(geom.Cell{Row: 0, Col: 0}, 3)
	m2.Set(geom.Cell{Row: 0, Col: 7}, 3)
	m2.Set(geom.Cell{Row: 7, Col: 0}, 3)
	m2.Set(geom.Cell{Row: 7, Col: 7}, 3)
	spread := m2.Dispersion(3)

	if !(spread > 1 && clustered < 0.3) {
		t.Errorf("dispersion spread=%g clustered=%g: want spread>1, clustered<0.3", spread, clustered)
	}
}

func TestIsSymmetric(t *testing.T) {
	m := New(2, 2, 2, 1)
	m.Set(geom.Cell{Row: 0, Col: 0}, 0)
	m.Set(geom.Cell{Row: 1, Col: 1}, 1) // C_0/C_1 swap allowed
	m.Set(geom.Cell{Row: 0, Col: 1}, 2)
	m.Set(geom.Cell{Row: 1, Col: 0}, 2)
	if !m.IsSymmetric() {
		t.Fatal("reflection-paired placement must be symmetric")
	}
	m.SwapCells(geom.Cell{Row: 0, Col: 1}, geom.Cell{Row: 0, Col: 0})
	if m.IsSymmetric() {
		t.Fatal("broken pairing must not be symmetric")
	}
}

func TestAdjacencySameBit(t *testing.T) {
	// Chessboard 2x2 of alternating bits: 0 same-bit adjacencies.
	m := New(2, 2, 2, 1)
	m.Set(geom.Cell{Row: 0, Col: 0}, 2)
	m.Set(geom.Cell{Row: 0, Col: 1}, 0)
	m.Set(geom.Cell{Row: 1, Col: 0}, 1)
	m.Set(geom.Cell{Row: 1, Col: 1}, 2)
	if got := m.AdjacencySameBit(); got != 0 {
		t.Errorf("chessboard adjacency = %d, want 0", got)
	}
	// Row of one bit: 1 adjacency per neighbor pair.
	m2 := New(1, 4, 2, 1)
	for c := 0; c < 4; c++ {
		m2.Set(geom.Cell{Row: 0, Col: c}, 2)
	}
	if got := m2.AdjacencySameBit(); got != 3 {
		t.Errorf("row adjacency = %d, want 3", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := fill4x4(t)
	c := m.Clone()
	c.Set(geom.Cell{Row: 0, Col: 0}, Dummy)
	if m.At(geom.Cell{Row: 0, Col: 0}) == Dummy {
		t.Fatal("Clone must not alias cell storage")
	}
}

func TestStringRendering(t *testing.T) {
	m := New(2, 2, 2, 1)
	m.Set(geom.Cell{Row: 0, Col: 0}, 0)
	m.Set(geom.Cell{Row: 0, Col: 1}, 2)
	m.Set(geom.Cell{Row: 1, Col: 0}, Dummy)
	s := m.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d, want 2", len(lines))
	}
	// Top row printed first: dummy then empty.
	if lines[0] != "d ." {
		t.Errorf("top row = %q, want \"d .\"", lines[0])
	}
	if lines[1] != "0 2" {
		t.Errorf("bottom row = %q, want \"0 2\"", lines[1])
	}
}

func TestSwapCellsProperty(t *testing.T) {
	m := fill4x4(t)
	f := func(r1, c1, r2, c2 uint8) bool {
		a := geom.Cell{Row: int(r1) % 4, Col: int(c1) % 4}
		b := geom.Cell{Row: int(r2) % 4, Col: int(c2) % 4}
		va, vb := m.At(a), m.At(b)
		m.SwapCells(a, b)
		ok := m.At(a) == vb && m.At(b) == va
		m.SwapCells(a, b) // restore
		return ok && m.At(a) == va && m.At(b) == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanDispersionBounds(t *testing.T) {
	m := fill4x4(t)
	d := m.MeanDispersion()
	if math.IsNaN(d) || d <= 0 || d > 2 {
		t.Errorf("MeanDispersion = %g out of plausible range", d)
	}
}
