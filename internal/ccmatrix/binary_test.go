package ccmatrix

import (
	"reflect"
	"testing"

	"ccdac/internal/geom"
)

// TestBinaryRoundTrip: the spill encoding reproduces the matrix
// exactly, including Dummy and Empty cells.
func TestBinaryRoundTrip(t *testing.T) {
	m := New(4, 4, 3, 2)
	m.Set(geom.Cell{Row: 0, Col: 0}, 0)
	m.Set(geom.Cell{Row: 0, Col: 1}, 3)
	m.Set(geom.Cell{Row: 1, Col: 2}, Dummy)
	m.Set(geom.Cell{Row: 3, Col: 3}, 1)

	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Matrix
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, &got) {
		t.Fatalf("round trip changed the matrix:\nwant %+v\ngot  %+v", m, &got)
	}
}

// TestBinaryRejectsGarbage: truncated or inconsistent encodings are
// errors, never a silently-wrong matrix.
func TestBinaryRejectsGarbage(t *testing.T) {
	good, _ := New(2, 2, 2, 1).MarshalBinary()
	cases := map[string][]byte{
		"empty":        nil,
		"short_header": good[:16],
		"ragged_tail":  good[:len(good)-3],
		"cell_count":   good[:len(good)-8],
		"zero_dims":    make([]byte, 32),
	}
	for name, data := range cases {
		var m Matrix
		if err := m.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: UnmarshalBinary accepted garbage", name)
		}
	}
}
