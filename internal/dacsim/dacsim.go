// Package dacsim simulates the dynamic behavior of a charge-scaling
// DAC built on an extracted capacitor array: each bit's bottom plate
// settles through its own charging network (the per-bit Elmore time
// constants of the routed layout), and the shared top-plate output is
// their capacitance-weighted superposition. Because different bits
// settle at different speeds, major-carry transitions (e.g.
// 0111..1 → 1000..0) produce output glitches; this package quantifies
// the glitch impulse and the code-to-code settling time — the dynamic
// face of the paper's f3dB metric.
package dacsim

import (
	"fmt"
	"math"

	"ccdac/internal/extract"
)

// Model is a behavioral dynamic DAC.
type Model struct {
	// Bits is the resolution N.
	Bits int
	// CapFF holds the capacitor values C_0..C_N in fF.
	CapFF []float64
	// TauSec holds each bit's bottom-plate settling time constant.
	// Tau[0] is unused (C_0 stays grounded).
	TauSec []float64
	// VRef is the reference voltage.
	VRef float64

	cT float64
}

// New builds a model from explicit capacitor values and taus.
func New(bits int, capFF, tauSec []float64, vref float64) (*Model, error) {
	if bits < 2 {
		return nil, fmt.Errorf("dacsim: need at least 2 bits")
	}
	if len(capFF) != bits+1 || len(tauSec) != bits+1 {
		return nil, fmt.Errorf("dacsim: need %d capacitors and taus, got %d/%d",
			bits+1, len(capFF), len(tauSec))
	}
	if vref <= 0 {
		return nil, fmt.Errorf("dacsim: vref must be positive")
	}
	m := &Model{Bits: bits, CapFF: capFF, TauSec: tauSec, VRef: vref}
	for k, c := range capFF {
		if c <= 0 {
			return nil, fmt.Errorf("dacsim: capacitor %d non-positive", k)
		}
		if k >= 1 && tauSec[k] <= 0 {
			return nil, fmt.Errorf("dacsim: tau %d non-positive", k)
		}
		m.cT += c
	}
	return m, nil
}

// FromExtract builds the dynamic model of a routed layout: capacitor
// values from unit counts, taus from the extracted Elmore delays.
func FromExtract(sum *extract.Summary, counts []int, cuFF, vref float64) (*Model, error) {
	bits := len(sum.Bits) - 1
	caps := make([]float64, bits+1)
	taus := make([]float64, bits+1)
	for k := 0; k <= bits; k++ {
		caps[k] = float64(counts[k]) * cuFF
		taus[k] = sum.Bits[k].TauSec
	}
	return New(bits, caps, taus, vref)
}

// Static returns the settled output ratio V/VREF for a code.
func (m *Model) Static(code int) float64 {
	on := 0.0
	for k := 1; k <= m.Bits; k++ {
		if code&(1<<(k-1)) != 0 {
			on += m.CapFF[k]
		}
	}
	return on / m.cT
}

// Transition simulates the output (as V/VREF) after switching from
// code a to code b at t = 0, sampled at dt for steps samples. Each
// switching bit's bottom plate moves exponentially with its own tau;
// the output is the capacitance-weighted sum.
func (m *Model) Transition(a, b int, dt float64, steps int) ([]float64, error) {
	if dt <= 0 || steps < 1 {
		return nil, fmt.Errorf("dacsim: need positive dt and steps")
	}
	maxCode := 1<<m.Bits - 1
	if a < 0 || a > maxCode || b < 0 || b > maxCode {
		return nil, fmt.Errorf("dacsim: codes %d -> %d out of range 0..%d", a, b, maxCode)
	}
	vFinal := m.Static(b)
	out := make([]float64, steps)
	for s := 0; s < steps; s++ {
		t := float64(s+1) * dt
		v := vFinal
		for k := 1; k <= m.Bits; k++ {
			bitMask := 1 << (k - 1)
			wasOn := a&bitMask != 0
			isOn := b&bitMask != 0
			if wasOn == isOn {
				continue
			}
			// The bit's bottom plate is exp-settling toward its new
			// level; its remaining deviation scales the output by
			// C_k/C_T.
			delta := 0.0
			if wasOn && !isOn {
				delta = +1 // still partially high
			} else {
				delta = -1 // still partially low
			}
			v += delta * m.CapFF[k] / m.cT * math.Exp(-t/m.TauSec[k])
		}
		out[s] = v
	}
	return out, nil
}

// GlitchVS returns the glitch impulse of a transition in volt-seconds:
// the area of the output excursion outside the direct band between the
// start and final settled values (the classic mid-code carry glitch
// from mismatched bit settling speeds).
func (m *Model) GlitchVS(a, b int, dt float64, steps int) (float64, error) {
	wave, err := m.Transition(a, b, dt, steps)
	if err != nil {
		return 0, err
	}
	v0, vf := m.Static(a), m.Static(b)
	lo, hi := math.Min(v0, vf), math.Max(v0, vf)
	area := 0.0
	for _, v := range wave {
		if v > hi {
			area += (v - hi) * dt
		} else if v < lo {
			area += (lo - v) * dt
		}
	}
	return area * m.VRef, nil
}

// WorstGlitch scans all single-LSB code increments and returns the
// transition with the largest glitch impulse. The horizon adapts to
// the slowest bit.
func (m *Model) WorstGlitch() (code int, glitchVS float64, err error) {
	tauMax := 0.0
	for k := 1; k <= m.Bits; k++ {
		tauMax = math.Max(tauMax, m.TauSec[k])
	}
	dt := tauMax / 50
	steps := 500 // 10 tauMax
	worst := -1.0
	at := 0
	for c := 0; c < 1<<m.Bits-1; c++ {
		g, err := m.GlitchVS(c, c+1, dt, steps)
		if err != nil {
			return 0, 0, err
		}
		if g > worst {
			worst, at = g, c
		}
	}
	return at, worst, nil
}

// SettleSeconds returns the time for the output to stay within tol (in
// LSB) of the final value after an a -> b transition.
func (m *Model) SettleSeconds(a, b int, tolLSB float64) (float64, error) {
	if tolLSB <= 0 {
		return 0, fmt.Errorf("dacsim: tolerance must be positive")
	}
	tauMax := 0.0
	for k := 1; k <= m.Bits; k++ {
		tauMax = math.Max(tauMax, m.TauSec[k])
	}
	dt := tauMax / 100
	steps := 4000
	wave, err := m.Transition(a, b, dt, steps)
	if err != nil {
		return 0, err
	}
	tol := tolLSB / float64(int(1)<<m.Bits)
	vf := m.Static(b)
	last := -1
	for s := len(wave) - 1; s >= 0; s-- {
		if math.Abs(wave[s]-vf) > tol {
			break
		}
		last = s
	}
	if last < 0 {
		return 0, fmt.Errorf("dacsim: transition %d->%d not settled within %d steps", a, b, steps)
	}
	return float64(last+1) * dt, nil
}

// MaxUpdateRateHz returns the settling-limited update rate for the
// worst single-LSB transition at 1/4 LSB accuracy (Eq. 15's criterion
// applied to the dynamic model).
func (m *Model) MaxUpdateRateHz() (float64, error) {
	worstT := 0.0
	for c := 0; c < 1<<m.Bits-1; c++ {
		t, err := m.SettleSeconds(c, c+1, 0.25)
		if err != nil {
			return 0, err
		}
		worstT = math.Max(worstT, t)
	}
	if worstT == 0 {
		return math.Inf(1), nil
	}
	return 1 / (2 * worstT), nil // charge + discharge phases per cycle
}
