package dacsim

import (
	"math"
	"testing"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/extract"
	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
)

// equalTauModel builds a 4-bit model where every bit settles with the
// same time constant.
func equalTauModel(t *testing.T, tau float64) *Model {
	t.Helper()
	caps := []float64{5, 5, 10, 20, 40}
	taus := []float64{0, tau, tau, tau, tau}
	m, err := New(4, caps, taus, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStaticMatchesBinaryWeights(t *testing.T) {
	m := equalTauModel(t, 1e-11)
	if got := m.Static(0); got != 0 {
		t.Errorf("Static(0) = %g", got)
	}
	if got := m.Static(8); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Static(8) = %g, want 0.5", got)
	}
	if got := m.Static(15); math.Abs(got-15.0/16) > 1e-12 {
		t.Errorf("Static(15) = %g", got)
	}
}

func TestTransitionConvergesToFinal(t *testing.T) {
	m := equalTauModel(t, 1e-11)
	wave, err := m.Transition(3, 12, 1e-12, 400)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := wave[len(wave)-1], m.Static(12); math.Abs(got-want) > 1e-9 {
		t.Errorf("final = %g, want %g", got, want)
	}
	// Starts near the old value.
	if got, want := wave[0], m.Static(3); math.Abs(got-want) > 0.1 {
		t.Errorf("start = %g, want near %g", got, want)
	}
}

func TestEqualTausProduceNoGlitch(t *testing.T) {
	// With identical taus every switching bit settles in lockstep:
	// the output moves monotonically inside the start/final band.
	m := equalTauModel(t, 1e-11)
	for _, pair := range [][2]int{{7, 8}, {3, 4}, {0, 15}} {
		g, err := m.GlitchVS(pair[0], pair[1], 1e-13, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if g > 1e-18 {
			t.Errorf("%d->%d: glitch %g with equal taus", pair[0], pair[1], g)
		}
	}
}

func TestSlowMSBGlitchesAtMajorCarry(t *testing.T) {
	// MSB 10x slower than the LSBs: at 0111 -> 1000 the LSBs collapse
	// fast while the MSB rises slowly — the classic mid-code glitch.
	caps := []float64{5, 5, 10, 20, 40}
	taus := []float64{0, 1e-12, 1e-12, 1e-12, 1e-11}
	m, err := New(4, caps, taus, 1)
	if err != nil {
		t.Fatal(err)
	}
	code, g, err := m.WorstGlitch()
	if err != nil {
		t.Fatal(err)
	}
	if code != 7 {
		t.Errorf("worst glitch at %d->%d, want the major carry 7->8", code, code+1)
	}
	if g <= 0 {
		t.Error("major carry produced no glitch")
	}
	// The glitch grows with the tau mismatch.
	taus2 := []float64{0, 1e-12, 1e-12, 1e-12, 3e-11}
	m2, err := New(4, caps, taus2, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, g2, err := m2.WorstGlitch()
	if err != nil {
		t.Fatal(err)
	}
	if g2 <= g {
		t.Errorf("3x slower MSB glitch %g not above %g", g2, g)
	}
}

func TestSettleSecondsSinglePole(t *testing.T) {
	m := equalTauModel(t, 1e-11)
	// 0 -> 8 flips only the MSB: pure single pole, settle to tol LSB of
	// a half-scale step takes tau*ln((2^N*step)/tol)=tau*ln(8/0.25 *...).
	got, err := m.SettleSeconds(0, 8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Deviation starts at 0.5, target 0.25/16 = 0.015625: t = tau ln(32).
	want := 1e-11 * math.Log(0.5/(0.25/16))
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("settle = %g, want %g", got, want)
	}
}

func TestMaxUpdateRate(t *testing.T) {
	m := equalTauModel(t, 1e-11)
	rate, err := m.MaxUpdateRateHz()
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || math.IsInf(rate, 0) {
		t.Fatalf("rate = %g", rate)
	}
	// Slower taus -> slower updates.
	m2 := equalTauModel(t, 4e-11)
	rate2, err := m2.MaxUpdateRateHz()
	if err != nil {
		t.Fatal(err)
	}
	if rate2 >= rate {
		t.Errorf("4x slower taus gave rate %g >= %g", rate2, rate)
	}
}

func TestFromExtractEndToEnd(t *testing.T) {
	pm, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	tch := tech.FinFET12()
	l, err := route.Route(pm, tch, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := extract.Extract(l)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromExtract(sum, ccmatrix.UnitCounts(6), tch.Unit.CfF, tch.VRef)
	if err != nil {
		t.Fatal(err)
	}
	code, g, err := m.WorstGlitch()
	if err != nil {
		t.Fatal(err)
	}
	if g < 0 {
		t.Error("negative glitch")
	}
	if code < 0 || code >= 63 {
		t.Errorf("worst glitch code %d out of range", code)
	}
	// The dynamic update rate should be the same order as the f3dB
	// model's prediction.
	rate, err := m.MaxUpdateRateHz()
	if err != nil {
		t.Fatal(err)
	}
	f3db := extract.F3dB(6, sum.Tau())
	if rate < f3db/10 || rate > f3db*10 {
		t.Errorf("dynamic rate %g vs f3dB %g: more than 10x apart", rate, f3db)
	}
}

func TestGlitchOrderingAcrossStyles(t *testing.T) {
	// The chessboard's slower bits settle far more unevenly than the
	// spiral's: its worst-case glitch impulse must be larger.
	tch := tech.FinFET12()
	glitch := func(style place.Style) float64 {
		var pm *ccmatrix.Matrix
		var err error
		if style == place.Spiral {
			pm, err = place.NewSpiral(6)
		} else {
			pm, err = place.NewChessboard(6)
		}
		if err != nil {
			t.Fatal(err)
		}
		l, err := route.Route(pm, tch, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := extract.Extract(l)
		if err != nil {
			t.Fatal(err)
		}
		m, err := FromExtract(sum, ccmatrix.UnitCounts(6), tch.Unit.CfF, tch.VRef)
		if err != nil {
			t.Fatal(err)
		}
		_, g, err := m.WorstGlitch()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if gs, gc := glitch(place.Spiral), glitch(place.Chessboard); gc <= gs {
		t.Errorf("chessboard glitch %g not above spiral %g", gc, gs)
	}
}

func TestRejectsBadInputs(t *testing.T) {
	if _, err := New(1, []float64{1, 1}, []float64{0, 1}, 1); err == nil {
		t.Error("1-bit model must be rejected")
	}
	if _, err := New(2, []float64{1, 1}, []float64{0, 1, 1}, 1); err == nil {
		t.Error("short capacitor list must be rejected")
	}
	if _, err := New(2, []float64{1, 1, 2}, []float64{0, 1, 0}, 1); err == nil {
		t.Error("zero tau must be rejected")
	}
	m := equalTauModel(t, 1e-11)
	if _, err := m.Transition(0, 99, 1e-12, 10); err == nil {
		t.Error("out-of-range code must be rejected")
	}
	if _, err := m.Transition(0, 1, 0, 10); err == nil {
		t.Error("zero dt must be rejected")
	}
	if _, err := m.SettleSeconds(0, 1, 0); err == nil {
		t.Error("zero tolerance must be rejected")
	}
}
