// Package spice bridges the extracted RC networks to circuit-level
// tooling: it exports SPICE netlists of per-bit charging networks and
// provides a Backward-Euler transient simulator used to validate the
// Elmore-delay settling model (Sec. III-B) end to end — the paper's
// t_settle = ln(2^(N+2))·τ criterion is checked against an actual
// step-response simulation of the same network.
package spice

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ccdac/internal/linalg"
	"ccdac/internal/rcnet"
)

// Netlist renders an RC network as a SPICE subcircuit. The driver node
// becomes the subcircuit's input port; every node with nonzero
// capacitance gets a C element to node 0 (ground). Resistances are in
// ohms, capacitances in femtofarads (fF suffix).
func Netlist(n *rcnet.Net, root int, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "* extracted charging network: %s\n", name)
	fmt.Fprintf(&b, ".SUBCKT %s in\n", sanitize(name))
	nodeName := func(i int) string {
		if i == root {
			return "in"
		}
		return fmt.Sprintf("n%d", i)
	}
	for i, r := range n.Resistors() {
		fmt.Fprintf(&b, "R%d %s %s %.6g\n", i+1, nodeName(r.A), nodeName(r.B), r.Ohm)
	}
	ci := 0
	for i, c := range n.Caps() {
		if c <= 0 {
			continue
		}
		ci++
		fmt.Fprintf(&b, "C%d %s 0 %.6gf\n", ci, nodeName(i), c)
	}
	b.WriteString(".ENDS\n")
	return b.String()
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "net"
	}
	return string(out)
}

// Waveform is the sampled step response of a transient simulation.
type Waveform struct {
	// TimeSec holds the sample instants.
	TimeSec []float64
	// V holds one voltage trace per observed node, normalized to the
	// 1 V input step.
	V [][]float64
	// Nodes are the observed node indices, parallel to V.
	Nodes []int
}

// shortOhm replaces ideal shorts so the Backward-Euler system stays
// nonsingular; it is far below any real wire resistance.
const shortOhm = 1e-6

// Transient simulates the unit-step response of the network driven at
// root: v_root(t >= 0) = 1 V, all nodes initially 0. Backward Euler
// with fixed step dt for steps samples. observe selects the recorded
// nodes (nil records every node).
func Transient(n *rcnet.Net, root int, dt float64, steps int, observe []int) (*Waveform, error) {
	if dt <= 0 || steps < 1 {
		return nil, fmt.Errorf("spice: need positive dt and steps, got %g, %d", dt, steps)
	}
	nn := n.NumNodes()
	if root < 0 || root >= nn {
		return nil, fmt.Errorf("spice: root %d out of range", root)
	}
	if observe == nil {
		observe = make([]int, 0, nn)
		for i := 0; i < nn; i++ {
			if i != root {
				observe = append(observe, i)
			}
		}
	}
	// Reduced system over non-root nodes: (G + C/dt) v' = (C/dt) v + b,
	// b_i = sum of conductances from i to the (1 V) root.
	idx := make([]int, nn)
	for i := range idx {
		idx[i] = -1
	}
	m := 0
	for i := 0; i < nn; i++ {
		if i != root {
			idx[i] = m
			m++
		}
	}
	if m == 0 {
		return nil, fmt.Errorf("spice: network has no nodes besides the driver")
	}
	sys := linalg.NewSparse(m)
	b := make([]float64, m)
	for _, r := range n.Resistors() {
		ohm := r.Ohm
		if ohm < shortOhm {
			ohm = shortOhm
		}
		g := 1 / ohm
		ia, ib := idx[r.A], idx[r.B]
		switch {
		case ia >= 0 && ib >= 0:
			sys.AddSym(ia, ib, -g)
			sys.Add(ia, ia, g)
			sys.Add(ib, ib, g)
		case ia >= 0:
			sys.Add(ia, ia, g)
			b[ia] += g
		case ib >= 0:
			sys.Add(ib, ib, g)
			b[ib] += g
		}
	}
	caps := n.Caps()
	cOverDt := make([]float64, m)
	for i := 0; i < nn; i++ {
		if idx[i] >= 0 {
			cOverDt[idx[i]] = caps[i] * 1e-15 / dt
		}
	}
	for i := 0; i < m; i++ {
		if sys.At(i, i) == 0 && cOverDt[i] == 0 {
			return nil, fmt.Errorf("spice: node %d is floating", i)
		}
		sys.Add(i, i, cOverDt[i])
	}

	v := make([]float64, m)
	wf := &Waveform{
		TimeSec: make([]float64, 0, steps),
		Nodes:   append([]int(nil), observe...),
		V:       make([][]float64, len(observe)),
	}
	rhs := make([]float64, m)
	for s := 1; s <= steps; s++ {
		for i := 0; i < m; i++ {
			rhs[i] = cOverDt[i]*v[i] + b[i]
		}
		next, err := sys.SolveCG(rhs, 1e-12, 0)
		if err != nil {
			return nil, fmt.Errorf("spice: step %d: %w", s, err)
		}
		v = next
		wf.TimeSec = append(wf.TimeSec, float64(s)*dt)
		for oi, node := range observe {
			val := 1.0
			if idx[node] >= 0 {
				val = v[idx[node]]
			}
			wf.V[oi] = append(wf.V[oi], val)
		}
	}
	return wf, nil
}

// SettleTime returns the earliest sampled time at which every observed
// node stays within tol of the 1 V final value for the remainder of
// the waveform. It returns an error if the waveform never settles.
func (w *Waveform) SettleTime(tol float64) (float64, error) {
	if tol <= 0 {
		return 0, fmt.Errorf("spice: tolerance must be positive")
	}
	last := -1
	for s := len(w.TimeSec) - 1; s >= 0; s-- {
		ok := true
		for _, trace := range w.V {
			if math.Abs(trace[s]-1) > tol {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		last = s
	}
	if last < 0 {
		return 0, fmt.Errorf("spice: waveform not settled to %g within %g s", tol, w.TimeSec[len(w.TimeSec)-1])
	}
	return w.TimeSec[last], nil
}

// SettleWithin simulates the step response and returns the time to
// settle every node in nodes within tol of the final value. The time
// step adapts to the supplied Elmore estimate tauHint (dt = tauHint/50,
// horizon = 40·tauHint, extended if needed).
func SettleWithin(n *rcnet.Net, root int, nodes []int, tol, tauHint float64) (float64, error) {
	if tauHint <= 0 {
		return 0, fmt.Errorf("spice: need a positive tau hint")
	}
	dt := tauHint / 50
	horizon := 40.0
	for attempt := 0; attempt < 4; attempt++ {
		steps := int(horizon * tauHint / dt)
		wf, err := Transient(n, root, dt, steps, nodes)
		if err != nil {
			return 0, err
		}
		if t, err := wf.SettleTime(tol); err == nil {
			return t, nil
		}
		horizon *= 4
	}
	return 0, fmt.Errorf("spice: network did not settle within %g tau", horizon)
}

// CSV renders the waveform as comma-separated samples — time in
// seconds followed by one column per observed node — for external
// plotting. names supplies the column headers (defaults to node ids).
func (w *Waveform) CSV(names []string) string {
	var b strings.Builder
	b.WriteString("t_s")
	for i, node := range w.Nodes {
		name := fmt.Sprintf("n%d", node)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		b.WriteString(",")
		b.WriteString(name)
	}
	b.WriteString("\n")
	for s := range w.TimeSec {
		fmt.Fprintf(&b, "%.6g", w.TimeSec[s])
		for i := range w.Nodes {
			fmt.Fprintf(&b, ",%.6g", w.V[i][s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ElementCounts reports the number of resistors and (nonzero)
// capacitors, a convenience for netlist tests and reports.
func ElementCounts(n *rcnet.Net) (rs, cs int) {
	rs = len(n.Resistors())
	for _, c := range n.Caps() {
		if c > 0 {
			cs++
		}
	}
	return rs, cs
}

// NodesByCap returns node indices sorted by descending capacitance, a
// helper for picking observation nodes in large networks.
func NodesByCap(n *rcnet.Net, limit int) []int {
	caps := n.Caps()
	idx := make([]int, len(caps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return caps[idx[a]] > caps[idx[b]] })
	if limit > 0 && limit < len(idx) {
		idx = idx[:limit]
	}
	return idx
}
