package spice

import (
	"math"
	"strings"
	"testing"

	"ccdac/internal/extract"
	"ccdac/internal/place"
	"ccdac/internal/rcnet"
	"ccdac/internal/route"
	"ccdac/internal/tech"
)

func singleRC(t *testing.T, r, cfF float64) (*rcnet.Net, int, int) {
	t.Helper()
	n := rcnet.New()
	root := n.AddNode("drv")
	load := n.AddNode("load")
	n.AddR(root, load, r)
	n.AddC(load, cfF)
	return n, root, load
}

func TestTransientSinglePoleExact(t *testing.T) {
	// v(t) = 1 - exp(-t/tau) for a single RC; check at a few instants.
	n, root, load := singleRC(t, 1000, 10) // tau = 10 ps
	tau := 1000 * 10e-15
	dt := tau / 200
	wf, err := Transient(n, root, dt, 1000, []int{load})
	if err != nil {
		t.Fatal(err)
	}
	for s := 99; s < len(wf.TimeSec); s += 200 {
		want := 1 - math.Exp(-wf.TimeSec[s]/tau)
		got := wf.V[0][s]
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("v(%g) = %g, want %g", wf.TimeSec[s], got, want)
		}
	}
}

func TestSettleTimeSinglePole(t *testing.T) {
	// Settling to within tol takes -tau ln(tol).
	n, root, load := singleRC(t, 1000, 10)
	tau := 1e-11
	tol := 1.0 / 1024
	got, err := SettleWithin(n, root, []int{load}, tol, tau)
	if err != nil {
		t.Fatal(err)
	}
	want := -tau * math.Log(tol)
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("settle = %g, want %g", got, want)
	}
}

func TestTransientRejectsBadArgs(t *testing.T) {
	n, root, _ := singleRC(t, 100, 1)
	if _, err := Transient(n, root, 0, 10, nil); err == nil {
		t.Error("zero dt must be rejected")
	}
	if _, err := Transient(n, root, 1e-12, 0, nil); err == nil {
		t.Error("zero steps must be rejected")
	}
	if _, err := Transient(n, 99, 1e-12, 10, nil); err == nil {
		t.Error("bad root must be rejected")
	}
}

func TestTransientMonotoneRise(t *testing.T) {
	// A passive RC step response never overshoots.
	n := rcnet.New()
	root := n.AddNode("drv")
	prev := root
	var last int
	for i := 0; i < 5; i++ {
		v := n.AddNode("n")
		n.AddR(prev, v, 200)
		n.AddC(v, 3)
		prev, last = v, v
	}
	wf, err := Transient(n, root, 2e-13, 600, []int{last})
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s < len(wf.V[0]); s++ {
		if wf.V[0][s] < wf.V[0][s-1]-1e-12 {
			t.Fatalf("non-monotone step response at sample %d", s)
		}
		if wf.V[0][s] > 1+1e-9 {
			t.Fatalf("overshoot at sample %d: %g", s, wf.V[0][s])
		}
	}
}

// TestSettlingMatchesElmoreModel is the end-to-end validation of the
// paper's Eq. 15: settling an extracted spiral bit network to 1/4 LSB
// takes about ln(2^(N+2))·tau_Elmore. Elmore is a single-pole
// approximation, so agreement within a factor of 2 is the expectation.
func TestSettlingMatchesElmoreModel(t *testing.T) {
	const bits = 6
	m, err := place.NewSpiral(bits)
	if err != nil {
		t.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := extract.Extract(l)
	if err != nil {
		t.Fatal(err)
	}
	crit := sum.Bits[sum.CriticalBit()]
	tol := math.Pow(2, -float64(bits)) / 4 // 1/4 LSB
	simSettle, err := SettleWithin(crit.Net, crit.Root, crit.CellNodes, tol, crit.TauSec)
	if err != nil {
		t.Fatal(err)
	}
	modelSettle := extract.SettlingTime(bits, crit.TauSec)
	ratio := simSettle / modelSettle
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("simulated settle %g vs Elmore model %g (ratio %g)",
			simSettle, modelSettle, ratio)
	}
}

func TestNetlistFormat(t *testing.T) {
	n, root, _ := singleRC(t, 123.4, 5)
	nl := Netlist(n, root, "bit 6!")
	if !strings.Contains(nl, ".SUBCKT bit_6_ in") {
		t.Errorf("bad subckt header:\n%s", nl)
	}
	if !strings.Contains(nl, "R1 in n1 123.4") {
		t.Errorf("missing resistor line:\n%s", nl)
	}
	if !strings.Contains(nl, "C1 n1 0 5f") {
		t.Errorf("missing capacitor line:\n%s", nl)
	}
	if !strings.HasSuffix(strings.TrimSpace(nl), ".ENDS") {
		t.Error("missing .ENDS")
	}
}

func TestNetlistCountsMatchNetwork(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := extract.Extract(l)
	if err != nil {
		t.Fatal(err)
	}
	bn := sum.Bits[6]
	nl := Netlist(bn.Net, bn.Root, "bit6")
	rs, cs := ElementCounts(bn.Net)
	if got := strings.Count(nl, "\nR"); got != rs {
		t.Errorf("netlist has %d resistors, network %d", got, rs)
	}
	if got := strings.Count(nl, "\nC"); got != cs {
		t.Errorf("netlist has %d capacitors, network %d", got, cs)
	}
}

func TestNodesByCap(t *testing.T) {
	n := rcnet.New()
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	n.AddC(a, 1)
	n.AddC(b, 5)
	n.AddC(c, 3)
	got := NodesByCap(n, 2)
	if len(got) != 2 || got[0] != b || got[1] != c {
		t.Errorf("NodesByCap = %v", got)
	}
	if got := NodesByCap(n, 0); len(got) != 3 {
		t.Errorf("unlimited NodesByCap = %v", got)
	}
}

func TestSettleTimeErrors(t *testing.T) {
	wf := &Waveform{TimeSec: []float64{1, 2}, V: [][]float64{{0.1, 0.2}}}
	if _, err := wf.SettleTime(0.01); err == nil {
		t.Error("unsettled waveform must error")
	}
	if _, err := wf.SettleTime(0); err == nil {
		t.Error("zero tolerance must error")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a b/c-7"); got != "a_b_c_7" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize(""); got != "net" {
		t.Errorf("sanitize empty = %q", got)
	}
}

func TestWaveformCSV(t *testing.T) {
	n, root, load := singleRC(t, 1000, 10)
	wf, err := Transient(n, root, 1e-12, 3, []int{load})
	if err != nil {
		t.Fatal(err)
	}
	csv := wf.CSV([]string{"vload"})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want header + 3", len(lines))
	}
	if lines[0] != "t_s,vload" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1e-12,") {
		t.Errorf("first sample = %q", lines[1])
	}
	// Default names fall back to node ids.
	if !strings.Contains(wf.CSV(nil), "n1") {
		t.Error("default column name missing")
	}
}
