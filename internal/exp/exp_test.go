package exp

import (
	"strings"
	"testing"
)

// The unit tests exercise the harness at 6 bits (plus 7 for the
// odd-bit rules) to stay fast; the full 6-10 bit sweep runs in
// cmd/tables and the benchmark suite.

func TestAvailable(t *testing.T) {
	if Available(MethodLin, 7) || Available(MethodLin, 9) {
		t.Error("[1] must be unavailable at odd bit counts")
	}
	if !Available(MethodLin, 8) || !Available(MethodBurcea, 7) || !Available(MethodSpiral, 9) {
		t.Error("availability misreported")
	}
}

func TestRunCaches(t *testing.T) {
	h := NewHarness()
	a, err := h.Run(MethodSpiral, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(MethodSpiral, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("harness did not cache the result")
	}
	if _, err := h.Run(MethodLin, 7); err == nil {
		t.Error("unavailable combination must error")
	}
	if _, err := h.Run(Method("bogus"), 6); err == nil {
		t.Error("unknown method must error")
	}
}

func TestTableIShape(t *testing.T) {
	h := NewHarness()
	h.AnnealMoves = 2000
	rows, err := h.TableI([]int{6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 methods", len(rows))
	}
	byMethod := map[Method]TableIRow{}
	for _, r := range rows {
		byMethod[r.Method] = r
		if !r.Available {
			t.Errorf("%s unavailable at 6 bits", r.Method)
		}
	}
	s, bc, cb := byMethod[MethodSpiral], byMethod[MethodBC], byMethod[MethodBurcea]
	// Paper's Table I orderings.
	if !(s.NV < bc.NV || s.NV < cb.NV) {
		t.Errorf("spiral via count %d not smallest (BC %d, CB %d)", s.NV, bc.NV, cb.NV)
	}
	if !(s.CWirefF < cb.CWirefF) {
		t.Errorf("spiral C_wire %g not below chessboard %g", s.CWirefF, cb.CWirefF)
	}
	if !(s.CBBfF < cb.CBBfF) {
		t.Errorf("spiral C_BB %g not below chessboard %g", s.CBBfF, cb.CBBfF)
	}
	if !(s.RTotalkOhm < cb.RTotalkOhm) {
		t.Errorf("spiral R_total %g not below chessboard %g", s.RTotalkOhm, cb.RTotalkOhm)
	}
	// Parallel routing on S: its critical-bit via resistance is tiny.
	if s.RVkOhm >= cb.RVkOhm {
		t.Errorf("spiral R_V %g not below chessboard %g", s.RVkOhm, cb.RVkOhm)
	}
}

func TestTableIIShape(t *testing.T) {
	h := NewHarness()
	h.AnnealMoves = 2000
	rows, err := h.TableII([]int{6})
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[Method]TableIIRow{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	s, bc, cb := byMethod[MethodSpiral], byMethod[MethodBC], byMethod[MethodBurcea]
	if !(s.F3dBMHz > bc.F3dBMHz && bc.F3dBMHz > cb.F3dBMHz) {
		t.Errorf("f3dB ordering violated: S=%.1f BC=%.1f CB=%.1f",
			s.F3dBMHz, bc.F3dBMHz, cb.F3dBMHz)
	}
	for _, r := range rows {
		if !r.Available {
			continue
		}
		if r.DNL > 0.5 || r.INL > 0.5 {
			t.Errorf("%s INL/DNL out of the paper's 0.5 LSB bound: %+v", r.Method, r)
		}
		if r.AreaUm2 <= 0 {
			t.Errorf("%s degenerate area", r.Method)
		}
	}
}

func TestTableIIOddBitDashes(t *testing.T) {
	h := NewHarness()
	rows, err := h.TableII([]int{7})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Method == MethodLin && r.Available {
			t.Error("[1] must be dashed at 7 bits")
		}
	}
	txt := FormatTableII(rows)
	if !strings.Contains(txt, "-") {
		t.Error("formatted table missing dash for [1]")
	}
}

func TestTableIII(t *testing.T) {
	h := NewHarness()
	rows, err := h.TableIII([]int{6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].SpiralSec <= 0 || rows[0].BCSec <= 0 {
		t.Fatalf("bad runtime rows: %+v", rows)
	}
	if rows[0].SpiralSec > 2 || rows[0].BCSec > 30 {
		t.Errorf("constructive runtimes implausibly large: %+v", rows[0])
	}
	txt := FormatTableIII(rows)
	if !strings.Contains(txt, "Spiral") || !strings.Contains(txt, "BC") {
		t.Error("formatted Table III incomplete")
	}
}

func TestFig6aShape(t *testing.T) {
	h := NewHarness()
	series, err := h.Fig6a([]int{6}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	f := series[0].Factors
	if f[0] != 1 {
		t.Errorf("k=1 factor = %g, want 1", f[0])
	}
	// Paper: p=2 gain between 2x (wire-dominated) and 4x
	// (via-dominated); allow the capacitance penalty to pull it a bit
	// below 2.
	if f[1] < 1.3 || f[1] > 4.2 {
		t.Errorf("k=2 factor = %g outside plausible band", f[1])
	}
	if f[2] <= f[1] {
		t.Errorf("k=4 factor %g not above k=2 %g", f[2], f[1])
	}
	// Diminishing returns: factor grows sublinearly in k.
	if f[2] >= 2*f[1] {
		t.Errorf("no diminishing returns: k=2 %g, k=4 %g", f[1], f[2])
	}
}

func TestFig6bShape(t *testing.T) {
	h := NewHarness()
	series, err := h.Fig6b(6, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	norm := map[Method][]float64{}
	for _, s := range series {
		norm[s.Method] = s.Normalized
	}
	// S at k=1 is the normalization point.
	if got := norm[MethodSpiral][0]; got != 1 {
		t.Errorf("S(k=1) normalized = %g, want 1", got)
	}
	// Other methods sit below the spiral baseline.
	for _, m := range []Method{MethodBurcea, MethodBC, MethodLin} {
		if len(norm[m]) == 0 {
			t.Fatalf("missing series for %s", m)
		}
		if norm[m][0] >= 1 {
			t.Errorf("%s(k=1) = %g, want < 1 (below spiral)", m, norm[m][0])
		}
	}
	// All methods improve with parallel wires.
	for m, f := range norm {
		if f[1] <= f[0] {
			t.Errorf("%s did not improve with parallel wires: %v", m, f)
		}
	}
	txt := FormatFig6b(6, series)
	if !strings.Contains(txt, "k=2") {
		t.Error("formatted Fig 6(b) incomplete")
	}
}

func TestFormatTableIGolden(t *testing.T) {
	rows := []TableIRow{
		{Bits: 6, Method: MethodLin, Available: false},
		{Bits: 6, Method: MethodSpiral, Available: true,
			CTSfF: 0.03, CWirefF: 0.9, CBBfF: 0.5, NV: 43, LUm: 77,
			RVkOhm: 0.002, RTotalkOhm: 0.03},
	}
	txt := FormatTableI(rows)
	if !strings.Contains(txt, "(43, 77)") {
		t.Errorf("missing (NV, L) cell:\n%s", txt)
	}
	if !strings.Contains(txt, "(0.002, 0.030)") {
		t.Errorf("missing (RV, Rtot) cell:\n%s", txt)
	}
	if !strings.Contains(txt, " - ") && !strings.Contains(txt, "-") {
		t.Error("missing dash for unavailable method")
	}
}

func TestPrefetchFillsCache(t *testing.T) {
	h := NewHarness()
	h.AnnealMoves = 1500
	if err := h.Prefetch([]int{6}); err != nil {
		t.Fatal(err)
	}
	// Table builders must now hit the cache: same pointers come back.
	a, err := h.Run(MethodSpiral, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(MethodSpiral, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("prefetch did not populate the cache")
	}
}
