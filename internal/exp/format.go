package exp

import (
	"fmt"
	"strings"
)

// FormatTableI renders Table I rows in the paper's layout: one line per
// bit count, method-major column groups.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	b.WriteString("TABLE I: CC array: Electrical metrics (Cu = 5 fF)\n")
	fmt.Fprintf(&b, "%-5s %-4s %10s %12s %10s %16s %20s\n",
		"#bits", "mthd", "sumCTS fF", "sumCwire fF", "sumCBB fF", "(NV, L um)", "(RV, Rtot) kOhm")
	cur := -1
	for _, r := range rows {
		if r.Bits != cur {
			if cur != -1 {
				b.WriteString("\n")
			}
			cur = r.Bits
		}
		if !r.Available {
			fmt.Fprintf(&b, "%-5d %-4s %10s %12s %10s %16s %20s\n",
				r.Bits, r.Method, "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-5d %-4s %10.3f %12.1f %10.1f %16s %20s\n",
			r.Bits, r.Method, r.CTSfF, r.CWirefF, r.CBBfF,
			fmt.Sprintf("(%d, %.0f)", r.NV, r.LUm),
			fmt.Sprintf("(%.3f, %.3f)", r.RVkOhm, r.RTotalkOhm))
	}
	return b.String()
}

// FormatTableII renders Table II rows.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	b.WriteString("TABLE II: CC array: Performance metrics (Cu = 5 fF)\n")
	fmt.Fprintf(&b, "%-5s %-4s %12s %22s %12s\n",
		"#bits", "mthd", "Area um^2", "{|DNL|, |INL|} LSB", "f3dB MHz")
	cur := -1
	for _, r := range rows {
		if r.Bits != cur {
			if cur != -1 {
				b.WriteString("\n")
			}
			cur = r.Bits
		}
		if !r.Available {
			fmt.Fprintf(&b, "%-5d %-4s %12s %22s %12s\n", r.Bits, r.Method, "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-5d %-4s %12.0f %22s %12.1f\n",
			r.Bits, r.Method, r.AreaUm2,
			fmt.Sprintf("{%.3f, %.3f}", r.DNL, r.INL), r.F3dBMHz)
	}
	return b.String()
}

// FormatTableIII renders Table III rows.
func FormatTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	b.WriteString("TABLE III: Runtimes for the proposed CC layout algorithms\n")
	fmt.Fprintf(&b, "%-7s", "#bits")
	for _, r := range rows {
		fmt.Fprintf(&b, " %9d", r.Bits)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-7s", "Spiral")
	for _, r := range rows {
		fmt.Fprintf(&b, " %8.4fs", r.SpiralSec)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-7s", "BC")
	for _, r := range rows {
		fmt.Fprintf(&b, " %8.4fs", r.BCSec)
	}
	b.WriteString("\n")
	return b.String()
}

// FormatFig6a renders the Fig. 6(a) improvement-factor series.
func FormatFig6a(series []Fig6aSeries) string {
	var b strings.Builder
	b.WriteString("Fig 6(a): f3dB improvement factor vs parallel wires (spiral)\n")
	if len(series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-6s", "#bits")
	for _, k := range series[0].Ks {
		fmt.Fprintf(&b, " %7s", fmt.Sprintf("k=%d", k))
	}
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-6d", s.Bits)
		for _, f := range s.Factors {
			fmt.Fprintf(&b, " %7.2f", f)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFig6b renders the Fig. 6(b) normalized-frequency series.
func FormatFig6b(bits int, series []Fig6bSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6(b): f3dB vs parallel wires at %d bits, normalized to S(k=1)\n", bits)
	if len(series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-6s", "mthd")
	for _, k := range series[0].Ks {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("k=%d", k))
	}
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-6s", s.Method)
		for _, f := range s.Normalized {
			fmt.Fprintf(&b, " %9.4f", f)
		}
		b.WriteString("\n")
	}
	return b.String()
}
