package exp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ccdac/internal/fault"
)

// The pool tests use fault injection on the exp.job stage; they must
// not run in parallel with each other (process-global registry).

func TestPrefetchPanickingJobIsPerJobError(t *testing.T) {
	defer fault.Reset()
	// 6 bits offers all four methods; panic the second job dispatched.
	fault.EnablePanic(fault.StageExpJob, 1, "boom in job")

	h := NewHarness()
	h.AnnealMoves = 500
	err := h.PrefetchContext(context.Background(), []int{6})
	if err == nil {
		t.Fatal("expected the panicking job's error to surface")
	}
	if !strings.Contains(err.Error(), "recovered panic: fault: injected panic at exp.job: boom in job") {
		t.Errorf("error does not report the recovered panic: %v", err)
	}
	// Exactly one job failed; the three siblings completed and cached.
	h.mu.Lock()
	cached := len(h.cache)
	h.mu.Unlock()
	if cached != len(Methods)-1 {
		t.Errorf("got %d cached sibling results, want %d", cached, len(Methods)-1)
	}
}

func TestPrefetchFailingJobIsJoined(t *testing.T) {
	defer fault.Reset()
	sentinel := errors.New("injected job failure")
	fault.Enable(fault.StageExpJob, 0, sentinel)

	h := NewHarness()
	h.AnnealMoves = 500
	err := h.PrefetchContext(context.Background(), []int{6})
	if !errors.Is(err, sentinel) {
		t.Fatalf("joined error must match the injected cause, got %v", err)
	}
	h.mu.Lock()
	cached := len(h.cache)
	h.mu.Unlock()
	if cached != len(Methods)-1 {
		t.Errorf("got %d cached sibling results, want %d", cached, len(Methods)-1)
	}
}

func TestPrefetchBoundedWorkers(t *testing.T) {
	h := NewHarness()
	h.Workers = 1
	h.AnnealMoves = 500
	if err := h.Prefetch([]int{6}); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	cached := len(h.cache)
	h.mu.Unlock()
	if cached != len(Methods) {
		t.Errorf("got %d cached results, want %d", cached, len(Methods))
	}
}

func TestPrefetchCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := NewHarness()
	err := h.PrefetchContext(ctx, []int{6})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled through the joined error, got %v", err)
	}
}

func TestJobTimeout(t *testing.T) {
	h := NewHarness()
	h.JobTimeout = time.Nanosecond
	err := h.PrefetchContext(context.Background(), []int{6})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded per job, got %v", err)
	}
}
