// Package exp regenerates every table and figure of the paper's
// evaluation (Sec. V): Table I (electrical metrics), Table II
// (performance metrics), Table III (runtimes), and the data series of
// Figs. 2-6. Methods follow the paper's conditions: the spiral ("S")
// and best block-chessboard ("BC") flows use parallel routing on
// critical bits; the baselines "[1]" (annealed stand-in) and "[7]"
// (chessboard) do not; "[1]" reports even bit counts only.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"ccdac/internal/core"
	"ccdac/internal/fault"
	"ccdac/internal/obs"
	"ccdac/internal/place"
	"ccdac/internal/tech"
)

// Method identifies a column of the paper's tables.
type Method string

const (
	// MethodLin is "[1]": the annealed stand-in for Lin et al.
	MethodLin Method = "[1]"
	// MethodBurcea is "[7]": the chessboard placement of Burcea et al.
	MethodBurcea Method = "[7]"
	// MethodSpiral is "S": the paper's spiral placement.
	MethodSpiral Method = "S"
	// MethodBC is "BC": the best block-chessboard structure.
	MethodBC Method = "BC"
)

// Methods lists the table columns in paper order.
var Methods = []Method{MethodLin, MethodBurcea, MethodSpiral, MethodBC}

// DefaultBits is the paper's N range.
var DefaultBits = []int{6, 7, 8, 9, 10}

// DefaultParallel is the parallel-wire count applied to critical bits
// of the S and BC flows in the tables (Sec. IV-B4).
const DefaultParallel = 2

// Harness runs and caches flow results for the tables and figures.
type Harness struct {
	// Parallel overrides DefaultParallel when > 0.
	Parallel int
	// ThetaSteps forwards to core.Config (0 = default).
	ThetaSteps int
	// AnnealMoves caps the baseline's SA effort (0 = core default).
	AnnealMoves int
	// Tech overrides the process technology (nil = tech.FinFET12).
	Tech *tech.Technology
	// Workers bounds Prefetch's concurrency (0 = GOMAXPROCS). One
	// worker per job is never spawned: the pool is fixed-size.
	Workers int
	// JobTimeout bounds each Prefetch job's wall time (0 = none);
	// a timed-out job reports a per-job error, siblings continue.
	JobTimeout time.Duration
	// Memo arms the process-wide stage caches (core.Config.Memo) for
	// every run the harness launches. Results are bitwise identical;
	// callers that re-run overlapping configurations (calibration,
	// knob sweeps) trade memory for large wall-time savings.
	Memo bool

	mu    sync.Mutex
	cache map[string]*core.Result
}

// NewHarness returns a harness with the paper's default settings.
func NewHarness() *Harness { return &Harness{cache: map[string]*core.Result{}} }

func (h *Harness) parallel() int {
	if h.Parallel > 0 {
		return h.Parallel
	}
	return DefaultParallel
}

// Available reports whether the paper evaluates the method at this bit
// count ("[1]" columns are dashes for 7- and 9-bit DACs).
func Available(m Method, bits int) bool {
	return m != MethodLin || bits%2 == 0
}

// Run returns the (cached) flow result for a method at a bit count.
func (h *Harness) Run(m Method, bits int) (*core.Result, error) {
	return h.RunContext(context.Background(), m, bits)
}

// RunContext is Run under a context: cancellation and deadlines abort
// the flow at its next stage boundary.
func (h *Harness) RunContext(ctx context.Context, m Method, bits int) (*core.Result, error) {
	if !Available(m, bits) {
		return nil, fmt.Errorf("exp: %s does not report %d-bit results", m, bits)
	}
	key := fmt.Sprintf("%s/%d/p%d", m, bits, h.parallel())
	h.mu.Lock()
	if r, ok := h.cache[key]; ok {
		h.mu.Unlock()
		return r, nil
	}
	h.mu.Unlock()

	var r *core.Result
	var err error
	switch m {
	case MethodLin:
		cfg := core.Config{Bits: bits, Style: place.Annealed, ThetaSteps: h.ThetaSteps, Tech: h.Tech, Memo: h.Memo}
		cfg.Anneal = place.DefaultAnnealConfig()
		cfg.Anneal.Moves = h.AnnealMoves
		r, err = core.RunContext(ctx, cfg)
	case MethodBurcea:
		r, err = core.RunContext(ctx, core.Config{Bits: bits, Style: place.Chessboard, ThetaSteps: h.ThetaSteps, Tech: h.Tech, Memo: h.Memo})
	case MethodSpiral:
		r, err = core.RunContext(ctx, core.Config{
			Bits: bits, Style: place.Spiral,
			MaxParallel: h.parallel(), ThetaSteps: h.ThetaSteps, Tech: h.Tech, Memo: h.Memo,
		})
	case MethodBC:
		r, _, err = core.RunBestBCContext(ctx, core.Config{
			Bits: bits, MaxParallel: h.parallel(), ThetaSteps: h.ThetaSteps, Tech: h.Tech, Memo: h.Memo,
		})
	default:
		return nil, fmt.Errorf("exp: unknown method %q", m)
	}
	if err != nil {
		return nil, fmt.Errorf("exp: %s %d-bit: %w", m, bits, err)
	}
	h.mu.Lock()
	h.cache[key] = r
	h.mu.Unlock()
	return r, nil
}

type job struct {
	m Method
	n int
}

// Prefetch computes every available (method, bits) flow result
// concurrently and fills the cache, so the subsequent table builders
// only read. Results are deterministic regardless of scheduling: each
// run is seeded and independent.
func (h *Harness) Prefetch(bits []int) error {
	return h.PrefetchContext(context.Background(), bits)
}

// PrefetchContext runs the prefetch on a bounded worker pool under a
// context. Each job is isolated: a job that fails — or panics — yields
// a per-job error while sibling jobs run to completion, and the
// returned error joins every per-job failure (nil when all succeed).
// Cancelling ctx stops job dispatch and aborts in-flight jobs at their
// next stage boundary; JobTimeout (if set) bounds each job alone.
func (h *Harness) PrefetchContext(ctx context.Context, bits []int) error {
	var jobs []job
	for _, n := range bits {
		for _, m := range Methods {
			if Available(m, n) {
				jobs = append(jobs, job{m, n})
			}
		}
	}
	workers := h.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan int)
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				errs[i] = h.runJob(ctx, jobs[i])
			}
		}()
	}
	for i := range jobs {
		if ctx.Err() != nil {
			errs[i] = fmt.Errorf("exp: %s %d-bit: not started: %w", jobs[i].m, jobs[i].n, ctx.Err())
			continue
		}
		jobCh <- i
	}
	close(jobCh)
	wg.Wait()
	return errors.Join(errs...)
}

// runJob executes one prefetch job with panic containment and the
// optional per-job timeout. A recovered panic becomes this job's
// error; it never takes down the pool. Each job runs under its own
// observability span (errored on failure) and feeds the pool's job
// counters and duration histogram.
func (h *Harness) runJob(ctx context.Context, j job) (err error) {
	ctx, span := obs.StartSpan(ctx, "exp.job")
	span.SetAttr("method", string(j.m))
	span.SetAttr("bits", strconv.Itoa(j.n))
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exp: %s %d-bit: recovered panic: %v", j.m, j.n, r)
		}
		obs.Count(ctx, "ccdac_exp_jobs_total", 1)
		if err != nil {
			obs.Count(ctx, "ccdac_exp_job_failures_total", 1)
		}
		obs.ObserveDuration(ctx, "ccdac_exp_job_seconds", time.Since(start))
		span.Fail(err)
		span.End()
	}()
	if h.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.JobTimeout)
		defer cancel()
	}
	if ferr := fault.Check(fault.StageExpJob); ferr != nil {
		return fmt.Errorf("exp: %s %d-bit: %w", j.m, j.n, ferr)
	}
	_, err = h.RunContext(ctx, j.m, j.n)
	return err
}

// TableIRow is one (bits, method) cell group of Table I.
type TableIRow struct {
	Bits      int
	Method    Method
	Available bool
	// CTSfF, CWirefF, CBBfF are the capacitance sums in fF.
	CTSfF, CWirefF, CBBfF float64
	// NV is ΣN_V (via cuts); LUm is ΣL (total wirelength, um).
	NV  int
	LUm float64
	// RVkOhm and RTotalkOhm are the critical bit's total via and
	// wire+via resistance in kOhm.
	RVkOhm, RTotalkOhm float64
}

// TableI regenerates the paper's Table I for the given bit counts.
func (h *Harness) TableI(bits []int) ([]TableIRow, error) {
	var rows []TableIRow
	for _, n := range bits {
		for _, m := range Methods {
			row := TableIRow{Bits: n, Method: m, Available: Available(m, n)}
			if row.Available {
				r, err := h.Run(m, n)
				if err != nil {
					return nil, err
				}
				crit := r.Electrical.Bits[r.CriticalBit]
				row.CTSfF = r.Electrical.CTSfF
				row.CWirefF = r.Electrical.CWirefF
				row.CBBfF = r.Electrical.CBBfF
				row.NV = r.Electrical.ViaCuts
				row.LUm = r.Electrical.WirelengthUm
				row.RVkOhm = crit.RViaOhm / 1000
				row.RTotalkOhm = (crit.RViaOhm + crit.RWireOhm) / 1000
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// TableIIRow is one (bits, method) cell group of Table II.
type TableIIRow struct {
	Bits      int
	Method    Method
	Available bool
	AreaUm2   float64
	// DNL and INL are the worst-case absolute values in LSB.
	DNL, INL float64
	F3dBMHz  float64
}

// TableII regenerates the paper's Table II.
func (h *Harness) TableII(bits []int) ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, n := range bits {
		for _, m := range Methods {
			row := TableIIRow{Bits: n, Method: m, Available: Available(m, n)}
			if row.Available {
				r, err := h.Run(m, n)
				if err != nil {
					return nil, err
				}
				row.AreaUm2 = r.Electrical.AreaUm2
				row.F3dBMHz = r.F3dBHz / 1e6
				if r.NL != nil {
					row.DNL = r.NL.MaxAbsDNL
					row.INL = r.NL.MaxAbsINL
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// TableIIIRow reports the constructive layout runtimes of Table III.
type TableIIIRow struct {
	Bits             int
	SpiralSec, BCSec float64
}

// TableIII regenerates the paper's Table III (place+route wall time).
func (h *Harness) TableIII(bits []int) ([]TableIIIRow, error) {
	var rows []TableIIIRow
	for _, n := range bits {
		s, err := h.Run(MethodSpiral, n)
		if err != nil {
			return nil, err
		}
		bc, err := h.Run(MethodBC, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIIIRow{
			Bits:      n,
			SpiralSec: (s.PlaceTime + s.RouteTime).Seconds(),
			BCSec:     (bc.PlaceTime + bc.RouteTime).Seconds(),
		})
	}
	return rows, nil
}

// Fig6aSeries is the frequency-improvement-factor curve of Fig. 6(a):
// f3dB with k parallel wires over f3dB with one wire, for spiral
// placements.
type Fig6aSeries struct {
	Bits    int
	Ks      []int
	Factors []float64
}

// Fig6a computes the spiral parallel-wire improvement factors.
func (h *Harness) Fig6a(bits []int, ks []int) ([]Fig6aSeries, error) {
	var out []Fig6aSeries
	for _, n := range bits {
		f, err := core.ParallelSweep(core.Config{Bits: n, Style: place.Spiral}, ks)
		if err != nil {
			return nil, err
		}
		s := Fig6aSeries{Bits: n, Ks: ks, Factors: make([]float64, len(ks))}
		base := f[0]
		for i := range f {
			s.Factors[i] = f[i] / base
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig6bSeries is one method's curve of Fig. 6(b): f3dB versus parallel
// wire count, normalized to the spiral's single-wire f3dB.
type Fig6bSeries struct {
	Method     Method
	Ks         []int
	Normalized []float64
}

// Fig6b computes f3dB(method, k) / f3dB(S, k=1) for every method at
// one bit count. The "[1]" baseline requires an even bit count.
func (h *Harness) Fig6b(bits int, ks []int) ([]Fig6bSeries, error) {
	styleOf := map[Method]core.Config{
		MethodLin:    {Bits: bits, Style: place.Annealed, Anneal: place.DefaultAnnealConfig()},
		MethodBurcea: {Bits: bits, Style: place.Chessboard},
		MethodSpiral: {Bits: bits, Style: place.Spiral},
		MethodBC:     {Bits: bits, Style: place.BlockChessboard},
	}
	base, err := core.ParallelSweep(core.Config{Bits: bits, Style: place.Spiral}, []int{1})
	if err != nil {
		return nil, err
	}
	var out []Fig6bSeries
	for _, m := range Methods {
		if !Available(m, bits) {
			continue
		}
		f, err := core.ParallelSweep(styleOf[m], ks)
		if err != nil {
			return nil, err
		}
		s := Fig6bSeries{Method: m, Ks: ks, Normalized: make([]float64, len(ks))}
		for i := range f {
			s.Normalized[i] = f[i] / base[0]
		}
		out = append(out, s)
	}
	return out, nil
}
