package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorder captures what Check's returned func reports without failing
// the real test.
type recorder struct {
	testing.TB
	failed bool
	msg    string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = strings.ReplaceAll(format, "%", "")
	for _, a := range args {
		if s, ok := a.(string); ok {
			r.msg += " " + s
		}
	}
}

func TestCleanBodyPasses(t *testing.T) {
	rec := &recorder{TB: t}
	done := Check(rec)
	// A goroutine that finishes before the check settles is not a leak.
	ch := make(chan struct{})
	go func() { close(ch) }()
	<-ch
	done()
	if rec.failed {
		t.Fatalf("clean body reported a leak: %s", rec.msg)
	}
}

func TestLeakIsDetectedAndNamed(t *testing.T) {
	rec := &recorder{TB: t}
	done := Check(rec)
	stop := make(chan struct{})
	go leakyWorker(stop)
	done()
	close(stop)
	if !rec.failed {
		t.Fatal("running goroutine not reported as a leak")
	}
	if !strings.Contains(rec.msg, "leakyWorker") {
		t.Fatalf("leak report does not name the goroutine: %s", rec.msg)
	}
}

// leakyWorker blocks until stopped; a named function so the failure
// message can be asserted on.
func leakyWorker(stop chan struct{}) {
	<-stop
}

func TestSlowShutdownSettles(t *testing.T) {
	rec := &recorder{TB: t}
	done := Check(rec)
	// A goroutine that exits inside the retry window must not trip the
	// check — shutdown is asynchronous by nature.
	go time.Sleep(5 * retryDelay)
	done()
	if rec.failed {
		t.Fatalf("slow-but-terminating goroutine reported as leak: %s", rec.msg)
	}
}
