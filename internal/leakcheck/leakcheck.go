// Package leakcheck asserts that a test leaves no goroutines behind.
// The observability stack leans on background goroutines — SSE
// subscriber pumps, the write-behind persister, triggered profile
// captures — and each of them has a shutdown path that is easy to
// break silently: the test passes, the goroutine lives on, and a
// long-running daemon bleeds memory. Snapshotting the goroutine set
// before the test body and diffing it afterwards turns that silent
// leak into a failure naming the exact stack that survived.
//
// Usage:
//
//	func TestSSEChurn(t *testing.T) {
//		defer leakcheck.Check(t)()
//		// ... spin up and tear down subscribers ...
//	}
//
// Goroutines shut down asynchronously (closed channels race with
// scheduler wakeups), so the diff retries with backoff before
// declaring a leak.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// ignoredPrefixes matches goroutines the runtime and stdlib own:
// always-on system goroutines plus pools (net/http keep-alive, testing
// harness plumbing) whose lifecycle the test cannot control.
var ignoredPrefixes = []string{
	"testing.",
	"runtime.",
	"os/signal.",
	"net/http.(*persistConn",
	"net/http.(*Transport",
	"net/http.setRequestCancel",
	"net.(*",
	"crypto/tls.",
	"internal/poll.",
}

// maxWait bounds the settle loop: ~50 retries at 20ms.
const (
	retryDelay = 20 * time.Millisecond
	maxRetries = 50
)

// Check snapshots the current goroutine set and returns a function
// that fails t if new, non-ignored goroutines are still running after
// the settle window. Call it first thing and defer the result:
//
//	defer leakcheck.Check(t)()
func Check(t testing.TB) func() {
	t.Helper()
	before := interesting(snapshot())
	return func() {
		t.Helper()
		var leaked []string
		for i := 0; i < maxRetries; i++ {
			leaked = diff(before, interesting(snapshot()))
			if len(leaked) == 0 {
				return
			}
			time.Sleep(retryDelay)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s",
			len(leaked), strings.Join(leaked, "\n---\n"))
	}
}

// snapshot returns every goroutine's stack as separate stanzas.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(string(buf), "\n\n")
}

// interesting filters out the current goroutine and everything the
// allowlist matches, keyed for set-difference by creation site plus
// top frame (goroutine IDs churn; identity of purpose is what leaks).
func interesting(stacks []string) map[string]string {
	out := make(map[string]string, len(stacks))
	for _, s := range stacks {
		s = strings.TrimSpace(s)
		if s == "" || strings.Contains(s, "leakcheck.snapshot") {
			continue
		}
		if ignored(s) {
			continue
		}
		out[stackKey(s)] = s
	}
	return out
}

func ignored(stack string) bool {
	// Only the top frame and the "created by" line identify the
	// goroutine's owner — deeper frames (every stack bottoms out in
	// runtime.goexit) would match the allowlist spuriously.
	top, created := ownerLines(stack)
	for _, p := range ignoredPrefixes {
		if strings.HasPrefix(top, p) || strings.HasPrefix(created, p) {
			return true
		}
	}
	return false
}

// ownerLines extracts a stanza's top function frame and its creation
// site (without the "created by " prefix; "" when absent).
func ownerLines(stack string) (top, created string) {
	for _, line := range strings.Split(stack, "\n") {
		line = strings.TrimSpace(line)
		if top == "" && isFuncLine(line) {
			top = line
		}
		if rest := strings.TrimPrefix(line, "created by "); rest != line {
			created = rest
		}
	}
	return top, created
}

// isFuncLine reports whether a stanza line names a function (as
// opposed to the goroutine header or a file:line location).
func isFuncLine(line string) bool {
	return line != "" && !strings.HasPrefix(line, "goroutine ") &&
		!strings.HasPrefix(line, "\t") && !strings.HasPrefix(line, "/") &&
		strings.Contains(line, "(")
}

// stackKey identifies a goroutine by its top frame and creation site
// (goroutine IDs churn; identity of purpose is what leaks).
func stackKey(stack string) string {
	top, created := ownerLines(stack)
	return top + " | " + created
}

// diff returns the stacks present in after but not before, sorted for
// stable failure output.
func diff(before, after map[string]string) []string {
	var out []string
	for key, stack := range after {
		if _, ok := before[key]; ok {
			continue
		}
		out = append(out, fmt.Sprintf("[%s]\n%s", key, stack))
	}
	sort.Strings(out)
	return out
}
