package memo

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestGetPutLRUOrder(t *testing.T) {
	c := New("t", 30, 0)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Put("c", 3, 10)
	// Touch "a" so "b" is now least recently used.
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("d", 4, 10) // exceeds 30 bytes: evicts "b"
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes != 30 || st.Entries != 3 {
		t.Fatalf("bytes/entries = %d/%d, want 30/3", st.Bytes, st.Entries)
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	c := New("t", 100, 0)
	c.Put("a", 1, 10)
	c.Put("a", 2, 30)
	st := c.Stats()
	if st.Bytes != 30 || st.Entries != 1 {
		t.Fatalf("bytes/entries = %d/%d, want 30/1", st.Bytes, st.Entries)
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("replace did not take: %v", v)
	}
}

func TestOversizedValueNotStored(t *testing.T) {
	c := New("t", 10, 0)
	c.Put("big", 1, 11)
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized value must not be stored")
	}
	if st := c.Stats(); st.Bytes != 0 {
		t.Fatalf("bytes = %d, want 0", st.Bytes)
	}
}

func TestDisabledCache(t *testing.T) {
	c := New("t", 0, 0)
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("maxBytes <= 0 must disable storage")
	}
	var nilCache *Cache
	nilCache.Put("a", 1, 1) // must not panic
	if _, ok := nilCache.Get("a"); ok {
		t.Fatal("nil cache Get must miss")
	}
}

func TestInvalidateAndPurge(t *testing.T) {
	c := New("t", 100, 0)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	if !c.Invalidate("a") {
		t.Fatal("Invalidate(a) should report true")
	}
	if c.Invalidate("a") {
		t.Fatal("second Invalidate(a) should report false")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should be gone")
	}
	c.Purge()
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("purge left bytes/entries = %d/%d", st.Bytes, st.Entries)
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("invalidate/purge must not count as evictions, got %d", st.Evictions)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New("t", 100, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("a", 1, 10)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry should hit")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired entry should miss")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 0 {
		t.Fatalf("expiry accounting: evictions=%d entries=%d", st.Evictions, st.Entries)
	}
}

// TestByteBoundUnderConcurrentLoad hammers one small cache from many
// goroutines and checks the byte bound is never exceeded (observed at
// quiescence and spot-checked during the run) and accounting stays
// consistent. Run with -race.
func TestByteBoundUnderConcurrentLoad(t *testing.T) {
	const maxBytes = 1 << 10
	c := New("t", maxBytes, 0)
	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	// Sampler: the bound must hold mid-flight, not just at quiescence.
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := c.Stats(); st.Bytes > maxBytes {
				t.Errorf("bytes %d exceeds bound %d", st.Bytes, maxBytes)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(64))
				switch rng.Intn(4) {
				case 0:
					c.Put(k, i, int64(1+rng.Intn(200)))
				case 1:
					c.Invalidate(k)
				default:
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-samplerDone
	st := c.Stats()
	if st.Bytes > maxBytes {
		t.Fatalf("final bytes %d exceeds bound %d", st.Bytes, maxBytes)
	}
	if st.Entries < 0 || st.Bytes < 0 {
		t.Fatalf("negative accounting: %+v", st)
	}
}

func TestKeyInjectivity(t *testing.T) {
	// Adjacent fields must not re-associate.
	a := NewKey("d").Str("ab").Str("c").Sum()
	b := NewKey("d").Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("string fields re-associated")
	}
	// Type tags separate equal byte patterns: this float's bit pattern
	// is exactly the integer 1's encoding.
	if NewKey("d").I64(1).Sum() == NewKey("d").F64(math.Float64frombits(1)).Sum() {
		t.Fatal("int and float fields collided")
	}
	// Domains separate identical field sequences.
	if NewKey("d1").Int(7).Sum() == NewKey("d2").Int(7).Sum() {
		t.Fatal("domains collided")
	}
	// Slice lengths are part of the identity.
	if NewKey("d").Ints([]int{1, 2}).Ints([]int{3}).Sum() == NewKey("d").Ints([]int{1}).Ints([]int{2, 3}).Sum() {
		t.Fatal("int slices re-associated")
	}
	// Same sequence, same key.
	if NewKey("d").Str("x").F64(2.5).Bool(true).Sum() != NewKey("d").Str("x").F64(2.5).Bool(true).Sum() {
		t.Fatal("identical sequences should produce identical keys")
	}
}

func TestContextEnable(t *testing.T) {
	ctx := context.Background()
	if Enabled(ctx) {
		t.Fatal("memo must default off")
	}
	on := WithEnabled(ctx)
	if !Enabled(on) {
		t.Fatal("WithEnabled should enable")
	}
	if !Enabled(context.WithValue(on, "k", "v")) { //nolint:staticcheck // deliberate derived ctx
		t.Fatal("enable must survive derived contexts")
	}
	off := WithBypass(on)
	if Enabled(off) {
		t.Fatal("WithBypass should win inside an enabled tree")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	c1 := Register(New("zz_test_b", 100, 0))
	c2 := Register(New("zz_test_a", 100, 0))
	c1.Put("x", 1, 10)
	c2.Put("y", 2, 20)
	c2.Get("y")
	snap := Snapshot()
	var sawA, sawB bool
	lastName := ""
	for _, st := range snap {
		if st.Name < lastName {
			t.Fatalf("snapshot not sorted: %q after %q", st.Name, lastName)
		}
		lastName = st.Name
		switch st.Name {
		case "zz_test_a":
			sawA = true
			if st.Hits != 1 || st.Bytes != 20 {
				t.Fatalf("zz_test_a stats: %+v", st)
			}
		case "zz_test_b":
			sawB = true
		}
	}
	if !sawA || !sawB {
		t.Fatal("registered caches missing from snapshot")
	}
}
