package memo

import (
	"sync"
	"testing"
	"time"
)

// fakeSpill is an in-memory Spill recording traffic.
type fakeSpill struct {
	mu   sync.Mutex
	data map[string][]byte
	puts int
}

func newFakeSpill() *fakeSpill { return &fakeSpill{data: map[string][]byte{}} }

func (f *fakeSpill) SpillPut(cache, key string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.data[cache+"/"+key] = data
	f.puts++
}

func (f *fakeSpill) SpillGet(cache, key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.data[cache+"/"+key]
	return d, ok
}

var stringCodec = Codec{
	Encode: func(v any) ([]byte, bool) {
		s, ok := v.(string)
		return []byte(s), ok
	},
	Decode: func(data []byte) (any, int64, bool) {
		return string(data), int64(len(data)), true
	},
}

// TestSpillEvictRevive: entries evicted by the byte bound land in the
// spill tier and revive on a later Get, re-entering the cache.
func TestSpillEvictRevive(t *testing.T) {
	sp := newFakeSpill()
	c := New("spill", 24, 0)
	c.SetSpill(sp, stringCodec)

	c.Put("a", "value-a", 20)
	c.Put("b", "value-b", 20) // evicts a → spill
	if sp.puts != 1 {
		t.Fatalf("spill puts = %d, want 1 after eviction", sp.puts)
	}
	v, ok := c.Get("a")
	if !ok || v.(string) != "value-a" {
		t.Fatalf("Get(a) = %v, %v, want revived value", v, ok)
	}
	st := c.Stats()
	// Reviving a re-inserted it, which evicted (and spilled) b — so two
	// spill puts total, one spill hit.
	if st.SpillPuts != 2 || st.SpillHits != 1 {
		t.Errorf("stats = %+v, want SpillPuts 2, SpillHits 1", st)
	}
	// b was evicted by the revival insert — it must now revive too.
	if v, ok := c.Get("b"); !ok || v.(string) != "value-b" {
		t.Fatalf("Get(b) = %v, %v, want revived value", v, ok)
	}
}

// TestSpillUncoveredValue: values the codec does not cover are simply
// dropped on eviction, never handed to the spill tier.
func TestSpillUncoveredValue(t *testing.T) {
	sp := newFakeSpill()
	c := New("spill_uncovered", 24, 0)
	c.SetSpill(sp, stringCodec)
	c.Put("n", 42, 20) // not a string: codec reports !ok
	c.Put("s", "str", 20)
	if sp.puts != 0 {
		t.Errorf("spill puts = %d, want 0 (int entry is not encodable)", sp.puts)
	}
	if _, ok := c.Get("n"); ok {
		t.Error("uncovered evicted entry revived, want plain miss")
	}
}

// TestSpillTTLRefused: TTL caches must not spill — a revived entry
// would dodge expiry.
func TestSpillTTLRefused(t *testing.T) {
	sp := newFakeSpill()
	c := New("spill_ttl", 24, time.Minute)
	c.SetSpill(sp, stringCodec)
	c.Put("a", "value-a", 20)
	c.Put("b", "value-b", 20)
	if sp.puts != 0 {
		t.Errorf("TTL cache spilled %d entries, want 0", sp.puts)
	}
	if _, ok := c.Get("a"); ok {
		t.Error("TTL cache revived a spilled entry")
	}
}

// TestSpillConcurrent hammers a spilling cache from many goroutines —
// the -race bar for the unlock-before-IO path.
func TestSpillConcurrent(t *testing.T) {
	sp := newFakeSpill()
	c := New("spill_conc", 64, 0)
	c.SetSpill(sp, stringCodec)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := []string{"k0", "k1", "k2", "k3", "k4", "k5"}
			for i := 0; i < 50; i++ {
				k := keys[(w+i)%len(keys)]
				if v, ok := c.Get(k); ok {
					if v.(string) != "val-"+k {
						t.Errorf("Get(%s) = %v, want val-%s", k, v, k)
						return
					}
				} else {
					c.Put(k, "val-"+k, 20)
				}
			}
		}(w)
	}
	wg.Wait()
}
