// Package memo provides content-addressed memoization of pipeline
// intermediates: size-bounded LRU caches keyed by canonical hashes of
// the exact inputs each stage consumes.
//
// The caches hold immutable values — a placement matrix, a routed
// layout, a covariance matrix — that the pipeline treats as read-only
// after construction, so a hit hands out the cached pointer directly.
// Every key is derived through Key, which length- and type-prefixes
// each field before hashing (FNV-1a 128), so two different field
// sequences can never collide by concatenation.
//
// Memoization is opt-in per run: stages consult their caches only when
// the context carries the enable mark (Enabled). Library calls default
// to cold runs — identical results, no shared state — while servers,
// sweeps and calibration drivers opt in because their workloads repeat
// stage inputs heavily. Cached and cold runs produce bitwise-identical
// results (the pipeline is deterministic), so the knob trades memory
// for wall time only. See docs/PERFORMANCE.md.
package memo

import (
	"container/list"
	"context"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ctxEnable marks a context (sub)tree as memo-enabled or -bypassed.
type ctxEnable struct{}

// WithEnabled returns a context under which pipeline stages consult
// and populate their memo caches.
func WithEnabled(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxEnable{}, true)
}

// WithBypass returns a context under which stages skip their caches
// even inside an enabled tree — full recomputation, no lookups, no
// stores.
func WithBypass(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxEnable{}, false)
}

// Enabled reports whether stages under ctx should use their caches.
func Enabled(ctx context.Context) bool {
	v, _ := ctx.Value(ctxEnable{}).(bool)
	return v
}

// Spill persists evicted cache entries and restores them on a miss —
// the second tier behind the in-memory LRU. internal/store.Spiller is
// the durable implementation; spilling is always best-effort (a failed
// restore is just a miss).
type Spill interface {
	// SpillPut stores the encoded entry evicted from the named cache.
	SpillPut(cache, key string, data []byte)
	// SpillGet returns the encoded entry previously spilled under key,
	// if it is still available and intact.
	SpillGet(cache, key string) ([]byte, bool)
}

// Codec translates a cache's values to and from spillable bytes. Both
// directions report ok=false for values the codec does not cover
// (those entries simply don't spill).
type Codec struct {
	// Encode serializes a cache value.
	Encode func(v any) ([]byte, bool)
	// Decode reverses Encode, also reporting the restored value's cache
	// charge in bytes.
	Decode func(data []byte) (v any, size int64, ok bool)
}

// Cache is a named, byte-bounded, concurrency-safe LRU cache with
// optional TTL expiry, hit/miss/eviction accounting, and an optional
// spill tier for evicted entries.
type Cache struct {
	name string
	max  int64
	ttl  time.Duration

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	index map[string]*list.Element
	bytes int64

	hits, misses, evictions atomic.Int64
	spillPuts, spillHits    atomic.Int64

	// spill/codec, when set via SetSpill, persist evicted entries and
	// revive them on a miss. Guarded by mu for writes; reads take the
	// pointer under mu and use it outside (IO never runs locked).
	spill Spill
	codec Codec

	// now is the clock; replaced by TTL tests.
	now func() time.Time
}

type entry struct {
	key  string
	val  any
	size int64
	at   time.Time
}

// New returns an empty cache bounded to maxBytes of caller-estimated
// entry sizes (maxBytes <= 0 disables storage entirely: every Get
// misses and Put is a no-op). A non-zero ttl expires entries that old
// at lookup time. The cache is not registered for metrics exposition;
// call Register for process-global caches that /metrics should report.
func New(name string, maxBytes int64, ttl time.Duration) *Cache {
	return &Cache{
		name:  name,
		max:   maxBytes,
		ttl:   ttl,
		ll:    list.New(),
		index: map[string]*list.Element{},
		now:   time.Now,
	}
}

// Name returns the cache's registered name.
func (c *Cache) Name() string { return c.name }

// SetSpill attaches a spill tier: entries evicted by the byte bound
// are encoded with codec and handed to s, and a Get miss consults s
// before reporting absence. Spilling is disabled for TTL caches (a
// revived entry would dodge expiry) and is always best-effort. Call
// before the cache sees traffic.
func (c *Cache) SetSpill(s Spill, codec Codec) {
	if c == nil || c.ttl > 0 {
		return
	}
	c.mu.Lock()
	c.spill, c.codec = s, codec
	c.mu.Unlock()
}

// Get returns the value stored under key and marks it most recently
// used. An expired entry counts as both an eviction and a miss.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil || c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.index[key]
	if !ok {
		spill, codec := c.spill, c.codec
		c.mu.Unlock()
		c.misses.Add(1)
		if spill == nil {
			return nil, false
		}
		data, ok := spill.SpillGet(c.name, key)
		if !ok {
			return nil, false
		}
		v, size, ok := codec.Decode(data)
		if !ok {
			return nil, false
		}
		c.spillHits.Add(1)
		c.Put(key, v, size)
		return v, true
	}
	e := el.Value.(*entry)
	if c.ttl > 0 && c.now().Sub(e.at) > c.ttl {
		c.removeLocked(el)
		c.mu.Unlock()
		c.evictions.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	v := e.val
	c.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores val under key, charging size bytes against the bound
// (sizes < 1 are clamped to 1) and evicting least-recently-used
// entries to fit. A value larger than the whole bound is not stored.
func (c *Cache) Put(key string, val any, size int64) {
	if c == nil || c.max <= 0 {
		return
	}
	if size < 1 {
		size = 1
	}
	if size > c.max {
		return
	}
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.val, e.size, e.at = val, size, c.now()
		c.ll.MoveToFront(el)
	} else {
		c.index[key] = c.ll.PushFront(&entry{key: key, val: val, size: size, at: c.now()})
		c.bytes += size
	}
	var spilled []*entry
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		if c.spill != nil {
			spilled = append(spilled, back.Value.(*entry))
		}
		c.removeLocked(back)
		c.evictions.Add(1)
	}
	spill, codec := c.spill, c.codec
	c.mu.Unlock()
	// Spill outside the lock: eviction IO must not serialize the cache.
	for _, e := range spilled {
		if data, ok := codec.Encode(e.val); ok {
			c.spillPuts.Add(1)
			spill.SpillPut(c.name, e.key, data)
		}
	}
}

// Invalidate removes the entry stored under key, reporting whether one
// existed. Explicit invalidation does not count as an eviction.
func (c *Cache) Invalidate(key string) bool {
	if c == nil || c.max <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return false
	}
	c.removeLocked(el)
	return true
}

// Purge empties the cache. Counters are preserved (they are lifetime
// totals, not occupancy).
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ll.Init()
	c.index = map[string]*list.Element{}
	c.bytes = 0
	c.mu.Unlock()
}

// removeLocked unlinks el; the caller holds c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.size
}

// Stats is a point-in-time view of one cache's accounting.
type Stats struct {
	Name                    string
	Hits, Misses, Evictions int64
	Bytes, Entries          int64
	MaxBytes                int64
	// SpillPuts counts evicted entries persisted to the spill tier;
	// SpillHits counts misses answered from it (both 0 without SetSpill).
	SpillPuts, SpillHits int64
}

// Stats returns the cache's current accounting.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	bytes, entries := c.bytes, int64(c.ll.Len())
	c.mu.Unlock()
	return Stats{
		Name:      c.name,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     bytes,
		Entries:   entries,
		MaxBytes:  c.max,
		SpillPuts: c.spillPuts.Load(),
		SpillHits: c.spillHits.Load(),
	}
}

// registry collects the process-global stage caches for metrics
// exposition (serve's /metrics injects every registered cache's stats
// at scrape time).
var registry struct {
	mu     sync.Mutex
	caches []*Cache
}

// Register adds c to the process-global cache list reported by
// Snapshot. Meant for package-level stage caches; per-instance caches
// (e.g. one server's result cache) report their stats directly.
func Register(c *Cache) *Cache {
	registry.mu.Lock()
	registry.caches = append(registry.caches, c)
	registry.mu.Unlock()
	return c
}

// Snapshot returns the stats of every registered cache, sorted by name.
func Snapshot() []Stats {
	registry.mu.Lock()
	caches := append([]*Cache(nil), registry.caches...)
	registry.mu.Unlock()
	out := make([]Stats, len(caches))
	for i, c := range caches {
		out[i] = c.Stats()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PurgeAll empties every registered cache — the explicit global
// invalidation hook (tests, and operators who changed on-disk state a
// cached stage implicitly depends on).
func PurgeAll() {
	registry.mu.Lock()
	caches := append([]*Cache(nil), registry.caches...)
	registry.mu.Unlock()
	for _, c := range caches {
		c.Purge()
	}
}

// Key builds a canonical cache key by hashing a typed, length-prefixed
// encoding of each field (FNV-1a 128). Two keys collide only if their
// full field sequences are identical, so field order, omitted-default
// normalization and float bit patterns are all part of the identity.
type Key struct {
	h   hash.Hash
	buf [9]byte
}

// Field type tags keep adjacent fields from re-associating (e.g. the
// string "ab" followed by "c" hashes differently from "a" then "bc").
const (
	tagStr   = 0x01
	tagInt   = 0x02
	tagFloat = 0x03
	tagBool  = 0x04
)

// NewKey starts a key in the given domain; unrelated caches use
// distinct domains (with a version suffix) so identical field
// sequences can never cross cache kinds.
func NewKey(domain string) *Key {
	k := &Key{h: fnv.New128a()}
	return k.Str(domain)
}

func (k *Key) tagged(tag byte, payload []byte) *Key {
	k.buf[0] = tag
	binary.LittleEndian.PutUint64(k.buf[1:], uint64(len(payload)))
	k.h.Write(k.buf[:])
	k.h.Write(payload)
	return k
}

// Str appends a string field.
func (k *Key) Str(s string) *Key { return k.tagged(tagStr, []byte(s)) }

// I64 appends an integer field.
func (k *Key) I64(v int64) *Key {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return k.tagged(tagInt, b[:])
}

// Int appends an int field.
func (k *Key) Int(v int) *Key { return k.I64(int64(v)) }

// Ints appends an int-slice field (length included).
func (k *Key) Ints(vs []int) *Key {
	k.I64(int64(len(vs)))
	for _, v := range vs {
		k.I64(int64(v))
	}
	return k
}

// F64 appends a float field by exact bit pattern.
func (k *Key) F64(v float64) *Key {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return k.tagged(tagFloat, b[:])
}

// F64s appends a float-slice field (length included).
func (k *Key) F64s(vs []float64) *Key {
	k.I64(int64(len(vs)))
	for _, v := range vs {
		k.F64(v)
	}
	return k
}

// Bool appends a boolean field.
func (k *Key) Bool(v bool) *Key {
	b := []byte{0}
	if v {
		b[0] = 1
	}
	return k.tagged(tagBool, b)
}

// Sum finalizes the key as a hex digest. The Key must not be used
// after Sum.
func (k *Key) Sum() string {
	return hex.EncodeToString(k.h.Sum(nil))
}
