package gds

import (
	"fmt"
	"math"

	"ccdac/internal/geom"
	"ccdac/internal/route"
)

// Layer numbering for exported layouts: unit-capacitor outlines on the
// device layer, metals on 1..len(Layers), vias on 51+lower-layer, and
// per-capacitor identification via the datatype field.
const (
	LayerDevice  = 10
	LayerViaBase = 50
)

// FromLayout converts a routed common-centroid layout into a GDS
// library with one structure. Unit cells become BOUNDARY outlines on
// LayerDevice (datatype = capacitor index + 1, dummies 0); wires become
// PATHs on their metal layer (layer index + 1); vias become small
// BOUNDARY squares on LayerViaBase + lower layer.
func FromLayout(l *route.Layout, name string) (*Library, error) {
	lib := NewLibrary(name)
	s := &Structure{Name: name}
	lib.Structures = append(lib.Structures, s)
	dbu := func(um float64) int32 {
		v := math.Round(um * 1000) // 1 dbu = 1 nm
		if v > math.MaxInt32 || v < math.MinInt32 {
			return 0
		}
		return int32(v)
	}

	// Unit capacitor outlines.
	halfW, halfH := l.Tech.Unit.W/2, l.Tech.Unit.H/2
	for r := 0; r < l.M.Rows; r++ {
		for c := 0; c < l.M.Cols; c++ {
			cell := geom.Cell{Row: r, Col: c}
			bit := l.M.At(cell)
			p := l.CellCenter(cell)
			dt := int16(0) // dummy
			if bit >= 0 {
				dt = int16(bit + 1)
			}
			s.Elements = append(s.Elements, Boundary{
				Layer:    LayerDevice,
				Datatype: dt,
				Points: []XY{
					{dbu(p.X - halfW), dbu(p.Y - halfH)},
					{dbu(p.X + halfW), dbu(p.Y - halfH)},
					{dbu(p.X + halfW), dbu(p.Y + halfH)},
					{dbu(p.X - halfW), dbu(p.Y + halfH)},
				},
			})
		}
	}

	// Wires as paths; parallel bundles export with p-track width.
	for _, w := range l.Wires {
		if w.Seg.Len() == 0 {
			continue
		}
		pitch := l.Tech.Layers[w.Layer].Pitch
		width := pitch / 2 * float64(w.Par)
		dt := int16(0)
		if w.Bit >= 0 {
			dt = int16(w.Bit + 1)
		}
		s.Elements = append(s.Elements, Path{
			Layer:    int16(w.Layer + 1),
			Datatype: dt,
			WidthDBU: dbu(width),
			Points:   []XY{{dbu(w.Seg.A.X), dbu(w.Seg.A.Y)}, {dbu(w.Seg.B.X), dbu(w.Seg.B.Y)}},
		})
	}

	// Vias as cut squares on LayerViaBase + min(layerA, layerB).
	for _, v := range l.Vias {
		lo := v.LayerA
		if !v.Input && v.LayerB < lo {
			lo = v.LayerB
		}
		cut := l.Tech.SMinUm / 2
		dt := int16(0)
		if v.Bit >= 0 {
			dt = int16(v.Bit + 1)
		}
		s.Elements = append(s.Elements, Boundary{
			Layer:    int16(LayerViaBase + lo),
			Datatype: dt,
			Points: []XY{
				{dbu(v.At.X - cut), dbu(v.At.Y - cut)},
				{dbu(v.At.X + cut), dbu(v.At.Y - cut)},
				{dbu(v.At.X + cut), dbu(v.At.Y + cut)},
				{dbu(v.At.X - cut), dbu(v.At.Y + cut)},
			},
		})
	}
	if len(s.Elements) == 0 {
		return nil, fmt.Errorf("gds: layout produced no elements")
	}
	return lib, nil
}
