// Package gds writes and reads GDSII stream files, the interchange
// format every layout tool consumes, so generated capacitor arrays can
// leave this flow as real mask geometry. The writer emits a minimal
// but standard-conforming subset (HEADER/BGNLIB/LIBNAME/UNITS, one or
// more structures of BOUNDARY and PATH elements); the reader parses
// the same subset back, enabling round-trip tests and downstream
// inspection.
//
// GDSII encodes all numbers big-endian; coordinates are 4-byte
// integers in database units, and UNITS carries two 8-byte excess-64
// base-16 floating point "GDS reals" (implemented here from scratch).
package gds

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Record types of the subset we emit.
const (
	rtHeader   = 0x00
	rtBgnLib   = 0x01
	rtLibName  = 0x02
	rtUnits    = 0x03
	rtEndLib   = 0x04
	rtBgnStr   = 0x05
	rtStrName  = 0x06
	rtEndStr   = 0x07
	rtBoundary = 0x08
	rtPath     = 0x09
	rtLayer    = 0x0d
	rtDatatype = 0x0e
	rtWidth    = 0x0f
	rtXY       = 0x10
	rtEndEl    = 0x11
)

// Data type codes.
const (
	dtNone   = 0x00
	dtInt16  = 0x02
	dtInt32  = 0x03
	dtReal64 = 0x05
	dtASCII  = 0x06
)

// XY is one vertex in database units.
type XY struct {
	X, Y int32
}

// Element is a drawable GDS element.
type Element interface {
	isElement()
}

// Boundary is a closed polygon (GDSII requires the first vertex
// repeated at the end on stream; the struct holds it unclosed).
type Boundary struct {
	Layer    int16
	Datatype int16
	Points   []XY
}

func (Boundary) isElement() {}

// Path is a wire centerline with a width.
type Path struct {
	Layer    int16
	Datatype int16
	WidthDBU int32
	Points   []XY
}

func (Path) isElement() {}

// Structure is one GDS cell definition.
type Structure struct {
	Name     string
	Elements []Element
}

// Library is a GDS library: a set of structures sharing units.
type Library struct {
	Name string
	// UserUnitsPerDBU is the UNITS first real: user units per database
	// unit (e.g. 0.001 when 1 dbu = 1 nm and user unit = 1 um).
	UserUnitsPerDBU float64
	// MetersPerDBU is the UNITS second real (1e-9 for 1 nm dbu).
	MetersPerDBU float64
	Structures   []*Structure
}

// NewLibrary returns a library with 1 nm database units and micron
// user units.
func NewLibrary(name string) *Library {
	return &Library{Name: name, UserUnitsPerDBU: 1e-3, MetersPerDBU: 1e-9}
}

// gdsReal converts a float64 to the 8-byte GDSII excess-64 base-16
// representation.
func gdsReal(f float64) [8]byte {
	var out [8]byte
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return out
	}
	sign := byte(0)
	if f < 0 {
		sign = 0x80
		f = -f
	}
	// Normalize mantissa into [1/16, 1) with exponent base 16.
	exp := 0
	for f >= 1 {
		f /= 16
		exp++
	}
	for f < 1.0/16 {
		f *= 16
		exp--
	}
	mant := uint64(f * math.Pow(2, 56))
	if mant >= 1<<56 { // rounding overflow
		mant >>= 4
		exp++
	}
	out[0] = sign | byte(exp+64)
	for i := 0; i < 7; i++ {
		out[7-i] = byte(mant >> (8 * i))
	}
	return out
}

// gdsRealToFloat converts the 8-byte GDSII real back to float64.
func gdsRealToFloat(b [8]byte) float64 {
	sign := 1.0
	if b[0]&0x80 != 0 {
		sign = -1
	}
	exp := int(b[0]&0x7f) - 64
	mant := uint64(0)
	for i := 1; i < 8; i++ {
		mant = mant<<8 | uint64(b[i])
	}
	return sign * float64(mant) / math.Pow(2, 56) * math.Pow(16, float64(exp))
}

type recordWriter struct {
	w   io.Writer
	err error
}

func (rw *recordWriter) record(rectype, datatype byte, payload []byte) {
	if rw.err != nil {
		return
	}
	n := len(payload) + 4
	if n%2 != 0 {
		rw.err = fmt.Errorf("gds: odd record length %d", n)
		return
	}
	hdr := []byte{byte(n >> 8), byte(n), rectype, datatype}
	if _, err := rw.w.Write(hdr); err != nil {
		rw.err = err
		return
	}
	if len(payload) > 0 {
		if _, err := rw.w.Write(payload); err != nil {
			rw.err = err
		}
	}
}

func asciiPayload(s string) []byte {
	b := []byte(s)
	if len(b)%2 != 0 {
		b = append(b, 0)
	}
	return b
}

func int16Payload(vs ...int16) []byte {
	b := make([]byte, 2*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint16(b[2*i:], uint16(v))
	}
	return b
}

func int32Payload(vs ...int32) []byte {
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

func xyPayload(pts []XY, closeLoop bool) []byte {
	n := len(pts)
	if closeLoop {
		n++
	}
	b := make([]byte, 8*n)
	for i, p := range pts {
		binary.BigEndian.PutUint32(b[8*i:], uint32(p.X))
		binary.BigEndian.PutUint32(b[8*i+4:], uint32(p.Y))
	}
	if closeLoop {
		binary.BigEndian.PutUint32(b[8*len(pts):], uint32(pts[0].X))
		binary.BigEndian.PutUint32(b[8*len(pts)+4:], uint32(pts[0].Y))
	}
	return b
}

// Encode writes the library as a GDSII stream.
func (l *Library) Encode(w io.Writer) error {
	rw := &recordWriter{w: w}
	rw.record(rtHeader, dtInt16, int16Payload(600)) // stream version 6
	// BGNLIB: 12 int16 timestamps (fixed for reproducible output).
	ts := make([]int16, 12)
	rw.record(rtBgnLib, dtInt16, int16Payload(ts...))
	rw.record(rtLibName, dtASCII, asciiPayload(l.Name))
	units := append([]byte{}, func() []byte {
		a := gdsReal(l.UserUnitsPerDBU)
		b := gdsReal(l.MetersPerDBU)
		return append(a[:], b[:]...)
	}()...)
	rw.record(rtUnits, dtReal64, units)
	for _, s := range l.Structures {
		rw.record(rtBgnStr, dtInt16, int16Payload(ts...))
		rw.record(rtStrName, dtASCII, asciiPayload(s.Name))
		for _, e := range s.Elements {
			switch el := e.(type) {
			case Boundary:
				if len(el.Points) < 3 {
					return fmt.Errorf("gds: boundary needs >= 3 points, got %d", len(el.Points))
				}
				rw.record(rtBoundary, dtNone, nil)
				rw.record(rtLayer, dtInt16, int16Payload(el.Layer))
				rw.record(rtDatatype, dtInt16, int16Payload(el.Datatype))
				rw.record(rtXY, dtInt32, xyPayload(el.Points, true))
				rw.record(rtEndEl, dtNone, nil)
			case Path:
				if len(el.Points) < 2 {
					return fmt.Errorf("gds: path needs >= 2 points, got %d", len(el.Points))
				}
				rw.record(rtPath, dtNone, nil)
				rw.record(rtLayer, dtInt16, int16Payload(el.Layer))
				rw.record(rtDatatype, dtInt16, int16Payload(el.Datatype))
				rw.record(rtWidth, dtInt32, int32Payload(el.WidthDBU))
				rw.record(rtXY, dtInt32, xyPayload(el.Points, false))
				rw.record(rtEndEl, dtNone, nil)
			default:
				return fmt.Errorf("gds: unknown element type %T", e)
			}
		}
		rw.record(rtEndStr, dtNone, nil)
	}
	rw.record(rtEndLib, dtNone, nil)
	return rw.err
}

// Decode parses a GDSII stream of the subset Encode produces.
func Decode(r io.Reader) (*Library, error) {
	lib := &Library{}
	var cur *Structure
	var curEl Element
	var pendingLayer, pendingDT int16
	var pendingWidth int32
	inPath, inBoundary := false, false

	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("gds: stream ends without ENDLIB")
			}
			return nil, err
		}
		n := int(binary.BigEndian.Uint16(hdr[:2]))
		if n < 4 {
			return nil, fmt.Errorf("gds: record length %d too small", n)
		}
		payload := make([]byte, n-4)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		switch hdr[2] {
		case rtHeader, rtBgnLib, rtBgnStr:
			// timestamps/version ignored
		case rtLibName:
			lib.Name = trimASCII(payload)
		case rtUnits:
			if len(payload) != 16 {
				return nil, fmt.Errorf("gds: UNITS payload %d bytes", len(payload))
			}
			var a, b [8]byte
			copy(a[:], payload[:8])
			copy(b[:], payload[8:])
			lib.UserUnitsPerDBU = gdsRealToFloat(a)
			lib.MetersPerDBU = gdsRealToFloat(b)
		case rtStrName:
			cur = &Structure{Name: trimASCII(payload)}
			lib.Structures = append(lib.Structures, cur)
		case rtBoundary:
			inBoundary, curEl = true, nil
		case rtPath:
			inPath, curEl = true, nil
			pendingWidth = 0
		case rtLayer:
			if len(payload) < 2 {
				return nil, fmt.Errorf("gds: LAYER payload %d bytes", len(payload))
			}
			pendingLayer = int16(binary.BigEndian.Uint16(payload))
		case rtDatatype:
			if len(payload) < 2 {
				return nil, fmt.Errorf("gds: DATATYPE payload %d bytes", len(payload))
			}
			pendingDT = int16(binary.BigEndian.Uint16(payload))
		case rtWidth:
			if len(payload) < 4 {
				return nil, fmt.Errorf("gds: WIDTH payload %d bytes", len(payload))
			}
			pendingWidth = int32(binary.BigEndian.Uint32(payload))
		case rtXY:
			if len(payload) == 0 || len(payload)%8 != 0 {
				return nil, fmt.Errorf("gds: XY payload %d bytes not a multiple of 8", len(payload))
			}
			pts := make([]XY, len(payload)/8)
			for i := range pts {
				pts[i].X = int32(binary.BigEndian.Uint32(payload[8*i:]))
				pts[i].Y = int32(binary.BigEndian.Uint32(payload[8*i+4:]))
			}
			switch {
			case inBoundary:
				if len(pts) >= 2 && pts[0] == pts[len(pts)-1] {
					pts = pts[:len(pts)-1] // unclose
				}
				curEl = Boundary{Layer: pendingLayer, Datatype: pendingDT, Points: pts}
			case inPath:
				curEl = Path{Layer: pendingLayer, Datatype: pendingDT, WidthDBU: pendingWidth, Points: pts}
			default:
				return nil, fmt.Errorf("gds: XY outside element")
			}
		case rtEndEl:
			if cur == nil || curEl == nil {
				return nil, fmt.Errorf("gds: ENDEL outside structure/element")
			}
			cur.Elements = append(cur.Elements, curEl)
			inPath, inBoundary, curEl = false, false, nil
		case rtEndStr:
			cur = nil
		case rtEndLib:
			return lib, nil
		default:
			return nil, fmt.Errorf("gds: unsupported record type 0x%02x", hdr[2])
		}
	}
}

func trimASCII(b []byte) string {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}
