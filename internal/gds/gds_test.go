package gds

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
)

func TestGDSRealKnownValues(t *testing.T) {
	// 1.0 in GDS real: exponent 65 (16^1 * 1/16), mantissa 0x10000000000000.
	b := gdsReal(1.0)
	if b[0] != 0x41 || b[1] != 0x10 {
		t.Errorf("gdsReal(1.0) = % x", b)
	}
	// 1e-9 (meters per dbu): round-trip accuracy matters more than bytes.
	for _, v := range []float64{1e-9, 1e-3, 0.5, 2, 1024, 3.14159e-6} {
		got := gdsRealToFloat(gdsReal(v))
		if math.Abs(got-v)/v > 1e-12 {
			t.Errorf("round trip %g -> %g", v, got)
		}
	}
	// Sign.
	if got := gdsRealToFloat(gdsReal(-42.5)); got != -42.5 {
		t.Errorf("negative round trip: %g", got)
	}
	// Zero encodes as all-zero bytes.
	if gdsReal(0) != [8]byte{} {
		t.Error("zero must encode as zeros")
	}
	if gdsRealToFloat([8]byte{}) != 0 {
		t.Error("zero bytes must decode to 0")
	}
}

func TestGDSRealRoundTripProperty(t *testing.T) {
	f := func(raw float64) bool {
		v := raw
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		// GDS reals cover roughly 16^-64..16^63; clamp the magnitude.
		if v != 0 && (math.Abs(v) < 1e-70 || math.Abs(v) > 1e70) {
			return true
		}
		got := gdsRealToFloat(gdsReal(v))
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v)/math.Abs(v) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func sampleLibrary() *Library {
	lib := NewLibrary("testlib")
	lib.Structures = append(lib.Structures, &Structure{
		Name: "top",
		Elements: []Element{
			Boundary{Layer: 10, Datatype: 3, Points: []XY{{0, 0}, {100, 0}, {100, 100}, {0, 100}}},
			Path{Layer: 1, Datatype: 2, WidthDBU: 32, Points: []XY{{50, 50}, {50, 500}, {200, 500}}},
		},
	})
	return lib
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := lib.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "testlib" {
		t.Errorf("library name %q", got.Name)
	}
	if math.Abs(got.UserUnitsPerDBU-1e-3) > 1e-15 || math.Abs(got.MetersPerDBU-1e-9) > 1e-21 {
		t.Errorf("units %g %g", got.UserUnitsPerDBU, got.MetersPerDBU)
	}
	if len(got.Structures) != 1 || got.Structures[0].Name != "top" {
		t.Fatalf("structures: %+v", got.Structures)
	}
	els := got.Structures[0].Elements
	if len(els) != 2 {
		t.Fatalf("elements = %d", len(els))
	}
	b, ok := els[0].(Boundary)
	if !ok || b.Layer != 10 || b.Datatype != 3 || len(b.Points) != 4 {
		t.Errorf("boundary mismatch: %+v", els[0])
	}
	p, ok := els[1].(Path)
	if !ok || p.Layer != 1 || p.WidthDBU != 32 || len(p.Points) != 3 {
		t.Errorf("path mismatch: %+v", els[1])
	}
}

func TestEncodeRejectsDegenerateElements(t *testing.T) {
	lib := NewLibrary("x")
	lib.Structures = []*Structure{{
		Name:     "s",
		Elements: []Element{Boundary{Layer: 1, Points: []XY{{0, 0}, {1, 1}}}},
	}}
	if err := lib.Encode(&bytes.Buffer{}); err == nil {
		t.Error("2-point boundary must be rejected")
	}
	lib.Structures[0].Elements = []Element{Path{Layer: 1, Points: []XY{{0, 0}}}}
	if err := lib.Encode(&bytes.Buffer{}); err == nil {
		t.Error("1-point path must be rejected")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := lib.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Decode(bytes.NewReader(raw[:len(raw)-6])); err == nil {
		t.Error("truncated stream must be rejected")
	}
	if _, err := Decode(bytes.NewReader(raw[:10])); err == nil {
		t.Error("header-only stream must be rejected")
	}
}

func TestFromLayoutRoundTrip(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := FromLayout(l, "spiral6")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lib.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := got.Structures[0]

	// 64 unit cells on the device layer.
	cells, paths, vias := 0, 0, 0
	for _, e := range s.Elements {
		switch el := e.(type) {
		case Boundary:
			if el.Layer == LayerDevice {
				cells++
			}
			if el.Layer >= LayerViaBase {
				vias++
			}
		case Path:
			paths++
		}
	}
	if cells != 64 {
		t.Errorf("device boundaries = %d, want 64", cells)
	}
	if vias != len(l.Vias) {
		t.Errorf("via cuts = %d, want %d", vias, len(l.Vias))
	}
	wantPaths := 0
	for _, w := range l.Wires {
		if w.Seg.Len() > 0 {
			wantPaths++
		}
	}
	if paths != wantPaths {
		t.Errorf("paths = %d, want %d", paths, wantPaths)
	}
}

func TestFromLayoutDatatypesIdentifyBits(t *testing.T) {
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := FromLayout(l, "spiral6")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int16]int{}
	for _, e := range lib.Structures[0].Elements {
		if b, ok := e.(Boundary); ok && b.Layer == LayerDevice {
			counts[b.Datatype]++
		}
	}
	// Datatype k+1 holds capacitor C_k: C_6 has 32 cells.
	if counts[7] != 32 {
		t.Errorf("C_6 cells = %d, want 32", counts[7])
	}
	if counts[1] != 1 || counts[2] != 1 {
		t.Errorf("C_0/C_1 cells = %d/%d, want 1/1", counts[1], counts[2])
	}
}

func TestFromLayoutCoordinatesNonNegative(t *testing.T) {
	m, err := place.NewChessboard(6)
	if err != nil {
		t.Fatal(err)
	}
	l, err := route.Route(m, tech.FinFET12(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := FromLayout(l, "cb6")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range lib.Structures[0].Elements {
		var pts []XY
		switch el := e.(type) {
		case Boundary:
			pts = el.Points
		case Path:
			pts = el.Points
		}
		for _, p := range pts {
			if p.X < -1 || p.Y < -1 {
				t.Fatalf("negative coordinate %v", p)
			}
		}
	}
}

func TestASCIIPayloadPadding(t *testing.T) {
	if got := asciiPayload("abc"); len(got) != 4 || got[3] != 0 {
		t.Errorf("odd-length name not padded: %v", got)
	}
	if got := asciiPayload("abcd"); len(got) != 4 {
		t.Errorf("even-length name padded: %v", got)
	}
	if trimASCII([]byte{'a', 'b', 0}) != "ab" {
		t.Error("trailing NUL not trimmed")
	}
}

func TestDecodeNeverPanicsOnCorruption(t *testing.T) {
	// Flip bytes at every position of a valid stream: Decode must
	// either succeed or return an error — never panic or hang.
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := lib.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for pos := 0; pos < len(clean); pos++ {
		for _, flip := range []byte{0xff, 0x01, 0x80} {
			corrupt := append([]byte(nil), clean...)
			corrupt[pos] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic at pos %d flip %#x: %v", pos, flip, r)
					}
				}()
				_, _ = Decode(bytes.NewReader(corrupt))
			}()
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		{},
		{0x00},
		{0x00, 0x02, 0x00, 0x02}, // record shorter than header
		bytes.Repeat([]byte{0xaa}, 64),
	} {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("garbage %x decoded without error", data)
		}
	}
}
