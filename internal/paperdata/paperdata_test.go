package paperdata

import (
	"math"
	"testing"
)

func TestCellsComplete(t *testing.T) {
	// 4 methods at 6, 8, 9 bits; 3 at 7 and 10 ([1] absent).
	counts := map[int]int{}
	for _, c := range Cells() {
		counts[c.Bits]++
	}
	want := map[int]int{6: 4, 7: 3, 8: 4, 9: 4, 10: 3}
	for bits, n := range want {
		if counts[bits] != n {
			t.Errorf("bits %d: %d cells, want %d", bits, counts[bits], n)
		}
	}
}

func TestFindCells(t *testing.T) {
	c, ok := Find(8, Spiral)
	if !ok {
		t.Fatal("8-bit spiral missing")
	}
	if c.F3dBMHz != 3962 || c.NV != 75 {
		t.Errorf("8-bit spiral cell corrupted: %+v", c)
	}
	if _, ok := Find(7, Lin); ok {
		t.Error("7-bit [1] must be absent")
	}
	if _, ok := Find(9, Lin); !ok {
		t.Error("9-bit [1] is present in the paper's tables")
	}
}

func TestPaperInternalOrderings(t *testing.T) {
	// The embedded data must itself exhibit the paper's claims; this
	// guards against transcription errors.
	for _, bits := range []int{6, 7, 8, 9, 10} {
		s, _ := Find(bits, Spiral)
		bc, _ := Find(bits, BC)
		cb, _ := Find(bits, Burcea)
		if !(s.F3dBMHz > bc.F3dBMHz && bc.F3dBMHz > cb.F3dBMHz) {
			t.Errorf("bits %d: paper f3dB ordering broken: %g/%g/%g",
				bits, s.F3dBMHz, bc.F3dBMHz, cb.F3dBMHz)
		}
		if !(s.NV <= bc.NV && bc.NV <= cb.NV) {
			t.Errorf("bits %d: paper via ordering broken", bits)
		}
		if s.RTotalkOhm >= cb.RTotalkOhm {
			t.Errorf("bits %d: paper R ordering broken", bits)
		}
	}
	// INL: chessboard at least as good as spiral for >= 8 bits.
	for _, bits := range []int{8, 9, 10} {
		s, _ := Find(bits, Spiral)
		cb, _ := Find(bits, Burcea)
		if cb.INL > s.INL {
			t.Errorf("bits %d: paper INL ordering broken", bits)
		}
	}
}

func TestRuntimeTable(t *testing.T) {
	rt := RuntimeSeconds()
	if len(rt) != 5 {
		t.Fatalf("runtime rows = %d", len(rt))
	}
	// Superlinear growth and BC >= spiral at 10 bits.
	if rt[10][0] <= rt[6][0] || rt[10][1] < rt[10][0] {
		t.Errorf("runtime shape broken: %+v", rt)
	}
}

func TestSpearmanKnownValues(t *testing.T) {
	// Perfect monotone agreement.
	if rho := Spearman([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); math.Abs(rho-1) > 1e-12 {
		t.Errorf("rho = %g, want 1", rho)
	}
	// Perfect inversion.
	if rho := Spearman([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1}); math.Abs(rho+1) > 1e-12 {
		t.Errorf("rho = %g, want -1", rho)
	}
	// Nonlinear monotone map still rho = 1.
	if rho := Spearman([]float64{1, 2, 3, 4}, []float64{1, 8, 27, 64}); math.Abs(rho-1) > 1e-12 {
		t.Errorf("monotone map rho = %g, want 1", rho)
	}
	// Ties get average ranks; correlation defined.
	rho := Spearman([]float64{1, 1, 2, 3}, []float64{2, 2, 3, 4})
	if math.IsNaN(rho) || rho < 0.9 {
		t.Errorf("tied rho = %g", rho)
	}
	// Degenerate inputs.
	if !math.IsNaN(Spearman([]float64{1, 2}, []float64{1, 2})) {
		t.Error("too-short input must be NaN")
	}
	if !math.IsNaN(Spearman([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("zero-variance input must be NaN")
	}
}

func TestCompareSelf(t *testing.T) {
	// Comparing the paper against itself gives rho = 1 everywhere.
	measured := map[string]Cell{}
	for _, c := range Cells() {
		measured[Key(c.Bits, c.Method)] = c
	}
	for _, corr := range Compare(measured) {
		if corr.N != len(Cells()) {
			t.Errorf("%s: N = %d, want %d", corr.Metric, corr.N, len(Cells()))
		}
		if math.Abs(corr.Rho-1) > 1e-12 {
			t.Errorf("%s: self-comparison rho = %g", corr.Metric, corr.Rho)
		}
	}
}

func TestCompareSkipsMissing(t *testing.T) {
	measured := map[string]Cell{}
	for _, c := range Cells() {
		if c.Bits == 8 || c.Bits == 6 {
			measured[Key(c.Bits, c.Method)] = c
		}
	}
	for _, corr := range Compare(measured) {
		if corr.N != 8 {
			t.Errorf("%s: N = %d, want 8", corr.Metric, corr.N)
		}
	}
}
