// Package paperdata embeds the numbers published in the paper's
// Tables I-III and provides rank-correlation comparisons against this
// repository's measurements. Absolute values cannot match (the paper
// uses a proprietary 12nm PDK; see DESIGN.md), so reproduction quality
// is judged on *shape*: per-metric Spearman rank correlation across
// every (method, bits) cell both sides report, and per-row winner
// agreement.
package paperdata

import (
	"fmt"
	"math"
	"sort"
)

// Method keys match internal/exp.
const (
	Lin    = "[1]"
	Burcea = "[7]"
	Spiral = "S"
	BC     = "BC"
)

// Cell is one (bits, method) entry of the paper's Tables I and II.
type Cell struct {
	Bits   int
	Method string
	// Table I.
	CTSfF, CWirefF, CBBfF float64
	NV                    float64
	LUm                   float64
	RVkOhm, RTotalkOhm    float64
	// Table II.
	AreaUm2, DNL, INL, F3dBMHz float64
}

// Cells returns every populated cell of the paper's Tables I and II.
// The paper leaves [1] blank at 7 and 10 bits (and prints a note about
// odd sizes); blanks are simply absent here.
func Cells() []Cell {
	return []Cell{
		// 6-bit
		{Bits: 6, Method: Lin, CTSfF: 0.02, CWirefF: 1.8, CBBfF: 13.4, NV: 42, LUm: 149, RVkOhm: 0.3, RTotalkOhm: 1.2,
			AreaUm2: 200, DNL: 0.00, INL: 0.01, F3dBMHz: 929},
		{Bits: 6, Method: Burcea, CTSfF: 0.03, CWirefF: 2.8, CBBfF: 6.5, NV: 81, LUm: 229, RVkOhm: 1.1, RTotalkOhm: 2.6,
			AreaUm2: 205, DNL: 0.00, INL: 0.01, F3dBMHz: 434},
		{Bits: 6, Method: Spiral, CTSfF: 0.03, CWirefF: 0.9, CBBfF: 0.5, NV: 43, LUm: 77, RVkOhm: 0.002, RTotalkOhm: 0.03,
			AreaUm2: 200, DNL: 0.01, INL: 0.01, F3dBMHz: 39613},
		{Bits: 6, Method: BC, CTSfF: 0.03, CWirefF: 1.4, CBBfF: 1.4, NV: 78, LUm: 120, RVkOhm: 0.03, RTotalkOhm: 0.26,
			AreaUm2: 204, DNL: 0.01, INL: 0.01, F3dBMHz: 8651},
		// 7-bit ([1] absent)
		{Bits: 7, Method: Burcea, CTSfF: 0.09, CWirefF: 12.6, CBBfF: 28.9, NV: 295, LUm: 1862, RVkOhm: 4.1, RTotalkOhm: 10.0,
			AreaUm2: 819, DNL: 0.01, INL: 0.01, F3dBMHz: 25},
		{Bits: 7, Method: Spiral, CTSfF: 0.05, CWirefF: 1.9, CBBfF: 1.5, NV: 46, LUm: 167, RVkOhm: 0.002, RTotalkOhm: 0.05,
			AreaUm2: 427, DNL: 0.02, INL: 0.02, F3dBMHz: 10862},
		{Bits: 7, Method: BC, CTSfF: 0.06, CWirefF: 2.0, CBBfF: 1.5, NV: 82, LUm: 171, RVkOhm: 0.03, RTotalkOhm: 0.30,
			AreaUm2: 459, DNL: 0.01, INL: 0.01, F3dBMHz: 6639},
		// 8-bit
		{Bits: 8, Method: Lin, CTSfF: 0.07, CWirefF: 4.8, CBBfF: 21.7, NV: 92, LUm: 393, RVkOhm: 1.0, RTotalkOhm: 3.1,
			AreaUm2: 803, DNL: 0.03, INL: 0.05, F3dBMHz: 75},
		{Bits: 8, Method: Burcea, CTSfF: 0.09, CWirefF: 12.7, CBBfF: 29.8, NV: 295, LUm: 1884, RVkOhm: 4.1, RTotalkOhm: 10.0,
			AreaUm2: 819, DNL: 0.01, INL: 0.02, F3dBMHz: 23},
		{Bits: 8, Method: Spiral, CTSfF: 0.09, CWirefF: 3.0, CBBfF: 1.7, NV: 75, LUm: 256, RVkOhm: 0.002, RTotalkOhm: 0.06,
			AreaUm2: 806, DNL: 0.06, INL: 0.03, F3dBMHz: 3962},
		{Bits: 8, Method: BC, CTSfF: 0.09, CWirefF: 4.0, CBBfF: 2.0, NV: 86, LUm: 335, RVkOhm: 0.03, RTotalkOhm: 0.51,
			AreaUm2: 819, DNL: 0.02, INL: 0.03, F3dBMHz: 908},
		// 9-bit ([1] present in the paper's tables)
		{Bits: 9, Method: Lin, CTSfF: 0.14, CWirefF: 8.5, CBBfF: 61.0, NV: 143, LUm: 703, RVkOhm: 1.2, RTotalkOhm: 4.2,
			AreaUm2: 1655, DNL: 0.08, INL: 0.11, F3dBMHz: 25},
		{Bits: 9, Method: Burcea, CTSfF: 0.36, CWirefF: 59.6, CBBfF: 242.7, NV: 1126, LUm: 9076, RVkOhm: 15.8, RTotalkOhm: 39.7,
			AreaUm2: 3521, DNL: 0.02, INL: 0.04, F3dBMHz: 1.3},
		{Bits: 9, Method: Spiral, CTSfF: 0.17, CWirefF: 5.4, CBBfF: 3.4, NV: 78, LUm: 453, RVkOhm: 0.002, RTotalkOhm: 0.10,
			AreaUm2: 1669, DNL: 0.06, INL: 0.07, F3dBMHz: 1072},
		{Bits: 9, Method: BC, CTSfF: 0.17, CWirefF: 5.5, CBBfF: 7.6, NV: 92, LUm: 463, RVkOhm: 0.03, RTotalkOhm: 0.57,
			AreaUm2: 1643, DNL: 0.04, INL: 0.07, F3dBMHz: 714},
		// 10-bit ([1] absent)
		{Bits: 10, Method: Burcea, CTSfF: 0.36, CWirefF: 59.9, CBBfF: 242.7, NV: 1126, LUm: 9126, RVkOhm: 15.8, RTotalkOhm: 39.7,
			AreaUm2: 3521, DNL: 0.05, INL: 0.09, F3dBMHz: 1.2},
		{Bits: 10, Method: Spiral, CTSfF: 0.32, CWirefF: 9.7, CBBfF: 5.1, NV: 107, LUm: 816, RVkOhm: 0.002, RTotalkOhm: 0.16,
			AreaUm2: 3235, DNL: 0.25, INL: 0.16, F3dBMHz: 286},
		{Bits: 10, Method: BC, CTSfF: 0.33, CWirefF: 12.6, CBBfF: 21.5, NV: 177, LUm: 1050, RVkOhm: 0.03, RTotalkOhm: 1.03,
			AreaUm2: 3296, DNL: 0.11, INL: 0.11, F3dBMHz: 91},
	}
}

// RuntimeSeconds returns the paper's Table III runtimes, indexed by
// bit count: [spiral, bc].
func RuntimeSeconds() map[int][2]float64 {
	return map[int][2]float64{
		6:  {0.02, 0.03},
		7:  {0.04, 0.05},
		8:  {0.12, 0.19},
		9:  {0.35, 0.38},
		10: {1.11, 2.25},
	}
}

// Find returns the paper cell for (bits, method), if present.
func Find(bits int, method string) (Cell, bool) {
	for _, c := range Cells() {
		if c.Bits == bits && c.Method == method {
			return c, true
		}
	}
	return Cell{}, false
}

// Spearman computes the Spearman rank correlation between two paired
// samples, with average ranks for ties. It returns NaN for fewer than
// 3 pairs or zero variance.
func Spearman(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 3 {
		return math.NaN()
	}
	ra := ranks(a)
	rb := ranks(b)
	return pearson(ra, rb)
}

func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(va*vb)
}

// MetricName identifies a comparable metric column.
type MetricName string

// The comparable metric columns of Tables I and II.
const (
	MetricCTS    MetricName = "CTS"
	MetricCWire  MetricName = "Cwire"
	MetricCBB    MetricName = "CBB"
	MetricNV     MetricName = "NV"
	MetricL      MetricName = "L"
	MetricRV     MetricName = "RV"
	MetricRTotal MetricName = "Rtotal"
	MetricArea   MetricName = "Area"
	MetricDNL    MetricName = "DNL"
	MetricINL    MetricName = "INL"
	MetricF3dB   MetricName = "f3dB"
)

// Metrics lists the comparable columns in table order.
func Metrics() []MetricName {
	return []MetricName{
		MetricCTS, MetricCWire, MetricCBB, MetricNV, MetricL,
		MetricRV, MetricRTotal, MetricArea, MetricDNL, MetricINL, MetricF3dB,
	}
}

// Value extracts a metric from a cell.
func (c Cell) Value(m MetricName) float64 {
	switch m {
	case MetricCTS:
		return c.CTSfF
	case MetricCWire:
		return c.CWirefF
	case MetricCBB:
		return c.CBBfF
	case MetricNV:
		return c.NV
	case MetricL:
		return c.LUm
	case MetricRV:
		return c.RVkOhm
	case MetricRTotal:
		return c.RTotalkOhm
	case MetricArea:
		return c.AreaUm2
	case MetricDNL:
		return c.DNL
	case MetricINL:
		return c.INL
	case MetricF3dB:
		return c.F3dBMHz
	}
	panic(fmt.Sprintf("paperdata: unknown metric %q", m))
}

// Correlation is one metric's shape-agreement summary.
type Correlation struct {
	Metric MetricName
	// Rho is the Spearman rank correlation between paper and measured
	// values across all shared cells.
	Rho float64
	// N is the number of shared cells.
	N int
}

// Compare computes per-metric Spearman correlations between the paper
// cells and measured cells keyed by (bits, method). Measured cells
// missing from the map are skipped.
func Compare(measured map[string]Cell) []Correlation {
	var out []Correlation
	for _, m := range Metrics() {
		var a, b []float64
		for _, pc := range Cells() {
			mc, ok := measured[Key(pc.Bits, pc.Method)]
			if !ok {
				continue
			}
			a = append(a, pc.Value(m))
			b = append(b, mc.Value(m))
		}
		out = append(out, Correlation{Metric: m, Rho: Spearman(a, b), N: len(a)})
	}
	return out
}

// Key builds the measured-map key for (bits, method).
func Key(bits int, method string) string { return fmt.Sprintf("%d/%s", bits, method) }
