package rcnet

import (
	"errors"
	"math"
	"strings"
	"testing"

	"ccdac/internal/fault"
	"ccdac/internal/linalg"
)

// buildMesh returns a 2x2 resistor grid with unit caps — a mesh the
// tree analysis rejects, forcing the CG first-moment solve.
func buildMesh() (*Net, int) {
	n := New()
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	d := n.AddNode("d")
	n.AddR(a, b, 100)
	n.AddR(b, d, 100)
	n.AddR(a, c, 100)
	n.AddR(c, d, 100)
	for _, x := range []int{b, c, d} {
		n.AddC(x, 1)
	}
	return n, a
}

func TestCGNonConvergenceFallsBackToDense(t *testing.T) {
	defer fault.Reset()
	fault.Enable(fault.StageLinalgCG, 0, linalg.ErrNotConverged)

	n, root := buildMesh()
	got, err := n.Delay(root)
	if err != nil {
		t.Fatalf("CG non-convergence must fall back to the dense solve: %v", err)
	}
	if !fault.Fired(fault.StageLinalgCG) {
		t.Fatal("fault point never fired: CG was not reached")
	}
	warned := false
	for _, w := range n.Warnings() {
		if strings.Contains(w, "fell back to dense Cholesky") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("fallback not recorded in Warnings: %q", n.Warnings())
	}

	// The dense answer must match the undisturbed CG answer.
	fault.Reset()
	n2, root2 := buildMesh()
	want, err := n2.Delay(root2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-18 {
			t.Errorf("node %d: dense fallback %g != CG %g", i, got[i], want[i])
		}
	}
}

func TestNonConvergenceOtherErrorsPropagate(t *testing.T) {
	defer fault.Reset()
	sentinel := errors.New("injected solver failure")
	fault.Enable(fault.StageLinalgCG, 0, sentinel)

	n, root := buildMesh()
	_, err := n.Delay(root)
	if !errors.Is(err, sentinel) {
		t.Fatalf("non-convergence-class errors must propagate, got %v", err)
	}
	if len(n.Warnings()) != 0 {
		t.Errorf("no fallback happened, but warnings recorded: %q", n.Warnings())
	}
}
