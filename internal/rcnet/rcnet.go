// Package rcnet models the RC interconnect networks created by
// bottom-plate routing and computes their Elmore (first-moment) delays,
// which the paper uses as the time constant tau in the 3dB-frequency
// model (Sec. III-B, Eq. 16).
//
// Two analyses are provided:
//
//   - ElmoreTree: the classical O(n) path-resistance formulation, valid
//     when the resistive network is a tree rooted at the driver.
//   - FirstMoment: the general formulation valid for arbitrary
//     connected RC networks (meshes arise when parallel wires are
//     cross-strapped): with the driver node grounded, solve
//     G·tau = C·1, where G is the reduced nodal conductance matrix and
//     C the nodal capacitance vector. On a tree both analyses agree
//     exactly, which the tests exploit.
package rcnet

import (
	"errors"
	"fmt"
	"math"

	"ccdac/internal/linalg"
)

// Net is an RC network under construction. Node 0 does not exist until
// added; callers name nodes for debuggability.
type Net struct {
	names []string
	// resistors, as adjacency: for each node, list of (other, conductance).
	res []resistor
	// capFF[i] is the grounded capacitance at node i in fF.
	capFF []float64
	// warn records solver degradations (CG→dense fallbacks) taken
	// while analyzing this net.
	warn []string
	// cgIters and cgFallbacks count solver effort and degradations,
	// surfaced structurally through Stats for the observability layer.
	cgIters, cgFallbacks int
	// cgSolves records each solve's effort and terminal accuracy.
	cgSolves []CGSolve
}

// CGSolve is one conjugate-gradient solve's telemetry: the iteration
// count and the final relative residual ‖b − A·x‖₂/‖b‖₂. For a solve
// that fell back to dense Cholesky, Residual is the residual CG had
// reached at its iteration cap (the fallback itself is direct).
type CGSolve struct {
	Iterations int
	Residual   float64
	Fallback   bool
}

// NetStats totals the iterative-solver effort and degradations
// accumulated across every analysis run on one net.
type NetStats struct {
	// CGIterations is the total conjugate-gradient iteration count.
	CGIterations int
	// CGFallbacks counts CG solves that exhausted their iteration
	// budget and fell back to the dense Cholesky factorization.
	CGFallbacks int
	// Solves lists each individual solve in execution order — the
	// per-solve distribution behind the numeric-health histograms.
	Solves []CGSolve
}

// Stats returns the net's accumulated solver statistics.
func (n *Net) Stats() NetStats {
	return NetStats{
		CGIterations: n.cgIters,
		CGFallbacks:  n.cgFallbacks,
		Solves:       append([]CGSolve(nil), n.cgSolves...),
	}
}

// Warnings returns the solver-degradation warnings recorded during
// analyses of this net (e.g. a CG non-convergence that fell back to a
// dense Cholesky solve).
func (n *Net) Warnings() []string {
	return append([]string(nil), n.warn...)
}

type resistor struct {
	a, b int
	ohm  float64
}

// New returns an empty network.
func New() *Net { return &Net{} }

// AddNode adds a named node and returns its index.
func (n *Net) AddNode(name string) int {
	n.names = append(n.names, name)
	n.capFF = append(n.capFF, 0)
	return len(n.names) - 1
}

// NumNodes returns the number of nodes.
func (n *Net) NumNodes() int { return len(n.names) }

// NodeName returns the name of node i.
func (n *Net) NodeName(i int) string { return n.names[i] }

// AddR connects nodes a and b with a resistor of the given ohms.
// Zero-ohm resistors are permitted (ideal shorts used for via-free
// junctions) and handled by node merging during analysis.
func (n *Net) AddR(a, b int, ohm float64) {
	if a < 0 || a >= len(n.names) || b < 0 || b >= len(n.names) {
		panic(fmt.Sprintf("rcnet: resistor endpoints (%d,%d) out of range n=%d", a, b, len(n.names)))
	}
	if ohm < 0 {
		panic(fmt.Sprintf("rcnet: negative resistance %g", ohm))
	}
	n.res = append(n.res, resistor{a, b, ohm})
}

// AddC adds grounded capacitance (fF) at node a. Multiple additions accumulate.
func (n *Net) AddC(a int, fF float64) {
	if fF < 0 {
		panic(fmt.Sprintf("rcnet: negative capacitance %g", fF))
	}
	n.capFF[a] += fF
}

// CapAt returns the accumulated grounded capacitance at node a in fF.
func (n *Net) CapAt(a int) float64 { return n.capFF[a] }

// TotalCapFF returns the total capacitance of the network in fF.
func (n *Net) TotalCapFF() float64 {
	s := 0.0
	for _, c := range n.capFF {
		s += c
	}
	return s
}

// Resistor is one resistive element, exposed for netlist export and
// transient simulation.
type Resistor struct {
	A, B int
	Ohm  float64
}

// Resistors returns the network's resistive elements in insertion order.
func (n *Net) Resistors() []Resistor {
	out := make([]Resistor, len(n.res))
	for i, r := range n.res {
		out[i] = Resistor{A: r.a, B: r.b, Ohm: r.ohm}
	}
	return out
}

// Caps returns a copy of the per-node grounded capacitances in fF.
func (n *Net) Caps() []float64 {
	out := make([]float64, len(n.capFF))
	copy(out, n.capFF)
	return out
}

// ErrNotTree is returned by ElmoreTree when the resistive graph has a
// cycle or a node unreachable from the root.
var ErrNotTree = errors.New("rcnet: network is not a tree rooted at the driver")

// merged computes a union-find over zero-ohm resistors so both analyses
// treat ideal shorts as single electrical nodes. It returns the
// representative for each node and the per-representative capacitance.
func (n *Net) merged() (rep []int, capOf []float64) {
	parent := make([]int, len(n.names))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, r := range n.res {
		if r.ohm == 0 {
			ra, rb := find(r.a), find(r.b)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	rep = make([]int, len(n.names))
	capOf = make([]float64, len(n.names))
	for i := range rep {
		rep[i] = find(i)
	}
	for i, c := range n.capFF {
		capOf[rep[i]] += c
	}
	return rep, capOf
}

// ElmoreTree computes the Elmore delay in seconds from the driver node
// (root) to every node, assuming the nonzero-resistance graph is a
// tree. Capacitances are interpreted in fF, resistances in ohms.
// It returns ErrNotTree for meshes or disconnected networks.
func (n *Net) ElmoreTree(root int) ([]float64, error) {
	rep, capOf := n.merged()
	r := rep[root]

	adj := make(map[int][]resistor)
	edges := 0
	nodes := map[int]bool{r: true}
	for i := range n.names {
		nodes[rep[i]] = true
	}
	for _, e := range n.res {
		if e.ohm == 0 {
			continue
		}
		a, b := rep[e.a], rep[e.b]
		if a == b {
			// Resistor shorted by a parallel zero-ohm path: harmless for
			// delay, skip.
			continue
		}
		adj[a] = append(adj[a], resistor{a, b, e.ohm})
		adj[b] = append(adj[b], resistor{b, a, e.ohm})
		edges++
	}
	if edges != len(nodes)-1 {
		return nil, ErrNotTree
	}

	// DFS from root: accumulate downstream capacitance, then delays.
	parentOf := make(map[int]int, len(nodes))
	parentR := make(map[int]float64, len(nodes))
	order := make([]int, 0, len(nodes))
	visited := map[int]bool{r: true}
	stack := []int{r}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		for _, e := range adj[u] {
			if !visited[e.b] {
				visited[e.b] = true
				parentOf[e.b] = u
				parentR[e.b] = e.ohm
				stack = append(stack, e.b)
			}
		}
	}
	if len(order) != len(nodes) {
		return nil, ErrNotTree
	}
	// Downstream capacitance: reverse DFS order.
	down := make(map[int]float64, len(nodes))
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		down[u] += capOf[u]
		if u != r {
			down[parentOf[u]] += down[u]
		}
	}
	// Delay: forward order. delay(child) = delay(parent) + R_edge * down(child).
	delay := make(map[int]float64, len(nodes))
	for _, u := range order {
		if u == r {
			delay[u] = 0
			continue
		}
		delay[u] = delay[parentOf[u]] + parentR[u]*down[u]*1e-15 // ohm*fF -> seconds
	}
	out := make([]float64, len(n.names))
	for i := range out {
		out[i] = delay[rep[i]]
	}
	return out, nil
}

// FirstMoment computes the first moment of the impulse response at
// every node (the generalized Elmore delay, in seconds) for an
// arbitrary connected RC network driven at root, by solving
// G·tau = C·1 with the root grounded, using preconditioned CG.
func (n *Net) FirstMoment(root int) ([]float64, error) {
	rep, capOf := n.merged()
	r := rep[root]

	// Compact representative indices, excluding the root.
	idx := map[int]int{}
	for i := range n.names {
		u := rep[i]
		if u == r {
			continue
		}
		if _, ok := idx[u]; !ok {
			idx[u] = len(idx)
		}
	}
	m := len(idx)
	if m == 0 {
		return make([]float64, len(n.names)), nil
	}
	g := linalg.NewSparse(m)
	connected := make([]bool, m)
	for _, e := range n.res {
		if e.ohm == 0 {
			continue
		}
		a, b := rep[e.a], rep[e.b]
		if a == b {
			continue
		}
		cond := 1 / e.ohm
		ia, aIn := idx[a]
		ib, bIn := idx[b]
		switch {
		case aIn && bIn:
			g.AddSym(ia, ib, -cond)
			g.Add(ia, ia, cond)
			g.Add(ib, ib, cond)
			connected[ia], connected[ib] = true, true
		case aIn:
			g.Add(ia, ia, cond)
			connected[ia] = true
		case bIn:
			g.Add(ib, ib, cond)
			connected[ib] = true
		}
	}
	for i, ok := range connected {
		if !ok {
			return nil, fmt.Errorf("rcnet: node group %d unreachable from driver", i)
		}
	}
	rhs := make([]float64, m)
	for u, i := range idx {
		rhs[i] = capOf[u] * 1e-15 // fF -> F; tau in seconds
	}
	tau, err := n.solveSPD(g, rhs, "first-moment")
	if err != nil {
		return nil, fmt.Errorf("rcnet: moment solve: %w", err)
	}
	out := make([]float64, len(n.names))
	for i := range out {
		u := rep[i]
		if u == r {
			out[i] = 0
			continue
		}
		out[i] = tau[idx[u]]
	}
	return out, nil
}

// solveSPD solves g·x = rhs, preferring the Jacobi-preconditioned CG
// iteration and degrading to a dense Cholesky factorization when CG
// exhausts its iteration budget. The fallback is exact (direct), so
// results stay correct; it is recorded as a warning on the net because
// it signals an ill-conditioned extraction and costs O(n³).
func (n *Net) solveSPD(g *linalg.Sparse, rhs []float64, what string) ([]float64, error) {
	x, st, err := g.SolveCGStats(rhs, 1e-12, 40*g.N)
	n.cgIters += st.Iterations
	if err == nil {
		n.cgSolves = append(n.cgSolves, CGSolve{Iterations: st.Iterations, Residual: st.Residual})
		return x, nil
	}
	if !errors.Is(err, linalg.ErrNotConverged) {
		return nil, err
	}
	x, derr := linalg.SolveSPD(g.ToDense(), rhs)
	if derr != nil {
		return nil, errors.Join(err, derr)
	}
	n.cgFallbacks++
	n.cgSolves = append(n.cgSolves, CGSolve{Iterations: st.Iterations, Residual: st.Residual, Fallback: true})
	n.warn = append(n.warn, fmt.Sprintf(
		"%s CG solve did not converge; fell back to dense Cholesky (n=%d)", what, g.N))
	return x, nil
}

// Moments computes the first and second moments of each node's step
// response for an arbitrary connected RC network driven at root:
// m1 = G⁻¹·C·1 (the generalized Elmore delay, seconds) and
// m2 = G⁻¹·C·m1 (seconds²). The per-node dominant-pole estimate
// m2/m1 (the AWE single-pole fit) satisfies m1/2 ≤ m2/m1 ≤ τ_max for
// RC trees — the lower bound from the nonnegative impulse response
// (E[t²] ≥ E[t]²), the upper from m2 = Σaτ² ≤ τ_max·m1 — and is exact
// for a single pole.
func (n *Net) Moments(root int) (m1, m2 []float64, err error) {
	m1, err = n.FirstMoment(root)
	if err != nil {
		return nil, nil, err
	}
	rep, capOf := n.merged()
	r := rep[root]
	idx := map[int]int{}
	for i := range n.names {
		u := rep[i]
		if u == r {
			continue
		}
		if _, ok := idx[u]; !ok {
			idx[u] = len(idx)
		}
	}
	mm := len(idx)
	if mm == 0 {
		return m1, make([]float64, len(n.names)), nil
	}
	g := linalg.NewSparse(mm)
	for _, e := range n.res {
		if e.ohm == 0 {
			continue
		}
		a, b := rep[e.a], rep[e.b]
		if a == b {
			continue
		}
		cond := 1 / e.ohm
		ia, aIn := idx[a]
		ib, bIn := idx[b]
		switch {
		case aIn && bIn:
			g.AddSym(ia, ib, -cond)
			g.Add(ia, ia, cond)
			g.Add(ib, ib, cond)
		case aIn:
			g.Add(ia, ia, cond)
		case bIn:
			g.Add(ib, ib, cond)
		}
	}
	// C·m1 with per-representative capacitance; every original node
	// mapped to a representative shares its m1, so one stamp per
	// representative suffices.
	m1rep := make(map[int]float64, mm)
	for orig := range n.names {
		u := rep[orig]
		if u != r {
			m1rep[u] = m1[orig]
		}
	}
	rhs := make([]float64, mm)
	for u, i := range idx {
		rhs[i] = capOf[u] * 1e-15 * m1rep[u]
	}
	sol, err := n.solveSPD(g, rhs, "second-moment")
	if err != nil {
		return nil, nil, fmt.Errorf("rcnet: second moment solve: %w", err)
	}
	m2 = make([]float64, len(n.names))
	for i := range m2 {
		u := rep[i]
		if u == r {
			continue
		}
		m2[i] = sol[idx[u]]
	}
	return m1, m2, nil
}

// DominantTau returns the per-node dominant-pole time-constant
// estimate m2/m1 in seconds (zero where m1 is zero).
func (n *Net) DominantTau(root int) ([]float64, error) {
	m1, m2, err := n.Moments(root)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(m1))
	for i := range m1 {
		if m1[i] > 0 {
			out[i] = m2[i] / m1[i]
		}
	}
	return out, nil
}

// MaxDelay returns the maximum delay over the given node set from the
// per-node delay slice. Nodes outside the slice range are ignored.
func MaxDelay(delays []float64, nodes []int) float64 {
	m := 0.0
	for _, i := range nodes {
		if i >= 0 && i < len(delays) {
			m = math.Max(m, delays[i])
		}
	}
	return m
}

// Delay computes the driving-point time constant of the network seen
// from root: prefers the exact tree formulation and falls back to the
// general first-moment solve for meshes. It returns the per-node delay
// vector in seconds.
func (n *Net) Delay(root int) ([]float64, error) {
	d, err := n.ElmoreTree(root)
	if err == nil {
		return d, nil
	}
	if !errors.Is(err, ErrNotTree) {
		return nil, err
	}
	return n.FirstMoment(root)
}
