package rcnet

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

const fF = 1e-15

func TestSingleRC(t *testing.T) {
	n := New()
	drv := n.AddNode("drv")
	load := n.AddNode("load")
	n.AddR(drv, load, 100)
	n.AddC(load, 5) // 5 fF
	d, err := n.ElmoreTree(drv)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * 5 * fF
	if math.Abs(d[load]-want) > 1e-20 {
		t.Fatalf("tau = %g, want %g", d[load], want)
	}
	if d[drv] != 0 {
		t.Fatal("driver delay must be zero")
	}
}

func TestLadderElmore(t *testing.T) {
	// Classic 3-stage ladder: tau_k = sum_{i<=k} R_i * (sum_{j>=i} C_j).
	n := New()
	nodes := []int{n.AddNode("drv")}
	rs := []float64{10, 20, 30}
	cs := []float64{1, 2, 3}
	for i := 0; i < 3; i++ {
		v := n.AddNode("n")
		n.AddR(nodes[len(nodes)-1], v, rs[i])
		n.AddC(v, cs[i])
		nodes = append(nodes, v)
	}
	d, err := n.ElmoreTree(nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{
		0,
		10 * 6 * fF,
		10*6*fF + 20*5*fF,
		10*6*fF + 20*5*fF + 30*3*fF,
	}
	for i, w := range want {
		if math.Abs(d[nodes[i]]-w) > 1e-22 {
			t.Errorf("node %d: tau = %g, want %g", i, d[nodes[i]], w)
		}
	}
}

func TestBranchingTree(t *testing.T) {
	// Root -> a; a -> b, a -> c. Delay to b must include c's cap through R(root,a).
	n := New()
	root := n.AddNode("root")
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	n.AddR(root, a, 100)
	n.AddR(a, b, 50)
	n.AddR(a, c, 70)
	n.AddC(b, 2)
	n.AddC(c, 4)
	d, err := n.ElmoreTree(root)
	if err != nil {
		t.Fatal(err)
	}
	wantB := (100*6 + 50*2) * fF
	wantC := (100*6 + 70*4) * fF
	if math.Abs(d[b]-wantB) > 1e-22 || math.Abs(d[c]-wantC) > 1e-22 {
		t.Fatalf("d[b]=%g want %g; d[c]=%g want %g", d[b], wantB, d[c], wantC)
	}
}

func TestZeroOhmMerging(t *testing.T) {
	// Two nodes tied by a 0-ohm short behave as one node.
	n := New()
	root := n.AddNode("root")
	a := n.AddNode("a")
	a2 := n.AddNode("a2")
	n.AddR(root, a, 100)
	n.AddR(a, a2, 0)
	n.AddC(a, 1)
	n.AddC(a2, 3)
	d, err := n.ElmoreTree(root)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * 4 * fF
	if math.Abs(d[a]-want) > 1e-22 || math.Abs(d[a2]-want) > 1e-22 {
		t.Fatalf("merged delays %g/%g, want %g", d[a], d[a2], want)
	}
}

func TestMeshRejectedByTreeAnalysis(t *testing.T) {
	n := New()
	root := n.AddNode("root")
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.AddR(root, a, 10)
	n.AddR(root, b, 10)
	n.AddR(a, b, 10) // cycle
	n.AddC(a, 1)
	if _, err := n.ElmoreTree(root); !errors.Is(err, ErrNotTree) {
		t.Fatalf("want ErrNotTree, got %v", err)
	}
}

func TestDisconnectedRejected(t *testing.T) {
	n := New()
	root := n.AddNode("root")
	a := n.AddNode("a")
	orphan := n.AddNode("orphan")
	n.AddR(root, a, 10)
	n.AddC(orphan, 1)
	if _, err := n.ElmoreTree(root); !errors.Is(err, ErrNotTree) {
		t.Fatalf("tree analysis: want ErrNotTree, got %v", err)
	}
	if _, err := n.FirstMoment(root); err == nil {
		t.Fatal("moment analysis must reject unreachable nodes")
	}
}

func TestFirstMomentMatchesTreeOnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := New()
		root := n.AddNode("root")
		nodes := []int{root}
		for i := 0; i < 2+rng.Intn(60); i++ {
			v := n.AddNode("n")
			parent := nodes[rng.Intn(len(nodes))]
			n.AddR(parent, v, 1+rng.Float64()*100)
			n.AddC(v, rng.Float64()*10)
			nodes = append(nodes, v)
		}
		dt, err := n.ElmoreTree(root)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dm, err := n.FirstMoment(root)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range dt {
			scale := math.Max(dt[i], 1e-18)
			if math.Abs(dt[i]-dm[i]) > 1e-6*scale {
				t.Fatalf("trial %d node %d: tree %g vs moment %g", trial, i, dt[i], dm[i])
			}
		}
	}
}

func TestFirstMomentParallelResistors(t *testing.T) {
	// Two 100-ohm resistors in parallel = 50 ohms: first moment halves.
	n := New()
	root := n.AddNode("root")
	a := n.AddNode("a")
	n.AddR(root, a, 100)
	n.AddR(root, a, 100)
	n.AddC(a, 10)
	d, err := n.FirstMoment(root)
	if err != nil {
		t.Fatal(err)
	}
	want := 50 * 10 * fF
	if math.Abs(d[a]-want) > 1e-9*want {
		t.Fatalf("parallel-R tau = %g, want %g", d[a], want)
	}
}

func TestFirstMomentMesh2x2(t *testing.T) {
	// The p=2 parallel-wire junction of the paper: two rails cross-strapped.
	// Symmetric diamond: root -R- a, root -R- b, a -R- c, b -R- c, cap at c.
	// By symmetry this is two series 2R paths in parallel = R; tau = R*C.
	n := New()
	root := n.AddNode("root")
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	const r = 80.0
	n.AddR(root, a, r)
	n.AddR(root, b, r)
	n.AddR(a, c, r)
	n.AddR(b, c, r)
	n.AddC(c, 5)
	d, err := n.FirstMoment(root)
	if err != nil {
		t.Fatal(err)
	}
	want := r * 5 * fF
	if math.Abs(d[c]-want) > 1e-9*want {
		t.Fatalf("diamond tau = %g, want %g", d[c], want)
	}
}

func TestDelayDispatch(t *testing.T) {
	// Tree network goes down the tree path; mesh falls back to moments.
	n := New()
	root := n.AddNode("root")
	a := n.AddNode("a")
	n.AddR(root, a, 10)
	n.AddC(a, 1)
	if _, err := n.Delay(root); err != nil {
		t.Fatalf("tree delay: %v", err)
	}
	n.AddR(root, a, 10) // now a 2-resistor mesh
	d, err := n.Delay(root)
	if err != nil {
		t.Fatalf("mesh delay: %v", err)
	}
	want := 5 * 1 * fF
	if math.Abs(d[a]-want) > 1e-9*want {
		t.Fatalf("mesh dispatch tau = %g, want %g", d[a], want)
	}
}

func TestMaxDelay(t *testing.T) {
	d := []float64{0, 3, 1, 7, 2}
	if got := MaxDelay(d, []int{1, 2, 4}); got != 3 {
		t.Fatalf("MaxDelay = %g, want 3", got)
	}
	if got := MaxDelay(d, []int{0}); got != 0 {
		t.Fatalf("MaxDelay = %g, want 0", got)
	}
	// Out-of-range indices ignored.
	if got := MaxDelay(d, []int{99, -1, 3}); got != 7 {
		t.Fatalf("MaxDelay = %g, want 7", got)
	}
}

func TestTotalCapAndAccessors(t *testing.T) {
	n := New()
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.AddC(a, 1.5)
	n.AddC(a, 0.5)
	n.AddC(b, 3)
	if got := n.TotalCapFF(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("TotalCapFF = %g, want 5", got)
	}
	if n.CapAt(a) != 2 {
		t.Fatalf("CapAt = %g, want 2", n.CapAt(a))
	}
	if n.NumNodes() != 2 || n.NodeName(0) != "a" {
		t.Fatal("node accessors broken")
	}
}

func TestPanicsOnBadElements(t *testing.T) {
	n := New()
	a := n.AddNode("a")
	for name, fn := range map[string]func(){
		"negative R":   func() { n.AddR(a, a, -1) },
		"out of range": func() { n.AddR(a, 5, 1) },
		"negative C":   func() { n.AddC(a, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestShortedResistorIgnored(t *testing.T) {
	// A resistor in parallel with a 0-ohm short contributes nothing.
	n := New()
	root := n.AddNode("root")
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.AddR(root, a, 100)
	n.AddR(a, b, 0)
	n.AddR(a, b, 500) // shorted
	n.AddC(b, 2)
	d, err := n.ElmoreTree(root)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * 2 * fF
	if math.Abs(d[b]-want) > 1e-22 {
		t.Fatalf("tau = %g, want %g", d[b], want)
	}
}

func TestMomentsSinglePoleExact(t *testing.T) {
	n := New()
	root := n.AddNode("drv")
	load := n.AddNode("load")
	n.AddR(root, load, 1000)
	n.AddC(load, 10) // tau = 10 ps
	m1, m2, err := n.Moments(root)
	if err != nil {
		t.Fatal(err)
	}
	tau := 1e-11
	if math.Abs(m1[load]-tau) > 1e-9*tau {
		t.Errorf("m1 = %g, want %g", m1[load], tau)
	}
	if math.Abs(m2[load]-tau*tau) > 1e-9*tau*tau {
		t.Errorf("m2 = %g, want %g", m2[load], tau*tau)
	}
	dom, err := n.DominantTau(root)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dom[load]-tau) > 1e-9*tau {
		t.Errorf("dominant tau = %g, want %g", dom[load], tau)
	}
}

func TestDominantTauBoundsElmore(t *testing.T) {
	// RC-tree impulse responses are nonnegative, so E[t²] >= E[t]²
	// gives 2·m2 >= m1², i.e. the dominant-pole estimate m2/m1 never
	// falls below half the Elmore delay; checked on random trees.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := New()
		root := n.AddNode("root")
		nodes := []int{root}
		for i := 0; i < 2+rng.Intn(40); i++ {
			v := n.AddNode("n")
			n.AddR(nodes[rng.Intn(len(nodes))], v, 1+rng.Float64()*200)
			n.AddC(v, 0.5+rng.Float64()*8)
			nodes = append(nodes, v)
		}
		m1, m2, err := n.Moments(root)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dom, err := n.DominantTau(root)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range m1 {
			if m1[i] == 0 {
				continue
			}
			if dom[i] < m1[i]/2*(1-1e-9) {
				t.Fatalf("trial %d node %d: dominant tau %g below Elmore/2 %g",
					trial, i, dom[i], m1[i]/2)
			}
			if m1[i]*m1[i] > 2*m2[i]*(1+1e-9) {
				t.Fatalf("trial %d node %d: m1^2 %g above 2*m2 %g",
					trial, i, m1[i]*m1[i], 2*m2[i])
			}
		}
	}
}
