package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// BatchRequest is the JSON body of POST /v1/batch: up to
// Options.MaxBatch generate requests evaluated concurrently.
type BatchRequest struct {
	Requests []GenerateRequest `json:"requests"`
}

// BatchItem is one sub-request's outcome. Exactly one of Response and
// Error is set; Status is the HTTP status the same body would have
// earned on /v1/generate.
type BatchItem struct {
	Status   int               `json:"status"`
	Response *GenerateResponse `json:"response,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// BatchResponse is the JSON body of a /v1/batch reply; Items is
// index-aligned with the request's Requests.
type BatchResponse struct {
	RequestID      string      `json:"request_id"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
	Items          []BatchItem `json:"items"`
}

// handleBatch fans a batch through the same cache, singleflight and
// generation path as /v1/generate. The batch occupies one admission
// slot; its sub-requests run under the async job tier's shared worker
// budget (jobs.Manager.Do), so batch fan-out, queued jobs and other
// concurrent batches all draw from one bounded pool instead of each
// batch privately fanning MaxInFlight-wide — the oversubscription the
// old scheme allowed (one slot held, MaxInFlight more goroutines).
// Items with identical canonical bodies still collapse into one
// generation via singleflight, which is the point of batching
// duplicate-heavy workloads.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("serve: decoding batch body: %w", err))
		return
	}
	if len(batch.Requests) == 0 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("serve: empty batch"))
		return
	}
	if len(batch.Requests) > s.opts.MaxBatch {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("serve: batch of %d exceeds the %d-request limit", len(batch.Requests), s.opts.MaxBatch))
		return
	}

	start := time.Now()
	items := make([]BatchItem, len(batch.Requests))
	ri := requestInfo(r.Context())
	// Per-item failures land in items so one bad sub-request does not
	// abort its siblings; a Do admission failure (request timeout while
	// waiting for a worker slot) reports on the item the same way.
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := batch.Requests[i]
			if !validCacheDirective(req.Cache) {
				items[i] = BatchItem{
					Status: http.StatusBadRequest,
					Error:  fmt.Sprintf("serve: unknown cache directive %q (want \"default\" or \"bypass\")", req.Cache),
				}
				return
			}
			if !validFFTDirective(req.FFT) {
				items[i] = BatchItem{
					Status: http.StatusBadRequest,
					Error:  fmt.Sprintf("serve: unknown fft directive %q (want \"auto\" or \"off\")", req.FFT),
				}
				return
			}
			cfg := req.config()
			cfg.Workers = s.opts.Workers
			if req.Workers != 0 && req.Workers < cfg.Workers {
				cfg.Workers = req.Workers
			}
			itemStart := time.Now()
			err := s.jobs.Do(r.Context(), func() error {
				out, err := s.generate(r.Context(), req, cfg, ri)
				if err != nil {
					return err
				}
				items[i] = BatchItem{
					Status: http.StatusOK,
					Response: &GenerateResponse{
						RequestID:      fmt.Sprintf("%s/%d", RequestID(r.Context()), i),
						ElapsedSeconds: time.Since(itemStart).Seconds(),
						CacheStatus:    out.status,
						Metrics:        out.metrics,
						Warnings:       out.warnings,
						Counters:       out.counters,
					},
				}
				return nil
			})
			if err != nil {
				items[i] = BatchItem{Status: statusOf(err), Error: err.Error()}
			}
		}(i)
	}
	wg.Wait()

	writeJSON(w, http.StatusOK, BatchResponse{
		RequestID:      RequestID(r.Context()),
		ElapsedSeconds: time.Since(start).Seconds(),
		Items:          items,
	})
}
