package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ccdac/internal/obs"
)

// quietLogger discards the structured request log in tests that don't
// assert on it.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}

func postGenerate(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestConcurrentGenerateMergesAllMetrics is the acceptance bar: ≥50
// concurrent generate requests with zero dropped metric merges — the
// global registry's counter totals must equal the sum of the
// per-request snapshots each response reports.
func TestConcurrentGenerateMergesAllMetrics(t *testing.T) {
	const requests = 50
	// CacheMaxBytes < 0: this test reconciles per-request counter
	// snapshots against global totals, so every request must really run
	// — no result cache, no singleflight collapsing.
	srv := New(Options{MaxInFlight: requests, CacheMaxBytes: -1, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var (
		mu  sync.Mutex
		sum = map[string]int64{}
	)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"bits":%d,"max_parallel":2,"skip_nonlinearity":true}`, 4+i%2)
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			var gr GenerateResponse
			if err := json.Unmarshal(data, &gr); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			mu.Lock()
			for k, v := range gr.Counters {
				sum[k] += v
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(sum) == 0 {
		t.Fatal("no per-request counters reported")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	series := parsePromText(t, string(text))

	for k, want := range sum {
		if got := int64(series[k]); got != want {
			t.Errorf("global %s = %d, want %d (sum of per-request snapshots)", k, got, want)
		}
	}
	if sum["ccdac_core_runs_total"] < requests {
		t.Errorf("ccdac_core_runs_total sum = %d, want >= %d", sum["ccdac_core_runs_total"], requests)
	}
	key := `ccdac_serve_requests_total{code="200",route="generate"}`
	if got := series[key]; got != requests {
		t.Errorf("%s = %g, want %d", key, got, requests)
	}
	histKey := `ccdac_serve_request_seconds_count{route="generate"}`
	if got := series[histKey]; got != requests {
		t.Errorf("%s = %g, want %d", histKey, got, requests)
	}
}

// TestRequestTimeoutCancelsMidRequest: the per-request deadline fires
// while the pipeline runs; the request must return promptly with 504,
// the root span must be marked errored, and the partial metrics of the
// aborted run must still merge into the global registry.
func TestRequestTimeoutCancelsMidRequest(t *testing.T) {
	srv := New(Options{RequestTimeout: time.Millisecond, Logger: quietLogger()})
	traces := make(chan *obs.Trace, 1)
	srv.onTrace = func(tr *obs.Trace) { traces <- tr }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A 10-bit run with a maxed-out theta sweep takes hundreds of
	// milliseconds, so the 1ms deadline always fires mid-pipeline.
	start := time.Now()
	resp, data := postGenerate(t, ts.URL, `{"bits":10,"theta_steps":360}`)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("canceled request took %v, want prompt return", elapsed)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, data)
	}
	var er struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID == "" {
		t.Error("error response missing request_id")
	}

	tr := <-traces
	rootErrored := false
	for _, s := range tr.Spans() {
		if s.Name == "serve.generate" && s.Err != "" {
			rootErrored = true
		}
	}
	if !rootErrored {
		t.Error("root serve.generate span not marked errored on cancellation")
	}
	// The aborted run's partial effort is visible globally: the run
	// started (counter merged) even though it never finished.
	snap := srv.Registry().Snapshot()
	if got := snap.Counter("ccdac_core_runs_total", nil); got != 1 {
		t.Errorf("global ccdac_core_runs_total = %d, want 1 (partial metrics dropped)", got)
	}
	if got := snap.Counter("ccdac_serve_requests_total", obs.Labels{"route": "generate", "code": "504"}); got != 1 {
		t.Errorf("serve 504 counter = %d, want 1", got)
	}
}

// TestClientCancelMidRequest covers the client-disconnect flavor: the
// client gives up mid-pipeline, and the server still closes the trace
// (root span errored) and merges the partial metrics.
func TestClientCancelMidRequest(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	traces := make(chan *obs.Trace, 1)
	srv.onTrace = func(tr *obs.Trace) { traces <- tr }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 10 bits with a maxed-out theta sweep runs far longer than the
	// cancel delay, so the cancellation always lands mid-pipeline.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/generate",
		strings.NewReader(`{"bits":10,"max_parallel":2,"theta_steps":360}`))
	if err != nil {
		t.Fatal(err)
	}
	time.AfterFunc(25*time.Millisecond, cancel)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite cancellation")
	}

	select {
	case tr := <-traces:
		rootErrored := false
		for _, s := range tr.Spans() {
			if s.Name == "serve.generate" && s.Err != "" {
				rootErrored = true
			}
		}
		if !rootErrored {
			t.Error("root span not marked errored after client cancel")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not finish the canceled request promptly")
	}
	if got := srv.Registry().Snapshot().Counter("ccdac_core_runs_total", nil); got != 1 {
		t.Errorf("global ccdac_core_runs_total = %d, want 1 (partial metrics dropped)", got)
	}
}

// TestShedsAtCapacity: the admission semaphore never queues — a
// request beyond MaxInFlight is shed immediately with 429.
func TestShedsAtCapacity(t *testing.T) {
	srv := New(Options{MaxInFlight: 1, Logger: quietLogger()})
	entered := make(chan struct{})
	release := make(chan struct{})
	h := srv.wrap("test", true, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // first request holds the only slot

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	close(release)
	<-done

	snap := srv.Registry().Snapshot()
	if got := snap.Counter("ccdac_serve_shed_total", obs.Labels{"route": "test"}); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

// TestPanicContainment: a panicking handler yields a typed 500 and the
// daemon keeps serving.
func TestPanicContainment(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	srv.mux.Handle("GET /boom", srv.wrap("boom", false, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "recovered panic") || er.Stage != "internal" {
		t.Errorf("error response = %+v, want contained internal panic", er)
	}
	if got := srv.Registry().Snapshot().Counter("ccdac_serve_panics_total", obs.Labels{"route": "boom"}); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	// Still alive.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic: status %d, want 200", resp.StatusCode)
	}
}

// TestBadRequests: malformed JSON, unknown fields and invalid configs
// are the client's fault.
func TestBadRequests(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
		wantStage  string
	}{
		{"malformed", `{"bits":`, ""},
		{"unknown field", `{"bits":8,"nope":1}`, ""},
		{"invalid config", `{"bits":99}`, "config"},
	} {
		resp, data := postGenerate(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, data)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if er.Stage != tc.wantStage {
			t.Errorf("%s: stage %q, want %q", tc.name, er.Stage, tc.wantStage)
		}
	}
}

// TestRequestIDAndLogCorrelation: the inbound X-Request-ID is echoed
// and appears in the structured log together with the root span ID.
func TestRequestIDAndLogCorrelation(t *testing.T) {
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	srv := New(Options{Logger: slog.New(slog.NewJSONHandler(syncWriter{&logMu, &logBuf}, nil))})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/generate",
		strings.NewReader(`{"bits":4,"skip_nonlinearity":true}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "test-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var gr GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "test-req-42" {
		t.Errorf("X-Request-ID = %q, want echo of inbound value", got)
	}
	if gr.RequestID != "test-req-42" {
		t.Errorf("response request_id = %q, want %q", gr.RequestID, "test-req-42")
	}

	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	var line map[string]any
	found := false
	for _, l := range strings.Split(strings.TrimSpace(logged), "\n") {
		if err := json.Unmarshal([]byte(l), &line); err == nil && line["msg"] == "request" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no structured request log line in: %s", logged)
	}
	if line["request_id"] != "test-req-42" {
		t.Errorf("log request_id = %v, want test-req-42", line["request_id"])
	}
	if id, ok := line["span_id"].(float64); !ok || id == 0 {
		t.Errorf("log span_id = %v, want the nonzero root span ID", line["span_id"])
	}

	// A request without an inbound ID gets a generated 16-hex-char one.
	resp2, data := postGenerate(t, ts.URL, `{"bits":4,"skip_nonlinearity":true}`)
	if got := resp2.Header.Get("X-Request-ID"); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars (%s)", got, data)
	}
}

// syncWriter serializes slog output shared with test assertions.
type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestHealthEndpointsAndPprof exercises the probe and profiling routes.
func TestHealthEndpointsAndPprof(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz = %d %+v", resp.StatusCode, hz)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz while serving = %d, want 200", resp.StatusCode)
	}
	srv.ready.Store(false)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index = %d, want profile listing", resp.StatusCode)
	}
}

// TestGracefulDrain: canceling the serve context finishes the in-flight
// request, returns nil, and stops accepting new connections.
func TestGracefulDrain(t *testing.T) {
	srv := New(Options{Addr: "127.0.0.1:0", DrainTimeout: 30 * time.Second, Logger: quietLogger()})
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.ListenAndServe(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never bound a listener")
		}
		time.Sleep(time.Millisecond)
	}
	base := "http://" + srv.Addr()

	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/generate", "application/json",
			strings.NewReader(`{"bits":8,"max_parallel":2}`))
		if err == nil {
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("in-flight request: status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
		inflight <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request enter the pipeline
	cancel()

	if err := <-inflight; err != nil {
		t.Errorf("in-flight request not drained cleanly: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ListenAndServe = %v, want nil after drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ListenAndServe did not return after drain")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting connections after drain")
	}
}

// TestMetricsEndpointValidPrometheus: the exposition must parse, and
// scrape-time process gauges must be present.
func TestMetricsEndpointValidPrometheus(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postGenerate(t, ts.URL, `{"bits":5,"max_parallel":2,"skip_nonlinearity":true}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	series := parsePromText(t, string(text))
	for _, want := range []string{
		"ccdac_serve_uptime_seconds",
		"ccdac_serve_inflight",
		"ccdac_serve_goroutines",
		"ccdac_core_runs_total",
	} {
		if _, ok := series[want]; !ok {
			t.Errorf("metrics output missing %s", want)
		}
	}
}

// parsePromText validates text against the Prometheus exposition
// grammar (comments, metric names, escaped label values, float
// samples) and returns every sample as seriesKey -> value.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	series := map[string]float64{}
	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") && !strings.HasPrefix(line, "# HELP ") {
				t.Fatalf("line %d: malformed comment %q", ln, line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("line %d: no sample value in %q", ln, line)
		}
		key, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln, val, err)
		}
		name := key
		if j := strings.IndexByte(key, '{'); j >= 0 {
			name = key[:j]
			validatePromLabels(t, ln, key[j:])
		}
		if !nameRe.MatchString(name) {
			t.Fatalf("line %d: bad metric name %q", ln, name)
		}
		series[key] = v
	}
	return series
}

// validatePromLabels checks one {k="v",...} label block, including the
// escape rules for label values (only \\, \", and \n are legal).
func validatePromLabels(t *testing.T, ln int, s string) {
	t.Helper()
	labelRe := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		t.Fatalf("line %d: malformed label block %q", ln, s)
	}
	rest := s[1 : len(s)-1]
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 || !labelRe.MatchString(rest[:eq]) {
			t.Fatalf("line %d: bad label name in %q", ln, rest)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			t.Fatalf("line %d: unquoted label value in %q", ln, rest)
		}
		rest = rest[1:]
		for {
			if rest == "" {
				t.Fatalf("line %d: unterminated label value in %q", ln, s)
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\n' {
				t.Fatalf("line %d: raw newline in label value of %q", ln, s)
			}
			if c == '\\' {
				if len(rest) < 2 || (rest[1] != '\\' && rest[1] != '"' && rest[1] != 'n') {
					t.Fatalf("line %d: illegal escape %q in %q", ln, rest[:min(2, len(rest))], s)
				}
				rest = rest[2:]
				continue
			}
			rest = rest[1:]
		}
		if rest == "" {
			return
		}
		if !strings.HasPrefix(rest, ",") {
			t.Fatalf("line %d: expected ',' between labels in %q", ln, s)
		}
		rest = rest[1:]
	}
}
