package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"ccdac/internal/jobs"
	"ccdac/internal/memo"
)

// benchJobsReport is the schema of BENCH_jobs.json (`make bench-jobs`):
// the micro-batching throughput claim of docs/PERFORMANCE.md, measured.
// 32 compatible yield jobs — one shared 10-bit layout, distinct seeds —
// run once per-request (MaxBatch 1) and once coalesced (MaxBatch 32);
// the harness asserts the coalesced pass is >= 3x faster and that every
// per-seed result is byte-identical across the two modes.
type benchJobsReport struct {
	Requests      int `json:"requests"`
	Bits          int `json:"bits"`
	SamplesPerJob int `json:"samples_per_job"`
	// Wall time from first submission to last terminal job.
	SoloSeconds            float64 `json:"solo_seconds"`
	CoalescedSeconds       float64 `json:"coalesced_seconds"`
	CoalescedSpeedup       float64 `json:"coalesced_speedup"`
	SoloJobsPerSecond      float64 `json:"solo_jobs_per_second"`
	CoalescedJobsPerSecond float64 `json:"coalesced_jobs_per_second"`
	// PrefixRunsSaved is the manager's own count of expensive
	// place→route→extract→covariance runs micro-batching avoided.
	PrefixRunsSaved int64 `json:"prefix_runs_saved"`
	// IdenticalResults counts seeds whose coalesced payload matched the
	// solo payload byte for byte (must equal Requests).
	IdenticalResults int `json:"identical_results"`
}

// TestBenchJobs is the harness behind `make bench-jobs`, gated on
// BENCH_JOBS_OUT. The equivalence half (byte-identical results) is a
// hard assertion; the >= 3x throughput bar is the acceptance criterion
// for coalescing 32 compatible requests and holds with wide margin
// because the shared prefix dominates each job's cost.
func TestBenchJobs(t *testing.T) {
	out := os.Getenv("BENCH_JOBS_OUT")
	if out == "" {
		t.Skip("set BENCH_JOBS_OUT=<file> to write the job-tier benchmark report")
	}
	// 32 interactive spec-probes over one shared 10-bit layout: the
	// place→route→extract→covariance prefix dominates each job, the
	// 8-sample Monte-Carlo tail is the cheap per-seed part — the
	// workload micro-batching exists for.
	const (
		requests = 32
		bits     = 10
		samples  = 8
	)
	specBody := func(seed int) string {
		return jsonSpec(jobs.Spec{Kind: jobs.KindYield, Bits: bits, Samples: samples,
			Seed: int64(seed), SpecINL: 0.05})
	}

	// run measures one mode: submit all requests, poll all to done,
	// wall-clock first job accepted → last job finished (the records'
	// own timestamps, so the poll loop's latency does not pollute the
	// throughput number). CacheMaxBytes < 0 disables the result cache
	// and the manager's memo mark, so any speedup is structural
	// coalescing, not cache hits; memo.PurgeAll keeps the
	// process-global stage caches from leaking state between modes.
	run := func(maxBatch int) (time.Duration, map[int]json.RawMessage, jobs.Stats) {
		memo.PurgeAll()
		srv := New(Options{
			Logger: quietLogger(), CacheMaxBytes: -1,
			JobWorkers: 2, JobMaxBatch: maxBatch, JobMaxWait: 500 * time.Millisecond,
		})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		ids := make(map[int]string, requests)
		for seed := 1; seed <= requests; seed++ {
			j := submitJobOK(t, ts.URL, specBody(seed))
			ids[seed] = j.ID
		}
		var firstCreated, lastFinished int64
		results := make(map[int]json.RawMessage, requests)
		for seed, id := range ids {
			j := pollJobDone(t, ts.URL, id, 300*time.Second)
			if firstCreated == 0 || j.CreatedMS < firstCreated {
				firstCreated = j.CreatedMS
			}
			if j.FinishedMS > lastFinished {
				lastFinished = j.FinishedMS
			}
			var buf bytes.Buffer
			if err := json.Compact(&buf, j.Result); err != nil {
				t.Fatalf("seed %d result: %v", seed, err)
			}
			results[seed] = json.RawMessage(buf.Bytes())
		}
		return time.Duration(lastFinished-firstCreated) * time.Millisecond, results, srv.Jobs().Stats()
	}

	soloDur, soloRes, _ := run(1)
	coalDur, coalRes, coalStats := run(requests)

	rep := benchJobsReport{
		Requests: requests, Bits: bits, SamplesPerJob: samples,
		SoloSeconds:            soloDur.Seconds(),
		CoalescedSeconds:       coalDur.Seconds(),
		CoalescedSpeedup:       soloDur.Seconds() / coalDur.Seconds(),
		SoloJobsPerSecond:      requests / soloDur.Seconds(),
		CoalescedJobsPerSecond: requests / coalDur.Seconds(),
		PrefixRunsSaved:        coalStats.PrefixRunsSaved,
	}
	for seed := 1; seed <= requests; seed++ {
		if bytes.Equal(soloRes[seed], coalRes[seed]) {
			rep.IdenticalResults++
		} else {
			t.Errorf("seed %d: coalesced result differs from solo:\nsolo:      %s\ncoalesced: %s",
				seed, soloRes[seed], coalRes[seed])
		}
	}
	if rep.IdenticalResults != requests {
		t.Errorf("identical results = %d/%d — coalescing broke byte-equivalence", rep.IdenticalResults, requests)
	}
	if rep.PrefixRunsSaved < requests/2 {
		t.Errorf("prefix runs saved = %d, want >= %d — jobs did not coalesce", rep.PrefixRunsSaved, requests/2)
	}
	if rep.CoalescedSpeedup < 3 {
		t.Errorf("coalesced speedup = %.2fx over %d compatible requests, want >= 3x", rep.CoalescedSpeedup, requests)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("micro-batching: %d requests solo %.2fs vs coalesced %.2fs (%.1fx, %d prefix runs saved)",
		requests, rep.SoloSeconds, rep.CoalescedSeconds, rep.CoalescedSpeedup, rep.PrefixRunsSaved)
}

func jsonSpec(s jobs.Spec) string {
	data, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(data)
}
