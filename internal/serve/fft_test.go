package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestFFTDirective: the fft knob validates like cache does, "" and
// "auto" canonicalize to one cache entry, and "off" — a different
// engine whose numbers agree only to tolerance — gets its own.
func TestFFTDirective(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postGenerate(t, ts.URL, `{"bits":5,"fft":"fast"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown fft directive: status %d, want 400: %s", resp.StatusCode, data)
	}

	resp, data = postGenerate(t, ts.URL, `{"bits":5,"skip_nonlinearity":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default request: status %d: %s", resp.StatusCode, data)
	}
	if got := decodeGenerate(t, data).CacheStatus; got != "cold" {
		t.Fatalf("default request cache_status = %q, want cold", got)
	}

	// Explicit "auto" is the spelled-out default: same entry.
	resp, data = postGenerate(t, ts.URL, `{"bits":5,"skip_nonlinearity":true,"fft":"auto"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fft=auto request: status %d: %s", resp.StatusCode, data)
	}
	if got := decodeGenerate(t, data).CacheStatus; got != "hit" {
		t.Errorf("fft=auto cache_status = %q, want hit (canonical with default)", got)
	}

	// "off" runs the dense engine: must not share the structured entry.
	resp, data = postGenerate(t, ts.URL, `{"bits":5,"skip_nonlinearity":true,"fft":"off"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fft=off request: status %d: %s", resp.StatusCode, data)
	}
	if got := decodeGenerate(t, data).CacheStatus; got != "cold" {
		t.Errorf("fft=off cache_status = %q, want cold (distinct engine)", got)
	}
}
