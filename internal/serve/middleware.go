package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"ccdac"
	"ccdac/internal/obs"
)

// reqInfo rides the request context: the request ID assigned by wrap
// and, for generate requests, the root span ID and retained-trace
// reference the handler publishes so the access log can correlate to
// the span tree and the latency histogram can carry exemplars.
type reqInfo struct {
	id     string
	spanID atomic.Uint64
	trace  atomic.Pointer[traceRef]
}

// traceRef is the flight recorder's verdict on this request's trace,
// set by run() once the trace is offered.
type traceRef struct {
	id     string
	reason obs.RetainReason
}

type reqInfoKey struct{}

// RequestID returns the request ID wrap assigned to this request's
// context ("" outside a wrapped handler).
func RequestID(ctx context.Context) string {
	if ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo); ri != nil {
		return ri.id
	}
	return ""
}

func requestInfo(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// newRequestID returns 16 hex characters of crypto/rand entropy.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// rand.Read never fails on supported platforms; degrade to a
		// recognizable constant rather than aborting the request.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the status code and byte count a handler
// writes, for the access log and the per-route metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers (the
// /v1/events SSE stream) work through the middleware wrapper.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// wrap is the middleware chain applied to every route: request-ID
// assignment, structured logging, per-route request counters and
// latency histograms, and panic containment. Routes registered with
// limited=true (the generate workload) additionally pass the bounded
// admission semaphore — full means an immediate 429 with Retry-After,
// never queuing — and run under the per-request timeout.
func (s *Server) wrap(route string, limited bool, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ri := &reqInfo{id: r.Header.Get("X-Request-ID")}
		if ri.id == "" {
			ri.id = newRequestID()
		}
		w.Header().Set("X-Request-ID", ri.id)
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri))

		if limited {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.reg.Counter("ccdac_serve_shed_total", obs.Labels{"route": route}).Inc()
				s.reg.Counter("ccdac_serve_requests_total", obs.Labels{"route": route, "code": "429"}).Inc()
				// Honest backoff hint: the EWMA of recent request
				// durations says when a slot plausibly frees. The body
				// also reports the async tier's queue depth — the
				// shed-resistant path for this workload is POST /v1/jobs.
				w.Header().Set("Retry-After", strconv.Itoa(s.shedRetryAfter()))
				writeJSON(w, http.StatusTooManyRequests, errorResponse{
					Error: fmt.Sprintf("serve: %d requests already in flight, shedding (consider POST /v1/jobs)",
						s.opts.MaxInFlight),
					RequestID:  ri.id,
					QueueDepth: s.jobs.Stats().QueueDepth,
				})
				s.log.LogAttrs(r.Context(), slog.LevelWarn, "request shed",
					slog.String("route", route), slog.String("request_id", ri.id))
				return
			}
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}

		s.inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				// A handler panic is contained here the same way the
				// pipeline contains stage panics: converted to a typed
				// *PipelineError, reported, never propagated — one bad
				// request must not take the daemon down.
				s.reg.Counter("ccdac_serve_panics_total", obs.Labels{"route": route}).Inc()
				perr := &ccdac.PipelineError{Stage: "internal", Err: fmt.Errorf("recovered panic: %v", rec)}
				s.log.LogAttrs(r.Context(), slog.LevelError, "panic contained",
					slog.String("route", route), slog.String("request_id", ri.id),
					slog.String("panic", fmt.Sprint(rec)), slog.String("stack", string(debug.Stack())))
				if !sw.wrote {
					s.writeError(sw, r, http.StatusInternalServerError, perr)
				} else {
					sw.code = http.StatusInternalServerError
				}
			}
			d := time.Since(start)
			if limited {
				s.observeRequestSeconds(d.Seconds())
			}
			s.inflight.Add(-1)
			s.served.Add(1)
			code := strconv.Itoa(sw.code)
			s.reg.Counter("ccdac_serve_requests_total", obs.Labels{"route": route, "code": code}).Inc()
			hist := s.reg.Histogram("ccdac_serve_request_seconds", obs.Labels{"route": route},
				obs.DefaultDurationBuckets)
			tref := ri.trace.Load()
			if tref != nil {
				// Requests with a retained trace leave an exemplar on their
				// latency bucket: the OpenMetrics link from "p99 spiked" to
				// the exact trace at /debug/traces/{id}.
				hist.ObserveExemplar(d.Seconds(), tref.id)
			} else {
				hist.Observe(d.Seconds())
			}
			level := slog.LevelInfo
			if sw.code >= 500 {
				level = slog.LevelError
			}
			msg := "request"
			slow := s.opts.SlowRequest > 0 && d >= s.opts.SlowRequest
			if slow {
				msg = "slow request"
				if level < slog.LevelWarn {
					level = slog.LevelWarn
				}
			}
			// Healthy-traffic access lines are sampled 1-in-N so WARN and
			// ERROR lines stay visible under load; anything at WARN or
			// above — errors, sheds, slow requests — always logs.
			if level == slog.LevelInfo && sw.code < 400 && s.opts.AccessLogSample > 1 {
				if s.accessSeq.Add(1)%int64(s.opts.AccessLogSample) != 1 {
					s.logsSampled.Add(1)
					return
				}
			}
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.code),
				slog.Int64("bytes", sw.bytes),
				slog.Float64("seconds", d.Seconds()),
				slog.String("request_id", ri.id),
			}
			if id := ri.spanID.Load(); id != 0 {
				attrs = append(attrs, slog.Uint64("span_id", id))
			}
			if tref != nil {
				attrs = append(attrs,
					slog.String("trace_id", tref.id),
					slog.String("trace_reason", string(tref.reason)))
			}
			if slow {
				attrs = append(attrs, slog.String("slow_threshold", s.opts.SlowRequest.String()))
			}
			s.log.LogAttrs(r.Context(), level, msg, attrs...)
		}()
		h.ServeHTTP(sw, r)
	})
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error     string   `json:"error"`
	Stage     string   `json:"stage,omitempty"`
	Warnings  []string `json:"warnings,omitempty"`
	RequestID string   `json:"request_id,omitempty"`
	// QueueDepth reports the async job tier's backlog on 429s (shed
	// and queue overflow), sizing the Retry-After hint for clients.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// observeRequestSeconds folds one limited-route request duration into
// the shed Retry-After estimate (EWMA, alpha 0.2, stored as bits for
// lock-free reads).
func (s *Server) observeRequestSeconds(sec float64) {
	for {
		old := s.reqSec.Load()
		mean := math.Float64frombits(old)
		if mean == 0 {
			mean = sec
		} else {
			mean = 0.8*mean + 0.2*sec
		}
		if s.reqSec.CompareAndSwap(old, math.Float64bits(mean)) {
			return
		}
	}
}

// shedRetryAfter estimates, in whole seconds (min 1), when an
// admission slot frees: the rolling mean request duration.
func (s *Server) shedRetryAfter() int {
	mean := math.Float64frombits(s.reqSec.Load())
	secs := int(math.Ceil(mean))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, code int, err error) {
	resp := errorResponse{Error: err.Error(), RequestID: RequestID(r.Context())}
	var pe *ccdac.PipelineError
	if errors.As(err, &pe) {
		resp.Stage = pe.Stage
		resp.Warnings = pe.Warnings
	}
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already out; an encode/write failure here can
	// only mean the client is gone.
	_ = enc.Encode(v)
}
